// CDN cache placement: the metric scenario that motivates facility location
// in networked systems. Edge PoPs (clients) pick cache sites (facilities)
// in the plane; opening a cache costs money, serving a PoP costs latency.
//
// The example compares the distributed algorithm — which the PoPs and sites
// could actually run over their own links — against the centralized metric
// specialists (Jain–Vazirani, Mettu–Plaxton), and shows the k trade-off a
// deployment would tune.
//
//   $ ./examples/cdn_placement
#include <iostream>

#include "common/table.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "workload/generators.h"

int main() {
  using namespace dflp;

  workload::EuclideanParams geo;
  geo.num_facilities = 15;   // candidate cache sites
  geo.num_clients = 120;     // edge PoPs
  geo.clusters = 4;          // four metro areas
  geo.opening_lo = 100.0;    // cache hardware cost range
  geo.opening_hi = 500.0;
  const workload::EuclideanInstance world = workload::euclidean(geo, 7);
  const fl::Instance& inst = world.instance;

  std::cout << "CDN world: " << inst.describe() << "\n"
            << "(4 metro clusters, costs = Euclidean latency, "
               "complete bipartite reachability)\n";

  core::MwParams params;
  params.k = 16;
  params.seed = 7;
  const auto results = harness::run_suite(
      {harness::Algo::kMwGreedy, harness::Algo::kPipeline,
       harness::Algo::kSeqGreedy, harness::Algo::kJainVazirani,
       harness::Algo::kMettuPlaxton, harness::Algo::kJms,
       harness::Algo::kNearestFacility},
      inst, params);
  harness::print_section(
      "cache placement, all algorithms (k = 16 for the distributed ones)",
      "ratio is against the strongest certified lower bound",
      harness::results_table(results));

  // The deployment question: how many synchronous gossip rounds buy how
  // much placement quality?
  Table tradeoff({"k", "cost", "rounds", "messages"});
  const harness::LowerBound lb = harness::compute_lower_bound(inst);
  for (int k : {1, 4, 16, 64}) {
    core::MwParams p;
    p.k = k;
    p.seed = 7;
    const harness::RunResult r =
        harness::run_algorithm(harness::Algo::kMwGreedy, inst, p, lb);
    tradeoff.row().cell(k).cell(r.cost, 1).cell(r.rounds).cell(r.messages);
  }
  harness::print_section("rounds-for-quality trade-off (mw-greedy)",
                         "lower bound (" + lb.kind + ") = " +
                             format_double(lb.value, 1),
                         tradeoff);
  return 0;
}
