// Trade-off explorer: a small CLI for sweeping the paper's k parameter on a
// chosen workload family — the tool you reach for when deciding how many
// rounds your deployment can afford.
//
//   $ ./examples/tradeoff_explorer [family] [size] [seed]
//     family: uniform | euclidean | powerlaw | greedy-tight | star
//     size:   number of clients (default 100)
//     seed:   RNG seed (default 1)
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "workload/generators.h"

namespace {

dflp::workload::Family parse_family(const std::string& name) {
  using dflp::workload::Family;
  for (const Family f : {Family::kUniform, Family::kEuclidean,
                         Family::kPowerLaw, Family::kGreedyTight,
                         Family::kStar}) {
    if (dflp::workload::family_name(f) == name) return f;
  }
  std::cerr << "unknown family '" << name << "', using uniform\n";
  return Family::kUniform;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dflp;

  const workload::Family family =
      argc > 1 ? parse_family(argv[1]) : workload::Family::kUniform;
  const int size = argc > 2 ? std::atoi(argv[2]) : 100;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 1;
  if (size < 4) {
    std::cerr << "size must be >= 4\n";
    return 1;
  }

  const fl::Instance inst = workload::make_family_instance(
      family, static_cast<std::int32_t>(size), seed);
  std::cout << "family=" << workload::family_name(family) << " "
            << inst.describe() << "\n";

  const harness::LowerBound lb = harness::compute_lower_bound(inst);
  std::cout << "lower bound: " << lb.value << " (" << lb.kind << ")\n";

  Table table({"k", "cost", "ratio", "rounds", "messages", "kbits",
               "wall-ms"});
  for (int k : {1, 2, 4, 8, 16, 32, 64, 128}) {
    core::MwParams params;
    params.k = k;
    params.seed = seed;
    const harness::RunResult r =
        harness::run_algorithm(harness::Algo::kMwGreedy, inst, params, lb);
    table.row()
        .cell(k)
        .cell(r.cost, 2)
        .cell(r.ratio, 3)
        .cell(r.rounds)
        .cell(r.messages)
        .cell(static_cast<double>(r.total_bits) / 1000.0, 1)
        .cell(r.wall_ms, 2);
  }
  harness::print_section("k sweep (mw-greedy)",
                         "pick the smallest k whose ratio you can live with",
                         table);

  // Reference rows.
  core::MwParams params;
  params.k = 16;
  params.seed = seed;
  const auto refs = harness::run_suite(
      {harness::Algo::kIdealGreedy, harness::Algo::kSeqGreedy,
       harness::Algo::kOpenAll},
      inst, params);
  harness::print_section("centralized references", "",
                         harness::results_table(refs));
  return 0;
}
