// Sensor-network coverage: a *non-metric* scenario. Battery-powered sensor
// nodes (clients) must each be adopted by an aggregation head (facility).
// Activation energy differs per head, and per-link costs reflect radio
// conditions — they do NOT satisfy the triangle inequality, so the metric
// 3-approximations lose their guarantee and the greedy/PODC'05 side of the
// design space is the right tool.
//
// The example also demonstrates the LP pipeline (fractional solve +
// randomized rounding) and instance serialization for reproducible runs.
//
//   $ ./examples/sensor_coverage
#include <fstream>
#include <iostream>

#include "core/pipeline.h"
#include "fl/serialize.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "lp/dual_ascent.h"
#include "workload/generators.h"

int main() {
  using namespace dflp;

  // Radio-cost world: power-law spread models the orders-of-magnitude
  // differences between good and terrible links.
  workload::PowerLawParams radio;
  radio.num_facilities = 18;   // candidate aggregation heads
  radio.num_clients = 150;     // sensors
  radio.client_degree = 5;     // each sensor hears ~5 heads
  radio.rho_target = 1e4;
  const fl::Instance inst = workload::power_law_spread(radio, 11);
  std::cout << "sensor field: " << inst.describe() << "\n";

  // Persist the generated field so a measurement campaign can be replayed.
  {
    std::ofstream out("sensor_field.ufl");
    fl::write_instance(out, inst);
    std::cout << "instance written to sensor_field.ufl ("
              << fl::to_text(inst).size() << " bytes)\n";
  }

  core::MwParams params;
  params.k = 16;
  params.seed = 11;

  // The two-stage pipeline, as the paper structures it.
  const core::PipelineOutcome pipe = core::run_pipeline(inst, params);
  const lp::DualAscentResult dual = lp::dual_ascent_bound(inst);
  std::cout << "\nLP pipeline (k = 16):\n"
            << "  fractional value  = " << pipe.fractional_value << "\n"
            << "  integral cost     = " << pipe.solution.cost(inst) << "\n"
            << "  dual lower bound  = " << dual.lower_bound << "\n"
            << "  stage-1 rounds    = " << pipe.frac_metrics.rounds << "\n"
            << "  stage-2 rounds    = " << pipe.round_metrics.rounds
            << " (rounding, O(log N))\n"
            << "  mop-up clients    = " << pipe.frac_mopup_clients
            << ", rounding fallbacks = " << pipe.round_fallback_clients
            << "\n";

  // Compare against the one-shot combinatorial variant and centralized
  // greedy (the H_n benchmark for non-metric instances).
  const auto results = harness::run_suite(
      {harness::Algo::kMwGreedy, harness::Algo::kPipeline,
       harness::Algo::kSeqGreedy, harness::Algo::kNearestFacility},
      inst, params);
  harness::print_section("aggregation-head selection",
                         "non-metric: metric specialists not applicable",
                         harness::results_table(results));
  return 0;
}
