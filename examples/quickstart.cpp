// Quickstart: build a small facility-location instance, run the distributed
// approximation at two locality levels, and compare against the exact
// optimum — the whole public API surface in ~60 lines.
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/mw_greedy.h"
#include "fl/instance.h"
#include "seq/brute_force.h"
#include "seq/greedy.h"

int main() {
  using namespace dflp;

  // A toy deployment: three candidate server sites, eight tenants. Tenants
  // can only connect to sites they have a link to; costs are arbitrary
  // (non-metric), exactly the setting of the PODC'05 paper.
  fl::InstanceBuilder builder;
  const fl::FacilityId site_a = builder.add_facility(/*opening_cost=*/12.0);
  const fl::FacilityId site_b = builder.add_facility(8.0);
  const fl::FacilityId site_c = builder.add_facility(30.0);
  for (int t = 0; t < 8; ++t) {
    const fl::ClientId tenant = builder.add_client();
    builder.connect(site_a, tenant, 1.0 + t % 3);
    if (t % 2 == 0) builder.connect(site_b, tenant, 0.5);
    builder.connect(site_c, tenant, 0.25);
  }
  const fl::Instance inst = builder.build();
  std::cout << "instance: " << inst.describe() << "\n\n";

  // The distributed algorithm: every facility and client is a node in a
  // simulated CONGEST network; k trades communication rounds for quality.
  for (const int k : {1, 16}) {
    core::MwParams params;
    params.k = k;
    params.seed = 2026;
    const core::MwGreedyOutcome out = core::run_mw_greedy(inst, params);
    std::cout << "distributed greedy, k=" << k << ":\n"
              << "  cost      = " << out.solution.cost(inst) << "\n"
              << "  open      = " << out.solution.num_open()
              << " facilities\n"
              << "  rounds    = " << out.metrics.rounds << "\n"
              << "  messages  = " << out.metrics.messages << " (max "
              << out.metrics.max_message_bits << " bits each, budget "
              << out.schedule.bit_budget << ")\n";
  }

  // Centralized references.
  const seq::GreedyResult greedy = seq::greedy_solve(inst);
  std::cout << "\ncentralized greedy cost = " << greedy.solution.cost(inst)
            << " (" << greedy.iterations << " sequential iterations)\n";
  if (const auto brute = seq::brute_force_solve(inst)) {
    std::cout << "exact optimum           = " << brute->optimum << "\n";
  }
  return 0;
}
