#include "fl/capacitated.h"

#include <cmath>

#include "common/check.h"

namespace dflp::fl {

void validate(const SoftCapacitatedInstance& inst) {
  DFLP_CHECK_MSG(inst.capacity.size() ==
                     static_cast<std::size_t>(inst.base.num_facilities()),
                 "capacity vector size " << inst.capacity.size()
                                         << " != facility count "
                                         << inst.base.num_facilities());
  for (std::size_t i = 0; i < inst.capacity.size(); ++i)
    DFLP_CHECK_MSG(inst.capacity[i] >= 1,
                   "capacity of facility " << i << " must be >= 1, got "
                                           << inst.capacity[i]);
}

std::int64_t copies_needed(std::int32_t capacity, std::int64_t load) {
  DFLP_CHECK(capacity >= 1 && load >= 0);
  if (load == 0) return 0;
  if (capacity == kUncapacitated) return 1;
  return (load + capacity - 1) / capacity;
}

double soft_capacitated_cost(const SoftCapacitatedInstance& inst,
                             const IntegralSolution& solution) {
  validate(inst);
  std::string why;
  DFLP_CHECK_MSG(solution.is_feasible(inst.base, &why),
                 "capacitated cost of infeasible solution: " << why);

  const Instance& base = inst.base;
  std::vector<std::int64_t> load(
      static_cast<std::size_t>(base.num_facilities()), 0);
  double connection = 0.0;
  for (ClientId j = 0; j < base.num_clients(); ++j) {
    const FacilityId i = solution.assignment(j);
    ++load[static_cast<std::size_t>(i)];
    connection += base.connection_cost(i, j);
  }
  double opening = 0.0;
  for (FacilityId i = 0; i < base.num_facilities(); ++i) {
    const std::int64_t l = load[static_cast<std::size_t>(i)];
    if (l > 0) {
      opening += static_cast<double>(
                     copies_needed(inst.capacity[static_cast<std::size_t>(i)],
                                   l)) *
                 base.opening_cost(i);
    } else if (solution.is_open(i)) {
      opening += base.opening_cost(i);  // opened one copy, serves nobody
    }
  }
  return opening + connection;
}

Instance reduce_to_ufl(const SoftCapacitatedInstance& inst) {
  validate(inst);
  const Instance& base = inst.base;
  InstanceBuilder builder;
  for (FacilityId i = 0; i < base.num_facilities(); ++i)
    builder.add_facility(base.opening_cost(i));
  for (ClientId j = 0; j < base.num_clients(); ++j) builder.add_client();
  for (FacilityId i = 0; i < base.num_facilities(); ++i) {
    const std::int32_t cap = inst.capacity[static_cast<std::size_t>(i)];
    const double surcharge =
        cap == kUncapacitated
            ? 0.0
            : base.opening_cost(i) / static_cast<double>(cap);
    for (const FacilityEdge& e : base.facility_edges(i))
      builder.connect(i, e.client, e.cost + surcharge);
  }
  return builder.build();
}

SoftCapacitatedResult solve_soft_capacitated(
    const SoftCapacitatedInstance& inst,
    const std::function<IntegralSolution(const Instance&)>& solve) {
  validate(inst);
  const Instance reduced = reduce_to_ufl(inst);
  IntegralSolution solution = solve(reduced);
  std::string why;
  DFLP_CHECK_MSG(solution.is_feasible(reduced, &why),
                 "UFL solver returned an infeasible solution: " << why);

  SoftCapacitatedResult result{std::move(solution), 0.0, 0};
  // Same adjacency, so the solution is feasible for the base instance too;
  // its capacitated cost re-prices connections at original costs and opens
  // copies by load.
  result.cost = soft_capacitated_cost(inst, result.solution);
  std::vector<std::int64_t> load(
      static_cast<std::size_t>(inst.base.num_facilities()), 0);
  for (ClientId j = 0; j < inst.base.num_clients(); ++j)
    ++load[static_cast<std::size_t>(result.solution.assignment(j))];
  for (FacilityId i = 0; i < inst.base.num_facilities(); ++i) {
    const std::int64_t l = load[static_cast<std::size_t>(i)];
    if (l > 0) {
      result.total_copies += copies_needed(
          inst.capacity[static_cast<std::size_t>(i)], l);
    } else if (result.solution.is_open(i)) {
      result.total_copies += 1;
    }
  }
  return result;
}

}  // namespace dflp::fl
