#include "fl/instance.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace dflp::fl {

void InstanceBuilder::reserve(std::int32_t num_facilities,
                              std::int32_t num_clients,
                              std::size_t num_edges) {
  DFLP_CHECK(num_facilities >= 0 && num_clients >= 0);
  opening_.reserve(opening_.size() + static_cast<std::size_t>(num_facilities));
  edges_.reserve(edges_.size() + num_edges);
  // Clients are just a counter today; the parameter keeps the hint
  // self-describing (and future-proofs per-client builder state).
  (void)num_clients;
}

FacilityId InstanceBuilder::add_facility(Cost opening_cost) {
  DFLP_CHECK_MSG(std::isfinite(opening_cost) && opening_cost >= 0.0,
                 "opening cost must be finite and non-negative, got "
                     << opening_cost);
  opening_.push_back(opening_cost);
  return static_cast<FacilityId>(opening_.size() - 1);
}

ClientId InstanceBuilder::add_client() { return num_clients_++; }

void InstanceBuilder::connect(FacilityId i, ClientId j, Cost cost) {
  DFLP_CHECK_MSG(i >= 0 && static_cast<std::size_t>(i) < opening_.size(),
                 "facility id " << i << " out of range");
  DFLP_CHECK_MSG(j >= 0 && j < num_clients_, "client id " << j
                                                          << " out of range");
  DFLP_CHECK_MSG(std::isfinite(cost) && cost >= 0.0,
                 "connection cost must be finite and non-negative, got "
                     << cost);
  edges_.push_back({i, j, cost});
}

Instance InstanceBuilder::build() {
  DFLP_CHECK_MSG(!opening_.empty(), "instance has no facilities");
  DFLP_CHECK_MSG(num_clients_ > 0, "instance has no clients");

  // Reject duplicate (i, j) pairs.
  {
    std::vector<std::pair<FacilityId, ClientId>> keys;
    keys.reserve(edges_.size());
    for (const auto& e : edges_) keys.emplace_back(e.i, e.j);
    std::sort(keys.begin(), keys.end());
    const auto dup = std::adjacent_find(keys.begin(), keys.end());
    DFLP_CHECK_MSG(dup == keys.end(),
                   "duplicate edge (facility=" << dup->first
                                               << ", client=" << dup->second
                                               << ")");
  }

  Instance inst;
  inst.opening_ = std::move(opening_);
  inst.num_clients_ = num_clients_;

  const auto m = static_cast<std::size_t>(inst.opening_.size());
  const auto n = static_cast<std::size_t>(num_clients_);

  // Facility-side CSR, sorted by (cost, client id).
  {
    std::vector<std::int32_t> deg(m, 0);
    for (const auto& e : edges_) ++deg[static_cast<std::size_t>(e.i)];
    inst.facility_offset_.assign(m + 1, 0);
    for (std::size_t i = 0; i < m; ++i)
      inst.facility_offset_[i + 1] = inst.facility_offset_[i] + deg[i];
    inst.facility_edges_.resize(edges_.size());
    std::vector<std::int32_t> cur(inst.facility_offset_.begin(),
                                  inst.facility_offset_.end() - 1);
    for (const auto& e : edges_)
      inst.facility_edges_[static_cast<std::size_t>(
          cur[static_cast<std::size_t>(e.i)]++)] = {e.j, e.c};
    for (std::size_t i = 0; i < m; ++i) {
      auto begin = inst.facility_edges_.begin() + inst.facility_offset_[i];
      auto end = inst.facility_edges_.begin() + inst.facility_offset_[i + 1];
      std::sort(begin, end, [](const FacilityEdge& a, const FacilityEdge& b) {
        if (a.cost != b.cost) return a.cost < b.cost;
        return a.client < b.client;
      });
      inst.max_facility_degree_ = std::max(
          inst.max_facility_degree_, static_cast<int>(end - begin));
    }
  }

  // Client-side CSR, sorted by (cost, facility id).
  {
    std::vector<std::int32_t> deg(n, 0);
    for (const auto& e : edges_) ++deg[static_cast<std::size_t>(e.j)];
    for (std::size_t j = 0; j < n; ++j)
      DFLP_CHECK_MSG(deg[j] > 0, "client " << j
                                           << " has no candidate facility — "
                                              "instance would be infeasible");
    inst.client_offset_.assign(n + 1, 0);
    for (std::size_t j = 0; j < n; ++j)
      inst.client_offset_[j + 1] = inst.client_offset_[j] + deg[j];
    inst.client_edges_.resize(edges_.size());
    std::vector<std::int32_t> cur(inst.client_offset_.begin(),
                                  inst.client_offset_.end() - 1);
    for (const auto& e : edges_)
      inst.client_edges_[static_cast<std::size_t>(
          cur[static_cast<std::size_t>(e.j)]++)] = {e.i, e.c};
    for (std::size_t j = 0; j < n; ++j) {
      auto begin = inst.client_edges_.begin() + inst.client_offset_[j];
      auto end = inst.client_edges_.begin() + inst.client_offset_[j + 1];
      std::sort(begin, end, [](const ClientEdge& a, const ClientEdge& b) {
        if (a.cost != b.cost) return a.cost < b.cost;
        return a.facility < b.facility;
      });
      inst.max_client_degree_ =
          std::max(inst.max_client_degree_, static_cast<int>(end - begin));
    }
  }

  // Cost profile / rho.
  CostProfile& cp = inst.profile_;
  auto absorb = [&cp](Cost c) {
    cp.max_value = std::max(cp.max_value, c);
    if (c > 0.0) cp.min_positive = std::min(cp.min_positive, c);
  };
  for (Cost f : inst.opening_) {
    absorb(f);
    cp.total_opening += f;
  }
  for (const auto& e : inst.facility_edges_) {
    absorb(e.cost);
    cp.total_connection += e.cost;
  }
  cp.rho = std::isfinite(cp.min_positive) && cp.max_value > 0.0
               ? cp.max_value / cp.min_positive
               : 1.0;

  // Reset builder.
  num_clients_ = 0;
  edges_.clear();

  return inst;
}

std::span<const FacilityEdge> Instance::facility_edges(FacilityId i) const {
  DFLP_CHECK(i >= 0 && i < num_facilities());
  const auto idx = static_cast<std::size_t>(i);
  return {facility_edges_.data() + facility_offset_[idx],
          static_cast<std::size_t>(facility_offset_[idx + 1] -
                                   facility_offset_[idx])};
}

std::span<const ClientEdge> Instance::client_edges(ClientId j) const {
  DFLP_CHECK(j >= 0 && j < num_clients());
  const auto idx = static_cast<std::size_t>(j);
  return {client_edges_.data() + client_offset_[idx],
          static_cast<std::size_t>(client_offset_[idx + 1] -
                                   client_offset_[idx])};
}

std::size_t Instance::client_edge_offset(ClientId j) const {
  DFLP_CHECK(j >= 0 && j < num_clients());
  return static_cast<std::size_t>(client_offset_[static_cast<std::size_t>(j)]);
}

Cost Instance::connection_cost(FacilityId i, ClientId j) const {
  // The facility-side list is sorted by cost, not client id, so scan the
  // client's (typically shorter) list instead; it is sorted by cost too, so
  // a linear scan is required — client degrees are small in practice.
  for (const ClientEdge& e : client_edges(j)) {
    if (e.facility == i) return e.cost;
  }
  return std::numeric_limits<Cost>::infinity();
}

Cost Instance::open_all_cost() const {
  Cost total = profile_.total_opening;
  for (ClientId j = 0; j < num_clients(); ++j)
    total += client_edges(j).front().cost;  // sorted: front is cheapest
  return total;
}

std::string Instance::describe() const {
  std::ostringstream os;
  os << "UFL(m=" << num_facilities() << ", n=" << num_clients()
     << ", edges=" << num_edges() << ", rho=" << profile_.rho
     << ", maxdeg_f=" << max_facility_degree_
     << ", maxdeg_c=" << max_client_degree_ << ")";
  return os.str();
}

}  // namespace dflp::fl
