// Fault-Tolerant Facility Placement (FTFP): the coverage generalization of
// UFL in the style of Yan & Chrobak (arXiv:1205.1281).
//
// Each client j carries a coverage requirement r_j >= 1 and must be
// assigned r_j *distinct* open facilities; the objective is the opening
// cost of the open set plus the connection cost of every assignment. With
// all r_j = 1 the problem is exactly UFL. The point of the generalization
// is operational: a placement with r_j >= 2 keeps every client served when
// any single opened facility crashes, so placement-level redundancy can be
// traded against transport-level recovery (harness/survive.h measures the
// trade; E14 commits the numbers).
//
// This module holds the problem data (`FtfpInstance`), the coverage-aware
// solution type (`FtfpSolution`), cost accounting, plain-text
// serialization, and the demand-replication reduction to UFL: client j
// becomes r_j unit-demand copies, any UFL solution on the replicated
// instance maps back with a distinctness repair, and any UFL lower bound
// on the replicated instance is a valid FTFP lower bound (an FTFP solution
// assigns the copies of j to its r_j distinct facilities at equal cost).
#pragma once

#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "fl/instance.h"
#include "fl/solution.h"

namespace dflp::fl {

/// An FTFP instance: the base UFL data plus per-client coverage
/// requirements. Immutable after `validate()` passes.
struct FtfpInstance {
  Instance base;
  std::vector<std::int32_t> requirement;  ///< size = base.num_clients()

  /// Largest requirement — the number of exclusion phases the distributed
  /// solver runs.
  [[nodiscard]] std::int32_t max_requirement() const;

  /// One-line description for logs and table captions.
  [[nodiscard]] std::string describe() const;
};

/// Checks shape and feasibility: one requirement per client, every
/// r_j >= 1, and r_j <= degree(j) (a client cannot be covered by more
/// distinct facilities than it can reach). Throws CheckError naming the
/// offending client otherwise.
void validate(const FtfpInstance& inst);

/// Convenience: attach a uniform requirement, clamped per client to its
/// degree so the instance always validates.
[[nodiscard]] FtfpInstance with_uniform_requirement(Instance base,
                                                    std::int32_t r);

/// A coverage-aware solution: a set of open facilities plus, for every
/// client, an ordered list of distinct assigned facilities.
class FtfpSolution {
 public:
  FtfpSolution() = default;
  explicit FtfpSolution(const FtfpInstance& inst);

  void open(FacilityId i);
  [[nodiscard]] bool is_open(FacilityId i) const;
  [[nodiscard]] int num_open() const noexcept { return num_open_; }

  /// Appends facility `i` to client j's assignment list. Rejects
  /// duplicates (the distinctness constraint) with a CheckError.
  void assign(ClientId j, FacilityId i);
  [[nodiscard]] std::span<const FacilityId> assignments(ClientId j) const;
  [[nodiscard]] int coverage(ClientId j) const;

  /// Total cost: opening cost of open facilities (each paid once) plus the
  /// connection cost of *every* assignment.
  [[nodiscard]] Cost cost(const FtfpInstance& inst) const;

  /// Checks: every client has exactly coverage >= r_j, all its assigned
  /// facilities distinct, open, and adjacent. Fills `why` on failure.
  [[nodiscard]] bool is_feasible(const FtfpInstance& inst,
                                 std::string* why = nullptr) const;

  /// The cheapest assigned facility of every client — the "primary" a
  /// deployment routes traffic to while the redundant assignments stand
  /// by. Clients with no assignment keep kNoFacility.
  [[nodiscard]] IntegralSolution primaries(const FtfpInstance& inst) const;

  /// Canonical printable digest (open set + per-client assignment lists in
  /// id order), byte-comparable across runs.
  [[nodiscard]] std::string fingerprint(const FtfpInstance& inst) const;

 private:
  std::vector<std::uint8_t> open_;
  std::vector<std::vector<FacilityId>> assign_;
  int num_open_ = 0;
};

/// Serialization: the dflp-ftfp v1 format wraps the base instance with the
/// requirement vector:
///   dflp-ftfp 1
///   <embedded dflp-ufl 1 block>
///   <r_0> ... <r_{n-1}>
void write_ftfp_instance(std::ostream& os, const FtfpInstance& inst);
[[nodiscard]] std::string ftfp_to_text(const FtfpInstance& inst);
[[nodiscard]] FtfpInstance read_ftfp_instance(std::istream& is);
[[nodiscard]] FtfpInstance ftfp_from_text(const std::string& text);

/// The demand-replication reduction: client j becomes r_j copies with j's
/// edges and costs. `copy_owner[jc]` maps a replicated client back to its
/// original.
struct ReplicatedUfl {
  Instance instance;
  std::vector<ClientId> copy_owner;  ///< size = sum of requirements
};
[[nodiscard]] ReplicatedUfl replicate_demands(const FtfpInstance& inst);

/// Maps a UFL solution on the replicated instance back to an FTFP solution
/// with a distinctness repair: copies of the same client assigned to the
/// same facility keep one assignment, and the shortfall is covered by the
/// cheapest adjacent open facilities not yet assigned to the client
/// (opening the cheapest unused neighbour when none is open). The result
/// is always feasible.
[[nodiscard]] FtfpSolution ftfp_from_replicated(
    const FtfpInstance& inst, const ReplicatedUfl& replicated,
    const IntegralSolution& ufl_solution);

/// Centralized baseline: solve the replicated UFL instance with any UFL
/// solver and repair distinctness. If `solve` is an a-approximation for
/// UFL this stays within a of the replicated optimum before repair; the
/// repair only pays for shortfalls the solver created.
[[nodiscard]] FtfpSolution solve_ftfp_by_replication(
    const FtfpInstance& inst,
    const std::function<IntegralSolution(const Instance&)>& solve);

}  // namespace dflp::fl
