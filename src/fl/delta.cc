#include "fl/delta.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace dflp::fl {

Delta Delta::client_arrive(NodeKey client, std::vector<KeyedEdge> edges) {
  Delta d;
  d.kind = Kind::kClientArrive;
  d.client = client;
  d.edges = std::move(edges);
  return d;
}

Delta Delta::client_depart(NodeKey client) {
  Delta d;
  d.kind = Kind::kClientDepart;
  d.client = client;
  return d;
}

Delta Delta::facility_open(NodeKey facility, Cost opening_cost,
                           std::vector<KeyedEdge> edges) {
  Delta d;
  d.kind = Kind::kFacilityOpen;
  d.facility = facility;
  d.cost = opening_cost;
  d.edges = std::move(edges);
  return d;
}

Delta Delta::facility_close(NodeKey facility) {
  Delta d;
  d.kind = Kind::kFacilityClose;
  d.facility = facility;
  return d;
}

Delta Delta::edge_cost_change(NodeKey facility, NodeKey client,
                              Cost new_cost) {
  Delta d;
  d.kind = Kind::kEdgeCostChange;
  d.facility = facility;
  d.client = client;
  d.cost = new_cost;
  return d;
}

std::string delta_kind_name(Delta::Kind kind) {
  switch (kind) {
    case Delta::Kind::kClientArrive:
      return "client-arrive";
    case Delta::Kind::kClientDepart:
      return "client-depart";
    case Delta::Kind::kFacilityOpen:
      return "facility-open";
    case Delta::Kind::kFacilityClose:
      return "facility-close";
    case Delta::Kind::kEdgeCostChange:
      return "edge-cost-change";
  }
  return "unknown";
}

namespace {

/// Binary search in a strictly-increasing key vector; -1 when absent.
std::int32_t key_index(const std::vector<NodeKey>& keys, NodeKey key) {
  const auto it = std::lower_bound(keys.begin(), keys.end(), key);
  if (it == keys.end() || *it != key) return -1;
  return static_cast<std::int32_t>(it - keys.begin());
}

void check_keys_strictly_increasing(const std::vector<NodeKey>& keys,
                                    const char* side) {
  for (std::size_t t = 1; t < keys.size(); ++t)
    DFLP_CHECK_MSG(keys[t - 1] < keys[t],
                   side << " keys must be strictly increasing, got "
                        << keys[t - 1] << " before " << keys[t]);
}

struct EdgeKeyHash {
  std::size_t operator()(const std::pair<NodeKey, NodeKey>& e) const {
    return static_cast<std::size_t>(
        mix64(static_cast<std::uint64_t>(e.first) * 0x9E3779B97F4A7C15ULL ^
              static_cast<std::uint64_t>(e.second)));
  }
};

}  // namespace

InstanceSnapshot InstanceSnapshot::initial(Instance inst) {
  InstanceSnapshot snap;
  snap.epoch_ = 0;
  snap.facility_keys_.resize(static_cast<std::size_t>(inst.num_facilities()));
  snap.client_keys_.resize(static_cast<std::size_t>(inst.num_clients()));
  for (std::size_t i = 0; i < snap.facility_keys_.size(); ++i)
    snap.facility_keys_[i] = static_cast<NodeKey>(i);
  for (std::size_t j = 0; j < snap.client_keys_.size(); ++j)
    snap.client_keys_[j] = static_cast<NodeKey>(j);
  snap.next_facility_key_ = static_cast<NodeKey>(snap.facility_keys_.size());
  snap.next_client_key_ = static_cast<NodeKey>(snap.client_keys_.size());
  snap.inst_ = std::move(inst);
  return snap;
}

InstanceSnapshot InstanceSnapshot::restore(Instance inst, EpochId epoch,
                                           std::vector<NodeKey> facility_keys,
                                           std::vector<NodeKey> client_keys,
                                           NodeKey next_facility_key,
                                           NodeKey next_client_key) {
  DFLP_CHECK_MSG(epoch >= 0, "epoch must be non-negative, got " << epoch);
  DFLP_CHECK_MSG(
      facility_keys.size() ==
          static_cast<std::size_t>(inst.num_facilities()),
      "facility key count " << facility_keys.size() << " != m="
                            << inst.num_facilities());
  DFLP_CHECK_MSG(client_keys.size() ==
                     static_cast<std::size_t>(inst.num_clients()),
                 "client key count " << client_keys.size()
                                     << " != n=" << inst.num_clients());
  check_keys_strictly_increasing(facility_keys, "facility");
  check_keys_strictly_increasing(client_keys, "client");
  DFLP_CHECK_MSG(facility_keys.empty() ||
                     next_facility_key > facility_keys.back(),
                 "next facility key " << next_facility_key
                                      << " not past max present key");
  DFLP_CHECK_MSG(client_keys.empty() || next_client_key > client_keys.back(),
                 "next client key " << next_client_key
                                    << " not past max present key");
  InstanceSnapshot snap;
  snap.inst_ = std::move(inst);
  snap.epoch_ = epoch;
  snap.facility_keys_ = std::move(facility_keys);
  snap.client_keys_ = std::move(client_keys);
  snap.next_facility_key_ = next_facility_key;
  snap.next_client_key_ = next_client_key;
  return snap;
}

NodeKey InstanceSnapshot::facility_key(FacilityId i) const {
  DFLP_CHECK(i >= 0 && i < inst_.num_facilities());
  return facility_keys_[static_cast<std::size_t>(i)];
}

NodeKey InstanceSnapshot::client_key(ClientId j) const {
  DFLP_CHECK(j >= 0 && j < inst_.num_clients());
  return client_keys_[static_cast<std::size_t>(j)];
}

FacilityId InstanceSnapshot::facility_index(NodeKey key) const {
  return key_index(facility_keys_, key);
}

ClientId InstanceSnapshot::client_index(NodeKey key) const {
  return key_index(client_keys_, key);
}

InstanceSnapshot apply(const InstanceSnapshot& snap, const DeltaLog& log) {
  const Instance& inst = snap.instance();
  const auto old_m = static_cast<std::size_t>(inst.num_facilities());
  const auto old_n = static_cast<std::size_t>(inst.num_clients());

  // ---- Pass 1: classify deltas, validating sequential presence. ---------
  std::vector<bool> closed_old_f(old_m, false);
  std::vector<bool> departed_old_c(old_n, false);
  // Arrivals that survive the log, in log order (an arrive+depart pair
  // inside one log cancels; the key stays burned).
  std::vector<const Delta*> new_facilities;
  std::vector<const Delta*> new_clients;
  std::unordered_map<NodeKey, std::size_t> new_f_pos;
  std::unordered_map<NodeKey, std::size_t> new_c_pos;
  // Final-topology re-pricing, last-writer-wins; value.second marks
  // consumption during edge assembly.
  std::unordered_map<std::pair<NodeKey, NodeKey>, std::pair<Cost, bool>,
                     EdgeKeyHash>
      cost_change;
  NodeKey next_f = snap.next_facility_key();
  NodeKey next_c = snap.next_client_key();
  std::size_t extra_edges = 0;

  for (const Delta& d : log.deltas()) {
    switch (d.kind) {
      case Delta::Kind::kClientArrive: {
        DFLP_CHECK_MSG(d.client >= next_c,
                       "client arrival key " << d.client
                                             << " not fresh (next is "
                                             << next_c << ")");
        DFLP_CHECK_MSG(!d.edges.empty(),
                       "client arrival " << d.client
                                         << " must carry at least one edge");
        next_c = d.client + 1;
        new_c_pos.emplace(d.client, new_clients.size());
        new_clients.push_back(&d);
        extra_edges += d.edges.size();
        break;
      }
      case Delta::Kind::kClientDepart: {
        if (const auto it = new_c_pos.find(d.client); it != new_c_pos.end()) {
          new_clients[it->second] = nullptr;  // arrived and left in one log
          new_c_pos.erase(it);
          break;
        }
        const ClientId j = snap.client_index(d.client);
        DFLP_CHECK_MSG(j >= 0 && !departed_old_c[static_cast<std::size_t>(j)],
                       "client departure for absent key " << d.client);
        departed_old_c[static_cast<std::size_t>(j)] = true;
        break;
      }
      case Delta::Kind::kFacilityOpen: {
        DFLP_CHECK_MSG(d.facility >= next_f,
                       "facility open key " << d.facility
                                            << " not fresh (next is "
                                            << next_f << ")");
        next_f = d.facility + 1;
        new_f_pos.emplace(d.facility, new_facilities.size());
        new_facilities.push_back(&d);
        extra_edges += d.edges.size();
        break;
      }
      case Delta::Kind::kFacilityClose: {
        if (const auto it = new_f_pos.find(d.facility);
            it != new_f_pos.end()) {
          new_facilities[it->second] = nullptr;
          new_f_pos.erase(it);
          break;
        }
        const FacilityId i = snap.facility_index(d.facility);
        DFLP_CHECK_MSG(i >= 0 && !closed_old_f[static_cast<std::size_t>(i)],
                       "facility close for absent key " << d.facility);
        closed_old_f[static_cast<std::size_t>(i)] = true;
        break;
      }
      case Delta::Kind::kEdgeCostChange: {
        cost_change[{d.facility, d.client}] = {d.cost, false};
        break;
      }
    }
  }

  // ---- Final node sets: survivors in order, then arrivals in order. -----
  std::vector<NodeKey> fkeys;
  std::vector<NodeKey> ckeys;
  fkeys.reserve(old_m + new_facilities.size());
  ckeys.reserve(old_n + new_clients.size());
  std::vector<std::int32_t> old_to_new_f(old_m, -1);
  std::vector<std::int32_t> old_to_new_c(old_n, -1);

  InstanceBuilder builder;
  std::size_t surviving_edges = 0;
  for (std::size_t i = 0; i < old_m; ++i) {
    if (closed_old_f[i]) continue;
    old_to_new_f[i] = static_cast<std::int32_t>(fkeys.size());
    fkeys.push_back(snap.facility_key(static_cast<FacilityId>(i)));
  }
  for (const Delta* d : new_facilities) {
    if (d == nullptr) continue;
    fkeys.push_back(d->facility);
  }
  for (std::size_t j = 0; j < old_n; ++j) {
    if (departed_old_c[j]) continue;
    old_to_new_c[j] = static_cast<std::int32_t>(ckeys.size());
    ckeys.push_back(snap.client_key(static_cast<ClientId>(j)));
    surviving_edges += inst.client_edges(static_cast<ClientId>(j)).size();
  }
  for (const Delta* d : new_clients) {
    if (d == nullptr) continue;
    ckeys.push_back(d->client);
  }

  builder.reserve(static_cast<std::int32_t>(fkeys.size()),
                  static_cast<std::int32_t>(ckeys.size()),
                  surviving_edges + extra_edges);
  for (std::size_t i = 0; i < old_m; ++i) {
    if (!closed_old_f[i])
      (void)builder.add_facility(
          inst.opening_cost(static_cast<FacilityId>(i)));
  }
  for (const Delta* d : new_facilities) {
    if (d != nullptr) (void)builder.add_facility(d->cost);
  }
  for (std::size_t j = 0; j < ckeys.size(); ++j) (void)builder.add_client();

  // ---- Edge assembly (re-pricing applied to the final topology). --------
  auto priced = [&cost_change](NodeKey fkey, NodeKey ckey, Cost base) {
    const auto it = cost_change.find({fkey, ckey});
    if (it == cost_change.end()) return base;
    it->second.second = true;
    return it->second.first;
  };

  for (std::size_t i = 0; i < old_m; ++i) {
    if (closed_old_f[i]) continue;
    const NodeKey fkey = snap.facility_key(static_cast<FacilityId>(i));
    for (const FacilityEdge& e : inst.facility_edges(
             static_cast<FacilityId>(i))) {
      const auto j = static_cast<std::size_t>(e.client);
      if (departed_old_c[j]) continue;
      builder.connect(old_to_new_f[i], old_to_new_c[j],
                      priced(fkey, snap.client_key(e.client), e.cost));
    }
  }
  for (const Delta* d : new_clients) {
    if (d == nullptr) continue;
    const std::int32_t cj = key_index(ckeys, d->client);
    for (const KeyedEdge& e : d->edges) {
      const std::int32_t fi = key_index(fkeys, e.peer);
      DFLP_CHECK_MSG(fi >= 0, "client arrival " << d->client
                                                << " references facility key "
                                                << e.peer
                                                << " absent from the epoch");
      builder.connect(fi, cj, priced(e.peer, d->client, e.cost));
    }
  }
  for (const Delta* d : new_facilities) {
    if (d == nullptr) continue;
    const std::int32_t fi = key_index(fkeys, d->facility);
    for (const KeyedEdge& e : d->edges) {
      const std::int32_t cj = key_index(ckeys, e.peer);
      DFLP_CHECK_MSG(cj >= 0, "facility open " << d->facility
                                               << " references client key "
                                               << e.peer
                                               << " absent from the epoch");
      builder.connect(fi, cj, priced(d->facility, e.peer, e.cost));
    }
  }
  for (const auto& [edge, entry] : cost_change) {
    DFLP_CHECK_MSG(entry.second, "edge-cost change for (facility key "
                                     << edge.first << ", client key "
                                     << edge.second
                                     << ") matches no edge in the epoch");
  }

  // build() re-checks global invariants: duplicate edges and clients left
  // without any candidate facility (e.g. orphaned by a facility close)
  // fail loudly here.
  return InstanceSnapshot::restore(builder.build(), snap.epoch() + 1,
                                   std::move(fkeys), std::move(ckeys), next_f,
                                   next_c);
}

}  // namespace dflp::fl
