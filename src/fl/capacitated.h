// Soft-capacitated UFL: the paper's natural extension.
//
// Each facility i additionally carries a capacity u_i; it may be opened in
// multiple copies, each copy costing f_i and serving at most u_i clients
// ("soft" capacities). The classic reduction (used by Jain–Vazirani and
// Mahdian–Ye–Zhang) maps the problem back to plain UFL by amortizing the
// copy cost into the connection costs:
//
//     c'_ij = c_ij + f_i / u_i
//
// Solving the modified UFL instance with any a-approximation and paying
// ceil(load_i / u_i) copies per used facility yields a 2a-approximation for
// the soft-capacitated problem. This module implements the reduction, the
// capacitated cost semantics, and the glue that lets every UFL solver in
// the library (including the distributed ones) solve the capacitated
// variant unchanged.
#pragma once

#include <functional>
#include <vector>

#include "fl/instance.h"
#include "fl/solution.h"

namespace dflp::fl {

/// A soft-capacitated instance: the base UFL data plus per-facility
/// capacities (>= 1). Capacity kUncapacitated means "unbounded".
inline constexpr std::int32_t kUncapacitated =
    std::numeric_limits<std::int32_t>::max();

struct SoftCapacitatedInstance {
  Instance base;
  std::vector<std::int32_t> capacity;  ///< size = base.num_facilities()
};

/// Validates shape and capacity positivity.
void validate(const SoftCapacitatedInstance& inst);

/// Number of copies facility i must open to serve `load` clients.
[[nodiscard]] std::int64_t copies_needed(std::int32_t capacity,
                                         std::int64_t load);

/// Capacitated cost of a (plain-UFL-feasible) solution: connection costs
/// plus ceil(load_i/u_i) * f_i for every facility serving >= 1 client.
/// Facilities opened but unused cost one copy each (they were opened).
[[nodiscard]] double soft_capacitated_cost(
    const SoftCapacitatedInstance& inst, const IntegralSolution& solution);

/// The reduction: plain UFL instance with c'_ij = c_ij + f_i/u_i.
/// Uncapacitated facilities keep their costs unchanged.
[[nodiscard]] Instance reduce_to_ufl(const SoftCapacitatedInstance& inst);

/// Solves the capacitated instance with any UFL solver: builds the reduced
/// instance, invokes `solve` on it, and returns the solver's solution
/// (feasible for the base instance — same adjacency) together with its
/// capacitated cost. If `solve` is an a-approximation for UFL, the result
/// is a 2a-approximation for the soft-capacitated problem.
struct SoftCapacitatedResult {
  IntegralSolution solution;
  double cost = 0.0;
  std::int64_t total_copies = 0;
};
[[nodiscard]] SoftCapacitatedResult solve_soft_capacitated(
    const SoftCapacitatedInstance& inst,
    const std::function<IntegralSolution(const Instance&)>& solve);

}  // namespace dflp::fl
