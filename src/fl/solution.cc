#include "fl/solution.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace dflp::fl {

IntegralSolution::IntegralSolution(const Instance& inst)
    : open_(static_cast<std::size_t>(inst.num_facilities()), 0),
      assign_(static_cast<std::size_t>(inst.num_clients()), kNoFacility) {}

void IntegralSolution::open(FacilityId i) {
  auto& flag = open_.at(static_cast<std::size_t>(i));
  if (!flag) {
    flag = 1;
    ++num_open_;
  }
}

bool IntegralSolution::is_open(FacilityId i) const {
  return open_.at(static_cast<std::size_t>(i)) != 0;
}

void IntegralSolution::assign(ClientId j, FacilityId i) {
  assign_.at(static_cast<std::size_t>(j)) = i;
}

FacilityId IntegralSolution::assignment(ClientId j) const {
  return assign_.at(static_cast<std::size_t>(j));
}

int IntegralSolution::assign_greedily(const Instance& inst) {
  int assigned = 0;
  for (ClientId j = 0; j < inst.num_clients(); ++j) {
    for (const ClientEdge& e : inst.client_edges(j)) {  // cost-sorted
      if (is_open(e.facility)) {
        assign_[static_cast<std::size_t>(j)] = e.facility;
        ++assigned;
        break;
      }
    }
  }
  return assigned;
}

int IntegralSolution::prune_unused(const Instance& inst) {
  std::vector<std::uint8_t> used(open_.size(), 0);
  for (ClientId j = 0; j < inst.num_clients(); ++j) {
    const FacilityId i = assign_[static_cast<std::size_t>(j)];
    if (i != kNoFacility) used[static_cast<std::size_t>(i)] = 1;
  }
  int closed = 0;
  for (std::size_t i = 0; i < open_.size(); ++i) {
    if (open_[i] && !used[i]) {
      open_[i] = 0;
      --num_open_;
      ++closed;
    }
  }
  return closed;
}

Cost IntegralSolution::cost(const Instance& inst) const {
  Cost total = 0.0;
  for (FacilityId i = 0; i < inst.num_facilities(); ++i)
    if (is_open(i)) total += inst.opening_cost(i);
  for (ClientId j = 0; j < inst.num_clients(); ++j) {
    const FacilityId i = assign_[static_cast<std::size_t>(j)];
    DFLP_CHECK_MSG(i != kNoFacility,
                   "cost() on infeasible solution: client " << j
                                                            << " unassigned");
    const Cost c = inst.connection_cost(i, j);
    DFLP_CHECK_MSG(std::isfinite(c), "client " << j
                                               << " assigned to non-adjacent "
                                               << i);
    total += c;
  }
  return total;
}

bool IntegralSolution::is_feasible(const Instance& inst,
                                   std::string* why) const {
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (open_.size() != static_cast<std::size_t>(inst.num_facilities()) ||
      assign_.size() != static_cast<std::size_t>(inst.num_clients()))
    return fail("solution shape does not match instance");
  for (ClientId j = 0; j < inst.num_clients(); ++j) {
    const FacilityId i = assign_[static_cast<std::size_t>(j)];
    if (i == kNoFacility) {
      std::ostringstream os;
      os << "client " << j << " unassigned";
      return fail(os.str());
    }
    if (!is_open(i)) {
      std::ostringstream os;
      os << "client " << j << " assigned to closed facility " << i;
      return fail(os.str());
    }
    if (!std::isfinite(inst.connection_cost(i, j))) {
      std::ostringstream os;
      os << "client " << j << " assigned to non-adjacent facility " << i;
      return fail(os.str());
    }
  }
  return true;
}

double FractionalSolution::value(const Instance& inst) const {
  DFLP_CHECK(y.size() == static_cast<std::size_t>(inst.num_facilities()));
  DFLP_CHECK(x.size() == inst.total_client_edges());
  double total = 0.0;
  for (FacilityId i = 0; i < inst.num_facilities(); ++i)
    total += inst.opening_cost(i) * y[static_cast<std::size_t>(i)];
  for (ClientId j = 0; j < inst.num_clients(); ++j) {
    const auto edges = inst.client_edges(j);
    const std::size_t base = inst.client_edge_offset(j);
    for (std::size_t k = 0; k < edges.size(); ++k)
      total += edges[k].cost * x[base + k];
  }
  return total;
}

double FractionalSolution::coverage(const Instance& inst, ClientId j) const {
  const std::size_t base = inst.client_edge_offset(j);
  const std::size_t deg = inst.client_edges(j).size();
  double sum = 0.0;
  for (std::size_t k = 0; k < deg; ++k) sum += x[base + k];
  return sum;
}

bool FractionalSolution::is_feasible(const Instance& inst, double tol,
                                     std::string* why) const {
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (y.size() != static_cast<std::size_t>(inst.num_facilities()) ||
      x.size() != inst.total_client_edges())
    return fail("fractional solution shape does not match instance");
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (!(y[i] >= -tol && y[i] <= 1.0 + tol)) {
      std::ostringstream os;
      os << "y[" << i << "]=" << y[i] << " outside [0,1]";
      return fail(os.str());
    }
  }
  for (ClientId j = 0; j < inst.num_clients(); ++j) {
    const auto edges = inst.client_edges(j);
    const std::size_t base = inst.client_edge_offset(j);
    double cov = 0.0;
    for (std::size_t k = 0; k < edges.size(); ++k) {
      const double xv = x[base + k];
      const double yv = y[static_cast<std::size_t>(edges[k].facility)];
      if (xv < -tol) {
        std::ostringstream os;
        os << "x<0 on client " << j;
        return fail(os.str());
      }
      if (xv > yv + tol) {
        std::ostringstream os;
        os << "x_ij=" << xv << " > y_i=" << yv << " on client " << j
           << " facility " << edges[k].facility;
        return fail(os.str());
      }
      cov += xv;
    }
    if (cov < 1.0 - tol) {
      std::ostringstream os;
      os << "client " << j << " covered only " << cov;
      return fail(os.str());
    }
  }
  return true;
}

}  // namespace dflp::fl
