#include "fl/metric.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/rng.h"

namespace dflp::fl {

double metric_distance(MetricPoint a, MetricPoint b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

double MetricInstance::facility_distance(FacilityId i, FacilityId j) const {
  return metric_distance(facility_pos.at(static_cast<std::size_t>(i)),
                         facility_pos.at(static_cast<std::size_t>(j)));
}

MetricInstance make_metric_instance(const MetricParams& params,
                                    std::uint64_t seed) {
  DFLP_CHECK_MSG(params.facilities > 0 && params.clients > 0,
                 "metric workload needs facilities and clients; got "
                     << params.facilities << "/" << params.clients);
  DFLP_CHECK_MSG(params.clusters >= 1,
                 "metric workload needs >= 1 cluster; got " << params.clusters);
  DFLP_CHECK_MSG(params.side > 0.0 && params.cluster_spread >= 0.0,
                 "degenerate metric geometry: side=" << params.side
                                                     << " spread="
                                                     << params.cluster_spread);
  DFLP_CHECK_MSG(params.opening_min >= 0.0 &&
                     params.opening_max >= params.opening_min,
                 "bad opening-cost range [" << params.opening_min << ", "
                                            << params.opening_max << "]");

  Rng rng(seed);
  std::vector<MetricPoint> centers;
  centers.reserve(static_cast<std::size_t>(params.clusters));
  for (int c = 0; c < params.clusters; ++c)
    centers.push_back({rng.uniform_real(0.0, params.side),
                       rng.uniform_real(0.0, params.side)});
  const auto place = [&](std::size_t index) {
    const MetricPoint& center =
        centers[index % static_cast<std::size_t>(params.clusters)];
    const double s = params.cluster_spread;
    return MetricPoint{center.x + rng.uniform_real(-s, s),
                       center.y + rng.uniform_real(-s, s)};
  };

  MetricInstance out;
  out.facility_pos.reserve(static_cast<std::size_t>(params.facilities));
  out.client_pos.reserve(static_cast<std::size_t>(params.clients));
  InstanceBuilder b;
  b.reserve(params.facilities, params.clients,
            static_cast<std::size_t>(params.facilities) *
                static_cast<std::size_t>(params.clients));
  for (std::int32_t i = 0; i < params.facilities; ++i) {
    out.facility_pos.push_back(place(static_cast<std::size_t>(i)));
    b.add_facility(rng.uniform_real(params.opening_min, params.opening_max));
  }
  for (std::int32_t j = 0; j < params.clients; ++j) {
    out.client_pos.push_back(place(static_cast<std::size_t>(j)));
    b.add_client();
  }
  // Complete bipartite with exact Euclidean costs — metric by construction
  // (check_metric holds with zero tolerance up to floating-point rounding).
  for (std::int32_t i = 0; i < params.facilities; ++i) {
    const MetricPoint fp = out.facility_pos[static_cast<std::size_t>(i)];
    for (std::int32_t j = 0; j < params.clients; ++j)
      b.connect(i, j,
                metric_distance(fp,
                                out.client_pos[static_cast<std::size_t>(j)]));
  }
  out.instance = b.build();
  return out;
}

std::vector<double> facility_metric_closure(const Instance& inst) {
  const auto m = static_cast<std::size_t>(inst.num_facilities());
  std::vector<double> closure(m * m,
                              std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < m; ++i) closure[i * m + i] = 0.0;
  for (ClientId j = 0; j < inst.num_clients(); ++j) {
    const std::span<const ClientEdge> edges = inst.client_edges(j);
    for (std::size_t a = 0; a < edges.size(); ++a) {
      const auto ia = static_cast<std::size_t>(edges[a].facility);
      for (std::size_t bdx = a + 1; bdx < edges.size(); ++bdx) {
        const auto ib = static_cast<std::size_t>(edges[bdx].facility);
        const double through = edges[a].cost + edges[bdx].cost;
        if (through < closure[ia * m + ib]) {
          closure[ia * m + ib] = through;
          closure[ib * m + ia] = through;
        }
      }
    }
  }
  return closure;
}

void check_metric(const Instance& inst, double rel_tol) {
  DFLP_CHECK_MSG(rel_tol >= 0.0, "negative tolerance " << rel_tol);
  const auto m = static_cast<std::size_t>(inst.num_facilities());
  const std::vector<double> closure = facility_metric_closure(inst);
  // The quadrangle inequality c(i,j) <= c(i,j') + c(i',j') + c(i',j),
  // minimized over the bridging client j', is exactly
  //     |c(i,j) - c(i',j)| <= D(i,i')
  // for every client j adjacent to both i and i'.
  for (ClientId j = 0; j < inst.num_clients(); ++j) {
    const std::span<const ClientEdge> edges = inst.client_edges(j);
    for (std::size_t a = 0; a < edges.size(); ++a) {
      for (std::size_t bdx = a + 1; bdx < edges.size(); ++bdx) {
        const ClientEdge& ea = edges[a];
        const ClientEdge& eb = edges[bdx];
        const double gap = std::abs(ea.cost - eb.cost);
        const double bridge =
            closure[static_cast<std::size_t>(ea.facility) * m +
                    static_cast<std::size_t>(eb.facility)];
        const double slack =
            rel_tol * std::max({1.0, ea.cost, eb.cost, bridge});
        DFLP_CHECK_MSG(
            gap <= bridge + slack,
            "triangle inequality violated: |c(i=" << ea.facility << ", j="
                << j << ")=" << ea.cost << " - c(i'=" << eb.facility
                << ", j=" << j << ")=" << eb.cost
                << "| exceeds the facility closure D(i,i')=" << bridge);
      }
    }
  }
}

}  // namespace dflp::fl
