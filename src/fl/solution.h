// Solution types for UFL: integral (what algorithms output) and fractional
// (what the LP stage outputs), with cost evaluation and feasibility checks.
#pragma once

#include <string>
#include <vector>

#include "fl/instance.h"

namespace dflp::fl {

/// An integral solution: a set of open facilities plus an assignment of
/// every client to an open, adjacent facility.
class IntegralSolution {
 public:
  IntegralSolution() = default;
  explicit IntegralSolution(const Instance& inst);

  void open(FacilityId i);
  [[nodiscard]] bool is_open(FacilityId i) const;
  [[nodiscard]] int num_open() const noexcept { return num_open_; }

  void assign(ClientId j, FacilityId i);
  [[nodiscard]] FacilityId assignment(ClientId j) const;

  /// Assigns every client to its cheapest *open* adjacent facility.
  /// Clients with no open neighbour keep kNoFacility (infeasible — caught
  /// by is_feasible). Returns the number of clients assigned.
  int assign_greedily(const Instance& inst);

  /// Drops open facilities that serve no client (cost-only improvement).
  /// Returns the number of facilities closed.
  int prune_unused(const Instance& inst);

  /// Total cost: sum of opening costs of open facilities plus connection
  /// costs of the assignment. Requires a feasible solution.
  [[nodiscard]] Cost cost(const Instance& inst) const;

  /// Checks: every client assigned, to an open facility, along an existing
  /// edge. On failure, fills `why` (if non-null) and returns false.
  [[nodiscard]] bool is_feasible(const Instance& inst,
                                 std::string* why = nullptr) const;

 private:
  std::vector<std::uint8_t> open_;
  std::vector<FacilityId> assign_;
  int num_open_ = 0;
};

/// A fractional solution of the UFL LP:
///   min  sum_i f_i y_i + sum_(ij) c_ij x_ij
///   s.t. sum_i x_ij >= 1        for every client j
///        x_ij <= y_i            for every edge (i, j)
///        x, y >= 0
/// `x` is stored sparsely, aligned with the instance's client-edge array
/// (entry k corresponds to the k-th edge in client-CSR order).
struct FractionalSolution {
  std::vector<double> y;  ///< per facility, size m
  std::vector<double> x;  ///< per client-edge, size total_client_edges()

  explicit FractionalSolution(const Instance& inst)
      : y(static_cast<std::size_t>(inst.num_facilities()), 0.0),
        x(inst.total_client_edges(), 0.0) {}

  [[nodiscard]] double x_at(const Instance& inst, ClientId j,
                            std::size_t edge_index) const {
    return x[inst.client_edge_offset(j) + edge_index];
  }

  /// LP objective value.
  [[nodiscard]] double value(const Instance& inst) const;

  /// Coverage of client j: sum of its x values.
  [[nodiscard]] double coverage(const Instance& inst, ClientId j) const;

  /// Feasibility within tolerance: coverage >= 1 - tol for all clients,
  /// 0 <= x_ij <= y_i + tol, 0 <= y <= 1 + tol.
  [[nodiscard]] bool is_feasible(const Instance& inst, double tol = 1e-7,
                                 std::string* why = nullptr) const;
};

}  // namespace dflp::fl
