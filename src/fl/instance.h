// Uncapacitated facility location (UFL) instances.
//
// An instance is a bipartite structure: `m` facilities with opening costs
// `f_i >= 0` and `n` clients; an edge (i, j) with connection cost
// `c_ij >= 0` means client j *can* be served by facility i — and, in the
// distributed setting, that the two can exchange messages. Costs are
// arbitrary (non-metric) unless a generator says otherwise; the metric
// baselines additionally consume the generator-provided coordinates.
//
// Instances are immutable after construction via `InstanceBuilder`, so they
// can be shared freely across algorithms, threads and repetitions.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace dflp::fl {

using FacilityId = std::int32_t;
using ClientId = std::int32_t;
using Cost = double;

inline constexpr FacilityId kNoFacility = -1;

/// Facility-side view of an edge.
struct FacilityEdge {
  ClientId client = -1;
  Cost cost = 0.0;
};

/// Client-side view of an edge.
struct ClientEdge {
  FacilityId facility = kNoFacility;
  Cost cost = 0.0;
};

/// Aggregate cost statistics of an instance; `rho` is the spread coefficient
/// the PODC'05 bound depends on (max positive cost over min positive cost,
/// across opening and connection costs; 1 for degenerate all-zero
/// instances).
struct CostProfile {
  Cost min_positive = std::numeric_limits<Cost>::infinity();
  Cost max_value = 0.0;
  double rho = 1.0;
  Cost total_opening = 0.0;
  Cost total_connection = 0.0;
};

class Instance;

/// Mutable builder; `build()` validates and freezes.
class InstanceBuilder {
 public:
  /// Size hints for the coming instance: pre-allocates the facility and
  /// edge staging vectors so large builds are not dominated by vector
  /// regrowth. Purely an allocation hint — over- or under-shooting is
  /// harmless.
  void reserve(std::int32_t num_facilities, std::int32_t num_clients,
               std::size_t num_edges);

  /// Returns the new facility's id (dense, in insertion order).
  FacilityId add_facility(Cost opening_cost);

  /// Returns the new client's id (dense, in insertion order).
  ClientId add_client();

  /// Declares that facility `i` can serve client `j` at cost `cost`.
  /// Duplicate (i, j) pairs are rejected at build().
  void connect(FacilityId i, ClientId j, Cost cost);

  /// Validates (every client reachable, costs finite and non-negative, no
  /// duplicate edges) and produces the immutable instance. The builder is
  /// left empty afterwards.
  [[nodiscard]] Instance build();

 private:
  struct RawEdge {
    FacilityId i;
    ClientId j;
    Cost c;
  };
  std::vector<Cost> opening_;
  std::int32_t num_clients_ = 0;
  std::vector<RawEdge> edges_;
};

class Instance {
 public:
  [[nodiscard]] std::int32_t num_facilities() const noexcept {
    return static_cast<std::int32_t>(opening_.size());
  }
  [[nodiscard]] std::int32_t num_clients() const noexcept {
    return num_clients_;
  }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return facility_edges_.size();
  }

  [[nodiscard]] Cost opening_cost(FacilityId i) const {
    return opening_.at(static_cast<std::size_t>(i));
  }

  /// Clients servable by facility i, sorted by ascending connection cost
  /// (ties by client id). The sort order is load-bearing: greedy-style
  /// algorithms take prefixes of this list as candidate stars.
  [[nodiscard]] std::span<const FacilityEdge> facility_edges(
      FacilityId i) const;

  /// Facilities that can serve client j, sorted by ascending connection
  /// cost (ties by facility id).
  [[nodiscard]] std::span<const ClientEdge> client_edges(ClientId j) const;

  /// Offset of client j's first edge in the global client-edge array; used
  /// by FractionalSolution to align its x values with edges.
  [[nodiscard]] std::size_t client_edge_offset(ClientId j) const;
  [[nodiscard]] std::size_t total_client_edges() const noexcept {
    return client_edges_.size();
  }

  /// Connection cost of (i, j), or +inf when not adjacent. Logarithmic in
  /// the facility degree.
  [[nodiscard]] Cost connection_cost(FacilityId i, ClientId j) const;

  [[nodiscard]] int max_facility_degree() const noexcept {
    return max_facility_degree_;
  }
  [[nodiscard]] int max_client_degree() const noexcept {
    return max_client_degree_;
  }

  [[nodiscard]] const CostProfile& cost_profile() const noexcept {
    return profile_;
  }

  /// Upper bound on any solution's cost: open everything, connect everyone
  /// to its cheapest facility.
  [[nodiscard]] Cost open_all_cost() const;

  /// One-line description for logs and table captions.
  [[nodiscard]] std::string describe() const;

  /// Default-constructs an *empty* instance (0 facilities/clients); only
  /// useful as a placeholder to move a built instance into.
  Instance() = default;

 private:
  friend class InstanceBuilder;

  std::vector<Cost> opening_;
  std::int32_t num_clients_ = 0;

  std::vector<std::int32_t> facility_offset_;  // size m+1
  std::vector<FacilityEdge> facility_edges_;   // grouped by facility
  std::vector<std::int32_t> client_offset_;    // size n+1
  std::vector<ClientEdge> client_edges_;       // grouped by client

  int max_facility_degree_ = 0;
  int max_client_degree_ = 0;
  CostProfile profile_;
};

}  // namespace dflp::fl
