// Plain-text (de)serialization of UFL instances.
//
// Format (whitespace separated):
//   dflp-ufl 1
//   <m> <n> <E>
//   <f_0> ... <f_{m-1}>
//   <i> <j> <c>     (E edge lines: facility, client, connection cost)
//
// The format is line-oriented and diff-friendly so pathological instances
// found by tests can be checked in as fixtures.
#pragma once

#include <iosfwd>
#include <string>

#include "fl/instance.h"

namespace dflp::fl {

/// Writes `inst` in the dflp-ufl v1 format.
void write_instance(std::ostream& os, const Instance& inst);

/// Convenience: render to a string.
[[nodiscard]] std::string to_text(const Instance& inst);

/// Parses a dflp-ufl v1 stream. Throws dflp::CheckError on malformed input.
[[nodiscard]] Instance read_instance(std::istream& is);

/// Convenience: parse from a string.
[[nodiscard]] Instance from_text(const std::string& text);

}  // namespace dflp::fl
