// Plain-text (de)serialization of UFL instances, snapshots and delta logs.
//
// Instance format (whitespace separated):
//   dflp-ufl 1
//   <m> <n> <E>
//   <f_0> ... <f_{m-1}>
//   <i> <j> <c>     (E edge lines: facility, client, connection cost)
//
// Snapshot format wraps an instance with its epoch and stable-key maps:
//   dflp-snap 1
//   <epoch> <next_facility_key> <next_client_key>
//   <embedded dflp-ufl 1 block>
//   <m facility keys, ascending>
//   <n client keys, ascending>
//
// Delta-log format, one delta per line after the count:
//   dflp-delta-log 1
//   <count>
//   arrive <client_key> <deg> (<facility_key> <cost>)*
//   depart <client_key>
//   open <facility_key> <opening_cost> <deg> (<client_key> <cost>)*
//   close <facility_key>
//   reprice <facility_key> <client_key> <new_cost>
//
// All formats are line-oriented and diff-friendly so pathological inputs
// found by tests can be checked in as fixtures.
#pragma once

#include <iosfwd>
#include <string>

#include "fl/delta.h"
#include "fl/instance.h"

namespace dflp::fl {

/// Writes `inst` in the dflp-ufl v1 format.
void write_instance(std::ostream& os, const Instance& inst);

/// Convenience: render to a string.
[[nodiscard]] std::string to_text(const Instance& inst);

/// Parses a dflp-ufl v1 stream. Throws dflp::CheckError on malformed input.
[[nodiscard]] Instance read_instance(std::istream& is);

/// Convenience: parse from a string.
[[nodiscard]] Instance from_text(const std::string& text);

/// Writes `snap` in the dflp-snap v1 format (embeds the instance).
void write_snapshot(std::ostream& os, const InstanceSnapshot& snap);
[[nodiscard]] std::string snapshot_to_text(const InstanceSnapshot& snap);

/// Parses a dflp-snap v1 stream; throws dflp::CheckError on malformed
/// input or broken key invariants.
[[nodiscard]] InstanceSnapshot read_snapshot(std::istream& is);
[[nodiscard]] InstanceSnapshot snapshot_from_text(const std::string& text);

/// Writes `log` in the dflp-delta-log v1 format.
void write_delta_log(std::ostream& os, const DeltaLog& log);
[[nodiscard]] std::string delta_log_to_text(const DeltaLog& log);

/// Parses a dflp-delta-log v1 stream; throws dflp::CheckError on
/// malformed input.
[[nodiscard]] DeltaLog read_delta_log(std::istream& is);
[[nodiscard]] DeltaLog delta_log_from_text(const std::string& text);

}  // namespace dflp::fl
