#include "fl/serialize.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace dflp::fl {

void write_instance(std::ostream& os, const Instance& inst) {
  os << "dflp-ufl 1\n";
  os << inst.num_facilities() << ' ' << inst.num_clients() << ' '
     << inst.num_edges() << '\n';
  os.precision(17);
  for (FacilityId i = 0; i < inst.num_facilities(); ++i) {
    os << inst.opening_cost(i) << (i + 1 < inst.num_facilities() ? ' ' : '\n');
  }
  for (FacilityId i = 0; i < inst.num_facilities(); ++i) {
    for (const FacilityEdge& e : inst.facility_edges(i)) {
      os << i << ' ' << e.client << ' ' << e.cost << '\n';
    }
  }
}

std::string to_text(const Instance& inst) {
  std::ostringstream os;
  write_instance(os, inst);
  return os.str();
}

Instance read_instance(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  DFLP_CHECK_MSG(is && magic == "dflp-ufl" && version == 1,
                 "bad header: expected 'dflp-ufl 1', got '" << magic << ' '
                                                            << version << "'");
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t edges = 0;
  is >> m >> n >> edges;
  DFLP_CHECK_MSG(is && m > 0 && n > 0 && edges >= 0,
                 "bad dimensions m=" << m << " n=" << n << " E=" << edges);

  InstanceBuilder builder;
  for (std::int64_t i = 0; i < m; ++i) {
    Cost f = 0.0;
    is >> f;
    DFLP_CHECK_MSG(is.good() || is.eof(), "truncated opening costs");
    DFLP_CHECK_MSG(!is.fail(), "malformed opening cost at index " << i);
    builder.add_facility(f);
  }
  for (std::int64_t j = 0; j < n; ++j) builder.add_client();
  for (std::int64_t e = 0; e < edges; ++e) {
    std::int64_t i = 0;
    std::int64_t j = 0;
    Cost c = 0.0;
    is >> i >> j >> c;
    DFLP_CHECK_MSG(!is.fail(), "malformed edge line " << e);
    builder.connect(static_cast<FacilityId>(i), static_cast<ClientId>(j), c);
  }
  return builder.build();
}

Instance from_text(const std::string& text) {
  std::istringstream is(text);
  return read_instance(is);
}

void write_snapshot(std::ostream& os, const InstanceSnapshot& snap) {
  os << "dflp-snap 1\n";
  os << snap.epoch() << ' ' << snap.next_facility_key() << ' '
     << snap.next_client_key() << '\n';
  write_instance(os, snap.instance());
  const Instance& inst = snap.instance();
  for (FacilityId i = 0; i < inst.num_facilities(); ++i)
    os << snap.facility_key(i) << (i + 1 < inst.num_facilities() ? ' ' : '\n');
  for (ClientId j = 0; j < inst.num_clients(); ++j)
    os << snap.client_key(j) << (j + 1 < inst.num_clients() ? ' ' : '\n');
}

std::string snapshot_to_text(const InstanceSnapshot& snap) {
  std::ostringstream os;
  write_snapshot(os, snap);
  return os.str();
}

InstanceSnapshot read_snapshot(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  DFLP_CHECK_MSG(is && magic == "dflp-snap" && version == 1,
                 "bad header: expected 'dflp-snap 1', got '"
                     << magic << ' ' << version << "'");
  EpochId epoch = 0;
  NodeKey next_f = 0;
  NodeKey next_c = 0;
  is >> epoch >> next_f >> next_c;
  DFLP_CHECK_MSG(!is.fail(), "malformed snapshot epoch line");
  Instance inst = read_instance(is);
  std::vector<NodeKey> fkeys(static_cast<std::size_t>(inst.num_facilities()));
  std::vector<NodeKey> ckeys(static_cast<std::size_t>(inst.num_clients()));
  for (NodeKey& k : fkeys) is >> k;
  DFLP_CHECK_MSG(!is.fail(), "truncated facility keys");
  for (NodeKey& k : ckeys) is >> k;
  DFLP_CHECK_MSG(!is.fail(), "truncated client keys");
  return InstanceSnapshot::restore(std::move(inst), epoch, std::move(fkeys),
                                   std::move(ckeys), next_f, next_c);
}

InstanceSnapshot snapshot_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_snapshot(is);
}

void write_delta_log(std::ostream& os, const DeltaLog& log) {
  os << "dflp-delta-log 1\n" << log.size() << '\n';
  os.precision(17);
  for (const Delta& d : log.deltas()) {
    switch (d.kind) {
      case Delta::Kind::kClientArrive:
        os << "arrive " << d.client << ' ' << d.edges.size();
        for (const KeyedEdge& e : d.edges) os << ' ' << e.peer << ' '
                                              << e.cost;
        os << '\n';
        break;
      case Delta::Kind::kClientDepart:
        os << "depart " << d.client << '\n';
        break;
      case Delta::Kind::kFacilityOpen:
        os << "open " << d.facility << ' ' << d.cost << ' '
           << d.edges.size();
        for (const KeyedEdge& e : d.edges) os << ' ' << e.peer << ' '
                                              << e.cost;
        os << '\n';
        break;
      case Delta::Kind::kFacilityClose:
        os << "close " << d.facility << '\n';
        break;
      case Delta::Kind::kEdgeCostChange:
        os << "reprice " << d.facility << ' ' << d.client << ' ' << d.cost
           << '\n';
        break;
    }
  }
}

std::string delta_log_to_text(const DeltaLog& log) {
  std::ostringstream os;
  write_delta_log(os, log);
  return os.str();
}

DeltaLog read_delta_log(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  DFLP_CHECK_MSG(is && magic == "dflp-delta-log" && version == 1,
                 "bad header: expected 'dflp-delta-log 1', got '"
                     << magic << ' ' << version << "'");
  std::int64_t count = 0;
  is >> count;
  DFLP_CHECK_MSG(!is.fail() && count >= 0, "bad delta count " << count);

  const auto read_edges = [&is](std::int64_t line) {
    std::int64_t deg = 0;
    is >> deg;
    DFLP_CHECK_MSG(!is.fail() && deg >= 0,
                   "bad edge count on delta line " << line);
    std::vector<KeyedEdge> edges(static_cast<std::size_t>(deg));
    for (KeyedEdge& e : edges) is >> e.peer >> e.cost;
    DFLP_CHECK_MSG(!is.fail(), "truncated edges on delta line " << line);
    return edges;
  };

  DeltaLog log;
  for (std::int64_t t = 0; t < count; ++t) {
    std::string kind;
    is >> kind;
    DFLP_CHECK_MSG(!is.fail(), "truncated delta log at entry " << t);
    if (kind == "arrive") {
      NodeKey c = kNoKey;
      is >> c;
      log.append(Delta::client_arrive(c, read_edges(t)));
    } else if (kind == "depart") {
      NodeKey c = kNoKey;
      is >> c;
      log.append(Delta::client_depart(c));
    } else if (kind == "open") {
      NodeKey f = kNoKey;
      Cost opening = 0.0;
      is >> f >> opening;
      log.append(Delta::facility_open(f, opening, read_edges(t)));
    } else if (kind == "close") {
      NodeKey f = kNoKey;
      is >> f;
      log.append(Delta::facility_close(f));
    } else if (kind == "reprice") {
      NodeKey f = kNoKey;
      NodeKey c = kNoKey;
      Cost cost = 0.0;
      is >> f >> c >> cost;
      log.append(Delta::edge_cost_change(f, c, cost));
    } else {
      DFLP_CHECK_MSG(false, "unknown delta kind '" << kind << "' at entry "
                                                   << t);
    }
    DFLP_CHECK_MSG(!is.fail(), "malformed delta at entry " << t);
  }
  return log;
}

DeltaLog delta_log_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_delta_log(is);
}

}  // namespace dflp::fl
