#include "fl/serialize.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace dflp::fl {

void write_instance(std::ostream& os, const Instance& inst) {
  os << "dflp-ufl 1\n";
  os << inst.num_facilities() << ' ' << inst.num_clients() << ' '
     << inst.num_edges() << '\n';
  os.precision(17);
  for (FacilityId i = 0; i < inst.num_facilities(); ++i) {
    os << inst.opening_cost(i) << (i + 1 < inst.num_facilities() ? ' ' : '\n');
  }
  for (FacilityId i = 0; i < inst.num_facilities(); ++i) {
    for (const FacilityEdge& e : inst.facility_edges(i)) {
      os << i << ' ' << e.client << ' ' << e.cost << '\n';
    }
  }
}

std::string to_text(const Instance& inst) {
  std::ostringstream os;
  write_instance(os, inst);
  return os.str();
}

Instance read_instance(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  DFLP_CHECK_MSG(is && magic == "dflp-ufl" && version == 1,
                 "bad header: expected 'dflp-ufl 1', got '" << magic << ' '
                                                            << version << "'");
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t edges = 0;
  is >> m >> n >> edges;
  DFLP_CHECK_MSG(is && m > 0 && n > 0 && edges >= 0,
                 "bad dimensions m=" << m << " n=" << n << " E=" << edges);

  InstanceBuilder builder;
  for (std::int64_t i = 0; i < m; ++i) {
    Cost f = 0.0;
    is >> f;
    DFLP_CHECK_MSG(is.good() || is.eof(), "truncated opening costs");
    DFLP_CHECK_MSG(!is.fail(), "malformed opening cost at index " << i);
    builder.add_facility(f);
  }
  for (std::int64_t j = 0; j < n; ++j) builder.add_client();
  for (std::int64_t e = 0; e < edges; ++e) {
    std::int64_t i = 0;
    std::int64_t j = 0;
    Cost c = 0.0;
    is >> i >> j >> c;
    DFLP_CHECK_MSG(!is.fail(), "malformed edge line " << e);
    builder.connect(static_cast<FacilityId>(i), static_cast<ClientId>(j), c);
  }
  return builder.build();
}

Instance from_text(const std::string& text) {
  std::istringstream is(text);
  return read_instance(is);
}

}  // namespace dflp::fl
