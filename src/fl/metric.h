// Metric UFL instances: generators, the bipartite metric closure, and a
// triangle-inequality validator.
//
// The metric solver suite (seq/mettu_plaxton, seq/jms, core/metric_baseline,
// core/clique_fl) carries approximation guarantees only when connection
// costs obey the metric axioms. A bipartite instance exposes no direct
// facility–facility or client–client distances, so "metric" here means the
// costs embed into some metric space — equivalently, they satisfy the
// *quadrangle inequality*
//     c(i, j) <= c(i, j') + c(i', j') + c(i', j)
// for every pair of facilities i, i' and clients j, j' where the right-hand
// edges exist. `check_metric` verifies exactly that (via the closure below)
// and throws a named CheckError on the first violation.
//
// `MetricInstance` couples an Instance with the generator's explicit 2-D
// sites; algorithms in the "metric is local knowledge" model (the congested
// clique, arXiv:1308.2473) read facility–facility distances from the sites
// in O(1) instead of paying the O(n·m^2) closure.
#pragma once

#include <cstdint>
#include <vector>

#include "fl/instance.h"

namespace dflp::fl {

/// A generator-provided site in the plane.
struct MetricPoint {
  double x = 0.0;
  double y = 0.0;
};

/// Euclidean distance between two sites.
[[nodiscard]] double metric_distance(MetricPoint a, MetricPoint b) noexcept;

/// A UFL instance whose connection costs are realized as Euclidean
/// distances between explicit facility/client sites (complete bipartite, so
/// every client can reach every facility). The sites are the "metric as
/// local knowledge" side channel the clique algorithms assume: node i can
/// evaluate d(i, i') without any communication.
struct MetricInstance {
  Instance instance;
  std::vector<MetricPoint> facility_pos;  ///< size num_facilities()
  std::vector<MetricPoint> client_pos;    ///< size num_clients()

  /// Exact facility–facility distance, O(1) from the sites.
  [[nodiscard]] double facility_distance(FacilityId i, FacilityId j) const;
};

/// Knobs of the clustered-plane generator.
struct MetricParams {
  std::int32_t facilities = 32;
  std::int32_t clients = 128;
  /// Facility/client sites cluster around this many seeded centers (1 =
  /// uniform in the square). Clustering is what gives metric instances
  /// non-trivial facility conflict structure.
  int clusters = 8;
  double side = 1000.0;           ///< bounding square [0, side]^2
  double cluster_spread = 60.0;   ///< max |offset| from the cluster center
  double opening_min = 200.0;     ///< opening costs uniform in this range
  double opening_max = 800.0;
};

/// Seeded deterministic metric workload: cluster centers uniform in the
/// square, sites uniform in a box around their (round-robin) center,
/// opening costs uniform, connection costs the exact Euclidean distances
/// over the complete bipartite graph.
[[nodiscard]] MetricInstance make_metric_instance(const MetricParams& params,
                                                  std::uint64_t seed);

/// The bipartite metric closure: a row-major m×m matrix with
///     D(i, i') = min_j (c_ij + c_i'j)
/// over shared clients (+inf when i and i' share none; 0 on the diagonal).
/// This is the tightest facility–facility bound derivable from the instance
/// alone, the distance Mettu–Plaxton-style open rules consult. O(sum over
/// clients of degree^2) — quadratic in m on complete bipartite instances.
[[nodiscard]] std::vector<double> facility_metric_closure(
    const Instance& inst);

/// Validates the quadrangle inequality over every (facility, facility,
/// client) triple reachable through the closure, with relative tolerance
/// `rel_tol`. Throws dflp::CheckError naming the violating triple
/// ("triangle inequality violated: ...") on the first failure; returns
/// normally iff the instance is metric-consistent. Same complexity as the
/// closure.
void check_metric(const Instance& inst, double rel_tol = 1e-9);

}  // namespace dflp::fl
