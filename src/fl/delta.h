// Snapshot + delta-log representation of a *live* UFL instance.
//
// A static `fl::Instance` is immutable by design; a service under live
// traffic instead owns an `InstanceSnapshot` — an immutable instance plus
// an epoch id and *stable keys* for every facility and client — and an
// append-only `DeltaLog` of typed updates. `apply(snapshot, log)` produces
// the next snapshot (epoch + 1) by rebuilding the CSR arrays through
// `InstanceBuilder`, so the result is bit-identical to building the mutated
// instance from scratch in canonical order (the property tests pin this
// down).
//
// Stable keys vs dense ids. Dense `FacilityId`/`ClientId` values are
// re-assigned on every apply() (survivors keep their relative order, new
// arrivals are appended in log order), so anything that must survive an
// epoch boundary — deltas, cached per-component solutions, recourse
// accounting — speaks stable `NodeKey`s instead. Keys are allocated
// strictly increasing per side and never reused, which keeps the dense
// renumbering monotone: the key vectors of every snapshot are sorted, and
// key -> dense lookups are binary searches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fl/instance.h"

namespace dflp::fl {

/// Stable identity of a facility or client across epochs. Facility and
/// client keys live in separate spaces.
using NodeKey = std::int64_t;
inline constexpr NodeKey kNoKey = -1;

/// Monotone epoch counter; epoch e is the result of e apply() steps.
using EpochId = std::int64_t;

/// One endpoint + cost of an edge carried by a delta; `peer` is a facility
/// key inside client deltas and a client key inside facility deltas.
struct KeyedEdge {
  NodeKey peer = kNoKey;
  Cost cost = 0.0;
};

/// One typed update. Use the factory functions; `apply()` validates fields
/// against the snapshot it is applied to and throws dflp::CheckError on
/// inconsistent updates (unknown keys, duplicate arrivals, edges to absent
/// nodes, a departure that would leave a client uncovered, ...).
struct Delta {
  enum class Kind : std::uint8_t {
    kClientArrive,    ///< new client + its initial edge set (>= 1 edge)
    kClientDepart,    ///< client leaves; its edges go with it
    kFacilityOpen,    ///< new candidate facility + its initial edge set
    kFacilityClose,   ///< facility decommissioned; must not orphan clients
    kEdgeCostChange,  ///< re-prices one existing edge
  };

  Kind kind = Kind::kClientArrive;
  NodeKey facility = kNoKey;    ///< open/close/edge-change
  NodeKey client = kNoKey;      ///< arrive/depart/edge-change
  Cost cost = 0.0;              ///< opening cost (open) / new edge cost
  std::vector<KeyedEdge> edges; ///< arrive: facility peers; open: clients

  static Delta client_arrive(NodeKey client, std::vector<KeyedEdge> edges);
  static Delta client_depart(NodeKey client);
  static Delta facility_open(NodeKey facility, Cost opening_cost,
                             std::vector<KeyedEdge> edges);
  static Delta facility_close(NodeKey facility);
  static Delta edge_cost_change(NodeKey facility, NodeKey client,
                                Cost new_cost);
};

[[nodiscard]] std::string delta_kind_name(Delta::Kind kind);

/// Append-only batch of updates; the streaming service fills one per epoch
/// and hands it to apply().
class DeltaLog {
 public:
  void append(Delta delta) { deltas_.push_back(std::move(delta)); }
  [[nodiscard]] const std::vector<Delta>& deltas() const noexcept {
    return deltas_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return deltas_.size(); }
  [[nodiscard]] bool empty() const noexcept { return deltas_.empty(); }
  /// Drops every entry (the only non-append mutation; used to recycle the
  /// batch buffer between epochs).
  void clear() { deltas_.clear(); }

 private:
  std::vector<Delta> deltas_;
};

/// Immutable instance + epoch id + stable-key maps. Copyable; apply()
/// returns a new snapshot and leaves the input untouched.
class InstanceSnapshot {
 public:
  /// Wraps a freshly built instance as epoch 0; facility i gets key i,
  /// client j gets key j.
  [[nodiscard]] static InstanceSnapshot initial(Instance inst);

  /// Re-assembles a snapshot from serialized parts. Key vectors must be
  /// strictly increasing (the invariant apply() maintains) and sized to
  /// the instance; next-key counters must exceed every present key.
  [[nodiscard]] static InstanceSnapshot restore(
      Instance inst, EpochId epoch, std::vector<NodeKey> facility_keys,
      std::vector<NodeKey> client_keys, NodeKey next_facility_key,
      NodeKey next_client_key);

  [[nodiscard]] const Instance& instance() const noexcept { return inst_; }
  [[nodiscard]] EpochId epoch() const noexcept { return epoch_; }

  [[nodiscard]] NodeKey facility_key(FacilityId i) const;
  [[nodiscard]] NodeKey client_key(ClientId j) const;

  /// Dense id currently bound to a key, or -1 when the key is not present
  /// in this snapshot. O(log m) / O(log n).
  [[nodiscard]] FacilityId facility_index(NodeKey key) const;
  [[nodiscard]] ClientId client_index(NodeKey key) const;

  /// Next fresh keys; arrivals in a delta log must use keys allocated from
  /// here upward, strictly increasing within the log.
  [[nodiscard]] NodeKey next_facility_key() const noexcept {
    return next_facility_key_;
  }
  [[nodiscard]] NodeKey next_client_key() const noexcept {
    return next_client_key_;
  }

  /// Default-constructs an *empty* snapshot (mirrors Instance()); only a
  /// placeholder to move a real snapshot into.
  InstanceSnapshot() = default;

 private:
  Instance inst_;
  EpochId epoch_ = 0;
  std::vector<NodeKey> facility_keys_;  // dense -> stable, sorted ascending
  std::vector<NodeKey> client_keys_;    // dense -> stable, sorted ascending
  NodeKey next_facility_key_ = 0;
  NodeKey next_client_key_ = 0;
};

/// Applies `log` to `snap`, producing the epoch+1 snapshot. Survivor nodes
/// keep their relative dense order; arrivals are appended in log order.
/// Edge-cost changes re-price the edge in the *final* topology
/// (last-writer-wins when a log re-prices the same edge twice); a change
/// whose edge or endpoints do not survive the log is an error. Throws
/// dflp::CheckError on any inconsistent delta.
[[nodiscard]] InstanceSnapshot apply(const InstanceSnapshot& snap,
                                     const DeltaLog& log);

}  // namespace dflp::fl
