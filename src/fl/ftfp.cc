#include "fl/ftfp.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "fl/serialize.h"

namespace dflp::fl {

std::int32_t FtfpInstance::max_requirement() const {
  std::int32_t r_max = 0;
  for (const std::int32_t r : requirement) r_max = std::max(r_max, r);
  return r_max;
}

std::string FtfpInstance::describe() const {
  std::ostringstream os;
  os << base.describe() << ", r_max=" << max_requirement();
  return os.str();
}

void validate(const FtfpInstance& inst) {
  DFLP_CHECK_MSG(static_cast<std::int32_t>(inst.requirement.size()) ==
                     inst.base.num_clients(),
                 "requirement vector has " << inst.requirement.size()
                                           << " entries for "
                                           << inst.base.num_clients()
                                           << " clients");
  for (ClientId j = 0; j < inst.base.num_clients(); ++j) {
    const std::int32_t r = inst.requirement[static_cast<std::size_t>(j)];
    DFLP_CHECK_MSG(r >= 1, "client " << j << " requires " << r
                                     << " facilities; must be >= 1");
    const auto degree =
        static_cast<std::int32_t>(inst.base.client_edges(j).size());
    DFLP_CHECK_MSG(r <= degree,
                   "client " << j << " requires " << r
                             << " distinct facilities but reaches only "
                             << degree);
  }
}

FtfpInstance with_uniform_requirement(Instance base, std::int32_t r) {
  DFLP_CHECK_MSG(r >= 1, "uniform requirement must be >= 1, got " << r);
  FtfpInstance inst;
  inst.requirement.resize(static_cast<std::size_t>(base.num_clients()));
  for (ClientId j = 0; j < base.num_clients(); ++j) {
    inst.requirement[static_cast<std::size_t>(j)] = std::min(
        r, static_cast<std::int32_t>(base.client_edges(j).size()));
  }
  inst.base = std::move(base);
  return inst;
}

FtfpSolution::FtfpSolution(const FtfpInstance& inst)
    : open_(static_cast<std::size_t>(inst.base.num_facilities()), 0),
      assign_(static_cast<std::size_t>(inst.base.num_clients())) {}

void FtfpSolution::open(FacilityId i) {
  auto& flag = open_.at(static_cast<std::size_t>(i));
  if (!flag) {
    flag = 1;
    ++num_open_;
  }
}

bool FtfpSolution::is_open(FacilityId i) const {
  return open_.at(static_cast<std::size_t>(i)) != 0;
}

void FtfpSolution::assign(ClientId j, FacilityId i) {
  auto& list = assign_.at(static_cast<std::size_t>(j));
  DFLP_CHECK_MSG(std::find(list.begin(), list.end(), i) == list.end(),
                 "client " << j << " already assigned to facility " << i
                           << " (FTFP assignments must be distinct)");
  list.push_back(i);
}

std::span<const FacilityId> FtfpSolution::assignments(ClientId j) const {
  return assign_.at(static_cast<std::size_t>(j));
}

int FtfpSolution::coverage(ClientId j) const {
  return static_cast<int>(assign_.at(static_cast<std::size_t>(j)).size());
}

Cost FtfpSolution::cost(const FtfpInstance& inst) const {
  Cost total = 0.0;
  for (FacilityId i = 0; i < inst.base.num_facilities(); ++i)
    if (is_open(i)) total += inst.base.opening_cost(i);
  for (ClientId j = 0; j < inst.base.num_clients(); ++j)
    for (const FacilityId i : assignments(j))
      total += inst.base.connection_cost(i, j);
  return total;
}

bool FtfpSolution::is_feasible(const FtfpInstance& inst,
                               std::string* why) const {
  const auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (static_cast<std::int32_t>(assign_.size()) != inst.base.num_clients())
    return fail("solution sized for a different instance");
  for (ClientId j = 0; j < inst.base.num_clients(); ++j) {
    const auto& list = assign_[static_cast<std::size_t>(j)];
    const std::int32_t r = inst.requirement[static_cast<std::size_t>(j)];
    if (static_cast<std::int32_t>(list.size()) < r) {
      std::ostringstream os;
      os << "client " << j << " covered by " << list.size()
         << " facilities; requires " << r;
      return fail(os.str());
    }
    std::vector<FacilityId> sorted(list.begin(), list.end());
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      std::ostringstream os;
      os << "client " << j << " assigned to a facility twice";
      return fail(os.str());
    }
    for (const FacilityId i : list) {
      if (!is_open(i)) {
        std::ostringstream os;
        os << "client " << j << " assigned to closed facility " << i;
        return fail(os.str());
      }
      if (inst.base.connection_cost(i, j) ==
          std::numeric_limits<Cost>::infinity()) {
        std::ostringstream os;
        os << "client " << j << " assigned to non-adjacent facility " << i;
        return fail(os.str());
      }
    }
  }
  return true;
}

IntegralSolution FtfpSolution::primaries(const FtfpInstance& inst) const {
  IntegralSolution primary(inst.base);
  for (FacilityId i = 0; i < inst.base.num_facilities(); ++i)
    if (is_open(i)) primary.open(i);
  for (ClientId j = 0; j < inst.base.num_clients(); ++j) {
    FacilityId best = kNoFacility;
    Cost best_cost = std::numeric_limits<Cost>::infinity();
    for (const FacilityId i : assignments(j)) {
      const Cost c = inst.base.connection_cost(i, j);
      if (c < best_cost || (c == best_cost && i < best)) {
        best = i;
        best_cost = c;
      }
    }
    if (best != kNoFacility) primary.assign(j, best);
  }
  return primary;
}

std::string FtfpSolution::fingerprint(const FtfpInstance& inst) const {
  std::ostringstream os;
  os << "open:";
  for (FacilityId i = 0; i < inst.base.num_facilities(); ++i)
    if (is_open(i)) os << i << ",";
  os << ";assign:";
  for (ClientId j = 0; j < inst.base.num_clients(); ++j) {
    os << "[";
    for (const FacilityId i : assignments(j)) os << i << ",";
    os << "]";
  }
  return os.str();
}

void write_ftfp_instance(std::ostream& os, const FtfpInstance& inst) {
  validate(inst);
  os << "dflp-ftfp 1\n";
  write_instance(os, inst.base);
  for (std::size_t j = 0; j < inst.requirement.size(); ++j)
    os << inst.requirement[j] << (j + 1 < inst.requirement.size() ? ' ' : '\n');
}

std::string ftfp_to_text(const FtfpInstance& inst) {
  std::ostringstream os;
  write_ftfp_instance(os, inst);
  return os.str();
}

FtfpInstance read_ftfp_instance(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  DFLP_CHECK_MSG(is.good() && magic == "dflp-ftfp" && version == 1,
                 "expected 'dflp-ftfp 1' header, got '" << magic << " "
                                                        << version << "'");
  FtfpInstance inst;
  inst.base = read_instance(is);
  inst.requirement.resize(static_cast<std::size_t>(inst.base.num_clients()));
  for (std::size_t j = 0; j < inst.requirement.size(); ++j) {
    is >> inst.requirement[j];
    DFLP_CHECK_MSG(!is.fail(), "truncated requirement vector at client " << j);
  }
  validate(inst);
  return inst;
}

FtfpInstance ftfp_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_ftfp_instance(is);
}

ReplicatedUfl replicate_demands(const FtfpInstance& inst) {
  validate(inst);
  ReplicatedUfl out;
  std::size_t total_copies = 0;
  std::size_t total_edges = 0;
  for (ClientId j = 0; j < inst.base.num_clients(); ++j) {
    const auto r =
        static_cast<std::size_t>(inst.requirement[static_cast<std::size_t>(j)]);
    total_copies += r;
    total_edges += r * inst.base.client_edges(j).size();
  }

  InstanceBuilder builder;
  builder.reserve(inst.base.num_facilities(),
                  static_cast<std::int32_t>(total_copies), total_edges);
  for (FacilityId i = 0; i < inst.base.num_facilities(); ++i)
    builder.add_facility(inst.base.opening_cost(i));
  out.copy_owner.reserve(total_copies);
  for (ClientId j = 0; j < inst.base.num_clients(); ++j) {
    const std::int32_t r = inst.requirement[static_cast<std::size_t>(j)];
    for (std::int32_t c = 0; c < r; ++c) {
      const ClientId copy = builder.add_client();
      out.copy_owner.push_back(j);
      for (const ClientEdge& e : inst.base.client_edges(j))
        builder.connect(e.facility, copy, e.cost);
    }
  }
  out.instance = builder.build();
  return out;
}

FtfpSolution ftfp_from_replicated(const FtfpInstance& inst,
                                  const ReplicatedUfl& replicated,
                                  const IntegralSolution& ufl_solution) {
  std::string why;
  DFLP_CHECK_MSG(ufl_solution.is_feasible(replicated.instance, &why),
                 "replicated UFL solution infeasible: " << why);
  FtfpSolution out(inst);
  for (FacilityId i = 0; i < replicated.instance.num_facilities(); ++i)
    if (ufl_solution.is_open(i)) out.open(i);

  // Collect the distinct facilities each original client's copies landed on.
  std::vector<std::vector<FacilityId>> chosen(
      static_cast<std::size_t>(inst.base.num_clients()));
  for (ClientId copy = 0; copy < replicated.instance.num_clients(); ++copy) {
    const ClientId owner =
        replicated.copy_owner[static_cast<std::size_t>(copy)];
    auto& list = chosen[static_cast<std::size_t>(owner)];
    const FacilityId i = ufl_solution.assignment(copy);
    if (std::find(list.begin(), list.end(), i) == list.end())
      list.push_back(i);
  }

  for (ClientId j = 0; j < inst.base.num_clients(); ++j) {
    auto& list = chosen[static_cast<std::size_t>(j)];
    const std::int32_t r = inst.requirement[static_cast<std::size_t>(j)];
    // Repair pass 1: top up from already-open adjacent facilities, in
    // ascending connection cost (client_edges order).
    if (static_cast<std::int32_t>(list.size()) < r) {
      for (const ClientEdge& e : inst.base.client_edges(j)) {
        if (static_cast<std::int32_t>(list.size()) >= r) break;
        if (!out.is_open(e.facility)) continue;
        if (std::find(list.begin(), list.end(), e.facility) != list.end())
          continue;
        list.push_back(e.facility);
      }
    }
    // Repair pass 2: open the cheapest unused neighbours for what remains.
    if (static_cast<std::int32_t>(list.size()) < r) {
      for (const ClientEdge& e : inst.base.client_edges(j)) {
        if (static_cast<std::int32_t>(list.size()) >= r) break;
        if (std::find(list.begin(), list.end(), e.facility) != list.end())
          continue;
        out.open(e.facility);
        list.push_back(e.facility);
      }
    }
    for (const FacilityId i : list) out.assign(j, i);
  }

  DFLP_CHECK_MSG(out.is_feasible(inst, &why),
                 "replication map-back must be feasible: " << why);
  return out;
}

FtfpSolution solve_ftfp_by_replication(
    const FtfpInstance& inst,
    const std::function<IntegralSolution(const Instance&)>& solve) {
  const ReplicatedUfl replicated = replicate_demands(inst);
  return ftfp_from_replicated(inst, replicated, solve(replicated.instance));
}

}  // namespace dflp::fl
