#include "workload/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace dflp::workload {

namespace {

/// Picks `k` distinct values from [0, n) uniformly (partial Fisher–Yates
/// over an index vector; fine for the generator sizes we use).
std::vector<std::int32_t> sample_distinct(std::int32_t n, std::int32_t k,
                                          Rng& rng) {
  DFLP_CHECK(k <= n);
  std::vector<std::int32_t> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  for (std::int32_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::int32_t>(
        rng.uniform_u64(static_cast<std::uint64_t>(n - i))) + i;
    std::swap(idx[static_cast<std::size_t>(i)],
              idx[static_cast<std::size_t>(j)]);
  }
  idx.resize(static_cast<std::size_t>(k));
  return idx;
}

}  // namespace

fl::Instance uniform_random(const UniformParams& params, std::uint64_t seed) {
  DFLP_CHECK(params.num_facilities > 0 && params.num_clients > 0);
  DFLP_CHECK(params.opening_lo >= 0 && params.opening_hi >= params.opening_lo);
  DFLP_CHECK(params.connection_lo >= 0 &&
             params.connection_hi >= params.connection_lo);
  Rng rng(seed);
  fl::InstanceBuilder builder;
  const std::int32_t degree =
      std::min(params.client_degree, params.num_facilities);
  DFLP_CHECK(degree >= 1);
  builder.reserve(params.num_facilities, params.num_clients,
                  static_cast<std::size_t>(params.num_clients) *
                      static_cast<std::size_t>(degree));
  for (std::int32_t i = 0; i < params.num_facilities; ++i)
    builder.add_facility(
        rng.uniform_real(params.opening_lo, params.opening_hi));
  for (std::int32_t j = 0; j < params.num_clients; ++j) {
    const fl::ClientId cj = builder.add_client();
    for (std::int32_t i : sample_distinct(params.num_facilities, degree, rng))
      builder.connect(i, cj,
                      rng.uniform_real(params.connection_lo,
                                       params.connection_hi));
  }
  return builder.build();
}

double euclidean_distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

EuclideanInstance euclidean(const EuclideanParams& params,
                            std::uint64_t seed) {
  DFLP_CHECK(params.num_facilities > 0 && params.num_clients > 0);
  DFLP_CHECK(params.side > 0);
  Rng rng(seed);
  EuclideanInstance out;

  std::vector<Point> centers;
  if (params.clusters > 0) {
    centers.reserve(static_cast<std::size_t>(params.clusters));
    for (std::int32_t c = 0; c < params.clusters; ++c)
      centers.push_back({rng.uniform_real(0, params.side),
                         rng.uniform_real(0, params.side)});
  }
  auto sample_point = [&]() -> Point {
    if (centers.empty())
      return {rng.uniform_real(0, params.side),
              rng.uniform_real(0, params.side)};
    const auto& c = centers[rng.uniform_u64(centers.size())];
    const double spread = params.side / 10.0;
    return {c.x + rng.normal() * spread, c.y + rng.normal() * spread};
  };

  fl::InstanceBuilder builder;
  builder.reserve(params.num_facilities, params.num_clients,
                  params.connect_radius <= 0.0
                      ? static_cast<std::size_t>(params.num_facilities) *
                            static_cast<std::size_t>(params.num_clients)
                      : static_cast<std::size_t>(params.num_clients));
  for (std::int32_t i = 0; i < params.num_facilities; ++i) {
    builder.add_facility(
        rng.uniform_real(params.opening_lo, params.opening_hi));
    out.facility_pos.push_back(sample_point());
  }
  for (std::int32_t j = 0; j < params.num_clients; ++j) {
    builder.add_client();
    out.client_pos.push_back(sample_point());
  }
  for (std::int32_t j = 0; j < params.num_clients; ++j) {
    const Point& pc = out.client_pos[static_cast<std::size_t>(j)];
    // Find the nearest facility: always connected so feasibility holds.
    std::int32_t nearest = 0;
    double nearest_d = std::numeric_limits<double>::infinity();
    for (std::int32_t i = 0; i < params.num_facilities; ++i) {
      const double d =
          euclidean_distance(out.facility_pos[static_cast<std::size_t>(i)],
                             pc);
      if (d < nearest_d) {
        nearest_d = d;
        nearest = i;
      }
    }
    for (std::int32_t i = 0; i < params.num_facilities; ++i) {
      const double d =
          euclidean_distance(out.facility_pos[static_cast<std::size_t>(i)],
                             pc);
      const bool in_radius =
          params.connect_radius <= 0.0 || d <= params.connect_radius;
      if (i == nearest || in_radius) builder.connect(i, j, d);
    }
  }
  out.instance = builder.build();
  return out;
}

fl::Instance power_law_spread(const PowerLawParams& params,
                              std::uint64_t seed) {
  DFLP_CHECK(params.num_facilities > 0 && params.num_clients > 0);
  DFLP_CHECK(params.rho_target >= 1.0);
  Rng rng(seed);
  const double log_rho = std::log(params.rho_target);
  auto log_uniform = [&]() { return std::exp(rng.uniform01() * log_rho); };

  fl::InstanceBuilder builder;
  const std::int32_t degree =
      std::min(params.client_degree, params.num_facilities);
  builder.reserve(params.num_facilities, params.num_clients,
                  static_cast<std::size_t>(params.num_clients) *
                      static_cast<std::size_t>(std::max(1, degree)));
  for (std::int32_t i = 0; i < params.num_facilities; ++i)
    builder.add_facility(log_uniform());
  for (std::int32_t j = 0; j < params.num_clients; ++j) {
    const fl::ClientId cj = builder.add_client();
    for (std::int32_t i : sample_distinct(params.num_facilities, degree, rng))
      builder.connect(i, cj, log_uniform());
  }
  return builder.build();
}

fl::Instance greedy_tight(std::int32_t num_clients, double eps) {
  DFLP_CHECK(num_clients >= 2);
  DFLP_CHECK(eps > 0);
  fl::InstanceBuilder builder;
  builder.reserve(num_clients + 1, num_clients,
                  2 * static_cast<std::size_t>(num_clients));
  // Facility j (j < n) covers client j only, at opening cost 1/(n-j);
  // greedy's cost-effectiveness ladder walks these from cheap to dear.
  for (std::int32_t j = 0; j < num_clients; ++j)
    builder.add_facility(1.0 / static_cast<double>(num_clients - j));
  const fl::FacilityId all = builder.add_facility(1.0 + eps);
  for (std::int32_t j = 0; j < num_clients; ++j) {
    const fl::ClientId cj = builder.add_client();
    builder.connect(j, cj, 0.0);
    builder.connect(all, cj, 0.0);
  }
  return builder.build();
}

fl::Instance star(std::int32_t num_spokes, std::int32_t clients_per_spoke,
                  std::uint64_t seed) {
  DFLP_CHECK(num_spokes >= 1 && clients_per_spoke >= 1);
  Rng rng(seed);
  fl::InstanceBuilder builder;
  builder.reserve(num_spokes + 1, num_spokes * clients_per_spoke,
                  2 * static_cast<std::size_t>(num_spokes) *
                      static_cast<std::size_t>(clients_per_spoke));
  const fl::FacilityId hub = builder.add_facility(10.0);
  std::vector<fl::FacilityId> spokes;
  spokes.reserve(static_cast<std::size_t>(num_spokes));
  for (std::int32_t s = 0; s < num_spokes; ++s)
    spokes.push_back(builder.add_facility(rng.uniform_real(50.0, 200.0)));
  for (std::int32_t s = 0; s < num_spokes; ++s) {
    for (std::int32_t t = 0; t < clients_per_spoke; ++t) {
      const fl::ClientId j = builder.add_client();
      builder.connect(hub, j, rng.uniform_real(1.0, 3.0));
      builder.connect(spokes[static_cast<std::size_t>(s)], j,
                      rng.uniform_real(0.5, 1.5));
    }
  }
  return builder.build();
}

fl::FtfpInstance tiered_requirement(fl::Instance base,
                                    const TieredRequirementParams& params,
                                    std::uint64_t seed) {
  DFLP_CHECK_MSG(params.base_r >= 1,
                 "base requirement must be >= 1, got " << params.base_r);
  DFLP_CHECK_MSG(params.critical_r >= params.base_r,
                 "critical requirement " << params.critical_r
                                         << " below base " << params.base_r);
  DFLP_CHECK_MSG(
      params.critical_fraction >= 0.0 && params.critical_fraction <= 1.0,
      "critical fraction must be in [0, 1], got " << params.critical_fraction);

  constexpr std::uint64_t kCriticalSalt = 0xC4171CA1ULL;
  fl::FtfpInstance inst;
  inst.requirement.resize(static_cast<std::size_t>(base.num_clients()));
  for (fl::ClientId j = 0; j < base.num_clients(); ++j) {
    Rng coin(derive_stream_seed(seed ^ kCriticalSalt,
                                static_cast<std::uint64_t>(j), 0));
    const std::int32_t want = coin.bernoulli(params.critical_fraction)
                                  ? params.critical_r
                                  : params.base_r;
    inst.requirement[static_cast<std::size_t>(j)] = std::min(
        want, static_cast<std::int32_t>(base.client_edges(j).size()));
  }
  inst.base = std::move(base);
  return inst;
}

fl::SoftCapacitatedInstance capacity_profile(
    fl::Instance base, const CapacityProfileParams& params,
    std::uint64_t seed) {
  DFLP_CHECK_MSG(params.capacity_lo >= 1,
                 "capacity_lo must be >= 1, got " << params.capacity_lo);
  DFLP_CHECK_MSG(params.capacity_hi >= params.capacity_lo,
                 "capacity_hi " << params.capacity_hi << " below capacity_lo "
                                << params.capacity_lo);

  constexpr std::uint64_t kCapacitySalt = 0xCA9AC117ULL;
  fl::SoftCapacitatedInstance inst;
  inst.capacity.resize(static_cast<std::size_t>(base.num_facilities()));
  const auto span = static_cast<std::uint64_t>(params.capacity_hi -
                                               params.capacity_lo + 1);
  for (fl::FacilityId i = 0; i < base.num_facilities(); ++i) {
    Rng draw(derive_stream_seed(seed ^ kCapacitySalt,
                                static_cast<std::uint64_t>(i), 0));
    inst.capacity[static_cast<std::size_t>(i)] =
        params.capacity_lo + static_cast<std::int32_t>(draw.uniform_u64(span));
  }
  inst.base = std::move(base);
  return inst;
}

std::string family_name(Family family) {
  switch (family) {
    case Family::kUniform:
      return "uniform";
    case Family::kEuclidean:
      return "euclidean";
    case Family::kPowerLaw:
      return "powerlaw";
    case Family::kGreedyTight:
      return "greedy-tight";
    case Family::kStar:
      return "star";
  }
  return "unknown";
}

fl::Instance make_family_instance(Family family, std::int32_t size,
                                  std::uint64_t seed) {
  DFLP_CHECK(size >= 4);
  const std::int32_t m = std::max<std::int32_t>(2, size / 5);
  switch (family) {
    case Family::kUniform: {
      UniformParams p;
      p.num_facilities = m;
      p.num_clients = size;
      p.client_degree = std::min<std::int32_t>(8, m);
      return uniform_random(p, seed);
    }
    case Family::kEuclidean: {
      EuclideanParams p;
      p.num_facilities = m;
      p.num_clients = size;
      p.clusters = std::max<std::int32_t>(1, m / 5);
      return euclidean(p, seed).instance;
    }
    case Family::kPowerLaw: {
      PowerLawParams p;
      p.num_facilities = m;
      p.num_clients = size;
      p.client_degree = std::min<std::int32_t>(8, m);
      return power_law_spread(p, seed);
    }
    case Family::kGreedyTight:
      return greedy_tight(size);
    case Family::kStar:
      return star(std::max<std::int32_t>(1, size / 10), 10, seed);
  }
  DFLP_CHECK_MSG(false, "unreachable family");
  return greedy_tight(4);
}

}  // namespace dflp::workload
