// Seeded client arrival/departure stream over a cell-structured topology.
//
// The streaming service (src/service/) is exercised with workloads shaped
// like a geo-sharded deployment: facilities live in `num_cells` independent
// cells and every client connects only to facilities of one cell, so the
// connectivity components of every epoch's snapshot stay cell-sized. That
// is the regime where incremental re-solving pays: an epoch's deltas touch
// a bounded set of cells, and every untouched cell's solution carries over
// verbatim.
//
// The generator is a deterministic function of (params, seed), emits
// events in O(1) amortized time each (1e6+ event streams are routine), and
// produces `fl::Delta` records directly so the whole pipeline — generator,
// delta log, service — shares one mutation path.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "fl/delta.h"

namespace dflp::workload {

struct StreamParams {
  std::int32_t num_cells = 64;
  std::int32_t facilities_per_cell = 4;
  /// Clients present in the epoch-0 snapshot (spread round-robin over
  /// cells; every cell starts with at least one client).
  std::int32_t initial_clients = 1024;
  /// Edges per client, clamped to facilities_per_cell; all edges stay
  /// inside the client's cell.
  std::int32_t client_degree = 3;
  /// Probability an event is an arrival; the rest are departures. Must be
  /// > 0.5 so the population drifts upward and never empties.
  double arrival_fraction = 0.55;
  double opening_lo = 20.0;
  double opening_hi = 200.0;
  double connection_lo = 1.0;
  double connection_hi = 20.0;
};

/// Stateful stream generator: builds the epoch-0 snapshot, then emits
/// arrival/departure deltas batch by batch. Departures pick a uniformly
/// random alive client; when the alive population is about to hit zero the
/// event is forced into an arrival so every snapshot stays buildable.
class ClientStream {
 public:
  ClientStream(const StreamParams& params, std::uint64_t seed);

  [[nodiscard]] const StreamParams& params() const noexcept {
    return params_;
  }

  /// The epoch-0 snapshot the stream starts from.
  [[nodiscard]] const fl::InstanceSnapshot& initial_snapshot() const noexcept {
    return initial_;
  }

  /// Appends `count` events to `log` and advances the stream state.
  void fill_epoch(std::int32_t count, fl::DeltaLog& log);

  /// Clients currently alive (after all events emitted so far).
  [[nodiscard]] std::int64_t alive_clients() const noexcept {
    return static_cast<std::int64_t>(alive_.size());
  }

  [[nodiscard]] std::int64_t events_emitted() const noexcept {
    return events_emitted_;
  }

 private:
  struct AliveClient {
    fl::NodeKey key;
    std::int32_t cell;
  };

  [[nodiscard]] fl::Delta make_arrival();

  StreamParams params_;
  Rng rng_;
  fl::InstanceSnapshot initial_;
  std::vector<AliveClient> alive_;
  fl::NodeKey next_client_key_ = 0;
  std::int64_t events_emitted_ = 0;
  std::vector<std::int32_t> scratch_;  // sampling workspace
  std::vector<std::int32_t> slots_;
};

}  // namespace dflp::workload
