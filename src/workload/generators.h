// Instance generators.
//
// The PODC'05 paper is analytical and ships no datasets, so the experiment
// suite reconstructs workloads that stress each quantity its bound depends
// on: the facility count m, the cost-spread coefficient rho, metric vs
// non-metric structure, and adversarial greedy behaviour. All generators are
// deterministic functions of their parameters and a seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fl/capacitated.h"
#include "fl/ftfp.h"
#include "fl/instance.h"

namespace dflp::workload {

/// Uniform random bipartite instance: every client is connected to
/// `client_degree` distinct random facilities; costs are uniform in the
/// given ranges.
struct UniformParams {
  std::int32_t num_facilities = 20;
  std::int32_t num_clients = 100;
  std::int32_t client_degree = 5;  ///< clamped to num_facilities
  double opening_lo = 1.0;
  double opening_hi = 100.0;
  double connection_lo = 1.0;
  double connection_hi = 20.0;
};
[[nodiscard]] fl::Instance uniform_random(const UniformParams& params,
                                          std::uint64_t seed);

/// A point in the plane (used by the Euclidean generator and the metric
/// baselines that need coordinates).
struct Point {
  double x = 0.0;
  double y = 0.0;
};
[[nodiscard]] double euclidean_distance(const Point& a, const Point& b);

/// Euclidean metric instance: facilities and clients are points in a square
/// of side `side`; connection cost = distance; facilities clustered around
/// `clusters` centers when clusters > 0. `connect_radius == 0` yields a
/// complete bipartite graph (the fully metric case); a positive radius
/// sparsifies, always keeping each client's nearest facility so the
/// instance stays feasible.
struct EuclideanParams {
  std::int32_t num_facilities = 20;
  std::int32_t num_clients = 200;
  std::int32_t clusters = 0;
  double side = 1000.0;
  double opening_lo = 50.0;
  double opening_hi = 400.0;
  double connect_radius = 0.0;
};
struct EuclideanInstance {
  fl::Instance instance;
  std::vector<Point> facility_pos;
  std::vector<Point> client_pos;
};
[[nodiscard]] EuclideanInstance euclidean(const EuclideanParams& params,
                                          std::uint64_t seed);

/// Power-law cost instance controlling the spread coefficient rho: all
/// costs are drawn log-uniformly from [1, rho_target], so the instance's
/// measured rho is ~rho_target. Used by the E3 spread sweep.
struct PowerLawParams {
  std::int32_t num_facilities = 20;
  std::int32_t num_clients = 100;
  std::int32_t client_degree = 5;
  double rho_target = 1e4;
};
[[nodiscard]] fl::Instance power_law_spread(const PowerLawParams& params,
                                            std::uint64_t seed);

/// The classic greedy-tight set-cover family lifted to UFL: `n` clients;
/// singleton facility j covers client j alone with opening cost
/// 1/(n - j), plus one facility covering everything at cost 1 + eps.
/// Connection costs are 0. Centralized greedy pays ~H_n while OPT = 1+eps,
/// so this family separates greedy-like algorithms from the optimum.
[[nodiscard]] fl::Instance greedy_tight(std::int32_t num_clients,
                                        double eps = 0.01);

/// Star instance: one cheap well-connected hub facility plus `num_spokes`
/// expensive decoys each connected to a disjoint pinch of clients. Sanity
/// workload where OPT is obvious (open the hub).
[[nodiscard]] fl::Instance star(std::int32_t num_spokes,
                                std::int32_t clients_per_spoke,
                                std::uint64_t seed);

/// Tiered coverage requirements for FTFP workloads: a seeded
/// `critical_fraction` of clients are "critical" and demand `critical_r`
/// distinct open facilities; everyone else demands `base_r`. Requirements
/// are clamped per client to its degree so the instance always validates.
/// Deterministic in (base topology, params, seed); the criticality stream
/// is independent of the engine and fault streams.
struct TieredRequirementParams {
  std::int32_t base_r = 1;
  std::int32_t critical_r = 2;
  double critical_fraction = 0.25;  ///< in [0, 1]
};
[[nodiscard]] fl::FtfpInstance tiered_requirement(
    fl::Instance base, const TieredRequirementParams& params,
    std::uint64_t seed);

/// Capacity profile for soft-capacitated workloads: every facility draws a
/// capacity uniformly from [capacity_lo, capacity_hi]. Deterministic in
/// (base topology, params, seed).
struct CapacityProfileParams {
  std::int32_t capacity_lo = 4;
  std::int32_t capacity_hi = 32;
};
[[nodiscard]] fl::SoftCapacitatedInstance capacity_profile(
    fl::Instance base, const CapacityProfileParams& params,
    std::uint64_t seed);

/// Named families for sweep-style benches.
enum class Family : std::uint8_t {
  kUniform,
  kEuclidean,
  kPowerLaw,
  kGreedyTight,
  kStar,
};
[[nodiscard]] std::string family_name(Family family);

/// Builds a representative instance of `family` scaled so that the client
/// count is ~`size` (facility count scales as ~size/5).
[[nodiscard]] fl::Instance make_family_instance(Family family,
                                                std::int32_t size,
                                                std::uint64_t seed);

}  // namespace dflp::workload
