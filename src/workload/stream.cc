#include "workload/stream.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "fl/instance.h"

namespace dflp::workload {

namespace {

/// Picks `degree` distinct facility slots out of [0, fpc) by partial
/// Fisher–Yates over a scratch vector; fpc is cell-sized, so this is O(1)
/// per event for fixed params.
void sample_cell_slots(std::int32_t fpc, std::int32_t degree, Rng& rng,
                       std::vector<std::int32_t>& scratch,
                       std::vector<std::int32_t>& out) {
  scratch.resize(static_cast<std::size_t>(fpc));
  for (std::int32_t t = 0; t < fpc; ++t)
    scratch[static_cast<std::size_t>(t)] = t;
  out.clear();
  for (std::int32_t t = 0; t < degree; ++t) {
    const auto pick = static_cast<std::int32_t>(
                          rng.uniform_u64(static_cast<std::uint64_t>(
                              fpc - t))) +
                      t;
    std::swap(scratch[static_cast<std::size_t>(t)],
              scratch[static_cast<std::size_t>(pick)]);
    out.push_back(scratch[static_cast<std::size_t>(t)]);
  }
}

}  // namespace

ClientStream::ClientStream(const StreamParams& params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  DFLP_CHECK(params_.num_cells >= 1 && params_.facilities_per_cell >= 1);
  DFLP_CHECK(params_.initial_clients >= 1);
  DFLP_CHECK_MSG(params_.arrival_fraction > 0.5 &&
                     params_.arrival_fraction <= 1.0,
                 "arrival_fraction must be in (0.5, 1] so the population "
                 "drifts upward, got "
                     << params_.arrival_fraction);
  DFLP_CHECK(params_.opening_hi >= params_.opening_lo &&
             params_.opening_lo >= 0.0);
  DFLP_CHECK(params_.connection_hi >= params_.connection_lo &&
             params_.connection_lo >= 0.0);
  params_.client_degree =
      std::max<std::int32_t>(1, std::min(params_.client_degree,
                                         params_.facilities_per_cell));

  const std::int32_t fpc = params_.facilities_per_cell;
  const std::int32_t m = params_.num_cells * fpc;

  fl::InstanceBuilder builder;
  builder.reserve(m, params_.initial_clients,
                  static_cast<std::size_t>(params_.initial_clients) *
                      static_cast<std::size_t>(params_.client_degree));
  for (std::int32_t i = 0; i < m; ++i)
    (void)builder.add_facility(
        rng_.uniform_real(params_.opening_lo, params_.opening_hi));

  std::vector<std::int32_t> scratch;
  std::vector<std::int32_t> slots;
  alive_.reserve(static_cast<std::size_t>(params_.initial_clients));
  for (std::int32_t j = 0; j < params_.initial_clients; ++j) {
    const std::int32_t cell = j % params_.num_cells;
    const fl::ClientId cj = builder.add_client();
    sample_cell_slots(fpc, params_.client_degree, rng_, scratch, slots);
    for (std::int32_t slot : slots)
      builder.connect(cell * fpc + slot, cj,
                      rng_.uniform_real(params_.connection_lo,
                                        params_.connection_hi));
    alive_.push_back({static_cast<fl::NodeKey>(j), cell});
  }

  initial_ = fl::InstanceSnapshot::initial(builder.build());
  next_client_key_ = initial_.next_client_key();
}

fl::Delta ClientStream::make_arrival() {
  const std::int32_t cell = static_cast<std::int32_t>(
      rng_.uniform_u64(static_cast<std::uint64_t>(params_.num_cells)));
  const std::int32_t fpc = params_.facilities_per_cell;
  sample_cell_slots(fpc, params_.client_degree, rng_, scratch_, slots_);
  std::vector<fl::KeyedEdge> edges;
  edges.reserve(slots_.size());
  for (std::int32_t slot : slots_)
    edges.push_back({static_cast<fl::NodeKey>(cell * fpc + slot),
                     rng_.uniform_real(params_.connection_lo,
                                       params_.connection_hi)});
  const fl::NodeKey key = next_client_key_++;
  alive_.push_back({key, cell});
  return fl::Delta::client_arrive(key, std::move(edges));
}

void ClientStream::fill_epoch(std::int32_t count, fl::DeltaLog& log) {
  DFLP_CHECK(count >= 0);
  for (std::int32_t t = 0; t < count; ++t) {
    ++events_emitted_;
    const bool arrive =
        alive_.size() <= 1 || rng_.bernoulli(params_.arrival_fraction);
    if (arrive) {
      log.append(make_arrival());
      continue;
    }
    const auto pick = static_cast<std::size_t>(
        rng_.uniform_u64(static_cast<std::uint64_t>(alive_.size())));
    const fl::NodeKey key = alive_[pick].key;
    alive_[pick] = alive_.back();
    alive_.pop_back();
    log.append(fl::Delta::client_depart(key));
  }
}

}  // namespace dflp::workload
