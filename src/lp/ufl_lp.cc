#include "lp/ufl_lp.h"

#include "common/check.h"

namespace dflp::lp {

LinearProgram build_ufl_lp(const fl::Instance& inst) {
  LinearProgram lp;
  const int m = inst.num_facilities();
  const int n = inst.num_clients();

  // Variable layout: y_0..y_{m-1}, then x in client-CSR edge order.
  for (fl::FacilityId i = 0; i < m; ++i)
    lp.add_variable(inst.opening_cost(i));
  for (fl::ClientId j = 0; j < n; ++j) {
    for (const fl::ClientEdge& e : inst.client_edges(j))
      lp.add_variable(e.cost);
  }

  const auto x_var = [&](fl::ClientId j, std::size_t k) {
    return m + static_cast<int>(inst.client_edge_offset(j) + k);
  };

  for (fl::ClientId j = 0; j < n; ++j) {
    const auto edges = inst.client_edges(j);
    std::vector<std::pair<int, double>> cover;
    cover.reserve(edges.size());
    for (std::size_t k = 0; k < edges.size(); ++k)
      cover.emplace_back(x_var(j, k), 1.0);
    lp.add_constraint(std::move(cover), Relation::kGe, 1.0);

    for (std::size_t k = 0; k < edges.size(); ++k) {
      lp.add_constraint({{x_var(j, k), 1.0},
                         {static_cast<int>(edges[k].facility), -1.0}},
                        Relation::kLe, 0.0);
    }
  }
  return lp;
}

std::optional<UflLpResult> solve_ufl_lp(const fl::Instance& inst,
                                        const SimplexOptions& options) {
  const LinearProgram lp = build_ufl_lp(inst);
  const LpSolution sol = solve(lp, options);
  if (sol.status == SolveStatus::kIterationLimit) return std::nullopt;
  DFLP_CHECK_MSG(sol.status == SolveStatus::kOptimal,
                 "UFL LP must be feasible and bounded");

  UflLpResult result{sol.status, sol.objective,
                     fl::FractionalSolution(inst)};
  const int m = inst.num_facilities();
  for (fl::FacilityId i = 0; i < m; ++i)
    result.fractional.y[static_cast<std::size_t>(i)] =
        sol.x[static_cast<std::size_t>(i)];
  for (std::size_t k = 0; k < inst.total_client_edges(); ++k)
    result.fractional.x[k] = sol.x[static_cast<std::size_t>(m) + k];
  return result;
}

}  // namespace dflp::lp
