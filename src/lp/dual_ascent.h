// Dual-ascent lower bound for UFL (Erlenkotter-style).
//
// The LP dual of the UFL relaxation is
//   maximize   sum_j alpha_j
//   subject to sum_j max(0, alpha_j - c_ij) <= f_i   for every facility i
//              alpha >= 0,
// so ANY feasible alpha yields `sum_j alpha_j <= LP optimum <= OPT`. The
// classic ascent grows all client duals simultaneously at unit rate and
// freezes a client the moment raising its dual further would violate some
// facility's budget. The implementation is event-driven (edge crossings and
// facility-tightening events in a priority queue), so it runs in
// O(E log E) and scales to the 10^5-client instances the large benches use,
// where the simplex substrate cannot.
#pragma once

#include <vector>

#include "fl/instance.h"

namespace dflp::lp {

struct DualAscentResult {
  /// Per-client dual value (the freeze time of each client).
  std::vector<double> alpha;
  /// sum(alpha): a valid lower bound on the LP optimum and hence on OPT.
  double lower_bound = 0.0;
  /// Per-facility time at which its budget became exhausted ("temporarily
  /// opened" in Jain–Vazirani terms), +inf if it never did.
  std::vector<double> tight_time;
  /// Per-client facility whose event froze the client (its JV "witness").
  std::vector<fl::FacilityId> witness;
};

[[nodiscard]] DualAscentResult dual_ascent_bound(const fl::Instance& inst);

/// Verifies that `alpha` satisfies every facility budget within `tol`
/// (used by tests to certify the bound is genuinely feasible).
[[nodiscard]] bool is_dual_feasible(const fl::Instance& inst,
                                    const std::vector<double>& alpha,
                                    double tol = 1e-7);

/// The weakest always-available lower bound: every client must pay at least
/// its cheapest connection cost. Used as a fallback denominator on
/// instances too large even for dual ascent (and in sanity tests).
[[nodiscard]] double cheapest_connection_bound(const fl::Instance& inst);

}  // namespace dflp::lp
