// Dense two-phase tableau simplex.
//
// This is the exact-LP substrate used to *measure* approximation ratios: the
// benches and tests divide an algorithm's cost by the LP optimum, so the
// reported factors are honest upper bounds on the true approximation ratio.
// It is a straightforward, robust implementation (Dantzig pricing with a
// Bland fallback against cycling), intended for the small-to-medium
// instances used to measure ratios — not a production LP solver.
//
// Problem form: minimize c'x subject to per-row `a'x {<=,>=,=} b`, x >= 0.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace dflp::lp {

enum class Relation : std::uint8_t { kLe, kGe, kEq };

enum class SolveStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

struct LpSolution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< values of the user variables
};

/// A linear program under construction. Variables are implicitly >= 0.
class LinearProgram {
 public:
  /// Adds a variable with the given objective coefficient; returns its index.
  int add_variable(double objective_coefficient);

  /// Adds a constraint `sum(coeff * x[var]) rel rhs`. Variable indices must
  /// already exist; duplicate indices within one constraint are summed.
  void add_constraint(std::vector<std::pair<int, double>> terms, Relation rel,
                      double rhs);

  [[nodiscard]] int num_variables() const noexcept {
    return static_cast<int>(objective_.size());
  }
  [[nodiscard]] int num_constraints() const noexcept {
    return static_cast<int>(rows_.size());
  }

  struct Row {
    std::vector<std::pair<int, double>> terms;
    Relation rel = Relation::kLe;
    double rhs = 0.0;
  };
  [[nodiscard]] const std::vector<Row>& rows() const noexcept { return rows_; }
  [[nodiscard]] const std::vector<double>& objective() const noexcept {
    return objective_;
  }

 private:
  std::vector<double> objective_;
  std::vector<Row> rows_;
};

struct SimplexOptions {
  std::uint64_t max_iterations = 200000;
  double tolerance = 1e-9;
};

/// Solves `lp` (minimization). On kOptimal the solution carries the
/// objective and the user-variable values; on other statuses `x` is empty.
[[nodiscard]] LpSolution solve(const LinearProgram& lp,
                               const SimplexOptions& options = {});

}  // namespace dflp::lp
