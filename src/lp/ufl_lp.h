// The UFL LP relaxation, built on the simplex substrate.
//
//   minimize   sum_i f_i y_i + sum_(ij) c_ij x_ij
//   subject to sum_i x_ij >= 1          (every client j fractionally served)
//              x_ij <= y_i              (can only use open capacity)
//              x, y >= 0
//
// The (y <= 1) box constraints are deliberately omitted: they never bind at
// an optimum of this minimization, and omitting them keeps the tableau
// smaller. The LP optimum is a lower bound on the integral optimum, which is
// exactly how the experiment harness uses it.
#pragma once

#include <optional>

#include "fl/instance.h"
#include "fl/solution.h"
#include "lp/simplex.h"

namespace dflp::lp {

struct UflLpResult {
  SolveStatus status = SolveStatus::kIterationLimit;
  double optimum = 0.0;
  fl::FractionalSolution fractional;
};

/// Builds the UFL LP for `inst` (exposed for tests that inspect the model).
[[nodiscard]] LinearProgram build_ufl_lp(const fl::Instance& inst);

/// Solves the UFL LP relaxation exactly. Intended for instances up to a few
/// hundred edges (the tableau is dense). Returns nullopt if the solver hits
/// its iteration limit.
[[nodiscard]] std::optional<UflLpResult> solve_ufl_lp(
    const fl::Instance& inst, const SimplexOptions& options = {});

}  // namespace dflp::lp
