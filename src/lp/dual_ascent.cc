#include "lp/dual_ascent.h"

#include <cmath>
#include <queue>

#include "common/check.h"

namespace dflp::lp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class EventType : std::uint8_t { kCrossing, kTight };

struct Event {
  double time = 0.0;
  EventType type = EventType::kCrossing;
  // kCrossing: client + edge index within the client's edge list.
  // kTight: facility + version stamp.
  std::int32_t a = 0;
  std::int32_t b = 0;

  bool operator>(const Event& other) const { return time > other.time; }
};

struct FacilityState {
  double slack = 0.0;       ///< remaining budget at time `updated_at`
  double updated_at = 0.0;  ///< time of last accounting refresh
  std::int32_t active_payers = 0;
  std::int32_t version = 0;
  bool tight = false;
};

}  // namespace

DualAscentResult dual_ascent_bound(const fl::Instance& inst) {
  const std::int32_t m = inst.num_facilities();
  const std::int32_t n = inst.num_clients();

  std::vector<FacilityState> fac(static_cast<std::size_t>(m));
  std::vector<double> alpha(static_cast<std::size_t>(n), -1.0);  // -1 = active
  std::vector<double> tight_time(static_cast<std::size_t>(m), kInf);
  std::vector<fl::FacilityId> witness(static_cast<std::size_t>(n),
                                      fl::kNoFacility);
  // Which facilities each active client currently pays (edge crossed, the
  // facility not yet tight when crossed). Client degree is small, so a flat
  // per-client vector is fine.
  std::vector<std::vector<fl::FacilityId>> paying(
      static_cast<std::size_t>(n));

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

  for (fl::FacilityId i = 0; i < m; ++i) {
    auto& f = fac[static_cast<std::size_t>(i)];
    f.slack = inst.opening_cost(i);
    if (f.slack <= 0.0) f.tight = true;  // zero-cost facilities start tight
  }
  for (fl::ClientId j = 0; j < n; ++j) {
    const auto edges = inst.client_edges(j);
    for (std::size_t k = 0; k < edges.size(); ++k) {
      events.push(Event{edges[k].cost, EventType::kCrossing, j,
                        static_cast<std::int32_t>(k)});
    }
  }

  // Brings facility accounting forward to `t` (slack decreases at a rate of
  // one unit per active payer).
  auto refresh = [&](FacilityState& f, double t) {
    if (t > f.updated_at) {
      f.slack -= static_cast<double>(f.active_payers) * (t - f.updated_at);
      f.updated_at = t;
    }
  };

  auto push_tight_event = [&](fl::FacilityId i) {
    auto& f = fac[static_cast<std::size_t>(i)];
    if (f.tight || f.active_payers == 0) return;
    const double when =
        f.updated_at + f.slack / static_cast<double>(f.active_payers);
    events.push(Event{when, EventType::kTight, i, ++f.version});
  };

  std::int32_t active_clients = n;

  // Freezing a client fixes its contribution to every facility it pays.
  // `w` is the facility whose event caused the freeze (the JV witness).
  auto freeze_client = [&](fl::ClientId j, double t, fl::FacilityId w) {
    if (alpha[static_cast<std::size_t>(j)] >= 0.0) return;  // already frozen
    alpha[static_cast<std::size_t>(j)] = t;
    witness[static_cast<std::size_t>(j)] = w;
    --active_clients;
    for (fl::FacilityId i : paying[static_cast<std::size_t>(j)]) {
      auto& f = fac[static_cast<std::size_t>(i)];
      if (f.tight) continue;
      refresh(f, t);
      --f.active_payers;
      ++f.version;  // invalidate outstanding tight predictions
      push_tight_event(i);
    }
    paying[static_cast<std::size_t>(j)].clear();
    paying[static_cast<std::size_t>(j)].shrink_to_fit();
  };

  auto tighten_facility = [&](fl::FacilityId i, double t) {
    auto& f = fac[static_cast<std::size_t>(i)];
    refresh(f, t);
    f.tight = true;
    tight_time[static_cast<std::size_t>(i)] = t;
    // Freeze every client currently paying this facility. Payers are found
    // by walking the facility's edge list and testing membership in each
    // client's (tiny) paying vector; collected into a snapshot first since
    // freeze_client mutates those vectors.
    std::vector<fl::ClientId> payers;
    for (const fl::FacilityEdge& e : inst.facility_edges(i)) {
      if (alpha[static_cast<std::size_t>(e.client)] >= 0.0) continue;
      const auto& pv = paying[static_cast<std::size_t>(e.client)];
      for (fl::FacilityId pi : pv) {
        if (pi == i) {
          payers.push_back(e.client);
          break;
        }
      }
    }
    for (fl::ClientId j : payers) freeze_client(j, t, i);
  };

  while (!events.empty() && active_clients > 0) {
    const Event ev = events.top();
    events.pop();
    if (ev.type == EventType::kCrossing) {
      const fl::ClientId j = ev.a;
      if (alpha[static_cast<std::size_t>(j)] >= 0.0) continue;  // frozen
      const fl::ClientEdge edge =
          inst.client_edges(j)[static_cast<std::size_t>(ev.b)];
      auto& f = fac[static_cast<std::size_t>(edge.facility)];
      if (f.tight) {
        // Raising alpha_j beyond c_ij would need beta > 0 against a spent
        // budget: freeze exactly at the crossing.
        freeze_client(j, ev.time, edge.facility);
      } else {
        refresh(f, ev.time);
        if (f.slack <= 1e-12) {
          tighten_facility(edge.facility, ev.time);
          freeze_client(j, ev.time, edge.facility);
        } else {
          ++f.active_payers;
          ++f.version;
          paying[static_cast<std::size_t>(j)].push_back(edge.facility);
          push_tight_event(edge.facility);
        }
      }
    } else {  // kTight
      const fl::FacilityId i = ev.a;
      auto& f = fac[static_cast<std::size_t>(i)];
      if (f.tight || ev.b != f.version) continue;  // stale prediction
      tighten_facility(i, ev.time);
    }
  }

  DFLP_CHECK_MSG(active_clients == 0,
                 "dual ascent finished with active clients — every client "
                 "has a crossing event, so this indicates a bug");

  DualAscentResult result;
  result.alpha = std::move(alpha);
  result.tight_time = std::move(tight_time);
  result.witness = std::move(witness);
  for (double a : result.alpha) result.lower_bound += a;
  return result;
}

bool is_dual_feasible(const fl::Instance& inst,
                      const std::vector<double>& alpha, double tol) {
  if (alpha.size() != static_cast<std::size_t>(inst.num_clients()))
    return false;
  for (double a : alpha)
    if (!(a >= -tol) || !std::isfinite(a)) return false;
  for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i) {
    double paid = 0.0;
    for (const fl::FacilityEdge& e : inst.facility_edges(i)) {
      const double beta =
          alpha[static_cast<std::size_t>(e.client)] - e.cost;
      if (beta > 0.0) paid += beta;
    }
    if (paid > inst.opening_cost(i) + tol) return false;
  }
  return true;
}

double cheapest_connection_bound(const fl::Instance& inst) {
  double total = 0.0;
  for (fl::ClientId j = 0; j < inst.num_clients(); ++j)
    total += inst.client_edges(j).front().cost;  // sorted ascending
  return total;
}

}  // namespace dflp::lp
