#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace dflp::lp {

int LinearProgram::add_variable(double objective_coefficient) {
  DFLP_CHECK(std::isfinite(objective_coefficient));
  objective_.push_back(objective_coefficient);
  return static_cast<int>(objective_.size()) - 1;
}

void LinearProgram::add_constraint(std::vector<std::pair<int, double>> terms,
                                   Relation rel, double rhs) {
  DFLP_CHECK(std::isfinite(rhs));
  for (const auto& [var, coeff] : terms) {
    DFLP_CHECK_MSG(var >= 0 && var < num_variables(),
                   "constraint references unknown variable " << var);
    DFLP_CHECK(std::isfinite(coeff));
  }
  rows_.push_back(Row{std::move(terms), rel, rhs});
}

namespace {

/// Dense tableau: rows_ x cols_ where the last column is the RHS and the
/// last row is the (phase-specific) objective.
class Tableau {
 public:
  Tableau(int rows, int cols) : rows_(rows), cols_(cols),
                                data_(static_cast<std::size_t>(rows) *
                                          static_cast<std::size_t>(cols),
                                      0.0) {}

  [[nodiscard]] double& at(int r, int c) {
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
  }
  [[nodiscard]] double at(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
  }

  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }

  /// Gauss–Jordan pivot on (pr, pc).
  void pivot(int pr, int pc) {
    const double p = at(pr, pc);
    const double inv = 1.0 / p;
    double* prow = &at(pr, 0);
    for (int c = 0; c < cols_; ++c) prow[c] *= inv;
    prow[pc] = 1.0;  // exact
    for (int r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double factor = at(r, pc);
      if (factor == 0.0) continue;
      double* row = &at(r, 0);
      for (int c = 0; c < cols_; ++c) row[c] -= factor * prow[c];
      row[pc] = 0.0;  // exact
    }
  }

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

struct StandardForm {
  Tableau tab;            // (m + 1) x (total_vars + 1)
  std::vector<int> basis;  // basic variable per constraint row
  int num_structural;      // user vars + slacks/surplus (not artificials)
  int first_artificial;    // index of first artificial var, or total if none
  int total_vars;
};

/// Runs simplex iterations on the bottom-row objective. Returns the status.
SolveStatus iterate(Tableau& tab, std::vector<int>& basis, int num_pricable,
                    const SimplexOptions& opt, std::uint64_t* iterations) {
  const int obj_row = tab.rows() - 1;
  const int rhs_col = tab.cols() - 1;
  const int m = tab.rows() - 1;
  // Switch to Bland's rule (anti-cycling) once the iteration count grows
  // suspicious; Dantzig pricing is faster in the common case.
  const std::uint64_t bland_after = opt.max_iterations / 2;

  while (true) {
    if (*iterations >= opt.max_iterations) return SolveStatus::kIterationLimit;
    ++*iterations;
    const bool bland = *iterations > bland_after;

    // Pricing: pick entering column with negative reduced cost.
    int enter = -1;
    double best = -opt.tolerance;
    for (int c = 0; c < num_pricable; ++c) {
      const double rc = tab.at(obj_row, c);
      if (rc < best) {
        best = rc;
        enter = c;
        if (bland) break;  // Bland: first eligible index
      }
    }
    if (enter < 0) return SolveStatus::kOptimal;

    // Ratio test: pick leaving row.
    int leave = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int r = 0; r < m; ++r) {
      const double a = tab.at(r, enter);
      if (a <= opt.tolerance) continue;
      const double ratio = tab.at(r, rhs_col) / a;
      if (ratio < best_ratio - opt.tolerance ||
          (bland && std::fabs(ratio - best_ratio) <= opt.tolerance &&
           leave >= 0 && basis[static_cast<std::size_t>(r)] <
                             basis[static_cast<std::size_t>(leave)])) {
        best_ratio = ratio;
        leave = r;
      }
    }
    if (leave < 0) return SolveStatus::kUnbounded;

    tab.pivot(leave, enter);
    basis[static_cast<std::size_t>(leave)] = enter;
  }
}

}  // namespace

LpSolution solve(const LinearProgram& lp, const SimplexOptions& options) {
  const int n = lp.num_variables();
  const int m = lp.num_constraints();
  DFLP_CHECK_MSG(n > 0, "LP has no variables");

  // Count extra columns: one slack/surplus per inequality; artificials for
  // kGe/kEq rows and for kLe rows with negative RHS (normalized below).
  int num_slack = 0;
  int num_artificial = 0;
  for (const auto& row : lp.rows()) {
    // Normalize to non-negative RHS by flipping sign; flipping turns kLe
    // into kGe and vice versa.
    const Relation rel =
        row.rhs >= 0.0 ? row.rel
                       : (row.rel == Relation::kLe
                              ? Relation::kGe
                              : (row.rel == Relation::kGe ? Relation::kLe
                                                          : Relation::kEq));
    if (rel != Relation::kEq) ++num_slack;
    if (rel != Relation::kLe) ++num_artificial;
  }

  const int total = n + num_slack + num_artificial;
  const int first_artificial = n + num_slack;
  Tableau tab(m + 1, total + 1);
  std::vector<int> basis(static_cast<std::size_t>(m), -1);

  int slack_cursor = n;
  int art_cursor = first_artificial;
  for (int r = 0; r < m; ++r) {
    const auto& row = lp.rows()[static_cast<std::size_t>(r)];
    const double sign = row.rhs >= 0.0 ? 1.0 : -1.0;
    const Relation rel =
        sign > 0 ? row.rel
                 : (row.rel == Relation::kLe
                        ? Relation::kGe
                        : (row.rel == Relation::kGe ? Relation::kLe
                                                    : Relation::kEq));
    for (const auto& [var, coeff] : row.terms) tab.at(r, var) += sign * coeff;
    tab.at(r, total) = sign * row.rhs;

    if (rel == Relation::kLe) {
      tab.at(r, slack_cursor) = 1.0;
      basis[static_cast<std::size_t>(r)] = slack_cursor;
      ++slack_cursor;
    } else if (rel == Relation::kGe) {
      tab.at(r, slack_cursor) = -1.0;  // surplus
      ++slack_cursor;
      tab.at(r, art_cursor) = 1.0;
      basis[static_cast<std::size_t>(r)] = art_cursor;
      ++art_cursor;
    } else {  // kEq
      tab.at(r, art_cursor) = 1.0;
      basis[static_cast<std::size_t>(r)] = art_cursor;
      ++art_cursor;
    }
  }

  std::uint64_t iterations = 0;
  const int obj_row = m;

  // Phase 1: minimize the sum of artificials.
  if (num_artificial > 0) {
    for (int c = first_artificial; c < total; ++c) tab.at(obj_row, c) = 1.0;
    // Make the objective row consistent with the basis (artificials basic).
    for (int r = 0; r < m; ++r) {
      if (basis[static_cast<std::size_t>(r)] >= first_artificial) {
        for (int c = 0; c <= total; ++c)
          tab.at(obj_row, c) -= tab.at(r, c);
      }
    }
    const SolveStatus s1 = iterate(tab, basis, total, options, &iterations);
    if (s1 == SolveStatus::kIterationLimit) return {s1, 0.0, {}};
    DFLP_CHECK_MSG(s1 != SolveStatus::kUnbounded,
                   "phase-1 objective cannot be unbounded");
    const double phase1 = -tab.at(obj_row, total);
    if (phase1 > 1e-6) return {SolveStatus::kInfeasible, 0.0, {}};

    // Drive any artificial still in the basis out (degenerate rows).
    for (int r = 0; r < m; ++r) {
      if (basis[static_cast<std::size_t>(r)] < first_artificial) continue;
      int pivot_col = -1;
      for (int c = 0; c < first_artificial; ++c) {
        if (std::fabs(tab.at(r, c)) > 1e-7) {
          pivot_col = c;
          break;
        }
      }
      if (pivot_col >= 0) {
        tab.pivot(r, pivot_col);
        basis[static_cast<std::size_t>(r)] = pivot_col;
      }
      // else: the row is all-zero over structural vars (redundant
      // constraint); the artificial stays basic at value 0, harmless.
    }
  }

  // Phase 2: install the real objective, reduced against the basis.
  for (int c = 0; c <= total; ++c) tab.at(obj_row, c) = 0.0;
  for (int c = 0; c < n; ++c)
    tab.at(obj_row, c) = lp.objective()[static_cast<std::size_t>(c)];
  for (int r = 0; r < m; ++r) {
    const int b = basis[static_cast<std::size_t>(r)];
    if (b < n) {
      const double coeff = lp.objective()[static_cast<std::size_t>(b)];
      if (coeff != 0.0) {
        for (int c = 0; c <= total; ++c)
          tab.at(obj_row, c) -= coeff * tab.at(r, c);
      }
    }
  }

  // Price only structural columns in phase 2 so artificials never re-enter.
  const SolveStatus s2 =
      iterate(tab, basis, first_artificial, options, &iterations);
  if (s2 != SolveStatus::kOptimal) return {s2, 0.0, {}};

  LpSolution sol;
  sol.status = SolveStatus::kOptimal;
  sol.x.assign(static_cast<std::size_t>(n), 0.0);
  for (int r = 0; r < m; ++r) {
    const int b = basis[static_cast<std::size_t>(r)];
    if (b < n) sol.x[static_cast<std::size_t>(b)] = tab.at(r, total);
  }
  double obj = 0.0;
  for (int c = 0; c < n; ++c)
    obj += lp.objective()[static_cast<std::size_t>(c)] *
           sol.x[static_cast<std::size_t>(c)];
  sol.objective = obj;
  return sol;
}

}  // namespace dflp::lp
