// Stage 2 of the paper's pipeline (reconstructed): distributed randomized
// rounding of a feasible fractional solution into an integral one.
//
// For Theta(log N) phases, each still-closed facility opens independently
// with probability min(1, rounding_boost * y_i) and announces itself; a
// client connects to its cheapest announced neighbour the moment one
// exists. Because every client's fractional coverage is >= 1, each phase
// covers it with constant probability, so after Theta(log N) phases all
// clients are covered w.h.p.; the expected opening cost is at most
// phases * boost * sum_i f_i y_i = O(log N) * LP — the paper's rounding
// loss. A deterministic 3-round fallback (ask the cheapest
// positive-support facility to open) guarantees feasibility on the
// low-probability residue.
//
// Rounds: 2 * rounding_phases + 3 = O(log N).
#pragma once

#include "core/params.h"
#include "fl/instance.h"
#include "fl/solution.h"
#include "netsim/metrics.h"
#include "netsim/reliable.h"

namespace dflp::core {

struct RoundOutcome {
  fl::IntegralSolution solution;
  net::NetMetrics metrics;
  /// Clients served only by the deterministic fallback.
  int fallback_clients = 0;
  /// Recovery-layer counters (all-zero unless `MwParams::reliable`).
  net::ReliableStats transport;

  explicit RoundOutcome(const fl::Instance& inst) : solution(inst) {}
};

/// Rounds `fractional` (must be feasible for `inst`) on a simulated CONGEST
/// network. `schedule` supplies the phase count and bit budget; the seed
/// and boost come from `params`.
[[nodiscard]] RoundOutcome run_rand_round(
    const fl::Instance& inst, const fl::FractionalSolution& fractional,
    const MwSchedule& schedule, const MwParams& params);

}  // namespace dflp::core
