// Fault/transport wiring shared by the core protocol runners.
//
// Every runner (mw_greedy, frac_lp, rand_round) maps the same three
// MwParams knobs onto its network:
//   * `params.faults` installs the seeded FaultPlan;
//   * `params.reliable` wraps every node program in a ReliableChannel
//     (netsim/reliable.h), widens the physical bit budget to carry the
//     transport header, and stretches the round bound for dilation and the
//     channel's linger tail;
//   * on failure under injected faults, the CheckError is re-thrown with
//     the identity of the first lost message appended, so a test or a user
//     can see *which* drop broke an unprotected run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/check.h"
#include "core/params.h"
#include "netsim/network.h"
#include "netsim/reliable.h"

namespace dflp::core {

/// Applies the fault plan and, in reliable mode, widens the physical bit
/// budget so frames can carry an inner `options.bit_budget`-bit payload
/// plus a header for up to `max_logical_rounds` logical rounds.
inline void apply_transport_options(net::Network::Options& options,
                                    const MwParams& params,
                                    std::uint64_t max_logical_rounds) {
  options.faults = params.faults;
  options.tracer = params.tracer;
  if (params.reliable) {
    options.bit_budget =
        net::reliable_bit_budget(options.bit_budget, max_logical_rounds);
  }
}

/// Wraps `inner` in a ReliableChannel when the params ask for one.
inline std::unique_ptr<net::Process> maybe_reliable(
    std::unique_ptr<net::Process> inner, const MwParams& params,
    int inner_bit_budget) {
  if (!params.reliable) return inner;
  net::ReliableChannel::Options options;
  options.inner_bit_budget = inner_bit_budget;
  return std::make_unique<net::ReliableChannel>(std::move(inner), options);
}

/// Physical round bound: `logical_bound` for a direct run; under the
/// channel, room for loss-driven dilation plus the linger tail.
inline std::uint64_t transport_max_rounds(const MwParams& params,
                                          std::uint64_t logical_bound) {
  if (!params.reliable) return logical_bound;
  return 8 * logical_bound + 160;
}

/// Readout: the node program installed at `id`, unwrapped from the channel
/// in reliable mode.
template <typename Proc>
const Proc& transport_inner(const net::Network& net, const MwParams& params,
                            net::NodeId id) {
  const net::Process& proc = net.process(id);
  if (params.reliable) {
    return static_cast<const Proc&>(
        static_cast<const net::ReliableChannel&>(proc).inner());
  }
  return static_cast<const Proc&>(proc);
}

/// Channel counters aggregated over all nodes (zero for direct runs).
inline net::ReliableStats collect_transport_stats(const net::Network& net,
                                                  const MwParams& params) {
  net::ReliableStats total;
  if (!params.reliable) return total;
  for (std::size_t id = 0; id < net.num_nodes(); ++id) {
    total.merge(static_cast<const net::ReliableChannel&>(
                    net.process(static_cast<net::NodeId>(id)))
                    .stats());
  }
  return total;
}

/// Runs `body` (the run + readout + feasibility block of a runner); if it
/// throws CheckError while fault injection actually dropped traffic, the
/// diagnostic is re-thrown with the first lost message named.
template <typename Fn>
auto with_fault_context(const net::Network& net, Fn&& body) {
  try {
    return body();
  } catch (const CheckError& err) {
    const net::NetMetrics& m = net.cumulative_metrics();
    if (m.dropped == 0) throw;
    std::ostringstream os;
    os << err.what() << " [fault injection: first lost message was "
       << m.first_drop_src << "->" << m.first_drop_dst << " kind "
       << static_cast<int>(m.first_drop_kind) << " in round "
       << m.first_drop_round << "; " << m.dropped << " dropped total]";
    throw CheckError(os.str());
  }
}

}  // namespace dflp::core
