// Idealized distributed greedy: the round-count floor against which the
// paper's trade-off is positioned.
//
// Centralized greedy is inherently sequential — each star selection needs
// the global minimum cost-effectiveness, which costs at least one round of
// global coordination per iteration even with unbounded message sizes. This
// wrapper runs the exact centralized greedy and reports `iterations` as its
// (optimistic) round count, giving the benches a "what would perfect greedy
// cost in rounds" comparator without building a full LOCAL-model emulation.
#pragma once

#include "fl/instance.h"
#include "fl/solution.h"

namespace dflp::core {

struct IdealGreedyOutcome {
  fl::IntegralSolution solution;
  /// One global star selection per round: an optimistic lower bound on the
  /// rounds any faithful distributed emulation of greedy needs.
  int rounds = 0;
};

[[nodiscard]] IdealGreedyOutcome run_ideal_greedy(const fl::Instance& inst);

}  // namespace dflp::core
