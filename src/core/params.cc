#include "core/params.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/mathx.h"
#include "netsim/network.h"

namespace dflp::core {

std::string MwSchedule::describe() const {
  std::ostringstream os;
  os << "schedule(k=" << k << ", levels=" << levels
     << ", subphases=" << subphases << ", beta=" << beta
     << ", thresholds=" << thresholds.size() << ", y_scale=" << y_scale
     << ", rounding_phases=" << rounding_phases << ", budget=" << bit_budget
     << "b)";
  return os.str();
}

InstanceBounds InstanceBounds::of(const fl::Instance& inst) {
  InstanceBounds b;
  b.max_facilities = inst.num_facilities();
  b.max_network_nodes = inst.num_facilities() + inst.num_clients();
  b.min_positive_cost = inst.cost_profile().min_positive;
  b.max_cost = inst.cost_profile().max_value;
  b.max_facility_degree = inst.max_facility_degree();
  return b;
}

bool InstanceBounds::dominates(const InstanceBounds& other) const {
  return max_facilities >= other.max_facilities &&
         max_network_nodes >= other.max_network_nodes &&
         min_positive_cost <= other.min_positive_cost &&
         max_cost >= other.max_cost &&
         max_facility_degree >= other.max_facility_degree;
}

MwSchedule derive_schedule_from_bounds(const InstanceBounds& bounds,
                                       const MwParams& params) {
  DFLP_CHECK_MSG(params.k >= 1, "k must be >= 1, got " << params.k);
  DFLP_CHECK(params.subphases_override >= 0);
  DFLP_CHECK_MSG(bounds.max_facilities >= 1 && bounds.max_network_nodes >= 2,
                 "bounds must admit at least one facility and one client");

  const auto m = static_cast<double>(bounds.max_facilities);
  const bool bounds_positive = std::isfinite(bounds.min_positive_cost) &&
                               bounds.min_positive_cost > 0.0;
  const double rho =
      std::max(1.0, bounds_positive && bounds.max_cost > 0.0
                        ? bounds.max_cost / bounds.min_positive_cost
                        : 1.0);
  const double deg =
      static_cast<double>(std::max(1, bounds.max_facility_degree));

  MwSchedule sched;
  sched.k = params.k;
  const int big_l =
      std::max(1, static_cast<int>(std::ceil(std::sqrt(
                      static_cast<double>(params.k)))));
  sched.subphases =
      params.subphases_override > 0 ? params.subphases_override : big_l;

  // beta = (m * rho)^(1/L): the paper's discretization ratio. Clamp below
  // at 1.5 so the ladder always makes progress even for tiny instances or
  // huge k.
  sched.beta = std::max(1.5, std::pow(std::max(2.0, m * rho),
                                      1.0 / static_cast<double>(big_l)));

  // Cost-effectiveness range implied by the a-priori bounds: a best star's
  // ratio lies in [min_positive/(deg+1), max_value*(deg+1)] unless it is
  // exactly zero (all-free star). A dedicated rung at 0 is always included
  // — the profile cannot tell whether zero costs occur, and the rung costs
  // one extra scale only.
  const bool has_positive = bounds_positive;
  if (has_positive) {
    const double e_lo = bounds.min_positive_cost / (deg + 1.0);
    const double e_hi = bounds.max_cost * (deg + 1.0);
    const int rungs = std::max(
        1, static_cast<int>(std::ceil(std::log(e_hi / e_lo) /
                                      std::log(sched.beta))) +
               1);
    sched.thresholds = geometric_levels(e_lo * sched.beta, sched.beta, rungs);
  }
  sched.thresholds.insert(sched.thresholds.begin(), 0.0);
  DFLP_CHECK(!sched.thresholds.empty());
  sched.levels = static_cast<int>(sched.thresholds.size());

  // On-wire codec: anchor at the smallest positive cost (or 1 if none).
  const double anchor = has_positive ? bounds.min_positive_cost : 1.0;
  sched.codec = CostCodec(anchor, 0.25);

  sched.num_network_nodes = bounds.max_network_nodes;
  sched.bit_budget = net::congest_bit_budget(
      static_cast<std::size_t>(sched.num_network_nodes));

  // Fractional grid: beta^(-y_scale) <= 1/(m * rho * (deg+1)).
  sched.y_scale = std::max(
      1, static_cast<int>(std::ceil(std::log(std::max(2.0, m * rho *
                                                               (deg + 1.0))) /
                                    std::log(sched.beta))));

  sched.rounding_phases = std::max(
      2, 2 * ceil_log2(static_cast<std::uint64_t>(sched.num_network_nodes) +
                       2));
  return sched;
}

MwSchedule derive_schedule(const fl::Instance& inst, const MwParams& params) {
  if (params.pinned_schedule != nullptr) return *params.pinned_schedule;
  return derive_schedule_from_bounds(InstanceBounds::of(inst), params);
}

}  // namespace dflp::core
