#include "core/mw_greedy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "core/bipartite.h"
#include "core/transport.h"

namespace dflp::core {

namespace {

// Protocol opcodes.
constexpr std::uint8_t kOffer = 1;
constexpr std::uint8_t kAccept = 2;
constexpr std::uint8_t kGrant = 3;
constexpr std::uint8_t kCovered = 4;
constexpr std::uint8_t kOpenReq = 5;

/// Static data shared read-only by every node: the derived schedule plus
/// the round layout constants.
struct Shared {
  MwSchedule sched;
  MwParams params;
  std::uint64_t scheduled_rounds = 0;  // 4 * levels * subphases
};

class FacilityProc final : public net::Process {
 public:
  FacilityProc(const Shared* shared, double opening_cost,
               std::vector<LocalEdge> edges)
      : shared_(shared), opening_cost_(opening_cost),
        edges_(std::move(edges)),
        covered_(edges_.size(), 0) {
    by_peer_.reserve(edges_.size());
    for (std::size_t t = 0; t < edges_.size(); ++t)
      by_peer_.push_back({edges_[t].peer, t});
    std::sort(by_peer_.begin(), by_peer_.end());
    uncovered_count_ = static_cast<int>(edges_.size());
  }

  [[nodiscard]] bool opened() const noexcept { return open_; }

  void on_round(net::NodeContext& ctx,
                std::span<const net::Message> inbox) override {
    const std::uint64_t r = ctx.round();
    // Absorb coverage notices whenever they arrive (phase-3 broadcasts land
    // in the next phase-0 round; mop-up notices can land later too).
    for (const net::Message& msg : inbox) {
      if (msg.kind == kCovered) mark_covered(msg.src);
    }

    if (r < shared_->scheduled_rounds) {
      switch (r % 4) {
        case 0:
          maybe_offer(ctx, r);
          break;
        case 2:
          maybe_open_and_grant(ctx, inbox);
          break;
        default:
          break;  // phases 1 and 3 belong to the clients
      }
      return;
    }

    // Mop-up window. Round base+1: serve OPEN_REQs, then halt.
    const std::uint64_t base = shared_->scheduled_rounds;
    if (!shared_->params.mopup || r >= base + 1) {
      bool served = false;
      for (const net::Message& msg : inbox) {
        if (msg.kind == kOpenReq) {
          open_ = true;
          ctx.send(msg.src, kGrant);
          served = true;
        }
      }
      if (served) ctx.annotate("mopup-grant");
      ctx.halt();
    }
    // Round base+0: just absorbed trailing COVERED notices; stay for the
    // requests arriving next round.
  }

 private:
  void mark_covered(net::NodeId client) {
    const auto it = std::lower_bound(
        by_peer_.begin(), by_peer_.end(),
        std::pair<net::NodeId, std::size_t>{client, 0});
    DFLP_CHECK_MSG(it != by_peer_.end() && it->first == client,
                   "COVERED from non-neighbour " << client);
    if (!covered_[it->second]) {
      covered_[it->second] = 1;
      --uncovered_count_;
    }
  }

  /// Best star over uncovered neighbours: edges_ is cost-sorted, so scan
  /// the prefix. Returns the ratio and fills `star_size`.
  [[nodiscard]] double best_star(int* star_size) const {
    double num = open_ ? 0.0 : opening_cost_;
    double best = std::numeric_limits<double>::infinity();
    int best_size = 0;
    int size = 0;
    for (std::size_t t = 0; t < edges_.size(); ++t) {
      if (covered_[t]) continue;
      num += edges_[t].cost;
      ++size;
      const double ratio = num / static_cast<double>(size);
      if (ratio < best) {
        best = ratio;
        best_size = size;
      }
    }
    *star_size = best_size;
    return best;
  }

  void maybe_offer(net::NodeContext& ctx, std::uint64_t r) {
    const auto iteration = r / 4;
    const auto level = static_cast<int>(
        iteration / static_cast<std::uint64_t>(shared_->sched.subphases));
    DFLP_CHECK(level < shared_->sched.levels);
    const double threshold =
        shared_->sched.thresholds[static_cast<std::size_t>(level)];

    offered_star_ = 0;
    if (uncovered_count_ == 0) {
      // Nothing left to serve and mop-up requests can only come from
      // uncovered neighbours: this facility is done.
      ctx.halt();
      return;
    }
    int star = 0;
    const double ratio = best_star(&star);
    if (star == 0 || !(ratio <= threshold)) return;

    // Offer the star prefix to its uncovered clients.
    ctx.annotate("offer");
    offered_star_ = star;
    int sent = 0;
    for (std::size_t t = 0; t < edges_.size() && sent < star; ++t) {
      if (covered_[t]) continue;
      ctx.send(edges_[t].peer, kOffer);
      ++sent;
    }
  }

  void maybe_open_and_grant(net::NodeContext& ctx,
                            std::span<const net::Message> inbox) {
    if (offered_star_ == 0) return;
    std::vector<net::NodeId> accepters;
    for (const net::Message& msg : inbox) {
      if (msg.kind == kAccept) accepters.push_back(msg.src);
    }
    if (accepters.empty()) return;

    int needed = 1;
    if (shared_->params.accept_rule == AcceptRule::kFractionOfStar) {
      needed = std::max(
          1, static_cast<int>(std::ceil(static_cast<double>(offered_star_) /
                                        shared_->sched.beta)));
    }
    if (static_cast<int>(accepters.size()) < needed) return;

    ctx.annotate("open");
    open_ = true;
    for (net::NodeId c : accepters) ctx.send(c, kGrant);
  }

  const Shared* shared_;
  double opening_cost_;
  std::vector<LocalEdge> edges_;       // cost-sorted
  std::vector<std::uint8_t> covered_;  // parallel to edges_
  std::vector<std::pair<net::NodeId, std::size_t>> by_peer_;  // sorted
  int uncovered_count_ = 0;
  bool open_ = false;
  int offered_star_ = 0;  // size of the star offered this sub-phase
};

class ClientProc final : public net::Process {
 public:
  ClientProc(const Shared* shared, std::vector<LocalEdge> edges)
      : shared_(shared), edges_(std::move(edges)) {}

  [[nodiscard]] bool covered() const noexcept { return covered_; }
  [[nodiscard]] net::NodeId assigned_facility_node() const noexcept {
    return assigned_;
  }
  [[nodiscard]] bool covered_by_mopup() const noexcept { return by_mopup_; }

  void on_round(net::NodeContext& ctx,
                std::span<const net::Message> inbox) override {
    const std::uint64_t r = ctx.round();
    if (r < shared_->scheduled_rounds) {
      switch (r % 4) {
        case 1:
          maybe_accept(ctx, inbox);
          break;
        case 3:
          maybe_finalize_grant(ctx, inbox);
          break;
        default:
          break;
      }
      return;
    }

    const std::uint64_t base = shared_->scheduled_rounds;
    if (!shared_->params.mopup) {
      ctx.halt();
      return;
    }
    if (r == base) {
      if (!covered_) {
        // edges_ is cost-sorted: front is the cheapest facility.
        ctx.annotate("mopup-request");
        pending_ = edges_.front().peer;
        ctx.send(pending_, kOpenReq);
        by_mopup_ = true;
      } else {
        ctx.halt();
      }
      return;
    }
    if (r == base + 1) return;  // request in flight; grant arrives next
    // base+2: the grant for the mop-up request arrives.
    for (const net::Message& msg : inbox) {
      if (msg.kind == kGrant && msg.src == pending_) {
        covered_ = true;
        assigned_ = msg.src;
      }
    }
    DFLP_CHECK_MSG(covered_, "mop-up grant missing for client node "
                                 << ctx.self());
    ctx.halt();
  }

 private:
  void maybe_accept(net::NodeContext& ctx,
                    std::span<const net::Message> inbox) {
    pending_ = net::kNoNode;
    if (covered_) return;
    std::vector<net::NodeId> offers;
    offers.reserve(inbox.size());
    for (const net::Message& m : inbox) {
      if (m.kind == kOffer) offers.push_back(m.src);
    }
    if (offers.empty()) return;
    std::sort(offers.begin(), offers.end());
    // Cheapest offering facility by exact local cost, ties by node id
    // (edges_ order encodes exactly that preference).
    for (const LocalEdge& e : edges_) {
      if (std::binary_search(offers.begin(), offers.end(), e.peer)) {
        ctx.annotate("accept");
        pending_ = e.peer;
        ctx.send(e.peer, kAccept);
        return;
      }
    }
  }

  void maybe_finalize_grant(net::NodeContext& ctx,
                            std::span<const net::Message> inbox) {
    if (covered_ || pending_ == net::kNoNode) return;
    for (const net::Message& msg : inbox) {
      if (msg.kind == kGrant && msg.src == pending_) {
        ctx.annotate("connect");
        covered_ = true;
        assigned_ = msg.src;
        ctx.broadcast(kCovered);
        ctx.halt();  // nothing further to say or learn
        return;
      }
    }
    pending_ = net::kNoNode;  // no grant: retry in a later sub-phase
  }

  const Shared* shared_;
  std::vector<LocalEdge> edges_;  // cost-sorted
  bool covered_ = false;
  bool by_mopup_ = false;
  net::NodeId assigned_ = net::kNoNode;
  net::NodeId pending_ = net::kNoNode;
};

}  // namespace

MwGreedyOutcome run_mw_greedy(const fl::Instance& inst,
                              const MwParams& params) {
  Shared shared;
  shared.sched = derive_schedule(inst, params);
  shared.params = params;
  shared.scheduled_rounds = 4ULL *
                            static_cast<std::uint64_t>(shared.sched.levels) *
                            static_cast<std::uint64_t>(shared.sched.subphases);

  const std::uint64_t logical_bound = shared.scheduled_rounds + 8;

  net::Network::Options options;
  options.bit_budget = shared.sched.bit_budget;
  options.seed = params.seed;
  options.num_threads = params.num_threads;
  options.delivery = params.delivery;
  apply_transport_options(options, params, logical_bound);
  if (params.tracer != nullptr) params.tracer->set_section("mw-greedy");
  net::Network net = make_bipartite_network(inst, options);

  for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i) {
    net.set_process(facility_node(i),
                    maybe_reliable(std::make_unique<FacilityProc>(
                                       &shared, inst.opening_cost(i),
                                       facility_local_edges(inst, i)),
                                   params, shared.sched.bit_budget));
  }
  for (fl::ClientId j = 0; j < inst.num_clients(); ++j) {
    net.set_process(client_node(inst, j),
                    maybe_reliable(std::make_unique<ClientProc>(
                                       &shared, client_local_edges(inst, j)),
                                   params, shared.sched.bit_budget));
  }

  const std::uint64_t max_rounds = transport_max_rounds(params, logical_bound);
  return with_fault_context(net, [&] {
    MwGreedyOutcome outcome{fl::IntegralSolution(inst), net.run(max_rounds),
                            shared.sched, 0, {}};

    for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i) {
      const auto& proc =
          transport_inner<FacilityProc>(net, params, facility_node(i));
      if (proc.opened()) outcome.solution.open(i);
    }
    for (fl::ClientId j = 0; j < inst.num_clients(); ++j) {
      const auto& proc =
          transport_inner<ClientProc>(net, params, client_node(inst, j));
      if (proc.covered()) {
        outcome.solution.assign(
            j, node_to_facility(proc.assigned_facility_node()));
      }
      if (proc.covered_by_mopup()) ++outcome.mopup_clients;
    }
    outcome.transport = collect_transport_stats(net, params);
    if (params.mopup) {
      std::string why;
      DFLP_CHECK_MSG(outcome.solution.is_feasible(inst, &why),
                     "mw-greedy with mop-up must be feasible: " << why);
    }
    return outcome;
  });
}

MwGreedyAsyncOutcome run_mw_greedy_async(const fl::Instance& inst,
                                         const MwParams& params,
                                         int max_delay) {
  auto shared = std::make_unique<Shared>();
  shared->sched = derive_schedule(inst, params);
  shared->params = params;
  shared->scheduled_rounds =
      4ULL * static_cast<std::uint64_t>(shared->sched.levels) *
      static_cast<std::uint64_t>(shared->sched.subphases);

  net::AsyncNetwork::Options options;
  // The synchronizer tags every message with its logical round, so the
  // budget grows by the tag size: O(log rounds) = O(log N) extra bits.
  options.bit_budget =
      shared->sched.bit_budget +
      net::bits_for_value(
          static_cast<std::int64_t>(shared->scheduled_rounds + 8)) +
      2;
  options.max_delay = max_delay;
  options.seed = params.seed;
  options.tracer = params.tracer;
  if (params.tracer != nullptr) params.tracer->set_section("mw-greedy-async");

  net::AsyncNetwork net(
      static_cast<std::size_t>(inst.num_facilities() + inst.num_clients()),
      options);
  for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i) {
    for (const fl::FacilityEdge& e : inst.facility_edges(i))
      net.add_edge(facility_node(i), client_node(inst, e.client));
  }
  net.finalize();

  const Shared* shared_ptr = shared.get();
  auto make_inner = [&](net::NodeId id) -> std::unique_ptr<net::Process> {
    if (id < inst.num_facilities()) {
      const fl::FacilityId i = node_to_facility(id);
      return std::make_unique<FacilityProc>(shared_ptr,
                                            inst.opening_cost(i),
                                            facility_local_edges(inst, i));
    }
    const fl::ClientId j = node_to_client(inst, id);
    return std::make_unique<ClientProc>(shared_ptr,
                                        client_local_edges(inst, j));
  };

  MwGreedyAsyncOutcome outcome{fl::IntegralSolution(inst),
                               net::run_synchronized(
                                   net, make_inner,
                                   /*max_events=*/1ULL << 32),
                               shared->sched, 0};

  for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i) {
    const auto& sync = static_cast<const net::Synchronizer&>(
        net.process(facility_node(i)));
    outcome.max_rounds_executed =
        std::max(outcome.max_rounds_executed, sync.rounds_executed());
    if (static_cast<const FacilityProc&>(sync.inner()).opened())
      outcome.solution.open(i);
  }
  for (fl::ClientId j = 0; j < inst.num_clients(); ++j) {
    const auto& sync = static_cast<const net::Synchronizer&>(
        net.process(client_node(inst, j)));
    outcome.max_rounds_executed =
        std::max(outcome.max_rounds_executed, sync.rounds_executed());
    const auto& proc = static_cast<const ClientProc&>(sync.inner());
    if (proc.covered()) {
      outcome.solution.assign(
          j, node_to_facility(proc.assigned_facility_node()));
    }
  }
  if (params.mopup) {
    std::string why;
    DFLP_CHECK_MSG(outcome.solution.is_feasible(inst, &why),
                   "async mw-greedy with mop-up must be feasible: " << why);
  }
  return outcome;
}

}  // namespace dflp::core
