#include "core/pipeline.h"

namespace dflp::core {

PipelineOutcome run_pipeline(const fl::Instance& inst,
                             const MwParams& params) {
  FracOutcome frac = run_frac_lp(inst, params);
  RoundOutcome rounded =
      run_rand_round(inst, frac.fractional, frac.schedule, params);

  PipelineOutcome outcome(inst);
  outcome.solution = std::move(rounded.solution);
  outcome.fractional_value = frac.fractional.value(inst);
  outcome.frac_metrics = frac.metrics;
  outcome.round_metrics = rounded.metrics;
  outcome.schedule = frac.schedule;
  outcome.frac_mopup_clients = frac.mopup_clients;
  outcome.round_fallback_clients = rounded.fallback_clients;
  outcome.transport = frac.transport;
  outcome.transport.merge(rounded.transport);
  return outcome;
}

}  // namespace dflp::core
