// The paper's primary algorithm (reconstructed): k-parameterized
// distributed greedy for non-metric UFL in the CONGEST model.
//
// Structure (DESIGN.md §3.1). The cost-effectiveness range is discretized
// into a geometric ladder of thresholds with ratio beta = (m*rho)^(1/L),
// L = ceil(sqrt(k)). For each rung, L contention sub-phases run; each
// sub-phase is a fixed 4-round conversation:
//
//   round 4t+0  facilities absorb COVERED notices, re-evaluate their best
//               star over still-uncovered neighbours and OFFER it to those
//               clients when its ratio clears the current threshold;
//   round 4t+1  each uncovered client ACCEPTs its cheapest offering
//               facility (exact local costs; ties by node id);
//   round 4t+2  a candidate facility opens when enough clients accepted
//               (>= max(1, ceil(|star|/beta)) under the default rule) and
//               GRANTs its accepters;
//   round 4t+3  granted clients mark themselves covered, record their
//               assignment and broadcast COVERED to all neighbours.
//
// A deterministic 3-round mop-up then covers any stragglers (each asks its
// cheapest facility to open), guaranteeing feasibility. Every message fits
// the network's checked O(log N)-bit budget; the whole run takes
// 4*levels*subphases + 3 = O(k) rounds up to the instance-bound constants
// measured in bench E2.
#pragma once

#include "core/params.h"
#include "fl/instance.h"
#include "fl/solution.h"
#include "netsim/async.h"
#include "netsim/metrics.h"
#include "netsim/reliable.h"

namespace dflp::core {

struct MwGreedyOutcome {
  fl::IntegralSolution solution;
  net::NetMetrics metrics;
  MwSchedule schedule;
  /// Clients the scale schedule failed to cover (mop-up handled them; with
  /// mopup disabled these remain unassigned and the solution is
  /// infeasible — the E8 ablation reports this).
  int mopup_clients = 0;
  /// Recovery-layer counters, aggregated over all nodes (all-zero unless
  /// the run used `MwParams::reliable`).
  net::ReliableStats transport;
};

/// Runs the distributed greedy end-to-end on a simulated CONGEST network.
[[nodiscard]] MwGreedyOutcome run_mw_greedy(const fl::Instance& inst,
                                            const MwParams& params);

struct MwGreedyAsyncOutcome {
  fl::IntegralSolution solution;
  net::AsyncMetrics metrics;
  MwSchedule schedule;
  /// Largest logical round any node executed under the synchronizer.
  std::uint64_t max_rounds_executed = 0;
};

/// Runs the *same* node programs on an asynchronous network under the
/// alpha-synchronizer (netsim/async.h). With the same seed this produces a
/// bit-identical solution to run_mw_greedy — the property the async tests
/// pin down — at the cost of the synchronizer's token/tag overhead, which
/// the returned AsyncMetrics quantify.
[[nodiscard]] MwGreedyAsyncOutcome run_mw_greedy_async(
    const fl::Instance& inst, const MwParams& params, int max_delay = 16);

}  // namespace dflp::core
