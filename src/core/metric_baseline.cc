#include "core/metric_baseline.h"

#include "common/check.h"
#include "seq/jms.h"

namespace dflp::core {

const std::vector<double>& li_default_scales() {
  // Li's delta distribution is supported on [1, ~1.81]; the grid brackets
  // it with a little headroom. delta = 1.0 first, so plain JMS is always a
  // candidate and ties resolve toward it.
  static const std::vector<double> kScales = {1.0,  1.1,  1.2, 1.3, 1.4,
                                              1.5,  1.6,  1.7, 1.8, 1.9,
                                              2.0};
  return kScales;
}

LiResult li_jms_solve(const fl::Instance& inst,
                      const std::vector<double>& scales) {
  const std::vector<double>& grid =
      scales.empty() ? li_default_scales() : scales;
  LiResult best;
  for (const double delta : grid) {
    DFLP_CHECK_MSG(delta >= 1.0,
                   "facility-cost scale must be >= 1; got " << delta);
    // Rebuild the instance with scaled opening costs. Connection costs and
    // the edge set are untouched, so any solution of the scaled instance is
    // structurally valid for the original one.
    fl::InstanceBuilder b;
    b.reserve(inst.num_facilities(), inst.num_clients(), inst.num_edges());
    for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i)
      b.add_facility(inst.opening_cost(i) * delta);
    for (fl::ClientId j = 0; j < inst.num_clients(); ++j) {
      b.add_client();
      for (const fl::ClientEdge& e : inst.client_edges(j))
        b.connect(e.facility, j, e.cost);
    }
    const fl::Instance scaled = b.build();

    seq::JmsResult jms = seq::jms_solve(scaled);
    // Price the open set at the *original* costs: reconnect every client to
    // its cheapest open facility and drop facilities that lost all clients.
    fl::IntegralSolution candidate(inst);
    for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i)
      if (jms.solution.is_open(i)) candidate.open(i);
    candidate.assign_greedily(inst);
    candidate.prune_unused(inst);
    std::string why;
    DFLP_CHECK_MSG(candidate.is_feasible(inst, &why),
                   "scaled-JMS candidate infeasible at delta=" << delta
                                                               << ": " << why);
    const fl::Cost cost = candidate.cost(inst);
    if (best.candidates == 0 || cost < best.cost) {
      best.solution = std::move(candidate);
      best.cost = cost;
      best.scale = delta;
    }
    ++best.candidates;
  }
  return best;
}

}  // namespace dflp::core
