// Super-fast facility location in the congested clique, after
// Berns–Hegeman–Pemmaraju (arXiv:1308.2473): an O(log log n)-round-style
// O(1)-approximation for *metric* UFL when every pair of nodes can exchange
// one O(log n)-bit message per round (netsim Topology::kClique).
//
// Reconstruction. Facilities and clients are network nodes (core/bipartite
// layout) on the clique. Each facility i locally computes its Mettu–Plaxton
// radius r_i (sum_j max(0, r_i - c_ij) = f_i — a function of its own cost
// column) and quantizes it through the shared CostCodec so every node
// reasons about identical values. The open set is a ruling set of the
// *conflict graph* H: i ~ i' iff d(i, i') <= conflict_factor * min(r_i,
// r_i'), with facility–facility distances read from the metric side channel
// (generator sites, or the bipartite closure). H is resolved by BHP-style
// doubly-exponential sampling: in iteration t every undecided facility
// nominates itself with probability p_t = min(1, 2^(2^t) / m) and
// broadcasts its radius code; a nominee opens iff no conflicting nominee
// has a smaller (radius code, id) key, and an undecided facility retires as
// soon as a conflicting facility announces OPEN. p_t reaches 1 after
// ~log2 log2 m iterations, which is what keeps the measured round count
// sub-logarithmic in n (E15 gates this). Every facility broadcasts exactly
// one OPEN or RETIRE; clients count the m decisions, connect to the
// cheapest open facility, and halt.
//
// Every inbox is folded order-insensitively (min-key over candidates,
// per-facility decision flags), every coin comes from the node's own
// (seed, node) stream, so solves are bit-identical across thread counts,
// delivery orders and the duplication hazard; under message *loss* the run
// cannot complete and fails loudly with a named CheckError instead.
#pragma once

#include <cstdint>

#include "fl/instance.h"
#include "fl/metric.h"
#include "fl/solution.h"
#include "netsim/fault.h"
#include "netsim/metrics.h"
#include "netsim/network.h"

namespace dflp::core {

struct CliqueFlParams {
  std::uint64_t seed = 1;
  int num_threads = 1;
  net::DeliveryOrder delivery = net::DeliveryOrder::kBySource;
  /// Fault injection forwarded to the network (tests only; the protocol
  /// detects undeliverable progress and throws).
  net::FaultPlan::Options faults;
  /// Conflict radius multiplier: i ~ i' iff d(i,i') <= factor * min radius.
  double conflict_factor = 2.0;
  /// Hard stop for the (loss-free, always-terminating) protocol.
  std::uint64_t max_rounds = 10000;
  /// Optional round tracer (netsim/trace.h), not owned.
  net::Tracer* tracer = nullptr;
};

struct CliqueFlOutcome {
  fl::IntegralSolution solution;
  net::NetMetrics metrics;
  /// Sampling iterations until the last facility decided (the quantity
  /// that grows like log log m).
  std::uint64_t iterations = 0;
  int open_facilities = 0;
};

/// Metric side-channel run: facility–facility distances are evaluated from
/// the generator's sites in O(1) — the model's "metric is local knowledge"
/// assumption, and the form E15 benchmarks.
[[nodiscard]] CliqueFlOutcome run_clique_fl(const fl::MetricInstance& minst,
                                            const CliqueFlParams& params);

/// Closure-based run for plain instances: facility distances are the
/// bipartite metric closure (fl/metric.h), precomputed once — O(n·m^2) on
/// complete bipartite instances, so intended for tests and small CLI runs.
/// The instance must be complete bipartite (every client adjacent to every
/// facility); anything else throws.
[[nodiscard]] CliqueFlOutcome run_clique_fl(const fl::Instance& inst,
                                            const CliqueFlParams& params);

}  // namespace dflp::core
