// Parameters and derived schedule for the reconstructed PODC'05 algorithms.
//
// The paper's trade-off knob is an integer k: more communication rounds buy
// a better approximation. Internally k splits into L = ceil(sqrt(k))
// *cost-effectiveness scales* (a geometric ladder of thresholds with ratio
// beta = (m * rho)^(1/L)) times L contention *sub-phases* per scale, for
// O(k) rounds total.
//
// What nodes are allowed to know. The paper assumes no global knowledge
// beyond a polynomial upper bound on the network size; every threshold here
// is a deterministic function of a-priori instance bounds (upper bounds on
// m, on the cost spread rho, and on the maximum degree), which stand in for
// that assumption. `derive()` computes them once from the instance — the
// way a deployment would bake conservative bounds into the protocol — and
// hands the same read-only schedule to every node.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/quantize.h"
#include "fl/instance.h"
#include "netsim/network.h"
#include "netsim/trace.h"

namespace dflp::core {

/// Ablation knob (E8): when does a candidate facility commit to opening?
enum class AcceptRule : std::uint8_t {
  /// Opens only when at least max(1, ceil(|star|/beta)) clients accepted —
  /// keeps the per-client price within a beta factor of the threshold.
  kFractionOfStar,
  /// Opens on any accept (aggressive; cheaper rounds, worse ratio).
  kAnyAccept,
};

struct MwSchedule;

struct MwParams {
  /// The paper's locality/quality trade-off parameter (k >= 1).
  int k = 4;
  /// Seed for every coin the distributed algorithms toss.
  std::uint64_t seed = 1;
  AcceptRule accept_rule = AcceptRule::kFractionOfStar;
  /// 0 = derive sub-phase count as ceil(sqrt(k)); otherwise force it (E8).
  int subphases_override = 0;
  /// Run the final deterministic mop-up that guarantees feasibility.
  /// Disabling it (E8) shows how much cost the scale schedule alone covers.
  bool mopup = true;
  /// Rounding stage: multiplier on the per-phase opening probability.
  double rounding_boost = 1.0;
  /// Fault injection plan for the simulator (netsim/fault.h): i.i.d. and
  /// burst message loss, bipartition windows, duplication, crash-stop
  /// failures. The paper's model is reliable (default: no faults); faulted
  /// runs either fail *loudly* (CheckError naming the first lost message)
  /// or opt into the recovery layer below.
  net::FaultPlan::Options faults;
  /// Run every process under the ReliableChannel adapter
  /// (netsim/reliable.h): acks + retransmissions recover message loss, so
  /// the run returns the bit-identical fault-free solution at the price of
  /// round dilation and header bits.
  bool reliable = false;
  /// Harness-level crash-before-start model: this fraction of facilities
  /// (seeded by `faults.fault_seed`) is removed before the algorithm runs;
  /// the survivors solve the pruned instance. Applied by
  /// harness/faults.h, not by the core runners.
  double boot_crash_fraction = 0.0;
  /// Simulator threads for the step phase (>= 1). Purely an execution
  /// knob: results are bit-identical for every value.
  int num_threads = 1;
  /// Inbox ordering the simulator applies before each delivery. The
  /// reconstructed protocols are order-independent; tests sweep this to
  /// prove it.
  net::DeliveryOrder delivery = net::DeliveryOrder::kBySource;
  /// Round tracer (netsim/trace.h), not owned; attached to every network
  /// the runner builds. Purely observational — a traced run is
  /// bit-identical to an untraced one. Library callers set this directly
  /// for in-memory traces; harness::run_algorithm owns a Tracer itself
  /// when `trace_path` asks for a file.
  net::Tracer* tracer = nullptr;
  /// Harness-level export: when non-empty, run_algorithm writes the trace
  /// here in `trace_format`, capturing per-node phase annotations when
  /// `trace_phases` is set (see docs/trace-schema.md).
  std::string trace_path;
  net::TraceFormat trace_format = net::TraceFormat::kJsonl;
  bool trace_phases = false;
  /// Warm-start entry point for epoch-batched re-solves (service layer):
  /// when non-null, every runner uses *this* schedule verbatim instead of
  /// re-deriving one from the instance at hand. A service derives the
  /// schedule once from its declared capacity bounds
  /// (`derive_schedule_from_bounds`) and pins it, so solves become pure
  /// functions of (sub-instance, seed, schedule) — the property that makes
  /// per-component solution reuse across epochs exact. Not owned; must
  /// outlive the run. The caller is responsible for deriving it from
  /// bounds that dominate the instance (thresholds bracket every star,
  /// bit budget covers N).
  const MwSchedule* pinned_schedule = nullptr;
};

/// The deterministic schedule every node runs against.
struct MwSchedule {
  int k = 1;
  int levels = 1;             ///< number of threshold rungs actually needed
  int subphases = 1;          ///< contention sub-phases per rung
  double beta = 2.0;          ///< geometric ratio of the rung ladder
  std::vector<double> thresholds;  ///< ascending; may start with 0.0
  CostCodec codec;            ///< quantizer for on-wire costs
  int num_network_nodes = 0;  ///< N = m + n (for budgets and whp targets)
  int bit_budget = 64;        ///< CONGEST per-message budget for this N
  /// Fractional stage: y values live on the grid beta^(s - y_scale),
  /// s = number of raises; beta^(-y_scale) <= 1/(m*rho_bound).
  int y_scale = 1;
  /// Rounding stage: number of randomized phases, Theta(log N).
  int rounding_phases = 1;

  [[nodiscard]] std::string describe() const;
};

/// A-priori instance bounds a deployment declares up front (the paper's
/// "polynomial bound on the network size" assumption made concrete). A
/// schedule derived from bounds is valid for *every* instance they
/// dominate, which is what lets a streaming service pin one schedule
/// across epochs and sub-instances.
struct InstanceBounds {
  std::int32_t max_facilities = 1;    ///< upper bound on m
  std::int32_t max_network_nodes = 2; ///< upper bound on N = m + n
  /// Lower bound on any positive cost; +inf declares "all costs zero".
  double min_positive_cost = std::numeric_limits<double>::infinity();
  double max_cost = 0.0;              ///< upper bound on any cost
  int max_facility_degree = 1;

  /// The tight bounds of one concrete instance.
  [[nodiscard]] static InstanceBounds of(const fl::Instance& inst);

  /// True when every bound of `other` is within this one (an instance with
  /// `other = of(inst)` may then run under this bounds' schedule).
  [[nodiscard]] bool dominates(const InstanceBounds& other) const;
};

/// Computes the schedule from declared a-priori bounds and k.
[[nodiscard]] MwSchedule derive_schedule_from_bounds(
    const InstanceBounds& bounds, const MwParams& params);

/// Computes the schedule from the instance's a-priori bounds and k; when
/// `params.pinned_schedule` is set, returns that schedule verbatim.
[[nodiscard]] MwSchedule derive_schedule(const fl::Instance& inst,
                                         const MwParams& params);

}  // namespace dflp::core
