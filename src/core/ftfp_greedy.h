// Distributed FTFP solver: the mw_greedy pipeline run in r_max *exclusion
// phases* over residual instances.
//
// Phase p (0-based) solves the residual UFL instance induced by the
// still-unsatisfied demands:
//   * a client participates while it holds fewer than r_j assignments;
//   * every facility already chosen in an earlier phase is *forced open* —
//     its residual opening cost is 0, so serving further demands through it
//     is free beyond the connection cost;
//   * an edge (i, j) is *excluded* once facility i is assigned to client j,
//     so each phase can only add distinct coverage.
// Each phase is one unmodified `run_mw_greedy` execution on the residual
// instance — the staged round engine, transport options, fault plan and
// recovery layer all apply verbatim, so every phase (and hence the whole
// solve) is bit-identical across thread counts and delivery orders.
//
// Phase 0 runs with `params.seed` on a residual instance that *is* the
// base instance, so with all r_j = 1 the solver is byte-for-byte the plain
// UFL mw_greedy run (same solution, same metrics) — the identity the
// property tests pin. Later phases derive fresh seeds from (seed, phase).
//
// A client participating in phase p gains exactly one assignment (the
// mop-up guarantees it), so after r_j phases client j holds r_j distinct
// open facilities and the result is always feasible.
#pragma once

#include <vector>

#include "core/mw_greedy.h"
#include "core/params.h"
#include "fl/ftfp.h"

namespace dflp::core {

struct FtfpOutcome {
  fl::FtfpSolution solution;
  /// Aggregate over all phases: rounds/messages/bits sum, maxima max.
  net::NetMetrics metrics;
  /// Per-phase simulator metrics, one entry per executed phase.
  std::vector<net::NetMetrics> phase_metrics;
  /// Phase-0 schedule (later phases re-derive from their residuals).
  MwSchedule schedule;
  int phases = 0;
  /// Mop-up interventions summed over phases.
  int mopup_clients = 0;
  /// Recovery-layer counters merged over phases (all-zero unless
  /// `MwParams::reliable`).
  net::ReliableStats transport;
};

/// Runs the exclusion-phase solver end-to-end. The instance must
/// validate (r_j >= 1 and r_j <= degree(j) for every client).
[[nodiscard]] FtfpOutcome run_ftfp_greedy(const fl::FtfpInstance& inst,
                                          const MwParams& params);

/// The residual UFL instance of phase `p` given the coverage collected so
/// far. Exposed for tests; `client_map[res_j]` gives the original id of
/// residual client `res_j`. Facility ids are preserved (forced-open
/// facilities appear with opening cost 0).
struct ResidualInstance {
  fl::Instance instance;
  std::vector<fl::ClientId> client_map;
};
[[nodiscard]] ResidualInstance build_residual(const fl::FtfpInstance& inst,
                                              const fl::FtfpSolution& so_far);

}  // namespace dflp::core
