#include "core/quantize.h"

#include <cmath>

#include "common/check.h"

namespace dflp::core {

CostCodec::CostCodec(double min_positive, double gamma)
    : min_positive_(min_positive), gamma_(gamma),
      log1g_(std::log1p(gamma)) {
  DFLP_CHECK_MSG(min_positive > 0.0 && std::isfinite(min_positive),
                 "codec anchor must be positive, got " << min_positive);
  DFLP_CHECK_MSG(gamma > 0.0 && gamma <= 1.0, "gamma out of (0,1]: " << gamma);
}

std::int64_t CostCodec::encode(double cost) const {
  DFLP_CHECK_MSG(cost >= 0.0 && std::isfinite(cost),
                 "cannot encode cost " << cost);
  if (cost == 0.0) return 0;
  // Bucket 1 covers (0, min_positive]; bucket s covers
  // (min_positive*(1+g)^(s-2), min_positive*(1+g)^(s-1)].
  if (cost <= min_positive_) return 1;
  const double s = std::ceil(std::log(cost / min_positive_) / log1g_);
  return 1 + static_cast<std::int64_t>(s);
}

double CostCodec::decode(std::int64_t code) const {
  DFLP_CHECK_MSG(code >= 0, "negative cost code " << code);
  if (code == 0) return 0.0;
  return min_positive_ * std::pow(1.0 + gamma_,
                                  static_cast<double>(code - 1));
}

std::int64_t CostCodec::max_code(double max_value) const {
  return encode(max_value < min_positive_ ? min_positive_ : max_value);
}

}  // namespace dflp::core
