#include "core/frac_lp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "core/bipartite.h"
#include "core/transport.h"

namespace dflp::core {

namespace {

constexpr std::uint8_t kYUpdate = 10;  // field[0] = raise count
constexpr std::uint8_t kCovered = 11;
constexpr std::uint8_t kOpenReq = 12;

struct Shared {
  MwSchedule sched;
  MwParams params;
  std::uint64_t scheduled_rounds = 0;  // 2 * levels * subphases
};

/// The y grid both sides evaluate identically from the shared schedule.
double y_of_raises(const MwSchedule& sched, std::int64_t raises) {
  if (raises <= 0) return 0.0;
  if (raises >= sched.y_scale) return 1.0;
  return std::pow(sched.beta,
                  static_cast<double>(raises - sched.y_scale));
}

class FacilityProc final : public net::Process {
 public:
  FacilityProc(const Shared* shared, double opening_cost,
               std::vector<LocalEdge> edges)
      : shared_(shared), opening_cost_(opening_cost),
        edges_(std::move(edges)), covered_(edges_.size(), 0) {
    by_peer_.reserve(edges_.size());
    for (std::size_t t = 0; t < edges_.size(); ++t)
      by_peer_.push_back({edges_[t].peer, t});
    std::sort(by_peer_.begin(), by_peer_.end());
    uncovered_count_ = static_cast<int>(edges_.size());
  }

  [[nodiscard]] std::int64_t raises() const noexcept { return raises_; }

  void on_round(net::NodeContext& ctx,
                std::span<const net::Message> inbox) override {
    const std::uint64_t r = ctx.round();
    for (const net::Message& msg : inbox) {
      if (msg.kind == kCovered) mark_covered(msg.src);
    }

    if (r < shared_->scheduled_rounds) {
      if (r % 2 == 0) maybe_raise(ctx, r);
      return;
    }

    const std::uint64_t base = shared_->scheduled_rounds;
    if (!shared_->params.mopup || r >= base + 1) {
      bool requested = false;
      for (const net::Message& msg : inbox) {
        if (msg.kind == kOpenReq) requested = true;
      }
      if (requested && raises_ < shared_->sched.y_scale) {
        ctx.annotate("mopup-raise");
        raises_ = shared_->sched.y_scale;  // y = 1
        ctx.broadcast(kYUpdate, {raises_, 0, 0});
      }
      ctx.halt();
    }
  }

 private:
  void mark_covered(net::NodeId client) {
    const auto it = std::lower_bound(
        by_peer_.begin(), by_peer_.end(),
        std::pair<net::NodeId, std::size_t>{client, 0});
    DFLP_CHECK_MSG(it != by_peer_.end() && it->first == client,
                   "COVERED from non-neighbour " << client);
    if (!covered_[it->second]) {
      covered_[it->second] = 1;
      --uncovered_count_;
    }
  }

  [[nodiscard]] double best_star_ratio() const {
    // Once fully raised the facility cannot act anyway.
    double num = opening_cost_ * (1.0 - y_of_raises(shared_->sched, raises_));
    double best = std::numeric_limits<double>::infinity();
    int size = 0;
    for (std::size_t t = 0; t < edges_.size(); ++t) {
      if (covered_[t]) continue;
      num += edges_[t].cost;
      ++size;
      best = std::min(best, num / static_cast<double>(size));
    }
    return size == 0 ? std::numeric_limits<double>::infinity() : best;
  }

  void maybe_raise(net::NodeContext& ctx, std::uint64_t r) {
    if (uncovered_count_ == 0) {
      ctx.halt();  // y final; mop-up requests only come from the uncovered
      return;
    }
    if (raises_ >= shared_->sched.y_scale) return;  // y == 1 already
    const auto iteration = r / 2;
    const auto level = static_cast<int>(
        iteration / static_cast<std::uint64_t>(shared_->sched.subphases));
    DFLP_CHECK(level < shared_->sched.levels);
    const double threshold =
        shared_->sched.thresholds[static_cast<std::size_t>(level)];
    if (!(best_star_ratio() <= threshold)) return;
    ctx.annotate("raise");
    ++raises_;
    ctx.broadcast(kYUpdate, {raises_, 0, 0});
  }

  const Shared* shared_;
  double opening_cost_;
  std::vector<LocalEdge> edges_;
  std::vector<std::uint8_t> covered_;
  std::vector<std::pair<net::NodeId, std::size_t>> by_peer_;
  int uncovered_count_ = 0;
  std::int64_t raises_ = 0;
};

class ClientProc final : public net::Process {
 public:
  ClientProc(const Shared* shared, std::vector<LocalEdge> edges)
      : shared_(shared), edges_(std::move(edges)),
        known_raises_(edges_.size(), 0) {
    by_peer_.reserve(edges_.size());
    for (std::size_t t = 0; t < edges_.size(); ++t)
      by_peer_.push_back({edges_[t].peer, t});
    std::sort(by_peer_.begin(), by_peer_.end());
  }

  [[nodiscard]] bool covered() const noexcept { return covered_; }
  [[nodiscard]] bool covered_by_mopup() const noexcept { return by_mopup_; }

  /// Local x allocation over this client's edges (edge order = cost
  /// order): x_ij = min(known y_i, residual). Known y never exceeds the
  /// facility's true final y, so the allocation is feasible against it.
  [[nodiscard]] std::vector<double> allocate_x() const {
    std::vector<double> x(edges_.size(), 0.0);
    double residual = 1.0;
    for (std::size_t t = 0; t < edges_.size() && residual > 0.0; ++t) {
      const double yv = y_of_raises(shared_->sched, known_raises_[t]);
      const double take = std::min(yv, residual);
      x[t] = take;
      residual -= take;
    }
    return x;
  }

  void on_round(net::NodeContext& ctx,
                std::span<const net::Message> inbox) override {
    const std::uint64_t r = ctx.round();
    for (const net::Message& msg : inbox) {
      if (msg.kind == kYUpdate) {
        const auto it = std::lower_bound(
            by_peer_.begin(), by_peer_.end(),
            std::pair<net::NodeId, std::size_t>{msg.src, 0});
        DFLP_CHECK(it != by_peer_.end() && it->first == msg.src);
        known_raises_[it->second] =
            std::max(known_raises_[it->second], msg.field[0]);
      }
    }

    if (r < shared_->scheduled_rounds) {
      if (r % 2 == 1 && !covered_) maybe_cover(ctx);
      return;
    }

    const std::uint64_t base = shared_->scheduled_rounds;
    if (!shared_->params.mopup) {
      ctx.halt();
      return;
    }
    if (r == base) {
      if (!covered_) {
        ctx.annotate("mopup-request");
        ctx.send(edges_.front().peer, kOpenReq);  // cheapest facility
        by_mopup_ = true;
      } else {
        ctx.halt();
      }
      return;
    }
    if (r == base + 1) return;  // y update in flight
    // base+2: the mop-up facility raised to y=1; coverage must now hold.
    if (!covered_) maybe_cover(ctx);
    DFLP_CHECK_MSG(covered_, "client node " << ctx.self()
                                            << " uncovered after mop-up");
    ctx.halt();
  }

 private:
  void maybe_cover(net::NodeContext& ctx) {
    double mass = 0.0;
    for (std::size_t t = 0; t < edges_.size(); ++t)
      mass += y_of_raises(shared_->sched, known_raises_[t]);
    if (mass >= 1.0 - 1e-12) {
      ctx.annotate("covered");
      covered_ = true;
      ctx.broadcast(kCovered);
    }
  }

  const Shared* shared_;
  std::vector<LocalEdge> edges_;
  std::vector<std::int64_t> known_raises_;  // parallel to edges_
  std::vector<std::pair<net::NodeId, std::size_t>> by_peer_;
  bool covered_ = false;
  bool by_mopup_ = false;
};

}  // namespace

FracOutcome run_frac_lp(const fl::Instance& inst, const MwParams& params) {
  Shared shared;
  shared.sched = derive_schedule(inst, params);
  shared.params = params;
  shared.scheduled_rounds = 2ULL *
                            static_cast<std::uint64_t>(shared.sched.levels) *
                            static_cast<std::uint64_t>(shared.sched.subphases);

  const std::uint64_t logical_bound = shared.scheduled_rounds + 8;

  net::Network::Options options;
  options.bit_budget = shared.sched.bit_budget;
  options.seed = params.seed;
  options.num_threads = params.num_threads;
  options.delivery = params.delivery;
  apply_transport_options(options, params, logical_bound);
  if (params.tracer != nullptr) params.tracer->set_section("frac-lp");
  net::Network net = make_bipartite_network(inst, options);

  for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i) {
    net.set_process(facility_node(i),
                    maybe_reliable(std::make_unique<FacilityProc>(
                                       &shared, inst.opening_cost(i),
                                       facility_local_edges(inst, i)),
                                   params, shared.sched.bit_budget));
  }
  for (fl::ClientId j = 0; j < inst.num_clients(); ++j) {
    net.set_process(client_node(inst, j),
                    maybe_reliable(std::make_unique<ClientProc>(
                                       &shared, client_local_edges(inst, j)),
                                   params, shared.sched.bit_budget));
  }

  return with_fault_context(net, [&] {
    FracOutcome outcome(inst);
    outcome.metrics = net.run(transport_max_rounds(params, logical_bound));
    outcome.schedule = shared.sched;

    for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i) {
      const auto& proc =
          transport_inner<FacilityProc>(net, params, facility_node(i));
      outcome.fractional.y[static_cast<std::size_t>(i)] =
          y_of_raises(shared.sched, proc.raises());
    }
    for (fl::ClientId j = 0; j < inst.num_clients(); ++j) {
      const auto& proc =
          transport_inner<ClientProc>(net, params, client_node(inst, j));
      const std::vector<double> x = proc.allocate_x();
      const std::size_t base = inst.client_edge_offset(j);
      for (std::size_t t = 0; t < x.size(); ++t)
        outcome.fractional.x[base + t] = x[t];
      if (proc.covered_by_mopup()) ++outcome.mopup_clients;
    }
    outcome.transport = collect_transport_stats(net, params);
    if (params.mopup) {
      std::string why;
      DFLP_CHECK_MSG(outcome.fractional.is_feasible(inst, 1e-7, &why),
                     "fractional stage with mop-up must be feasible: " << why);
    }
    return outcome;
  });
}

}  // namespace dflp::core
