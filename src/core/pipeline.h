// The paper's full two-stage pipeline: distributed fractional LP solve
// (O(k) rounds) followed by distributed randomized rounding (O(log N)
// rounds). This is the algorithm behind the headline
// O(sqrt(k) * (m*rho)^(1/sqrt(k)) * log(m+n)) bound; the combinatorial
// mw_greedy is the practical variant that skips the fractional detour.
#pragma once

#include "core/frac_lp.h"
#include "core/params.h"
#include "core/rand_round.h"
#include "fl/instance.h"
#include "fl/solution.h"

namespace dflp::core {

struct PipelineOutcome {
  fl::IntegralSolution solution;
  /// Stage-1 fractional value (compare against the LP optimum for the
  /// stage-1 loss, and against solution cost for the rounding loss).
  double fractional_value = 0.0;
  net::NetMetrics frac_metrics;
  net::NetMetrics round_metrics;
  MwSchedule schedule;
  int frac_mopup_clients = 0;
  int round_fallback_clients = 0;
  /// Recovery-layer counters over both stages (all-zero unless
  /// `MwParams::reliable`).
  net::ReliableStats transport;

  explicit PipelineOutcome(const fl::Instance& inst) : solution(inst) {}

  [[nodiscard]] std::uint64_t total_rounds() const noexcept {
    return frac_metrics.rounds + round_metrics.rounds;
  }
  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return frac_metrics.messages + round_metrics.messages;
  }
};

[[nodiscard]] PipelineOutcome run_pipeline(const fl::Instance& inst,
                                           const MwParams& params);

}  // namespace dflp::core
