// Distributed bounds discovery: BFS election + convergecast aggregation.
//
// The derived schedule (core/params.h) assumes nodes know a-priori bounds
// on m, rho and the maximum degree — the standard "poly(N) upper bound"
// assumption of the paper. This module removes the assumption when a
// deployment prefers to *measure*: an O(diameter)-round CONGEST protocol
// that, per connected component,
//
//   1. floods the minimum node id (electing a component root) while
//      gossiping min/max cost exponents and the maximum degree (idempotent
//      aggregates: pure flooding suffices);
//   2. builds the implicit BFS tree rooted at the winner (parent = the
//      neighbour that first delivered the winning id) and convergecasts the
//      facility count m (a sum — this genuinely needs the tree);
//   3. broadcasts the finished bounds down the tree.
//
// Costs are transported as IEEE exponent codes (~12 bits): the spread
// estimate is within a factor 2 per endpoint, which the geometric threshold
// ladder absorbs. Every message fits the CONGEST budget.
//
// The main entry point runs the protocol on a UFL instance's bipartite
// network and returns each node's learned bounds plus the exact metrics, so
// tests can verify agreement with ground truth and the O(diameter) round
// count.
#pragma once

#include <cstdint>
#include <vector>

#include "fl/instance.h"
#include "netsim/metrics.h"
#include "netsim/network.h"

namespace dflp::core {

/// Bounds one node learned about its connected component.
struct ComponentBounds {
  std::int64_t root = -1;         ///< elected component leader (node id)
  std::int64_t facility_count = 0;  ///< m of the component
  double min_positive_cost = 0.0;   ///< within factor 2 (exponent codes)
  double max_cost = 0.0;            ///< within factor 2
  int max_degree = 0;

  /// Spread estimate rho = max/min (>= 1), within a factor 4.
  [[nodiscard]] double rho() const {
    if (min_positive_cost <= 0.0 || max_cost <= 0.0) return 1.0;
    return max_cost / min_positive_cost;
  }
};

struct DiscoveryOutcome {
  /// Per network node (facility i -> node i, client j -> node m+j).
  std::vector<ComponentBounds> bounds;
  net::NetMetrics metrics;
};

/// IEEE-exponent cost code used on the wire: 0 encodes 0; otherwise
/// code = floor(log2(value)) + 1076 (always positive for finite doubles).
[[nodiscard]] std::int64_t exp_code(double value);
/// Lower edge of the code's bucket: decode(encode(v)) in (v/2, v].
[[nodiscard]] double exp_decode(std::int64_t code);

/// Runs discovery on `inst`'s bipartite network. `diameter_bound` caps the
/// flooding phases; pass 0 to use the safe bound N (any component's
/// diameter is < N). Rounds used ~ 3 * actual eccentricity + O(1).
/// `num_threads` is the simulator's step-phase thread count and `delivery`
/// the inbox ordering; both are execution knobs only — results are
/// bit-identical for every combination.
[[nodiscard]] DiscoveryOutcome discover_bounds(
    const fl::Instance& inst, std::uint64_t seed = 1, int diameter_bound = 0,
    int num_threads = 1,
    net::DeliveryOrder delivery = net::DeliveryOrder::kBySource);

}  // namespace dflp::core
