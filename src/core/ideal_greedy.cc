#include "core/ideal_greedy.h"

#include "seq/greedy.h"

namespace dflp::core {

IdealGreedyOutcome run_ideal_greedy(const fl::Instance& inst) {
  seq::GreedyResult greedy = seq::greedy_solve(inst);
  return IdealGreedyOutcome{std::move(greedy.solution), greedy.iterations};
}

}  // namespace dflp::core
