#include "core/ftfp_greedy.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace dflp::core {

namespace {

/// Decorrelates per-phase engine seeds from each other and from the base
/// stream (phase 0 deliberately keeps the base seed — see header).
constexpr std::uint64_t kFtfpPhaseSalt = 0xF7F9C0BE12E5D3ULL;

/// Folds one phase's simulator metrics into the aggregate: additive
/// counters sum, high-water marks max, the first drop of the earliest
/// phase is kept.
void merge_metrics(net::NetMetrics& total, const net::NetMetrics& phase) {
  if (total.dropped == 0 && phase.dropped > 0) {
    total.first_drop_round = phase.first_drop_round;
    total.first_drop_src = phase.first_drop_src;
    total.first_drop_dst = phase.first_drop_dst;
    total.first_drop_kind = phase.first_drop_kind;
  }
  total.rounds += phase.rounds;
  total.messages += phase.messages;
  total.total_bits += phase.total_bits;
  total.dropped += phase.dropped;
  total.duplicated += phase.duplicated;
  total.crashed += phase.crashed;
  total.bytes_moved += phase.bytes_moved;
  total.max_message_bits =
      std::max(total.max_message_bits, phase.max_message_bits);
  total.max_messages_in_round =
      std::max(total.max_messages_in_round, phase.max_messages_in_round);
  total.arena_peak_messages =
      std::max(total.arena_peak_messages, phase.arena_peak_messages);
}

}  // namespace

ResidualInstance build_residual(const fl::FtfpInstance& inst,
                                const fl::FtfpSolution& so_far) {
  const fl::Instance& base = inst.base;
  ResidualInstance out;

  std::size_t residual_edges = 0;
  for (fl::ClientId j = 0; j < base.num_clients(); ++j) {
    const std::int32_t have = so_far.coverage(j);
    if (have >= inst.requirement[static_cast<std::size_t>(j)]) continue;
    out.client_map.push_back(j);
    residual_edges += base.client_edges(j).size() -
                      static_cast<std::size_t>(have);
  }
  if (out.client_map.empty()) return out;  // all demands satisfied

  fl::InstanceBuilder builder;
  builder.reserve(base.num_facilities(),
                  static_cast<std::int32_t>(out.client_map.size()),
                  residual_edges);
  // Facility ids are preserved: forced-open facilities cost 0, every other
  // facility keeps its price. Facilities with no residual edge are inert
  // (they halt in round 0) but keep the id space aligned with the base
  // instance, so crash plans and solution readout need no translation.
  for (fl::FacilityId i = 0; i < base.num_facilities(); ++i)
    builder.add_facility(so_far.is_open(i) ? 0.0 : base.opening_cost(i));
  for (std::size_t res_j = 0; res_j < out.client_map.size(); ++res_j) {
    const fl::ClientId j = out.client_map[res_j];
    builder.add_client();
    const auto taken = so_far.assignments(j);
    for (const fl::ClientEdge& e : base.client_edges(j)) {
      if (std::find(taken.begin(), taken.end(), e.facility) != taken.end())
        continue;  // exclusion: already assigned in an earlier phase
      builder.connect(e.facility, static_cast<fl::ClientId>(res_j), e.cost);
    }
  }
  out.instance = builder.build();
  return out;
}

FtfpOutcome run_ftfp_greedy(const fl::FtfpInstance& inst,
                            const MwParams& params) {
  fl::validate(inst);
  FtfpOutcome outcome;
  outcome.solution = fl::FtfpSolution(inst);

  const std::int32_t r_max = inst.max_requirement();
  for (std::int32_t phase = 0; phase < r_max; ++phase) {
    const ResidualInstance residual =
        build_residual(inst, outcome.solution);
    if (residual.client_map.empty()) break;

    MwParams phase_params = params;
    if (phase > 0) {
      phase_params.seed = derive_stream_seed(
          params.seed, static_cast<std::uint64_t>(phase), kFtfpPhaseSalt);
    }
    const MwGreedyOutcome step =
        run_mw_greedy(residual.instance, phase_params);

    for (fl::FacilityId i = 0; i < residual.instance.num_facilities(); ++i)
      if (step.solution.is_open(i)) outcome.solution.open(i);
    for (std::size_t res_j = 0; res_j < residual.client_map.size(); ++res_j) {
      const fl::FacilityId i =
          step.solution.assignment(static_cast<fl::ClientId>(res_j));
      if (i != fl::kNoFacility)
        outcome.solution.assign(residual.client_map[res_j], i);
    }

    if (phase == 0) outcome.schedule = step.schedule;
    merge_metrics(outcome.metrics, step.metrics);
    outcome.phase_metrics.push_back(step.metrics);
    outcome.mopup_clients += step.mopup_clients;
    outcome.transport.merge(step.transport);
    ++outcome.phases;
  }

  if (params.mopup) {
    std::string why;
    DFLP_CHECK_MSG(outcome.solution.is_feasible(inst, &why),
                   "ftfp-greedy with mop-up must be feasible: " << why);
  }
  return outcome;
}

}  // namespace dflp::core
