#include "core/clique_fl.h"

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/bipartite.h"
#include "core/quantize.h"
#include "seq/mettu_plaxton.h"

namespace dflp::core {

namespace {

// Protocol opcodes. CANDIDATE and OPEN carry the sender's radius code so
// receivers can evaluate the conflict predicate; RETIRE is payload-free.
constexpr std::uint8_t kCandidate = 1;
constexpr std::uint8_t kOpen = 2;
constexpr std::uint8_t kRetire = 3;

// Facility–facility distances: O(1) from generator sites when available,
// otherwise the precomputed bipartite closure row.
struct FacilityDistances {
  std::vector<fl::MetricPoint> sites;  // size m, preferred when non-empty
  std::vector<double> closure;         // m*m fallback
  std::size_t m = 0;

  [[nodiscard]] double operator()(fl::FacilityId a, fl::FacilityId b) const {
    if (!sites.empty())
      return fl::metric_distance(sites[static_cast<std::size_t>(a)],
                                 sites[static_cast<std::size_t>(b)]);
    return closure[static_cast<std::size_t>(a) * m +
                   static_cast<std::size_t>(b)];
  }
};

// Immutable data every process shares (the "common knowledge" of the
// model: instance shape, codec, the metric side channel).
struct Shared {
  std::int32_t m = 0;
  std::int32_t n = 0;
  double conflict_factor = 2.0;
  CostCodec codec;
  FacilityDistances dist;
};

// One collected nominee, folded order-insensitively by (code, id) key.
struct Nominee {
  std::int64_t code = 0;
  net::NodeId src = net::kNoNode;
};

class FacilityProcess final : public net::Process {
 public:
  FacilityProcess(std::shared_ptr<const Shared> shared, fl::FacilityId id,
                  double radius)
      : shared_(std::move(shared)),
        id_(id),
        code_(shared_->codec.encode(radius)),
        radius_(shared_->codec.decode(code_)) {}

  [[nodiscard]] bool opened() const noexcept { return state_ == State::kOpen; }
  [[nodiscard]] bool decided() const noexcept { return state_ != State::kActive; }
  [[nodiscard]] std::uint64_t decided_iteration() const noexcept {
    return decided_iteration_;
  }

  void on_round(net::NodeContext& ctx,
                std::span<const net::Message> inbox) override {
    const std::uint64_t t = ctx.round() / 2;
    if ((ctx.round() & 1) == 0) {
      // Even rounds: fold the OPEN announcements of iteration t-1, retire
      // on conflict, otherwise flip this iteration's sampling coin. The
      // coin is drawn iff the facility is still active, so the number of
      // draws from the per-node stream is delivery-order independent.
      for (const net::Message& msg : inbox) {
        if (msg.kind != kOpen) continue;
        if (conflicts(msg.src, msg.field[0])) {
          state_ = State::kRetired;
          decided_iteration_ = t;
          ctx.broadcast(kRetire);
          ctx.halt();
          return;
        }
      }
      nominated_ = ctx.rng().bernoulli(sample_probability(t));
      if (nominated_) ctx.broadcast(kCandidate, {code_, 0, 0});
      return;
    }
    if (!nominated_) return;
    // Odd rounds: resolve the nominees. A nominee opens iff it holds the
    // minimal (radius code, id) key among the conflicting nominees — a
    // pure fold over the inbox set, insensitive to delivery order and to
    // duplicated copies.
    bool wins = true;
    for (const net::Message& msg : inbox) {
      if (msg.kind != kCandidate) continue;
      if (!conflicts(msg.src, msg.field[0])) continue;
      if (std::pair(msg.field[0], msg.src) < std::pair(code_, self_node())) {
        wins = false;
        break;
      }
    }
    nominated_ = false;
    if (!wins) return;
    state_ = State::kOpen;
    decided_iteration_ = t + 1;
    ctx.broadcast(kOpen, {code_, 0, 0});
    ctx.halt();
  }

 private:
  enum class State : std::uint8_t { kActive, kOpen, kRetired };

  [[nodiscard]] net::NodeId self_node() const noexcept {
    return facility_node(id_);
  }

  // i ~ i' iff d(i,i') <= factor * min(r_i, r_i'), all radii quantized
  // through the shared codec so both endpoints agree exactly.
  [[nodiscard]] bool conflicts(net::NodeId other,
                               std::int64_t other_code) const {
    const Shared& s = *shared_;
    const double other_radius = s.codec.decode(other_code);
    const double reach =
        s.conflict_factor * std::min(radius_, other_radius);
    return s.dist(id_, node_to_facility(other)) <= reach;
  }

  // p_t = min(1, 2^(2^t) / m): the BHP doubly-exponential schedule, which
  // hits 1 after ~log2 log2 m iterations.
  [[nodiscard]] double sample_probability(std::uint64_t t) const {
    if (t >= 6) return 1.0;  // 2^64 dwarfs any representable m
    const std::uint64_t exponent = std::uint64_t{1} << t;
    if (exponent >= 63) return 1.0;
    const double mass = std::ldexp(1.0, static_cast<int>(exponent));
    return std::min(1.0, mass / static_cast<double>(shared_->m));
  }

  std::shared_ptr<const Shared> shared_;
  fl::FacilityId id_;
  std::int64_t code_ = 0;
  double radius_ = 0.0;
  State state_ = State::kActive;
  bool nominated_ = false;
  std::uint64_t decided_iteration_ = 0;
};

class ClientProcess final : public net::Process {
 public:
  ClientProcess(std::shared_ptr<const Shared> shared, fl::ClientId id,
                std::vector<fl::ClientEdge> edges)
      : shared_(std::move(shared)),
        id_(id),
        edges_(std::move(edges)),
        decision_(static_cast<std::size_t>(shared_->m), 0) {}

  [[nodiscard]] fl::FacilityId assignment() const noexcept {
    return assignment_;
  }

  void on_round(net::NodeContext& ctx,
                std::span<const net::Message> inbox) override {
    // Fold every facility's single OPEN/RETIRE announcement into a decision
    // table; the transition guard makes duplicated copies harmless.
    for (const net::Message& msg : inbox) {
      if (msg.kind != kOpen && msg.kind != kRetire) continue;
      auto& cell = decision_[static_cast<std::size_t>(
          node_to_facility(msg.src))];
      if (cell != 0) continue;
      cell = msg.kind == kOpen ? 1 : 2;
      ++decided_;
    }
    if (decided_ < shared_->m) return;
    // Every facility has decided: connect to the cheapest open one. edges_
    // is sorted by (cost, facility id), so the first open hit is canonical.
    for (const fl::ClientEdge& e : edges_) {
      if (decision_[static_cast<std::size_t>(e.facility)] == 1) {
        assignment_ = e.facility;
        break;
      }
    }
    DFLP_CHECK_MSG(assignment_ != fl::kNoFacility,
                   "clique-fl: client " << id_
                                        << " has no open adjacent facility");
    ctx.halt();
  }

 private:
  std::shared_ptr<const Shared> shared_;
  fl::ClientId id_;
  std::vector<fl::ClientEdge> edges_;
  std::vector<std::uint8_t> decision_;  ///< 0 unknown, 1 open, 2 retired
  std::int32_t decided_ = 0;
  fl::FacilityId assignment_ = fl::kNoFacility;
};

CliqueFlOutcome run_impl(const fl::Instance& inst, FacilityDistances dist,
                         const CliqueFlParams& params) {
  const std::int32_t m = inst.num_facilities();
  const std::int32_t n = inst.num_clients();
  DFLP_CHECK_MSG(params.conflict_factor > 0.0,
                 "conflict_factor must be positive; got "
                     << params.conflict_factor);
  for (fl::ClientId j = 0; j < n; ++j) {
    DFLP_CHECK_MSG(
        static_cast<std::int32_t>(inst.client_edges(j).size()) == m,
        "clique-fl needs a complete bipartite (metric) instance; client "
            << j << " reaches " << inst.client_edges(j).size() << " of " << m
            << " facilities");
  }

  auto shared = std::make_shared<Shared>();
  shared->m = m;
  shared->n = n;
  shared->conflict_factor = params.conflict_factor;
  const fl::CostProfile& profile = inst.cost_profile();
  const double anchor =
      std::isfinite(profile.min_positive) ? profile.min_positive : 1.0;
  shared->codec = CostCodec(anchor, 0.25);
  dist.m = static_cast<std::size_t>(m);
  shared->dist = std::move(dist);

  const std::size_t num_nodes = static_cast<std::size_t>(m + n);
  net::Network::Options options;
  options.topology = net::Topology::kClique;
  options.bit_budget = net::congest_bit_budget(num_nodes);
  options.seed = params.seed;
  options.num_threads = params.num_threads;
  options.delivery = params.delivery;
  options.faults = params.faults;
  options.tracer = params.tracer;
  net::Network net(num_nodes, options);
  net.finalize();

  std::vector<FacilityProcess*> facilities;
  facilities.reserve(static_cast<std::size_t>(m));
  for (fl::FacilityId i = 0; i < m; ++i) {
    auto proc = std::make_unique<FacilityProcess>(shared, i,
                                                  seq::mp_radius(inst, i));
    facilities.push_back(proc.get());
    net.set_process(facility_node(i), std::move(proc));
  }
  std::vector<ClientProcess*> clients;
  clients.reserve(static_cast<std::size_t>(n));
  for (fl::ClientId j = 0; j < n; ++j) {
    std::vector<fl::ClientEdge> edges(inst.client_edges(j).begin(),
                                      inst.client_edges(j).end());
    auto proc =
        std::make_unique<ClientProcess>(shared, j, std::move(edges));
    clients.push_back(proc.get());
    net.set_process(client_node(inst, j), std::move(proc));
  }

  CliqueFlOutcome out;
  out.metrics = net.run(params.max_rounds);
  DFLP_CHECK_MSG(net.all_halted(),
                 "clique-fl stalled: " << net.live_node_count()
                                       << " nodes still undecided after "
                                       << out.metrics.rounds
                                       << " rounds (message loss?)");

  out.solution = fl::IntegralSolution(inst);
  for (fl::FacilityId i = 0; i < m; ++i) {
    const FacilityProcess& f = *facilities[static_cast<std::size_t>(i)];
    out.iterations = std::max(out.iterations, f.decided_iteration());
    if (f.opened()) out.solution.open(i);
  }
  for (fl::ClientId j = 0; j < n; ++j)
    out.solution.assign(j, clients[static_cast<std::size_t>(j)]->assignment());
  out.solution.prune_unused(inst);
  out.open_facilities = out.solution.num_open();
  std::string why;
  DFLP_CHECK_MSG(out.solution.is_feasible(inst, &why),
                 "clique-fl produced an infeasible solution: " << why);
  return out;
}

}  // namespace

CliqueFlOutcome run_clique_fl(const fl::MetricInstance& minst,
                              const CliqueFlParams& params) {
  FacilityDistances dist;
  dist.sites = minst.facility_pos;
  DFLP_CHECK_MSG(dist.sites.size() ==
                     static_cast<std::size_t>(minst.instance.num_facilities()),
                 "MetricInstance facility sites out of sync: "
                     << dist.sites.size() << " sites for "
                     << minst.instance.num_facilities() << " facilities");
  return run_impl(minst.instance, std::move(dist), params);
}

CliqueFlOutcome run_clique_fl(const fl::Instance& inst,
                              const CliqueFlParams& params) {
  FacilityDistances dist;
  dist.closure = fl::facility_metric_closure(inst);
  return run_impl(inst, std::move(dist), params);
}

}  // namespace dflp::core
