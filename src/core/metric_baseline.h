// Li's 1.488-style sequential baseline (arXiv:1105.1248): JMS greedy under
// randomized facility-cost scaling.
//
// Li's result improves the JMS 1.861 factor to 1.488 — the best known for
// metric UFL — by running the JMS algorithm on an instance whose opening
// costs are scaled by a factor delta drawn from an explicit distribution on
// [1, ~1.8], then paying the *original* costs of the solution found. This
// reconstruction derandomizes the draw the standard way: it sweeps a fixed
// geometric-ish grid of scale factors covering the distribution's support,
// evaluates every candidate solution at the original costs (re-assigning
// clients greedily and pruning unused facilities), and keeps the cheapest.
// delta = 1 is always in the grid, so the result never loses to plain JMS;
// the factor guarantee (on metric instances) is inherited from the
// portfolio's best member. This is the sequential yardstick E15 measures
// the distributed metric solvers against.
#pragma once

#include <vector>

#include "fl/instance.h"
#include "fl/solution.h"

namespace dflp::core {

struct LiResult {
  fl::IntegralSolution solution;  ///< best candidate at original costs
  fl::Cost cost = 0.0;            ///< its cost on the original instance
  double scale = 1.0;             ///< the winning facility-cost scale
  int candidates = 0;             ///< grid points evaluated
};

/// The scale grid swept by default: 1.0 plus steps through (1, 2], dense
/// where Li's distribution carries mass.
[[nodiscard]] const std::vector<double>& li_default_scales();

/// Runs JMS once per scale factor and returns the cheapest solution under
/// the original costs. Deterministic; `scales` empty selects the default
/// grid.
[[nodiscard]] LiResult li_jms_solve(const fl::Instance& inst,
                                    const std::vector<double>& scales = {});

}  // namespace dflp::core
