// Stage 1 of the paper's two-stage pipeline (reconstructed): a distributed
// multiplicative solver for the UFL covering LP under the same
// scale/sub-phase schedule as the combinatorial greedy.
//
// Facilities maintain an opening variable y_i on the geometric grid
// y(raises) = min(1, beta^(raises - y_scale)) — i.e. y starts (one raise)
// at ~1/(m*rho*deg) and each further raise multiplies it by beta. In each
// sub-phase a facility whose best star over *fractionally-uncovered*
// neighbours clears the current threshold raises once and broadcasts its
// raise count (a small integer: O(log N) bits). A client is covered when
// the y mass it can see across its neighbours reaches 1; it then allocates
// x over its cheapest edges (x_ij = min(y_i, residual)) and broadcasts
// COVERED. A deterministic mop-up sets y = 1 at the cheapest facility of
// any straggler, so the output is always LP-feasible.
//
// Each sub-phase costs 2 rounds, so the stage runs in
// 2*levels*subphases + 3 = O(k) rounds.
#pragma once

#include "core/params.h"
#include "fl/instance.h"
#include "fl/solution.h"
#include "netsim/metrics.h"
#include "netsim/reliable.h"

namespace dflp::core {

struct FracOutcome {
  fl::FractionalSolution fractional;
  net::NetMetrics metrics;
  MwSchedule schedule;
  /// Clients covered only by the mop-up.
  int mopup_clients = 0;
  /// Recovery-layer counters (all-zero unless `MwParams::reliable`).
  net::ReliableStats transport;

  explicit FracOutcome(const fl::Instance& inst) : fractional(inst) {}
};

[[nodiscard]] FracOutcome run_frac_lp(const fl::Instance& inst,
                                      const MwParams& params);

}  // namespace dflp::core
