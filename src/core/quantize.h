// Logarithmic cost quantization for O(log N)-bit messages.
//
// CONGEST messages cannot carry raw doubles. Offers and coverage reports
// instead carry a *code*: 0 encodes an exact zero, and code s >= 1 encodes
// the geometric bucket min_positive * (1+gamma)^(s-1). Decoding returns the
// bucket's representative, which over-estimates the true value by at most a
// (1+gamma) factor — a constant-factor slack the scale ladder already
// absorbs. Code magnitudes are O(log_(1+gamma)(spread)), i.e. O(log N) bits
// for polynomially-bounded costs, which is what keeps the protocols inside
// the CONGEST budget (and the network *checks* it).
#pragma once

#include <cstdint>

namespace dflp::core {

class CostCodec {
 public:
  CostCodec() = default;

  /// `min_positive` anchors bucket 1; `gamma` is the bucket growth rate.
  CostCodec(double min_positive, double gamma);

  [[nodiscard]] std::int64_t encode(double cost) const;
  [[nodiscard]] double decode(std::int64_t code) const;

  /// Largest code this codec emits for values up to `max_value`.
  [[nodiscard]] std::int64_t max_code(double max_value) const;

  [[nodiscard]] double gamma() const noexcept { return gamma_; }
  [[nodiscard]] double min_positive() const noexcept { return min_positive_; }

 private:
  double min_positive_ = 1.0;
  double gamma_ = 0.25;
  double log1g_ = 0.22314355131420976;  // log(1.25)
};

}  // namespace dflp::core
