#include "core/aggregate.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "core/bipartite.h"

namespace dflp::core {

std::int64_t exp_code(double value) {
  DFLP_CHECK_MSG(value >= 0.0 && std::isfinite(value),
                 "cannot exponent-code " << value);
  if (value == 0.0) return 0;
  int exp = 0;
  std::frexp(value, &exp);
  // frexp: value = f * 2^exp with f in [0.5, 1); floor(log2 v) = exp - 1.
  return static_cast<std::int64_t>(exp - 1) + 1076;
}

double exp_decode(std::int64_t code) {
  DFLP_CHECK(code >= 0);
  if (code == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(code - 1076));
}

namespace {

constexpr std::uint8_t kGossip = 30;  // {root, packed codes, max_deg}
constexpr std::uint8_t kChild = 31;   // parent announcement
constexpr std::uint8_t kCount = 32;   // {subtree facility count}
constexpr std::uint8_t kFinal = 33;   // {component facility count}

std::int64_t pack_codes(std::int64_t min_pos, std::int64_t max) {
  return (min_pos << 13) | max;  // exponent codes fit in 12 bits
}
std::int64_t packed_min(std::int64_t packed) { return packed >> 13; }
std::int64_t packed_max(std::int64_t packed) { return packed & 0x1FFF; }

class AggProc final : public net::Process {
 public:
  /// `own_costs` = the cost values this node contributes (facility: its
  /// opening cost + incident connection costs; client: nothing, its edges
  /// are owned by the facility side). `is_facility` drives the count.
  AggProc(bool is_facility, std::vector<double> own_costs, int phase_len)
      : phase_len_(static_cast<std::uint64_t>(phase_len)),
        count_self_(is_facility ? 1 : 0) {
    for (double c : own_costs) {
      const std::int64_t code = exp_code(c);
      if (code > 0) {
        min_pos_code_ = min_pos_code_ == 0 ? code
                                           : std::min(min_pos_code_, code);
      }
      max_code_ = std::max(max_code_, code);
    }
  }

  [[nodiscard]] ComponentBounds bounds() const {
    ComponentBounds b;
    b.root = root_;
    b.facility_count = final_count_;
    b.min_positive_cost = exp_decode(min_pos_code_);
    b.max_cost = exp_decode(max_code_);
    b.max_degree = max_deg_;
    return b;
  }

  void on_round(net::NodeContext& ctx,
                std::span<const net::Message> inbox) override {
    const std::uint64_t r = ctx.round();
    if (r == 0) {
      root_ = ctx.self();
      max_deg_ = ctx.degree();
      if (ctx.degree() == 0) {
        // Isolated node: a one-node component, fully known already.
        final_count_ = count_self_;
        ctx.halt();
        return;
      }
      broadcast_gossip(ctx);
      return;
    }

    if (r <= phase_len_) {
      // Phase A: min-id flood + idempotent aggregates.
      bool changed = false;
      for (const net::Message& msg : inbox) {
        DFLP_CHECK(msg.kind == kGossip);
        if (msg.field[0] < root_) {
          root_ = msg.field[0];
          parent_ = msg.src;
          changed = true;
        }
        const std::int64_t mn = packed_min(msg.field[1]);
        const std::int64_t mx = packed_max(msg.field[1]);
        if (mn > 0 && (min_pos_code_ == 0 || mn < min_pos_code_)) {
          min_pos_code_ = mn;
          changed = true;
        }
        if (mx > max_code_) {
          max_code_ = mx;
          changed = true;
        }
        if (msg.field[2] > max_deg_) {
          max_deg_ = static_cast<int>(msg.field[2]);
          changed = true;
        }
      }
      if (r == phase_len_) {
        // Stability invariant: with phase_len >= eccentricity + 1 nothing
        // may still be changing at the phase boundary.
        DFLP_CHECK_MSG(!changed,
                       "aggregation phase too short (diameter bound "
                       "violated) at node " << ctx.self());
        // Phase B kickoff: announce ourselves to our parent.
        if (parent_ != net::kNoNode) ctx.send(parent_, kChild);
        subtree_count_ = count_self_;
        return;
      }
      if (changed) broadcast_gossip(ctx);
      return;
    }

    if (r <= 2 * phase_len_) {
      // Phase B: convergecast facility counts along the parent tree.
      for (const net::Message& msg : inbox) {
        if (msg.kind == kChild) {
          children_.push_back(msg.src);
          child_count_.push_back(0);
        } else if (msg.kind == kCount) {
          const auto it =
              std::find(children_.begin(), children_.end(), msg.src);
          DFLP_CHECK_MSG(it != children_.end(),
                         "COUNT from a non-child neighbour");
          child_count_[static_cast<std::size_t>(it - children_.begin())] =
              msg.field[0];
        } else {
          DFLP_CHECK_MSG(false, "unexpected opcode in phase B");
        }
      }
      std::int64_t total = count_self_;
      for (std::int64_t c : child_count_) total += c;
      if (total != subtree_count_reported_ && parent_ != net::kNoNode) {
        subtree_count_reported_ = total;
        ctx.send(parent_, kCount, {total, 0, 0});
      }
      subtree_count_ = total;

      if (r == 2 * phase_len_ && parent_ == net::kNoNode) {
        // Root: the count has stabilized; start the downcast.
        final_count_ = subtree_count_;
        for (net::NodeId c : children_) ctx.send(c, kFinal, {final_count_, 0, 0});
        ctx.halt();
      }
      return;
    }

    // Phase C: forward FINAL down the tree, then halt.
    for (const net::Message& msg : inbox) {
      if (msg.kind == kFinal) {
        DFLP_CHECK(msg.src == parent_);
        final_count_ = msg.field[0];
        for (net::NodeId c : children_) ctx.send(c, kFinal, {final_count_, 0, 0});
        ctx.halt();
        return;
      }
      // Late COUNT updates cannot occur: phase B stabilized. Anything else
      // is a protocol error.
      DFLP_CHECK_MSG(msg.kind == kCount,
                     "unexpected opcode in phase C");
      DFLP_CHECK_MSG(false, "COUNT after phase B stabilization");
    }
  }

 private:
  void broadcast_gossip(net::NodeContext& ctx) {
    ctx.broadcast(kGossip, {root_, pack_codes(min_pos_code_, max_code_),
                            static_cast<std::int64_t>(max_deg_)});
  }

  std::uint64_t phase_len_;
  std::int64_t count_self_;
  std::int64_t root_ = std::numeric_limits<std::int64_t>::max();
  net::NodeId parent_ = net::kNoNode;
  std::int64_t min_pos_code_ = 0;
  std::int64_t max_code_ = 0;
  int max_deg_ = 0;
  std::vector<net::NodeId> children_;
  std::vector<std::int64_t> child_count_;
  std::int64_t subtree_count_ = 0;
  std::int64_t subtree_count_reported_ = -1;
  std::int64_t final_count_ = 0;
};

}  // namespace

DiscoveryOutcome discover_bounds(const fl::Instance& inst,
                                 std::uint64_t seed, int diameter_bound,
                                 int num_threads,
                                 net::DeliveryOrder delivery) {
  const auto total_nodes =
      static_cast<std::size_t>(inst.num_facilities() + inst.num_clients());
  const int phase_len = diameter_bound > 0
                            ? diameter_bound
                            : static_cast<int>(total_nodes);

  net::Network::Options options;
  // Gossip packs two 12-bit exponent codes plus a node id and a degree:
  // comfortably O(log N) but above the tightest default budget on tiny
  // networks, so size it explicitly.
  options.bit_budget = net::congest_bit_budget(total_nodes) + 32;
  options.seed = seed;
  options.num_threads = num_threads;
  options.delivery = delivery;
  net::Network net = make_bipartite_network(inst, options);

  for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i) {
    std::vector<double> own{inst.opening_cost(i)};
    for (const fl::FacilityEdge& e : inst.facility_edges(i))
      own.push_back(e.cost);
    net.set_process(facility_node(i),
                    std::make_unique<AggProc>(true, std::move(own),
                                              phase_len));
  }
  for (fl::ClientId j = 0; j < inst.num_clients(); ++j) {
    net.set_process(client_node(inst, j),
                    std::make_unique<AggProc>(false, std::vector<double>{},
                                              phase_len));
  }

  DiscoveryOutcome outcome;
  outcome.metrics =
      net.run(3ULL * static_cast<std::uint64_t>(phase_len) + 8);
  outcome.bounds.reserve(total_nodes);
  for (std::size_t v = 0; v < total_nodes; ++v) {
    outcome.bounds.push_back(
        static_cast<const AggProc&>(net.process(static_cast<net::NodeId>(v)))
            .bounds());
  }
  return outcome;
}

}  // namespace dflp::core
