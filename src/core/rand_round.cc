#include "core/rand_round.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "core/bipartite.h"
#include "core/transport.h"

namespace dflp::core {

namespace {

constexpr std::uint8_t kOpen = 20;
constexpr std::uint8_t kOpenReq = 21;
constexpr std::uint8_t kGrant = 22;

struct Shared {
  const MwSchedule* sched = nullptr;
  double boost = 1.0;
  std::uint64_t scheduled_rounds = 0;  // 2 * rounding_phases
};

class FacilityProc final : public net::Process {
 public:
  FacilityProc(const Shared* shared, double y) : shared_(shared), y_(y) {}

  [[nodiscard]] bool opened() const noexcept { return open_; }

  void on_round(net::NodeContext& ctx,
                std::span<const net::Message> inbox) override {
    const std::uint64_t r = ctx.round();
    if (r < shared_->scheduled_rounds) {
      if (r % 2 == 0 && !open_) {
        const double p = std::min(1.0, y_ * shared_->boost);
        if (p > 0.0 && ctx.rng().bernoulli(p)) {
          ctx.annotate("flip-open");
          open_ = true;
          ctx.broadcast(kOpen);
        }
      }
      return;
    }
    const std::uint64_t base = shared_->scheduled_rounds;
    if (r >= base + 1) {
      bool served = false;
      for (const net::Message& msg : inbox) {
        if (msg.kind == kOpenReq) {
          open_ = true;
          ctx.send(msg.src, kGrant);
          served = true;
        }
      }
      if (served) ctx.annotate("fallback-grant");
      ctx.halt();
    }
  }

 private:
  const Shared* shared_;
  double y_;
  bool open_ = false;
};

class ClientProc final : public net::Process {
 public:
  /// `edges` in cost order; `x` parallel fractional support.
  ClientProc(const Shared* shared, std::vector<LocalEdge> edges,
             std::vector<double> x)
      : shared_(shared), edges_(std::move(edges)), x_(std::move(x)),
        open_known_(edges_.size(), 0) {
    DFLP_CHECK(x_.size() == edges_.size());
    by_peer_.reserve(edges_.size());
    for (std::size_t t = 0; t < edges_.size(); ++t)
      by_peer_.push_back({edges_[t].peer, t});
    std::sort(by_peer_.begin(), by_peer_.end());
  }

  [[nodiscard]] bool covered() const noexcept { return covered_; }
  [[nodiscard]] net::NodeId assigned_facility_node() const noexcept {
    return assigned_;
  }
  [[nodiscard]] bool used_fallback() const noexcept { return fallback_; }

  void on_round(net::NodeContext& ctx,
                std::span<const net::Message> inbox) override {
    const std::uint64_t r = ctx.round();
    for (const net::Message& msg : inbox) {
      if (msg.kind == kOpen) {
        const auto it = std::lower_bound(
            by_peer_.begin(), by_peer_.end(),
            std::pair<net::NodeId, std::size_t>{msg.src, 0});
        DFLP_CHECK(it != by_peer_.end() && it->first == msg.src);
        open_known_[it->second] = 1;
      }
    }

    if (r < shared_->scheduled_rounds) {
      if (r % 2 == 1 && !covered_) try_connect(ctx);
      return;
    }

    const std::uint64_t base = shared_->scheduled_rounds;
    if (r == base) {
      if (!covered_) try_connect(ctx);  // late announcements from phase P-1
      if (covered_) {
        ctx.halt();
        return;
      }
      // Fallback: cheapest facility with positive fractional support
      // (edges are cost-sorted); the fractional solution is feasible, so
      // one exists.
      pending_ = net::kNoNode;
      for (std::size_t t = 0; t < edges_.size(); ++t) {
        if (x_[t] > 0.0) {
          pending_ = edges_[t].peer;
          break;
        }
      }
      if (pending_ == net::kNoNode) pending_ = edges_.front().peer;
      ctx.annotate("fallback");
      ctx.send(pending_, kOpenReq);
      fallback_ = true;
      return;
    }
    if (r == base + 1) return;  // request in flight
    for (const net::Message& msg : inbox) {
      if (msg.kind == kGrant && msg.src == pending_) {
        covered_ = true;
        assigned_ = msg.src;
      }
    }
    DFLP_CHECK_MSG(covered_, "rounding fallback grant missing at node "
                                 << ctx.self());
    ctx.halt();
  }

 private:
  void try_connect(net::NodeContext& ctx) {
    for (std::size_t t = 0; t < edges_.size(); ++t) {  // cost order
      if (open_known_[t]) {
        ctx.annotate("connect");
        covered_ = true;
        assigned_ = edges_[t].peer;
        return;
      }
    }
  }

  const Shared* shared_;
  std::vector<LocalEdge> edges_;
  std::vector<double> x_;
  std::vector<std::uint8_t> open_known_;
  std::vector<std::pair<net::NodeId, std::size_t>> by_peer_;
  bool covered_ = false;
  bool fallback_ = false;
  net::NodeId assigned_ = net::kNoNode;
  net::NodeId pending_ = net::kNoNode;
};

}  // namespace

RoundOutcome run_rand_round(const fl::Instance& inst,
                            const fl::FractionalSolution& fractional,
                            const MwSchedule& schedule,
                            const MwParams& params) {
  {
    std::string why;
    DFLP_CHECK_MSG(fractional.is_feasible(inst, 1e-6, &why),
                   "rounding requires a feasible fractional input: " << why);
  }
  Shared shared;
  shared.sched = &schedule;
  shared.boost = params.rounding_boost;
  shared.scheduled_rounds =
      2ULL * static_cast<std::uint64_t>(schedule.rounding_phases);

  const std::uint64_t logical_bound = shared.scheduled_rounds + 8;

  net::Network::Options options;
  options.bit_budget = schedule.bit_budget;
  options.seed = params.seed ^ 0x5EEDB00572ULL;  // decorrelate from stage 1
  options.num_threads = params.num_threads;
  options.delivery = params.delivery;
  apply_transport_options(options, params, logical_bound);
  if (params.tracer != nullptr) params.tracer->set_section("rand-round");
  net::Network net = make_bipartite_network(inst, options);

  for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i) {
    net.set_process(facility_node(i),
                    maybe_reliable(std::make_unique<FacilityProc>(
                                       &shared,
                                       fractional.y[static_cast<std::size_t>(i)]),
                                   params, schedule.bit_budget));
  }
  for (fl::ClientId j = 0; j < inst.num_clients(); ++j) {
    const std::size_t base = inst.client_edge_offset(j);
    const std::size_t deg = inst.client_edges(j).size();
    std::vector<double> x(fractional.x.begin() + static_cast<std::ptrdiff_t>(base),
                          fractional.x.begin() +
                              static_cast<std::ptrdiff_t>(base + deg));
    net.set_process(client_node(inst, j),
                    maybe_reliable(std::make_unique<ClientProc>(
                                       &shared, client_local_edges(inst, j),
                                       std::move(x)),
                                   params, schedule.bit_budget));
  }

  return with_fault_context(net, [&] {
    RoundOutcome outcome(inst);
    outcome.metrics = net.run(transport_max_rounds(params, logical_bound));

    for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i) {
      const auto& proc =
          transport_inner<FacilityProc>(net, params, facility_node(i));
      if (proc.opened()) outcome.solution.open(i);
    }
    for (fl::ClientId j = 0; j < inst.num_clients(); ++j) {
      const auto& proc =
          transport_inner<ClientProc>(net, params, client_node(inst, j));
      DFLP_CHECK(proc.covered());
      outcome.solution.assign(j,
                              node_to_facility(proc.assigned_facility_node()));
      if (proc.used_fallback()) ++outcome.fallback_clients;
    }
    outcome.transport = collect_transport_stats(net, params);
    std::string why;
    DFLP_CHECK_MSG(outcome.solution.is_feasible(inst, &why),
                   "rounded solution must be feasible: " << why);
    return outcome;
  });
}

}  // namespace dflp::core
