// Shared plumbing between the distributed algorithms: mapping a UFL
// instance onto a simulated CONGEST network and giving each node its
// strictly-local view of the instance.
//
// Node layout: facility i -> network node i; client j -> network node m+j.
// A node's constructor receives only what the model lets it know locally:
// its own cost data and the ids/costs of its incident edges.
#pragma once

#include <algorithm>
#include <vector>

#include "fl/instance.h"
#include "netsim/network.h"

namespace dflp::core {

/// One incident edge from a node's local perspective.
struct LocalEdge {
  net::NodeId peer = net::kNoNode;  ///< network node id of the other side
  double cost = 0.0;                ///< connection cost of this edge
};

[[nodiscard]] inline net::NodeId facility_node(fl::FacilityId i) noexcept {
  return i;
}

[[nodiscard]] inline net::NodeId client_node(const fl::Instance& inst,
                                             fl::ClientId j) noexcept {
  return inst.num_facilities() + j;
}

[[nodiscard]] inline fl::FacilityId node_to_facility(net::NodeId v) noexcept {
  return v;
}

[[nodiscard]] inline fl::ClientId node_to_client(const fl::Instance& inst,
                                                 net::NodeId v) noexcept {
  return v - inst.num_facilities();
}

/// Facility i's incident edges, ascending by (cost, peer). The order is the
/// star-prefix order the greedy candidacy computation uses.
[[nodiscard]] inline std::vector<LocalEdge> facility_local_edges(
    const fl::Instance& inst, fl::FacilityId i) {
  std::vector<LocalEdge> edges;
  const auto span = inst.facility_edges(i);
  edges.reserve(span.size());
  for (const fl::FacilityEdge& e : span)
    edges.push_back({client_node(inst, e.client), e.cost});
  // facility_edges is sorted by (cost, client id) == (cost, peer) already.
  return edges;
}

/// Client j's incident edges, ascending by (cost, peer).
[[nodiscard]] inline std::vector<LocalEdge> client_local_edges(
    const fl::Instance& inst, fl::ClientId j) {
  std::vector<LocalEdge> edges;
  const auto span = inst.client_edges(j);
  edges.reserve(span.size());
  for (const fl::ClientEdge& e : span)
    edges.push_back({facility_node(e.facility), e.cost});
  return edges;
}

/// Builds the (finalized, process-less) bipartite communication network of
/// `inst` with the given options.
[[nodiscard]] inline net::Network make_bipartite_network(
    const fl::Instance& inst, net::Network::Options options) {
  const auto total = static_cast<std::size_t>(inst.num_facilities() +
                                              inst.num_clients());
  net::Network net(total, options);
  for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i) {
    for (const fl::FacilityEdge& e : inst.facility_edges(i))
      net.add_edge(facility_node(i), client_node(inst, e.client));
  }
  net.finalize();
  return net;
}

}  // namespace dflp::core
