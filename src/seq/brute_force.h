// Exhaustive optimum for small instances: enumerates all facility subsets.
// This is the ground truth the property tests measure every algorithm
// against (and certify LP optimum <= OPT against).
#pragma once

#include <optional>

#include "fl/instance.h"
#include "fl/solution.h"

namespace dflp::seq {

struct BruteForceResult {
  fl::IntegralSolution solution;
  double optimum = 0.0;
};

/// Exact optimum via subset enumeration. Refuses instances with more than
/// `max_facilities` facilities (2^m blowup); returns nullopt then.
[[nodiscard]] std::optional<BruteForceResult> brute_force_solve(
    const fl::Instance& inst, int max_facilities = 20);

}  // namespace dflp::seq
