#include "seq/mettu_plaxton.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace dflp::seq {

double mp_radius(const fl::Instance& inst, fl::FacilityId i) {
  // facility_edges sorted ascending by cost; sweep r across the
  // breakpoints. With t clients inside radius r the paid mass is
  // t*r - prefix_cost(t); solve for the r where it reaches f_i.
  const auto edges = inst.facility_edges(i);
  const double f = inst.opening_cost(i);
  if (f <= 0.0) return edges.empty() ? 0.0 : edges.front().cost;
  DFLP_CHECK_MSG(!edges.empty(),
                 "facility " << i << " has no clients; radius undefined");
  double prefix = 0.0;
  for (std::size_t t = 1; t <= edges.size(); ++t) {
    prefix += edges[t - 1].cost;
    const double next_break = t < edges.size()
                                  ? edges[t].cost
                                  : std::numeric_limits<double>::infinity();
    // With exactly t paying clients, r solves t*r - prefix = f.
    const double r = (f + prefix) / static_cast<double>(t);
    if (r >= edges[t - 1].cost && r <= next_break) return r;
  }
  // Numerically unreachable: the last bracket extends to infinity.
  return (f + prefix) / static_cast<double>(edges.size());
}

namespace {

/// Bipartite-induced facility distance: min over shared clients of
/// (c_ij + c_i'j); +inf when they share no client.
double induced_distance(const fl::Instance& inst, fl::FacilityId a,
                        fl::FacilityId b) {
  // Walk the smaller edge list and probe the other side via the client's
  // (cost-sorted, short) list.
  const auto ea = inst.facility_edges(a);
  double best = std::numeric_limits<double>::infinity();
  for (const fl::FacilityEdge& e : ea) {
    const double cb = inst.connection_cost(b, e.client);
    if (std::isfinite(cb)) best = std::min(best, e.cost + cb);
  }
  return best;
}

}  // namespace

MpResult mettu_plaxton_solve(const fl::Instance& inst) {
  const std::int32_t m = inst.num_facilities();

  MpResult result{fl::IntegralSolution(inst), {}};
  result.radius.resize(static_cast<std::size_t>(m));
  for (fl::FacilityId i = 0; i < m; ++i)
    result.radius[static_cast<std::size_t>(i)] = mp_radius(inst, i);

  std::vector<fl::FacilityId> order(static_cast<std::size_t>(m));
  for (fl::FacilityId i = 0; i < m; ++i)
    order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(),
            [&](fl::FacilityId a, fl::FacilityId b) {
              const double ra = result.radius[static_cast<std::size_t>(a)];
              const double rb = result.radius[static_cast<std::size_t>(b)];
              if (ra != rb) return ra < rb;
              return a < b;
            });

  std::vector<fl::FacilityId> opened;
  for (fl::FacilityId i : order) {
    const double ri = result.radius[static_cast<std::size_t>(i)];
    bool blocked = false;
    for (fl::FacilityId o : opened) {
      if (induced_distance(inst, i, o) <= 2.0 * ri) {
        blocked = true;
        break;
      }
    }
    if (!blocked) {
      result.solution.open(i);
      opened.push_back(i);
    }
  }

  // Feasibility on sparse instances: a client may be adjacent to no open
  // facility; open its cheapest neighbour then.
  for (fl::ClientId j = 0; j < inst.num_clients(); ++j) {
    bool reachable = false;
    for (const fl::ClientEdge& e : inst.client_edges(j)) {
      if (result.solution.is_open(e.facility)) {
        reachable = true;
        break;
      }
    }
    if (!reachable) result.solution.open(inst.client_edges(j).front().facility);
  }

  result.solution.assign_greedily(inst);
  result.solution.prune_unused(inst);
  return result;
}

}  // namespace dflp::seq
