// Local search for UFL (Arya et al., STOC 2001 style): add / drop / swap
// moves until no move improves the cost by more than a polynomial-time
// threshold. On metric instances the locality gap of this neighbourhood is
// 3 (so the algorithm is a (3+eps)-approximation); on arbitrary instances
// it is a strong heuristic with guaranteed feasibility. Reconstructed as a
// centralized baseline for the E6 comparison.
#pragma once

#include "fl/instance.h"
#include "fl/solution.h"

namespace dflp::seq {

struct LocalSearchResult {
  fl::IntegralSolution solution;
  int moves_applied = 0;
  int iterations = 0;  ///< improvement scans (each O(m * E))
};

struct LocalSearchOptions {
  /// A move must improve cost by more than eps * cost / m to be applied —
  /// the standard polynomial-time guard. 0 accepts any improvement.
  double eps = 1e-4;
  /// Hard cap on applied moves (safety net; never hit in practice).
  int max_moves = 100000;
};

[[nodiscard]] LocalSearchResult local_search_solve(
    const fl::Instance& inst, const LocalSearchOptions& options = {});

}  // namespace dflp::seq
