// Jain–Mahdian–Saberi greedy (STOC 2002): the "greedy with rebates"
// 1.861-approximation for metric UFL. Reconstructed centralized baseline.
//
// Like plain greedy, but already-connected clients may offer a rebate equal
// to the savings of switching to the candidate facility, which both lowers
// the candidate's effective cost and lets the algorithm improve earlier
// decisions. On non-metric instances the constant-factor guarantee does not
// apply, but the algorithm remains well-defined and feasible.
#pragma once

#include "fl/instance.h"
#include "fl/solution.h"

namespace dflp::seq {

struct JmsResult {
  fl::IntegralSolution solution;
  int iterations = 0;
};

[[nodiscard]] JmsResult jms_solve(const fl::Instance& inst);

}  // namespace dflp::seq
