// Jain–Vazirani primal–dual algorithm (JV, JACM 2001): 3-approximation for
// *metric* UFL. Reconstructed centralized baseline for the metric instance
// families (the PODC'05 paper positions itself against LP-based centralized
// algorithms; JV is the canonical one).
//
// Phase 1 (dual growth) is exactly the dual ascent in lp/dual_ascent.h; this
// module consumes its tight-times/witnesses and runs phase 2 (conflict
// resolution among temporarily-open facilities) plus assignment.
//
// On non-metric or non-complete bipartite instances the 3-approximation
// guarantee does not apply; the implementation still always returns a
// feasible solution (falling back to a client's cheapest open-or-opened
// neighbour where the metric argument would have routed through a
// non-adjacent facility).
#pragma once

#include "fl/instance.h"
#include "fl/solution.h"

namespace dflp::seq {

struct JvResult {
  fl::IntegralSolution solution;
  /// Value of the phase-1 dual: a valid lower bound on OPT.
  double dual_lower_bound = 0.0;
  int temporarily_open = 0;
};

[[nodiscard]] JvResult jain_vazirani_solve(const fl::Instance& inst);

}  // namespace dflp::seq
