// Trivial baselines: sanity anchors for the benches (any real algorithm
// should beat these, and tests pin that down).
#pragma once

#include "fl/instance.h"
#include "fl/solution.h"

namespace dflp::seq {

/// Opens every facility; each client connects to its cheapest neighbour.
[[nodiscard]] fl::IntegralSolution open_all_solve(const fl::Instance& inst);

/// Opens exactly the union of every client's single cheapest facility
/// (the "nearest facility" heuristic).
[[nodiscard]] fl::IntegralSolution nearest_facility_solve(
    const fl::Instance& inst);

}  // namespace dflp::seq
