#include "seq/brute_force.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace dflp::seq {

std::optional<BruteForceResult> brute_force_solve(const fl::Instance& inst,
                                                  int max_facilities) {
  const std::int32_t m = inst.num_facilities();
  const std::int32_t n = inst.num_clients();
  if (m > max_facilities) return std::nullopt;
  DFLP_CHECK_MSG(m <= 30, "subset enumeration over " << m
                                                     << " facilities would "
                                                        "overflow the mask");

  double opening_sum[31];
  for (fl::FacilityId i = 0; i < m; ++i)
    opening_sum[i] = inst.opening_cost(i);

  double best_cost = std::numeric_limits<double>::infinity();
  std::uint32_t best_mask = 0;

  const std::uint32_t limit = 1u << m;
  for (std::uint32_t mask = 1; mask < limit; ++mask) {
    double cost = 0.0;
    for (fl::FacilityId i = 0; i < m; ++i)
      if (mask & (1u << i)) cost += opening_sum[i];
    if (cost >= best_cost) continue;  // opening alone already worse
    bool feasible = true;
    for (fl::ClientId j = 0; j < n && feasible; ++j) {
      double cheapest = std::numeric_limits<double>::infinity();
      for (const fl::ClientEdge& e : inst.client_edges(j)) {
        if (mask & (1u << e.facility)) {
          cheapest = e.cost;  // client edges are cost-sorted: first hit wins
          break;
        }
      }
      if (!std::isfinite(cheapest)) {
        feasible = false;
      } else {
        cost += cheapest;
        if (cost >= best_cost) feasible = false;  // prune
      }
    }
    if (feasible && cost < best_cost) {
      best_cost = cost;
      best_mask = mask;
    }
  }

  DFLP_CHECK_MSG(std::isfinite(best_cost),
                 "no feasible subset — instance guarantees coverage, so the "
                 "all-facilities subset must be feasible");

  BruteForceResult result{fl::IntegralSolution(inst), best_cost};
  for (fl::FacilityId i = 0; i < m; ++i)
    if (best_mask & (1u << i)) result.solution.open(i);
  result.solution.assign_greedily(inst);
  result.solution.prune_unused(inst);
  return result;
}

}  // namespace dflp::seq
