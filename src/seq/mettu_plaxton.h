// Mettu–Plaxton (2000): combinatorial 3-approximation for metric UFL.
// Reconstructed centralized baseline.
//
// Each facility gets a radius r_i solving
//     sum_j max(0, r_i - c_ij) = f_i
// (the smallest radius at which the surrounding clients could collectively
// pay the opening cost). Facilities are processed in nondecreasing r_i and
// opened when no already-open facility lies within bipartite-induced
// distance 2*r_i. Clients connect to the nearest open facility.
//
// Facility-to-facility distances are induced through shared clients:
// d(i, i') = min_j (c_ij + c_i'j), the tightest metric-consistent bound
// available in a bipartite instance. On complete-bipartite metric instances
// this matches the underlying metric's behaviour up to the usual factor.
#pragma once

#include "fl/instance.h"
#include "fl/solution.h"

namespace dflp::seq {

struct MpResult {
  fl::IntegralSolution solution;
  std::vector<double> radius;  ///< per facility
};

[[nodiscard]] MpResult mettu_plaxton_solve(const fl::Instance& inst);

/// The MP radius of one facility (exposed for tests).
[[nodiscard]] double mp_radius(const fl::Instance& inst, fl::FacilityId i);

}  // namespace dflp::seq
