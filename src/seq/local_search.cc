#include "seq/local_search.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "seq/trivial.h"

namespace dflp::seq {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Mutable search state: the open set plus, per client, its cheapest and
/// second-cheapest *open* facilities (the second is what a drop move falls
/// back to).
struct State {
  const fl::Instance* inst;
  std::vector<std::uint8_t> open;
  std::vector<fl::FacilityId> best;
  std::vector<double> best_cost;
  std::vector<fl::FacilityId> second;
  std::vector<double> second_cost;

  explicit State(const fl::Instance& instance)
      : inst(&instance),
        open(static_cast<std::size_t>(instance.num_facilities()), 0),
        best(static_cast<std::size_t>(instance.num_clients()),
             fl::kNoFacility),
        best_cost(static_cast<std::size_t>(instance.num_clients()), kInf),
        second(static_cast<std::size_t>(instance.num_clients()),
               fl::kNoFacility),
        second_cost(static_cast<std::size_t>(instance.num_clients()), kInf) {}

  /// Recomputes best/second for every client: O(E).
  void refresh() {
    for (fl::ClientId j = 0; j < inst->num_clients(); ++j) {
      best[static_cast<std::size_t>(j)] = fl::kNoFacility;
      best_cost[static_cast<std::size_t>(j)] = kInf;
      second[static_cast<std::size_t>(j)] = fl::kNoFacility;
      second_cost[static_cast<std::size_t>(j)] = kInf;
      for (const fl::ClientEdge& e : inst->client_edges(j)) {  // cost order
        if (!open[static_cast<std::size_t>(e.facility)]) continue;
        if (e.cost < best_cost[static_cast<std::size_t>(j)]) {
          second[static_cast<std::size_t>(j)] =
              best[static_cast<std::size_t>(j)];
          second_cost[static_cast<std::size_t>(j)] =
              best_cost[static_cast<std::size_t>(j)];
          best[static_cast<std::size_t>(j)] = e.facility;
          best_cost[static_cast<std::size_t>(j)] = e.cost;
        } else if (e.cost < second_cost[static_cast<std::size_t>(j)]) {
          second[static_cast<std::size_t>(j)] = e.facility;
          second_cost[static_cast<std::size_t>(j)] = e.cost;
        }
      }
    }
  }

  [[nodiscard]] double total_cost() const {
    double cost = 0.0;
    for (fl::FacilityId i = 0; i < inst->num_facilities(); ++i)
      if (open[static_cast<std::size_t>(i)]) cost += inst->opening_cost(i);
    for (fl::ClientId j = 0; j < inst->num_clients(); ++j) {
      DFLP_CHECK(best[static_cast<std::size_t>(j)] != fl::kNoFacility);
      cost += best_cost[static_cast<std::size_t>(j)];
    }
    return cost;
  }

  /// Gain (cost decrease) of opening closed facility `i`.
  [[nodiscard]] double add_gain(fl::FacilityId i) const {
    double gain = -inst->opening_cost(i);
    for (const fl::FacilityEdge& e : inst->facility_edges(i)) {
      const double cur = best_cost[static_cast<std::size_t>(e.client)];
      if (e.cost < cur) gain += cur - e.cost;
    }
    return gain;
  }

  /// Gain of closing open facility `i`. Requires every client of `i` to
  /// have a fallback (second-best open); returns -inf otherwise.
  [[nodiscard]] double drop_gain(fl::FacilityId i) const {
    double gain = inst->opening_cost(i);
    for (const fl::FacilityEdge& e : inst->facility_edges(i)) {
      const auto j = static_cast<std::size_t>(e.client);
      if (best[j] != i) continue;
      if (second[j] == fl::kNoFacility) return -kInf;  // would orphan j
      gain -= second_cost[j] - best_cost[j];
    }
    return gain;
  }

  /// Gain of swapping in closed `in` and dropping open `out`, computed by
  /// a virtual reassignment pass over affected clients: O(E_in + E_out).
  [[nodiscard]] double swap_gain(fl::FacilityId in, fl::FacilityId out) const {
    double gain = inst->opening_cost(out) - inst->opening_cost(in);
    // Clients that may change: neighbours of `in` (can improve) and clients
    // assigned to `out` (must move). Handle overlap once via the union scan
    // of both edge lists.
    // New cost for client j = min(c_in(j) if adjacent, best excluding out,
    //                             second excluding out...).
    auto cost_after = [&](fl::ClientId j, double c_in) {
      const auto idx = static_cast<std::size_t>(j);
      double base;
      if (best[idx] == out) {
        base = second[idx] == fl::kNoFacility ? kInf : second_cost[idx];
        if (second[idx] == in) base = kInf;  // `in` handled via c_in
      } else {
        base = best_cost[idx];
      }
      return std::min(base, c_in);
    };
    std::vector<std::pair<fl::ClientId, double>> touched;
    for (const fl::FacilityEdge& e : inst->facility_edges(in))
      touched.emplace_back(e.client, e.cost);
    for (const fl::FacilityEdge& e : inst->facility_edges(out)) {
      if (best[static_cast<std::size_t>(e.client)] == out &&
          !std::isfinite(inst->connection_cost(in, e.client)))
        touched.emplace_back(e.client, kInf);
    }
    std::sort(touched.begin(), touched.end());
    fl::ClientId prev = -1;
    for (const auto& [j, c_in] : touched) {
      if (j == prev) continue;  // dedupe: the `in` edge entry comes first
      prev = j;
      const double after = cost_after(j, c_in);
      if (!std::isfinite(after)) return -kInf;  // would orphan j
      gain += best_cost[static_cast<std::size_t>(j)] - after;
    }
    return gain;
  }

  void apply_open(fl::FacilityId i) {
    open[static_cast<std::size_t>(i)] = 1;
    refresh();
  }
  void apply_close(fl::FacilityId i) {
    open[static_cast<std::size_t>(i)] = 0;
    refresh();
  }
};

}  // namespace

LocalSearchResult local_search_solve(const fl::Instance& inst,
                                     const LocalSearchOptions& options) {
  DFLP_CHECK(options.eps >= 0.0);

  State state(inst);
  // Feasible start: the nearest-facility heuristic's open set.
  {
    const fl::IntegralSolution start = nearest_facility_solve(inst);
    for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i)
      if (start.is_open(i)) state.open[static_cast<std::size_t>(i)] = 1;
    state.refresh();
  }

  LocalSearchResult result{fl::IntegralSolution(inst), 0, 0};
  double cost = state.total_cost();

  while (result.moves_applied < options.max_moves) {
    ++result.iterations;
    const double threshold =
        options.eps * cost /
        std::max(1, inst.num_facilities());

    // Best single move across the neighbourhood.
    double best_gain = threshold;
    int best_kind = -1;  // 0 add, 1 drop, 2 swap
    fl::FacilityId best_in = fl::kNoFacility;
    fl::FacilityId best_out = fl::kNoFacility;

    for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i) {
      const bool is_open = state.open[static_cast<std::size_t>(i)] != 0;
      if (!is_open) {
        const double g = state.add_gain(i);
        if (g > best_gain) {
          best_gain = g;
          best_kind = 0;
          best_in = i;
        }
      } else {
        const double g = state.drop_gain(i);
        if (g > best_gain) {
          best_gain = g;
          best_kind = 1;
          best_out = i;
        }
      }
    }
    // Swaps: for each closed `in`, try each open `out` (m^2 pairs, each
    // O(deg)); acceptable at baseline scale.
    for (fl::FacilityId in = 0; in < inst.num_facilities(); ++in) {
      if (state.open[static_cast<std::size_t>(in)]) continue;
      for (fl::FacilityId out = 0; out < inst.num_facilities(); ++out) {
        if (!state.open[static_cast<std::size_t>(out)]) continue;
        const double g = state.swap_gain(in, out);
        if (g > best_gain) {
          best_gain = g;
          best_kind = 2;
          best_in = in;
          best_out = out;
        }
      }
    }

    if (best_kind < 0) break;  // local optimum
    ++result.moves_applied;
    if (best_kind == 0) {
      state.apply_open(best_in);
    } else if (best_kind == 1) {
      state.apply_close(best_out);
    } else {
      state.open[static_cast<std::size_t>(best_in)] = 1;
      state.open[static_cast<std::size_t>(best_out)] = 0;
      state.refresh();
    }
    const double new_cost = state.total_cost();
    DFLP_CHECK_MSG(new_cost < cost + 1e-9,
                   "local-search move must not increase cost");
    cost = new_cost;
  }

  for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i)
    if (state.open[static_cast<std::size_t>(i)]) result.solution.open(i);
  result.solution.assign_greedily(inst);
  result.solution.prune_unused(inst);
  return result;
}

}  // namespace dflp::seq
