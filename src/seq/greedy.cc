#include "seq/greedy.h"

#include <cmath>
#include <limits>
#include <queue>

#include "common/check.h"

namespace dflp::seq {

double best_star_ratio(const fl::Instance& inst, fl::FacilityId i,
                       const std::vector<std::uint8_t>& covered,
                       bool already_open, int* star_size) {
  // facility_edges are sorted by ascending cost, so the best star is a
  // prefix of the uncovered neighbours.
  double num = already_open ? 0.0 : inst.opening_cost(i);
  double best = std::numeric_limits<double>::infinity();
  int best_size = 0;
  int size = 0;
  for (const fl::FacilityEdge& e : inst.facility_edges(i)) {
    if (covered[static_cast<std::size_t>(e.client)]) continue;
    num += e.cost;
    ++size;
    const double ratio = num / static_cast<double>(size);
    if (ratio < best) {
      best = ratio;
      best_size = size;
    }
  }
  if (star_size != nullptr) *star_size = best_size;
  return best;
}

GreedyResult greedy_solve(const fl::Instance& inst) {
  const std::int32_t m = inst.num_facilities();
  const std::int32_t n = inst.num_clients();

  GreedyResult result{fl::IntegralSolution(inst), 0};
  std::vector<std::uint8_t> covered(static_cast<std::size_t>(n), 0);
  std::int32_t num_covered = 0;

  struct Entry {
    double ratio;
    fl::FacilityId facility;
    bool operator>(const Entry& other) const { return ratio > other.ratio; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (fl::FacilityId i = 0; i < m; ++i) {
    const double r = best_star_ratio(inst, i, covered, false);
    if (std::isfinite(r)) heap.push({r, i});
  }

  while (num_covered < n) {
    DFLP_CHECK_MSG(!heap.empty(),
                   "greedy ran out of candidate stars with clients "
                   "uncovered — instance should guarantee coverage");
    const Entry top = heap.top();
    heap.pop();
    const fl::FacilityId i = top.facility;
    // Lazy re-evaluation: coverage may have advanced since this entry was
    // pushed, which can only make the true ratio worse (larger) — except
    // that opening a facility elsewhere never affects i. Re-check and
    // reinsert unless still the best.
    int star = 0;
    const double fresh =
        best_star_ratio(inst, i, covered, result.solution.is_open(i), &star);
    if (!std::isfinite(fresh)) continue;  // no uncovered neighbours left
    if (!heap.empty() && fresh > heap.top().ratio + 1e-15) {
      heap.push({fresh, i});
      continue;
    }

    // Commit the star: open i (if needed) and cover its `star` cheapest
    // uncovered neighbours.
    ++result.iterations;
    result.solution.open(i);
    int taken = 0;
    for (const fl::FacilityEdge& e : inst.facility_edges(i)) {
      if (taken == star) break;
      if (covered[static_cast<std::size_t>(e.client)]) continue;
      covered[static_cast<std::size_t>(e.client)] = 1;
      result.solution.assign(e.client, i);
      ++num_covered;
      ++taken;
    }
    DFLP_CHECK(taken == star);
    // The facility is now open: its future stars are cheaper (no opening
    // cost), so refresh its entry immediately.
    const double next =
        best_star_ratio(inst, i, covered, /*already_open=*/true);
    if (std::isfinite(next)) heap.push({next, i});
  }

  // Clients may have later been absorbed into cheaper stars of other
  // facilities; reassign each to its cheapest open neighbour and drop any
  // facility this leaves unused.
  result.solution.assign_greedily(inst);
  result.solution.prune_unused(inst);
  return result;
}

}  // namespace dflp::seq
