#include "seq/jms.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"

namespace dflp::seq {

namespace {

/// Best JMS star of facility i: choose a prefix S of its *unconnected*
/// neighbours (cost-sorted) and collect rebates from all *connected*
/// neighbours j with current_cost(j) > c_ij. Effectiveness =
/// (f_i' + sum_S c_ij - rebates) / |S|; requires |S| >= 1.
double best_jms_star(const fl::Instance& inst, fl::FacilityId i,
                     const std::vector<double>& current_cost, bool open,
                     int* star_size) {
  double rebates = 0.0;
  for (const fl::FacilityEdge& e : inst.facility_edges(i)) {
    const double cur = current_cost[static_cast<std::size_t>(e.client)];
    if (std::isfinite(cur) && cur > e.cost) rebates += cur - e.cost;
  }
  double num = (open ? 0.0 : inst.opening_cost(i)) - rebates;
  double best = std::numeric_limits<double>::infinity();
  int best_size = 0;
  int size = 0;
  for (const fl::FacilityEdge& e : inst.facility_edges(i)) {
    if (std::isfinite(current_cost[static_cast<std::size_t>(e.client)]))
      continue;  // already connected: contributes via rebates only
    num += e.cost;
    ++size;
    const double ratio = num / static_cast<double>(size);
    if (ratio < best) {
      best = ratio;
      best_size = size;
    }
  }
  if (star_size != nullptr) *star_size = best_size;
  return best;
}

}  // namespace

JmsResult jms_solve(const fl::Instance& inst) {
  const std::int32_t m = inst.num_facilities();
  const std::int32_t n = inst.num_clients();

  JmsResult result{fl::IntegralSolution(inst), 0};
  // current connection cost per client; +inf = unconnected.
  std::vector<double> current(static_cast<std::size_t>(n),
                              std::numeric_limits<double>::infinity());
  std::int32_t connected = 0;

  while (connected < n) {
    // Rebates shift globally every iteration, so recompute effectiveness
    // for every facility each round (O(E) per iteration; the baseline is
    // run on moderate sizes).
    fl::FacilityId best_i = fl::kNoFacility;
    double best_ratio = std::numeric_limits<double>::infinity();
    int best_size = 0;
    for (fl::FacilityId i = 0; i < m; ++i) {
      int size = 0;
      const double r = best_jms_star(inst, i, current,
                                     result.solution.is_open(i), &size);
      if (r < best_ratio) {
        best_ratio = r;
        best_i = i;
        best_size = size;
      }
    }
    DFLP_CHECK_MSG(best_i != fl::kNoFacility,
                   "JMS found no candidate star with clients unconnected");
    ++result.iterations;
    result.solution.open(best_i);

    // Connect the chosen prefix of unconnected clients and apply every
    // profitable switch (the rebate payers).
    int taken = 0;
    for (const fl::FacilityEdge& e : inst.facility_edges(best_i)) {
      auto& cur = current[static_cast<std::size_t>(e.client)];
      if (std::isfinite(cur)) {
        if (cur > e.cost) {
          cur = e.cost;
          result.solution.assign(e.client, best_i);
        }
        continue;
      }
      if (taken < best_size) {
        cur = e.cost;
        result.solution.assign(e.client, best_i);
        ++connected;
        ++taken;
      }
    }
    DFLP_CHECK(taken == best_size);
  }

  result.solution.assign_greedily(inst);
  result.solution.prune_unused(inst);
  return result;
}

}  // namespace dflp::seq
