// Centralized greedy (Hochbaum 1982): the classic H_n-approximation for
// non-metric UFL and the algorithm whose behaviour the PODC'05 distributed
// scheme approaches as its locality parameter k grows. This is the primary
// centralized comparator in the benches.
#pragma once

#include "fl/instance.h"
#include "fl/solution.h"

namespace dflp::seq {

struct GreedyResult {
  fl::IntegralSolution solution;
  /// Number of star-selection iterations (each covers >= 1 client).
  int iterations = 0;
};

/// Repeatedly picks the star (facility + subset of still-uncovered
/// neighbours) with the best cost-effectiveness
///   (opening cost if not yet open + sum of connection costs) / |subset|
/// until every client is covered. Guarantees cost <= H_n * OPT.
/// Implementation uses a lazy priority queue over facilities, re-evaluating
/// a facility's best star only when it surfaces, so the common case is
/// O(E log E)-ish rather than O(n * E).
[[nodiscard]] GreedyResult greedy_solve(const fl::Instance& inst);

/// Cost-effectiveness of facility `i`'s best star against `covered`
/// (true = already covered); `already_open` discounts the opening cost.
/// Returns +inf when no uncovered neighbour exists. Exposed for tests and
/// for the distributed algorithm's reference semantics.
[[nodiscard]] double best_star_ratio(const fl::Instance& inst,
                                     fl::FacilityId i,
                                     const std::vector<std::uint8_t>& covered,
                                     bool already_open,
                                     int* star_size = nullptr);

}  // namespace dflp::seq
