#include "seq/trivial.h"

namespace dflp::seq {

fl::IntegralSolution open_all_solve(const fl::Instance& inst) {
  fl::IntegralSolution sol(inst);
  for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i) sol.open(i);
  sol.assign_greedily(inst);
  sol.prune_unused(inst);
  return sol;
}

fl::IntegralSolution nearest_facility_solve(const fl::Instance& inst) {
  fl::IntegralSolution sol(inst);
  for (fl::ClientId j = 0; j < inst.num_clients(); ++j)
    sol.open(inst.client_edges(j).front().facility);  // cost-sorted
  sol.assign_greedily(inst);
  sol.prune_unused(inst);
  return sol;
}

}  // namespace dflp::seq
