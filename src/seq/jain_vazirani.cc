#include "seq/jain_vazirani.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "lp/dual_ascent.h"

namespace dflp::seq {

JvResult jain_vazirani_solve(const fl::Instance& inst) {
  const std::int32_t m = inst.num_facilities();
  const std::int32_t n = inst.num_clients();

  const lp::DualAscentResult dual = lp::dual_ascent_bound(inst);

  // Temporarily-open facilities: those whose budget went tight, ordered by
  // tight time (the JV phase-2 processing order).
  std::vector<fl::FacilityId> temp_open;
  for (fl::FacilityId i = 0; i < m; ++i) {
    if (std::isfinite(dual.tight_time[static_cast<std::size_t>(i)]))
      temp_open.push_back(i);
  }
  std::sort(temp_open.begin(), temp_open.end(),
            [&](fl::FacilityId a, fl::FacilityId b) {
              const double ta = dual.tight_time[static_cast<std::size_t>(a)];
              const double tb = dual.tight_time[static_cast<std::size_t>(b)];
              if (ta != tb) return ta < tb;
              return a < b;
            });

  // A client "specially contributes" to facility i when alpha_j > c_ij and
  // i is temporarily open: these positive contributions define the conflict
  // graph (two temp-open facilities conflict when they share a contributing
  // client).
  std::vector<std::uint8_t> is_temp(static_cast<std::size_t>(m), 0);
  for (fl::FacilityId i : temp_open) is_temp[static_cast<std::size_t>(i)] = 1;

  constexpr double kTol = 1e-9;
  // Per-client list of temp-open facilities it contributes to (positive
  // beta); client degrees are small so flat vectors suffice.
  std::vector<std::vector<fl::FacilityId>> contributes(
      static_cast<std::size_t>(n));
  for (fl::ClientId j = 0; j < n; ++j) {
    const double aj = dual.alpha[static_cast<std::size_t>(j)];
    for (const fl::ClientEdge& e : inst.client_edges(j)) {
      if (is_temp[static_cast<std::size_t>(e.facility)] &&
          aj > e.cost + kTol) {
        contributes[static_cast<std::size_t>(j)].push_back(e.facility);
      }
    }
  }

  // Greedy maximal independent set in tight-time order. `blocker[i]` is the
  // already-open facility that excluded temp-open facility i.
  JvResult result{fl::IntegralSolution(inst), dual.lower_bound, 0};
  result.temporarily_open = static_cast<int>(temp_open.size());
  std::vector<fl::FacilityId> blocker(static_cast<std::size_t>(m),
                                      fl::kNoFacility);
  for (fl::FacilityId i : temp_open) {
    fl::FacilityId conflict = fl::kNoFacility;
    // Find a conflicting open facility via shared contributing clients.
    for (const fl::FacilityEdge& e : inst.facility_edges(i)) {
      for (fl::FacilityId other :
           contributes[static_cast<std::size_t>(e.client)]) {
        if (other != i && result.solution.is_open(other)) {
          // The shared client must actually contribute to *both*.
          const double aj = dual.alpha[static_cast<std::size_t>(e.client)];
          if (aj > e.cost + kTol) {
            conflict = other;
            break;
          }
        }
      }
      if (conflict != fl::kNoFacility) break;
    }
    if (conflict == fl::kNoFacility) {
      result.solution.open(i);
    } else {
      blocker[static_cast<std::size_t>(i)] = conflict;
    }
  }

  // Assignment. Directly-connected first (contributing to an open
  // facility), then indirectly via the witness's blocker, then the generic
  // fallback that keeps the solution feasible on sparse instances.
  for (fl::ClientId j = 0; j < n; ++j) {
    fl::FacilityId target = fl::kNoFacility;
    double target_cost = std::numeric_limits<double>::infinity();
    for (fl::FacilityId i : contributes[static_cast<std::size_t>(j)]) {
      if (result.solution.is_open(i)) {
        const double c = inst.connection_cost(i, j);
        if (c < target_cost) {
          target = i;
          target_cost = c;
        }
      }
    }
    if (target == fl::kNoFacility) {
      // Indirect connection: the witness was temp-open; if it lost to a
      // blocker adjacent to j, use the blocker (the metric 3-approx path).
      const fl::FacilityId w = dual.witness[static_cast<std::size_t>(j)];
      if (w != fl::kNoFacility) {
        fl::FacilityId via = result.solution.is_open(w)
                                 ? w
                                 : blocker[static_cast<std::size_t>(w)];
        if (via != fl::kNoFacility && result.solution.is_open(via) &&
            std::isfinite(inst.connection_cost(via, j))) {
          target = via;
        }
      }
    }
    if (target == fl::kNoFacility) {
      // Fallback: cheapest open adjacent facility, else open the client's
      // cheapest facility outright. Keeps feasibility on any instance.
      for (const fl::ClientEdge& e : inst.client_edges(j)) {
        if (result.solution.is_open(e.facility)) {
          target = e.facility;
          break;
        }
      }
      if (target == fl::kNoFacility) {
        target = inst.client_edges(j).front().facility;
        result.solution.open(target);
      }
    }
    result.solution.assign(j, target);
  }

  result.solution.assign_greedily(inst);  // tighten to cheapest open
  result.solution.prune_unused(inst);
  return result;
}

}  // namespace dflp::seq
