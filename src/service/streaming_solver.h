// Epoch-batched streaming solver service.
//
// A `StreamingSolver` owns the live `fl::InstanceSnapshot`, ingests typed
// updates into a pending `fl::DeltaLog`, and on `commit_epoch()` applies
// the batch (snapshot epoch + 1) and re-solves incrementally:
//
//   1. The schedule is *pinned*: derived once from the deployment's
//      declared capacity bounds (`core::derive_schedule_from_bounds`) and
//      handed to every runner via `MwParams::pinned_schedule`, so a solve
//      is a pure function of (sub-instance, seed, schedule).
//   2. Each epoch the snapshot is partitioned into connectivity
//      components; a component's *key* is its smallest member facility's
//      stable key, and its per-solve seed derives from that key alone.
//      Because apply() renumbers monotonically, an untouched component
//      reproduces the identical sub-instance epoch after epoch.
//   3. Components whose member-key fingerprint is unchanged and that no
//      delta of the epoch touched reuse their cached solution (including
//      the fractional stage's y state under the pipeline engine — the
//      warm-started fractional state); only dirty components re-run the
//      distributed solver.
//
// The from-scratch baseline is the same machinery with the cache disabled
// (`warm_start = false`), so warm and cold runs produce bit-identical
// solutions and costs on every epoch by construction — the property
// service_test pins down and bench_stream (E13) relies on.
//
// Every epoch yields an `EpochReport` with cost, rounds/messages of the
// solved components, and *recourse*: facility-set churn and the number of
// surviving clients whose assignment moved, both measured in stable-key
// space so epoch-to-epoch comparisons are well-defined.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/params.h"
#include "fl/delta.h"
#include "fl/solution.h"
#include "workload/stream.h"

namespace dflp::service {

/// Capacity bounds that dominate every snapshot a `workload::ClientStream`
/// with these params can reach within `max_events` emitted events: the
/// facility set is static, costs come from the generator's fixed ranges,
/// and the client population is bounded by initial + every possible
/// arrival. Deriving the pinned schedule from these keeps solves exact
/// across the whole stream.
[[nodiscard]] core::InstanceBounds stream_bounds(
    const workload::StreamParams& params, std::int64_t max_events);

/// Which distributed solver runs per component.
enum class SolveEngine : std::uint8_t {
  kMwGreedy,  ///< combinatorial greedy (paper's primary algorithm)
  kPipeline,  ///< fractional LP stage + randomized rounding
};
[[nodiscard]] std::string engine_name(SolveEngine engine);

struct StreamingOptions {
  /// Solver knobs; `seed` is the stream-level base seed (per-component
  /// seeds derive from it), `pinned_schedule` is managed by the service
  /// and must be left null. `mopup` must stay enabled: the service
  /// asserts feasibility of every epoch's solution.
  core::MwParams params;
  /// Declared capacity bounds; the pinned schedule is derived from these,
  /// and every epoch's snapshot must stay within them (checked loudly).
  core::InstanceBounds bounds;
  SolveEngine engine = SolveEngine::kMwGreedy;
  /// False = from-scratch baseline: every component re-solves each epoch.
  bool warm_start = true;
};

/// Facility-set churn and client reassignment between consecutive epochs,
/// in stable-key space.
struct Recourse {
  std::int64_t facilities_opened = 0;  ///< open now, not open last epoch
  std::int64_t facilities_closed = 0;  ///< open last epoch, not open now
  /// Clients present in both epochs whose assigned facility key changed.
  std::int64_t clients_reassigned = 0;
  std::int64_t clients_arrived = 0;
  std::int64_t clients_departed = 0;
};

struct EpochReport {
  fl::EpochId epoch = 0;
  std::size_t events = 0;  ///< deltas applied by this commit
  double cost = 0.0;
  /// Sum of component LP values (pipeline engine only; 0 under mw-greedy).
  double fractional_value = 0.0;
  /// Components run disjoint networks, so rounds is the max (depth) and
  /// messages the sum over components *solved this epoch*; an epoch that
  /// reused everything reports 0/0.
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::int64_t num_facilities = 0;
  std::int64_t num_clients = 0;
  std::int64_t components = 0;
  std::int64_t solved_components = 0;
  std::int64_t reused_components = 0;
  Recourse recourse;
  double apply_ms = 0.0;  ///< snapshot rebuild (delta-log apply)
  double solve_ms = 0.0;  ///< component partition + solves + assembly
  double total_ms = 0.0;
};

class StreamingSolver {
 public:
  /// Solves the initial snapshot immediately (its report is epoch 0 with
  /// zero events; see `last_report()`).
  StreamingSolver(fl::InstanceSnapshot initial, StreamingOptions options);

  /// Queues one update for the next epoch.
  void ingest(fl::Delta delta) { pending_.append(std::move(delta)); }
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return pending_.size();
  }

  /// Applies the pending batch as one epoch and re-solves. Valid with an
  /// empty batch (epoch still advances; everything reuses under warm
  /// start).
  EpochReport commit_epoch();

  [[nodiscard]] const fl::InstanceSnapshot& snapshot() const noexcept {
    return snapshot_;
  }
  /// Current solution, dense ids aligned to `snapshot()`.
  [[nodiscard]] const fl::IntegralSolution& solution() const noexcept {
    return solution_;
  }
  [[nodiscard]] const EpochReport& last_report() const noexcept {
    return last_report_;
  }
  [[nodiscard]] const core::MwSchedule& schedule() const noexcept {
    return schedule_;
  }
  [[nodiscard]] const StreamingOptions& options() const noexcept {
    return options_;
  }

 private:
  /// Cached per-component result, addressed by component key; everything
  /// inside is in stable-key space so it survives renumbering.
  struct ComponentEntry {
    std::uint64_t fingerprint = 0;
    std::vector<fl::NodeKey> open_facilities;
    std::vector<std::pair<fl::NodeKey, fl::NodeKey>> assignment;  // (c, f)
    /// Pipeline engine: the fractional stage's state (value + per-member
    /// facility y in ascending key order), carried across epochs.
    double fractional_value = 0.0;
    std::vector<double> frac_y;
    std::uint64_t rounds = 0;
    std::uint64_t messages = 0;
  };

  struct Component {
    fl::NodeKey key = fl::kNoKey;
    std::vector<fl::FacilityId> facilities;  // dense, ascending
    std::vector<fl::ClientId> clients;       // dense, ascending
  };

  EpochReport resolve(std::size_t events, double apply_ms,
                      const std::unordered_set<fl::NodeKey>& touched_f,
                      const std::unordered_set<fl::NodeKey>& touched_c);
  ComponentEntry solve_component(const Component& comp,
                                 std::uint64_t fingerprint) const;

  StreamingOptions options_;
  core::MwSchedule schedule_;
  fl::InstanceSnapshot snapshot_;
  fl::DeltaLog pending_;
  fl::IntegralSolution solution_;
  EpochReport last_report_;
  std::unordered_map<fl::NodeKey, ComponentEntry> cache_;
  // Previous epoch's key-space state, for recourse.
  std::vector<fl::NodeKey> prev_open_keys_;  // sorted
  std::unordered_map<fl::NodeKey, fl::NodeKey> prev_assignment_;
};

}  // namespace dflp::service
