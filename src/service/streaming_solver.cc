#include "service/streaming_solver.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "core/frac_lp.h"
#include "core/mw_greedy.h"
#include "core/rand_round.h"

namespace dflp::service {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Union-find with path halving + union by size; nodes are the bipartite
/// layout's dense ids (facility i -> i, client j -> m + j).
class Dsu {
 public:
  explicit Dsu(std::size_t size) : parent_(size), size_(size, 1) {
    for (std::size_t v = 0; v < size; ++v)
      parent_[v] = static_cast<std::int32_t>(v);
  }

  std::int32_t find(std::int32_t v) {
    while (parent_[static_cast<std::size_t>(v)] != v) {
      parent_[static_cast<std::size_t>(v)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(v)])];
      v = parent_[static_cast<std::size_t>(v)];
    }
    return v;
  }

  void merge(std::int32_t a, std::int32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[static_cast<std::size_t>(a)] <
        size_[static_cast<std::size_t>(b)])
      std::swap(a, b);
    parent_[static_cast<std::size_t>(b)] = a;
    size_[static_cast<std::size_t>(a)] +=
        size_[static_cast<std::size_t>(b)];
  }

 private:
  std::vector<std::int32_t> parent_;
  std::vector<std::int32_t> size_;
};

std::uint64_t chain(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ (v * 0x9E3779B97F4A7C15ULL + 0x7F4A7C15ULL));
}

/// Per-component seed tag; keeps component streams disjoint from every
/// other derived stream in the codebase.
constexpr std::uint64_t kComponentSeedTag = 0x57AEA41C0FFEEULL;

}  // namespace

core::InstanceBounds stream_bounds(const workload::StreamParams& params,
                                   std::int64_t max_events) {
  DFLP_CHECK(max_events >= 0);
  core::InstanceBounds b;
  b.max_facilities = params.num_cells * params.facilities_per_cell;
  const std::int64_t max_clients = params.initial_clients + max_events;
  b.max_network_nodes =
      static_cast<std::int32_t>(b.max_facilities + max_clients);
  b.min_positive_cost = std::min(params.opening_lo, params.connection_lo);
  b.max_cost = std::max(params.opening_hi, params.connection_hi);
  // A cell facility can in principle serve every client ever alive.
  b.max_facility_degree = static_cast<int>(max_clients);
  return b;
}

std::string engine_name(SolveEngine engine) {
  switch (engine) {
    case SolveEngine::kMwGreedy:
      return "mw-greedy";
    case SolveEngine::kPipeline:
      return "mw-pipeline";
  }
  return "unknown";
}

StreamingSolver::StreamingSolver(fl::InstanceSnapshot initial,
                                 StreamingOptions options)
    : options_(std::move(options)), snapshot_(std::move(initial)) {
  DFLP_CHECK_MSG(options_.params.pinned_schedule == nullptr,
                 "StreamingOptions::params.pinned_schedule is managed by "
                 "the service; leave it null");
  DFLP_CHECK_MSG(options_.params.mopup,
                 "the streaming service requires mopup (it asserts every "
                 "epoch's solution is feasible)");
  schedule_ = core::derive_schedule_from_bounds(options_.bounds,
                                                options_.params);
  last_report_ = resolve(/*events=*/0, /*apply_ms=*/0.0, {}, {});
}

EpochReport StreamingSolver::commit_epoch() {
  const auto start = Clock::now();
  std::unordered_set<fl::NodeKey> touched_f;
  std::unordered_set<fl::NodeKey> touched_c;
  for (const fl::Delta& d : pending_.deltas()) {
    switch (d.kind) {
      case fl::Delta::Kind::kClientArrive:
        touched_c.insert(d.client);
        for (const fl::KeyedEdge& e : d.edges) touched_f.insert(e.peer);
        break;
      case fl::Delta::Kind::kClientDepart:
        touched_c.insert(d.client);
        break;
      case fl::Delta::Kind::kFacilityOpen:
        touched_f.insert(d.facility);
        for (const fl::KeyedEdge& e : d.edges) touched_c.insert(e.peer);
        break;
      case fl::Delta::Kind::kFacilityClose:
        touched_f.insert(d.facility);
        break;
      case fl::Delta::Kind::kEdgeCostChange:
        touched_f.insert(d.facility);
        touched_c.insert(d.client);
        break;
    }
  }
  const std::size_t events = pending_.size();
  snapshot_ = fl::apply(snapshot_, pending_);
  pending_.clear();
  const double apply_ms = ms_since(start);

  EpochReport report = resolve(events, apply_ms, touched_f, touched_c);
  report.total_ms = ms_since(start);
  last_report_ = report;
  return report;
}

StreamingSolver::ComponentEntry StreamingSolver::solve_component(
    const Component& comp, std::uint64_t fingerprint) const {
  ComponentEntry entry;
  entry.fingerprint = fingerprint;
  if (comp.clients.empty()) return entry;  // facility-only: stays closed

  const fl::Instance& inst = snapshot_.instance();
  fl::InstanceBuilder builder;
  std::size_t edges = 0;
  for (fl::FacilityId i : comp.facilities)
    edges += inst.facility_edges(i).size();
  builder.reserve(static_cast<std::int32_t>(comp.facilities.size()),
                  static_cast<std::int32_t>(comp.clients.size()), edges);
  std::unordered_map<fl::ClientId, std::int32_t> local_client;
  local_client.reserve(comp.clients.size());
  for (std::size_t t = 0; t < comp.clients.size(); ++t)
    local_client.emplace(comp.clients[t], static_cast<std::int32_t>(t));
  for (fl::FacilityId i : comp.facilities)
    (void)builder.add_facility(inst.opening_cost(i));
  for (std::size_t t = 0; t < comp.clients.size(); ++t)
    (void)builder.add_client();
  for (std::size_t fi = 0; fi < comp.facilities.size(); ++fi) {
    for (const fl::FacilityEdge& e :
         inst.facility_edges(comp.facilities[fi])) {
      builder.connect(static_cast<std::int32_t>(fi),
                      local_client.at(e.client), e.cost);
    }
  }
  const fl::Instance sub = builder.build();

  core::MwParams params = options_.params;
  params.pinned_schedule = &schedule_;
  params.tracer = nullptr;
  params.trace_path.clear();
  params.seed = derive_stream_seed(options_.params.seed,
                                   static_cast<std::uint64_t>(comp.key),
                                   kComponentSeedTag);

  fl::IntegralSolution sub_solution;
  switch (options_.engine) {
    case SolveEngine::kMwGreedy: {
      core::MwGreedyOutcome out = core::run_mw_greedy(sub, params);
      sub_solution = std::move(out.solution);
      entry.rounds = out.metrics.rounds;
      entry.messages = out.metrics.messages;
      break;
    }
    case SolveEngine::kPipeline: {
      core::FracOutcome frac = core::run_frac_lp(sub, params);
      core::RoundOutcome rounded =
          core::run_rand_round(sub, frac.fractional, frac.schedule, params);
      sub_solution = std::move(rounded.solution);
      entry.fractional_value = frac.fractional.value(sub);
      entry.frac_y = std::move(frac.fractional.y);
      entry.rounds = frac.metrics.rounds + rounded.metrics.rounds;
      entry.messages = frac.metrics.messages + rounded.metrics.messages;
      break;
    }
  }

  for (std::size_t fi = 0; fi < comp.facilities.size(); ++fi) {
    if (sub_solution.is_open(static_cast<std::int32_t>(fi)))
      entry.open_facilities.push_back(
          snapshot_.facility_key(comp.facilities[fi]));
  }
  entry.assignment.reserve(comp.clients.size());
  for (std::size_t t = 0; t < comp.clients.size(); ++t) {
    const fl::FacilityId local =
        sub_solution.assignment(static_cast<std::int32_t>(t));
    DFLP_CHECK_MSG(local != fl::kNoFacility,
                   "component solve left a client unassigned");
    entry.assignment.emplace_back(
        snapshot_.client_key(comp.clients[t]),
        snapshot_.facility_key(
            comp.facilities[static_cast<std::size_t>(local)]));
  }
  return entry;
}

EpochReport StreamingSolver::resolve(
    std::size_t events, double apply_ms,
    const std::unordered_set<fl::NodeKey>& touched_f,
    const std::unordered_set<fl::NodeKey>& touched_c) {
  const auto start = Clock::now();
  const fl::Instance& inst = snapshot_.instance();
  const auto m = inst.num_facilities();
  const auto n = inst.num_clients();

  DFLP_CHECK_MSG(
      options_.bounds.dominates(core::InstanceBounds::of(inst)),
      "epoch " << snapshot_.epoch()
               << " outgrew the declared capacity bounds the schedule was "
                  "pinned from ("
               << inst.describe() << ")");

  // ---- Partition into connectivity components. -------------------------
  Dsu dsu(static_cast<std::size_t>(m + n));
  for (fl::FacilityId i = 0; i < m; ++i) {
    for (const fl::FacilityEdge& e : inst.facility_edges(i))
      dsu.merge(i, m + e.client);
  }
  std::vector<Component> comps;
  std::unordered_map<std::int32_t, std::size_t> comp_of_root;
  comp_of_root.reserve(static_cast<std::size_t>(m));
  // Facilities in dense (= ascending-key) order: the first facility seen
  // for a root is the component's minimum key, and `comps` ends up sorted
  // by key — which keeps every downstream accumulation order-deterministic.
  for (fl::FacilityId i = 0; i < m; ++i) {
    const std::int32_t root = dsu.find(i);
    auto [it, fresh] = comp_of_root.emplace(root, comps.size());
    if (fresh) {
      comps.emplace_back();
      comps.back().key = snapshot_.facility_key(i);
    }
    comps[it->second].facilities.push_back(i);
  }
  for (fl::ClientId j = 0; j < n; ++j) {
    const std::int32_t root = dsu.find(m + j);
    const auto it = comp_of_root.find(root);
    DFLP_CHECK_MSG(it != comp_of_root.end(),
                   "client " << j << " has no facility in its component");
    comps[it->second].clients.push_back(j);
  }

  EpochReport report;
  report.epoch = snapshot_.epoch();
  report.events = events;
  report.apply_ms = apply_ms;
  report.num_facilities = m;
  report.num_clients = n;
  report.components = static_cast<std::int64_t>(comps.size());

  // ---- Solve dirty components, reuse clean ones. -----------------------
  std::unordered_map<fl::NodeKey, ComponentEntry> next_cache;
  next_cache.reserve(comps.size());
  fl::IntegralSolution solution(inst);
  for (const Component& comp : comps) {
    std::uint64_t fp = 0xD17F;
    for (fl::FacilityId i : comp.facilities)
      fp = chain(fp, static_cast<std::uint64_t>(snapshot_.facility_key(i)));
    fp = chain(fp, 0xC11E57);  // side separator
    for (fl::ClientId j : comp.clients)
      fp = chain(fp, static_cast<std::uint64_t>(snapshot_.client_key(j)));

    bool reusable = options_.warm_start;
    if (reusable) {
      const auto it = cache_.find(comp.key);
      reusable = it != cache_.end() && it->second.fingerprint == fp;
    }
    if (reusable) {
      for (fl::FacilityId i : comp.facilities) {
        if (touched_f.count(snapshot_.facility_key(i)) != 0) {
          reusable = false;
          break;
        }
      }
    }
    if (reusable) {
      for (fl::ClientId j : comp.clients) {
        if (touched_c.count(snapshot_.client_key(j)) != 0) {
          reusable = false;
          break;
        }
      }
    }

    ComponentEntry entry;
    if (reusable) {
      entry = std::move(cache_.at(comp.key));
      ++report.reused_components;
    } else {
      entry = solve_component(comp, fp);
      ++report.solved_components;
      report.rounds = std::max(report.rounds, entry.rounds);
      report.messages += entry.messages;
    }
    report.fractional_value += entry.fractional_value;

    for (fl::NodeKey fkey : entry.open_facilities) {
      const fl::FacilityId i = snapshot_.facility_index(fkey);
      DFLP_CHECK(i != -1);
      solution.open(i);
    }
    for (const auto& [ckey, fkey] : entry.assignment) {
      const fl::ClientId j = snapshot_.client_index(ckey);
      const fl::FacilityId i = snapshot_.facility_index(fkey);
      DFLP_CHECK(j != -1 && i != -1);
      solution.assign(j, i);
    }
    next_cache.emplace(comp.key, std::move(entry));
  }
  cache_ = std::move(next_cache);

  std::string why;
  DFLP_CHECK_MSG(solution.is_feasible(inst, &why),
                 "epoch " << snapshot_.epoch()
                          << " assembled an infeasible solution: " << why);
  report.cost = solution.cost(inst);

  // ---- Recourse vs the previous epoch, in key space. -------------------
  std::vector<fl::NodeKey> open_keys;
  for (fl::FacilityId i = 0; i < m; ++i) {
    if (solution.is_open(i)) open_keys.push_back(snapshot_.facility_key(i));
  }
  {
    std::vector<fl::NodeKey> diff;
    std::set_difference(open_keys.begin(), open_keys.end(),
                        prev_open_keys_.begin(), prev_open_keys_.end(),
                        std::back_inserter(diff));
    report.recourse.facilities_opened =
        static_cast<std::int64_t>(diff.size());
    diff.clear();
    std::set_difference(prev_open_keys_.begin(), prev_open_keys_.end(),
                        open_keys.begin(), open_keys.end(),
                        std::back_inserter(diff));
    report.recourse.facilities_closed =
        static_cast<std::int64_t>(diff.size());
  }
  std::unordered_map<fl::NodeKey, fl::NodeKey> assignment;
  assignment.reserve(static_cast<std::size_t>(n));
  std::int64_t common = 0;
  for (fl::ClientId j = 0; j < n; ++j) {
    const fl::NodeKey ckey = snapshot_.client_key(j);
    const fl::NodeKey fkey =
        snapshot_.facility_key(solution.assignment(j));
    assignment.emplace(ckey, fkey);
    const auto it = prev_assignment_.find(ckey);
    if (it == prev_assignment_.end()) continue;
    ++common;
    if (it->second != fkey) ++report.recourse.clients_reassigned;
  }
  report.recourse.clients_arrived = static_cast<std::int64_t>(n) - common;
  report.recourse.clients_departed =
      static_cast<std::int64_t>(prev_assignment_.size()) - common;

  prev_open_keys_ = std::move(open_keys);
  prev_assignment_ = std::move(assignment);
  solution_ = std::move(solution);

  report.solve_ms = ms_since(start);
  report.total_ms = report.apply_ms + report.solve_ms;
  return report;
}

}  // namespace dflp::service
