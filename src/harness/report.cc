#include "harness/report.h"

#include <iostream>

namespace dflp::harness {

Table results_table(const std::vector<RunResult>& results) {
  Table table({"algorithm", "cost", "ratio-vs-LB", "rounds", "messages",
               "kbits", "max-msg-bits", "threads", "dropped", "crashed",
               "retx", "dilation", "wall-ms"});
  for (const RunResult& r : results) {
    table.row()
        .cell(r.algo)
        .cell(r.cost, 2)
        .cell(r.ratio, 3)
        .cell(r.rounds)
        .cell(r.messages)
        .cell(static_cast<double>(r.total_bits) / 1000.0, 1)
        .cell(r.max_message_bits)
        .cell(r.threads)
        .cell(r.dropped)
        .cell(r.crashed)
        .cell(r.retransmitted)
        .cell(r.round_dilation, 2)
        .cell(r.wall_ms, 2);
  }
  return table;
}

Table stream_table(const std::vector<service::EpochReport>& reports) {
  Table table({"epoch", "events", "clients", "cost", "rounds", "messages",
               "solved", "reused", "opened", "closed", "reassigned",
               "arrived", "departed", "wall-ms"});
  for (const service::EpochReport& r : reports) {
    table.row()
        .cell(static_cast<std::int64_t>(r.epoch))
        .cell(static_cast<std::uint64_t>(r.events))
        .cell(r.num_clients)
        .cell(r.cost, 2)
        .cell(r.rounds)
        .cell(r.messages)
        .cell(r.solved_components)
        .cell(r.reused_components)
        .cell(r.recourse.facilities_opened)
        .cell(r.recourse.facilities_closed)
        .cell(r.recourse.clients_reassigned)
        .cell(r.recourse.clients_arrived)
        .cell(r.recourse.clients_departed)
        .cell(r.total_ms, 2);
  }
  return table;
}

void print_section(const std::string& title, const std::string& subtitle,
                   const Table& table) {
  std::cout << "\n## " << title << "\n";
  if (!subtitle.empty()) std::cout << subtitle << "\n";
  std::cout << "\n" << table.to_markdown() << std::flush;
}

}  // namespace dflp::harness
