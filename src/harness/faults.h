// Fault-injection campaigns: harness-level crash-before-start handling and
// faulted-vs-fault-free comparison runs.
//
// Two layers of crash semantics exist. In-network crash-stop events
// (FaultPlan::crashes) remove a node mid-run — without a failure detector
// the PODC'05 protocols stall on such a node, which is exactly what the
// determinism tests pin. The *boot crash* model here is the operationally
// interesting one: a seeded fraction of facilities dies before the
// algorithm starts, the survivors run the protocol on the induced
// sub-instance, and the solution is mapped back to original facility ids.
// A facility whose removal would leave some client with no potential
// neighbour is spared (a real deployment cannot serve a client with no
// reachable facility either), so the pruned instance is always valid.
//
// `run_fault_scenario` is the campaign primitive: it runs a fault-free
// baseline with the same transport mode, then the faulted run, and reports
// completion, feasibility, solution equality against the baseline, cost
// ratio, round dilation and the fault/recovery counters. bench_faults
// sweeps it over drop rate × crash fraction × burst length.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ftfp_greedy.h"
#include "core/mw_greedy.h"
#include "core/params.h"
#include "fl/ftfp.h"
#include "fl/instance.h"
#include "fl/solution.h"

namespace dflp::harness {

/// Seeded crash-before-start plan over an instance's facilities.
struct BootCrashes {
  std::vector<fl::FacilityId> crashed;    ///< original ids removed
  std::vector<fl::FacilityId> survivors;  ///< pruned id -> original id
  fl::Instance pruned;                    ///< instance over the survivors
};

/// Samples each facility to crash with `fraction` probability from a
/// stream derived from `fault_seed`, sparing any facility whose removal
/// would isolate a client (facilities are considered in id order, so the
/// spare decision is deterministic). `fraction` must be in [0, 1].
[[nodiscard]] BootCrashes sample_boot_crashes(const fl::Instance& inst,
                                              double fraction,
                                              std::uint64_t fault_seed);

/// Maps a solution on the pruned instance back to original facility ids.
[[nodiscard]] fl::IntegralSolution map_solution_back(
    const fl::Instance& original, const BootCrashes& plan,
    const fl::IntegralSolution& pruned_solution);

/// mw-greedy honouring `params.boot_crash_fraction`: prunes the crashed
/// facilities, runs the survivors (with whatever message faults and
/// transport mode the params configure), and returns the outcome with the
/// solution mapped back to original ids. Identical to run_mw_greedy when
/// the fraction is 0. The outcome's `metrics.crashed` counts the
/// boot-crashed facilities.
[[nodiscard]] core::MwGreedyOutcome run_mw_greedy_with_faults(
    const fl::Instance& inst, const core::MwParams& params);

/// Canonical printable digest of a solution (open set + assignment),
/// byte-comparable across runs.
[[nodiscard]] std::string solution_fingerprint(
    const fl::Instance& inst, const fl::IntegralSolution& solution);

/// One faulted run compared against the fault-free baseline that shares
/// its transport mode, seed and boot-crash plan.
struct FaultRunReport {
  std::string scenario;
  bool completed = false;           ///< no CheckError escaped the run
  bool feasible = false;
  bool matches_fault_free = false;  ///< same solution as the baseline
  double cost = 0.0;
  double cost_ratio = 0.0;          ///< cost / baseline cost
  std::uint64_t rounds = 0;
  double round_dilation = 0.0;      ///< rounds / baseline rounds
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t crashed = 0;        ///< boot-crashed facilities
  std::uint64_t retransmissions = 0;
  std::uint64_t duplicates_discarded = 0;
  int phases = 1;                   ///< exclusion phases (1 for plain UFL)
  std::string diagnostic;           ///< failure message when !completed
};

/// Runs mw-greedy under `params` and under the matching fault-free
/// baseline, and compares. A CheckError in the faulted run (the expected
/// outcome without the reliable transport) is captured into the report,
/// not rethrown.
[[nodiscard]] FaultRunReport run_fault_scenario(const fl::Instance& inst,
                                                const core::MwParams& params,
                                                const std::string& name);

/// FTFP analogue of `run_fault_scenario`: runs the exclusion-phase solver
/// under `params` and under the matching fault-free baseline with the same
/// transport mode. Boot crashes do not apply here (post-deployment
/// facility crashes are the survivability campaign's job — see
/// harness/survive.h); `params.boot_crash_fraction` must be 0.
[[nodiscard]] FaultRunReport run_ftfp_fault_scenario(
    const fl::FtfpInstance& inst, const core::MwParams& params,
    const std::string& name);

struct FaultScenario {
  std::string name;
  core::MwParams params;
};

/// Campaign: run_fault_scenario over every entry.
[[nodiscard]] std::vector<FaultRunReport> run_fault_campaign(
    const fl::Instance& inst, const std::vector<FaultScenario>& scenarios);

}  // namespace dflp::harness
