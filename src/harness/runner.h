// Experiment harness: runs any algorithm on an instance, measures cost,
// rounds, messages and bits, and normalizes cost by the strongest lower
// bound available — so every ratio the benches print is a certified upper
// bound on the true approximation factor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/params.h"
#include "fl/instance.h"

namespace dflp::harness {

enum class Algo : std::uint8_t {
  kMwGreedy,     ///< the paper's combinatorial distributed algorithm
  kPipeline,     ///< the paper's LP-solve + randomized-rounding pipeline
  kIdealGreedy,  ///< centralized greedy with oracle rounds = iterations
  kSeqGreedy,    ///< centralized greedy (no round accounting)
  kJainVazirani,
  kMettuPlaxton,
  kJms,
  kLocalSearch,  ///< add/drop/swap local search (3+eps on metric)
  kOpenAll,
  kNearestFacility,
  kLiJms,     ///< Li 1.488-style scaled-JMS portfolio (metric baseline)
  kCliqueFl,  ///< BHP congested-clique solver (complete bipartite only)
};

[[nodiscard]] std::string algo_name(Algo algo);

/// Which denominator the ratios use.
struct LowerBound {
  double value = 0.0;
  std::string kind;  ///< "lp-optimum", "dual-ascent", or "cheapest-edges"
};

/// Strongest affordable lower bound: exact LP via simplex when the model
/// stays under `max_lp_edges` edges, else event-driven dual ascent, else
/// (never in practice) the cheapest-connection sum. The returned value is
/// always a valid lower bound on OPT.
[[nodiscard]] LowerBound compute_lower_bound(const fl::Instance& inst,
                                             std::size_t max_lp_edges = 400);

struct RunResult {
  std::string algo;
  double cost = 0.0;
  double ratio = 0.0;  ///< cost / lower bound (>= 1 up to LB slack)
  bool feasible = false;
  // Distributed executions only (0 for centralized baselines):
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t total_bits = 0;
  int max_message_bits = 0;
  /// Simulator step-phase threads the run used (1 for centralized
  /// baselines). Only wall_ms depends on it — the solution, rounds,
  /// messages and bits are bit-identical across thread counts.
  int threads = 1;
  double wall_ms = 0.0;
  // Fault-injection and recovery counters (0 on fault-free runs):
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t crashed = 0;        ///< boot-crashed facilities
  std::uint64_t retransmitted = 0;  ///< reliable-channel re-sends
  /// rounds / fault-free-baseline rounds; 0 when no baseline was run
  /// (fault-free executions, or callers that skip the comparison).
  double round_dilation = 0.0;
  /// Path the round trace was written to (empty when the run was untraced
  /// or the algorithm is centralized). See MwParams::trace_path and
  /// docs/trace-schema.md.
  std::string trace_path;
};

/// Runs `algo` on `inst`; `params` applies to the distributed algorithms.
[[nodiscard]] RunResult run_algorithm(Algo algo, const fl::Instance& inst,
                                      const core::MwParams& params,
                                      const LowerBound& lb);

/// Convenience: run several algorithms against one shared lower bound.
[[nodiscard]] std::vector<RunResult> run_suite(
    const std::vector<Algo>& algos, const fl::Instance& inst,
    const core::MwParams& params);

}  // namespace dflp::harness
