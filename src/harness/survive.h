// Survivability campaigns: what happens to a (possibly redundant) placement
// when opened facilities crash *after* deployment.
//
// The solver-side fault plans (harness/faults.h) measure whether the
// *protocol* survives hazards during the run. This module measures whether
// the *placement* survives hazards after the run: given an FTFP solution,
// a kill set of opened facilities is crashed and the report says whether
// every client is still served by a surviving assigned facility (residual
// feasibility), what the post-crash serving cost is, and how much recourse
// — rerouted clients and emergency re-openings — the repair needed.
//
// Kill sets come from two sources:
//   * `single_kill_sets` enumerates every single-facility crash — the
//     exhaustive check behind the r=2 survivability guarantee (a client
//     with two distinct facilities never loses both to one crash);
//   * `sample_kill_set` crashes a seeded fraction of the opened
//     facilities, reusing the FaultPlan crash-stop sampler over a virtual
//     node set indexed by the opened-facility list, so kill sets are a
//     pure function of (placement, fraction, kill_seed) and shared across
//     the r sweeps in bench_ftfp.
//
// Post-crash semantics: every client routes to its cheapest *surviving*
// assigned facility. A client whose assigned facilities all died is an
// orphan; repair routes it to the cheapest surviving open facility it can
// reach, and failing that re-opens the cheapest surviving neighbour
// (paying its opening cost). Clients whose neighbours all died are beyond
// repair and leave the placement infeasible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fl/ftfp.h"

namespace dflp::harness {

/// A named set of opened facilities to crash.
struct KillSet {
  std::string name;
  std::vector<fl::FacilityId> killed;
};

/// The opened facilities of a placement, in ascending id order — the
/// virtual node set the kill sampler indexes.
[[nodiscard]] std::vector<fl::FacilityId> opened_facilities(
    const fl::FtfpSolution& solution, const fl::FtfpInstance& inst);

/// One kill set per opened facility (exhaustive single-crash enumeration).
[[nodiscard]] std::vector<KillSet> single_kill_sets(
    const fl::FtfpSolution& solution, const fl::FtfpInstance& inst);

/// Crashes each opened facility with probability `fraction`, sampled by
/// the FaultPlan crash-stop machinery over virtual nodes 0..#opened-1
/// seeded by `kill_seed`. Deterministic; independent of r, so placements
/// of different redundancy face comparable hazards under a shared seed.
[[nodiscard]] KillSet sample_kill_set(const fl::FtfpSolution& solution,
                                      const fl::FtfpInstance& inst,
                                      double fraction,
                                      std::uint64_t kill_seed);

/// Outcome of crashing one kill set against one placement.
struct SurvivalReport {
  std::string kill_set;
  int killed = 0;            ///< facilities crashed
  int surviving_open = 0;    ///< open facilities left standing
  /// Every client kept >= 1 surviving *assigned* facility — served without
  /// any repair. This is the guarantee r >= 2 buys against single crashes.
  bool residual_feasible = false;
  /// Every client is served after repair (false only when some client's
  /// entire neighbourhood died).
  bool repaired = false;
  int orphaned_clients = 0;   ///< lost every assigned facility
  int rerouted_clients = 0;   ///< primary facility changed (incl. orphans)
  int reopened_facilities = 0;  ///< emergency openings during repair
  double cost_intact = 0.0;    ///< serving cost before the crash
  double cost_residual = 0.0;  ///< serving cost after crash + repair
  double cost_ratio = 0.0;     ///< residual / intact
  /// Connection-cost delta summed over rerouted clients (the marginal
  /// price of re-assignment, excluding re-opening).
  double reassignment_cost = 0.0;
};

/// Crashes `kill` against the placement and reports. Serving cost = the
/// opening cost of every standing open facility (survivors + re-openings)
/// plus each served client's primary connection cost.
[[nodiscard]] SurvivalReport survive_crash(const fl::FtfpInstance& inst,
                                           const fl::FtfpSolution& solution,
                                           const KillSet& kill);

/// survive_crash over every kill set.
[[nodiscard]] std::vector<SurvivalReport> run_survival_campaign(
    const fl::FtfpInstance& inst, const fl::FtfpSolution& solution,
    const std::vector<KillSet>& kill_sets);

/// Campaign aggregate for tables and gates.
struct SurvivalSummary {
  int kill_sets = 0;
  int residual_feasible = 0;  ///< kill sets survived without repair
  int repaired = 0;           ///< kill sets served after repair
  int worst_orphans = 0;
  double worst_cost_ratio = 0.0;
  double mean_cost_ratio = 0.0;
  std::uint64_t total_rerouted = 0;
  std::uint64_t total_reopened = 0;
};
[[nodiscard]] SurvivalSummary summarize(
    const std::vector<SurvivalReport>& reports);

}  // namespace dflp::harness
