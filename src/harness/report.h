// Rendering of harness results into the tables the bench binaries print.
#pragma once

#include <string>
#include <vector>

#include "common/table.h"
#include "harness/runner.h"
#include "service/streaming_solver.h"

namespace dflp::harness {

/// Standard columns: algo | cost | ratio | rounds | messages | kbits |
/// max-msg-bits | threads | dropped | crashed | retx | dilation |
/// wall-ms.
[[nodiscard]] Table results_table(const std::vector<RunResult>& results);

/// Streaming-epoch columns, one row per commit: epoch | events | clients |
/// cost | rounds | messages | solved | reused | opened | closed |
/// reassigned | arrived | departed | wall-ms. The recourse columns
/// (opened/closed/reassigned) are the churn metric EXPERIMENTS.md E13
/// tracks alongside cost.
[[nodiscard]] Table stream_table(
    const std::vector<service::EpochReport>& reports);

/// Prints a titled section with the lower-bound provenance to stdout.
void print_section(const std::string& title, const std::string& subtitle,
                   const Table& table);

}  // namespace dflp::harness
