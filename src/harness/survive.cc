#include "harness/survive.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "netsim/fault.h"

namespace dflp::harness {

namespace {

/// Decorrelates kill-set sampling from the engine and boot-crash streams.
constexpr std::uint64_t kKillSeedSalt = 0x5EED0FACE5C4A5EULL;

}  // namespace

std::vector<fl::FacilityId> opened_facilities(const fl::FtfpSolution& solution,
                                              const fl::FtfpInstance& inst) {
  std::vector<fl::FacilityId> opened;
  for (fl::FacilityId i = 0; i < inst.base.num_facilities(); ++i)
    if (solution.is_open(i)) opened.push_back(i);
  return opened;
}

std::vector<KillSet> single_kill_sets(const fl::FtfpSolution& solution,
                                      const fl::FtfpInstance& inst) {
  std::vector<KillSet> sets;
  for (const fl::FacilityId i : opened_facilities(solution, inst)) {
    std::ostringstream name;
    name << "kill-f" << i;
    sets.push_back(KillSet{name.str(), {i}});
  }
  return sets;
}

KillSet sample_kill_set(const fl::FtfpSolution& solution,
                        const fl::FtfpInstance& inst, double fraction,
                        std::uint64_t kill_seed) {
  DFLP_CHECK_MSG(fraction >= 0.0 && fraction <= 1.0,
                 "kill fraction must be in [0, 1], got " << fraction);
  const std::vector<fl::FacilityId> opened = opened_facilities(solution, inst);

  KillSet kill;
  std::ostringstream name;
  name << "kill-frac" << fraction << "-seed" << kill_seed;
  kill.name = name.str();
  if (fraction <= 0.0 || opened.empty()) return kill;

  // The opened facilities form a virtual node set 0..#opened-1; the
  // FaultPlan crash-stop sampler picks the victims, so kill sets obey the
  // same determinism contract as every other hazard in the repo.
  net::FaultPlan::Options options;
  options.random_crash_fraction = fraction;
  options.fault_seed = kill_seed;
  const net::FaultPlan plan(options, kKillSeedSalt, opened.size());
  for (const net::CrashEvent& event : plan.crash_schedule())
    kill.killed.push_back(opened[static_cast<std::size_t>(event.node)]);
  std::sort(kill.killed.begin(), kill.killed.end());
  return kill;
}

SurvivalReport survive_crash(const fl::FtfpInstance& inst,
                             const fl::FtfpSolution& solution,
                             const KillSet& kill) {
  const fl::Instance& base = inst.base;
  std::vector<std::uint8_t> dead(static_cast<std::size_t>(base.num_facilities()),
                                 0);
  for (const fl::FacilityId i : kill.killed) {
    DFLP_CHECK_MSG(solution.is_open(i),
                   "kill set '" << kill.name << "' names facility " << i
                                << " which is not open in the placement");
    dead[static_cast<std::size_t>(i)] = 1;
  }

  SurvivalReport report;
  report.kill_set = kill.name;
  report.killed = static_cast<int>(kill.killed.size());
  report.residual_feasible = true;
  report.repaired = true;

  // Standing facilities after the crash; repair may re-open more.
  std::vector<std::uint8_t> standing(
      static_cast<std::size_t>(base.num_facilities()), 0);
  for (fl::FacilityId i = 0; i < base.num_facilities(); ++i) {
    if (solution.is_open(i) && !dead[static_cast<std::size_t>(i)]) {
      standing[static_cast<std::size_t>(i)] = 1;
      ++report.surviving_open;
    }
  }

  double opening_intact = 0.0;
  double opening_residual = 0.0;
  for (fl::FacilityId i = 0; i < base.num_facilities(); ++i) {
    if (solution.is_open(i)) opening_intact += base.opening_cost(i);
    if (standing[static_cast<std::size_t>(i)])
      opening_residual += base.opening_cost(i);
  }

  double connection_intact = 0.0;
  double connection_residual = 0.0;
  for (fl::ClientId j = 0; j < base.num_clients(); ++j) {
    // Intact primary: cheapest assigned facility (ties to the lower id).
    fl::FacilityId old_primary = fl::kNoFacility;
    double old_cost = std::numeric_limits<double>::infinity();
    // Post-crash primary: cheapest *surviving* assigned facility.
    fl::FacilityId new_primary = fl::kNoFacility;
    double new_cost = std::numeric_limits<double>::infinity();
    for (const fl::FacilityId i : solution.assignments(j)) {
      const double c = base.connection_cost(i, j);
      if (c < old_cost || (c == old_cost && i < old_primary)) {
        old_primary = i;
        old_cost = c;
      }
      if (dead[static_cast<std::size_t>(i)]) continue;
      if (c < new_cost || (c == new_cost && i < new_primary)) {
        new_primary = i;
        new_cost = c;
      }
    }
    connection_intact += old_cost;

    if (new_primary == fl::kNoFacility) {
      // Orphan: every assigned facility died. Repair pass 1 routes to the
      // cheapest surviving *open* neighbour; pass 2 re-opens the cheapest
      // surviving neighbour outright (client_edges are cost-ascending).
      report.residual_feasible = false;
      ++report.orphaned_clients;
      fl::FacilityId fallback = fl::kNoFacility;
      for (const fl::ClientEdge& e : base.client_edges(j)) {
        if (dead[static_cast<std::size_t>(e.facility)]) continue;
        if (fallback == fl::kNoFacility) fallback = e.facility;
        if (standing[static_cast<std::size_t>(e.facility)]) {
          new_primary = e.facility;
          new_cost = e.cost;
          break;
        }
      }
      if (new_primary == fl::kNoFacility && fallback != fl::kNoFacility) {
        standing[static_cast<std::size_t>(fallback)] = 1;
        opening_residual += base.opening_cost(fallback);
        ++report.reopened_facilities;
        new_primary = fallback;
        new_cost = base.connection_cost(fallback, j);
      }
    }

    if (new_primary == fl::kNoFacility) {
      // Every reachable facility died; the client cannot be served.
      report.repaired = false;
      continue;
    }
    connection_residual += new_cost;
    if (new_primary != old_primary) {
      ++report.rerouted_clients;
      report.reassignment_cost += new_cost - old_cost;
    }
  }

  report.cost_intact = opening_intact + connection_intact;
  report.cost_residual = opening_residual + connection_residual;
  report.cost_ratio = report.cost_intact > 0.0
                          ? report.cost_residual / report.cost_intact
                          : 0.0;
  return report;
}

std::vector<SurvivalReport> run_survival_campaign(
    const fl::FtfpInstance& inst, const fl::FtfpSolution& solution,
    const std::vector<KillSet>& kill_sets) {
  std::vector<SurvivalReport> reports;
  reports.reserve(kill_sets.size());
  for (const KillSet& kill : kill_sets)
    reports.push_back(survive_crash(inst, solution, kill));
  return reports;
}

SurvivalSummary summarize(const std::vector<SurvivalReport>& reports) {
  SurvivalSummary summary;
  summary.kill_sets = static_cast<int>(reports.size());
  double ratio_sum = 0.0;
  for (const SurvivalReport& r : reports) {
    if (r.residual_feasible) ++summary.residual_feasible;
    if (r.repaired) ++summary.repaired;
    summary.worst_orphans = std::max(summary.worst_orphans, r.orphaned_clients);
    summary.worst_cost_ratio = std::max(summary.worst_cost_ratio, r.cost_ratio);
    ratio_sum += r.cost_ratio;
    summary.total_rerouted += static_cast<std::uint64_t>(r.rerouted_clients);
    summary.total_reopened +=
        static_cast<std::uint64_t>(r.reopened_facilities);
  }
  summary.mean_cost_ratio =
      reports.empty() ? 0.0 : ratio_sum / static_cast<double>(reports.size());
  return summary;
}

}  // namespace dflp::harness
