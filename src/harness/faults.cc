#include "harness/faults.h"

#include <sstream>

#include "common/check.h"
#include "common/rng.h"

namespace dflp::harness {

namespace {

/// Decorrelates the boot-crash stream from in-network fault streams.
constexpr std::uint64_t kBootCrashSalt = 0xB0075EEDB0075EEFULL;

}  // namespace

BootCrashes sample_boot_crashes(const fl::Instance& inst, double fraction,
                                std::uint64_t fault_seed) {
  DFLP_CHECK_MSG(fraction >= 0.0 && fraction <= 1.0,
                 "boot crash fraction must be in [0, 1], got " << fraction);
  const fl::FacilityId m = inst.num_facilities();
  const fl::ClientId n = inst.num_clients();

  // Remaining potential facilities per client; a facility is spared when
  // crashing it would drop some client's count to zero.
  std::vector<int> client_degree(static_cast<std::size_t>(n), 0);
  for (fl::ClientId j = 0; j < n; ++j) {
    client_degree[static_cast<std::size_t>(j)] =
        static_cast<int>(inst.client_edges(j).size());
  }

  BootCrashes plan;
  std::vector<std::uint8_t> dead(static_cast<std::size_t>(m), 0);
  if (fraction > 0.0) {
    for (fl::FacilityId i = 0; i < m; ++i) {
      Rng coin(derive_stream_seed(fault_seed ^ kBootCrashSalt,
                                  static_cast<std::uint64_t>(i), 0));
      if (!coin.bernoulli(fraction)) continue;
      bool isolates = false;
      for (const fl::FacilityEdge& e : inst.facility_edges(i)) {
        if (client_degree[static_cast<std::size_t>(e.client)] <= 1) {
          isolates = true;
          break;
        }
      }
      if (isolates) continue;
      dead[static_cast<std::size_t>(i)] = 1;
      plan.crashed.push_back(i);
      for (const fl::FacilityEdge& e : inst.facility_edges(i))
        --client_degree[static_cast<std::size_t>(e.client)];
    }
  }

  std::vector<fl::FacilityId> to_pruned(static_cast<std::size_t>(m),
                                        fl::kNoFacility);
  fl::InstanceBuilder builder;
  for (fl::FacilityId i = 0; i < m; ++i) {
    if (dead[static_cast<std::size_t>(i)]) continue;
    to_pruned[static_cast<std::size_t>(i)] =
        builder.add_facility(inst.opening_cost(i));
    plan.survivors.push_back(i);
  }
  for (fl::ClientId j = 0; j < n; ++j) builder.add_client();
  for (fl::FacilityId i = 0; i < m; ++i) {
    const fl::FacilityId pi = to_pruned[static_cast<std::size_t>(i)];
    if (pi == fl::kNoFacility) continue;
    for (const fl::FacilityEdge& e : inst.facility_edges(i))
      builder.connect(pi, e.client, e.cost);
  }
  plan.pruned = builder.build();
  return plan;
}

fl::IntegralSolution map_solution_back(
    const fl::Instance& original, const BootCrashes& plan,
    const fl::IntegralSolution& pruned_solution) {
  fl::IntegralSolution mapped(original);
  for (std::size_t p = 0; p < plan.survivors.size(); ++p) {
    if (pruned_solution.is_open(static_cast<fl::FacilityId>(p)))
      mapped.open(plan.survivors[p]);
  }
  for (fl::ClientId j = 0; j < original.num_clients(); ++j) {
    const fl::FacilityId a = pruned_solution.assignment(j);
    if (a != fl::kNoFacility)
      mapped.assign(j, plan.survivors[static_cast<std::size_t>(a)]);
  }
  return mapped;
}

core::MwGreedyOutcome run_mw_greedy_with_faults(const fl::Instance& inst,
                                                const core::MwParams& params) {
  if (params.boot_crash_fraction <= 0.0)
    return core::run_mw_greedy(inst, params);
  BootCrashes plan = sample_boot_crashes(inst, params.boot_crash_fraction,
                                         params.faults.fault_seed);
  core::MwParams pruned_params = params;
  pruned_params.boot_crash_fraction = 0.0;
  core::MwGreedyOutcome out = core::run_mw_greedy(plan.pruned, pruned_params);
  out.solution = map_solution_back(inst, plan, out.solution);
  out.metrics.crashed += plan.crashed.size();
  return out;
}

std::string solution_fingerprint(const fl::Instance& inst,
                                 const fl::IntegralSolution& solution) {
  std::ostringstream os;
  os << "open:";
  for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i)
    if (solution.is_open(i)) os << i << ",";
  os << ";assign:";
  for (fl::ClientId j = 0; j < inst.num_clients(); ++j)
    os << solution.assignment(j) << ",";
  return os.str();
}

FaultRunReport run_fault_scenario(const fl::Instance& inst,
                                  const core::MwParams& params,
                                  const std::string& name) {
  FaultRunReport report;
  report.scenario = name;

  // Fault-free baseline with the same seed, transport mode and boot-crash
  // plan (the pruning stream depends only on fault_seed, so both runs see
  // the same survivor set).
  core::MwParams baseline_params = params;
  baseline_params.faults = net::FaultPlan::Options{};
  baseline_params.faults.fault_seed = params.faults.fault_seed;
  const core::MwGreedyOutcome baseline =
      run_mw_greedy_with_faults(inst, baseline_params);
  const std::string baseline_fp =
      solution_fingerprint(inst, baseline.solution);
  const double baseline_cost = baseline.solution.cost(inst);

  try {
    const core::MwGreedyOutcome out = run_mw_greedy_with_faults(inst, params);
    report.completed = true;
    report.feasible = out.solution.is_feasible(inst);
    report.matches_fault_free =
        solution_fingerprint(inst, out.solution) == baseline_fp;
    report.cost = report.feasible ? out.solution.cost(inst) : 0.0;
    report.cost_ratio =
        baseline_cost > 0.0 ? report.cost / baseline_cost
                            : (report.cost <= 0.0 ? 1.0 : 0.0);
    report.rounds = out.metrics.rounds;
    report.round_dilation =
        baseline.metrics.rounds > 0
            ? static_cast<double>(out.metrics.rounds) /
                  static_cast<double>(baseline.metrics.rounds)
            : 0.0;
    report.dropped = out.metrics.dropped;
    report.duplicated = out.metrics.duplicated;
    report.crashed = out.metrics.crashed;
    report.retransmissions = out.transport.retransmissions;
    report.duplicates_discarded = out.transport.duplicates_discarded;
  } catch (const CheckError& err) {
    report.diagnostic = err.what();
  }
  return report;
}

FaultRunReport run_ftfp_fault_scenario(const fl::FtfpInstance& inst,
                                       const core::MwParams& params,
                                       const std::string& name) {
  DFLP_CHECK_MSG(params.boot_crash_fraction == 0.0,
                 "boot crashes do not apply to FTFP scenarios; crash opened "
                 "facilities with harness/survive.h instead");
  FaultRunReport report;
  report.scenario = name;

  core::MwParams baseline_params = params;
  baseline_params.faults = net::FaultPlan::Options{};
  baseline_params.faults.fault_seed = params.faults.fault_seed;
  const core::FtfpOutcome baseline =
      core::run_ftfp_greedy(inst, baseline_params);
  const std::string baseline_fp = baseline.solution.fingerprint(inst);
  const double baseline_cost = baseline.solution.cost(inst);

  try {
    const core::FtfpOutcome out = core::run_ftfp_greedy(inst, params);
    report.completed = true;
    report.feasible = out.solution.is_feasible(inst);
    report.matches_fault_free =
        out.solution.fingerprint(inst) == baseline_fp;
    report.cost = report.feasible ? out.solution.cost(inst) : 0.0;
    report.cost_ratio =
        baseline_cost > 0.0 ? report.cost / baseline_cost
                            : (report.cost <= 0.0 ? 1.0 : 0.0);
    report.rounds = out.metrics.rounds;
    report.round_dilation =
        baseline.metrics.rounds > 0
            ? static_cast<double>(out.metrics.rounds) /
                  static_cast<double>(baseline.metrics.rounds)
            : 0.0;
    report.dropped = out.metrics.dropped;
    report.duplicated = out.metrics.duplicated;
    report.crashed = out.metrics.crashed;
    report.retransmissions = out.transport.retransmissions;
    report.duplicates_discarded = out.transport.duplicates_discarded;
    report.phases = out.phases;
  } catch (const CheckError& err) {
    report.diagnostic = err.what();
  }
  return report;
}

std::vector<FaultRunReport> run_fault_campaign(
    const fl::Instance& inst, const std::vector<FaultScenario>& scenarios) {
  std::vector<FaultRunReport> reports;
  reports.reserve(scenarios.size());
  for (const FaultScenario& s : scenarios)
    reports.push_back(run_fault_scenario(inst, s.params, s.name));
  return reports;
}

}  // namespace dflp::harness
