#include "harness/runner.h"

#include <chrono>

#include "common/check.h"
#include "core/clique_fl.h"
#include "core/ideal_greedy.h"
#include "core/metric_baseline.h"
#include "core/mw_greedy.h"
#include "core/pipeline.h"
#include "harness/faults.h"
#include "lp/dual_ascent.h"
#include "lp/ufl_lp.h"
#include "seq/greedy.h"
#include "seq/jain_vazirani.h"
#include "seq/jms.h"
#include "seq/local_search.h"
#include "seq/mettu_plaxton.h"
#include "seq/trivial.h"

namespace dflp::harness {

std::string algo_name(Algo algo) {
  switch (algo) {
    case Algo::kMwGreedy:
      return "mw-greedy";
    case Algo::kPipeline:
      return "mw-pipeline";
    case Algo::kIdealGreedy:
      return "ideal-greedy";
    case Algo::kSeqGreedy:
      return "seq-greedy";
    case Algo::kJainVazirani:
      return "jain-vazirani";
    case Algo::kMettuPlaxton:
      return "mettu-plaxton";
    case Algo::kJms:
      return "jms-greedy";
    case Algo::kLocalSearch:
      return "local-search";
    case Algo::kOpenAll:
      return "open-all";
    case Algo::kNearestFacility:
      return "nearest-facility";
    case Algo::kLiJms:
      return "li-jms";
    case Algo::kCliqueFl:
      return "clique-fl";
  }
  return "unknown";
}

LowerBound compute_lower_bound(const fl::Instance& inst,
                               std::size_t max_lp_edges) {
  if (inst.num_edges() <= max_lp_edges) {
    if (const auto lp = lp::solve_ufl_lp(inst)) {
      return {lp->optimum, "lp-optimum"};
    }
  }
  const lp::DualAscentResult dual = lp::dual_ascent_bound(inst);
  if (dual.lower_bound > 0.0) return {dual.lower_bound, "dual-ascent"};
  return {lp::cheapest_connection_bound(inst), "cheapest-edges"};
}

namespace {

double safe_ratio(double cost, const LowerBound& lb) {
  if (lb.value <= 0.0) return cost <= 0.0 ? 1.0 : 0.0;  // degenerate: free OPT
  return cost / lb.value;
}

}  // namespace

RunResult run_algorithm(Algo algo, const fl::Instance& inst,
                        const core::MwParams& params, const LowerBound& lb) {
  RunResult result;
  result.algo = algo_name(algo);
  const bool distributed = algo == Algo::kMwGreedy ||
                           algo == Algo::kPipeline ||
                           algo == Algo::kCliqueFl;
  if (distributed) result.threads = params.num_threads;

  // File-level tracing: the harness owns the Tracer, hands the runners a
  // pointer via a params copy, and exports after the run. Callers that want
  // the trace in memory set `params.tracer` themselves and skip trace_path.
  core::MwParams traced_params = params;
  net::Tracer tracer(params.trace_phases);
  if (distributed && !params.trace_path.empty() && params.tracer == nullptr)
    traced_params.tracer = &tracer;
  const core::MwParams& run_params = traced_params;

  const auto start = std::chrono::steady_clock::now();

  fl::IntegralSolution sol;
  switch (algo) {
    case Algo::kMwGreedy: {
      // Routed through the fault harness so boot crashes are honoured;
      // identical to run_mw_greedy when boot_crash_fraction is 0.
      core::MwGreedyOutcome out = run_mw_greedy_with_faults(inst, run_params);
      sol = std::move(out.solution);
      result.rounds = out.metrics.rounds;
      result.messages = out.metrics.messages;
      result.total_bits = out.metrics.total_bits;
      result.max_message_bits = out.metrics.max_message_bits;
      result.dropped = out.metrics.dropped;
      result.duplicated = out.metrics.duplicated;
      result.crashed = out.metrics.crashed;
      result.retransmitted = out.transport.retransmissions;
      break;
    }
    case Algo::kPipeline: {
      core::PipelineOutcome out = core::run_pipeline(inst, run_params);
      sol = std::move(out.solution);
      result.rounds = out.total_rounds();
      result.messages = out.total_messages();
      result.total_bits =
          out.frac_metrics.total_bits + out.round_metrics.total_bits;
      result.max_message_bits = std::max(out.frac_metrics.max_message_bits,
                                         out.round_metrics.max_message_bits);
      result.dropped =
          out.frac_metrics.dropped + out.round_metrics.dropped;
      result.duplicated =
          out.frac_metrics.duplicated + out.round_metrics.duplicated;
      result.crashed =
          out.frac_metrics.crashed + out.round_metrics.crashed;
      result.retransmitted = out.transport.retransmissions;
      break;
    }
    case Algo::kIdealGreedy: {
      core::IdealGreedyOutcome out = core::run_ideal_greedy(inst);
      sol = std::move(out.solution);
      result.rounds = static_cast<std::uint64_t>(out.rounds);
      break;
    }
    case Algo::kSeqGreedy:
      sol = seq::greedy_solve(inst).solution;
      break;
    case Algo::kJainVazirani:
      sol = seq::jain_vazirani_solve(inst).solution;
      break;
    case Algo::kMettuPlaxton:
      sol = seq::mettu_plaxton_solve(inst).solution;
      break;
    case Algo::kJms:
      sol = seq::jms_solve(inst).solution;
      break;
    case Algo::kLocalSearch:
      sol = seq::local_search_solve(inst).solution;
      break;
    case Algo::kOpenAll:
      sol = seq::open_all_solve(inst);
      break;
    case Algo::kNearestFacility:
      sol = seq::nearest_facility_solve(inst);
      break;
    case Algo::kLiJms:
      sol = core::li_jms_solve(inst).solution;
      break;
    case Algo::kCliqueFl: {
      // Clique runs reuse the MwParams engine knobs; the closure overload
      // requires a complete bipartite (metric) instance and throws
      // otherwise.
      core::CliqueFlParams cp;
      cp.seed = run_params.seed;
      cp.num_threads = run_params.num_threads;
      cp.delivery = run_params.delivery;
      cp.faults = run_params.faults;
      cp.tracer = run_params.tracer;
      core::CliqueFlOutcome out = core::run_clique_fl(inst, cp);
      sol = std::move(out.solution);
      result.rounds = out.metrics.rounds;
      result.messages = out.metrics.messages;
      result.total_bits = out.metrics.total_bits;
      result.max_message_bits = out.metrics.max_message_bits;
      result.dropped = out.metrics.dropped;
      result.duplicated = out.metrics.duplicated;
      result.crashed = out.metrics.crashed;
      break;
    }
  }

  const auto stop = std::chrono::steady_clock::now();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  if (run_params.tracer == &tracer) {
    tracer.write_file(params.trace_path, params.trace_format);
    result.trace_path = params.trace_path;
  }
  result.feasible = sol.is_feasible(inst);
  DFLP_CHECK_MSG(result.feasible,
                 result.algo << " produced an infeasible solution");
  result.cost = sol.cost(inst);
  result.ratio = safe_ratio(result.cost, lb);
  return result;
}

std::vector<RunResult> run_suite(const std::vector<Algo>& algos,
                                 const fl::Instance& inst,
                                 const core::MwParams& params) {
  const LowerBound lb = compute_lower_bound(inst);
  std::vector<RunResult> results;
  results.reserve(algos.size());
  for (Algo a : algos) results.push_back(run_algorithm(a, inst, params, lb));
  return results;
}

}  // namespace dflp::harness
