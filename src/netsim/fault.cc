#include "netsim/fault.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace dflp::net {

namespace {

// Stream-family salts. kIidDropSalt is the engine's historical fault salt:
// the legacy drop stream must keep producing the exact coin sequence that
// the committed drop-failure goldens were recorded under, so it is frozen
// and keyed by the *network* seed only. The remaining salts are new
// families keyed by the mixed plan seed.
constexpr std::uint64_t kIidDropSalt = 0xD20BB4B1D20BB4B3ULL;
constexpr std::uint64_t kDuplicateSalt = 0xD0B1E5EBD0B1E5EDULL;
constexpr std::uint64_t kBurstChainSalt = 0xB4257C4A12D7E9A1ULL;
constexpr std::uint64_t kBurstDropSalt = 0xB4257D20FF00AA55ULL;
constexpr std::uint64_t kPartitionSalt = 0x9A27177109A27173ULL;
constexpr std::uint64_t kCrashSalt = 0xC4A54057C4A54059ULL;

[[nodiscard]] std::uint64_t link_key(NodeId src, NodeId dst) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst));
}

void check_probability(double p, const char* name) {
  DFLP_CHECK_MSG(p >= 0.0 && p <= 1.0,
                 "FaultPlan: " << name << " must be in [0, 1], got " << p);
}

}  // namespace

void validate_fault_options(const FaultPlan::Options& options) {
  check_probability(options.drop_probability, "drop_probability");
  check_probability(options.duplicate_probability, "duplicate_probability");
  check_probability(options.burst.p_good_to_bad, "burst.p_good_to_bad");
  check_probability(options.burst.p_bad_to_good, "burst.p_bad_to_good");
  check_probability(options.burst.drop_in_bad, "burst.drop_in_bad");
  DFLP_CHECK_MSG(!options.burst.enabled() || options.burst.p_bad_to_good > 0.0,
                 "FaultPlan: burst.p_bad_to_good must be > 0 when burst loss "
                 "is enabled (a link would stay bad forever)");
  check_probability(options.random_crash_fraction, "random_crash_fraction");
  for (const PartitionWindow& w : options.partitions) {
    DFLP_CHECK_MSG(w.begin < w.end,
                   "FaultPlan: partition window [" << w.begin << ", " << w.end
                                                   << ") is empty");
  }
}

FaultPlan::FaultPlan(Options options, std::uint64_t network_seed,
                     std::size_t num_nodes)
    : options_(std::move(options)), network_seed_(network_seed) {
  validate_fault_options(options_);
  plan_seed_ = derive_stream_seed(network_seed_, options_.fault_seed,
                                  0xFA017B1A7FA017B3ULL);

  const auto n = static_cast<NodeId>(num_nodes);
  std::vector<std::uint64_t> crash_round(
      num_nodes, std::numeric_limits<std::uint64_t>::max());
  for (const CrashEvent& e : options_.crashes) {
    DFLP_CHECK_MSG(e.node >= 0 && e.node < n,
                   "FaultPlan: crash event for node " << e.node
                                                      << " out of range, n="
                                                      << n);
    auto& r = crash_round[static_cast<std::size_t>(e.node)];
    r = std::min(r, e.round);
  }
  if (options_.random_crash_fraction > 0.0) {
    for (std::size_t i = 0; i < num_nodes; ++i) {
      Rng rng(derive_stream_seed(plan_seed_ ^ kCrashSalt, i, 0));
      if (!rng.bernoulli(options_.random_crash_fraction)) continue;
      std::uint64_t when = options_.random_crash_round;
      if (options_.random_crash_round_span > 0) {
        when += rng.uniform_u64(options_.random_crash_round_span + 1);
      }
      auto& r = crash_round[i];
      r = std::min(r, when);
    }
  }
  for (std::size_t i = 0; i < num_nodes; ++i) {
    if (crash_round[i] != std::numeric_limits<std::uint64_t>::max()) {
      crash_schedule_.push_back(
          {static_cast<NodeId>(i), crash_round[i]});
    }
  }
  std::sort(crash_schedule_.begin(), crash_schedule_.end(),
            [](const CrashEvent& a, const CrashEvent& b) {
              if (a.round != b.round) return a.round < b.round;
              return a.node < b.node;
            });
}

FaultPlan::SenderCoins FaultPlan::begin_sender(NodeId sender,
                                               std::uint64_t round) const {
  const auto s = static_cast<std::uint64_t>(sender);
  return SenderCoins{
      Rng(derive_stream_seed(network_seed_ ^ kIidDropSalt, s, round)),
      Rng(derive_stream_seed(plan_seed_ ^ kDuplicateSalt, s, round))};
}

bool FaultPlan::partitioned(NodeId src, NodeId dst,
                            std::uint64_t round) const {
  bool inside = false;
  for (const PartitionWindow& w : options_.partitions) {
    if (round >= w.begin && round < w.end) {
      inside = true;
      break;
    }
  }
  if (!inside) return false;
  const auto side = [&](NodeId v) {
    return derive_stream_seed(plan_seed_ ^ kPartitionSalt,
                              static_cast<std::uint64_t>(v), 0) &
           1ULL;
  };
  return side(src) != side(dst);
}

bool FaultPlan::link_bad(NodeId src, NodeId dst, std::uint64_t round) {
  const std::uint64_t key = link_key(src, dst);
  auto [it, inserted] = burst_state_.try_emplace(key);
  LinkState& state = it->second;
  // Fast-forward the chain with one coin per elapsed round, each drawn from
  // its own (link, round) stream — the evolution is independent of when
  // (or whether) intermediate rounds were queried. Rounds start good.
  const std::uint64_t from = inserted ? 0 : state.last_round + 1;
  for (std::uint64_t r = from; r <= round; ++r) {
    Rng rng(derive_stream_seed(plan_seed_ ^ kBurstChainSalt, key, r));
    state.bad = state.bad ? !rng.bernoulli(options_.burst.p_bad_to_good)
                          : rng.bernoulli(options_.burst.p_good_to_bad);
  }
  state.last_round = round;
  return state.bad;
}

FaultPlan::Fate FaultPlan::fate(SenderCoins& coins, NodeId src, NodeId dst,
                                std::uint64_t round) {
  Fate f;
  // Each hazard draws from its own stream, so enabling one never perturbs
  // another's coin sequence. The i.i.d. coin in particular is drawn exactly
  // once per staged message copy whenever drop_probability > 0 — the legacy
  // stream contract.
  if (options_.drop_probability > 0.0 &&
      coins.iid.bernoulli(options_.drop_probability)) {
    f.dropped = true;
  }
  if (!f.dropped && partitioned(src, dst, round)) f.dropped = true;
  if (!f.dropped && options_.burst.enabled() && link_bad(src, dst, round)) {
    if (options_.burst.drop_in_bad >= 1.0) {
      f.dropped = true;
    } else {
      Rng rng(derive_stream_seed(plan_seed_ ^ kBurstDropSalt,
                                 link_key(src, dst), round));
      if (rng.bernoulli(options_.burst.drop_in_bad)) f.dropped = true;
    }
  }
  if (!f.dropped && options_.duplicate_probability > 0.0 &&
      coins.dup.bernoulli(options_.duplicate_probability)) {
    f.duplicated = true;
  }
  return f;
}

}  // namespace dflp::net
