// Deterministic synchronous message-passing runtime (CONGEST model).
//
// Semantics
// ---------
// Time proceeds in synchronous rounds. In round r every non-halted node is
// invoked once with the batch of messages addressed to it that were sent in
// round r-1 (round 0 delivers an empty inbox — it is the initialization
// round). During its invocation a node may send at most
// `Options::max_msgs_per_edge_per_round` messages (default 1, the classic
// CONGEST allowance) to each of its neighbours, each within the per-message
// bit budget. Execution stops when every node has halted and no messages are
// in flight, or when `max_rounds` elapses.
//
// Step/commit architecture
// ------------------------
// Each round runs in two phases. The *step* phase invokes every live node,
// which writes its sends and halt request into a private per-node
// `RoundBuffer` (netsim/round_buffer.h) — nodes share no mutable transport
// state, so the step phase is executed over contiguous shards of the live
// list by a `ParallelExecutor` (netsim/executor.h) with
// `Options::num_threads` threads (default 1). The *commit* phase then
// delivers the staged sends by counting sort into a flat message arena
// (below): fault injection is applied and metrics are accounted in
// canonical node-id order, then surviving messages are scattered into next
// round's arena.
//
// Flat-arena transport
// --------------------
// Inboxes are not per-node vectors but disjoint slices of one contiguous,
// double-buffered `std::vector<Message>` arena laid out CSR-style. The
// commit phase runs three passes:
//   1. *tally* (serial, canonical sender order): draw the fault coin for
//      every staged message, account metrics, and count survivors per
//      destination;
//   2. *layout*: retire the consumed arena's slices and prefix-sum the new
//      counts into (begin, count) slices — only destinations that received
//      messages are touched, via an explicit touched-destination list;
//   3. *scatter*: copy surviving messages into their slices. Each
//      destination's cursor is private to the node-id shard that owns it,
//      so the scatter runs on the same `ParallelExecutor` as the step
//      phase; every shard scans the staged buffers in canonical order, so
//      each slice is filled in ascending-sender order with ties in
//      send-call order — exactly the order the old per-node mailboxes
//      accumulated, and already the canonical `kBySource` delivery order,
//      so `kBySource` needs no per-inbox sort at all.
// Per-round transport work is O(live nodes + messages), never O(N): the
// engine iterates an explicit live-node list (halted nodes are compacted
// out), and quiescence is an O(1) check of the maintained live/in-flight
// counters rather than a scan.
//
// Determinism
// -----------
// The execution is a pure function of (topology, processes, options.seed) —
// bit-identical for every thread count. Three explicit stream families
// carry all randomness:
//   * node coins:     `ctx.rng()` draws from a persistent per-node stream
//                     derived once as split(seed, node);
//   * inbox shuffle:  `kRandomShuffle` permutes node v's round-r arena
//                     slice with a fresh stream derived from (seed, v, r);
//   * fault drops:    each message sent by node u in round r is dropped
//                     with a fresh stream derived from (seed, u, r), drawn
//                     in send order.
// Because every stream is keyed by (seed, node, round) rather than drawn
// from a shared generator, no draw depends on the order nodes were stepped.
// `kBySource` delivers each slice as laid out (ascending source — the
// canonical order), `kReverseSource` is a cheap adversary for
// order-sensitivity tests.
//
// Resume semantics
// ----------------
// `run()` returning (quiescence or max_rounds) always leaves the engine at
// a round boundary: every staged send has been committed into the arena,
// so calling `run()` again continues the *same* execution — the next call
// picks up at round `r+1` with the in-flight messages intact. Multi-stage
// pipelines rely on this; tests/netsim_test.cc pins it.
//
// Fault injection
// ---------------
// `Options::faults` configures a seeded, deterministic FaultPlan
// (netsim/fault.h): i.i.d. and burst (Gilbert–Elliott) message loss,
// bipartition windows, message duplication, and crash-stop node failures.
// Message hazards are applied by the commit tally in canonical sender
// order; crash events remove nodes at the start of their scheduled round.
// The paper's model is reliable — algorithms that must survive loss opt
// into the ReliableChannel adapter (netsim/reliable.h), which recovers via
// acks and retransmissions; without it, tests use faults to verify the
// simulator's accounting and that the algorithms fail *loudly*.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "netsim/fault.h"
#include "netsim/message.h"
#include "netsim/metrics.h"

namespace dflp::net {

class Network;
class ParallelExecutor;
class RoundBuffer;
class Tracer;

/// Transport abstraction NodeContext delegates to. The synchronous Network
/// hands each node a private RoundBuffer implementing it; the
/// alpha-synchronizer (netsim/async.h) stages its wrapped protocol's sends
/// the same way, so the *same* Process code runs in both worlds.
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  virtual void sink_send(NodeId from, NodeId to, std::uint8_t kind,
                         std::array<std::int64_t, 3> fields, int bits) = 0;
  /// Stage the same payload to every neighbour. The default forwards to
  /// sink_send per neighbour; RoundBuffer overrides it with a fast path
  /// that validates the payload once and stages `degree` copies.
  virtual void sink_broadcast(NodeId from, std::span<const NodeId> neighbors,
                              std::uint8_t kind,
                              std::array<std::int64_t, 3> fields, int bits) {
    for (NodeId nb : neighbors) sink_send(from, nb, kind, fields, bits);
  }
  virtual void sink_halt(NodeId node) = 0;
  /// Stage a transport-layer frame (a Message with `has_header` set) as
  /// built by the reliable channel. Only transports that carry framed
  /// traffic implement it; the default rejects.
  virtual void sink_frame(NodeId from, const Message& frame);
  /// Record an algorithm-phase annotation (netsim/trace.h). Purely
  /// observational: no message, no bits, no randomness. The default drops
  /// it; RoundBuffer captures it when the run is traced with
  /// `Tracer(capture_phases=true)`.
  virtual void sink_annotate(NodeId node, std::string_view phase) {
    (void)node;
    (void)phase;
  }
};

/// Per-invocation view a process gets of its node. Created fresh by the
/// transport for every (node, round); cheap to copy around by reference.
class NodeContext {
 public:
  [[nodiscard]] NodeId self() const noexcept { return self_; }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::span<const NodeId> neighbors() const noexcept {
    return neighbors_;
  }
  [[nodiscard]] int degree() const noexcept {
    return static_cast<int>(neighbors_.size());
  }

  /// Per-node private randomness (stable across runs with the same seed).
  [[nodiscard]] Rng& rng() noexcept { return *rng_; }

  /// Queue a message for delivery next round. `to` must be a neighbour.
  /// `bits` defaults to the honest minimum for the payload; passing a larger
  /// value models padding, passing a smaller one throws.
  void send(NodeId to, std::uint8_t kind,
            std::array<std::int64_t, 3> fields = {0, 0, 0}, int bits = -1);

  /// Send the same payload to every neighbour.
  void broadcast(std::uint8_t kind,
                 std::array<std::int64_t, 3> fields = {0, 0, 0},
                 int bits = -1);

  /// Stage a reliable-transport frame to `frame.dst` (must be a
  /// neighbour). The frame's header is billed into its wire size; the
  /// per-edge allowance and bit budget apply as for send().
  void send_frame(const Message& frame);

  /// Mark this node as done. A halted node is no longer stepped; delivery
  /// to a halted node is permitted but the inbox is discarded.
  void halt() noexcept;

  /// Mark an algorithm phase for this (node, round) — e.g. "offer",
  /// "accept", "open". Free when the run is untraced (a virtual call into a
  /// no-op); when traced with phase capture the label is aggregated into
  /// the round's trace record. `phase` must outlive the step — use string
  /// literals. Never affects messages, metrics, or randomness.
  void annotate(std::string_view phase) { sink_->sink_annotate(self_, phase); }

  /// Constructs a context over any transport. Library users normally never
  /// build one — Network and the synchronizer do.
  NodeContext(MessageSink& sink, NodeId self, std::uint64_t round,
              std::span<const NodeId> neighbors, Rng& rng)
      : sink_(&sink), self_(self), round_(round), neighbors_(neighbors),
        rng_(&rng) {}

 private:
  MessageSink* sink_;
  NodeId self_;
  std::uint64_t round_;
  std::span<const NodeId> neighbors_;
  Rng* rng_;
};

/// A node program. Implementations keep their protocol state as members and
/// react to one round at a time.
class Process {
 public:
  virtual ~Process() = default;

  /// Called once per round while the node is live. `inbox` holds messages
  /// sent to this node in the previous round (empty in round 0); the span
  /// points into the engine's delivery arena and is valid only for the
  /// duration of the call. Under a multi-threaded engine the call may
  /// happen on a worker thread; a process may freely touch its own members
  /// and its NodeContext but must not reach into other nodes' state.
  virtual void on_round(NodeContext& ctx, std::span<const Message> inbox) = 0;
};

/// How each node's inbox is ordered before delivery.
enum class DeliveryOrder : std::uint8_t {
  kBySource,       ///< ascending source id (canonical deterministic order)
  kRandomShuffle,  ///< per-(seed, node, round) seeded shuffle per inbox
  kReverseSource,  ///< descending source id (simple adversary)
};

class Network final {
 public:
  struct Options {
    /// Per-message budget in bits. The canonical CONGEST budget for an
    /// N-node network is `congest_bit_budget(N)`.
    int bit_budget = 64;
    /// Messages allowed per directed edge per round (CONGEST: 1).
    int max_msgs_per_edge_per_round = 1;
    DeliveryOrder delivery = DeliveryOrder::kBySource;
    /// Fault injection plan (default: no faults — the paper's reliable
    /// model). Validated at finalize().
    FaultPlan::Options faults;
    /// Seed for node RNG streams, delivery shuffles and fault injection.
    std::uint64_t seed = 1;
    /// Threads for the step phase and the commit scatter (>= 1). Results
    /// are bit-identical for every value; 1 runs inline with no pool.
    int num_threads = 1;
    /// Optional round tracer (netsim/trace.h), not owned; must outlive the
    /// network. nullptr (the default) disables tracing at the cost of one
    /// pointer test per round. Tracing is purely observational — it never
    /// changes the execution (see the trace header's cost contract).
    Tracer* tracer = nullptr;
  };

  Network(std::size_t num_nodes, Options options);
  Network(Network&&) noexcept;
  Network& operator=(Network&&) noexcept;
  ~Network();

  /// Adds an undirected edge. Must be called before finalize(). Self loops
  /// and duplicate edges are rejected.
  void add_edge(NodeId u, NodeId v);

  /// Freezes the topology (builds adjacency), validates the options
  /// (budget, allowance, threads, fault plan — throwing CheckError with the
  /// offending value), binds the fault plan, derives per-node RNGs and
  /// allocates the per-node round buffers.
  /// Must be called exactly once, before set_process()/run().
  void finalize();

  /// Installs the program for node `id` (finalize() first).
  void set_process(NodeId id, std::unique_ptr<Process> process);

  /// Runs until quiescence (all nodes halted, no messages in flight) or
  /// until `max_rounds` have executed. Returns the metrics of this run.
  /// Calling run() again resumes the same execution (see the header
  /// comment's resume semantics).
  NetMetrics run(std::uint64_t max_rounds);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return processes_.size();
  }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }
  [[nodiscard]] std::span<const NodeId> neighbors_of(NodeId id) const;
  [[nodiscard]] bool halted(NodeId id) const;
  [[nodiscard]] bool all_halted() const noexcept {
    return live_nodes_.empty();
  }
  /// Number of non-halted nodes (O(1); the engine maintains the live list).
  [[nodiscard]] std::size_t live_node_count() const noexcept {
    return live_nodes_.size();
  }
  /// Messages currently resident in the delivery arena (O(1)).
  [[nodiscard]] std::uint64_t inflight_messages() const noexcept {
    return inflight_messages_;
  }
  /// Instrumentation: cumulative count of per-node touches the commit
  /// phase performed (live buffers drained + destination slices laid out).
  /// Tests use it to pin that transport work is O(live + messages) per
  /// round rather than O(num_nodes).
  [[nodiscard]] std::uint64_t transport_touches() const noexcept {
    return transport_touches_;
  }
  [[nodiscard]] const NetMetrics& cumulative_metrics() const noexcept {
    return cumulative_;
  }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// Access to an installed process, e.g. to read out results after run().
  [[nodiscard]] Process& process(NodeId id);
  [[nodiscard]] const Process& process(NodeId id) const;

 private:
  /// Adjacency lookup without the public accessor's finalize/range checks;
  /// run() validates `finalized_` once, so the per-node step loop skips
  /// per-call checking.
  [[nodiscard]] std::span<const NodeId> neighbors_unchecked(
      std::size_t i) const noexcept {
    return {adj_.data() + adj_offset_[i],
            static_cast<std::size_t>(adj_offset_[i + 1] - adj_offset_[i])};
  }

  /// Node i's mutable slice of the delivery arena (empty when no messages
  /// arrived; the begin offset is stale then and must not be dereferenced).
  [[nodiscard]] std::span<Message> inbox_slice(std::size_t i) noexcept {
    const auto count = static_cast<std::size_t>(slice_count_[i]);
    if (count == 0) return {};
    return {arena_.data() + slice_begin_[i], count};
  }

  void order_inbox(std::span<Message> inbox, NodeId node) const;

  Options options_;
  bool finalized_ = false;
  std::size_t num_edges_ = 0;

  // CSR adjacency (sorted neighbour lists).
  std::vector<std::pair<NodeId, NodeId>> edge_buffer_;  // pre-finalize
  std::vector<std::int32_t> adj_offset_;
  std::vector<NodeId> adj_;

  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Rng> node_rngs_;
  std::vector<std::uint8_t> halted_;
  std::vector<RoundBuffer> buffers_;

  // Double-buffered flat delivery arena: arena_ holds round r's inbound
  // messages as disjoint per-destination slices (slice_begin_/slice_count_,
  // valid for the destinations listed in touched_); the commit scatter
  // fills next_arena_ and the two swap each round. dst_count_ is the
  // counting-sort tally (all-zero between commits), dst_cursor_ the
  // per-destination scatter cursors. When fault injection is active,
  // survivors_ collects the messages that passed their coin flip, in
  // canonical send order, so the scatter reads one contiguous array and
  // the coins are drawn exactly once; fault-free rounds scatter straight
  // from the staged buffers and leave survivors_ empty.
  std::vector<Message> arena_;
  std::vector<Message> next_arena_;
  std::vector<Message> survivors_;
  std::vector<std::size_t> slice_begin_;
  std::vector<std::int32_t> slice_count_;
  std::vector<std::int32_t> dst_count_;
  std::vector<std::size_t> dst_cursor_;
  std::vector<NodeId> touched_;
  std::vector<NodeId> next_touched_;

  // Fault injection, bound at finalize(); crash_cursor_ walks the sorted
  // crash schedule as rounds advance.
  FaultPlan fault_plan_;
  std::size_t crash_cursor_ = 0;

  // Non-halted nodes in ascending id order; compacted when nodes halt.
  std::vector<NodeId> live_nodes_;
  // Per-round scratch: nodes whose step requested a halt, collected by the
  // commit tally so the halt pass only visits them.
  std::vector<NodeId> halt_requests_;
  std::uint64_t inflight_messages_ = 0;
  std::uint64_t transport_touches_ = 0;

  // Lazily created on first run() (keeps the class cheaply movable before
  // any execution starts).
  std::unique_ptr<ParallelExecutor> executor_;

  std::uint64_t round_ = 0;
  NetMetrics cumulative_;
};

/// The canonical CONGEST per-message budget for an N-node network:
/// 4 * ceil(log2(N + 2)) + 16 bits. The constant leaves room for an opcode
/// and up to three log-sized payload words, mirroring the O(log N) bound.
[[nodiscard]] int congest_bit_budget(std::size_t num_nodes) noexcept;

}  // namespace dflp::net
