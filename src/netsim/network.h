// Deterministic synchronous message-passing runtime (CONGEST model).
//
// Semantics
// ---------
// Time proceeds in synchronous rounds. In round r every non-halted node is
// invoked once with the batch of messages addressed to it that were sent in
// round r-1 (round 0 delivers an empty inbox — it is the initialization
// round). During its invocation a node may send at most
// `Options::max_msgs_per_edge_per_round` messages (default 1, the classic
// CONGEST allowance) to each of its neighbours, each within the per-message
// bit budget. Execution stops when every node has halted and no messages are
// in flight, or when `max_rounds` elapses.
//
// Step/commit architecture
// ------------------------
// Each round runs in two phases. The *step* phase invokes every live node,
// which writes its sends and halt request through a `RoundBuffer`
// (netsim/round_buffer.h) into its shard's private `StageLog` — shards of
// distinct workers share no mutable transport state, so the step phase is
// executed over contiguous shards of the live list by a `ParallelExecutor`
// (netsim/executor.h) with `Options::num_threads` threads (default 1). The
// *commit* phase then delivers the staged sends by counting sort into the
// structure-of-arrays arena (below): fault injection is applied and metrics
// are accounted in canonical node-id order, then surviving records are
// scattered into next round's arena.
//
// Structure-of-arrays arena
// -------------------------
// The transport never moves 80-byte `Message` objects in bulk. Staging
// stores packed 40-byte `WireRecord`s (netsim/message.h) contiguously per
// step shard in a `StageLog`; a broadcast stages ONE flagged record, not
// `degree` copies, and its per-edge CONGEST bill (allowance, message count,
// bit sum) is settled analytically at stage time — batched per edge, not
// per copy. The rare TransportHeader of reliable-channel frames lives in a
// sparse side list keyed by record index, so ordinary traffic never pays
// for it. The delivery arena itself is a double-buffered permutation of
// *slots* — `const WireRecord*` entries laid out CSR-style as disjoint
// per-destination slices — and the commit phase runs column-wise passes:
//   1. *tally/merge* (serial, canonical shard order): fault-free rounds sum
//      the per-log message/bit aggregates and merge the per-log destination
//      histograms that staging already counted (O(logs + touched dsts), not
//      O(messages)); rounds with message hazards instead walk the records
//      in canonical order, drawing the per-(seed, sender, round) fault
//      coins in send order — broadcasts expand here, one coin per copy in
//      adjacency order, exactly the legacy per-copy stream;
//   2. *layout*: retire the consumed arena's slices and prefix-sum the new
//      counts into (begin, count) slices. Sparse rounds visit only the
//      first-touch list of destinations; dense rounds (survivors >= N/8)
//      switch to one ascending scan of the count column — still O(live +
//      messages) by the gate, and ascending slice order is friendlier to
//      the scatter;
//   3. *scatter*: write each surviving record's address into its slice,
//      expanding broadcast records over the sender's adjacency. Each
//      destination's cursor is private to the node-id shard that owns it,
//      so the scatter runs on the same `ParallelExecutor` as the step
//      phase; shards scan the logs in canonical order, so each slice fills
//      in ascending-sender order with ties in send-call order — exactly the
//      order the old per-node mailboxes accumulated, and already the
//      canonical `kBySource` delivery order, so `kBySource` needs no
//      per-inbox sort at all.
// At delivery the next step phase *gathers*: each node's slot slice is
// materialized into a per-shard `Message` scratch (the only place the wide
// view is built), ordered per `DeliveryOrder`, and handed to the process.
//
// Broadcast-heavy fault-free rounds skip the layout and scatter passes
// entirely: when the *neighbour-scan cost* — every staged record read once
// per neighbour of its sender, tracked per log as `StageLog::scan_cost` —
// is within 2x the survivor count, the commit only merges the aggregate
// counters and flips the round into scan mode. The next gather then walks
// each node's in-neighbours (sorted adjacency = ascending source, the
// canonical order) and reads their staged record ranges (`RecRange`,
// stamped per node by the step phase) straight out of the logs, keeping
// broadcast records folded end to end: a degree-d broadcast costs one
// 40-byte record write at stage time and d reads at gather time, with no
// per-copy slot ever written. The gate is a pure function of round totals,
// so the mode choice — like everything else — is thread-count invariant;
// unicast-dominated rounds (where scanning would over-read) keep the
// counting-sort arena path above.
// Per-round transport work is O(live nodes + messages), never O(N): the
// engine iterates an explicit live-node list (halted nodes are compacted
// out), and quiescence is an O(1) check of the maintained live/in-flight
// counters rather than a scan.
//
// Recycling: the logs, the slot permutations, the scratch vectors and the
// per-edge allowance slab all retain capacity across rounds and across
// run() calls, so steady-state commits allocate nothing
// (tests/arena_alloc_test.cc pins this).
//
// Determinism
// -----------
// The execution is a pure function of (topology, processes, options.seed) —
// bit-identical for every thread count. Three explicit stream families
// carry all randomness:
//   * node coins:     `ctx.rng()` draws from a persistent per-node stream
//                     derived once as split(seed, node);
//   * inbox shuffle:  `kRandomShuffle` permutes node v's round-r arena
//                     slice with a fresh stream derived from (seed, v, r);
//   * fault drops:    each message sent by node u in round r is dropped
//                     with a fresh stream derived from (seed, u, r), drawn
//                     in send order.
// Because every stream is keyed by (seed, node, round) rather than drawn
// from a shared generator, no draw depends on the order nodes were stepped.
// `kBySource` delivers each slice as laid out (ascending source — the
// canonical order), `kReverseSource` is a cheap adversary for
// order-sensitivity tests.
//
// Resume semantics
// ----------------
// `run()` returning (quiescence or max_rounds) always leaves the engine at
// a round boundary: every staged send has been committed into the arena,
// so calling `run()` again continues the *same* execution — the next call
// picks up at round `r+1` with the in-flight messages intact. Multi-stage
// pipelines rely on this; tests/netsim_test.cc pins it.
//
// Congested-clique topology
// -------------------------
// `Options::topology = Topology::kClique` declares the complete graph on N
// nodes without materializing it: no O(N^2) edge list, no CSR adjacency, no
// per-directed-edge allowance slab. Adjacency is answered from one shared
// rotation array of 2N-1 node ids (`clique_adj_[k] = k mod N`), so node i's
// neighbour span is the N-1 ids starting after its own — every node except
// i, beginning at i+1 and wrapping. The span is a *rotation*, not sorted;
// engine-internal expansion (scan gathers, hazard coins, histogram rebuilds,
// the commit scatter) instead iterates destinations in ascending id order
// skipping the sender, which keeps `kBySource` the canonical ascending-source
// order and the per-copy fault-coin stream identical to an explicit clique.
// Per-link legality is enforced exactly as in explicit topologies — the
// RoundBuffer charges each (sender, destination) pair against
// `max_msgs_per_edge_per_round` through an epoch-stamped per-shard scratch
// (O(1) per send, no O(N) zero-fill per node) — and a broadcast is still ONE
// staged record whose N-1 per-link bills (allowance, messages, bits) are
// settled analytically at stage time. add_edge() is rejected; everything
// else (faults, delivery orders, tracing, determinism across thread counts)
// composes unchanged.
//
// Fault injection
// ---------------
// `Options::faults` configures a seeded, deterministic FaultPlan
// (netsim/fault.h): i.i.d. and burst (Gilbert–Elliott) message loss,
// bipartition windows, message duplication, and crash-stop node failures.
// Message hazards are applied by the commit tally in canonical sender
// order; crash events remove nodes at the start of their scheduled round.
// The paper's model is reliable — algorithms that must survive loss opt
// into the ReliableChannel adapter (netsim/reliable.h), which recovers via
// acks and retransmissions; without it, tests use faults to verify the
// simulator's accounting and that the algorithms fail *loudly*.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "netsim/fault.h"
#include "netsim/message.h"
#include "netsim/metrics.h"

namespace dflp::net {

class Network;
class ParallelExecutor;
class Tracer;

/// How the communication graph is declared.
enum class Topology : std::uint8_t {
  /// Explicit edge list via add_edge(); CSR adjacency built at finalize().
  kExplicit,
  /// Congested clique: every pair of nodes is adjacent, represented
  /// implicitly (see the header comment). add_edge() is rejected.
  kClique,
};

/// Per-step-shard allowance scratch for clique topology: the per-directed-
/// edge CSR slab would be O(N^2), so clique sends are charged against a
/// destination-indexed counter column instead. Entries are epoch-stamped —
/// RoundBuffer::begin() bumps `epoch` and a stale stamp reads as zero — so
/// re-arming per node is O(1), not an O(N) zero-fill. Broadcast allowance is
/// tracked by the RoundBuffer as a per-step counter added on top of every
/// destination's unicast count.
struct CliqueScratch {
  std::vector<std::uint64_t> stamp;  ///< last epoch that wrote counts[dst]
  std::vector<std::int8_t> counts;   ///< unicasts staged to dst this epoch
  std::uint64_t epoch = 0;           ///< bumped once per (node, round) step
};

/// One TransportHeader parked in a staging log's sparse side list, keyed by
/// the index of its record within the log (ascending). Only reliable-channel
/// frames produce entries; protocol-only runs never touch the list.
struct StagedHeader {
  std::uint32_t record = 0;  ///< index into StageLog::records
  TransportHeader hdr;
};

/// Contiguous staging log filled by one step shard per round: every live
/// node of the shard appends its sends (as packed WireRecords), halts and
/// phase annotations here through its RoundBuffer. Records are grouped per
/// sender in ascending live-list order with ties in send-call order, which
/// is exactly the canonical order the commit phase consumes. The engine
/// double-buffers two log sets by round parity so last round's records stay
/// addressable (the delivery arena points into them) while this round
/// stages. All vectors retain capacity across rounds.
struct StageLog {
  std::vector<WireRecord> records;
  std::vector<StagedHeader> headers;  ///< sparse, ascending record index
  std::vector<NodeId> halts;          ///< nodes that requested a halt
  std::vector<std::string_view> annotations;  ///< traced phase labels

  // Stage-time destination histogram, maintained only under
  // RoundBuffer::Limits::tally_destinations (the engine's fault-free
  // commit merges it; hazard commits re-count per surviving copy).
  // dst_count is sized to the node count by the engine and kept all-zero
  // between commits; touched lists its nonzero entries in first-touch
  // order. Standalone logs (synchronizer, reliable channel) leave both
  // empty.
  std::vector<std::int32_t> dst_count;
  std::vector<NodeId> touched;

  // Batched CONGEST accounting, summed analytically at stage time (a
  // broadcast adds degree * bits in O(1)).
  std::uint64_t messages = 0;  ///< staged sends incl. broadcast fan-out
  std::uint64_t bits_sum = 0;  ///< declared bits over all staged sends
  int max_bits = 0;            ///< largest staged declared size
  /// Cost of delivering this log by neighbour scan instead of by scatter:
  /// every record is read once by each of its sender's neighbours, so each
  /// staged record adds degree(sender). The commit compares the summed cost
  /// against the survivor count to pick the round's delivery mode.
  std::uint64_t scan_cost = 0;

  /// Live-list begin of the shard that claimed this log — the commit phase
  /// orders claimed logs by it to recover the canonical serial order.
  std::size_t range_begin = 0;

  /// Clears contents for reuse, retaining capacity. O(touched), not O(N):
  /// only the histogram entries listed in `touched` are rezeroed.
  void reset() noexcept;
};

/// Transport abstraction NodeContext delegates to. The synchronous Network
/// hands each stepped node a RoundBuffer implementing it (writing into the
/// shard's StageLog); the alpha-synchronizer (netsim/async.h) stages its
/// wrapped protocol's sends the same way, so the *same* Process code runs
/// in both worlds.
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  virtual void sink_send(NodeId from, NodeId to, std::uint8_t kind,
                         std::array<std::int64_t, 3> fields, int bits) = 0;
  /// Stage the same payload to every neighbour. The default forwards to
  /// sink_send per neighbour; RoundBuffer overrides it with a fast path
  /// that validates the payload once and stages `degree` copies.
  virtual void sink_broadcast(NodeId from, std::span<const NodeId> neighbors,
                              std::uint8_t kind,
                              std::array<std::int64_t, 3> fields, int bits) {
    for (NodeId nb : neighbors) sink_send(from, nb, kind, fields, bits);
  }
  virtual void sink_halt(NodeId node) = 0;
  /// Stage a transport-layer frame (a Message with `has_header` set) as
  /// built by the reliable channel. Only transports that carry framed
  /// traffic implement it; the default rejects.
  virtual void sink_frame(NodeId from, const Message& frame);
  /// Record an algorithm-phase annotation (netsim/trace.h). Purely
  /// observational: no message, no bits, no randomness. The default drops
  /// it; RoundBuffer captures it when the run is traced with
  /// `Tracer(capture_phases=true)`.
  virtual void sink_annotate(NodeId node, std::string_view phase) {
    (void)node;
    (void)phase;
  }
};

/// Per-invocation view a process gets of its node. Created fresh by the
/// transport for every (node, round); cheap to copy around by reference.
class NodeContext {
 public:
  [[nodiscard]] NodeId self() const noexcept { return self_; }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::span<const NodeId> neighbors() const noexcept {
    return neighbors_;
  }
  [[nodiscard]] int degree() const noexcept {
    return static_cast<int>(neighbors_.size());
  }

  /// Per-node private randomness (stable across runs with the same seed).
  [[nodiscard]] Rng& rng() noexcept { return *rng_; }

  /// Queue a message for delivery next round. `to` must be a neighbour.
  /// `bits` defaults to the honest minimum for the payload; passing a larger
  /// value models padding, passing a smaller one throws.
  void send(NodeId to, std::uint8_t kind,
            std::array<std::int64_t, 3> fields = {0, 0, 0}, int bits = -1);

  /// Send the same payload to every neighbour.
  void broadcast(std::uint8_t kind,
                 std::array<std::int64_t, 3> fields = {0, 0, 0},
                 int bits = -1);

  /// Stage a reliable-transport frame to `frame.dst` (must be a
  /// neighbour). The frame's header is billed into its wire size; the
  /// per-edge allowance and bit budget apply as for send().
  void send_frame(const Message& frame);

  /// Mark this node as done. A halted node is no longer stepped; delivery
  /// to a halted node is permitted but the inbox is discarded.
  void halt() noexcept;

  /// Mark an algorithm phase for this (node, round) — e.g. "offer",
  /// "accept", "open". Free when the run is untraced (a virtual call into a
  /// no-op); when traced with phase capture the label is aggregated into
  /// the round's trace record. `phase` must outlive the step — use string
  /// literals. Never affects messages, metrics, or randomness.
  void annotate(std::string_view phase) { sink_->sink_annotate(self_, phase); }

  /// Constructs a context over any transport. Library users normally never
  /// build one — Network and the synchronizer do.
  NodeContext(MessageSink& sink, NodeId self, std::uint64_t round,
              std::span<const NodeId> neighbors, Rng& rng)
      : sink_(&sink), self_(self), round_(round), neighbors_(neighbors),
        rng_(&rng) {}

 private:
  MessageSink* sink_;
  NodeId self_;
  std::uint64_t round_;
  std::span<const NodeId> neighbors_;
  Rng* rng_;
};

/// A node program. Implementations keep their protocol state as members and
/// react to one round at a time.
class Process {
 public:
  virtual ~Process() = default;

  /// Called once per round while the node is live. `inbox` holds messages
  /// sent to this node in the previous round (empty in round 0); the span
  /// points into the engine's delivery arena and is valid only for the
  /// duration of the call. Under a multi-threaded engine the call may
  /// happen on a worker thread; a process may freely touch its own members
  /// and its NodeContext but must not reach into other nodes' state.
  virtual void on_round(NodeContext& ctx, std::span<const Message> inbox) = 0;
};

/// How each node's inbox is ordered before delivery.
enum class DeliveryOrder : std::uint8_t {
  kBySource,       ///< ascending source id (canonical deterministic order)
  kRandomShuffle,  ///< per-(seed, node, round) seeded shuffle per inbox
  kReverseSource,  ///< descending source id (simple adversary)
};

class Network final {
 public:
  struct Options {
    /// Communication graph declaration: explicit edge list (default) or
    /// the implicit congested clique (see the header comment).
    Topology topology = Topology::kExplicit;
    /// Per-message budget in bits. The canonical CONGEST budget for an
    /// N-node network is `congest_bit_budget(N)`.
    int bit_budget = 64;
    /// Messages allowed per directed edge per round (CONGEST: 1).
    int max_msgs_per_edge_per_round = 1;
    DeliveryOrder delivery = DeliveryOrder::kBySource;
    /// Fault injection plan (default: no faults — the paper's reliable
    /// model). Validated at finalize().
    FaultPlan::Options faults;
    /// Seed for node RNG streams, delivery shuffles and fault injection.
    std::uint64_t seed = 1;
    /// Threads for the step phase and the commit scatter (>= 1). Results
    /// are bit-identical for every value; 1 runs inline with no pool.
    int num_threads = 1;
    /// Optional round tracer (netsim/trace.h), not owned; must outlive the
    /// network. nullptr (the default) disables tracing at the cost of one
    /// pointer test per round. Tracing is purely observational — it never
    /// changes the execution (see the trace header's cost contract).
    Tracer* tracer = nullptr;
  };

  Network(std::size_t num_nodes, Options options);
  Network(Network&&) noexcept;
  Network& operator=(Network&&) noexcept;
  ~Network();

  /// Adds an undirected edge. Must be called before finalize(). Self loops
  /// and duplicate edges are rejected, as is any call under
  /// Topology::kClique (the clique's edges are implicit).
  void add_edge(NodeId u, NodeId v);

  /// Freezes the topology (builds adjacency), validates the options
  /// (budget, allowance, threads, fault plan — throwing CheckError with the
  /// offending value), binds the fault plan, derives per-node RNGs and
  /// allocates the per-shard staging logs and arena slabs.
  /// Must be called exactly once, before set_process()/run().
  void finalize();

  /// Installs the program for node `id` (finalize() first).
  void set_process(NodeId id, std::unique_ptr<Process> process);

  /// Runs until quiescence (all nodes halted, no messages in flight) or
  /// until `max_rounds` have executed. Returns the metrics of this run.
  /// Calling run() again resumes the same execution (see the header
  /// comment's resume semantics).
  NetMetrics run(std::uint64_t max_rounds);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return processes_.size();
  }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }
  /// Node `id`'s adjacency. Explicit topologies return the sorted CSR
  /// neighbour list; the clique returns the implicit rotation
  /// [id+1, ..., N-1, 0, ..., id-1] — every node except `id`, unsorted.
  [[nodiscard]] std::span<const NodeId> neighbors_of(NodeId id) const;
  [[nodiscard]] bool halted(NodeId id) const;
  [[nodiscard]] bool all_halted() const noexcept {
    return live_nodes_.empty();
  }
  /// Number of non-halted nodes (O(1); the engine maintains the live list).
  [[nodiscard]] std::size_t live_node_count() const noexcept {
    return live_nodes_.size();
  }
  /// Messages currently resident in the delivery arena (O(1)).
  [[nodiscard]] std::uint64_t inflight_messages() const noexcept {
    return inflight_messages_;
  }
  /// Instrumentation: cumulative count of per-node touches the commit
  /// phase performed (live buffers drained + destination slices laid out).
  /// Tests use it to pin that transport work is O(live + messages) per
  /// round rather than O(num_nodes).
  [[nodiscard]] std::uint64_t transport_touches() const noexcept {
    return transport_touches_;
  }
  [[nodiscard]] const NetMetrics& cumulative_metrics() const noexcept {
    return cumulative_;
  }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// Access to an installed process, e.g. to read out results after run().
  [[nodiscard]] Process& process(NodeId id);
  [[nodiscard]] const Process& process(NodeId id) const;

 private:
  /// Adjacency lookup without the public accessor's finalize/range checks;
  /// run() validates `finalized_` once, so the per-node step loop skips
  /// per-call checking.
  [[nodiscard]] std::span<const NodeId> neighbors_unchecked(
      std::size_t i) const noexcept {
    if (clique_)
      return {clique_adj_.data() + i + 1, processes_.size() - 1};
    return {adj_.data() + adj_offset_[i],
            static_cast<std::size_t>(adj_offset_[i + 1] - adj_offset_[i])};
  }

  /// Materializes node i's inbox: gathers the WireRecords addressed by its
  /// slot slice of the permutation arena into `scratch` (grown as needed,
  /// never shrunk — the wide Message view exists only here) and returns the
  /// filled span. Framed slots pull their TransportHeader from the sparse
  /// header_slots_ table.
  [[nodiscard]] std::span<Message> gather_inbox(std::size_t i,
                                                std::vector<Message>& scratch);

  void order_inbox(std::span<Message> inbox, NodeId node) const;

  Options options_;
  bool finalized_ = false;
  std::size_t num_edges_ = 0;

  // CSR adjacency (sorted neighbour lists). Unused under Topology::kClique,
  // where adjacency is the shared rotation array below.
  std::vector<std::pair<NodeId, NodeId>> edge_buffer_;  // pre-finalize
  std::vector<std::int32_t> adj_offset_;
  std::vector<NodeId> adj_;

  // Clique topology: clique_adj_[k] = k mod N over 2N-1 entries, so node
  // i's neighbour span is clique_adj_[i+1 .. i+N-1] — O(N) storage for all
  // N implicit adjacency lists. clique_scratch_ holds one epoch-stamped
  // allowance column per step shard (claimed with the shard's StageLog).
  bool clique_ = false;
  std::vector<NodeId> clique_adj_;
  std::vector<CliqueScratch> clique_scratch_;

  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Rng> node_rngs_;
  std::vector<std::uint8_t> halted_;

  // A TransportHeader resident in the delivery arena, keyed by arena slot
  // (sorted ascending; binary-searched by the gather, and only when a slot
  // is flagged kWireHasHeader — protocol-only runs keep the table empty).
  struct HeaderSlot {
    std::size_t slot = 0;
    TransportHeader hdr;
  };

  // One record that survived its fault coins, with its resolved concrete
  // destination (broadcasts are expanded by the hazard tally) and its
  // header, if any. Points into the round's staging logs.
  struct Survivor {
    const WireRecord* rec = nullptr;
    const TransportHeader* hdr = nullptr;
    NodeId dst = kNoNode;
  };

  // Where one node's staged records live: (log, record range) within the
  // round's log set, written by the owning step shard right after the node
  // runs. `round` stamps the range so neighbour-scan gathers skip nodes
  // that did not step last round (halted, crashed, or never stamped);
  // double-buffered by round parity like the logs themselves, so this
  // round's writers never race last round's readers. The sender's first
  // record is replicated inline and the struct is cache-line aligned, so
  // the dominant one-record-per-sender case costs the scanning neighbour a
  // single random line read — no dependent stamp -> log -> record chain.
  struct alignas(64) RecRange {
    std::uint64_t round = ~std::uint64_t{0};
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    std::uint32_t li = 0;  ///< claimed-log index within the parity set
    WireRecord first;      ///< copy of records[lo], valid when hi > lo
  };
  static_assert(sizeof(RecRange) == 64, "RecRange should fill one line");

  // Structure-of-arrays delivery state — see the header comment.
  //
  // stage_logs_ holds two sets of per-shard staging logs, flipped by round
  // parity: the set staged in round r backs the arena consumed in round
  // r+1, so its records must outlive the next step phase. Shards claim a
  // log (and the matching inbox_scratch_ entry) through a per-round atomic
  // counter local to run(); the commit orders claimed logs by their
  // recorded live-range begin, so claim order never shows.
  //
  // arena_ is the slot permutation of round r's inbound records as disjoint
  // per-destination slices (slice_begin_/slice_count_, valid for the
  // destinations listed in touched_); the commit scatter fills next_arena_
  // and the two swap each round. dst_count_ is the counting-sort tally
  // (all-zero between commits), dst_cursor_ the per-destination scatter
  // cursors. edge_sends_slab_ is the CSR per-edge allowance scratch handed
  // to each node's RoundBuffer (offset adj_offset_[i]). survivors_ is
  // filled only on rounds with message hazards; fault-free rounds scatter
  // straight from the logs and leave it empty.
  std::array<std::vector<StageLog>, 2> stage_logs_;
  std::array<std::vector<RecRange>, 2> rec_ranges_;  ///< per-node, by parity
  std::vector<std::vector<Message>> inbox_scratch_;  ///< per step shard
  std::vector<std::int8_t> edge_sends_slab_;
  std::vector<const WireRecord*> arena_;
  std::vector<const WireRecord*> next_arena_;
  std::vector<HeaderSlot> header_slots_;
  std::vector<std::vector<HeaderSlot>> header_scratch_;  ///< per scatter shard
  std::vector<Survivor> survivors_;
  std::vector<std::size_t> log_order_;  ///< claimed logs by range_begin
  std::vector<std::size_t> slice_begin_;
  std::vector<std::int32_t> slice_count_;
  std::vector<std::int32_t> dst_count_;
  std::vector<std::size_t> dst_cursor_;
  std::vector<NodeId> touched_;
  std::vector<NodeId> next_touched_;

  // Round-r delivery mode, chosen by the commit of round r-1 (see the
  // header comment): false = gather from the arena's slot slices, true =
  // gather by scanning each in-neighbour's RecRange directly (broadcast-
  // heavy fault-free rounds, where it skips the tally merge, layout and
  // scatter passes outright). prev_logs_ points at the parity log set the
  // current gathers read from; refreshed at every round start.
  bool deliver_by_scan_ = false;
  const std::vector<StageLog>* prev_logs_ = nullptr;

  // Fault injection, bound at finalize(); crash_cursor_ walks the sorted
  // crash schedule as rounds advance.
  FaultPlan fault_plan_;
  std::size_t crash_cursor_ = 0;

  // Non-halted nodes in ascending id order; compacted when nodes halt.
  std::vector<NodeId> live_nodes_;
  // Per-round scratch: nodes whose step requested a halt, collected by the
  // commit tally so the halt pass only visits them.
  std::vector<NodeId> halt_requests_;
  std::uint64_t inflight_messages_ = 0;
  std::uint64_t transport_touches_ = 0;

  // Lazily created on first run() (keeps the class cheaply movable before
  // any execution starts).
  std::unique_ptr<ParallelExecutor> executor_;

  std::uint64_t round_ = 0;
  NetMetrics cumulative_;
};

/// The canonical CONGEST per-message budget for an N-node network:
/// 4 * ceil(log2(N + 2)) + 16 bits. The constant leaves room for an opcode
/// and up to three log-sized payload words, mirroring the O(log N) bound.
[[nodiscard]] int congest_bit_budget(std::size_t num_nodes) noexcept;

}  // namespace dflp::net
