// Deterministic synchronous message-passing runtime (CONGEST model).
//
// Semantics
// ---------
// Time proceeds in synchronous rounds. In round r every non-halted node is
// invoked once with the batch of messages addressed to it that were sent in
// round r-1 (round 0 delivers an empty inbox — it is the initialization
// round). During its invocation a node may send at most
// `Options::max_msgs_per_edge_per_round` messages (default 1, the classic
// CONGEST allowance) to each of its neighbours, each within the per-message
// bit budget. Execution stops when every node has halted and no messages are
// in flight, or when `max_rounds` elapses.
//
// Determinism
// -----------
// The runtime is single-threaded, nodes are stepped in id order, and each
// node owns a private RNG stream derived from (network seed, node id). With
// `DeliveryOrder::kBySource` the whole execution is a pure function of
// (topology, processes, seed). `kRandomShuffle` permutes each inbox with the
// *network* seed — still reproducible, but exercises order-independence.
// `kReverseSource` is a cheap adversary for order-sensitivity tests.
//
// Fault injection
// ---------------
// `Options::drop_probability` drops each message independently (seeded).
// The reconstructed algorithms are not fault-tolerant — the paper's model is
// reliable — but the tests use drops to verify the *simulator's* accounting
// and the algorithms' failure behaviour is graceful (they still terminate).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "netsim/message.h"
#include "netsim/metrics.h"

namespace dflp::net {

class Network;

/// Transport abstraction NodeContext delegates to. The synchronous Network
/// implements it directly; the alpha-synchronizer (netsim/async.h) provides
/// an asynchronous implementation so the *same* Process code runs in both
/// worlds.
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  virtual void sink_send(NodeId from, NodeId to, std::uint8_t kind,
                         std::array<std::int64_t, 3> fields, int bits) = 0;
  virtual void sink_halt(NodeId node) = 0;
};

/// Per-invocation view a process gets of its node. Created fresh by the
/// transport for every (node, round); cheap to copy around by reference.
class NodeContext {
 public:
  [[nodiscard]] NodeId self() const noexcept { return self_; }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::span<const NodeId> neighbors() const noexcept {
    return neighbors_;
  }
  [[nodiscard]] int degree() const noexcept {
    return static_cast<int>(neighbors_.size());
  }

  /// Per-node private randomness (stable across runs with the same seed).
  [[nodiscard]] Rng& rng() noexcept { return *rng_; }

  /// Queue a message for delivery next round. `to` must be a neighbour.
  /// `bits` defaults to the honest minimum for the payload; passing a larger
  /// value models padding, passing a smaller one throws.
  void send(NodeId to, std::uint8_t kind,
            std::array<std::int64_t, 3> fields = {0, 0, 0}, int bits = -1);

  /// Send the same payload to every neighbour.
  void broadcast(std::uint8_t kind,
                 std::array<std::int64_t, 3> fields = {0, 0, 0},
                 int bits = -1);

  /// Mark this node as done. A halted node is no longer stepped; delivery
  /// to a halted node is permitted but the inbox is discarded.
  void halt() noexcept;

  /// Constructs a context over any transport. Library users normally never
  /// build one — Network and the synchronizer do.
  NodeContext(MessageSink& sink, NodeId self, std::uint64_t round,
              std::span<const NodeId> neighbors, Rng& rng)
      : sink_(&sink), self_(self), round_(round), neighbors_(neighbors),
        rng_(&rng) {}

 private:
  MessageSink* sink_;
  NodeId self_;
  std::uint64_t round_;
  std::span<const NodeId> neighbors_;
  Rng* rng_;
};

/// A node program. Implementations keep their protocol state as members and
/// react to one round at a time.
class Process {
 public:
  virtual ~Process() = default;

  /// Called once per round while the node is live. `inbox` holds messages
  /// sent to this node in the previous round (empty in round 0).
  virtual void on_round(NodeContext& ctx, std::span<const Message> inbox) = 0;
};

/// How each node's inbox is ordered before delivery.
enum class DeliveryOrder : std::uint8_t {
  kBySource,       ///< ascending source id (canonical deterministic order)
  kRandomShuffle,  ///< seeded shuffle per inbox per round
  kReverseSource,  ///< descending source id (simple adversary)
};

class Network final : public MessageSink {
 public:
  struct Options {
    /// Per-message budget in bits. The canonical CONGEST budget for an
    /// N-node network is `congest_bit_budget(N)`.
    int bit_budget = 64;
    /// Messages allowed per directed edge per round (CONGEST: 1).
    int max_msgs_per_edge_per_round = 1;
    DeliveryOrder delivery = DeliveryOrder::kBySource;
    /// Independent drop probability per message (0 = reliable).
    double drop_probability = 0.0;
    /// Seed for node RNG streams, delivery shuffles and fault injection.
    std::uint64_t seed = 1;
  };

  Network(std::size_t num_nodes, Options options);

  /// Adds an undirected edge. Must be called before finalize(). Self loops
  /// and duplicate edges are rejected.
  void add_edge(NodeId u, NodeId v);

  /// Freezes the topology (builds adjacency) and derives per-node RNGs.
  /// Must be called exactly once, before set_process()/run().
  void finalize();

  /// Installs the program for node `id` (finalize() first).
  void set_process(NodeId id, std::unique_ptr<Process> process);

  /// Runs until quiescence (all nodes halted, no messages in flight) or
  /// until `max_rounds` have executed. Returns the metrics of this run.
  /// Calling run() again resumes (useful for multi-stage pipelines).
  NetMetrics run(std::uint64_t max_rounds);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return processes_.size();
  }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }
  [[nodiscard]] std::span<const NodeId> neighbors_of(NodeId id) const;
  [[nodiscard]] bool halted(NodeId id) const;
  [[nodiscard]] bool all_halted() const noexcept;
  [[nodiscard]] const NetMetrics& cumulative_metrics() const noexcept {
    return cumulative_;
  }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// Access to an installed process, e.g. to read out results after run().
  [[nodiscard]] Process& process(NodeId id);
  [[nodiscard]] const Process& process(NodeId id) const;

  // MessageSink: used by NodeContext during a node's round step.
  void sink_send(NodeId from, NodeId to, std::uint8_t kind,
                 std::array<std::int64_t, 3> fields, int bits) override;
  void sink_halt(NodeId node) override;

 private:
  [[nodiscard]] bool is_neighbor(NodeId u, NodeId v) const;

  Options options_;
  bool finalized_ = false;
  std::size_t num_edges_ = 0;

  // CSR adjacency (sorted neighbour lists).
  std::vector<std::pair<NodeId, NodeId>> edge_buffer_;  // pre-finalize
  std::vector<std::int32_t> adj_offset_;
  std::vector<NodeId> adj_;

  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Rng> node_rngs_;
  std::vector<std::uint8_t> halted_;

  // Double-buffered mailboxes.
  std::vector<std::vector<Message>> inboxes_;   // delivered this round
  std::vector<Message> outbox_;                 // sent this round
  // Per-(src-slot,dst) send counters for the CONGEST edge allowance;
  // reset each round. Indexed by position of dst in src's adjacency.
  std::vector<std::int8_t> edge_sends_;
  NodeId current_sender_ = kNoNode;

  Rng net_rng_;
  std::uint64_t round_ = 0;
  NetMetrics cumulative_;
};

/// The canonical CONGEST per-message budget for an N-node network:
/// 4 * ceil(log2(N + 2)) + 16 bits. The constant leaves room for an opcode
/// and up to three log-sized payload words, mirroring the O(log N) bound.
[[nodiscard]] int congest_bit_budget(std::size_t num_nodes) noexcept;

}  // namespace dflp::net
