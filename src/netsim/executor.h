// Deterministic fork-join executor for the round engine's step phase.
//
// Work is partitioned into contiguous index shards — one per worker — so a
// run over [0, n) touches every index exactly once and each worker's slice
// is a deterministic function of (n, num_threads). The pool is persistent:
// workers are spawned once and parked between rounds, so the per-round
// dispatch cost is two condition-variable handshakes, not thread churn.
//
// Determinism contract: the executor guarantees nothing about the relative
// timing of shards. Callers must make shard bodies independent (the step
// phase writes only per-node state) and do any order-sensitive merging
// afterwards (the commit phase runs serially in canonical order). If a
// shard throws, the remaining shards still finish and the exception of the
// lowest-indexed failing shard is rethrown — since each shard runs its
// indices in ascending order, this is exactly the error a serial in-order
// execution would have raised first.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace dflp::net {

class ParallelExecutor {
 public:
  /// Spawns `num_threads - 1` workers; the calling thread always executes
  /// the lowest shard itself. With num_threads <= 1 no threads are created
  /// and for_shards runs inline (exactly the historical serial engine).
  explicit ParallelExecutor(int num_threads);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  /// Runs `fn(begin, end)` over contiguous shards covering [0, n) and
  /// blocks until every shard finished. Rethrows the exception of the
  /// lowest-indexed failing shard, if any. The callable is borrowed for
  /// the duration of the call through a raw (function pointer, context)
  /// pair — no std::function, so the per-round dispatch never allocates
  /// (the steady-state zero-allocation contract in arena_alloc_test.cc
  /// covers this path).
  template <typename F>
  void for_shards(std::size_t n, F&& fn) {
    if (threads_.empty()) {
      if (n > 0) fn(0, n);
      return;
    }
    using Fn = std::remove_reference_t<F>;
    dispatch(n,
             [](void* ctx, std::size_t begin, std::size_t end) {
               (*static_cast<Fn*>(ctx))(begin, end);
             },
             const_cast<std::remove_const_t<Fn>*>(&fn));
  }

  [[nodiscard]] int num_threads() const noexcept {
    return static_cast<int>(threads_.size()) + 1;
  }

 private:
  struct Shard {
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  /// Type-erased shard body: `invoke(ctx, begin, end)` calls the borrowed
  /// callable. Both stay valid for the duration of the dispatch only.
  using JobFn = void (*)(void*, std::size_t, std::size_t);

  void dispatch(std::size_t n, JobFn invoke, void* ctx);
  void worker_loop(std::size_t idx);

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  JobFn job_ = nullptr;
  void* job_ctx_ = nullptr;
  std::vector<Shard> shards_;                 ///< per worker, current job
  std::vector<std::exception_ptr> errors_;    ///< per worker, current job
  std::uint64_t epoch_ = 0;
  int pending_ = 0;
  bool stop_ = false;
};

}  // namespace dflp::net
