#include "netsim/executor.h"

#include "common/check.h"

namespace dflp::net {

ParallelExecutor::ParallelExecutor(int num_threads) {
  DFLP_CHECK_MSG(num_threads >= 1, "num_threads must be >= 1");
  const auto workers = static_cast<std::size_t>(num_threads - 1);
  shards_.resize(workers);
  errors_.resize(workers);
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ParallelExecutor::worker_loop(std::size_t idx) {
  std::unique_lock<std::mutex> lk(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
    seen = epoch_;
    const Shard shard = shards_[idx];
    const JobFn job = job_;
    void* const ctx = job_ctx_;
    lk.unlock();
    std::exception_ptr err;
    if (shard.begin < shard.end) {
      try {
        job(ctx, shard.begin, shard.end);
      } catch (...) {
        err = std::current_exception();
      }
    }
    lk.lock();
    errors_[idx] = err;
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

void ParallelExecutor::dispatch(std::size_t n, JobFn invoke, void* ctx) {
  // Partition [0, n) into num_threads contiguous shards; the first (and
  // any remainder) goes to the calling thread, the rest to the workers.
  const auto total = static_cast<std::size_t>(num_threads());
  const std::size_t chunk = n / total;
  const std::size_t rem = n % total;
  Shard own;
  own.begin = 0;
  own.end = chunk + (rem > 0 ? 1 : 0);
  {
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t begin = own.end;
    for (std::size_t w = 0; w < threads_.size(); ++w) {
      const std::size_t size = chunk + (w + 1 < rem ? 1 : 0);
      shards_[w] = {begin, begin + size};
      begin += size;
      errors_[w] = nullptr;
    }
    DFLP_CHECK(shards_.empty() || shards_.back().end == n);
    job_ = invoke;
    job_ctx_ = ctx;
    pending_ = static_cast<int>(threads_.size());
    ++epoch_;
  }
  work_cv_.notify_all();

  std::exception_ptr own_err;
  if (own.begin < own.end) {
    try {
      invoke(ctx, own.begin, own.end);
    } catch (...) {
      own_err = std::current_exception();
    }
  }

  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return pending_ == 0; });
  job_ = nullptr;
  job_ctx_ = nullptr;
  if (own_err) std::rethrow_exception(own_err);
  for (const std::exception_ptr& err : errors_) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace dflp::net
