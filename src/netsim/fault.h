// Seeded, deterministic fault injection for the round engine.
//
// The fault model covers four hazard families:
//   * i.i.d. message loss      — every staged message is dropped with a
//                                fixed probability (the legacy knob);
//   * burst loss               — per directed link, a Gilbert–Elliott
//                                good/bad chain: while a link is "bad",
//                                messages on it are dropped, so losses
//                                arrive in bursts rather than independently;
//   * bipartition windows      — during configured round windows the node
//                                set is split in two seeded halves and every
//                                cross-side message is dropped;
//   * message duplication      — a surviving message is delivered twice;
//   * crash-stop failures      — a node is removed (as if halted, but
//                                involuntarily) at a scheduled round, or at
//                                a sampled round for a seeded random subset.
//
// Determinism contract (the same one the engine itself honours): every coin
// is drawn from a stream derived by `derive_stream_seed` from
// (seed, entity, round) — entity being a sender, a directed link, or a node.
// No draw depends on thread count, step-phase scheduling, or delivery
// order; the commit phase consumes the per-sender streams in canonical
// ascending-sender order, and the per-link burst chains are advanced lazily
// with one coin per (link, round) regardless of when a link is first
// queried. A whole fault schedule is therefore a pure function of
// (Options, network seed, topology) — the engine-equivalence sweep pins
// this.
//
// Backward compatibility: `Options::drop_probability` reproduces the exact
// coin stream of the old `Network::Options::drop_probability` knob (same
// salt, same per-(sender, round) derivation, one Bernoulli per staged
// message in send order), so executions recorded under the old knob —
// including the committed drop-failure diagnostics — are bit-identical
// under the new plan.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "netsim/message.h"

namespace dflp::net {

/// Gilbert–Elliott two-state loss chain, evaluated per directed link. Each
/// round the link flips good->bad with `p_good_to_bad` and bad->good with
/// `p_bad_to_good`; while bad, each message is dropped with `drop_in_bad`.
/// Mean burst length is 1 / p_bad_to_good rounds.
struct BurstLossOptions {
  double p_good_to_bad = 0.0;
  double p_bad_to_good = 1.0;
  double drop_in_bad = 1.0;
  [[nodiscard]] bool enabled() const noexcept { return p_good_to_bad > 0.0; }
};

/// Half-open window [begin, end) of rounds during which the network is
/// bipartitioned: nodes are assigned to one of two seeded sides and every
/// message crossing sides is dropped.
struct PartitionWindow {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// Crash-stop event: the node is removed before stepping `round`; it never
/// executes that round and its in-flight inbox is discarded.
struct CrashEvent {
  NodeId node = kNoNode;
  std::uint64_t round = 0;
};

class FaultPlan {
 public:
  struct Options {
    /// Independent per-message drop probability (legacy stream; 0 = off).
    double drop_probability = 0.0;
    /// Probability that a surviving message is delivered twice.
    double duplicate_probability = 0.0;
    /// Per-link burst loss (off unless p_good_to_bad > 0).
    BurstLossOptions burst;
    /// Temporary bipartition windows (may be empty).
    std::vector<PartitionWindow> partitions;
    /// Scheduled crash-stop events.
    std::vector<CrashEvent> crashes;
    /// Additionally crash a seeded random subset of nodes: each node
    /// crashes with this probability, at round `random_crash_round` plus a
    /// uniform offset in [0, random_crash_round_span].
    double random_crash_fraction = 0.0;
    std::uint64_t random_crash_round = 0;
    std::uint64_t random_crash_round_span = 0;
    /// Extra entropy decorrelating the fault schedule from the engine seed.
    /// The legacy i.i.d. drop stream deliberately ignores it (see the file
    /// comment's compatibility note).
    std::uint64_t fault_seed = 0;

    [[nodiscard]] bool any_message_hazard() const noexcept {
      return drop_probability > 0.0 || duplicate_probability > 0.0 ||
             burst.enabled() || !partitions.empty();
    }
    [[nodiscard]] bool any_crash() const noexcept {
      return !crashes.empty() || random_crash_fraction > 0.0;
    }
  };

  /// Verdict for one staged message.
  struct Fate {
    bool dropped = false;
    bool duplicated = false;
  };

  /// Per-(sender, round) coin streams, created by the commit tally in
  /// canonical ascending-sender order. The i.i.d. and duplication coins are
  /// drawn from here, one per staged message in send order.
  struct SenderCoins {
    Rng iid;
    Rng dup;
  };

  FaultPlan() = default;

  /// Binds the plan to one execution. `network_seed` is the engine seed
  /// (Options::seed of the network); `num_nodes` bounds crash sampling.
  /// Throws CheckError on invalid options (probabilities outside [0,1],
  /// crash events out of node range).
  FaultPlan(Options options, std::uint64_t network_seed,
            std::size_t num_nodes);

  [[nodiscard]] const Options& options() const noexcept { return options_; }
  [[nodiscard]] bool message_hazards() const noexcept {
    return options_.any_message_hazard();
  }
  [[nodiscard]] bool has_crashes() const noexcept {
    return !crash_schedule_.empty();
  }

  /// Crash events sorted by (round, node) — scheduled plus sampled random
  /// crashes, deduplicated per node (earliest round wins).
  [[nodiscard]] const std::vector<CrashEvent>& crash_schedule() const noexcept {
    return crash_schedule_;
  }

  /// Opens the coin streams for one sender's staged messages of one round.
  [[nodiscard]] SenderCoins begin_sender(NodeId sender,
                                         std::uint64_t round) const;

  /// Decides the fate of one staged message copy on the directed link
  /// src -> dst. `coins` must be the sender's streams for this round, and
  /// copies must be presented in send order (a broadcast counts one copy
  /// per neighbour, in adjacency order) — the engine's commit tally
  /// guarantees both. Only the endpoints matter, so the engine can judge
  /// packed WireRecords without materializing Messages. Mutates the lazily
  /// advanced burst chain state, so calls must happen in the (serial)
  /// commit phase.
  [[nodiscard]] Fate fate(SenderCoins& coins, NodeId src, NodeId dst,
                          std::uint64_t round);

 private:
  /// Advances the directed link's Gilbert–Elliott chain to `round` (one
  /// seeded coin per skipped round, independent of query pattern) and
  /// returns whether the link is in the bad state.
  [[nodiscard]] bool link_bad(NodeId src, NodeId dst, std::uint64_t round);

  [[nodiscard]] bool partitioned(NodeId src, NodeId dst,
                                 std::uint64_t round) const;

  Options options_;
  std::uint64_t network_seed_ = 0;
  /// Mixed base seed for the non-legacy streams.
  std::uint64_t plan_seed_ = 0;
  std::vector<CrashEvent> crash_schedule_;

  struct LinkState {
    std::uint64_t last_round = 0;
    bool bad = false;
  };
  std::unordered_map<std::uint64_t, LinkState> burst_state_;
};

/// Validates fault options standalone (probabilities in [0, 1], burst and
/// partition parameters sane). Node-range checks for crash events need the
/// network size and happen in the FaultPlan constructor instead.
void validate_fault_options(const FaultPlan::Options& options);

}  // namespace dflp::net
