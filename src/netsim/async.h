// Asynchronous execution and the alpha-synchronizer.
//
// The PODC'05 protocols are written for the synchronous CONGEST model. Real
// networks are asynchronous: messages arrive after arbitrary (here: random,
// seeded, bounded) delays. The classic bridge is Awerbuch's alpha
// synchronizer: tag every message with its logical round, send an explicit
// round token along every edge the protocol left silent, and advance a node
// to round r only after an item tagged r arrived from *every* neighbour.
// A node whose wrapped protocol halts announces FIN so neighbours stop
// waiting for it.
//
// The payoff is a strong correctness statement, verified by tests: running
// any synchronous `Process` under `Synchronizer` on an `AsyncNetwork`
// produces *bit-identical* results to the synchronous `Network` run with
// the same seed — inboxes are re-sorted by source, and per-node RNG streams
// are derived identically.
//
// Overheads (measured in AsyncMetrics): one token per silent edge per round
// per direction, and O(log(#rounds)) extra bits per message for the round
// tag.
#pragma once

#include <cstdint>
#include <memory>
#include <functional>
#include <queue>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "netsim/message.h"
#include "netsim/network.h"
#include "netsim/round_buffer.h"

namespace dflp::net {

class Tracer;

struct AsyncMetrics {
  std::uint64_t deliveries = 0;      ///< events processed
  std::uint64_t payload_messages = 0;  ///< wrapped-protocol messages
  std::uint64_t control_messages = 0;  ///< tokens + FINs
  std::uint64_t total_bits = 0;        ///< includes round-tag overhead
  std::uint64_t virtual_time = 0;      ///< timestamp of the last delivery

  [[nodiscard]] std::string to_string() const;
};

class AsyncNetwork;

/// A reactive asynchronous node program.
class AsyncProcess {
 public:
  virtual ~AsyncProcess() = default;
  /// Invoked once before any delivery.
  virtual void on_start(NodeContext& ctx) = 0;
  /// Invoked per delivered message, in delivery order.
  virtual void on_message(NodeContext& ctx, const Message& msg) = 0;
};

/// Event-driven executor: each sent message is delivered after a uniformly
/// random integer delay in [1, max_delay] (seeded — reruns are identical).
/// Delivery may reorder messages even on one link; the synchronizer is
/// explicitly robust to that.
class AsyncNetwork final : public MessageSink {
 public:
  struct Options {
    int bit_budget = 64;   ///< checked per message, tag overhead included
    int max_delay = 16;    ///< >= 1
    std::uint64_t seed = 1;
    /// Optional round tracer (netsim/trace.h), not owned; must outlive the
    /// network. Event deliveries have no round structure of their own, so
    /// the trace is aggregated per *logical* (synchronizer) round: payload
    /// messages are attributed to the round of their tag, `live` counts the
    /// nodes whose Synchronizer executed that round, and the records are
    /// flushed in round order when run() returns. Payloads without a round
    /// tag (bare AsyncProcess runs) are not traced.
    Tracer* tracer = nullptr;
  };

  AsyncNetwork(std::size_t num_nodes, Options options);

  void add_edge(NodeId u, NodeId v);
  void finalize();
  void set_process(NodeId id, std::unique_ptr<AsyncProcess> process);

  /// Runs start hooks then drains the event queue (or stops after
  /// max_events deliveries). Returns this run's metrics.
  AsyncMetrics run(std::uint64_t max_events);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return processes_.size();
  }
  [[nodiscard]] const Options& options() const noexcept { return options_; }
  [[nodiscard]] std::span<const NodeId> neighbors_of(NodeId id) const;
  [[nodiscard]] AsyncProcess& process(NodeId id);
  [[nodiscard]] const AsyncProcess& process(NodeId id) const;
  [[nodiscard]] bool all_halted() const noexcept;

  // MessageSink (used by NodeContext during node code).
  void sink_send(NodeId from, NodeId to, std::uint8_t kind,
                 std::array<std::int64_t, 3> fields, int bits) override;
  void sink_halt(NodeId node) override;

  /// The round tag channel for the synchronizer: tags ride along with the
  /// next sink_send and are billed into its bit count.
  void set_outgoing_tag(std::int64_t tag) noexcept { outgoing_tag_ = tag; }

 private:
  struct Event {
    std::uint64_t time = 0;
    std::uint64_t seq = 0;  ///< tie-break: deterministic total order
    Message msg;
    std::int64_t tag = 0;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  Options options_;
  bool finalized_ = false;
  std::vector<std::pair<NodeId, NodeId>> edge_buffer_;
  std::vector<std::int32_t> adj_offset_;
  std::vector<NodeId> adj_;
  std::vector<std::unique_ptr<AsyncProcess>> processes_;
  std::vector<Rng> node_rngs_;
  std::vector<std::uint8_t> halted_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Rng net_rng_;
  std::uint64_t now_ = 0;
  std::uint64_t seq_ = 0;
  NodeId current_sender_ = kNoNode;
  std::int64_t outgoing_tag_ = 0;
  std::int64_t current_incoming_tag_ = 0;
  AsyncMetrics metrics_;

  /// Per-logical-round trace accumulators (only maintained with a tracer).
  struct RoundAgg {
    std::uint64_t live = 0;
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;  ///< discarded at an already-halted receiver
    std::uint64_t halted = 0;
    std::uint64_t bits = 0;
    int max_bits = 0;
  };
  std::vector<RoundAgg> trace_rounds_;
  std::size_t trace_flushed_ = 0;

  RoundAgg& trace_bucket(std::uint64_t round);
  void flush_trace();

  friend class Synchronizer;
  [[nodiscard]] std::int64_t current_incoming_tag() const noexcept {
    return current_incoming_tag_;
  }
  /// Synchronizer hooks: per-logical-round liveness and halt accounting.
  void trace_note_round(std::uint64_t round);
  void trace_note_halt(std::uint64_t round);
};

/// Alpha-synchronizer adapter: runs a synchronous `Process` on an
/// AsyncNetwork. See the file comment for the protocol.
class Synchronizer final : public AsyncProcess {
 public:
  /// `inner` is the synchronous program; the adapter owns it.
  Synchronizer(AsyncNetwork& net, NodeId self,
               std::unique_ptr<Process> inner);

  void on_start(NodeContext& ctx) override;
  void on_message(NodeContext& ctx, const Message& msg) override;

  [[nodiscard]] Process& inner() noexcept { return *inner_; }
  [[nodiscard]] const Process& inner() const noexcept { return *inner_; }
  [[nodiscard]] std::uint64_t rounds_executed() const noexcept {
    return round_;
  }

  /// Control opcodes (reserved: wrapped protocols must not use them).
  static constexpr std::uint8_t kToken = 0xFE;
  static constexpr std::uint8_t kFin = 0xFF;

 private:
  void execute_round(NodeContext& ctx);
  void advance_while_ready(NodeContext& ctx);
  [[nodiscard]] bool ready_for_next() const;

  AsyncNetwork* net_;
  NodeId self_;
  std::unique_ptr<Process> inner_;
  std::uint64_t round_ = 0;  ///< next synchronous round to execute
  bool inner_halted_ = false;
  bool fin_sent_ = false;

  /// The inner protocol's sends stage here (same legality checks and
  /// send-order semantics as the synchronous engine's step phase); the
  /// commit in execute_round forwards them round-tagged onto the async
  /// network and emits tokens/FIN on the silent edges.
  RoundBuffer buffer_;

  // Per-neighbour bookkeeping, indexed by position in neighbors_of(self).
  // fin_after_[i] is meaningful when fin_from_[i] is set: the neighbour's
  // FIN satisfies only rounds strictly greater than fin_after_[i] — items
  // with tags <= fin_after_[i] are still in flight and must be awaited
  // (FIN may overtake them on a non-FIFO network).
  std::vector<std::uint8_t> fin_from_;
  std::vector<std::uint64_t> fin_after_;
  // Buffered payload messages and received-item flags per pending round:
  // round -> per-neighbour flag + messages. Rounds arrive at most
  // one-ahead? No: with reordering, items for several future rounds can be
  // in flight, so buffer generically.
  struct PendingRound {
    std::vector<std::uint8_t> item_from;  ///< per neighbour index
    std::vector<Message> payloads;
    int items = 0;
  };
  std::vector<PendingRound> pending_;  ///< index = round - base_round_
  std::uint64_t base_round_ = 1;       ///< pending_[0] is this round's bucket

  PendingRound& bucket(std::uint64_t round);
};

/// Convenience: wraps every process of a synchronous protocol and runs it
/// asynchronously. Builds the network from `edges`, installs Synchronizer
/// adapters created by `make_inner(node)`, runs to quiescence and returns
/// the metrics. Access adapters via `net.process()` afterwards.
[[nodiscard]] AsyncMetrics run_synchronized(
    AsyncNetwork& net,
    const std::function<std::unique_ptr<Process>(NodeId)>& make_inner,
    std::uint64_t max_events);

}  // namespace dflp::net
