#include "netsim/message.h"

#include <bit>

namespace dflp::net {

int bits_for_value(std::int64_t v) noexcept {
  const std::uint64_t mag =
      v < 0 ? ~static_cast<std::uint64_t>(v) + 1 : static_cast<std::uint64_t>(v);
  if (mag == 0) return 1;
  return 64 - std::countl_zero(mag) + 1;  // +1 sign bit
}

int min_payload_bits(const std::array<std::int64_t, 3>& fields) noexcept {
  int bits = 8;  // opcode
  for (std::int64_t word : fields) {
    if (word != 0) bits += bits_for_value(word);
  }
  return bits;
}

int min_message_bits(const Message& msg) noexcept {
  int bits = min_payload_bits(msg.field);
  if (msg.has_header) {
    bits += bits_for_value(msg.hdr.seq) + bits_for_value(msg.hdr.ack) +
            bits_for_value(msg.hdr.tag) + TransportHeader::kFlagBits;
  }
  return bits;
}

}  // namespace dflp::net
