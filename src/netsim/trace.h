// Round-level structured tracing for the CONGEST simulator.
//
// Motivation
// ----------
// The engine's NetMetrics are end-of-run aggregates: they say *how much* a
// run cost, never *where inside the run* the rounds, messages, or bits
// went. The Tracer records one structured record per executed round — wall
// time split into the engine's step/commit/scatter phases, per-thread step
// shard durations, live-node and message counters, the CONGEST bit bill,
// and the arena occupancy — plus optional per-node *phase annotations*
// (`NodeContext::annotate`) that let a protocol mark algorithm phases like
// "offer", "accept", or "open" so a trace can be folded per algorithm
// phase, not just per engine phase.
//
// Cost contract
// -------------
// Tracing is a pure observation layer:
//   * Disabled (Options::tracer == nullptr, the default) it costs one
//     pointer test per round — nothing measurable; `bench/bench_trace.cc`
//     pins this at 0%.
//   * Enabled it adds a few steady_clock reads and one record append per
//     round — < 3% round throughput on the storm@1e5 transport benchmark
//     (EXPERIMENTS.md E12).
//   * It draws no randomness and never touches message, fault, or RNG
//     state, so a traced run is bit-identical in solution and metrics to
//     the untraced run at every thread count
//     (tests/engine_equivalence_test.cc pins this).
//
// Output formats
// --------------
// Two exporters, both documented in docs/trace-schema.md:
//   * newline-delimited JSON (`write_jsonl`) — the stable, versioned schema
//     (kTraceSchemaVersion); one self-contained JSON object per line.
//     `read_trace_jsonl` / `validate_trace_jsonl` parse and check it (used
//     by tools/trace_report, tools/trace_check, and the tests).
//   * Chrome trace_event JSON (`write_chrome`) — loadable directly in
//     chrome://tracing or https://ui.perfetto.dev: rounds and engine phases
//     as duration slices, step shards on per-thread tracks, live nodes /
//     in-flight messages / per-phase annotation counts as counter tracks.
//
// Threading: a Tracer instance belongs to one Network execution at a time
// and is driven from Network::run's serial commit path; it is not
// thread-safe and never needs to be (per-shard timings are collected by the
// engine and handed over as part of the round record).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dflp::net {

/// Version of the JSONL schema (the `"version"` field of the header line).
/// Bump on any backwards-incompatible field change and update
/// docs/trace-schema.md in the same commit.
inline constexpr int kTraceSchemaVersion = 1;

/// On-disk export formats.
enum class TraceFormat : std::uint8_t {
  kJsonl,   ///< newline-delimited JSON, one record per line (stable schema)
  kChrome,  ///< Chrome trace_event JSON for chrome://tracing / Perfetto
};

/// Parses "jsonl" / "chrome"; returns false on anything else.
[[nodiscard]] bool parse_trace_format(std::string_view name,
                                      TraceFormat* out) noexcept;
[[nodiscard]] std::string_view trace_format_name(TraceFormat format) noexcept;

/// Wall time of one step-phase shard, as executed by the ParallelExecutor.
/// Shards are contiguous index ranges of the live-node list; with
/// num_threads=1 there is exactly one shard per round.
struct TraceShard {
  std::uint64_t begin = 0;  ///< first live-list index of the shard
  std::uint64_t end = 0;    ///< one past the last live-list index
  double dur_s = 0.0;       ///< wall seconds the shard's step took
};

/// One executed round. All counters are round-local (not cumulative).
struct TraceRound {
  std::uint64_t round = 0;       ///< engine round number (resume-global)
  std::uint64_t live = 0;        ///< nodes stepped this round
  std::uint64_t sent = 0;        ///< messages staged by the step phase
  std::uint64_t delivered = 0;   ///< survivors scattered into the arena
  std::uint64_t dropped = 0;     ///< losses charged by fault injection
  std::uint64_t duplicated = 0;  ///< extra copies from fault injection
  std::uint64_t crashed = 0;     ///< nodes crash-stopped at round start
  std::uint64_t halted = 0;      ///< voluntary halts applied this round
  std::uint64_t bits = 0;        ///< CONGEST bits of delivered messages
  int max_bits = 0;              ///< largest delivered message this round
  std::uint64_t arena = 0;       ///< arena occupancy after the commit
  /// Wall seconds of the step phase: inbox gather (materializing Messages
  /// from the SoA arena), delivery ordering, and the protocol code itself.
  double step_s = 0.0;
  /// Wall seconds of the commit's tally/merge + layout passes (per-log
  /// aggregate merge or the hazard coin walk, then slice prefix-sum).
  double commit_s = 0.0;
  /// Wall seconds of the commit's slot scatter (plus the sparse header
  /// table merge, when reliable frames are present).
  double scatter_s = 0.0;
  std::vector<TraceShard> shards;  ///< per-thread step durations
  /// Per-node phase annotations aggregated for this round: (phase label,
  /// number of nodes that marked it), sorted by label. Empty unless the
  /// tracer was built with capture_phases.
  std::vector<std::pair<std::string, std::uint64_t>> phases;

  /// Section index into Tracer::sections() — which network execution this
  /// round belongs to (e.g. pipeline stage 1 vs stage 2).
  std::size_t section = 0;
};

/// Static facts about one network execution ("section") of the trace: a
/// multi-stage runner (core::run_pipeline) contributes one section per
/// stage, each with its own round numbering.
struct TraceSection {
  std::string name;  ///< runner-chosen label, default "run"
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  int threads = 1;
  std::uint64_t seed = 0;
  int bit_budget = 0;
};

class Tracer {
 public:
  /// `capture_phases` additionally records NodeContext::annotate marks
  /// (slightly more work per annotating node; counters stay exact either
  /// way).
  explicit Tracer(bool capture_phases = false)
      : capture_phases_(capture_phases) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] bool capture_phases() const noexcept {
    return capture_phases_;
  }

  /// Labels the *next* section. Runners call this before Network::run; a
  /// resumed run() of the same network reuses the open section.
  void set_section(std::string_view name) { next_section_.assign(name); }

  /// Called by Network::run on entry. Opens a new section when the label or
  /// the network changed; a resumed run() on the same network continues the
  /// open section.
  void begin_run(const TraceSection& info);

  /// Called by Network::run once per executed round (serial commit path).
  void on_round(TraceRound&& round);

  [[nodiscard]] const std::vector<TraceSection>& sections() const noexcept {
    return sections_;
  }
  [[nodiscard]] const std::vector<TraceRound>& rounds() const noexcept {
    return rounds_;
  }

  /// Newline-delimited JSON in the versioned schema (docs/trace-schema.md).
  void write_jsonl(std::ostream& out) const;
  /// Chrome trace_event JSON (chrome://tracing, Perfetto).
  void write_chrome(std::ostream& out) const;
  /// Writes `format` to `path`, throwing CheckError if the file cannot be
  /// opened.
  void write_file(const std::string& path, TraceFormat format) const;

 private:
  bool capture_phases_;
  std::string next_section_ = "run";
  std::vector<TraceSection> sections_;
  std::vector<TraceRound> rounds_;
};

// ---------------------------------------------------------------------------
// Reading side (tools/trace_report, tools/trace_check, tests).

/// A parsed JSONL trace: the header fields plus the same section/round
/// structures the Tracer recorded.
struct ParsedTrace {
  int version = 0;
  std::vector<TraceSection> sections;
  std::vector<TraceRound> rounds;
};

/// Parses a JSONL trace produced by `write_jsonl`. Throws CheckError with a
/// line number and reason on malformed input. (This is a reader for the
/// writer above, not a general JSON parser.)
[[nodiscard]] ParsedTrace read_trace_jsonl(std::istream& in);

/// Validates `in` against the documented schema: header first, known record
/// types, required fields, version match, consecutive per-section round
/// numbers, and the counter identity delivered == sent - dropped +
/// duplicated. Returns true when valid; otherwise false with a reason in
/// `*why`.
[[nodiscard]] bool validate_trace_jsonl(std::istream& in, std::string* why);

/// Re-emits a parsed trace in the same versioned JSONL schema that
/// `Tracer::write_jsonl` produces (the round trip read -> write is
/// byte-stable). Used by `trace_check --normalize` to print canonical
/// traces for CI regression diffs.
void write_trace_jsonl(const ParsedTrace& trace, std::ostream& out);

/// Strips everything machine- or run-speed-dependent from a trace, in
/// place, leaving only the deterministic round shape: wall timings
/// (step_s/commit_s/scatter_s) are zeroed, per-thread step shards dropped,
/// and section thread counts pinned to 1 (the counters are thread-invariant
/// by the engine-equivalence guarantee). Two runs of the same solve at the
/// same seed normalize to byte-identical JSONL, which is what the committed
/// goldens under tests/goldens/ and CI's trace-regression job diff against.
void normalize_trace(ParsedTrace* trace);

}  // namespace dflp::net
