#include "netsim/async.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "common/check.h"
#include "netsim/trace.h"

namespace dflp::net {

std::string AsyncMetrics::to_string() const {
  std::ostringstream os;
  os << "deliveries=" << deliveries << " payload=" << payload_messages
     << " control=" << control_messages << " total_bits=" << total_bits
     << " virtual_time=" << virtual_time;
  return os.str();
}

AsyncNetwork::AsyncNetwork(std::size_t num_nodes, Options options)
    : options_(options), processes_(num_nodes), halted_(num_nodes, 0),
      net_rng_(options.seed ^ 0xA5C011EC7ULL) {
  DFLP_CHECK_MSG(num_nodes > 0, "empty network");
  DFLP_CHECK_MSG(options_.bit_budget >= 8, "budget below opcode size");
  DFLP_CHECK_MSG(options_.max_delay >= 1, "max_delay must be >= 1");
}

void AsyncNetwork::add_edge(NodeId u, NodeId v) {
  DFLP_CHECK_MSG(!finalized_, "add_edge after finalize");
  const auto n = static_cast<NodeId>(processes_.size());
  DFLP_CHECK_MSG(u >= 0 && u < n && v >= 0 && v < n, "edge out of range");
  DFLP_CHECK_MSG(u != v, "self loop at node " << u);
  edge_buffer_.emplace_back(u, v);
}

void AsyncNetwork::finalize() {
  DFLP_CHECK_MSG(!finalized_, "finalize called twice");
  const std::size_t n = processes_.size();
  std::vector<std::int32_t> degree(n, 0);
  for (auto [u, v] : edge_buffer_) {
    ++degree[static_cast<std::size_t>(u)];
    ++degree[static_cast<std::size_t>(v)];
  }
  adj_offset_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i)
    adj_offset_[i + 1] = adj_offset_[i] + degree[i];
  adj_.assign(static_cast<std::size_t>(adj_offset_[n]), kNoNode);
  std::vector<std::int32_t> cursor(adj_offset_.begin(), adj_offset_.end() - 1);
  for (auto [u, v] : edge_buffer_) {
    adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = v;
    adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = u;
  }
  for (std::size_t i = 0; i < n; ++i) {
    auto begin = adj_.begin() + adj_offset_[i];
    auto end = adj_.begin() + adj_offset_[i + 1];
    std::sort(begin, end);
    DFLP_CHECK_MSG(std::adjacent_find(begin, end) == end, "duplicate edge");
  }
  edge_buffer_.clear();
  edge_buffer_.shrink_to_fit();

  // IMPORTANT: identical RNG stream derivation as the synchronous Network,
  // so wrapped protocols draw the same coins in both worlds.
  node_rngs_.reserve(n);
  Rng seeder(options_.seed);
  for (std::size_t i = 0; i < n; ++i) node_rngs_.push_back(seeder.split(i));
  finalized_ = true;
}

void AsyncNetwork::set_process(NodeId id,
                               std::unique_ptr<AsyncProcess> process) {
  DFLP_CHECK_MSG(finalized_, "set_process before finalize");
  DFLP_CHECK(process != nullptr);
  auto& slot = processes_.at(static_cast<std::size_t>(id));
  DFLP_CHECK_MSG(slot == nullptr, "process already set for node " << id);
  slot = std::move(process);
}

std::span<const NodeId> AsyncNetwork::neighbors_of(NodeId id) const {
  DFLP_CHECK(finalized_);
  const auto i = static_cast<std::size_t>(id);
  DFLP_CHECK(i < processes_.size());
  return {adj_.data() + adj_offset_[i],
          static_cast<std::size_t>(adj_offset_[i + 1] - adj_offset_[i])};
}

AsyncProcess& AsyncNetwork::process(NodeId id) {
  auto& p = processes_.at(static_cast<std::size_t>(id));
  DFLP_CHECK(p != nullptr);
  return *p;
}

const AsyncProcess& AsyncNetwork::process(NodeId id) const {
  const auto& p = processes_.at(static_cast<std::size_t>(id));
  DFLP_CHECK(p != nullptr);
  return *p;
}

bool AsyncNetwork::all_halted() const noexcept {
  return std::all_of(halted_.begin(), halted_.end(),
                     [](std::uint8_t h) { return h != 0; });
}

void AsyncNetwork::sink_halt(NodeId node) {
  halted_[static_cast<std::size_t>(node)] = 1;
}

void AsyncNetwork::sink_send(NodeId from, NodeId to, std::uint8_t kind,
                             std::array<std::int64_t, 3> fields, int bits) {
  DFLP_CHECK_MSG(from == current_sender_,
                 "send outside the sender's own delivery step");
  const auto nbrs = neighbors_of(from);
  DFLP_CHECK_MSG(std::binary_search(nbrs.begin(), nbrs.end(), to),
                 "node " << from << " is not adjacent to " << to);

  Event ev;
  ev.msg.src = from;
  ev.msg.dst = to;
  ev.msg.kind = kind;
  ev.msg.field = fields;
  ev.tag = outgoing_tag_;
  const int tag_bits = ev.tag != 0 ? bits_for_value(ev.tag) : 0;
  const int honest = min_message_bits(ev.msg) + tag_bits;
  ev.msg.bits = bits < 0 ? honest : bits + tag_bits;
  DFLP_CHECK_MSG(ev.msg.bits >= honest, "under-declared message size");
  DFLP_CHECK_MSG(ev.msg.bits <= options_.bit_budget,
                 "message of " << ev.msg.bits
                               << " bits exceeds async budget "
                               << options_.bit_budget);

  ev.time = now_ + 1 +
            net_rng_.uniform_u64(static_cast<std::uint64_t>(options_.max_delay));
  ev.seq = seq_++;
  if (options_.tracer != nullptr && kind < Synchronizer::kToken &&
      ev.tag >= 1) {
    ++trace_bucket(static_cast<std::uint64_t>(ev.tag) - 1).sent;
  }
  queue_.push(ev);
}

AsyncNetwork::RoundAgg& AsyncNetwork::trace_bucket(std::uint64_t round) {
  if (trace_rounds_.size() <= round)
    trace_rounds_.resize(static_cast<std::size_t>(round) + 1);
  return trace_rounds_[static_cast<std::size_t>(round)];
}

void AsyncNetwork::trace_note_round(std::uint64_t round) {
  if (options_.tracer != nullptr) ++trace_bucket(round).live;
}

void AsyncNetwork::trace_note_halt(std::uint64_t round) {
  if (options_.tracer != nullptr) ++trace_bucket(round).halted;
}

void AsyncNetwork::flush_trace() {
  Tracer* const tracer = options_.tracer;
  if (tracer == nullptr) return;
  TraceSection info;
  info.nodes = processes_.size();
  info.edges = adj_.size() / 2;
  info.threads = 1;  // event loop is serial
  info.seed = options_.seed;
  info.bit_budget = options_.bit_budget;
  tracer->begin_run(info);
  for (std::size_t r = trace_flushed_; r < trace_rounds_.size(); ++r) {
    const RoundAgg& agg = trace_rounds_[r];
    TraceRound record;
    record.round = static_cast<std::uint64_t>(r);
    record.live = agg.live;
    record.sent = agg.sent;
    record.delivered = agg.delivered;
    // Payloads still in flight when max_events cut the run short were
    // never delivered; bill them as drops so the counter identity holds.
    record.dropped = agg.dropped + (agg.sent - agg.delivered - agg.dropped);
    record.halted = agg.halted;
    record.bits = agg.bits;
    record.max_bits = agg.max_bits;
    tracer->on_round(std::move(record));
  }
  trace_flushed_ = trace_rounds_.size();
}

AsyncMetrics AsyncNetwork::run(std::uint64_t max_events) {
  DFLP_CHECK_MSG(finalized_, "run before finalize");
  for (std::size_t i = 0; i < processes_.size(); ++i)
    DFLP_CHECK_MSG(processes_[i] != nullptr,
                   "node " << i << " has no process");

  metrics_ = AsyncMetrics{};
  // Start hooks, in node order.
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    const auto id = static_cast<NodeId>(i);
    current_sender_ = id;
    NodeContext ctx(*this, id, /*round=*/0, neighbors_of(id), node_rngs_[i]);
    processes_[i]->on_start(ctx);
    current_sender_ = kNoNode;
  }

  while (!queue_.empty() && metrics_.deliveries < max_events) {
    const Event ev = queue_.top();
    queue_.pop();
    now_ = std::max(now_, ev.time);
    ++metrics_.deliveries;
    metrics_.total_bits += static_cast<std::uint64_t>(ev.msg.bits);
    if (ev.msg.kind >= Synchronizer::kToken) {
      ++metrics_.control_messages;
    } else {
      ++metrics_.payload_messages;
    }
    metrics_.virtual_time = now_;

    const auto dst = static_cast<std::size_t>(ev.msg.dst);
    const bool traced_payload = options_.tracer != nullptr &&
                                ev.msg.kind < Synchronizer::kToken &&
                                ev.tag >= 1;
    if (halted_[dst]) {  // discarded, like the synchronous world
      if (traced_payload)
        ++trace_bucket(static_cast<std::uint64_t>(ev.tag) - 1).dropped;
      continue;
    }
    if (traced_payload) {
      RoundAgg& agg = trace_bucket(static_cast<std::uint64_t>(ev.tag) - 1);
      ++agg.delivered;
      agg.bits += static_cast<std::uint64_t>(ev.msg.bits);
      agg.max_bits = std::max(agg.max_bits, ev.msg.bits);
    }
    current_incoming_tag_ = ev.tag;
    current_sender_ = ev.msg.dst;  // the receiver may send during handling
    NodeContext ctx(*this, ev.msg.dst, now_, neighbors_of(ev.msg.dst),
                    node_rngs_[dst]);
    processes_[dst]->on_message(ctx, ev.msg);
    current_sender_ = kNoNode;
  }
  flush_trace();
  return metrics_;
}

// ------------------------------------------------------------ Synchronizer

Synchronizer::Synchronizer(AsyncNetwork& net, NodeId self,
                           std::unique_ptr<Process> inner)
    : net_(&net), self_(self), inner_(std::move(inner)) {
  DFLP_CHECK(inner_ != nullptr);
  fin_from_.assign(net_->neighbors_of(self_).size(), 0);
  fin_after_.assign(net_->neighbors_of(self_).size(), 0);
}

Synchronizer::PendingRound& Synchronizer::bucket(std::uint64_t round) {
  DFLP_CHECK_MSG(round >= base_round_,
                 "item for already-executed round " << round);
  const std::size_t idx = static_cast<std::size_t>(round - base_round_);
  while (pending_.size() <= idx) {
    PendingRound pr;
    pr.item_from.assign(net_->neighbors_of(self_).size(), 0);
    pending_.push_back(std::move(pr));
  }
  return pending_[idx];
}

bool Synchronizer::ready_for_next() const {
  const auto deg = net_->neighbors_of(self_).size();
  if (deg == 0) return true;  // isolated node: nothing to wait for
  // A FIN'd neighbour satisfies round_ only when round_ lies strictly
  // beyond its last announced item; earlier items are still in flight.
  auto fin_satisfies = [&](std::size_t i) {
    return fin_from_[i] != 0 && round_ > fin_after_[i];
  };
  if (pending_.empty()) {
    for (std::size_t i = 0; i < deg; ++i)
      if (!fin_satisfies(i)) return false;
    return true;
  }
  const PendingRound& pr = pending_.front();
  for (std::size_t i = 0; i < deg; ++i) {
    if (!pr.item_from[i] && !fin_satisfies(i)) return false;
  }
  return true;
}

void Synchronizer::execute_round(NodeContext& ctx) {
  const auto neighbors = net_->neighbors_of(self_);
  net_->trace_note_round(round_);

  // The inner protocol consumes this round's bucket in place — sorted into
  // the synchronous simulator's canonical delivery order and handed over as
  // a span — and the bucket is retired once the step returns; no per-round
  // owning inbox vector exists.
  const bool has_bucket = round_ >= 1 && !pending_.empty();
  std::span<const Message> inbox;
  if (has_bucket) {
    std::vector<Message>& payloads = pending_.front().payloads;
    std::sort(payloads.begin(), payloads.end(),
              [](const Message& a, const Message& b) { return a.src < b.src; });
    inbox = payloads;
  }

  // Step: the inner protocol writes into the same RoundBuffer type the
  // synchronous engine uses — identical legality checks, including the
  // reserved opcodes the synchronizer claims for itself.
  RoundBuffer::Limits limits;
  limits.bit_budget = net_->options().bit_budget;
  limits.max_msgs_per_edge_per_round = 1;  // CONGEST under the synchronizer
  limits.max_kind = kToken - 1;
  buffer_.begin(self_, round_, neighbors, limits);
  NodeContext inner_ctx(buffer_, self_, round_, neighbors, ctx.rng());
  inner_->on_round(inner_ctx, inbox);
  if (has_bucket) pending_.erase(pending_.begin());
  if (round_ >= 1) ++base_round_;

  // Commit: forward the staged payloads round-tagged, in send-call order
  // with broadcasts expanded per neighbour (the staged bits already satisfy
  // the honest minimum; the network adds and bills the tag overhead on top).
  net_->set_outgoing_tag(static_cast<std::int64_t>(round_ + 1));
  buffer_.for_each_staged([&](NodeId dst, const WireRecord& rec) {
    net_->sink_send(self_, dst, rec.kind, rec.field,
                    static_cast<int>(rec.bits));
  });
  net_->set_outgoing_tag(0);

  if (buffer_.halt_requested()) {
    inner_halted_ = true;
    net_->trace_note_halt(round_);
    if (!fin_sent_) {
      fin_sent_ = true;
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        // Last item this neighbour will ever get from us: the final
        // round's payload (tag round_+1) if we messaged it, else our
        // previous round's item (tag round_).
        const std::int64_t last_tag =
            buffer_.sent_to(i) ? static_cast<std::int64_t>(round_ + 1)
                               : static_cast<std::int64_t>(round_);
        net_->sink_send(self_, neighbors[i], kFin, {last_tag, 0, 0}, -1);
      }
    }
    net_->sink_halt(self_);
  } else {
    // Round tokens along every silent edge so neighbours can advance.
    net_->set_outgoing_tag(static_cast<std::int64_t>(round_ + 1));
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      if (!buffer_.sent_to(i))
        net_->sink_send(self_, neighbors[i], kToken, {0, 0, 0}, -1);
    }
    net_->set_outgoing_tag(0);
  }
  buffer_.clear();
  ++round_;
}

void Synchronizer::advance_while_ready(NodeContext& ctx) {
  while (!inner_halted_ && ready_for_next()) {
    DFLP_CHECK_MSG(round_ < (1ULL << 20),
                   "synchronizer ran 2^20 rounds without the inner protocol "
                   "halting — runaway protocol");
    execute_round(ctx);
  }
}

void Synchronizer::on_start(NodeContext& ctx) {
  execute_round(ctx);  // synchronous round 0: empty inbox
  advance_while_ready(ctx);
}

void Synchronizer::on_message(NodeContext& ctx, const Message& msg) {
  if (inner_halted_) return;
  const auto neighbors = net_->neighbors_of(self_);
  const auto it =
      std::lower_bound(neighbors.begin(), neighbors.end(), msg.src);
  DFLP_CHECK(it != neighbors.end() && *it == msg.src);
  const auto idx = static_cast<std::size_t>(it - neighbors.begin());

  if (msg.kind == kFin) {
    fin_from_[idx] = 1;
    fin_after_[idx] = static_cast<std::uint64_t>(msg.field[0]);
  } else {
    const std::int64_t tag = net_->current_incoming_tag();
    DFLP_CHECK_MSG(tag >= 1, "payload without a round tag");
    PendingRound& pr = bucket(static_cast<std::uint64_t>(tag));
    DFLP_CHECK_MSG(!pr.item_from[idx],
                   "duplicate round item from neighbour " << msg.src);
    pr.item_from[idx] = 1;
    ++pr.items;
    if (msg.kind != kToken) pr.payloads.push_back(msg);
  }
  advance_while_ready(ctx);
}

AsyncMetrics run_synchronized(
    AsyncNetwork& net,
    const std::function<std::unique_ptr<Process>(NodeId)>& make_inner,
    std::uint64_t max_events) {
  for (NodeId id = 0; id < static_cast<NodeId>(net.num_nodes()); ++id) {
    net.set_process(id,
                    std::make_unique<Synchronizer>(net, id, make_inner(id)));
  }
  return net.run(max_events);
}

}  // namespace dflp::net
