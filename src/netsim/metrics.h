// Execution metrics collected by the simulator.
//
// The PODC'05 claims under validation are *complexity* claims — rounds,
// message counts, and per-message bit sizes — so the simulator measures all
// of them exactly rather than estimating.
#pragma once

#include <cstdint>
#include <string>

namespace dflp::net {

struct NetMetrics {
  /// Number of synchronous rounds executed (including the final quiescent
  /// detection round).
  std::uint64_t rounds = 0;

  /// Total messages delivered over the whole execution.
  std::uint64_t messages = 0;

  /// Total declared bits over all delivered messages.
  std::uint64_t total_bits = 0;

  /// Largest single-message declared size observed (bits). CONGEST
  /// compliance means this stays <= the configured budget, which itself is
  /// c * ceil(log2 N) for a small constant c.
  int max_message_bits = 0;

  /// Largest number of messages sent in any single round.
  std::uint64_t max_messages_in_round = 0;

  /// Messages dropped by fault injection (0 unless enabled) — the sum over
  /// every loss hazard (i.i.d., burst, partition).
  std::uint64_t dropped = 0;

  /// Extra copies delivered by fault-injected duplication.
  std::uint64_t duplicated = 0;

  /// Nodes removed by crash-stop fault injection.
  std::uint64_t crashed = 0;

  /// Identity of the first message lost to fault injection, recorded so
  /// failure diagnostics can name it. Valid when `dropped > 0`.
  std::uint64_t first_drop_round = 0;
  std::int32_t first_drop_src = -1;
  std::int32_t first_drop_dst = -1;
  std::uint8_t first_drop_kind = 0;

  /// High-water mark of messages resident in the delivery arena at any
  /// round boundary — the transport's peak buffering requirement, counted
  /// in delivered copies (the SoA arena stores them as 8-byte slots over
  /// shared staged records, but the logical occupancy is what matters for
  /// cross-engine comparison).
  std::uint64_t arena_peak_messages = 0;

  /// Logical delivery volume: surviving messages × sizeof(Message), the
  /// full 80-byte view a receiver reads. Layout-independent by design so
  /// the number stays comparable across engine generations — the SoA
  /// transport physically moves far less (8-byte slots at scatter, one
  /// 40-byte record gather per delivery).
  std::uint64_t bytes_moved = 0;

  /// Human-readable one-line summary.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace dflp::net
