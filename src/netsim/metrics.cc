#include "netsim/metrics.h"

#include <sstream>

namespace dflp::net {

std::string NetMetrics::to_string() const {
  std::ostringstream os;
  os << "rounds=" << rounds << " messages=" << messages
     << " total_bits=" << total_bits << " max_msg_bits=" << max_message_bits
     << " max_msgs_in_round=" << max_messages_in_round;
  if (dropped > 0) os << " dropped=" << dropped;
  if (duplicated > 0) os << " duplicated=" << duplicated;
  if (crashed > 0) os << " crashed=" << crashed;
  if (arena_peak_messages > 0)
    os << " arena_peak=" << arena_peak_messages
       << " bytes_moved=" << bytes_moved;
  return os.str();
}

}  // namespace dflp::net
