#include "netsim/round_buffer.h"

#include <algorithm>

#include "common/check.h"

namespace dflp::net {

void StageLog::reset() noexcept {
  records.clear();
  headers.clear();
  halts.clear();
  annotations.clear();
  // The engine's fault-free commit drains the histogram as it merges; this
  // loop only pays for entries a consumer left behind (standalone resets).
  for (const NodeId d : touched) dst_count[static_cast<std::size_t>(d)] = 0;
  touched.clear();
  messages = 0;
  bits_sum = 0;
  max_bits = 0;
  scan_cost = 0;
  range_begin = 0;
}

void RoundBuffer::begin(NodeId node, std::uint64_t round,
                        std::span<const NodeId> neighbors,
                        const Limits& limits, StageLog* log,
                        std::span<std::int8_t> edge_scratch,
                        CliqueScratch* clique) {
  owner_ = node;
  round_ = round;
  neighbors_ = neighbors;
  limits_ = limits;
  if (log == nullptr) {
    own_log_.reset();
    log = &own_log_;
  }
  log_ = log;
  rec_begin_ = log_->records.size();
  clique_ = clique;
  clique_broadcasts_ = 0;
  clique_max_unicast_ = 0;
  if (clique != nullptr) {
    // Epoch bump invalidates every stale allowance count in O(1); the
    // neighbour-indexed slab path below would zero-fill N-1 slots per node.
    DFLP_CHECK_MSG(edge_scratch.empty(),
                   "clique mode supplies no per-edge scratch slab");
    ++clique->epoch;
    edge_sends_ = {};
  } else if (edge_scratch.empty() && !neighbors.empty()) {
    edge_store_.assign(neighbors.size(), 0);
    edge_sends_ = edge_store_;
  } else {
    std::fill(edge_scratch.begin(), edge_scratch.end(), 0);
    edge_sends_ = edge_scratch;
  }
  halt_ = false;
}

void RoundBuffer::clique_charge_unicast(NodeId from, NodeId to) {
  CliqueScratch& cs = *clique_;
  const auto d = static_cast<std::size_t>(to);
  if (cs.stamp[d] != cs.epoch) {
    cs.stamp[d] = cs.epoch;
    cs.counts[d] = 0;
  }
  DFLP_CHECK_MSG(
      cs.counts[d] + clique_broadcasts_ < limits_.max_msgs_per_edge_per_round,
      "edge allowance exceeded on " << from << "->" << to << " in round "
                                    << round_);
  clique_max_unicast_ = std::max(clique_max_unicast_, ++cs.counts[d]);
}

void RoundBuffer::stage_single(const WireRecord& rec) {
  StageLog& log = *log_;
  log.records.push_back(rec);
  ++log.messages;
  log.bits_sum += static_cast<std::uint64_t>(rec.bits);
  log.max_bits = std::max(log.max_bits, static_cast<int>(rec.bits));
  log.scan_cost += neighbors_.size();
  if (limits_.tally_destinations) {
    const auto dst = static_cast<std::size_t>(rec.dst);
    if (log.dst_count[dst]++ == 0) log.touched.push_back(rec.dst);
  }
}

void RoundBuffer::sink_send(NodeId from, NodeId to, std::uint8_t kind,
                            std::array<std::int64_t, 3> fields, int bits) {
  DFLP_CHECK_MSG(from == owner_,
                 "send from node " << from
                                   << " staged into the buffer of node "
                                   << owner_);
  DFLP_CHECK_MSG(kind <= limits_.max_kind,
                 "opcode " << static_cast<int>(kind)
                           << " exceeds the allowed maximum "
                           << static_cast<int>(limits_.max_kind)
                           << " (reserved for transport control traffic)");
  if (clique_ == nullptr) {
    const auto it = std::lower_bound(neighbors_.begin(), neighbors_.end(), to);
    DFLP_CHECK_MSG(it != neighbors_.end() && *it == to,
                   "node " << from << " is not adjacent to " << to);

    WireRecord rec;
    rec.src = from;
    rec.dst = to;
    rec.kind = kind;
    rec.field = fields;
    const int honest = min_payload_bits(fields);
    rec.bits = bits < 0 ? honest : bits;
    DFLP_CHECK_MSG(rec.bits >= honest,
                   "declared " << rec.bits << " bits < honest size " << honest);
    DFLP_CHECK_MSG(rec.bits <= limits_.bit_budget,
                   "message of " << rec.bits << " bits exceeds CONGEST budget "
                                 << limits_.bit_budget << " (kind="
                                 << static_cast<int>(kind) << ")");

    const auto idx = static_cast<std::size_t>(it - neighbors_.begin());
    DFLP_CHECK_MSG(edge_sends_[idx] < limits_.max_msgs_per_edge_per_round,
                   "edge allowance exceeded on " << from << "->" << to
                                                 << " in round " << round_);
    ++edge_sends_[idx];
    stage_single(rec);
    return;
  }

  // Clique: adjacency is "any other node"; the allowance is charged against
  // the epoch-stamped destination column instead of a neighbour index.
  const auto num_nodes = static_cast<NodeId>(clique_->counts.size());
  DFLP_CHECK_MSG(to >= 0 && to < num_nodes && to != from,
                 "node " << from << " is not adjacent to " << to
                         << " (clique of " << num_nodes << " nodes)");
  WireRecord rec;
  rec.src = from;
  rec.dst = to;
  rec.kind = kind;
  rec.field = fields;
  const int honest = min_payload_bits(fields);
  rec.bits = bits < 0 ? honest : bits;
  DFLP_CHECK_MSG(rec.bits >= honest,
                 "declared " << rec.bits << " bits < honest size " << honest);
  DFLP_CHECK_MSG(rec.bits <= limits_.bit_budget,
                 "message of " << rec.bits << " bits exceeds CONGEST budget "
                               << limits_.bit_budget << " (kind="
                               << static_cast<int>(kind) << ")");
  clique_charge_unicast(from, to);
  stage_single(rec);
}

void RoundBuffer::sink_broadcast(NodeId from, std::span<const NodeId>,
                                 std::uint8_t kind,
                                 std::array<std::int64_t, 3> fields,
                                 int bits) {
  if (neighbors_.empty()) return;
  DFLP_CHECK_MSG(from == owner_,
                 "send from node " << from
                                   << " staged into the buffer of node "
                                   << owner_);
  DFLP_CHECK_MSG(kind <= limits_.max_kind,
                 "opcode " << static_cast<int>(kind)
                           << " exceeds the allowed maximum "
                           << static_cast<int>(limits_.max_kind)
                           << " (reserved for transport control traffic)");
  WireRecord rec;
  rec.src = from;
  rec.kind = kind;
  rec.field = fields;
  rec.flags = kWireBroadcast;
  const int honest = min_payload_bits(fields);
  rec.bits = bits < 0 ? honest : bits;
  DFLP_CHECK_MSG(rec.bits >= honest,
                 "declared " << rec.bits << " bits < honest size " << honest);
  DFLP_CHECK_MSG(rec.bits <= limits_.bit_budget,
                 "message of " << rec.bits << " bits exceeds CONGEST budget "
                               << limits_.bit_budget << " (kind="
                               << static_cast<int>(kind) << ")");

  StageLog& log = *log_;
  const bool tally = limits_.tally_destinations;
  if (clique_ != nullptr) {
    // Every link carries this broadcast, so the per-link composite count
    // (unicasts to that destination + broadcasts) rises by one everywhere
    // at once: one comparison against the unicast high-water mark settles
    // all N-1 allowance checks.
    DFLP_CHECK_MSG(
        clique_max_unicast_ + clique_broadcasts_ <
            limits_.max_msgs_per_edge_per_round,
        "edge allowance exceeded by broadcast from " << from << " in round "
                                                     << round_);
    ++clique_broadcasts_;
    if (tally) {
      for (std::size_t dst = 0; dst < clique_->counts.size(); ++dst) {
        if (dst == static_cast<std::size_t>(from)) continue;
        if (log.dst_count[dst]++ == 0)
          log.touched.push_back(static_cast<NodeId>(dst));
      }
    }
  } else {
    // One fused pass over the adjacency settles the per-edge allowance and
    // the stage-time destination histogram; the copies themselves are never
    // materialized — the record below stands for all of them and the CONGEST
    // bill is batched analytically.
    for (std::size_t idx = 0; idx < neighbors_.size(); ++idx) {
      DFLP_CHECK_MSG(edge_sends_[idx] < limits_.max_msgs_per_edge_per_round,
                     "edge allowance exceeded on " << from << "->"
                                                   << neighbors_[idx]
                                                   << " in round " << round_);
      ++edge_sends_[idx];
      if (tally) {
        const auto dst = static_cast<std::size_t>(neighbors_[idx]);
        if (log.dst_count[dst]++ == 0) log.touched.push_back(neighbors_[idx]);
      }
    }
  }
  log.records.push_back(rec);
  const auto degree = static_cast<std::uint64_t>(neighbors_.size());
  log.messages += degree;
  log.bits_sum += degree * static_cast<std::uint64_t>(rec.bits);
  log.max_bits = std::max(log.max_bits, static_cast<int>(rec.bits));
  log.scan_cost += degree;
}

void RoundBuffer::sink_frame(NodeId from, const Message& frame) {
  DFLP_CHECK_MSG(from == owner_ && frame.src == owner_,
                 "frame from node " << frame.src
                                    << " staged into the buffer of node "
                                    << owner_);
  const NodeId to = frame.dst;
  if (clique_ != nullptr) {
    const auto num_nodes = static_cast<NodeId>(clique_->counts.size());
    DFLP_CHECK_MSG(to >= 0 && to < num_nodes && to != from,
                   "node " << from << " is not adjacent to " << to
                           << " (clique of " << num_nodes << " nodes)");
  } else {
    const auto it = std::lower_bound(neighbors_.begin(), neighbors_.end(), to);
    DFLP_CHECK_MSG(it != neighbors_.end() && *it == to,
                   "node " << from << " is not adjacent to " << to);
  }

  Message msg = frame;
  const int honest = min_message_bits(msg);
  if (msg.bits < honest) msg.bits = honest;
  DFLP_CHECK_MSG(msg.bits <= limits_.bit_budget,
                 "frame of " << msg.bits << " bits exceeds CONGEST budget "
                             << limits_.bit_budget << " (kind="
                             << static_cast<int>(msg.kind) << ")");

  if (clique_ != nullptr) {
    clique_charge_unicast(from, to);
  } else {
    const auto it = std::lower_bound(neighbors_.begin(), neighbors_.end(), to);
    const auto idx = static_cast<std::size_t>(it - neighbors_.begin());
    DFLP_CHECK_MSG(edge_sends_[idx] < limits_.max_msgs_per_edge_per_round,
                   "edge allowance exceeded on " << from << "->" << to
                                                 << " in round " << round_);
    ++edge_sends_[idx];
  }

  WireRecord rec;
  rec.src = msg.src;
  rec.dst = msg.dst;
  rec.kind = msg.kind;
  rec.field = msg.field;
  rec.bits = msg.bits;
  rec.flags = kWireHasHeader;
  log_->headers.push_back(
      {static_cast<std::uint32_t>(log_->records.size()), msg.hdr});
  stage_single(rec);
}

void RoundBuffer::sink_halt(NodeId node) {
  DFLP_CHECK_MSG(node == owner_,
                 "halt for node " << node << " staged into the buffer of node "
                                  << owner_);
  if (!halt_) {
    halt_ = true;
    log_->halts.push_back(node);
  }
}

void RoundBuffer::sink_annotate(NodeId node, std::string_view phase) {
  if (!limits_.capture_annotations) return;
  DFLP_CHECK_MSG(node == owner_,
                 "annotation from node " << node
                                         << " staged into the buffer of node "
                                         << owner_);
  DFLP_CHECK_MSG(!phase.empty(), "empty phase annotation from node " << node);
  log_->annotations.push_back(phase);
}

void RoundBuffer::clear() noexcept {
  if (log_ == &own_log_) {
    own_log_.reset();
    rec_begin_ = 0;
  } else if (log_ != nullptr) {
    log_->records.resize(rec_begin_);
  }
  std::fill(edge_sends_.begin(), edge_sends_.end(), 0);
  if (clique_ != nullptr) ++clique_->epoch;  // forget the allowance counts
  clique_broadcasts_ = 0;
  clique_max_unicast_ = 0;
  halt_ = false;
}

}  // namespace dflp::net
