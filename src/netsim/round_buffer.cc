#include "netsim/round_buffer.h"

#include <algorithm>

#include "common/check.h"

namespace dflp::net {

void RoundBuffer::begin(NodeId node, std::uint64_t round,
                        std::span<const NodeId> neighbors,
                        const Limits& limits) {
  owner_ = node;
  round_ = round;
  neighbors_ = neighbors;
  limits_ = limits;
  staged_.clear();
  edge_sends_.assign(neighbors.size(), 0);
  annotations_.clear();
  halt_ = false;
}

void RoundBuffer::sink_send(NodeId from, NodeId to, std::uint8_t kind,
                            std::array<std::int64_t, 3> fields, int bits) {
  DFLP_CHECK_MSG(from == owner_,
                 "send from node " << from
                                   << " staged into the buffer of node "
                                   << owner_);
  DFLP_CHECK_MSG(kind <= limits_.max_kind,
                 "opcode " << static_cast<int>(kind)
                           << " exceeds the allowed maximum "
                           << static_cast<int>(limits_.max_kind)
                           << " (reserved for transport control traffic)");
  const auto it = std::lower_bound(neighbors_.begin(), neighbors_.end(), to);
  DFLP_CHECK_MSG(it != neighbors_.end() && *it == to,
                 "node " << from << " is not adjacent to " << to);

  Message msg;
  msg.src = from;
  msg.dst = to;
  msg.kind = kind;
  msg.field = fields;
  const int honest = min_message_bits(msg);
  msg.bits = bits < 0 ? honest : bits;
  DFLP_CHECK_MSG(msg.bits >= honest,
                 "declared " << msg.bits << " bits < honest size " << honest);
  DFLP_CHECK_MSG(msg.bits <= limits_.bit_budget,
                 "message of " << msg.bits << " bits exceeds CONGEST budget "
                               << limits_.bit_budget << " (kind="
                               << static_cast<int>(kind) << ")");

  const auto idx = static_cast<std::size_t>(it - neighbors_.begin());
  DFLP_CHECK_MSG(edge_sends_[idx] < limits_.max_msgs_per_edge_per_round,
                 "edge allowance exceeded on " << from << "->" << to
                                               << " in round " << round_);
  ++edge_sends_[idx];
  staged_.push_back(msg);
}

void RoundBuffer::sink_broadcast(NodeId from, std::span<const NodeId>,
                                 std::uint8_t kind,
                                 std::array<std::int64_t, 3> fields,
                                 int bits) {
  if (neighbors_.empty()) return;
  DFLP_CHECK_MSG(from == owner_,
                 "send from node " << from
                                   << " staged into the buffer of node "
                                   << owner_);
  DFLP_CHECK_MSG(kind <= limits_.max_kind,
                 "opcode " << static_cast<int>(kind)
                           << " exceeds the allowed maximum "
                           << static_cast<int>(limits_.max_kind)
                           << " (reserved for transport control traffic)");
  Message msg;
  msg.src = from;
  msg.kind = kind;
  msg.field = fields;
  const int honest = min_message_bits(msg);
  msg.bits = bits < 0 ? honest : bits;
  DFLP_CHECK_MSG(msg.bits >= honest,
                 "declared " << msg.bits << " bits < honest size " << honest);
  DFLP_CHECK_MSG(msg.bits <= limits_.bit_budget,
                 "message of " << msg.bits << " bits exceeds CONGEST budget "
                               << limits_.bit_budget << " (kind="
                               << static_cast<int>(kind) << ")");

  staged_.reserve(staged_.size() + neighbors_.size());
  for (std::size_t idx = 0; idx < neighbors_.size(); ++idx) {
    DFLP_CHECK_MSG(edge_sends_[idx] < limits_.max_msgs_per_edge_per_round,
                   "edge allowance exceeded on " << from << "->"
                                                 << neighbors_[idx]
                                                 << " in round " << round_);
    ++edge_sends_[idx];
    msg.dst = neighbors_[idx];
    staged_.push_back(msg);
  }
}

void RoundBuffer::sink_frame(NodeId from, const Message& frame) {
  DFLP_CHECK_MSG(from == owner_ && frame.src == owner_,
                 "frame from node " << frame.src
                                    << " staged into the buffer of node "
                                    << owner_);
  const NodeId to = frame.dst;
  const auto it = std::lower_bound(neighbors_.begin(), neighbors_.end(), to);
  DFLP_CHECK_MSG(it != neighbors_.end() && *it == to,
                 "node " << from << " is not adjacent to " << to);

  Message msg = frame;
  const int honest = min_message_bits(msg);
  if (msg.bits < honest) msg.bits = honest;
  DFLP_CHECK_MSG(msg.bits <= limits_.bit_budget,
                 "frame of " << msg.bits << " bits exceeds CONGEST budget "
                             << limits_.bit_budget << " (kind="
                             << static_cast<int>(msg.kind) << ")");

  const auto idx = static_cast<std::size_t>(it - neighbors_.begin());
  DFLP_CHECK_MSG(edge_sends_[idx] < limits_.max_msgs_per_edge_per_round,
                 "edge allowance exceeded on " << from << "->" << to
                                               << " in round " << round_);
  ++edge_sends_[idx];
  staged_.push_back(msg);
}

void RoundBuffer::sink_halt(NodeId node) {
  DFLP_CHECK_MSG(node == owner_,
                 "halt for node " << node << " staged into the buffer of node "
                                  << owner_);
  halt_ = true;
}

void RoundBuffer::sink_annotate(NodeId node, std::string_view phase) {
  if (!limits_.capture_annotations) return;
  DFLP_CHECK_MSG(node == owner_,
                 "annotation from node " << node
                                         << " staged into the buffer of node "
                                         << owner_);
  DFLP_CHECK_MSG(!phase.empty(), "empty phase annotation from node " << node);
  annotations_.push_back(phase);
}

void RoundBuffer::clear() noexcept {
  staged_.clear();
  std::fill(edge_sends_.begin(), edge_sends_.end(), 0);
  annotations_.clear();
  halt_ = false;
}

}  // namespace dflp::net
