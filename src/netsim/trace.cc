#include "netsim/trace.h"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace dflp::net {

namespace {

/// JSON string escaping for the controlled identifiers we emit (section
/// names, phase labels). Handles the mandatory escapes; non-ASCII bytes
/// pass through untouched (JSON permits raw UTF-8).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Doubles are timings (seconds); 9 significant digits round-trip far below
/// clock resolution and keep lines compact.
void put_double(std::ostream& out, double v) {
  out << std::setprecision(9) << v;
}

void write_round_jsonl(std::ostream& out, const TraceRound& r) {
  out << "{\"type\":\"round\",\"sec\":" << r.section << ",\"round\":"
      << r.round << ",\"live\":" << r.live << ",\"sent\":" << r.sent
      << ",\"delivered\":" << r.delivered << ",\"dropped\":" << r.dropped
      << ",\"duplicated\":" << r.duplicated << ",\"crashed\":" << r.crashed
      << ",\"halted\":" << r.halted << ",\"bits\":" << r.bits
      << ",\"max_bits\":" << r.max_bits << ",\"arena\":" << r.arena
      << ",\"step_s\":";
  put_double(out, r.step_s);
  out << ",\"commit_s\":";
  put_double(out, r.commit_s);
  out << ",\"scatter_s\":";
  put_double(out, r.scatter_s);
  out << ",\"shards\":[";
  for (std::size_t i = 0; i < r.shards.size(); ++i) {
    const TraceShard& s = r.shards[i];
    out << (i ? "," : "") << '[' << s.begin << ',' << s.end << ',';
    put_double(out, s.dur_s);
    out << ']';
  }
  out << "],\"phases\":[";
  for (std::size_t i = 0; i < r.phases.size(); ++i) {
    out << (i ? "," : "") << "[\"" << json_escape(r.phases[i].first)
        << "\"," << r.phases[i].second << ']';
  }
  out << "]}\n";
}

void write_section_jsonl(std::ostream& out, std::size_t id,
                         const TraceSection& s) {
  out << "{\"type\":\"section\",\"id\":" << id << ",\"name\":\""
      << json_escape(s.name) << "\",\"nodes\":" << s.nodes << ",\"edges\":"
      << s.edges << ",\"threads\":" << s.threads << ",\"seed\":" << s.seed
      << ",\"bit_budget\":" << s.bit_budget << "}\n";
}

}  // namespace

bool parse_trace_format(std::string_view name, TraceFormat* out) noexcept {
  if (name == "jsonl") {
    *out = TraceFormat::kJsonl;
    return true;
  }
  if (name == "chrome") {
    *out = TraceFormat::kChrome;
    return true;
  }
  return false;
}

std::string_view trace_format_name(TraceFormat format) noexcept {
  return format == TraceFormat::kJsonl ? "jsonl" : "chrome";
}

void Tracer::begin_run(const TraceSection& info) {
  TraceSection next = info;
  next.name = next_section_;
  if (!sections_.empty()) {
    const TraceSection& last = sections_.back();
    // A resumed run() of the same execution continues the open section.
    if (last.name == next.name && last.nodes == next.nodes &&
        last.edges == next.edges && last.threads == next.threads &&
        last.seed == next.seed && last.bit_budget == next.bit_budget) {
      return;
    }
  }
  sections_.push_back(std::move(next));
}

void Tracer::on_round(TraceRound&& round) {
  DFLP_CHECK_MSG(!sections_.empty(), "Tracer::on_round before begin_run");
  round.section = sections_.size() - 1;
  rounds_.push_back(std::move(round));
}

void Tracer::write_jsonl(std::ostream& out) const {
  out << "{\"schema\":\"dflp-trace\",\"version\":" << kTraceSchemaVersion
      << "}\n";
  for (std::size_t i = 0; i < sections_.size(); ++i)
    write_section_jsonl(out, i, sections_[i]);
  for (const TraceRound& r : rounds_) write_round_jsonl(out, r);
}

void write_trace_jsonl(const ParsedTrace& trace, std::ostream& out) {
  out << "{\"schema\":\"dflp-trace\",\"version\":" << kTraceSchemaVersion
      << "}\n";
  for (std::size_t i = 0; i < trace.sections.size(); ++i)
    write_section_jsonl(out, i, trace.sections[i]);
  for (const TraceRound& r : trace.rounds) write_round_jsonl(out, r);
}

void normalize_trace(ParsedTrace* trace) {
  for (TraceSection& s : trace->sections) s.threads = 1;
  for (TraceRound& r : trace->rounds) {
    r.step_s = 0.0;
    r.commit_s = 0.0;
    r.scatter_s = 0.0;
    r.shards.clear();
  }
}

void Tracer::write_chrome(std::ostream& out) const {
  // Chrome trace_event "JSON object format": timestamps/durations are in
  // microseconds; slices nest by ts/dur containment per (pid, tid). We map
  // section -> pid, the serial engine timeline -> tid 0, and step shard k
  // -> tid 1+k, and rebuild a global clock by accumulating the recorded
  // per-round phase durations.
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto event = [&](auto&& body) {
    if (!first) out << ',';
    first = false;
    out << "\n{";
    body();
    out << '}';
  };
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const TraceSection& s = sections_[i];
    event([&] {
      out << "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << i
          << ",\"tid\":0,\"args\":{\"name\":\"dflp "
          << json_escape(s.name) << " (n=" << s.nodes << ", threads="
          << s.threads << ", seed=" << s.seed << ")\"}";
    });
    event([&] {
      out << "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << i
          << ",\"tid\":0,\"args\":{\"name\":\"engine\"}";
    });
  }
  const auto slice = [&](std::size_t pid, int tid, std::string_view name,
                         double ts_us, double dur_us) {
    event([&] {
      out << "\"name\":\"" << json_escape(name)
          << "\",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
          << ",\"ts\":";
      put_double(out, ts_us);
      out << ",\"dur\":";
      put_double(out, dur_us);
    });
  };
  const auto counter = [&](std::size_t pid, std::string_view name,
                           double ts_us, std::uint64_t value) {
    event([&] {
      out << "\"name\":\"" << json_escape(name)
          << "\",\"ph\":\"C\",\"pid\":" << pid << ",\"tid\":0,\"ts\":";
      put_double(out, ts_us);
      out << ",\"args\":{\"value\":" << value << '}';
    });
  };

  double clock_us = 0.0;
  for (const TraceRound& r : rounds_) {
    const std::size_t pid = r.section;
    const double step_us = r.step_s * 1e6;
    const double commit_us = r.commit_s * 1e6;
    const double scatter_us = r.scatter_s * 1e6;
    const double round_us = step_us + commit_us + scatter_us;
    std::ostringstream label;
    label << "round " << r.round;
    event([&] {
      out << "\"name\":\"" << label.str() << "\",\"ph\":\"X\",\"pid\":"
          << pid << ",\"tid\":0,\"ts\":";
      put_double(out, clock_us);
      out << ",\"dur\":";
      put_double(out, round_us);
      out << ",\"args\":{\"live\":" << r.live << ",\"sent\":" << r.sent
          << ",\"delivered\":" << r.delivered << ",\"dropped\":" << r.dropped
          << ",\"bits\":" << r.bits << '}';
    });
    slice(pid, 0, "step", clock_us, step_us);
    slice(pid, 0, "commit", clock_us + step_us, commit_us);
    slice(pid, 0, "scatter", clock_us + step_us + commit_us, scatter_us);
    for (std::size_t k = 0; k < r.shards.size(); ++k) {
      const TraceShard& s = r.shards[k];
      std::ostringstream shard_label;
      shard_label << "step [" << s.begin << "," << s.end << ")";
      slice(pid, 1 + static_cast<int>(k), shard_label.str(), clock_us,
            s.dur_s * 1e6);
    }
    counter(pid, "live nodes", clock_us, r.live);
    counter(pid, "in-flight messages", clock_us, r.arena);
    counter(pid, "messages delivered", clock_us, r.delivered);
    if (r.dropped > 0) counter(pid, "messages dropped", clock_us, r.dropped);
    for (const auto& [phase, count] : r.phases)
      counter(pid, std::string("phase:") + phase, clock_us, count);
    clock_us += round_us;
  }
  out << "\n]}\n";
}

void Tracer::write_file(const std::string& path, TraceFormat format) const {
  std::ofstream out(path);
  DFLP_CHECK_MSG(out.good(), "cannot open trace output '" << path << "'");
  if (format == TraceFormat::kJsonl) {
    write_jsonl(out);
  } else {
    write_chrome(out);
  }
  out.flush();
  DFLP_CHECK_MSG(out.good(), "failed writing trace output '" << path << "'");
}

// ---------------------------------------------------------------------------
// Reading side: a line-oriented reader for exactly the writer above.

namespace {

[[noreturn]] void parse_fail(int lineno, const std::string& why) {
  std::ostringstream os;
  os << "trace line " << lineno << ": " << why;
  throw CheckError(os.str());
}

/// Position of the first character after `"key":`, npos when absent.
std::size_t value_pos(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::string::npos;
  return at + needle.size();
}

std::uint64_t get_u64(const std::string& line, const std::string& key,
                      int lineno) {
  const std::size_t at = value_pos(line, key);
  if (at == std::string::npos) parse_fail(lineno, "missing field '" + key + "'");
  return std::strtoull(line.c_str() + at, nullptr, 10);
}

std::int64_t get_i64(const std::string& line, const std::string& key,
                     int lineno) {
  const std::size_t at = value_pos(line, key);
  if (at == std::string::npos) parse_fail(lineno, "missing field '" + key + "'");
  return std::strtoll(line.c_str() + at, nullptr, 10);
}

double get_double(const std::string& line, const std::string& key,
                  int lineno) {
  const std::size_t at = value_pos(line, key);
  if (at == std::string::npos) parse_fail(lineno, "missing field '" + key + "'");
  return std::strtod(line.c_str() + at, nullptr);
}

/// Parses the quoted string starting at `at` (which must point at '"'),
/// un-escaping the writer's escapes. Advances *end past the closing quote.
std::string parse_quoted(const std::string& line, std::size_t at, int lineno,
                         std::size_t* end = nullptr) {
  if (at >= line.size() || line[at] != '"')
    parse_fail(lineno, "expected string");
  std::string out;
  std::size_t i = at + 1;
  while (i < line.size() && line[i] != '"') {
    if (line[i] == '\\' && i + 1 < line.size()) {
      ++i;
      switch (line[i]) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += '?'; i += 4; break;  // control chars: placeholder
        default: out += line[i];
      }
    } else {
      out += line[i];
    }
    ++i;
  }
  if (i >= line.size()) parse_fail(lineno, "unterminated string");
  if (end != nullptr) *end = i + 1;
  return out;
}

std::string get_string(const std::string& line, const std::string& key,
                       int lineno) {
  const std::size_t at = value_pos(line, key);
  if (at == std::string::npos) parse_fail(lineno, "missing field '" + key + "'");
  return parse_quoted(line, at, lineno);
}

TraceRound parse_round(const std::string& line, int lineno) {
  TraceRound r;
  r.section = static_cast<std::size_t>(get_u64(line, "sec", lineno));
  r.round = get_u64(line, "round", lineno);
  r.live = get_u64(line, "live", lineno);
  r.sent = get_u64(line, "sent", lineno);
  r.delivered = get_u64(line, "delivered", lineno);
  r.dropped = get_u64(line, "dropped", lineno);
  r.duplicated = get_u64(line, "duplicated", lineno);
  r.crashed = get_u64(line, "crashed", lineno);
  r.halted = get_u64(line, "halted", lineno);
  r.bits = get_u64(line, "bits", lineno);
  r.max_bits = static_cast<int>(get_i64(line, "max_bits", lineno));
  r.arena = get_u64(line, "arena", lineno);
  r.step_s = get_double(line, "step_s", lineno);
  r.commit_s = get_double(line, "commit_s", lineno);
  r.scatter_s = get_double(line, "scatter_s", lineno);

  std::size_t at = value_pos(line, "shards");
  if (at == std::string::npos) parse_fail(lineno, "missing field 'shards'");
  if (line[at] != '[') parse_fail(lineno, "'shards' is not an array");
  ++at;
  while (at < line.size() && line[at] != ']') {
    if (line[at] == ',') { ++at; continue; }
    if (line[at] != '[') parse_fail(lineno, "malformed shard entry");
    TraceShard s;
    char* cursor = nullptr;
    s.begin = std::strtoull(line.c_str() + at + 1, &cursor, 10);
    if (cursor == nullptr || *cursor != ',')
      parse_fail(lineno, "malformed shard entry");
    s.end = std::strtoull(cursor + 1, &cursor, 10);
    if (cursor == nullptr || *cursor != ',')
      parse_fail(lineno, "malformed shard entry");
    s.dur_s = std::strtod(cursor + 1, &cursor);
    if (cursor == nullptr || *cursor != ']')
      parse_fail(lineno, "malformed shard entry");
    r.shards.push_back(s);
    at = static_cast<std::size_t>(cursor - line.c_str()) + 1;
  }
  if (at >= line.size()) parse_fail(lineno, "unterminated 'shards' array");

  at = value_pos(line, "phases");
  if (at == std::string::npos) parse_fail(lineno, "missing field 'phases'");
  if (line[at] != '[') parse_fail(lineno, "'phases' is not an array");
  ++at;
  while (at < line.size() && line[at] != ']') {
    if (line[at] == ',') { ++at; continue; }
    if (line[at] != '[') parse_fail(lineno, "malformed phase entry");
    std::size_t after = 0;
    std::string label = parse_quoted(line, at + 1, lineno, &after);
    if (after >= line.size() || line[after] != ',')
      parse_fail(lineno, "malformed phase entry");
    char* cursor = nullptr;
    const std::uint64_t count =
        std::strtoull(line.c_str() + after + 1, &cursor, 10);
    if (cursor == nullptr || *cursor != ']')
      parse_fail(lineno, "malformed phase entry");
    r.phases.emplace_back(std::move(label), count);
    at = static_cast<std::size_t>(cursor - line.c_str()) + 1;
  }
  if (at >= line.size()) parse_fail(lineno, "unterminated 'phases' array");
  return r;
}

}  // namespace

ParsedTrace read_trace_jsonl(std::istream& in) {
  ParsedTrace trace;
  std::string line;
  int lineno = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (!saw_header) {
      if (line.find("\"schema\":\"dflp-trace\"") == std::string::npos)
        parse_fail(lineno, "first line is not a dflp-trace header");
      trace.version = static_cast<int>(get_i64(line, "version", lineno));
      saw_header = true;
      continue;
    }
    const std::string type = get_string(line, "type", lineno);
    if (type == "section") {
      const auto id = static_cast<std::size_t>(get_u64(line, "id", lineno));
      if (id != trace.sections.size())
        parse_fail(lineno, "section ids must be dense and in order");
      TraceSection s;
      s.name = get_string(line, "name", lineno);
      s.nodes = get_u64(line, "nodes", lineno);
      s.edges = get_u64(line, "edges", lineno);
      s.threads = static_cast<int>(get_i64(line, "threads", lineno));
      s.seed = get_u64(line, "seed", lineno);
      s.bit_budget = static_cast<int>(get_i64(line, "bit_budget", lineno));
      trace.sections.push_back(std::move(s));
    } else if (type == "round") {
      trace.rounds.push_back(parse_round(line, lineno));
    } else {
      parse_fail(lineno, "unknown record type '" + type + "'");
    }
  }
  if (!saw_header) throw CheckError("trace: empty input (no header line)");
  return trace;
}

bool validate_trace_jsonl(std::istream& in, std::string* why) {
  const auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  ParsedTrace trace;
  try {
    trace = read_trace_jsonl(in);
  } catch (const CheckError& e) {
    return fail(e.what());
  }
  if (trace.version != kTraceSchemaVersion) {
    std::ostringstream os;
    os << "schema version " << trace.version << " != expected "
       << kTraceSchemaVersion;
    return fail(os.str());
  }
  std::vector<std::uint64_t> last_round(trace.sections.size(), 0);
  std::vector<bool> seen(trace.sections.size(), false);
  for (std::size_t i = 0; i < trace.rounds.size(); ++i) {
    const TraceRound& r = trace.rounds[i];
    std::ostringstream os;
    os << "round record " << i << " (round " << r.round << "): ";
    if (r.section >= trace.sections.size()) {
      os << "section " << r.section << " out of range";
      return fail(os.str());
    }
    if (seen[r.section] && r.round != last_round[r.section] + 1) {
      os << "rounds of section " << r.section
         << " must be consecutive; previous was " << last_round[r.section];
      return fail(os.str());
    }
    seen[r.section] = true;
    last_round[r.section] = r.round;
    if (r.delivered != r.sent - r.dropped + r.duplicated) {
      os << "counter identity violated: delivered (" << r.delivered
         << ") != sent (" << r.sent << ") - dropped (" << r.dropped
         << ") + duplicated (" << r.duplicated << ")";
      return fail(os.str());
    }
    if (r.live == 0 && r.sent > 0) {
      os << "messages staged with no live nodes";
      return fail(os.str());
    }
    std::uint64_t prev_end = 0;
    for (std::size_t k = 0; k < r.shards.size(); ++k) {
      const TraceShard& s = r.shards[k];
      if (s.end < s.begin || s.begin < prev_end || s.end > r.live) {
        os << "shard " << k << " [" << s.begin << "," << s.end
           << ") is not an ordered partition of [0, live=" << r.live << ")";
        return fail(os.str());
      }
      prev_end = s.end;
    }
    for (const auto& [label, count] : r.phases) {
      if (label.empty() || count == 0) {
        os << "phase entries need a label and a positive count";
        return fail(os.str());
      }
    }
  }
  if (why != nullptr) why->clear();
  return true;
}

}  // namespace dflp::net
