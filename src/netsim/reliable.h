// Reliable-transport recovery layer over the lossy round engine.
//
// The PODC'05 protocols assume reliable synchronous links. When fault
// injection (netsim/fault.h) drops, duplicates or reorders traffic, a bare
// protocol deadlocks or silently computes garbage. `ReliableChannel` is a
// `Process` adapter that restores the reliable synchronous abstraction on
// top of the lossy engine:
//
//   * every inner send becomes a *sequenced item* on its directed link,
//     tagged with the logical round that produced it;
//   * each physical round the channel transmits at most one frame per link
//     (the CONGEST allowance), carrying an item plus a cumulative ack;
//   * lost frames are retransmitted on timeout with exponential backoff
//     (initial `rto_initial` physical rounds — the engine's loss-free RTT
//     is exactly 2, so the default 2 recovers a single loss immediately —
//     doubling up to `rto_max` under repeated loss); when a link's
//     transmit slot would otherwise idle, a tail-loss probe re-sends the
//     oldest unacked item at RTT cadence so a stalled logical round is
//     repaired in O(RTT) instead of waiting out the backed-off timer;
//   * duplicate frames (retransmissions that did arrive, or fault-injected
//     copies) are discarded by sequence number;
//   * an end-of-round flag on the last item of each logical round tells the
//     receiver when a round's inbox is complete, and a FIN flag announces
//     the inner protocol's halt so neighbours stop waiting;
//   * retransmission is bounded: `max_retransmits` unacknowledged re-sends
//     of a link's oldest item in a row mean the peer has crash-stopped
//     (loss alone cannot sustain such a streak), and the channel raises a
//     CheckError naming the dead link instead of spinning to round limit.
//
// The inner protocol executes logical round L only once every live link has
// delivered its complete round-(L-1) traffic, with the inbox rebuilt in the
// engine's canonical order (ascending source, send order within a source).
// The channel draws *no* randomness of its own, so the inner protocol
// consumes exactly the per-node RNG stream it would consume on a fault-free
// network — which is why a recovered run returns the bit-identical solution
// of the fault-free golden run.
//
// Accounting: frames carry a TransportHeader (netsim/message.h) whose words
// are charged into the honest wire size, so recovery overhead is paid out
// of the CONGEST bit budget (`reliable_bit_budget` computes the physical
// budget needed to carry a given inner budget). Retransmissions, duplicate
// discards and ack-only frames are counted in `ReliableStats`; round
// dilation is physical rounds / logical rounds.
//
// Termination: after the inner protocol halts, all outgoing items are
// acked, and every neighbour's FIN has been processed, the channel lingers
// `linger` quiet physical rounds — re-acking any late retransmission — and
// then halts. The linger window dwarfs the retransmission backoff cap, so
// the classic two-generals residue (a peer whose final ack was lost and
// never re-served) is vanishingly unlikely; even then the inner results are
// already correct and the engine's `max_rounds` bounds the run.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "netsim/message.h"
#include "netsim/network.h"
#include "netsim/round_buffer.h"

namespace dflp::net {

/// Transport counters for one channel (aggregate across nodes with merge()).
struct ReliableStats {
  std::uint64_t logical_rounds = 0;   ///< inner rounds executed
  std::uint64_t physical_rounds = 0;  ///< channel invocations
  std::uint64_t items_sent = 0;       ///< first transmissions
  std::uint64_t retransmissions = 0;  ///< timeout-driven re-sends
  std::uint64_t ack_frames = 0;       ///< pure ack frames (no item slot)
  std::uint64_t duplicates_discarded = 0;

  void merge(const ReliableStats& other) noexcept;
  [[nodiscard]] std::string to_string() const;
};

class ReliableChannel final : public Process {
 public:
  struct Options {
    /// Bit budget enforced on the *inner* protocol's sends (the physical
    /// network budget must be at least reliable_bit_budget() of this).
    int inner_bit_budget = 64;
    /// Inner per-edge allowance per logical round.
    int max_msgs_per_edge_per_round = 1;
    /// Retransmission timeout in physical rounds (engine RTT is 2).
    int rto_initial = 2;
    /// Backoff cap for the timeout under repeated loss.
    int rto_max = 16;
    /// Max unacked items in flight per link.
    int window = 8;
    /// Quiet rounds to keep re-serving acks after the done-state holds.
    int linger = 64;
    /// Consecutive retransmissions of a link's oldest unacked item (timer
    /// and tail-loss probes alike, reset whenever the peer's cumulative
    /// ack advances) before the channel declares the peer dead and raises
    /// a CheckError naming the link. A crash-stopped peer never acks, so
    /// without the bound the channel would spin to the engine round limit
    /// with no diagnosis. The default survives any plausible loss streak
    /// (even at 30% i.i.d. loss both ways, 64 unacknowledged retries is a
    /// ~1e-19 event) while firing well before the round limit.
    int max_retransmits = 64;
  };

  /// Largest opcode the inner protocol may use under the channel.
  static constexpr std::uint8_t kMaxProtocolKind = 0xFA;
  /// Control opcodes (sequenced where noted).
  static constexpr std::uint8_t kAck = 0xFD;    ///< unsequenced ack-only frame
  static constexpr std::uint8_t kToken = 0xFE;  ///< sequenced end-of-round
  static constexpr std::uint8_t kFin = 0xFF;    ///< sequenced halt announce

  ReliableChannel(std::unique_ptr<Process> inner, Options options);

  void on_round(NodeContext& ctx, std::span<const Message> inbox) override;

  [[nodiscard]] Process& inner() noexcept { return *inner_; }
  [[nodiscard]] const Process& inner() const noexcept { return *inner_; }
  [[nodiscard]] bool inner_halted() const noexcept { return inner_halted_; }
  [[nodiscard]] std::uint64_t logical_rounds() const noexcept {
    return stats_.logical_rounds;
  }
  [[nodiscard]] const ReliableStats& stats() const noexcept { return stats_; }

 private:
  /// One sequenced item staged for a link: a ready-to-send frame prototype
  /// (header seq/tag/flags fixed; ack and wire bits set per transmission)
  /// plus any padding the inner declared beyond its honest size.
  struct OutItem {
    Message frame;
    int extra_bits = 0;
  };

  /// A drained in-order data item awaiting inner consumption.
  struct PendingItem {
    Message msg;          ///< header stripped, inner wire size restored
    std::int64_t tag = 0; ///< logical round the sender produced it in
  };

  struct Link {
    NodeId peer = kNoNode;

    // Send side.
    std::vector<OutItem> out;
    std::int64_t next_tx = 0;  ///< first never-transmitted item
    std::int64_t acked = 0;    ///< items [0, acked) acked by the peer
    bool timer_armed = false;
    std::uint64_t timer_round = 0;
    int rto = 0;
    int retx_count = 0;  ///< unacknowledged retransmissions in a row

    // Receive side. Both buffers recycle their heap storage across rounds
    // (the old unordered_map / deque churned a node allocation per frame
    // under loss): `ooo` is a small sorted vector — every entry's seq is
    // >= cum_recv and the window caps its size, so insertion is a
    // lower_bound into at most `window` items — and `in_log` is a vector
    // drained by `in_head`, compacted (size 0, capacity kept) whenever the
    // reader catches up.
    std::int64_t cum_recv = 0;  ///< items [0, cum_recv) processed in order
    std::vector<std::pair<std::int64_t, Message>> ooo;  ///< sorted by seq
    std::vector<PendingItem> in_log;  ///< drained data items, in order
    std::size_t in_head = 0;          ///< first unconsumed in_log entry
    std::int64_t closed_tag = -1;    ///< highest fully-received logical round
    bool fin_processed = false;
    bool ack_due = false;
  };

  void bind(NodeContext& ctx);
  void process_inbox(std::span<const Message> inbox, std::uint64_t now);
  void drain_link(Link& link);
  [[nodiscard]] bool ready_for_logical(std::uint64_t round) const;
  void execute_logical(NodeContext& ctx, std::uint64_t round);
  void enqueue_item(Link& link, Message frame, int extra_bits);
  void transmit(NodeContext& ctx, std::uint64_t now);
  [[nodiscard]] bool done_state() const;

  std::unique_ptr<Process> inner_;
  Options options_;
  RoundBuffer::Limits inner_limits_;
  bool bound_ = false;
  bool inner_halted_ = false;
  std::uint64_t next_logical_ = 0;
  int quiet_rounds_ = 0;
  std::vector<Link> links_;              ///< one per neighbour, sorted order
  std::vector<Message> inner_inbox_;     ///< scratch for execute_logical
  RoundBuffer buffer_;                   ///< inner step staging
  ReliableStats stats_;
};

/// Physical per-message bit budget needed so the channel can carry
/// `inner_budget`-bit payloads when at most `max_logical_rounds` logical
/// rounds execute: the inner budget plus the worst-case header (seq, ack,
/// tag each bounded by the item count, plus flag bits).
[[nodiscard]] int reliable_bit_budget(int inner_budget,
                                      std::uint64_t max_logical_rounds);

}  // namespace dflp::net
