#include "netsim/reliable.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace dflp::net {

void ReliableStats::merge(const ReliableStats& other) noexcept {
  // Rounds describe the whole run (max across nodes); traffic counters sum.
  logical_rounds = std::max(logical_rounds, other.logical_rounds);
  physical_rounds = std::max(physical_rounds, other.physical_rounds);
  items_sent += other.items_sent;
  retransmissions += other.retransmissions;
  ack_frames += other.ack_frames;
  duplicates_discarded += other.duplicates_discarded;
}

std::string ReliableStats::to_string() const {
  std::ostringstream os;
  os << "logical=" << logical_rounds << " physical=" << physical_rounds
     << " items=" << items_sent << " retx=" << retransmissions
     << " acks=" << ack_frames << " dups=" << duplicates_discarded;
  return os.str();
}

ReliableChannel::ReliableChannel(std::unique_ptr<Process> inner,
                                 Options options)
    : inner_(std::move(inner)), options_(options) {
  DFLP_CHECK_MSG(inner_ != nullptr, "reliable channel needs an inner process");
  DFLP_CHECK_MSG(options_.inner_bit_budget >= 8,
                 "inner bit budget " << options_.inner_bit_budget
                                     << " cannot fit an opcode");
  DFLP_CHECK_MSG(options_.max_msgs_per_edge_per_round >= 1,
                 "inner per-edge allowance must be >= 1, got "
                     << options_.max_msgs_per_edge_per_round);
  DFLP_CHECK_MSG(options_.rto_initial >= 1,
                 "rto_initial must be >= 1 round, got " << options_.rto_initial);
  DFLP_CHECK_MSG(options_.rto_max >= options_.rto_initial,
                 "rto_max " << options_.rto_max << " < rto_initial "
                            << options_.rto_initial);
  DFLP_CHECK_MSG(options_.window >= 1,
                 "window must be >= 1 item, got " << options_.window);
  DFLP_CHECK_MSG(options_.linger >= 0,
                 "linger must be >= 0 rounds, got " << options_.linger);
  DFLP_CHECK_MSG(options_.max_retransmits >= 1,
                 "max_retransmits must be >= 1, got "
                     << options_.max_retransmits);
  inner_limits_.bit_budget = options_.inner_bit_budget;
  inner_limits_.max_msgs_per_edge_per_round =
      options_.max_msgs_per_edge_per_round;
  inner_limits_.max_kind = kMaxProtocolKind;
}

void ReliableChannel::bind(NodeContext& ctx) {
  const auto neighbors = ctx.neighbors();
  links_.resize(neighbors.size());
  for (std::size_t i = 0; i < neighbors.size(); ++i)
    links_[i].peer = neighbors[i];
  bound_ = true;
}

namespace {

/// Header wire bits of a framed message (matches min_message_bits).
int header_bits(const TransportHeader& hdr) {
  return bits_for_value(hdr.seq) + bits_for_value(hdr.ack) +
         bits_for_value(hdr.tag) + TransportHeader::kFlagBits;
}

}  // namespace

void ReliableChannel::on_round(NodeContext& ctx,
                               std::span<const Message> inbox) {
  if (!bound_) bind(ctx);
  ++stats_.physical_rounds;
  const std::uint64_t now = ctx.round();

  process_inbox(inbox, now);
  for (Link& link : links_) drain_link(link);

  if (!inner_halted_ && ready_for_logical(next_logical_)) {
    execute_logical(ctx, next_logical_);
    ++next_logical_;
  }

  transmit(ctx, now);

  if (done_state()) {
    if (inbox.empty()) ++quiet_rounds_; else quiet_rounds_ = 0;
    if (links_.empty() || quiet_rounds_ > options_.linger) ctx.halt();
  } else {
    quiet_rounds_ = 0;
  }
}

void ReliableChannel::process_inbox(std::span<const Message> inbox,
                                    std::uint64_t now) {
  // Per-frame updates are order-independent (max for acks, set-semantics
  // inserts, OR for ack_due), so any physical delivery order — including
  // the shuffled and reversed adversaries — yields the same channel state.
  for (const Message& frame : inbox) {
    DFLP_CHECK_MSG(frame.has_header,
                   "unframed message (kind "
                       << static_cast<int>(frame.kind) << ") from node "
                       << frame.src << " reached a reliable channel");
    const auto it = std::lower_bound(
        links_.begin(), links_.end(), frame.src,
        [](const Link& link, NodeId peer) { return link.peer < peer; });
    DFLP_CHECK_MSG(it != links_.end() && it->peer == frame.src,
                   "frame from non-neighbour node " << frame.src);
    Link& link = *it;

    if (frame.hdr.ack > link.acked) {
      DFLP_CHECK_MSG(frame.hdr.ack <= static_cast<std::int64_t>(
                                          link.out.size()),
                     "peer " << link.peer << " acked " << frame.hdr.ack
                             << " items but only " << link.out.size()
                             << " were staged");
      link.acked = frame.hdr.ack;
      link.retx_count = 0;  // the peer is alive and making progress
      if (link.acked < link.next_tx) {
        // Progress observed: restart the timer for the new oldest unacked.
        link.timer_armed = true;
        link.timer_round = now;
        link.rto = options_.rto_initial;
      } else {
        link.timer_armed = false;
      }
    }

    if (frame.hdr.flags & kFrameItem) {
      link.ack_due = true;
      const std::int64_t seq = frame.hdr.seq;
      const auto pos = std::lower_bound(
          link.ooo.begin(), link.ooo.end(), seq,
          [](const auto& entry, std::int64_t s) { return entry.first < s; });
      if (seq < link.cum_recv ||
          (pos != link.ooo.end() && pos->first == seq)) {
        ++stats_.duplicates_discarded;
      } else {
        link.ooo.insert(pos, {seq, frame});
      }
    }
  }
}

void ReliableChannel::drain_link(Link& link) {
  for (;;) {
    // Every buffered seq is >= cum_recv (process_inbox discards below it),
    // so the next in-order item can only sit at the front.
    if (link.ooo.empty() || link.ooo.front().first != link.cum_recv) break;
    const Message frame = link.ooo.front().second;
    link.ooo.erase(link.ooo.begin());
    ++link.cum_recv;

    if (frame.kind <= kMaxProtocolKind) {
      // Data item: strip the header and restore the inner wire size so the
      // inner protocol sees exactly the message its peer sent.
      Message msg = frame;
      msg.bits = frame.bits - header_bits(frame.hdr);
      msg.has_header = false;
      msg.hdr = TransportHeader{};
      link.in_log.push_back({msg, frame.hdr.tag});
    }
    if (frame.hdr.flags & kFrameEor)
      link.closed_tag = std::max(link.closed_tag, frame.hdr.tag);
    if (frame.hdr.flags & kFrameFin) link.fin_processed = true;
  }
}

bool ReliableChannel::ready_for_logical(std::uint64_t round) const {
  if (round == 0) return true;  // round 0 delivers an empty inbox
  const auto need = static_cast<std::int64_t>(round) - 1;
  for (const Link& link : links_) {
    // A processed FIN covers every later round: the peer halted and its
    // items were sequenced, so nothing for `need` can still be in flight.
    if (!link.fin_processed && link.closed_tag < need) return false;
  }
  return true;
}

void ReliableChannel::execute_logical(NodeContext& ctx, std::uint64_t round) {
  const auto prev = static_cast<std::int64_t>(round) - 1;
  inner_inbox_.clear();
  for (Link& link : links_) {
    while (link.in_head < link.in_log.size() &&
           link.in_log[link.in_head].tag == prev) {
      inner_inbox_.push_back(link.in_log[link.in_head].msg);
      ++link.in_head;
    }
    if (link.in_head == link.in_log.size()) {
      // Reader caught up: compact to size 0 but keep the capacity, so the
      // log never reallocates in steady state.
      link.in_log.clear();
      link.in_head = 0;
    }
  }

  // The inner protocol runs against its own staging buffer with the inner
  // limits, its own logical round number, and the node's persistent RNG —
  // the exact stream a fault-free direct run would consume.
  buffer_.begin(ctx.self(), round, ctx.neighbors(), inner_limits_);
  NodeContext inner_ctx(buffer_, ctx.self(), round, ctx.neighbors(),
                        ctx.rng());
  inner_->on_round(inner_ctx, inner_inbox_);
  ++stats_.logical_rounds;

  std::vector<std::size_t> out_before(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i)
    out_before[i] = links_[i].out.size();

  buffer_.for_each_staged([&](NodeId dst, const WireRecord& rec) {
    const auto it = std::lower_bound(
        links_.begin(), links_.end(), dst,
        [](const Link& link, NodeId peer) { return link.peer < peer; });
    Message frame;
    frame.src = rec.src;
    frame.dst = dst;
    frame.kind = rec.kind;
    frame.field = rec.field;
    frame.bits = static_cast<int>(rec.bits);
    frame.has_header = true;
    frame.hdr.tag = static_cast<std::int64_t>(round);
    frame.hdr.flags = kFrameItem;
    // The padding the inner declared beyond its honest (headerless) size.
    enqueue_item(*it, frame,
                 static_cast<int>(rec.bits) - min_payload_bits(rec.field));
  });

  const bool halting = buffer_.halt_requested();
  for (std::size_t i = 0; i < links_.size(); ++i) {
    Link& link = links_[i];
    if (link.out.size() > out_before[i]) {
      // The round's last item doubles as its end-of-round marker (and as
      // the FIN when the inner halted) — no extra frame needed.
      auto& flags = link.out.back().frame.hdr.flags;
      flags = static_cast<std::uint8_t>(flags | kFrameEor |
                                        (halting ? kFrameFin : 0));
    } else {
      Message token;
      token.src = ctx.self();
      token.dst = link.peer;
      token.kind = halting ? kFin : kToken;
      token.has_header = true;
      token.hdr.tag = static_cast<std::int64_t>(round);
      token.hdr.flags = static_cast<std::uint8_t>(
          kFrameItem | kFrameEor | (halting ? kFrameFin : 0));
      enqueue_item(link, token, 0);
    }
  }
  if (halting) inner_halted_ = true;
  buffer_.clear();
}

void ReliableChannel::enqueue_item(Link& link, Message frame, int extra_bits) {
  frame.hdr.seq = static_cast<std::int64_t>(link.out.size());
  link.out.push_back({frame, extra_bits});
}

void ReliableChannel::transmit(NodeContext& ctx, std::uint64_t now) {
  for (Link& link : links_) {
    const auto send_item = [&](std::int64_t idx) {
      const OutItem& item = link.out[static_cast<std::size_t>(idx)];
      Message frame = item.frame;
      frame.hdr.ack = link.cum_recv;
      frame.bits = min_message_bits(frame) + item.extra_bits;
      ctx.send_frame(frame);
    };
    const auto note_retransmit = [&] {
      ++stats_.retransmissions;
      ++link.retx_count;
      DFLP_CHECK_MSG(
          link.retx_count <= options_.max_retransmits,
          "reliable link " << ctx.self() << " -> " << link.peer
                           << " is dead: item seq " << link.acked
                           << " retransmitted " << link.retx_count
                           << " times with no ack by round " << now
                           << "; peer presumed crash-stopped");
    };

    bool sent = false;
    if (link.timer_armed && link.acked < link.next_tx &&
        now - link.timer_round >= static_cast<std::uint64_t>(link.rto)) {
      // Timeout: the oldest unacked item blocks the peer's progress.
      send_item(link.acked);
      link.rto = std::min(link.rto * 2, options_.rto_max);
      link.timer_round = now;
      note_retransmit();
      sent = true;
    } else if (link.next_tx < static_cast<std::int64_t>(link.out.size()) &&
               link.next_tx - link.acked < options_.window) {
      send_item(link.next_tx);
      if (!link.timer_armed) {
        link.timer_armed = true;
        link.timer_round = now;
        link.rto = options_.rto_initial;
      }
      ++link.next_tx;
      ++stats_.items_sent;
      sent = true;
    } else if (link.timer_armed && link.acked < link.next_tx &&
               now - link.timer_round >=
                   static_cast<std::uint64_t>(options_.rto_initial)) {
      // Tail-loss probe: the slot would otherwise idle while the peer's
      // logical round stalls on the oldest unacked item, so re-send it at
      // RTT cadence instead of waiting out the backed-off timer. Never
      // fires on a loss-free link (acks arrive within rto_initial), and
      // never competes with new items, so the backoff timer still governs
      // a busy link.
      send_item(link.acked);
      note_retransmit();
      sent = true;
    } else if (link.ack_due) {
      Message frame;
      frame.src = ctx.self();
      frame.dst = link.peer;
      frame.kind = kAck;
      frame.has_header = true;
      frame.hdr.ack = link.cum_recv;
      ctx.send_frame(frame);
      ++stats_.ack_frames;
      sent = true;
    }
    if (sent) link.ack_due = false;  // every frame carries the current ack
  }
}

bool ReliableChannel::done_state() const {
  if (!inner_halted_) return false;
  for (const Link& link : links_) {
    if (link.acked < static_cast<std::int64_t>(link.out.size())) return false;
    if (!link.fin_processed) return false;
  }
  return true;
}

int reliable_bit_budget(int inner_budget, std::uint64_t max_logical_rounds) {
  // One item per link per logical round plus a FIN; 16 rounds of slack
  // absorbs the off-by-few cases. seq, ack and tag are each bounded by the
  // item count.
  const int per_word = bits_for_value(
      static_cast<std::int64_t>(max_logical_rounds + 16));
  return inner_budget + 3 * per_word + TransportHeader::kFlagBits;
}

}  // namespace dflp::net
