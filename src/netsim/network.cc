#include "netsim/network.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>

#include "common/check.h"
#include "common/mathx.h"
#include "netsim/executor.h"
#include "netsim/round_buffer.h"
#include "netsim/trace.h"

namespace dflp::net {

namespace {

// Salt separating the delivery-shuffle stream family (see the header's
// determinism contract). Arbitrary odd constant; changing it changes every
// seeded execution, so it is frozen. The fault stream salts live with the
// FaultPlan (netsim/fault.cc).
constexpr std::uint64_t kShuffleSalt = 0x5AFEC0DE5AFEC0DFULL;

}  // namespace

void MessageSink::sink_frame(NodeId from, const Message& frame) {
  DFLP_CHECK_MSG(false, "this transport does not carry reliable-channel "
                 "frames (node " << from << " -> " << frame.dst << ")");
}

int congest_bit_budget(std::size_t num_nodes) noexcept {
  return 4 * ceil_log2(static_cast<std::uint64_t>(num_nodes) + 2) + 16;
}

void NodeContext::send(NodeId to, std::uint8_t kind,
                       std::array<std::int64_t, 3> fields, int bits) {
  sink_->sink_send(self_, to, kind, fields, bits);
}

void NodeContext::broadcast(std::uint8_t kind,
                            std::array<std::int64_t, 3> fields, int bits) {
  sink_->sink_broadcast(self_, neighbors_, kind, fields, bits);
}

void NodeContext::send_frame(const Message& frame) {
  sink_->sink_frame(self_, frame);
}

void NodeContext::halt() noexcept { sink_->sink_halt(self_); }

Network::Network(std::size_t num_nodes, Options options)
    : options_(options),
      processes_(num_nodes),
      halted_(num_nodes, 0) {
  DFLP_CHECK_MSG(num_nodes > 0, "empty network");
  live_nodes_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i)
    live_nodes_.push_back(static_cast<NodeId>(i));
}

Network::Network(Network&&) noexcept = default;
Network& Network::operator=(Network&&) noexcept = default;
Network::~Network() = default;

void Network::add_edge(NodeId u, NodeId v) {
  DFLP_CHECK_MSG(!finalized_, "add_edge after finalize");
  const auto n = static_cast<NodeId>(processes_.size());
  DFLP_CHECK_MSG(u >= 0 && u < n && v >= 0 && v < n,
                 "edge (" << u << "," << v << ") out of range, n=" << n);
  DFLP_CHECK_MSG(u != v, "self loop at node " << u);
  edge_buffer_.emplace_back(u, v);
}

void Network::finalize() {
  DFLP_CHECK_MSG(!finalized_, "finalize called twice");
  const std::size_t n = processes_.size();

  // Validate the options here, with the offending value in the message,
  // rather than misbehaving silently at run time. The fault plan validates
  // its own probabilities and crash-event ranges.
  DFLP_CHECK_MSG(options_.bit_budget >= 8,
                 "Options::bit_budget must be >= 8 (the opcode alone needs "
                 "8 bits); got " << options_.bit_budget);
  DFLP_CHECK_MSG(options_.max_msgs_per_edge_per_round >= 1,
                 "Options::max_msgs_per_edge_per_round must be >= 1; got "
                     << options_.max_msgs_per_edge_per_round);
  DFLP_CHECK_MSG(options_.num_threads >= 1,
                 "Options::num_threads must be >= 1; got "
                     << options_.num_threads);
  fault_plan_ = FaultPlan(options_.faults, options_.seed, n);

  std::vector<std::int32_t> degree(n, 0);
  for (auto [u, v] : edge_buffer_) {
    ++degree[static_cast<std::size_t>(u)];
    ++degree[static_cast<std::size_t>(v)];
  }
  adj_offset_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i)
    adj_offset_[i + 1] = adj_offset_[i] + degree[i];
  adj_.assign(static_cast<std::size_t>(adj_offset_[n]), kNoNode);
  std::vector<std::int32_t> cursor(adj_offset_.begin(), adj_offset_.end() - 1);
  for (auto [u, v] : edge_buffer_) {
    adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = v;
    adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = u;
  }
  for (std::size_t i = 0; i < n; ++i) {
    auto begin = adj_.begin() + adj_offset_[i];
    auto end = adj_.begin() + adj_offset_[i + 1];
    std::sort(begin, end);
    DFLP_CHECK_MSG(std::adjacent_find(begin, end) == end,
                   "duplicate edge at node " << i);
  }
  num_edges_ = edge_buffer_.size();
  edge_buffer_.clear();
  edge_buffer_.shrink_to_fit();

  node_rngs_.reserve(n);
  Rng seeder(options_.seed);
  for (std::size_t i = 0; i < n; ++i) node_rngs_.push_back(seeder.split(i));

  buffers_.resize(n);
  slice_begin_.assign(n, 0);
  slice_count_.assign(n, 0);
  dst_count_.assign(n, 0);
  dst_cursor_.assign(n, 0);
  finalized_ = true;
}

void Network::set_process(NodeId id, std::unique_ptr<Process> process) {
  DFLP_CHECK_MSG(finalized_, "set_process before finalize");
  DFLP_CHECK(process != nullptr);
  auto& slot = processes_.at(static_cast<std::size_t>(id));
  DFLP_CHECK_MSG(slot == nullptr, "process already set for node " << id);
  slot = std::move(process);
}

std::span<const NodeId> Network::neighbors_of(NodeId id) const {
  DFLP_CHECK(finalized_);
  const auto i = static_cast<std::size_t>(id);
  DFLP_CHECK(i < processes_.size());
  return neighbors_unchecked(i);
}

bool Network::halted(NodeId id) const {
  return halted_.at(static_cast<std::size_t>(id)) != 0;
}

Process& Network::process(NodeId id) {
  auto& p = processes_.at(static_cast<std::size_t>(id));
  DFLP_CHECK_MSG(p != nullptr, "no process at node " << id);
  return *p;
}

const Process& Network::process(NodeId id) const {
  const auto& p = processes_.at(static_cast<std::size_t>(id));
  DFLP_CHECK_MSG(p != nullptr, "no process at node " << id);
  return *p;
}

void Network::order_inbox(std::span<Message> inbox, NodeId node) const {
  if (inbox.size() <= 1) return;
  switch (options_.delivery) {
    case DeliveryOrder::kBySource:
      // The commit scatter fills every slice in ascending-source order
      // (ties in send-call order) — already canonical, nothing to do.
      break;
    case DeliveryOrder::kReverseSource:
      std::sort(inbox.begin(), inbox.end(),
                [](const Message& a, const Message& b) {
                  return a.src > b.src;
                });
      break;
    case DeliveryOrder::kRandomShuffle: {
      Rng shuffle_rng(derive_stream_seed(
          options_.seed ^ kShuffleSalt,
          static_cast<std::uint64_t>(node), round_));
      shuffle_rng.shuffle(inbox.begin(), inbox.end());
      break;
    }
  }
}

NetMetrics Network::run(std::uint64_t max_rounds) {
  DFLP_CHECK_MSG(finalized_, "run before finalize");
  for (std::size_t i = 0; i < processes_.size(); ++i)
    DFLP_CHECK_MSG(processes_[i] != nullptr, "node " << i << " has no process");
  if (!executor_)
    executor_ = std::make_unique<ParallelExecutor>(options_.num_threads);

  RoundBuffer::Limits limits;
  limits.bit_budget = options_.bit_budget;
  limits.max_msgs_per_edge_per_round = options_.max_msgs_per_edge_per_round;

  // Tracing is a pure observation layer: when no tracer is attached the
  // only cost is the `if (tracer)` test per round, and with one attached
  // the execution (messages, metrics, RNG streams) is still bit-identical —
  // the tracer only reads clocks and copies counters the engine computes
  // anyway. See netsim/trace.h for the full cost contract.
  Tracer* const tracer = options_.tracer;
  limits.capture_annotations = tracer != nullptr && tracer->capture_phases();
  if (tracer) {
    TraceSection info;
    info.nodes = processes_.size();
    info.edges = num_edges_;
    info.threads = options_.num_threads;
    info.seed = options_.seed;
    info.bit_budget = options_.bit_budget;
    tracer->begin_run(info);
  }
  using TraceClock = std::chrono::steady_clock;
  const auto seconds_between = [](TraceClock::time_point a,
                                  TraceClock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };
  std::vector<TraceShard> shard_times;
  std::mutex shard_mu;
  std::map<std::string_view, std::uint64_t> phase_counts;

  const bool hazards = fault_plan_.message_hazards();
  NetMetrics run_metrics;
  // Merged even when a round throws (protocol failure under fault
  // injection): the fault counters must survive into cumulative_ so the
  // failure diagnostic can name the first lost message.
  const auto merge_cumulative = [&] {
    cumulative_.rounds += run_metrics.rounds;
    cumulative_.messages += run_metrics.messages;
    cumulative_.total_bits += run_metrics.total_bits;
    cumulative_.max_message_bits =
        std::max(cumulative_.max_message_bits, run_metrics.max_message_bits);
    cumulative_.max_messages_in_round = std::max(
        cumulative_.max_messages_in_round, run_metrics.max_messages_in_round);
    if (cumulative_.dropped == 0 && run_metrics.dropped > 0) {
      cumulative_.first_drop_round = run_metrics.first_drop_round;
      cumulative_.first_drop_src = run_metrics.first_drop_src;
      cumulative_.first_drop_dst = run_metrics.first_drop_dst;
      cumulative_.first_drop_kind = run_metrics.first_drop_kind;
    }
    cumulative_.dropped += run_metrics.dropped;
    cumulative_.duplicated += run_metrics.duplicated;
    cumulative_.crashed += run_metrics.crashed;
    cumulative_.bytes_moved += run_metrics.bytes_moved;
    cumulative_.arena_peak_messages = std::max(
        cumulative_.arena_peak_messages, run_metrics.arena_peak_messages);
  };
  try {
  for (std::uint64_t step = 0; step < max_rounds; ++step) {
    // Per-round trace state. The `before` counters turn run_metrics'
    // cumulative fault totals into round-local deltas for the record.
    std::uint64_t crashed_before = 0, dropped_before = 0, dup_before = 0;
    TraceClock::time_point t_step0{}, t_step1{}, t_commit1{}, t_scatter1{};
    if (tracer) {
      crashed_before = run_metrics.crashed;
      dropped_before = run_metrics.dropped;
      dup_before = run_metrics.duplicated;
    }

    // Crash-stop faults: remove nodes whose scheduled crash round arrived,
    // before they step this round. The crashed node's in-flight inbox dies
    // with it and its neighbours get no signal — that is the point of the
    // crash-stop model.
    if (crash_cursor_ < fault_plan_.crash_schedule().size()) {
      const auto& schedule = fault_plan_.crash_schedule();
      bool any = false;
      while (crash_cursor_ < schedule.size() &&
             schedule[crash_cursor_].round <= round_) {
        const auto i =
            static_cast<std::size_t>(schedule[crash_cursor_].node);
        ++crash_cursor_;
        if (halted_[i]) continue;  // already halted voluntarily
        halted_[i] = 1;
        buffers_[i].clear();
        ++run_metrics.crashed;
        any = true;
      }
      if (any) {
        std::erase_if(live_nodes_, [&](NodeId v) {
          return halted_[static_cast<std::size_t>(v)] != 0;
        });
      }
    }

    // Quiescence: everyone halted and nothing resident in the arena. Both
    // counters are maintained by the commit phase, so this is O(1). Every
    // staged send was committed before the previous round ended, so the
    // arena is the complete in-flight state (resume relies on this).
    if (live_nodes_.empty() && inflight_messages_ == 0) break;

    const std::size_t live_count = live_nodes_.size();

    // Step phase: every live node runs against its private buffer. Shards
    // only touch per-node state (arena slice, buffer, rng), so any
    // interleaving produces the same buffers.
    const auto step_range = [&](std::size_t begin, std::size_t end) {
      for (std::size_t k = begin; k < end; ++k) {
        const NodeId id = live_nodes_[k];
        const auto i = static_cast<std::size_t>(id);
        const std::span<Message> inbox = inbox_slice(i);
        order_inbox(inbox, id);
        const std::span<const NodeId> nbrs = neighbors_unchecked(i);
        buffers_[i].begin(id, round_, nbrs, limits);
        NodeContext ctx(buffers_[i], id, round_, nbrs, node_rngs_[i]);
        processes_[i]->on_round(ctx, std::span<const Message>(inbox));
      }
    };
    if (tracer) {
      // Each shard times itself; the mutex serialises only the trace
      // append, never the stepped nodes.
      shard_times.clear();
      t_step0 = TraceClock::now();
      executor_->for_shards(
          live_count, [&](std::size_t begin, std::size_t end) {
            const TraceClock::time_point s0 = TraceClock::now();
            step_range(begin, end);
            const TraceClock::time_point s1 = TraceClock::now();
            const std::lock_guard<std::mutex> lock(shard_mu);
            shard_times.push_back(
                {begin, end, seconds_between(s0, s1)});
          });
      t_step1 = TraceClock::now();
    } else {
      executor_->for_shards(live_count, step_range);
    }

    // Commit, pass 1 — tally: walk the staged buffers in canonical node-id
    // order, draw fault coins in send order (streams are per
    // (seed, sender, round), so the outcome is independent of how the step
    // phase was scheduled), account metrics and count survivors per
    // destination. Destinations are discovered into next_touched_ so no
    // later pass scans all N nodes. In the fault-free path the staged
    // buffers themselves feed the scatter; with drops enabled the kept
    // messages are packed into the contiguous survivors_ scratch instead,
    // so the coin stream is consumed exactly once. Halt requests are
    // collected here too, while the buffer is cache-hot, keeping the halt
    // pass O(#halts).
    std::uint64_t sent_this_round = 0;
    std::uint64_t bits_acc = 0;
    int max_bits = 0;  // round-local; merged into run_metrics after tally
    survivors_.clear();
    halt_requests_.clear();
    transport_touches_ += live_nodes_.size();
    for (NodeId sender : live_nodes_) {
      const auto i = static_cast<std::size_t>(sender);
      const std::span<const Message> staged = buffers_[i].staged();
      sent_this_round += staged.size();
      if (buffers_[i].halt_requested()) halt_requests_.push_back(sender);
      if (limits.capture_annotations) {
        for (const std::string_view phase : buffers_[i].annotations())
          ++phase_counts[phase];
      }
      if (staged.empty()) continue;
      if (hazards) {
        FaultPlan::SenderCoins coins =
            fault_plan_.begin_sender(sender, round_);
        for (const Message& msg : staged) {
          const FaultPlan::Fate fate = fault_plan_.fate(coins, msg, round_);
          if (fate.dropped) {
            if (run_metrics.dropped == 0 && cumulative_.dropped == 0) {
              run_metrics.first_drop_round = round_;
              run_metrics.first_drop_src = msg.src;
              run_metrics.first_drop_dst = msg.dst;
              run_metrics.first_drop_kind = msg.kind;
            }
            ++run_metrics.dropped;
            continue;
          }
          const int copies = fate.duplicated ? 2 : 1;
          if (fate.duplicated) ++run_metrics.duplicated;
          for (int c = 0; c < copies; ++c) {
            bits_acc += static_cast<std::uint64_t>(msg.bits);
            max_bits = std::max(max_bits, msg.bits);
            const auto dst = static_cast<std::size_t>(msg.dst);
            if (dst_count_[dst]++ == 0) next_touched_.push_back(msg.dst);
            survivors_.push_back(msg);
          }
        }
      } else {
        for (const Message& msg : staged) {
          bits_acc += static_cast<std::uint64_t>(msg.bits);
          max_bits = std::max(max_bits, msg.bits);
          const auto dst = static_cast<std::size_t>(msg.dst);
          if (dst_count_[dst]++ == 0) next_touched_.push_back(msg.dst);
        }
      }
    }
    const std::uint64_t survivors =
        hazards ? survivors_.size() : sent_this_round;
    run_metrics.messages += survivors;
    run_metrics.total_bits += bits_acc;
    run_metrics.max_message_bits =
        std::max(run_metrics.max_message_bits, max_bits);

    // Commit, pass 2 — layout: the step phase consumed the old arena, so
    // retire its slices and prefix-sum the tally into the new ones. Only
    // touched destinations are visited; dst_count_ returns to all-zero.
    for (NodeId d : touched_) slice_count_[static_cast<std::size_t>(d)] = 0;
    touched_.swap(next_touched_);
    next_touched_.clear();
    std::size_t offset = 0;
    for (NodeId d : touched_) {
      const auto dst = static_cast<std::size_t>(d);
      slice_begin_[dst] = offset;
      slice_count_[dst] = dst_count_[dst];
      dst_cursor_[dst] = offset;
      offset += static_cast<std::size_t>(dst_count_[dst]);
      dst_count_[dst] = 0;
      ++transport_touches_;
    }
    next_arena_.resize(offset);
    if (tracer) t_commit1 = TraceClock::now();

    // Commit, pass 3 — scatter survivors into their slices. The source is
    // read in canonical order (ascending sender, ties in send-call order),
    // so every slice fills in exactly that order. Sharded over destination
    // id ranges: each shard scans the whole survivor stream but writes
    // only the destinations it owns, so no two shards touch the same
    // cursor or arena cell. Fault-free rounds scatter straight from the
    // staged buffers; rounds with drops read the pre-filtered survivors_
    // scratch so the fault coins are not re-drawn.
    if (survivors > 0) {
      if (hazards) {
        executor_->for_shards(
            processes_.size(), [&](std::size_t d_lo, std::size_t d_hi) {
              for (const Message& msg : survivors_) {
                const auto dst = static_cast<std::size_t>(msg.dst);
                if (dst < d_lo || dst >= d_hi) continue;
                next_arena_[dst_cursor_[dst]++] = msg;
              }
            });
      } else {
        executor_->for_shards(
            processes_.size(), [&](std::size_t d_lo, std::size_t d_hi) {
              for (NodeId sender : live_nodes_) {
                const auto i = static_cast<std::size_t>(sender);
                for (const Message& msg : buffers_[i].staged()) {
                  const auto dst = static_cast<std::size_t>(msg.dst);
                  if (dst < d_lo || dst >= d_hi) continue;
                  next_arena_[dst_cursor_[dst]++] = msg;
                }
              }
            });
      }
    }
    arena_.swap(next_arena_);
    inflight_messages_ = survivors;
    if (tracer) t_scatter1 = TraceClock::now();
    run_metrics.bytes_moved += survivors * sizeof(Message);
    run_metrics.arena_peak_messages =
        std::max(run_metrics.arena_peak_messages, survivors);

    // Commit, pass 4 — halts: apply the requests collected in pass 1 and
    // compact the live list. Only halting nodes need their buffer dropped
    // here (they are never stepped again); every surviving node's buffer
    // is re-armed by begin() at the start of its next step, so this pass
    // is O(#halts), not O(live).
    if (!halt_requests_.empty()) {
      for (NodeId v : halt_requests_) {
        const auto i = static_cast<std::size_t>(v);
        halted_[i] = 1;
        buffers_[i].clear();
      }
      std::erase_if(live_nodes_, [&](NodeId v) {
        return halted_[static_cast<std::size_t>(v)] != 0;
      });
    }

    run_metrics.max_messages_in_round =
        std::max(run_metrics.max_messages_in_round, sent_this_round);

    if (tracer) {
      TraceRound record;
      record.round = round_;
      record.live = live_count;
      record.sent = sent_this_round;
      record.delivered = survivors;
      record.dropped = run_metrics.dropped - dropped_before;
      record.duplicated = run_metrics.duplicated - dup_before;
      record.crashed = run_metrics.crashed - crashed_before;
      record.halted = halt_requests_.size();
      record.bits = bits_acc;
      record.max_bits = max_bits;
      record.arena = survivors;
      record.step_s = seconds_between(t_step0, t_step1);
      record.commit_s = seconds_between(t_step1, t_commit1);
      record.scatter_s = seconds_between(t_commit1, t_scatter1);
      // Shards finish in scheduler order; present them by live-list range.
      std::sort(shard_times.begin(), shard_times.end(),
                [](const TraceShard& a, const TraceShard& b) {
                  return a.begin < b.begin;
                });
      record.shards = shard_times;
      record.phases.reserve(phase_counts.size());
      for (const auto& [phase, count] : phase_counts)
        record.phases.emplace_back(std::string(phase), count);
      phase_counts.clear();
      tracer->on_round(std::move(record));
    }

    run_metrics.rounds += 1;
    round_ += 1;
  }
  } catch (...) {
    merge_cumulative();
    throw;
  }

  merge_cumulative();
  return run_metrics;
}

}  // namespace dflp::net
