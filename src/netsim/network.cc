#include "netsim/network.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>

#include "common/check.h"
#include "common/mathx.h"
#include "netsim/executor.h"
#include "netsim/round_buffer.h"
#include "netsim/trace.h"

namespace dflp::net {

namespace {

// Salt separating the delivery-shuffle stream family (see the header's
// determinism contract). Arbitrary odd constant; changing it changes every
// seeded execution, so it is frozen. The fault stream salts live with the
// FaultPlan (netsim/fault.cc).
constexpr std::uint64_t kShuffleSalt = 0x5AFEC0DE5AFEC0DFULL;

// Prefetch look-ahead distances for the commit/gather streaming loops. The
// gather chases one pointer per arena slot and the broadcast scatter one
// cursor per neighbour — both walk long regular sequences whose next
// addresses are known well in advance, which is exactly the pattern
// hardware prefetchers miss (the addresses are data-dependent). Values
// tuned on the storm benchmark; they only hide latency, never change
// results.
constexpr std::size_t kGatherPrefetch = 32;
constexpr std::size_t kScatterPrefetch = 16;
// Scan-mode gather: one line per neighbour — the stamp carries the first
// record inline, so there is no dependent second load to chase.
constexpr std::size_t kScanPrefetch = 8;

}  // namespace

void MessageSink::sink_frame(NodeId from, const Message& frame) {
  DFLP_CHECK_MSG(false, "this transport does not carry reliable-channel "
                 "frames (node " << from << " -> " << frame.dst << ")");
}

int congest_bit_budget(std::size_t num_nodes) noexcept {
  return 4 * ceil_log2(static_cast<std::uint64_t>(num_nodes) + 2) + 16;
}

void NodeContext::send(NodeId to, std::uint8_t kind,
                       std::array<std::int64_t, 3> fields, int bits) {
  sink_->sink_send(self_, to, kind, fields, bits);
}

void NodeContext::broadcast(std::uint8_t kind,
                            std::array<std::int64_t, 3> fields, int bits) {
  sink_->sink_broadcast(self_, neighbors_, kind, fields, bits);
}

void NodeContext::send_frame(const Message& frame) {
  sink_->sink_frame(self_, frame);
}

void NodeContext::halt() noexcept { sink_->sink_halt(self_); }

Network::Network(std::size_t num_nodes, Options options)
    : options_(options),
      processes_(num_nodes),
      halted_(num_nodes, 0) {
  DFLP_CHECK_MSG(num_nodes > 0, "empty network");
  live_nodes_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i)
    live_nodes_.push_back(static_cast<NodeId>(i));
}

Network::Network(Network&&) noexcept = default;
Network& Network::operator=(Network&&) noexcept = default;
Network::~Network() = default;

void Network::add_edge(NodeId u, NodeId v) {
  DFLP_CHECK_MSG(!finalized_, "add_edge after finalize");
  DFLP_CHECK_MSG(options_.topology != Topology::kClique,
                 "add_edge (" << u << "," << v
                              << ") under Topology::kClique — the clique's "
                                 "edges are implicit");
  const auto n = static_cast<NodeId>(processes_.size());
  DFLP_CHECK_MSG(u >= 0 && u < n && v >= 0 && v < n,
                 "edge (" << u << "," << v << ") out of range, n=" << n);
  DFLP_CHECK_MSG(u != v, "self loop at node " << u);
  edge_buffer_.emplace_back(u, v);
}

void Network::finalize() {
  DFLP_CHECK_MSG(!finalized_, "finalize called twice");
  const std::size_t n = processes_.size();

  // Validate the options here, with the offending value in the message,
  // rather than misbehaving silently at run time. The fault plan validates
  // its own probabilities and crash-event ranges.
  DFLP_CHECK_MSG(options_.bit_budget >= 8,
                 "Options::bit_budget must be >= 8 (the opcode alone needs "
                 "8 bits); got " << options_.bit_budget);
  DFLP_CHECK_MSG(options_.max_msgs_per_edge_per_round >= 1,
                 "Options::max_msgs_per_edge_per_round must be >= 1; got "
                     << options_.max_msgs_per_edge_per_round);
  DFLP_CHECK_MSG(options_.num_threads >= 1,
                 "Options::num_threads must be >= 1; got "
                     << options_.num_threads);
  fault_plan_ = FaultPlan(options_.faults, options_.seed, n);

  clique_ = options_.topology == Topology::kClique;
  if (clique_) {
    // Implicit all-to-all adjacency: the rotation array clique_adj_[k] =
    // k mod n gives every node its N-1 neighbour span in O(n) total
    // storage; no CSR, no per-directed-edge allowance slab.
    DFLP_CHECK_MSG(n >= 2, "Topology::kClique needs >= 2 nodes; got " << n);
    clique_adj_.resize(2 * n - 1);
    for (std::size_t k = 0; k < clique_adj_.size(); ++k)
      clique_adj_[k] = static_cast<NodeId>(k < n ? k : k - n);
    num_edges_ = n * (n - 1) / 2;
  } else {
    std::vector<std::int32_t> degree(n, 0);
    for (auto [u, v] : edge_buffer_) {
      ++degree[static_cast<std::size_t>(u)];
      ++degree[static_cast<std::size_t>(v)];
    }
    adj_offset_.assign(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i)
      adj_offset_[i + 1] = adj_offset_[i] + degree[i];
    adj_.assign(static_cast<std::size_t>(adj_offset_[n]), kNoNode);
    std::vector<std::int32_t> cursor(adj_offset_.begin(),
                                     adj_offset_.end() - 1);
    for (auto [u, v] : edge_buffer_) {
      adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] =
          v;
      adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] =
          u;
    }
    for (std::size_t i = 0; i < n; ++i) {
      auto begin = adj_.begin() + adj_offset_[i];
      auto end = adj_.begin() + adj_offset_[i + 1];
      std::sort(begin, end);
      DFLP_CHECK_MSG(std::adjacent_find(begin, end) == end,
                     "duplicate edge at node " << i);
    }
    num_edges_ = edge_buffer_.size();
  }
  edge_buffer_.clear();
  edge_buffer_.shrink_to_fit();

  node_rngs_.reserve(n);
  Rng seeder(options_.seed);
  for (std::size_t i = 0; i < n; ++i) node_rngs_.push_back(seeder.split(i));

  // Staging state: one log (and one gather scratch) per possible step
  // shard, double-buffered by round parity so last round's records stay
  // addressable while this round stages; one allowance slab slot per
  // directed CSR edge. All of it is allocated once here and recycled
  // across rounds and run() calls.
  const auto num_shards = static_cast<std::size_t>(options_.num_threads);
  for (auto& set : stage_logs_) {
    set.resize(num_shards);
    for (StageLog& log : set) log.dst_count.assign(n, 0);
  }
  inbox_scratch_.resize(num_shards);
  header_scratch_.resize(num_shards);
  for (auto& set : rec_ranges_) set.assign(n, RecRange{});
  edge_sends_slab_.assign(adj_.size(), 0);
  if (clique_) {
    clique_scratch_.resize(num_shards);
    for (CliqueScratch& cs : clique_scratch_) {
      cs.stamp.assign(n, 0);
      cs.counts.assign(n, 0);
      cs.epoch = 0;  // begin() bumps before first use, so stamp 0 is stale
    }
  }
  slice_begin_.assign(n, 0);
  slice_count_.assign(n, 0);
  dst_count_.assign(n, 0);
  dst_cursor_.assign(n, 0);
  finalized_ = true;
}

void Network::set_process(NodeId id, std::unique_ptr<Process> process) {
  DFLP_CHECK_MSG(finalized_, "set_process before finalize");
  DFLP_CHECK(process != nullptr);
  auto& slot = processes_.at(static_cast<std::size_t>(id));
  DFLP_CHECK_MSG(slot == nullptr, "process already set for node " << id);
  slot = std::move(process);
}

std::span<const NodeId> Network::neighbors_of(NodeId id) const {
  DFLP_CHECK(finalized_);
  const auto i = static_cast<std::size_t>(id);
  DFLP_CHECK(i < processes_.size());
  return neighbors_unchecked(i);
}

bool Network::halted(NodeId id) const {
  return halted_.at(static_cast<std::size_t>(id)) != 0;
}

Process& Network::process(NodeId id) {
  auto& p = processes_.at(static_cast<std::size_t>(id));
  DFLP_CHECK_MSG(p != nullptr, "no process at node " << id);
  return *p;
}

const Process& Network::process(NodeId id) const {
  const auto& p = processes_.at(static_cast<std::size_t>(id));
  DFLP_CHECK_MSG(p != nullptr, "no process at node " << id);
  return *p;
}

std::span<Message> Network::gather_inbox(std::size_t i,
                                         std::vector<Message>& scratch) {
  if (deliver_by_scan_) {
    // Scan-mode delivery: read each in-neighbour's staged record range
    // straight out of last round's logs. Sorted adjacency gives ascending
    // source, record order gives send order — the canonical inbox without
    // any slot permutation having been built.
    const std::vector<StageLog>& plogs = *prev_logs_;
    const std::vector<RecRange>& ranges =
        rec_ranges_[static_cast<std::size_t>(round_ & 1) ^ 1u];
    const NodeId self = static_cast<NodeId>(i);
    std::size_t count = 0;
    const auto scan_sender = [&](NodeId u) {
      const RecRange& range = ranges[static_cast<std::size_t>(u)];
      if (range.round + 1 != round_) return;  // u did not step last round
      for (std::uint32_t ri = range.lo; ri < range.hi; ++ri) {
        const WireRecord& rec = ri == range.lo
                                    ? range.first
                                    : plogs[range.li].records[ri];
        if (!(rec.flags & kWireBroadcast) && rec.dst != self) continue;
        if (count == scratch.size()) scratch.resize(count + 1);
        Message& m = scratch[count++];
        m.src = rec.src;
        m.dst = self;
        m.kind = rec.kind;
        m.field = rec.field;
        m.bits = static_cast<int>(rec.bits);
        if (rec.flags & kWireHasHeader) {
          // Rare (reliable-channel frames): headers sit in the log's sparse
          // side list, ascending by record index.
          const std::vector<StagedHeader>& headers = plogs[range.li].headers;
          const auto it = std::lower_bound(
              headers.begin(), headers.end(), ri,
              [](const StagedHeader& h, std::uint32_t r) {
                return h.record < r;
              });
          m.has_header = true;
          m.hdr = it->hdr;
        } else {
          // hdr is left untouched: its bytes are only meaningful under
          // has_header (message.h), and skipping the 32-byte zeroing cuts
          // the per-delivery write traffic by ~40%.
          m.has_header = false;
        }
      }
    };
    if (clique_) {
      // Implicit all-to-all: every other node is an in-neighbour. Ascending
      // id order (not the rotated neighbour span) keeps the inbox in the
      // canonical ascending-source order the arena path produces.
      const std::size_t n = processes_.size();
      for (std::size_t u = 0; u < n; ++u) {
        if (u + kScanPrefetch < n) __builtin_prefetch(&ranges[u + kScanPrefetch]);
        if (u == i) continue;
        scan_sender(static_cast<NodeId>(u));
      }
      return {scratch.data(), count};
    }
    const std::span<const NodeId> nbrs = neighbors_unchecked(i);
    for (std::size_t idx = 0; idx < nbrs.size(); ++idx) {
      // One prefetched line per neighbour: the stamp replicates the first
      // staged record inline, so the common one-record-per-sender case is a
      // single random read with no dependent stamp -> record chase.
      if (idx + kScanPrefetch < nbrs.size())
        __builtin_prefetch(
            &ranges[static_cast<std::size_t>(nbrs[idx + kScanPrefetch])]);
      scan_sender(nbrs[idx]);
    }
    return {scratch.data(), count};
  }
  const auto count = static_cast<std::size_t>(slice_count_[i]);
  if (count == 0) return {};
  // Grown, never shrunk: stale elements past `count` are dead capacity and
  // the per-round reuse is what keeps steady-state gathers allocation-free.
  if (scratch.size() < count) scratch.resize(count);
  const std::size_t begin = slice_begin_[i];
  const WireRecord* const* perm = arena_.data();
  const std::size_t perm_size = arena_.size();
  const NodeId self = static_cast<NodeId>(i);
  for (std::size_t j = 0; j < count; ++j) {
    const std::size_t slot = begin + j;
    if (slot + kGatherPrefetch < perm_size)
      __builtin_prefetch(perm[slot + kGatherPrefetch]);
    const WireRecord& rec = *perm[slot];
    Message& m = scratch[j];
    m.src = rec.src;
    m.dst = self;  // resolved: broadcast records carry no destination
    m.kind = rec.kind;
    m.field = rec.field;
    m.bits = static_cast<int>(rec.bits);
    if (rec.flags & kWireHasHeader) {
      // Rare (reliable-channel frames only): the header rides in the
      // sparse slot-keyed side table built by the scatter.
      const auto it = std::lower_bound(
          header_slots_.begin(), header_slots_.end(), slot,
          [](const HeaderSlot& h, std::size_t s) { return h.slot < s; });
      m.has_header = true;
      m.hdr = it->hdr;
    } else {
      // hdr is left untouched: its bytes are only meaningful under
      // has_header (message.h), and skipping the 32-byte zeroing cuts the
      // per-delivery write traffic by ~40%.
      m.has_header = false;
    }
  }
  return {scratch.data(), count};
}

void Network::order_inbox(std::span<Message> inbox, NodeId node) const {
  if (inbox.size() <= 1) return;
  switch (options_.delivery) {
    case DeliveryOrder::kBySource:
      // The commit scatter fills every slice in ascending-source order
      // (ties in send-call order) — already canonical, nothing to do.
      break;
    case DeliveryOrder::kReverseSource:
      std::sort(inbox.begin(), inbox.end(),
                [](const Message& a, const Message& b) {
                  return a.src > b.src;
                });
      break;
    case DeliveryOrder::kRandomShuffle: {
      Rng shuffle_rng(derive_stream_seed(
          options_.seed ^ kShuffleSalt,
          static_cast<std::uint64_t>(node), round_));
      shuffle_rng.shuffle(inbox.begin(), inbox.end());
      break;
    }
  }
}

NetMetrics Network::run(std::uint64_t max_rounds) {
  DFLP_CHECK_MSG(finalized_, "run before finalize");
  for (std::size_t i = 0; i < processes_.size(); ++i)
    DFLP_CHECK_MSG(processes_[i] != nullptr, "node " << i << " has no process");
  if (!executor_)
    executor_ = std::make_unique<ParallelExecutor>(options_.num_threads);
  const std::size_t n = processes_.size();

  // Broadcast destination expansion in canonical order: explicit topologies
  // walk the sender's sorted adjacency; the clique iterates every node id
  // ascending, skipping the sender — the same ascending order, with no
  // materialized per-node list to walk.
  const auto for_each_broadcast_dst = [&](NodeId src, auto&& fn) {
    if (clique_) {
      const auto s = static_cast<std::size_t>(src);
      for (std::size_t v = 0; v < n; ++v)
        if (v != s) fn(static_cast<NodeId>(v));
    } else {
      for (const NodeId nb :
           neighbors_unchecked(static_cast<std::size_t>(src)))
        fn(nb);
    }
  };

  const bool hazards = fault_plan_.message_hazards();
  RoundBuffer::Limits limits;
  limits.bit_budget = options_.bit_budget;
  limits.max_msgs_per_edge_per_round = options_.max_msgs_per_edge_per_round;
  // tally_destinations is set per round below: hazard commits re-count per
  // surviving copy, and rounds predicted to commit in scan mode discard
  // the histogram unread, so staging skips it in both cases.

  // Tracing is a pure observation layer: when no tracer is attached the
  // only cost is the `if (tracer)` test per round, and with one attached
  // the execution (messages, metrics, RNG streams) is still bit-identical —
  // the tracer only reads clocks and copies counters the engine computes
  // anyway. See netsim/trace.h for the full cost contract.
  Tracer* const tracer = options_.tracer;
  limits.capture_annotations = tracer != nullptr && tracer->capture_phases();
  if (tracer) {
    TraceSection info;
    info.nodes = processes_.size();
    info.edges = num_edges_;
    info.threads = options_.num_threads;
    info.seed = options_.seed;
    info.bit_budget = options_.bit_budget;
    tracer->begin_run(info);
  }
  using TraceClock = std::chrono::steady_clock;
  const auto seconds_between = [](TraceClock::time_point a,
                                  TraceClock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };
  std::vector<TraceShard> shard_times;
  std::mutex shard_mu;
  std::map<std::string_view, std::uint64_t> phase_counts;

  // Shard claim counters, reset per round. Deliberately locals: Network
  // stays movable (std::atomic is not), and claim order is scrubbed out by
  // the commit's range_begin sort anyway.
  std::atomic<std::size_t> log_claim{0};
  std::atomic<std::size_t> scatter_claim{0};

  NetMetrics run_metrics;
  // Merged even when a round throws (protocol failure under fault
  // injection): the fault counters must survive into cumulative_ so the
  // failure diagnostic can name the first lost message.
  const auto merge_cumulative = [&] {
    cumulative_.rounds += run_metrics.rounds;
    cumulative_.messages += run_metrics.messages;
    cumulative_.total_bits += run_metrics.total_bits;
    cumulative_.max_message_bits =
        std::max(cumulative_.max_message_bits, run_metrics.max_message_bits);
    cumulative_.max_messages_in_round = std::max(
        cumulative_.max_messages_in_round, run_metrics.max_messages_in_round);
    if (cumulative_.dropped == 0 && run_metrics.dropped > 0) {
      cumulative_.first_drop_round = run_metrics.first_drop_round;
      cumulative_.first_drop_src = run_metrics.first_drop_src;
      cumulative_.first_drop_dst = run_metrics.first_drop_dst;
      cumulative_.first_drop_kind = run_metrics.first_drop_kind;
    }
    cumulative_.dropped += run_metrics.dropped;
    cumulative_.duplicated += run_metrics.duplicated;
    cumulative_.crashed += run_metrics.crashed;
    cumulative_.bytes_moved += run_metrics.bytes_moved;
    cumulative_.arena_peak_messages = std::max(
        cumulative_.arena_peak_messages, run_metrics.arena_peak_messages);
  };
  try {
  for (std::uint64_t step = 0; step < max_rounds; ++step) {
    // Per-round trace state. The `before` counters turn run_metrics'
    // cumulative fault totals into round-local deltas for the record.
    std::uint64_t crashed_before = 0, dropped_before = 0, dup_before = 0;
    TraceClock::time_point t_step0{}, t_step1{}, t_commit1{}, t_scatter1{};
    if (tracer) {
      crashed_before = run_metrics.crashed;
      dropped_before = run_metrics.dropped;
      dup_before = run_metrics.duplicated;
    }

    // Crash-stop faults: remove nodes whose scheduled crash round arrived,
    // before they step this round. The crashed node's in-flight inbox dies
    // with it and its neighbours get no signal — that is the point of the
    // crash-stop model.
    if (crash_cursor_ < fault_plan_.crash_schedule().size()) {
      const auto& schedule = fault_plan_.crash_schedule();
      bool any = false;
      while (crash_cursor_ < schedule.size() &&
             schedule[crash_cursor_].round <= round_) {
        const auto i =
            static_cast<std::size_t>(schedule[crash_cursor_].node);
        ++crash_cursor_;
        if (halted_[i]) continue;  // already halted voluntarily
        halted_[i] = 1;
        ++run_metrics.crashed;
        any = true;
      }
      if (any) {
        std::erase_if(live_nodes_, [&](NodeId v) {
          return halted_[static_cast<std::size_t>(v)] != 0;
        });
      }
    }

    // Quiescence: everyone halted and nothing resident in the arena. Both
    // counters are maintained by the commit phase, so this is O(1). Every
    // staged send was committed before the previous round ended, so the
    // arena is the complete in-flight state (resume relies on this).
    if (live_nodes_.empty() && inflight_messages_ == 0) break;

    const std::size_t live_count = live_nodes_.size();

    // This round stages into the log set of its parity; the other set
    // still backs the arena being consumed (records must stay addressable
    // until the gather below reads them).
    std::vector<StageLog>& logs =
        stage_logs_[static_cast<std::size_t>(round_ & 1)];
    prev_logs_ = &stage_logs_[static_cast<std::size_t>(round_ & 1) ^ 1u];
    log_claim.store(0, std::memory_order_relaxed);

    // Histogram prediction: tally at stage time unless the previous commit
    // chose scan mode (the tally would be discarded unread) or hazards
    // re-count anyway. A wrong prediction only costs a serial rebuild in
    // the layout pass, and the prediction is a pure function of the
    // previous round's totals — identical across thread counts.
    limits.tally_destinations = !hazards && !deliver_by_scan_;

    // Step phase: every live node gathers its inbox and runs against the
    // shard's log through a stack-local buffer. Shards only touch per-shard
    // state (claimed log, scratch, their nodes' rng and allowance slices),
    // so any interleaving produces the same logs.
    const auto step_range = [&](std::size_t begin, std::size_t end) {
      if (begin == end) return;
      const std::size_t li =
          log_claim.fetch_add(1, std::memory_order_relaxed);
      StageLog& log = logs[li];
      log.reset();
      log.range_begin = begin;
      std::vector<Message>& scratch = inbox_scratch_[li];
      std::vector<RecRange>& ranges =
          rec_ranges_[static_cast<std::size_t>(round_ & 1)];
      RoundBuffer buffer;
      for (std::size_t k = begin; k < end; ++k) {
        const NodeId id = live_nodes_[k];
        const auto i = static_cast<std::size_t>(id);
        const std::span<Message> inbox = gather_inbox(i, scratch);
        order_inbox(inbox, id);
        const std::span<const NodeId> nbrs = neighbors_unchecked(i);
        const auto rec_lo = static_cast<std::uint32_t>(log.records.size());
        if (clique_) {
          buffer.begin(id, round_, nbrs, limits, &log, {},
                       &clique_scratch_[li]);
        } else {
          buffer.begin(
              id, round_, nbrs, limits, &log,
              {edge_sends_slab_.data() + adj_offset_[i], nbrs.size()});
        }
        NodeContext ctx(buffer, id, round_, nbrs, node_rngs_[i]);
        processes_[i]->on_round(ctx, std::span<const Message>(inbox));
        // Stamp where this node's records landed so a scan-mode gather can
        // find them next round. Each node is stepped by exactly one shard
        // and the array is parity-split, so no reader or writer races this.
        RecRange& range = ranges[i];
        range.round = round_;
        range.lo = rec_lo;
        range.hi = static_cast<std::uint32_t>(log.records.size());
        range.li = static_cast<std::uint32_t>(li);
        // Replicate the first record into the stamp's tail: the copy reads
        // a line that is still hot in L1 and saves every scanning neighbour
        // a dependent random load next round.
        if (range.hi != rec_lo) range.first = log.records[rec_lo];
      }
    };
    if (tracer) {
      // Each shard times itself; the mutex serialises only the trace
      // append, never the stepped nodes.
      shard_times.clear();
      t_step0 = TraceClock::now();
      executor_->for_shards(
          live_count, [&](std::size_t begin, std::size_t end) {
            const TraceClock::time_point s0 = TraceClock::now();
            step_range(begin, end);
            const TraceClock::time_point s1 = TraceClock::now();
            const std::lock_guard<std::mutex> lock(shard_mu);
            shard_times.push_back(
                {begin, end, seconds_between(s0, s1)});
          });
      t_step1 = TraceClock::now();
    } else {
      executor_->for_shards(live_count, step_range);
    }

    // Recover the canonical serial order: shards claimed logs in scheduler
    // order, so sort the claimed set by each log's live-range begin.
    const std::size_t num_logs = log_claim.load(std::memory_order_relaxed);
    log_order_.clear();
    for (std::size_t li = 0; li < num_logs; ++li) log_order_.push_back(li);
    std::sort(log_order_.begin(), log_order_.end(),
              [&](std::size_t a, std::size_t b) {
                return logs[a].range_begin < logs[b].range_begin;
              });

    // Commit, pass 1 — tally. Fault-free rounds reduce to a merge of the
    // per-log aggregates and stage-time histograms: O(logs + touched
    // destinations), never per message — the batched accounting staging
    // already did. Rounds with message hazards walk the records in
    // canonical order instead, drawing the per-(seed, sender, round) fault
    // coins in send order (broadcasts expand here, one coin per copy in
    // adjacency order — the legacy per-copy stream) and packing survivors
    // into the contiguous survivors_ scratch so the coins are consumed
    // exactly once. Halt requests and traced annotations drain from the
    // logs either way, keeping the halt pass O(#halts).
    std::uint64_t sent_this_round = 0;
    std::uint64_t bits_acc = 0;
    std::uint64_t scan_cost = 0;
    int max_bits = 0;  // round-local; merged into run_metrics after tally
    survivors_.clear();
    halt_requests_.clear();
    transport_touches_ += live_nodes_.size();
    for (const std::size_t li : log_order_) {
      StageLog& log = logs[li];
      sent_this_round += log.messages;
      for (const NodeId v : log.halts) halt_requests_.push_back(v);
      if (limits.capture_annotations) {
        for (const std::string_view phase : log.annotations)
          ++phase_counts[phase];
      }
      if (!hazards) {
        bits_acc += log.bits_sum;
        max_bits = std::max(max_bits, log.max_bits);
        scan_cost += log.scan_cost;
        continue;
      }
      FaultPlan::SenderCoins coins;
      NodeId coin_sender = kNoNode;
      std::size_t hcur = 0;  // cursor into the log's sparse header list
      for (std::size_t ri = 0; ri < log.records.size(); ++ri) {
        const WireRecord& rec = log.records[ri];
        if (rec.src != coin_sender) {
          // Records are contiguous per sender (each node stages into one
          // log), so this opens the coin streams exactly once per sender
          // that staged anything — the legacy begin_sender cadence.
          coin_sender = rec.src;
          coins = fault_plan_.begin_sender(coin_sender, round_);
        }
        const TransportHeader* hdr = nullptr;
        if (rec.flags & kWireHasHeader) {
          while (log.headers[hcur].record != ri) ++hcur;
          hdr = &log.headers[hcur].hdr;
        }
        const auto deliver_copy = [&](NodeId to) {
          const FaultPlan::Fate fate =
              fault_plan_.fate(coins, rec.src, to, round_);
          if (fate.dropped) {
            if (run_metrics.dropped == 0 && cumulative_.dropped == 0) {
              run_metrics.first_drop_round = round_;
              run_metrics.first_drop_src = rec.src;
              run_metrics.first_drop_dst = to;
              run_metrics.first_drop_kind = rec.kind;
            }
            ++run_metrics.dropped;
            return;
          }
          const int copies = fate.duplicated ? 2 : 1;
          if (fate.duplicated) ++run_metrics.duplicated;
          for (int c = 0; c < copies; ++c) {
            bits_acc += static_cast<std::uint64_t>(rec.bits);
            max_bits = std::max(max_bits, static_cast<int>(rec.bits));
            const auto dst = static_cast<std::size_t>(to);
            if (dst_count_[dst]++ == 0) next_touched_.push_back(to);
            survivors_.push_back({&rec, hdr, to});
          }
        };
        if (rec.flags & kWireBroadcast) {
          for_each_broadcast_dst(rec.src, deliver_copy);
        } else {
          deliver_copy(rec.dst);
        }
      }
    }
    const std::uint64_t survivors =
        hazards ? survivors_.size() : sent_this_round;
    run_metrics.messages += survivors;
    run_metrics.total_bits += bits_acc;
    run_metrics.max_message_bits =
        std::max(run_metrics.max_message_bits, max_bits);

    // Delivery-mode gate (see network.h): fault-free rounds whose
    // neighbour-scan cost is within 2x the survivor count skip the layout
    // and scatter passes — next round's gathers read the records straight
    // from the logs via the RecRange stamps. Both sides of the comparison
    // are round totals, so the choice is thread-count invariant.
    const bool scan_mode = !hazards && scan_cost <= 2 * survivors;
    deliver_by_scan_ = scan_mode;
    if (scan_mode && limits.tally_destinations) {
      // Staged under an arena-mode prediction that did not hold: the
      // histograms go unread; rezero them (O(touched)) for the next claim.
      for (const std::size_t li : log_order_) {
        StageLog& log = logs[li];
        for (const NodeId d : log.touched)
          log.dst_count[static_cast<std::size_t>(d)] = 0;
        log.touched.clear();
      }
    }
    if (!scan_mode && !hazards) {
      if (limits.tally_destinations) {
        // Merge the per-log destination histograms staging already counted
        // (O(logs + touched dsts), not O(messages)), draining each log's
        // copy back to all-zero.
        for (const std::size_t li : log_order_) {
          StageLog& log = logs[li];
          for (const NodeId d : log.touched) {
            const auto dst = static_cast<std::size_t>(d);
            if (dst_count_[dst] == 0) next_touched_.push_back(d);
            dst_count_[dst] += log.dst_count[dst];
            log.dst_count[dst] = 0;
          }
          log.touched.clear();
        }
      } else {
        // Staged under a scan-mode prediction that did not hold (the
        // traffic mix shifted): rebuild the histogram from the records,
        // serially — a transition round, not the steady state.
        for (const std::size_t li : log_order_) {
          for (const WireRecord& rec : logs[li].records) {
            if (rec.flags & kWireBroadcast) {
              for_each_broadcast_dst(rec.src, [&](NodeId nb) {
                if (dst_count_[static_cast<std::size_t>(nb)]++ == 0)
                  next_touched_.push_back(nb);
              });
            } else {
              if (dst_count_[static_cast<std::size_t>(rec.dst)]++ == 0)
                next_touched_.push_back(rec.dst);
            }
          }
        }
      }
    }

    // Commit, pass 2 — layout (arena mode only): the step phase consumed
    // the old arena, so retire its slices and prefix-sum the tally into the
    // new ones. dst_count_ returns to all-zero. Sparse rounds visit only
    // the touched list; dense rounds (survivors >= N/8, a deterministic,
    // thread-invariant gate that keeps the pass O(live + messages)) rebuild
    // the touched list by one ascending scan of the count column instead —
    // branch-predictable, auto-vectorizable, and it lays slices out in
    // ascending destination order, which the scatter and gather then walk
    // monotonically. Scan-mode rounds leave the retired slices in place;
    // the next arena-mode round retires them then (touched_ still lists
    // them — scan rounds never touch it).
    std::size_t offset = 0;
    if (!scan_mode) {
      for (const NodeId d : touched_)
        slice_count_[static_cast<std::size_t>(d)] = 0;
      touched_.swap(next_touched_);
      next_touched_.clear();
      if (!touched_.empty() && survivors >= n / 8) {
        touched_.clear();
        for (std::size_t dst = 0; dst < n; ++dst) {
          if (dst_count_[dst] == 0) continue;
          touched_.push_back(static_cast<NodeId>(dst));
          slice_begin_[dst] = offset;
          slice_count_[dst] = dst_count_[dst];
          dst_cursor_[dst] = offset;
          offset += static_cast<std::size_t>(dst_count_[dst]);
          dst_count_[dst] = 0;
          ++transport_touches_;
        }
      } else {
        for (const NodeId d : touched_) {
          const auto dst = static_cast<std::size_t>(d);
          slice_begin_[dst] = offset;
          slice_count_[dst] = dst_count_[dst];
          dst_cursor_[dst] = offset;
          offset += static_cast<std::size_t>(dst_count_[dst]);
          dst_count_[dst] = 0;
          ++transport_touches_;
        }
      }
      next_arena_.resize(offset);
    }
    if (tracer) t_commit1 = TraceClock::now();

    // Commit, pass 3 — scatter: write each surviving record's address into
    // its destination slice (8-byte slots — the payload columns never
    // move), expanding broadcast records over the sender's adjacency.
    // Sharded over destination id ranges: each shard scans the whole
    // record stream in canonical order but writes only the destinations it
    // owns, so no two shards touch the same cursor or arena cell, and
    // every slice fills in ascending-sender order with ties in send-call
    // order. Headers of framed records are collected per shard with their
    // assigned slots and merged into the sorted side table afterwards
    // (empty on protocol-only traffic). Rounds with drops read the
    // pre-filtered survivors_ scratch so the fault coins are not re-drawn.
    scatter_claim.store(0, std::memory_order_relaxed);
    if (!scan_mode) header_slots_.clear();
    if (!scan_mode && survivors > 0) {
      const auto scatter_range = [&](std::size_t d_lo, std::size_t d_hi) {
        if (d_lo == d_hi) return;
        const std::size_t si =
            scatter_claim.fetch_add(1, std::memory_order_relaxed);
        std::vector<HeaderSlot>& hout = header_scratch_[si];
        hout.clear();
        if (hazards) {
          for (const Survivor& s : survivors_) {
            const auto dst = static_cast<std::size_t>(s.dst);
            if (dst < d_lo || dst >= d_hi) continue;
            const std::size_t slot = dst_cursor_[dst]++;
            next_arena_[slot] = s.rec;
            if (s.hdr != nullptr) hout.push_back({slot, *s.hdr});
          }
          return;
        }
        for (const std::size_t li : log_order_) {
          const StageLog& log = logs[li];
          std::size_t hcur = 0;
          for (std::size_t ri = 0; ri < log.records.size(); ++ri) {
            const WireRecord& rec = log.records[ri];
            if (rec.flags & kWireBroadcast) {
              if (clique_) {
                // All-to-all fan-out: the shard's owned destination range
                // IS the copy set (minus the sender) — walk it directly,
                // ascending, instead of filtering an adjacency list.
                const auto src = static_cast<std::size_t>(rec.src);
                for (std::size_t dst = d_lo; dst < d_hi; ++dst) {
                  if (dst == src) continue;
                  next_arena_[dst_cursor_[dst]++] = &rec;
                }
                continue;
              }
              const std::span<const NodeId> nbrs =
                  neighbors_unchecked(static_cast<std::size_t>(rec.src));
              for (std::size_t j = 0; j < nbrs.size(); ++j) {
                if (j + kScatterPrefetch < nbrs.size())
                  __builtin_prefetch(&dst_cursor_[static_cast<std::size_t>(
                      nbrs[j + kScatterPrefetch])]);
                const auto dst = static_cast<std::size_t>(nbrs[j]);
                if (dst < d_lo || dst >= d_hi) continue;
                next_arena_[dst_cursor_[dst]++] = &rec;
              }
              continue;
            }
            const auto dst = static_cast<std::size_t>(rec.dst);
            const bool owned = dst >= d_lo && dst < d_hi;
            if (rec.flags & kWireHasHeader) {
              while (log.headers[hcur].record != ri) ++hcur;
              if (owned) {
                const std::size_t slot = dst_cursor_[dst]++;
                next_arena_[slot] = &rec;
                hout.push_back({slot, log.headers[hcur].hdr});
              }
              continue;
            }
            if (owned) next_arena_[dst_cursor_[dst]++] = &rec;
          }
        }
      };
      executor_->for_shards(n, scatter_range);
      const std::size_t num_scatter =
          scatter_claim.load(std::memory_order_relaxed);
      for (std::size_t si = 0; si < num_scatter; ++si) {
        header_slots_.insert(header_slots_.end(), header_scratch_[si].begin(),
                             header_scratch_[si].end());
      }
      std::sort(header_slots_.begin(), header_slots_.end(),
                [](const HeaderSlot& a, const HeaderSlot& b) {
                  return a.slot < b.slot;
                });
    }
    if (!scan_mode) arena_.swap(next_arena_);
    inflight_messages_ = survivors;
    if (tracer) t_scatter1 = TraceClock::now();
    // Logical delivery volume: survivors times the full 80-byte Message
    // view a receiver reads — a layout-independent constant, kept
    // comparable across engine generations (the SoA transport physically
    // moves 8-byte slots plus one gather per delivery).
    run_metrics.bytes_moved += survivors * sizeof(Message);
    run_metrics.arena_peak_messages =
        std::max(run_metrics.arena_peak_messages, survivors);

    // Commit, pass 4 — halts: apply the requests collected in pass 1 and
    // compact the live list. Staged state lives in the logs (reset when
    // next claimed), so this pass is O(#halts), not O(live).
    if (!halt_requests_.empty()) {
      for (const NodeId v : halt_requests_)
        halted_[static_cast<std::size_t>(v)] = 1;
      std::erase_if(live_nodes_, [&](NodeId v) {
        return halted_[static_cast<std::size_t>(v)] != 0;
      });
    }

    run_metrics.max_messages_in_round =
        std::max(run_metrics.max_messages_in_round, sent_this_round);

    if (tracer) {
      TraceRound record;
      record.round = round_;
      record.live = live_count;
      record.sent = sent_this_round;
      record.delivered = survivors;
      record.dropped = run_metrics.dropped - dropped_before;
      record.duplicated = run_metrics.duplicated - dup_before;
      record.crashed = run_metrics.crashed - crashed_before;
      record.halted = halt_requests_.size();
      record.bits = bits_acc;
      record.max_bits = max_bits;
      record.arena = survivors;
      record.step_s = seconds_between(t_step0, t_step1);
      record.commit_s = seconds_between(t_step1, t_commit1);
      record.scatter_s = seconds_between(t_commit1, t_scatter1);
      // Shards finish in scheduler order; present them by live-list range.
      std::sort(shard_times.begin(), shard_times.end(),
                [](const TraceShard& a, const TraceShard& b) {
                  return a.begin < b.begin;
                });
      record.shards = shard_times;
      record.phases.reserve(phase_counts.size());
      for (const auto& [phase, count] : phase_counts)
        record.phases.emplace_back(std::string(phase), count);
      phase_counts.clear();
      tracer->on_round(std::move(record));
    }

    run_metrics.rounds += 1;
    round_ += 1;
  }
  } catch (...) {
    merge_cumulative();
    throw;
  }

  merge_cumulative();
  return run_metrics;
}

}  // namespace dflp::net
