#include "netsim/network.h"

#include <algorithm>

#include "common/check.h"
#include "common/mathx.h"
#include "netsim/executor.h"
#include "netsim/round_buffer.h"

namespace dflp::net {

namespace {

// Salts separating the engine's derived stream families (see the header's
// determinism contract). Arbitrary odd constants; changing them changes
// every seeded execution, so they are frozen.
constexpr std::uint64_t kShuffleSalt = 0x5AFEC0DE5AFEC0DFULL;
constexpr std::uint64_t kFaultSalt = 0xD20BB4B1D20BB4B3ULL;

}  // namespace

int congest_bit_budget(std::size_t num_nodes) noexcept {
  return 4 * ceil_log2(static_cast<std::uint64_t>(num_nodes) + 2) + 16;
}

void NodeContext::send(NodeId to, std::uint8_t kind,
                       std::array<std::int64_t, 3> fields, int bits) {
  sink_->sink_send(self_, to, kind, fields, bits);
}

void NodeContext::broadcast(std::uint8_t kind,
                            std::array<std::int64_t, 3> fields, int bits) {
  for (NodeId nb : neighbors_)
    sink_->sink_send(self_, nb, kind, fields, bits);
}

void NodeContext::halt() noexcept { sink_->sink_halt(self_); }

Network::Network(std::size_t num_nodes, Options options)
    : options_(options),
      processes_(num_nodes),
      halted_(num_nodes, 0),
      inboxes_(num_nodes) {
  DFLP_CHECK_MSG(num_nodes > 0, "empty network");
  DFLP_CHECK_MSG(options_.bit_budget >= 8, "budget below opcode size");
  DFLP_CHECK_MSG(options_.max_msgs_per_edge_per_round >= 1,
                 "edge allowance must be positive");
  DFLP_CHECK(options_.drop_probability >= 0.0 &&
             options_.drop_probability <= 1.0);
  DFLP_CHECK_MSG(options_.num_threads >= 1, "num_threads must be >= 1");
}

Network::Network(Network&&) noexcept = default;
Network& Network::operator=(Network&&) noexcept = default;
Network::~Network() = default;

void Network::add_edge(NodeId u, NodeId v) {
  DFLP_CHECK_MSG(!finalized_, "add_edge after finalize");
  const auto n = static_cast<NodeId>(processes_.size());
  DFLP_CHECK_MSG(u >= 0 && u < n && v >= 0 && v < n,
                 "edge (" << u << "," << v << ") out of range, n=" << n);
  DFLP_CHECK_MSG(u != v, "self loop at node " << u);
  edge_buffer_.emplace_back(u, v);
}

void Network::finalize() {
  DFLP_CHECK_MSG(!finalized_, "finalize called twice");
  const std::size_t n = processes_.size();

  std::vector<std::int32_t> degree(n, 0);
  for (auto [u, v] : edge_buffer_) {
    ++degree[static_cast<std::size_t>(u)];
    ++degree[static_cast<std::size_t>(v)];
  }
  adj_offset_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i)
    adj_offset_[i + 1] = adj_offset_[i] + degree[i];
  adj_.assign(static_cast<std::size_t>(adj_offset_[n]), kNoNode);
  std::vector<std::int32_t> cursor(adj_offset_.begin(), adj_offset_.end() - 1);
  for (auto [u, v] : edge_buffer_) {
    adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = v;
    adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = u;
  }
  for (std::size_t i = 0; i < n; ++i) {
    auto begin = adj_.begin() + adj_offset_[i];
    auto end = adj_.begin() + adj_offset_[i + 1];
    std::sort(begin, end);
    DFLP_CHECK_MSG(std::adjacent_find(begin, end) == end,
                   "duplicate edge at node " << i);
  }
  num_edges_ = edge_buffer_.size();
  edge_buffer_.clear();
  edge_buffer_.shrink_to_fit();

  node_rngs_.reserve(n);
  Rng seeder(options_.seed);
  for (std::size_t i = 0; i < n; ++i) node_rngs_.push_back(seeder.split(i));

  buffers_.resize(n);
  finalized_ = true;
}

void Network::set_process(NodeId id, std::unique_ptr<Process> process) {
  DFLP_CHECK_MSG(finalized_, "set_process before finalize");
  DFLP_CHECK(process != nullptr);
  auto& slot = processes_.at(static_cast<std::size_t>(id));
  DFLP_CHECK_MSG(slot == nullptr, "process already set for node " << id);
  slot = std::move(process);
}

std::span<const NodeId> Network::neighbors_of(NodeId id) const {
  DFLP_CHECK(finalized_);
  const auto i = static_cast<std::size_t>(id);
  DFLP_CHECK(i < processes_.size());
  return {adj_.data() + adj_offset_[i],
          static_cast<std::size_t>(adj_offset_[i + 1] - adj_offset_[i])};
}

bool Network::halted(NodeId id) const {
  return halted_.at(static_cast<std::size_t>(id)) != 0;
}

bool Network::all_halted() const noexcept {
  return std::all_of(halted_.begin(), halted_.end(),
                     [](std::uint8_t h) { return h != 0; });
}

Process& Network::process(NodeId id) {
  auto& p = processes_.at(static_cast<std::size_t>(id));
  DFLP_CHECK_MSG(p != nullptr, "no process at node " << id);
  return *p;
}

const Process& Network::process(NodeId id) const {
  const auto& p = processes_.at(static_cast<std::size_t>(id));
  DFLP_CHECK_MSG(p != nullptr, "no process at node " << id);
  return *p;
}

void Network::order_inbox(std::vector<Message>& inbox, NodeId node) const {
  switch (options_.delivery) {
    case DeliveryOrder::kBySource:
      std::sort(inbox.begin(), inbox.end(),
                [](const Message& a, const Message& b) {
                  return a.src < b.src;
                });
      break;
    case DeliveryOrder::kReverseSource:
      std::sort(inbox.begin(), inbox.end(),
                [](const Message& a, const Message& b) {
                  return a.src > b.src;
                });
      break;
    case DeliveryOrder::kRandomShuffle: {
      Rng shuffle_rng(derive_stream_seed(
          options_.seed ^ kShuffleSalt,
          static_cast<std::uint64_t>(node), round_));
      shuffle_rng.shuffle(inbox.begin(), inbox.end());
      break;
    }
  }
}

NetMetrics Network::run(std::uint64_t max_rounds) {
  DFLP_CHECK_MSG(finalized_, "run before finalize");
  for (std::size_t i = 0; i < processes_.size(); ++i)
    DFLP_CHECK_MSG(processes_[i] != nullptr, "node " << i << " has no process");
  if (!executor_)
    executor_ = std::make_unique<ParallelExecutor>(options_.num_threads);

  RoundBuffer::Limits limits;
  limits.bit_budget = options_.bit_budget;
  limits.max_msgs_per_edge_per_round = options_.max_msgs_per_edge_per_round;

  NetMetrics run_metrics;
  for (std::uint64_t step = 0; step < max_rounds; ++step) {
    // Quiescence: everyone halted and nothing queued for delivery. Every
    // staged send was committed before the previous round ended, so the
    // inboxes are the complete in-flight state (resume relies on this).
    const bool inflight = std::any_of(
        inboxes_.begin(), inboxes_.end(),
        [](const std::vector<Message>& ib) { return !ib.empty(); });
    if (all_halted() && !inflight) break;

    // Step phase: every live node runs against its private buffer. Shards
    // only touch per-node state (inbox, buffer, rng), so any interleaving
    // produces the same buffers.
    executor_->for_shards(
        processes_.size(), [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            auto& inbox = inboxes_[i];
            if (halted_[i]) {
              inbox.clear();
              continue;
            }
            const auto id = static_cast<NodeId>(i);
            order_inbox(inbox, id);
            buffers_[i].begin(id, round_, neighbors_of(id), limits);
            NodeContext ctx(buffers_[i], id, round_, neighbors_of(id),
                            node_rngs_[i]);
            processes_[i]->on_round(ctx, std::span<const Message>(inbox));
            inbox.clear();
          }
        });

    // Commit phase: drain buffers in canonical node-id order. Fault coins
    // come from per-(seed, sender, round) streams drawn in send order, so
    // the outcome is independent of how the step phase was scheduled.
    std::uint64_t sent_this_round = 0;
    for (std::size_t i = 0; i < processes_.size(); ++i) {
      RoundBuffer& buf = buffers_[i];
      const auto staged = buf.staged();
      sent_this_round += staged.size();
      if (!staged.empty()) {
        Rng fault_rng(derive_stream_seed(options_.seed ^ kFaultSalt,
                                         static_cast<std::uint64_t>(i),
                                         round_));
        for (const Message& msg : staged) {
          if (options_.drop_probability > 0.0 &&
              fault_rng.bernoulli(options_.drop_probability)) {
            ++run_metrics.dropped;
            continue;
          }
          run_metrics.messages += 1;
          run_metrics.total_bits += static_cast<std::uint64_t>(msg.bits);
          run_metrics.max_message_bits =
              std::max(run_metrics.max_message_bits, msg.bits);
          inboxes_[static_cast<std::size_t>(msg.dst)].push_back(msg);
        }
      }
      if (buf.halt_requested()) halted_[i] = 1;
      buf.clear();
    }
    run_metrics.max_messages_in_round =
        std::max(run_metrics.max_messages_in_round, sent_this_round);
    run_metrics.rounds += 1;
    round_ += 1;
  }

  cumulative_.rounds += run_metrics.rounds;
  cumulative_.messages += run_metrics.messages;
  cumulative_.total_bits += run_metrics.total_bits;
  cumulative_.max_message_bits =
      std::max(cumulative_.max_message_bits, run_metrics.max_message_bits);
  cumulative_.max_messages_in_round = std::max(
      cumulative_.max_messages_in_round, run_metrics.max_messages_in_round);
  cumulative_.dropped += run_metrics.dropped;
  return run_metrics;
}

}  // namespace dflp::net
