// Wire format for the CONGEST simulator.
//
// The CONGEST model allows each node to send one message of O(log N) bits
// per incident edge per synchronous round. The simulator makes that budget
// *checkable*: every message carries a declared wire size in bits, and the
// network rejects (throws) any send whose declared size exceeds the round
// budget or which under-declares relative to its payload magnitudes. This is
// how the tests assert that the reconstructed algorithms really are CONGEST
// algorithms rather than LOCAL algorithms in disguise.
#pragma once

#include <array>
#include <cstdint>

namespace dflp::net {

/// Node identifier within one simulated network (dense, 0-based).
using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

/// A single message. `kind` is a protocol-defined opcode; `field` holds up
/// to three integer payload words (costs are transported quantized — see
/// core/quantize.h). `bits` is the declared on-wire size.
struct Message {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  std::uint8_t kind = 0;
  std::array<std::int64_t, 3> field{0, 0, 0};
  int bits = 0;
};

/// Number of bits needed to represent |v| plus a sign bit; 1 for v == 0.
[[nodiscard]] int bits_for_value(std::int64_t v) noexcept;

/// Minimum honest wire size for a message: opcode (8 bits) plus the bits of
/// every nonzero payload word. The network checks `msg.bits >=
/// min_message_bits(msg)` so algorithms cannot cheat the budget by
/// under-declaring.
[[nodiscard]] int min_message_bits(const Message& msg) noexcept;

}  // namespace dflp::net
