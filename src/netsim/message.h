// Wire format for the CONGEST simulator.
//
// The CONGEST model allows each node to send one message of O(log N) bits
// per incident edge per synchronous round. The simulator makes that budget
// *checkable*: every message carries a declared wire size in bits, and the
// network rejects (throws) any send whose declared size exceeds the round
// budget or which under-declares relative to its payload magnitudes. This is
// how the tests assert that the reconstructed algorithms really are CONGEST
// algorithms rather than LOCAL algorithms in disguise.
//
// Two representations
// -------------------
// `Message` is the *delivery view*: what a Process reads from its inbox and
// what the staging sinks validate. It carries the rarely-used reliable
// transport header inline, which makes it comfortable to program against
// but heavy to move in bulk (sizeof(Message) is 80 bytes, most of it zeros
// on ordinary protocol traffic).
//
// `WireRecord` is the *transport staging view*: the packed 40-byte record
// the engine's structure-of-arrays arena stores and scatters. It drops the
// inline header — framed messages park their TransportHeader in a sparse
// side table keyed by arena slot (netsim/network.h) — and folds broadcast
// fan-out into a single flagged record that is expanded over the sender's
// adjacency at commit time. Records are materialized back into `Message`
// form only at delivery, one inbox slice at a time.
#pragma once

#include <array>
#include <cstdint>

namespace dflp::net {

/// Node identifier within one simulated network (dense, 0-based).
using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

/// Transport-layer header carried by reliable-channel frames
/// (netsim/reliable.h): a per-link sequence number, a cumulative ack, and
/// the logical round tag, plus flag bits. Ordinary protocol messages do not
/// carry one; when present (`Message::has_header`) its words are charged
/// into the honest wire size, so recovery overhead is paid out of the same
/// CONGEST budget as the payload.
struct TransportHeader {
  std::int64_t seq = 0;   ///< per-link item sequence number
  std::int64_t ack = 0;   ///< cumulative: items [0, ack) received in order
  std::int64_t tag = 0;   ///< logical round of the carried item
  std::uint8_t flags = 0; ///< TransportFlag bits

  /// Wire bits of the flag field (item / end-of-round / fin).
  static constexpr int kFlagBits = 3;
};

/// Flag bits of TransportHeader::flags.
enum TransportFlag : std::uint8_t {
  kFrameItem = 1, ///< frame carries a sequenced item (data, token or FIN)
  kFrameEor = 2,  ///< item is the sender's last for logical round `tag`
  kFrameFin = 4,  ///< item is the sender's final one on this link
};

/// A single message. `kind` is a protocol-defined opcode; `field` holds up
/// to three integer payload words (costs are transported quantized — see
/// core/quantize.h). `bits` is the declared on-wire size.
struct Message {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  std::uint8_t kind = 0;
  std::array<std::int64_t, 3> field{0, 0, 0};
  int bits = 0;
  /// Reliable-transport framing; absent (and free) on ordinary messages.
  bool has_header = false;
  /// Meaningful ONLY when `has_header` is set. On delivery the transport
  /// reuses inbox storage across rounds and does not re-zero this field
  /// for headerless messages, so its bytes are unspecified (and may vary
  /// with thread count) — never read it without checking `has_header`.
  TransportHeader hdr;
};

/// Flag bits of WireRecord::flags.
enum WireFlag : std::uint8_t {
  /// The record is one staged broadcast: `dst` is kNoNode and the commit
  /// scatter expands it over the sender's sorted adjacency, one delivered
  /// copy per neighbour, in adjacency order.
  kWireBroadcast = 1,
  /// A TransportHeader for this record lives in the staging log's sparse
  /// header list (reliable-channel frames only; never set on broadcasts).
  kWireHasHeader = 2,
};

/// One staged send in the transport's packed structure-of-arrays wire
/// format: the hot routing words (`src`, `dst`), the three payload words,
/// the declared bit size and the opcode — nothing else. Exactly 40 bytes so
/// a commit pass streams 2x the records per cache line that the 80-byte
/// `Message` view would allow; the static_assert below keeps it honest.
struct WireRecord {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;  ///< kNoNode on broadcast records (see WireFlag)
  std::array<std::int64_t, 3> field{0, 0, 0};
  std::int32_t bits = 0;
  std::uint8_t kind = 0;
  std::uint8_t flags = 0;  ///< WireFlag bits
};
static_assert(sizeof(WireRecord) == 40,
              "WireRecord is the packed staging format; widening it taxes "
              "every commit pass — check field order before growing it");

/// Number of bits needed to represent |v| plus a sign bit; 1 for v == 0.
[[nodiscard]] int bits_for_value(std::int64_t v) noexcept;

/// Minimum honest wire size of an unframed payload: opcode (8 bits) plus
/// the bits of every nonzero payload word. Equals min_message_bits of a
/// headerless Message with the same fields; the staging sinks and the
/// reliable channel use it to price WireRecords without building a Message.
[[nodiscard]] int min_payload_bits(
    const std::array<std::int64_t, 3>& fields) noexcept;

/// Minimum honest wire size for a message: opcode (8 bits) plus the bits of
/// every nonzero payload word, plus — for framed messages — the transport
/// header's words and flags. The network checks `msg.bits >=
/// min_message_bits(msg)` so algorithms cannot cheat the budget by
/// under-declaring.
[[nodiscard]] int min_message_bits(const Message& msg) noexcept;

}  // namespace dflp::net
