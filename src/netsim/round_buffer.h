// Per-node staging buffer for the step phase of the round engine.
//
// The step/commit contract
// ------------------------
// A round executes in two phases. In the *step* phase every live node is
// invoked with its inbox and writes its sends and its halt request into a
// private `RoundBuffer` — never into shared transport state. Buffers of
// distinct nodes share nothing, so the step phase may run nodes in any
// order, on any number of threads. In the *commit* phase the engine drains
// the buffers in canonical node-id order, applies fault injection, and
// moves the surviving messages into next round's inboxes. Because the
// commit order is fixed and every random draw comes from a stream derived
// from `(seed, node, round)` (common/rng.h `derive_stream_seed`), the whole
// execution is a pure function of (topology, processes, seed) — identical
// for every thread count and scheduling of the step phase.
//
// The buffer owns all CONGEST legality checks (adjacency, honest bit
// declaration, per-message budget, per-edge allowance, reserved opcodes),
// so they fire inside the sending node's own step with no shared state.
// Both the synchronous `Network` and the alpha-synchronizer (netsim/async.h)
// stage their wrapped protocol's sends through this one class.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "netsim/message.h"
#include "netsim/network.h"

namespace dflp::net {

class RoundBuffer final : public MessageSink {
 public:
  /// Legality limits checked at send time, supplied by the transport.
  struct Limits {
    int bit_budget = 64;
    int max_msgs_per_edge_per_round = 1;
    /// Largest opcode the staged protocol may use (the synchronizer
    /// reserves 0xFE/0xFF for its control traffic).
    std::uint8_t max_kind = 0xFF;
    /// Record NodeContext::annotate phase labels for the round tracer
    /// (netsim/trace.h). Off by default: annotations are dropped at the
    /// sink, so untraced runs pay only the virtual call.
    bool capture_annotations = false;
  };

  RoundBuffer() = default;

  /// Re-arms the buffer for one (node, round) step. `neighbors` must be the
  /// node's sorted adjacency and must outlive the step. Clears any
  /// previously staged state; capacity is retained across rounds.
  void begin(NodeId node, std::uint64_t round,
             std::span<const NodeId> neighbors, const Limits& limits);

  // MessageSink: called by NodeContext during the owner's step.
  void sink_send(NodeId from, NodeId to, std::uint8_t kind,
                 std::array<std::int64_t, 3> fields, int bits) override;
  /// Broadcast fast path: validates the payload once, then stages one copy
  /// per neighbour (checking only the per-edge allowance each time) —
  /// skips the per-send adjacency search of `degree` sink_send calls.
  void sink_broadcast(NodeId from, std::span<const NodeId> neighbors,
                      std::uint8_t kind, std::array<std::int64_t, 3> fields,
                      int bits) override;
  /// Transport-layer frame path used by the reliable channel: the frame
  /// arrives fully formed (header already attached) and is exempt from the
  /// `max_kind` protocol-opcode cap, but still pays adjacency, honest-bit,
  /// budget, and per-edge allowance checks.
  void sink_frame(NodeId from, const Message& frame) override;
  void sink_halt(NodeId node) override;
  /// Captures the phase label when `Limits::capture_annotations` is set,
  /// drops it otherwise. Labels are stored as views — callers pass string
  /// literals (see NodeContext::annotate) that outlive the commit drain.
  void sink_annotate(NodeId node, std::string_view phase) override;

  /// Messages staged this step, in send-call order, with resolved bit
  /// sizes (>= the honest minimum).
  [[nodiscard]] std::span<const Message> staged() const noexcept {
    return staged_;
  }
  [[nodiscard]] bool halt_requested() const noexcept { return halt_; }
  [[nodiscard]] NodeId owner() const noexcept { return owner_; }

  /// Phase labels annotated this step, in call order (empty unless
  /// `Limits::capture_annotations`). Drained by the commit tally.
  [[nodiscard]] std::span<const std::string_view> annotations() const noexcept {
    return annotations_;
  }

  /// Whether any message was staged to the neighbour at `neighbor_idx`
  /// (position in the adjacency list) — the synchronizer's silent-edge
  /// query for round tokens.
  [[nodiscard]] bool sent_to(std::size_t neighbor_idx) const {
    return edge_sends_.at(neighbor_idx) != 0;
  }

  /// Drops staged state after the commit phase consumed it.
  void clear() noexcept;

 private:
  NodeId owner_ = kNoNode;
  std::uint64_t round_ = 0;
  std::span<const NodeId> neighbors_;
  Limits limits_;
  std::vector<Message> staged_;
  std::vector<std::int8_t> edge_sends_;  ///< per neighbour index
  std::vector<std::string_view> annotations_;
  bool halt_ = false;
};

}  // namespace dflp::net
