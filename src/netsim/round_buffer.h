// Per-node staging facade for the step phase of the round engine.
//
// The step/commit contract
// ------------------------
// A round executes in two phases. In the *step* phase every live node is
// invoked with its inbox and writes its sends and its halt request through
// a `RoundBuffer` into a `StageLog` (netsim/network.h) — never into shared
// transport state. The engine gives each step shard one contiguous log and
// re-arms a single stack-local buffer per node, so logs of distinct shards
// share nothing and the step phase may run nodes in any order, on any
// number of threads. In the *commit* phase the engine drains the logs in
// canonical shard order, applies fault injection, and moves the surviving
// records into next round's inboxes. Because the commit order is fixed and
// every random draw comes from a stream derived from `(seed, node, round)`
// (common/rng.h `derive_stream_seed`), the whole execution is a pure
// function of (topology, processes, seed) — identical for every thread
// count and scheduling of the step phase.
//
// The buffer owns all CONGEST legality checks (adjacency, honest bit
// declaration, per-message budget, per-edge allowance, reserved opcodes),
// so they fire inside the sending node's own step with no shared state. A
// broadcast is checked per edge but staged as ONE flagged WireRecord with
// its message/bit bill settled analytically — the commit never touches
// `degree` copies until the final scatter writes their slots.
//
// Both the synchronous `Network` and the alpha-synchronizer (netsim/async.h)
// stage their wrapped protocol's sends through this one class; standalone
// consumers (the synchronizer, the reliable channel) omit the log argument
// of begin() and the buffer uses an internal private log instead.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "netsim/message.h"
#include "netsim/network.h"

namespace dflp::net {

class RoundBuffer final : public MessageSink {
 public:
  /// Legality limits checked at send time, supplied by the transport.
  struct Limits {
    int bit_budget = 64;
    int max_msgs_per_edge_per_round = 1;
    /// Largest opcode the staged protocol may use (the synchronizer
    /// reserves 0xFE/0xFF for its control traffic).
    std::uint8_t max_kind = 0xFF;
    /// Record NodeContext::annotate phase labels for the round tracer
    /// (netsim/trace.h). Off by default: annotations are dropped at the
    /// sink, so untraced runs pay only the virtual call.
    bool capture_annotations = false;
    /// Maintain the log's per-destination histogram at stage time (the
    /// engine's fault-free commit merges it instead of re-counting the
    /// records). Requires StageLog::dst_count sized to the node count, so
    /// standalone consumers leave it off.
    bool tally_destinations = false;
  };

  RoundBuffer() = default;

  /// Re-arms the buffer for one (node, round) step. `neighbors` must be the
  /// node's sorted adjacency and must outlive the step. `log` receives the
  /// staged records/halts/annotations; nullptr (the standalone default)
  /// selects the buffer's private log, which is cleared here — capacity is
  /// retained across rounds. `edge_scratch`, when non-empty, must span
  /// `neighbors.size()` slots (the engine's CSR allowance slab); it is
  /// zero-filled here. Empty uses internal storage.
  ///
  /// `clique` switches the buffer into congested-clique mode: `neighbors`
  /// is then the engine's implicit rotation (all nodes but the owner,
  /// unsorted — used only for the broadcast degree), adjacency of a unicast
  /// is checked as `0 <= to < N, to != owner`, and the per-edge allowance is
  /// charged against the epoch-stamped scratch — begin() bumps its epoch, so
  /// re-arming stays O(1) instead of an O(N) zero-fill. `edge_scratch` must
  /// be empty in that case.
  void begin(NodeId node, std::uint64_t round,
             std::span<const NodeId> neighbors, const Limits& limits,
             StageLog* log = nullptr, std::span<std::int8_t> edge_scratch = {},
             CliqueScratch* clique = nullptr);

  // MessageSink: called by NodeContext during the owner's step.
  void sink_send(NodeId from, NodeId to, std::uint8_t kind,
                 std::array<std::int64_t, 3> fields, int bits) override;
  /// Broadcast fast path: validates the payload once, settles the per-edge
  /// allowance and the batched bit accounting in one pass over the
  /// adjacency, then stages a single kWireBroadcast record — the commit
  /// expands it over the neighbours only at scatter time.
  void sink_broadcast(NodeId from, std::span<const NodeId> neighbors,
                      std::uint8_t kind, std::array<std::int64_t, 3> fields,
                      int bits) override;
  /// Transport-layer frame path used by the reliable channel: the frame
  /// arrives fully formed (header already attached) and is exempt from the
  /// `max_kind` protocol-opcode cap, but still pays adjacency, honest-bit,
  /// budget, and per-edge allowance checks. The header is parked in the
  /// log's sparse header list, not in the staged record.
  void sink_frame(NodeId from, const Message& frame) override;
  void sink_halt(NodeId node) override;
  /// Captures the phase label when `Limits::capture_annotations` is set,
  /// drops it otherwise. Labels are stored as views — callers pass string
  /// literals (see NodeContext::annotate) that outlive the commit drain.
  void sink_annotate(NodeId node, std::string_view phase) override;

  /// Records staged by the owner since begin(), in send-call order, with
  /// resolved bit sizes (>= the honest minimum). A broadcast appears as one
  /// kWireBroadcast record; use for_each_staged() for the expanded view.
  [[nodiscard]] std::span<const WireRecord> staged() const noexcept {
    return {log_->records.data() + rec_begin_,
            log_->records.size() - rec_begin_};
  }

  /// Invokes `fn(NodeId dst, const WireRecord&)` once per staged message
  /// copy in send-call order, expanding broadcast records over the
  /// adjacency in neighbour order — exactly the copy sequence the legacy
  /// per-copy staging produced.
  template <typename Fn>
  void for_each_staged(Fn&& fn) const {
    for (const WireRecord& rec : staged()) {
      if (rec.flags & kWireBroadcast) {
        for (const NodeId nb : neighbors_) fn(nb, rec);
      } else {
        fn(rec.dst, rec);
      }
    }
  }

  [[nodiscard]] bool halt_requested() const noexcept { return halt_; }
  [[nodiscard]] NodeId owner() const noexcept { return owner_; }

  /// Whether any message was staged to the neighbour at `neighbor_idx`
  /// (position in the adjacency list) — the synchronizer's silent-edge
  /// query for round tokens. Not meaningful in clique mode (the
  /// synchronizer never runs over the implicit topology).
  [[nodiscard]] bool sent_to(std::size_t neighbor_idx) const {
    return neighbor_idx < edge_sends_.size() && edge_sends_[neighbor_idx] != 0;
  }

  /// Drops staged state after it was consumed (standalone consumers only —
  /// the engine resets whole logs instead). With a private log this resets
  /// it; with an external log only the owner's records are truncated.
  void clear() noexcept;

 private:
  /// Appends one single-destination record to the log and settles its
  /// accounting (aggregates plus, when enabled, the stage-time histogram).
  void stage_single(const WireRecord& rec);

  /// Clique-mode per-(owner, to) allowance charge against the epoch-stamped
  /// scratch. The composite count per link is unicasts(to) + broadcasts
  /// staged this step. `to` must already be range-checked.
  void clique_charge_unicast(NodeId from, NodeId to);

  NodeId owner_ = kNoNode;
  std::uint64_t round_ = 0;
  std::span<const NodeId> neighbors_;
  Limits limits_;
  StageLog* log_ = &own_log_;
  std::size_t rec_begin_ = 0;  ///< owner's first record within *log_
  std::span<std::int8_t> edge_sends_;  ///< per neighbour index
  StageLog own_log_;                   ///< standalone fallback
  std::vector<std::int8_t> edge_store_;  ///< standalone fallback
  // Clique mode: the shard's epoch-stamped allowance scratch plus the
  // owner's per-step broadcast count and unicast high-water mark — a
  // broadcast charges every link, so link (owner, to) carries
  // counts[to] + clique_broadcasts_ staged messages.
  CliqueScratch* clique_ = nullptr;
  std::int8_t clique_broadcasts_ = 0;
  std::int8_t clique_max_unicast_ = 0;
  bool halt_ = false;
};

}  // namespace dflp::net
