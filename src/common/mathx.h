// Small numeric helpers shared across subsystems.
#pragma once

#include <cstdint>
#include <vector>

namespace dflp {

/// ceil(log2(x)) for x >= 1; returns 0 for x == 1.
[[nodiscard]] int ceil_log2(std::uint64_t x) noexcept;

/// floor(log2(x)) for x >= 1.
[[nodiscard]] int floor_log2(std::uint64_t x) noexcept;

/// Iterated logarithm: number of times log2 must be applied to x before the
/// result is <= 1. log_star(2^65536) == 5.
[[nodiscard]] int log_star(double x) noexcept;

/// ceil(a / b) for positive integers.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Harmonic number H_n = sum_{i=1..n} 1/i (the greedy set-cover ratio).
[[nodiscard]] double harmonic(std::uint64_t n) noexcept;

/// Geometric threshold ladder: values lo * beta^i for i = 0..count-1.
/// Used by the scale schedule of the distributed algorithms.
[[nodiscard]] std::vector<double> geometric_levels(double lo, double beta,
                                                   int count);

/// True if |a-b| <= tol * max(1, |a|, |b|): relative-ish comparison used by
/// tests and the LP feasibility checks.
[[nodiscard]] bool approx_eq(double a, double b, double tol = 1e-9) noexcept;

/// Clamp helper that also handles NaN by returning lo.
[[nodiscard]] double clamp_finite(double x, double lo, double hi) noexcept;

}  // namespace dflp
