// Minimal tabular reporting: the bench binaries print the experiment rows
// (the paper's "tables/figures") as aligned Markdown and optionally CSV.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dflp {

/// A simple column-oriented table. Cells are strings; numeric helpers format
/// with sensible precision. Rendering aligns columns for terminal reading
/// and is also valid GitHub Markdown.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row. Subsequent cell() calls fill it left to right.
  Table& row();

  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 3);
  Table& cell(std::int64_t value);
  Table& cell(std::uint64_t value);
  Table& cell(int value);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const noexcept {
    return headers_.size();
  }

  /// Renders as aligned Markdown. Incomplete rows are padded with "".
  [[nodiscard]] std::string to_markdown() const;

  /// Renders as CSV (RFC-4180-ish quoting for commas/quotes/newlines).
  [[nodiscard]] std::string to_csv() const;

  /// Convenience: stream the Markdown rendering.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision, trimming trailing zeros
/// ("1.25", "3", "0.001").
[[nodiscard]] std::string format_double(double value, int precision = 3);

}  // namespace dflp
