#include "common/rng.h"

#include <cmath>

namespace dflp {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

std::uint64_t derive_stream_seed(std::uint64_t seed, std::uint64_t a,
                                 std::uint64_t b) noexcept {
  std::uint64_t s = mix64(seed ^ (a + 0x9E3779B97F4A7C15ULL));
  return mix64(s ^ (b + 0xBF58476D1CE4E5B9ULL));
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro requires a nonzero state; SplitMix64 cannot emit four zero words
  // from any seed, but guard anyway for clarity.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split(std::uint64_t salt) noexcept {
  // Derive the child's seed from fresh parent output mixed with the salt so
  // distinct salts (e.g. node ids) give distinct, decorrelated streams.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(mix64(a ^ rotl(b, 31) ^ mix64(salt)));
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  if (bound == 0) return 0;  // degenerate; callers check, keep noexcept
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::uniform01() noexcept {
  // 53 random bits into the mantissa: uniform over [0,1) with full double
  // resolution.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::normal() noexcept {
  // Box–Muller; avoid log(0) by nudging u1 away from zero.
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform01();
  constexpr double two_pi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

double Rng::exponential(double lambda) noexcept {
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

double Rng::pareto(double x_min, double alpha) noexcept {
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return x_min / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) noexcept {
  if (n <= 1) return 0;
  // Inverse-CDF on the continuous zipf envelope, then clamp. This matches
  // the discrete law asymptotically, which is all workload shaping needs.
  const double u = uniform01();
  double r;
  if (s == 1.0) {
    r = std::pow(static_cast<double>(n), u) - 1.0;
  } else {
    const double nn = std::pow(static_cast<double>(n), 1.0 - s);
    r = std::pow(u * (nn - 1.0) + 1.0, 1.0 / (1.0 - s)) - 1.0;
  }
  auto idx = static_cast<std::uint64_t>(r);
  if (idx >= n) idx = n - 1;
  return idx;
}

}  // namespace dflp
