#include "common/mathx.h"

#include <bit>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace dflp {

int ceil_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return 64 - std::countl_zero(x - 1);
}

int floor_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return 63 - std::countl_zero(x);
}

int log_star(double x) noexcept {
  if (std::isnan(x)) return 0;
  if (std::isinf(x)) x = std::numeric_limits<double>::max();
  int it = 0;
  while (x > 1.0) {
    x = std::log2(x);
    ++it;
  }
  return it;
}

double harmonic(std::uint64_t n) noexcept {
  if (n == 0) return 0.0;
  // Exact summation below a threshold, asymptotic expansion above: the
  // benches evaluate H_n for n up to ~1e6 repeatedly.
  if (n <= 4096) {
    double h = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
    return h;
  }
  constexpr double euler_gamma = 0.57721566490153286060651209;
  const double nn = static_cast<double>(n);
  return std::log(nn) + euler_gamma + 1.0 / (2.0 * nn) -
         1.0 / (12.0 * nn * nn);
}

std::vector<double> geometric_levels(double lo, double beta, int count) {
  DFLP_CHECK_MSG(lo > 0.0 && beta > 1.0 && count >= 1,
                 "lo=" << lo << " beta=" << beta << " count=" << count);
  std::vector<double> levels;
  levels.reserve(static_cast<std::size_t>(count));
  double v = lo;
  for (int i = 0; i < count; ++i) {
    levels.push_back(v);
    v *= beta;
  }
  return levels;
}

bool approx_eq(double a, double b, double tol) noexcept {
  const double scale = std::fmax(1.0, std::fmax(std::fabs(a), std::fabs(b)));
  return std::fabs(a - b) <= tol * scale;
}

double clamp_finite(double x, double lo, double hi) noexcept {
  if (std::isnan(x)) return lo;
  if (x < lo) return lo;
  if (x > hi) return hi;
  return x;
}

}  // namespace dflp
