// Streaming and batch summary statistics for experiment reporting.
#pragma once

#include <cstddef>
#include <vector>

namespace dflp {

/// Welford single-pass accumulator: numerically stable mean/variance plus
/// min/max, without storing samples. Suitable for the per-round metrics the
/// simulator accumulates over millions of messages.
class RunningStat {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double variance() const noexcept;  // sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merge another accumulator (parallel Welford combine).
  void merge(const RunningStat& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch summary over a stored sample vector; supports exact percentiles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Computes a Summary; the input is copied and sorted internally.
[[nodiscard]] Summary summarize(std::vector<double> samples);

/// Exact percentile (linear interpolation between order statistics),
/// q in [0,1]. Input must be non-empty; it is copied and sorted.
[[nodiscard]] double percentile(std::vector<double> samples, double q);

/// Geometric mean of strictly positive samples; 0 if empty.
[[nodiscard]] double geometric_mean(const std::vector<double>& samples);

}  // namespace dflp
