#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dflp {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::fmin(min_, x);
    max_ = std::fmax(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const noexcept { return n_ ? mean_ : 0.0; }

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStat::min() const noexcept { return n_ ? min_ : 0.0; }

double RunningStat::max() const noexcept { return n_ ? max_ : 0.0; }

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::fmin(min_, other.min_);
  max_ = std::fmax(max_, other.max_);
}

double percentile(std::vector<double> samples, double q) {
  DFLP_CHECK(!samples.empty());
  DFLP_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  RunningStat rs;
  for (double x : samples) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  std::sort(samples.begin(), samples.end());
  auto at = [&](double q) {
    const double pos = q * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= samples.size()) return samples.back();
    return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
  };
  s.p25 = at(0.25);
  s.median = at(0.5);
  s.p75 = at(0.75);
  s.p95 = at(0.95);
  return s;
}

double geometric_mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : samples) {
    DFLP_CHECK_MSG(x > 0.0, "geometric_mean requires positive samples");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

}  // namespace dflp
