// Deterministic, splittable pseudo-randomness.
//
// Every randomized component in DFLP (workload generators, the simulator's
// delivery shuffle, the distributed algorithms' per-node coins) draws from an
// explicitly seeded `Rng`. There is no global RNG: determinism from a seed is
// a hard requirement so that every experiment and every simulated execution
// is reproducible bit-for-bit.
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded through SplitMix64
// so that small or correlated user seeds still produce well-mixed states.
// `split()` derives an independent child stream, which is how the simulator
// hands each node its own private coin sequence.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace dflp {

/// SplitMix64 step; used for seeding and for cheap stateless hashing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless 64-bit mix of a single value (one SplitMix64 round).
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// Deterministic seed for a derived stream identified by (seed, a, b) —
/// e.g. the round engine's per-(node, round) shuffle and fault streams.
/// Pure function of its inputs: the draw sequence of such a stream is
/// independent of execution order, other nodes, and thread count.
[[nodiscard]] std::uint64_t derive_stream_seed(std::uint64_t seed,
                                               std::uint64_t a,
                                               std::uint64_t b) noexcept;

/// xoshiro256++ pseudo-random generator. Satisfies the essentials of
/// UniformRandomBitGenerator so it can be used with <random> distributions,
/// though DFLP's own helpers below are preferred (they are portable across
/// standard libraries, unlike std distributions).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via SplitMix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Derive an independent child generator. The child's stream is a
  /// deterministic function of (this state, salt) but statistically
  /// uncorrelated with the parent's subsequent output.
  [[nodiscard]] Rng split(std::uint64_t salt) noexcept;

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// rejection method: unbiased.
  [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Standard normal via Box–Muller (no state caching; two uniforms/call).
  [[nodiscard]] double normal() noexcept;

  /// Exponential with rate lambda > 0.
  [[nodiscard]] double exponential(double lambda) noexcept;

  /// Pareto (power-law) sample with scale x_min > 0 and shape alpha > 0.
  /// Heavy-tailed: used by workloads to control cost spread rho.
  [[nodiscard]] double pareto(double x_min, double alpha) noexcept;

  /// Zipf-like rank sample in [0, n): probability of rank r proportional to
  /// 1/(r+1)^s. O(log n) via inverse-CDF on a cached prefix is overkill
  /// here; uses rejection-free inversion approximation adequate for
  /// workload shaping.
  [[nodiscard]] std::uint64_t zipf(std::uint64_t n, double s) noexcept;

  /// Fisher–Yates shuffle of a random-access range.
  template <typename RandomIt>
  void shuffle(RandomIt first, RandomIt last) noexcept {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const auto j = uniform_u64(i);
      using std::swap;
      swap(first[i - 1], first[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace dflp
