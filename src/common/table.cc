#include "common/table.h"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace dflp {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DFLP_CHECK(!headers_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  DFLP_CHECK_MSG(!rows_.empty(), "call row() before cell()");
  DFLP_CHECK_MSG(rows_.back().size() < headers_.size(),
                 "row has more cells than headers");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

std::string Table::to_markdown() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << ' ' << v << std::string(width[c] - v.size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(width[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << quote(headers_[c]);
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c)
      os << (c ? "," : "") << quote(c < r.size() ? r[c] : std::string());
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_markdown();
}

}  // namespace dflp
