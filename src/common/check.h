// Runtime invariant checking.
//
// DFLP is a research library: invariant violations indicate programming
// errors or malformed inputs, and we prefer a loud, always-on failure with a
// useful message over UB-adjacent asserts that vanish in release builds.
// Checks throw `dflp::CheckError` (derived from std::logic_error) so tests
// can assert on them and applications can contain failures per-experiment.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dflp {

/// Thrown when a DFLP_CHECK fails. Carries the stringified condition,
/// source location and an optional user message.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace dflp

/// Always-on invariant check. Usage:
///   DFLP_CHECK(x > 0);
///   DFLP_CHECK_MSG(x > 0, "x=" << x);
#define DFLP_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond))                                                      \
      ::dflp::detail::check_failed(#cond, __FILE__, __LINE__, {});    \
  } while (0)

#define DFLP_CHECK_MSG(cond, stream_expr)                             \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream dflp_os_;                                    \
      dflp_os_ << stream_expr;                                        \
      ::dflp::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                   dflp_os_.str());                   \
    }                                                                 \
  } while (0)
