# Empty compiler generated dependencies file for dflp_tests.
# This may be replaced when dependencies are built.
