
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aggregate_test.cc" "tests/CMakeFiles/dflp_tests.dir/aggregate_test.cc.o" "gcc" "tests/CMakeFiles/dflp_tests.dir/aggregate_test.cc.o.d"
  "/root/repo/tests/async_test.cc" "tests/CMakeFiles/dflp_tests.dir/async_test.cc.o" "gcc" "tests/CMakeFiles/dflp_tests.dir/async_test.cc.o.d"
  "/root/repo/tests/capacitated_test.cc" "tests/CMakeFiles/dflp_tests.dir/capacitated_test.cc.o" "gcc" "tests/CMakeFiles/dflp_tests.dir/capacitated_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/dflp_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/dflp_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/fl_test.cc" "tests/CMakeFiles/dflp_tests.dir/fl_test.cc.o" "gcc" "tests/CMakeFiles/dflp_tests.dir/fl_test.cc.o.d"
  "/root/repo/tests/harness_test.cc" "tests/CMakeFiles/dflp_tests.dir/harness_test.cc.o" "gcc" "tests/CMakeFiles/dflp_tests.dir/harness_test.cc.o.d"
  "/root/repo/tests/local_search_test.cc" "tests/CMakeFiles/dflp_tests.dir/local_search_test.cc.o" "gcc" "tests/CMakeFiles/dflp_tests.dir/local_search_test.cc.o.d"
  "/root/repo/tests/lp_test.cc" "tests/CMakeFiles/dflp_tests.dir/lp_test.cc.o" "gcc" "tests/CMakeFiles/dflp_tests.dir/lp_test.cc.o.d"
  "/root/repo/tests/mw_greedy_test.cc" "tests/CMakeFiles/dflp_tests.dir/mw_greedy_test.cc.o" "gcc" "tests/CMakeFiles/dflp_tests.dir/mw_greedy_test.cc.o.d"
  "/root/repo/tests/netsim_test.cc" "tests/CMakeFiles/dflp_tests.dir/netsim_test.cc.o" "gcc" "tests/CMakeFiles/dflp_tests.dir/netsim_test.cc.o.d"
  "/root/repo/tests/pipeline_test.cc" "tests/CMakeFiles/dflp_tests.dir/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/dflp_tests.dir/pipeline_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/dflp_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/dflp_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/quantize_test.cc" "tests/CMakeFiles/dflp_tests.dir/quantize_test.cc.o" "gcc" "tests/CMakeFiles/dflp_tests.dir/quantize_test.cc.o.d"
  "/root/repo/tests/rng_test.cc" "tests/CMakeFiles/dflp_tests.dir/rng_test.cc.o" "gcc" "tests/CMakeFiles/dflp_tests.dir/rng_test.cc.o.d"
  "/root/repo/tests/seq_test.cc" "tests/CMakeFiles/dflp_tests.dir/seq_test.cc.o" "gcc" "tests/CMakeFiles/dflp_tests.dir/seq_test.cc.o.d"
  "/root/repo/tests/smoke_test.cc" "tests/CMakeFiles/dflp_tests.dir/smoke_test.cc.o" "gcc" "tests/CMakeFiles/dflp_tests.dir/smoke_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/dflp_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/dflp_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dflp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dflp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dflp_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dflp_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dflp_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dflp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dflp_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dflp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
