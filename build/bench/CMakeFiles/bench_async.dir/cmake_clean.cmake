file(REMOVE_RECURSE
  "CMakeFiles/bench_async.dir/bench_async.cc.o"
  "CMakeFiles/bench_async.dir/bench_async.cc.o.d"
  "bench_async"
  "bench_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
