# Empty compiler generated dependencies file for bench_spread.
# This may be replaced when dependencies are built.
