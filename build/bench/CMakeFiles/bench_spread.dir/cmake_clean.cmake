file(REMOVE_RECURSE
  "CMakeFiles/bench_spread.dir/bench_spread.cc.o"
  "CMakeFiles/bench_spread.dir/bench_spread.cc.o.d"
  "bench_spread"
  "bench_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
