file(REMOVE_RECURSE
  "CMakeFiles/bench_mscaling.dir/bench_mscaling.cc.o"
  "CMakeFiles/bench_mscaling.dir/bench_mscaling.cc.o.d"
  "bench_mscaling"
  "bench_mscaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mscaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
