# Empty compiler generated dependencies file for bench_mscaling.
# This may be replaced when dependencies are built.
