# Empty dependencies file for dflp_workload.
# This may be replaced when dependencies are built.
