file(REMOVE_RECURSE
  "CMakeFiles/dflp_workload.dir/workload/generators.cc.o"
  "CMakeFiles/dflp_workload.dir/workload/generators.cc.o.d"
  "libdflp_workload.a"
  "libdflp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dflp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
