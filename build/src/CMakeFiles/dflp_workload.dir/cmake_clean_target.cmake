file(REMOVE_RECURSE
  "libdflp_workload.a"
)
