file(REMOVE_RECURSE
  "libdflp_lp.a"
)
