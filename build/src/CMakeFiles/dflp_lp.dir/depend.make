# Empty dependencies file for dflp_lp.
# This may be replaced when dependencies are built.
