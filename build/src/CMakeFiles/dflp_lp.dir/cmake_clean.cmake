file(REMOVE_RECURSE
  "CMakeFiles/dflp_lp.dir/lp/dual_ascent.cc.o"
  "CMakeFiles/dflp_lp.dir/lp/dual_ascent.cc.o.d"
  "CMakeFiles/dflp_lp.dir/lp/simplex.cc.o"
  "CMakeFiles/dflp_lp.dir/lp/simplex.cc.o.d"
  "CMakeFiles/dflp_lp.dir/lp/ufl_lp.cc.o"
  "CMakeFiles/dflp_lp.dir/lp/ufl_lp.cc.o.d"
  "libdflp_lp.a"
  "libdflp_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dflp_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
