# Empty dependencies file for dflp_common.
# This may be replaced when dependencies are built.
