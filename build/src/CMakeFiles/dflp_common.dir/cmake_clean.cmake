file(REMOVE_RECURSE
  "CMakeFiles/dflp_common.dir/common/mathx.cc.o"
  "CMakeFiles/dflp_common.dir/common/mathx.cc.o.d"
  "CMakeFiles/dflp_common.dir/common/rng.cc.o"
  "CMakeFiles/dflp_common.dir/common/rng.cc.o.d"
  "CMakeFiles/dflp_common.dir/common/stats.cc.o"
  "CMakeFiles/dflp_common.dir/common/stats.cc.o.d"
  "CMakeFiles/dflp_common.dir/common/table.cc.o"
  "CMakeFiles/dflp_common.dir/common/table.cc.o.d"
  "libdflp_common.a"
  "libdflp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dflp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
