file(REMOVE_RECURSE
  "libdflp_common.a"
)
