# Empty compiler generated dependencies file for dflp_harness.
# This may be replaced when dependencies are built.
