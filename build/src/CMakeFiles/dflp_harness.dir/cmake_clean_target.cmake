file(REMOVE_RECURSE
  "libdflp_harness.a"
)
