file(REMOVE_RECURSE
  "CMakeFiles/dflp_harness.dir/harness/report.cc.o"
  "CMakeFiles/dflp_harness.dir/harness/report.cc.o.d"
  "CMakeFiles/dflp_harness.dir/harness/runner.cc.o"
  "CMakeFiles/dflp_harness.dir/harness/runner.cc.o.d"
  "libdflp_harness.a"
  "libdflp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dflp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
