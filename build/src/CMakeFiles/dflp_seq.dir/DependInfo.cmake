
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seq/brute_force.cc" "src/CMakeFiles/dflp_seq.dir/seq/brute_force.cc.o" "gcc" "src/CMakeFiles/dflp_seq.dir/seq/brute_force.cc.o.d"
  "/root/repo/src/seq/greedy.cc" "src/CMakeFiles/dflp_seq.dir/seq/greedy.cc.o" "gcc" "src/CMakeFiles/dflp_seq.dir/seq/greedy.cc.o.d"
  "/root/repo/src/seq/jain_vazirani.cc" "src/CMakeFiles/dflp_seq.dir/seq/jain_vazirani.cc.o" "gcc" "src/CMakeFiles/dflp_seq.dir/seq/jain_vazirani.cc.o.d"
  "/root/repo/src/seq/jms.cc" "src/CMakeFiles/dflp_seq.dir/seq/jms.cc.o" "gcc" "src/CMakeFiles/dflp_seq.dir/seq/jms.cc.o.d"
  "/root/repo/src/seq/local_search.cc" "src/CMakeFiles/dflp_seq.dir/seq/local_search.cc.o" "gcc" "src/CMakeFiles/dflp_seq.dir/seq/local_search.cc.o.d"
  "/root/repo/src/seq/mettu_plaxton.cc" "src/CMakeFiles/dflp_seq.dir/seq/mettu_plaxton.cc.o" "gcc" "src/CMakeFiles/dflp_seq.dir/seq/mettu_plaxton.cc.o.d"
  "/root/repo/src/seq/trivial.cc" "src/CMakeFiles/dflp_seq.dir/seq/trivial.cc.o" "gcc" "src/CMakeFiles/dflp_seq.dir/seq/trivial.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dflp_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dflp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
