# Empty compiler generated dependencies file for dflp_seq.
# This may be replaced when dependencies are built.
