file(REMOVE_RECURSE
  "CMakeFiles/dflp_seq.dir/seq/brute_force.cc.o"
  "CMakeFiles/dflp_seq.dir/seq/brute_force.cc.o.d"
  "CMakeFiles/dflp_seq.dir/seq/greedy.cc.o"
  "CMakeFiles/dflp_seq.dir/seq/greedy.cc.o.d"
  "CMakeFiles/dflp_seq.dir/seq/jain_vazirani.cc.o"
  "CMakeFiles/dflp_seq.dir/seq/jain_vazirani.cc.o.d"
  "CMakeFiles/dflp_seq.dir/seq/jms.cc.o"
  "CMakeFiles/dflp_seq.dir/seq/jms.cc.o.d"
  "CMakeFiles/dflp_seq.dir/seq/local_search.cc.o"
  "CMakeFiles/dflp_seq.dir/seq/local_search.cc.o.d"
  "CMakeFiles/dflp_seq.dir/seq/mettu_plaxton.cc.o"
  "CMakeFiles/dflp_seq.dir/seq/mettu_plaxton.cc.o.d"
  "CMakeFiles/dflp_seq.dir/seq/trivial.cc.o"
  "CMakeFiles/dflp_seq.dir/seq/trivial.cc.o.d"
  "libdflp_seq.a"
  "libdflp_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dflp_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
