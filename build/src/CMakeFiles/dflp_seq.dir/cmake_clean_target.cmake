file(REMOVE_RECURSE
  "libdflp_seq.a"
)
