
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/capacitated.cc" "src/CMakeFiles/dflp_fl.dir/fl/capacitated.cc.o" "gcc" "src/CMakeFiles/dflp_fl.dir/fl/capacitated.cc.o.d"
  "/root/repo/src/fl/instance.cc" "src/CMakeFiles/dflp_fl.dir/fl/instance.cc.o" "gcc" "src/CMakeFiles/dflp_fl.dir/fl/instance.cc.o.d"
  "/root/repo/src/fl/serialize.cc" "src/CMakeFiles/dflp_fl.dir/fl/serialize.cc.o" "gcc" "src/CMakeFiles/dflp_fl.dir/fl/serialize.cc.o.d"
  "/root/repo/src/fl/solution.cc" "src/CMakeFiles/dflp_fl.dir/fl/solution.cc.o" "gcc" "src/CMakeFiles/dflp_fl.dir/fl/solution.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dflp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
