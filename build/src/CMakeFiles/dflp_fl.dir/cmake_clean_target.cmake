file(REMOVE_RECURSE
  "libdflp_fl.a"
)
