# Empty dependencies file for dflp_fl.
# This may be replaced when dependencies are built.
