file(REMOVE_RECURSE
  "CMakeFiles/dflp_fl.dir/fl/capacitated.cc.o"
  "CMakeFiles/dflp_fl.dir/fl/capacitated.cc.o.d"
  "CMakeFiles/dflp_fl.dir/fl/instance.cc.o"
  "CMakeFiles/dflp_fl.dir/fl/instance.cc.o.d"
  "CMakeFiles/dflp_fl.dir/fl/serialize.cc.o"
  "CMakeFiles/dflp_fl.dir/fl/serialize.cc.o.d"
  "CMakeFiles/dflp_fl.dir/fl/solution.cc.o"
  "CMakeFiles/dflp_fl.dir/fl/solution.cc.o.d"
  "libdflp_fl.a"
  "libdflp_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dflp_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
