file(REMOVE_RECURSE
  "libdflp_core.a"
)
