# Empty dependencies file for dflp_core.
# This may be replaced when dependencies are built.
