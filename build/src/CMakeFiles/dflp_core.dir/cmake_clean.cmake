file(REMOVE_RECURSE
  "CMakeFiles/dflp_core.dir/core/aggregate.cc.o"
  "CMakeFiles/dflp_core.dir/core/aggregate.cc.o.d"
  "CMakeFiles/dflp_core.dir/core/frac_lp.cc.o"
  "CMakeFiles/dflp_core.dir/core/frac_lp.cc.o.d"
  "CMakeFiles/dflp_core.dir/core/ideal_greedy.cc.o"
  "CMakeFiles/dflp_core.dir/core/ideal_greedy.cc.o.d"
  "CMakeFiles/dflp_core.dir/core/mw_greedy.cc.o"
  "CMakeFiles/dflp_core.dir/core/mw_greedy.cc.o.d"
  "CMakeFiles/dflp_core.dir/core/params.cc.o"
  "CMakeFiles/dflp_core.dir/core/params.cc.o.d"
  "CMakeFiles/dflp_core.dir/core/pipeline.cc.o"
  "CMakeFiles/dflp_core.dir/core/pipeline.cc.o.d"
  "CMakeFiles/dflp_core.dir/core/quantize.cc.o"
  "CMakeFiles/dflp_core.dir/core/quantize.cc.o.d"
  "CMakeFiles/dflp_core.dir/core/rand_round.cc.o"
  "CMakeFiles/dflp_core.dir/core/rand_round.cc.o.d"
  "libdflp_core.a"
  "libdflp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dflp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
