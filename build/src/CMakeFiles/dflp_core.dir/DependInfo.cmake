
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregate.cc" "src/CMakeFiles/dflp_core.dir/core/aggregate.cc.o" "gcc" "src/CMakeFiles/dflp_core.dir/core/aggregate.cc.o.d"
  "/root/repo/src/core/frac_lp.cc" "src/CMakeFiles/dflp_core.dir/core/frac_lp.cc.o" "gcc" "src/CMakeFiles/dflp_core.dir/core/frac_lp.cc.o.d"
  "/root/repo/src/core/ideal_greedy.cc" "src/CMakeFiles/dflp_core.dir/core/ideal_greedy.cc.o" "gcc" "src/CMakeFiles/dflp_core.dir/core/ideal_greedy.cc.o.d"
  "/root/repo/src/core/mw_greedy.cc" "src/CMakeFiles/dflp_core.dir/core/mw_greedy.cc.o" "gcc" "src/CMakeFiles/dflp_core.dir/core/mw_greedy.cc.o.d"
  "/root/repo/src/core/params.cc" "src/CMakeFiles/dflp_core.dir/core/params.cc.o" "gcc" "src/CMakeFiles/dflp_core.dir/core/params.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/dflp_core.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/dflp_core.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/quantize.cc" "src/CMakeFiles/dflp_core.dir/core/quantize.cc.o" "gcc" "src/CMakeFiles/dflp_core.dir/core/quantize.cc.o.d"
  "/root/repo/src/core/rand_round.cc" "src/CMakeFiles/dflp_core.dir/core/rand_round.cc.o" "gcc" "src/CMakeFiles/dflp_core.dir/core/rand_round.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dflp_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dflp_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dflp_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dflp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
