file(REMOVE_RECURSE
  "CMakeFiles/dflp_netsim.dir/netsim/async.cc.o"
  "CMakeFiles/dflp_netsim.dir/netsim/async.cc.o.d"
  "CMakeFiles/dflp_netsim.dir/netsim/message.cc.o"
  "CMakeFiles/dflp_netsim.dir/netsim/message.cc.o.d"
  "CMakeFiles/dflp_netsim.dir/netsim/metrics.cc.o"
  "CMakeFiles/dflp_netsim.dir/netsim/metrics.cc.o.d"
  "CMakeFiles/dflp_netsim.dir/netsim/network.cc.o"
  "CMakeFiles/dflp_netsim.dir/netsim/network.cc.o.d"
  "libdflp_netsim.a"
  "libdflp_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dflp_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
