
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/async.cc" "src/CMakeFiles/dflp_netsim.dir/netsim/async.cc.o" "gcc" "src/CMakeFiles/dflp_netsim.dir/netsim/async.cc.o.d"
  "/root/repo/src/netsim/message.cc" "src/CMakeFiles/dflp_netsim.dir/netsim/message.cc.o" "gcc" "src/CMakeFiles/dflp_netsim.dir/netsim/message.cc.o.d"
  "/root/repo/src/netsim/metrics.cc" "src/CMakeFiles/dflp_netsim.dir/netsim/metrics.cc.o" "gcc" "src/CMakeFiles/dflp_netsim.dir/netsim/metrics.cc.o.d"
  "/root/repo/src/netsim/network.cc" "src/CMakeFiles/dflp_netsim.dir/netsim/network.cc.o" "gcc" "src/CMakeFiles/dflp_netsim.dir/netsim/network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dflp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
