# Empty compiler generated dependencies file for dflp_netsim.
# This may be replaced when dependencies are built.
