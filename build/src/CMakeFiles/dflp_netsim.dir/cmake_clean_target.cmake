file(REMOVE_RECURSE
  "libdflp_netsim.a"
)
