# Empty compiler generated dependencies file for dflp_cli.
# This may be replaced when dependencies are built.
