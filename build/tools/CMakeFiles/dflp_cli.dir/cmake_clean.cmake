file(REMOVE_RECURSE
  "CMakeFiles/dflp_cli.dir/dflp_cli.cc.o"
  "CMakeFiles/dflp_cli.dir/dflp_cli.cc.o.d"
  "dflp_cli"
  "dflp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dflp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
