file(REMOVE_RECURSE
  "CMakeFiles/sensor_coverage.dir/sensor_coverage.cpp.o"
  "CMakeFiles/sensor_coverage.dir/sensor_coverage.cpp.o.d"
  "sensor_coverage"
  "sensor_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
