# Empty dependencies file for sensor_coverage.
# This may be replaced when dependencies are built.
