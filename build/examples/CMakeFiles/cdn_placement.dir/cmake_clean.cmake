file(REMOVE_RECURSE
  "CMakeFiles/cdn_placement.dir/cdn_placement.cpp.o"
  "CMakeFiles/cdn_placement.dir/cdn_placement.cpp.o.d"
  "cdn_placement"
  "cdn_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
