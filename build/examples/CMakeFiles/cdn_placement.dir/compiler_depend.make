# Empty compiler generated dependencies file for cdn_placement.
# This may be replaced when dependencies are built.
