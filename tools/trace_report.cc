// trace_report — fold a dflp round trace into human-readable tables.
//
//   trace_report <trace.jsonl|-> [--rounds N]
//
// Prints, per trace section (one section per network execution — a
// pipeline run has one per stage):
//   * a run summary (nodes, threads, rounds, messages, bits, wall time);
//   * the engine-phase fold — where the wall time went between the step,
//     commit (tally + layout) and scatter phases;
//   * the algorithm-phase fold — per `NodeContext::annotate` label, how
//     many node-rounds marked it and over which round window (present only
//     when the trace was recorded with --trace-phases);
//   * a per-round table. With more than N rounds (default 30, 0 = all) the
//     N slowest rounds by wall time are shown instead, flagged in the
//     heading.
//
// Input is the versioned JSONL schema (docs/trace-schema.md); Chrome-format
// exports are for chrome://tracing, not for this tool.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/table.h"
#include "netsim/trace.h"

namespace {

using dflp::Table;
using dflp::format_double;
using dflp::net::ParsedTrace;
using dflp::net::TraceRound;
using dflp::net::TraceSection;

double round_wall_s(const TraceRound& r) {
  return r.step_s + r.commit_s + r.scatter_s;
}

struct PhaseStats {
  std::string label;
  std::uint64_t marks = 0;
  std::uint64_t rounds_active = 0;
  std::uint64_t first_round = 0;
  std::uint64_t last_round = 0;
};

int report(const ParsedTrace& trace, std::size_t max_rounds) {
  for (std::size_t s = 0; s < trace.sections.size(); ++s) {
    const TraceSection& sec = trace.sections[s];
    std::vector<const TraceRound*> rounds;
    for (const TraceRound& r : trace.rounds)
      if (r.section == s) rounds.push_back(&r);

    std::uint64_t delivered = 0, dropped = 0, bits = 0;
    double step_s = 0.0, commit_s = 0.0, scatter_s = 0.0;
    std::uint64_t arena_peak = 0;
    for (const TraceRound* r : rounds) {
      delivered += r->delivered;
      dropped += r->dropped;
      bits += r->bits;
      step_s += r->step_s;
      commit_s += r->commit_s;
      scatter_s += r->scatter_s;
      arena_peak = std::max(arena_peak, r->arena);
    }
    const double wall_s = step_s + commit_s + scatter_s;

    std::cout << "\n## section " << s << ": " << sec.name << " (nodes="
              << sec.nodes << ", edges=" << sec.edges << ", threads="
              << sec.threads << ", seed=" << sec.seed << ", bit budget="
              << sec.bit_budget << ")\n\n";
    Table summary({"rounds", "delivered", "dropped", "kbits", "arena peak",
                   "wall ms", "rounds/s"});
    summary.row()
        .cell(static_cast<std::uint64_t>(rounds.size()))
        .cell(delivered)
        .cell(dropped)
        .cell(static_cast<double>(bits) / 1000.0, 1)
        .cell(arena_peak)
        .cell(wall_s * 1e3, 3)
        .cell(wall_s > 0.0 ? static_cast<double>(rounds.size()) / wall_s : 0.0,
              1);
    std::cout << summary << "\n";

    Table engine({"engine phase", "ms", "share"});
    const auto share = [&](double v) {
      return wall_s > 0.0 ? format_double(100.0 * v / wall_s, 1) + "%" : "-";
    };
    engine.row().cell("step").cell(step_s * 1e3, 3).cell(share(step_s));
    engine.row().cell("commit").cell(commit_s * 1e3, 3).cell(share(commit_s));
    engine.row().cell("scatter").cell(scatter_s * 1e3, 3).cell(
        share(scatter_s));
    std::cout << engine << "\n";

    // Algorithm phases: labels are few, so a linear registry keeps the
    // first-seen order stable (sorted per round by the writer).
    std::vector<PhaseStats> phases;
    for (const TraceRound* r : rounds) {
      for (const auto& [label, count] : r->phases) {
        auto it = std::find_if(
            phases.begin(), phases.end(),
            [&](const PhaseStats& p) { return p.label == label; });
        if (it == phases.end()) {
          phases.push_back({label, 0, 0, r->round, r->round});
          it = phases.end() - 1;
        }
        it->marks += count;
        it->rounds_active += 1;
        it->first_round = std::min(it->first_round, r->round);
        it->last_round = std::max(it->last_round, r->round);
      }
    }
    if (!phases.empty()) {
      std::sort(phases.begin(), phases.end(),
                [](const PhaseStats& a, const PhaseStats& b) {
                  return a.marks > b.marks;
                });
      Table ptab({"algorithm phase", "node-rounds", "rounds active", "first",
                  "last"});
      for (const PhaseStats& p : phases) {
        ptab.row().cell(p.label).cell(p.marks).cell(p.rounds_active).cell(
            p.first_round).cell(p.last_round);
      }
      std::cout << ptab << "\n";
    }

    std::vector<const TraceRound*> shown = rounds;
    bool truncated = false;
    if (max_rounds > 0 && shown.size() > max_rounds) {
      std::sort(shown.begin(), shown.end(),
                [](const TraceRound* a, const TraceRound* b) {
                  return round_wall_s(*a) > round_wall_s(*b);
                });
      shown.resize(max_rounds);
      std::sort(shown.begin(), shown.end(),
                [](const TraceRound* a, const TraceRound* b) {
                  return a->round < b->round;
                });
      truncated = true;
    }
    if (truncated) {
      std::cout << "### " << shown.size() << " slowest of " << rounds.size()
                << " rounds (rerun with --rounds 0 for all)\n\n";
    }
    Table rtab({"round", "live", "sent", "delivered", "dropped", "halted",
                "bits", "step us", "commit us", "scatter us", "phases"});
    for (const TraceRound* r : shown) {
      std::string phase_cell;
      for (const auto& [label, count] : r->phases) {
        if (!phase_cell.empty()) phase_cell += " ";
        phase_cell += label + ":" + std::to_string(count);
      }
      rtab.row()
          .cell(r->round)
          .cell(r->live)
          .cell(r->sent)
          .cell(r->delivered)
          .cell(r->dropped)
          .cell(r->halted)
          .cell(r->bits)
          .cell(r->step_s * 1e6, 1)
          .cell(r->commit_s * 1e6, 1)
          .cell(r->scatter_s * 1e6, 1)
          .cell(phase_cell);
    }
    std::cout << rtab << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::size_t max_rounds = 30;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rounds" && i + 1 < argc) {
      max_rounds = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (path.empty()) {
      path = arg;
    } else {
      path.clear();
      break;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: trace_report <trace.jsonl|-> [--rounds N]\n";
    return 2;
  }

  try {
    ParsedTrace trace;
    if (path == "-") {
      trace = dflp::net::read_trace_jsonl(std::cin);
    } else {
      std::ifstream in(path);
      DFLP_CHECK_MSG(in.good(), "cannot open '" << path << "'");
      trace = dflp::net::read_trace_jsonl(in);
    }
    return report(trace, max_rounds);
  } catch (const std::exception& e) {
    std::cerr << "trace_report: " << e.what() << "\n";
    return 1;
  }
}
