// trace_check — schema validator for dflp round traces.
//
//   trace_check <trace.jsonl|->
//
// Exit 0 when the input is a valid version-1 JSONL trace
// (docs/trace-schema.md): header first, known record types, required
// fields, dense section ids, consecutive per-section round numbers, and
// the counter identity delivered == sent - dropped + duplicated. Exit 1
// with the reason on stderr otherwise. CI's trace-smoke job runs this on a
// fresh `dflp_cli solve --trace` output.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "netsim/trace.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: trace_check <trace.jsonl|->\n";
    return 2;
  }
  const std::string path = argv[1];

  // Buffer the input so the summary pass can re-read it after validation
  // (stdin cannot be rewound).
  std::stringstream buffer;
  if (path == "-") {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    if (!in.good()) {
      std::cerr << "trace_check: cannot open '" << path << "'\n";
      return 1;
    }
    buffer << in.rdbuf();
  }

  std::string why;
  if (!dflp::net::validate_trace_jsonl(buffer, &why)) {
    std::cerr << "trace_check: INVALID: " << why << "\n";
    return 1;
  }
  buffer.clear();
  buffer.seekg(0);
  const dflp::net::ParsedTrace trace = dflp::net::read_trace_jsonl(buffer);
  std::cout << "trace_check: ok (version " << trace.version << ", "
            << trace.sections.size() << " section(s), " << trace.rounds.size()
            << " round(s))\n";
  return 0;
}
