// trace_check — schema validator for dflp round traces.
//
//   trace_check [--normalize] <trace.jsonl|->
//
// Exit 0 when the input is a valid version-1 JSONL trace
// (docs/trace-schema.md): header first, known record types, required
// fields, dense section ids, consecutive per-section round numbers, and
// the counter identity delivered == sent - dropped + duplicated. Exit 1
// with the reason on stderr otherwise. CI's trace-smoke job runs this on a
// fresh `dflp_cli solve --trace` output.
//
// With --normalize, a valid trace is additionally re-emitted on stdout in
// canonical form — wall timings zeroed, step shards dropped, thread counts
// pinned (netsim/trace.h normalize_trace) — so the deterministic round
// shape can be diffed against the committed goldens in tests/goldens/
// (CI's trace-regression job).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "netsim/trace.h"

int main(int argc, char** argv) {
  bool normalize = false;
  std::string path;
  bool bad_usage = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--normalize") {
      normalize = true;
    } else if (path.empty()) {
      path = arg;
    } else {
      bad_usage = true;
    }
  }
  if (path.empty() || bad_usage) {
    std::cerr << "usage: trace_check [--normalize] <trace.jsonl|->\n";
    return 2;
  }

  // Buffer the input so the summary pass can re-read it after validation
  // (stdin cannot be rewound).
  std::stringstream buffer;
  if (path == "-") {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    if (!in.good()) {
      std::cerr << "trace_check: cannot open '" << path << "'\n";
      return 1;
    }
    buffer << in.rdbuf();
  }

  std::string why;
  if (!dflp::net::validate_trace_jsonl(buffer, &why)) {
    std::cerr << "trace_check: INVALID: " << why << "\n";
    return 1;
  }
  buffer.clear();
  buffer.seekg(0);
  dflp::net::ParsedTrace trace = dflp::net::read_trace_jsonl(buffer);
  if (normalize) {
    dflp::net::normalize_trace(&trace);
    dflp::net::write_trace_jsonl(trace, std::cout);
    return 0;
  }
  std::cout << "trace_check: ok (version " << trace.version << ", "
            << trace.sections.size() << " section(s), " << trace.rounds.size()
            << " round(s))\n";
  return 0;
}
