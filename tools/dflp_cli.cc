// dflp_cli — command-line front end for the library.
//
//   dflp_cli generate <family> <size> <seed>          # instance -> stdout
//   dflp_cli info     <instance.ufl|->                # describe instance
//   dflp_cli solve    <algo> <instance.ufl|-> [k] [seed]
//   dflp_cli sweep    <instance.ufl|->  [seed]        # k sweep table
//   dflp_cli bounds   <instance.ufl|->                # LP / dual bounds
//   dflp_cli stream   <engine> [k] [seed]             # epoch-batched solver
//
// Streaming flags (stream only): `--stream N` sets the total number of
// arrival/departure events, `--epoch-size M` the events batched per
// commit_epoch (default N/100), `--cells C` the number of workload cells,
// `--initial I` the epoch-0 client count, and `--cold` disables warm
// starting (every component re-solves each epoch — the from-scratch
// baseline, bit-identical in cost by construction). One table row per
// epoch, including the recourse columns (opened/closed/reassigned).
//
// `--threads N` (anywhere on the line) runs the distributed simulations
// with an N-thread step phase; results are bit-identical to --threads 1,
// only the wall time changes.
//
// Fault-injection flags (also position-independent): `--drop X` for i.i.d.
// message loss, `--crash-frac X` for boot-crashed facilities,
// `--burst-len N` for Gilbert–Elliott burst loss of mean length N,
// `--fault-seed S` to reseed the fault schedule, and `--reliable` to run
// the recovery transport. With faults active, `solve` also reports round
// dilation against the fault-free baseline.
//
// Tracing flags (solve only): `--trace <path>` writes a round-level trace
// of the distributed run (docs/trace-schema.md), `--trace-format
// jsonl|chrome` picks the exporter, and `--trace-phases` additionally
// records per-node algorithm-phase annotations. Tracing never changes the
// solution — traced runs are bit-identical to untraced ones.
//
// `-` reads the instance from stdin. Families: uniform, euclidean,
// powerlaw, greedy-tight, star, plus the complete-bipartite `metric`
// family (fl/metric.h) that the congested-clique solver requires.
// Algorithms: any name printed by `dflp_cli solve help`.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/table.h"
#include "core/ftfp_greedy.h"
#include "core/mw_greedy.h"
#include "netsim/trace.h"
#include "fl/capacitated.h"
#include "fl/ftfp.h"
#include "fl/metric.h"
#include "fl/serialize.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "harness/survive.h"
#include "seq/greedy.h"
#include "lp/dual_ascent.h"
#include "lp/ufl_lp.h"
#include "service/streaming_solver.h"
#include "workload/generators.h"
#include "workload/stream.h"

namespace {

using namespace dflp;

/// Simulator threads requested via --threads (default 1 = serial).
int g_threads = 1;
/// Fault-injection / recovery flags (position-independent, like --threads).
double g_drop = 0.0;        ///< --drop X: i.i.d. message loss probability
double g_crash_frac = 0.0;  ///< --crash-frac X: boot-crashed facility frac
int g_burst_len = 0;        ///< --burst-len N: mean burst length in rounds
std::uint64_t g_fault_seed = 0;  ///< --fault-seed S
bool g_reliable = false;         ///< --reliable: wrap in ReliableChannel
/// Fault-tolerant placement flags (solve only).
std::int32_t g_coverage = 1;    ///< --coverage R: r_j = R distinct facilities
double g_kill_frac = 0.0;       ///< --kill-frac X: crash X of opened facilities
std::uint64_t g_kill_seed = 0;  ///< --kill-seed S: kill-set sampling seed
std::int32_t g_capacity = 0;    ///< --capacity U: soft capacity (0 = off)
/// Tracing flags (solve only; see docs/trace-schema.md).
std::string g_trace_path;  ///< --trace <path>: write a round-level trace
net::TraceFormat g_trace_format = net::TraceFormat::kJsonl;
bool g_trace_phases = false;  ///< --trace-phases: record phase annotations
/// Streaming flags (stream subcommand only).
std::int64_t g_stream_events = 20000;  ///< --stream N: total events
std::int64_t g_epoch_size = 0;  ///< --epoch-size M (default N/100)
int g_stream_cells = 64;        ///< --cells C: workload cells
int g_stream_initial = 1024;    ///< --initial I: epoch-0 clients
bool g_stream_cold = false;     ///< --cold: disable warm starting

int usage(std::ostream& out = std::cerr, int code = 2) {
  out
      << "usage:\n"
         "  dflp_cli generate <family> <size> <seed>\n"
         "  dflp_cli info   <instance.ufl|->\n"
         "  dflp_cli solve  <algo> <instance.ufl|-> [k=4] [seed=1]\n"
         "  dflp_cli sweep  <instance.ufl|-> [seed=1]\n"
         "  dflp_cli bounds <instance.ufl|->\n"
         "  dflp_cli stream <mw-greedy|mw-pipeline> [k=4] [seed=1]\n"
         "options: --threads N    (simulator step-phase threads; results are\n"
         "                         bit-identical for every N)\n"
         "         --drop X       (i.i.d. per-message drop probability)\n"
         "         --crash-frac X (fraction of facilities crashed at boot)\n"
         "         --burst-len N  (Gilbert-Elliott bursts, mean N rounds)\n"
         "         --fault-seed S (seed of the fault schedule streams)\n"
         "         --reliable     (reliable-transport recovery layer)\n"
         "         --coverage R   (solve, mw-greedy only: fault-tolerant\n"
         "                         placement with R distinct facilities per\n"
         "                         client, via the exclusion-phase solver)\n"
         "         --kill-frac X  (with --coverage: crash a seeded fraction\n"
         "                         X of the opened facilities post-solve and\n"
         "                         report survivability)\n"
         "         --kill-seed S  (kill-set sampling seed; default 0)\n"
         "         --capacity U   (solve, mw-greedy/seq-greedy: soft\n"
         "                         capacity U per facility via the\n"
         "                         c'=c+f/u reduction)\n"
         "         --trace PATH   (solve only: write a round-level trace;\n"
         "                         see docs/trace-schema.md)\n"
         "         --trace-format jsonl|chrome\n"
         "                        (trace exporter; default jsonl)\n"
         "         --trace-phases (record per-node algorithm-phase\n"
         "                         annotations in the trace)\n"
         "         --stream N     (stream only: total events; default 20000)\n"
         "         --epoch-size M (stream only: events per epoch;\n"
         "                         default N/100)\n"
         "         --cells C      (stream only: workload cells; default 64)\n"
         "         --initial I    (stream only: epoch-0 clients;\n"
         "                         default 1024)\n"
         "         --cold         (stream only: from-scratch baseline,\n"
         "                         no warm starting)\n"
         "families: uniform euclidean powerlaw greedy-tight star metric\n"
         "          (metric: planted-cluster complete-bipartite Euclidean\n"
         "           instances — the workload clique-fl requires)\n"
         "algorithms: mw-greedy mw-pipeline ideal-greedy seq-greedy\n"
         "            jain-vazirani mettu-plaxton jms-greedy local-search\n"
         "            open-all nearest-facility li-jms clique-fl\n";
  return code;
}

/// True when any fault/recovery flag changes run semantics.
bool fault_flags_active() {
  return g_drop > 0.0 || g_crash_frac > 0.0 || g_burst_len > 0 || g_reliable;
}

/// Maps the global fault flags onto distributed-run params.
void apply_fault_flags(core::MwParams& params) {
  params.faults.drop_probability = g_drop;
  params.boot_crash_fraction = g_crash_frac;
  if (g_burst_len > 0) {
    // A burst of mean length N rounds: links leave the bad state with
    // probability 1/N per round; entry probability is kept small so losses
    // cluster instead of approximating i.i.d. loss.
    params.faults.burst.p_good_to_bad = 0.05;
    params.faults.burst.p_bad_to_good = 1.0 / g_burst_len;
  }
  params.faults.fault_seed = g_fault_seed;
  params.reliable = g_reliable;
}

fl::Instance load_instance(const std::string& path) {
  if (path == "-") return fl::read_instance(std::cin);
  std::ifstream in(path);
  DFLP_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  return fl::read_instance(in);
}

std::vector<std::pair<std::string, harness::Algo>> algo_registry() {
  using harness::Algo;
  std::vector<std::pair<std::string, Algo>> reg;
  for (const Algo a :
       {Algo::kMwGreedy, Algo::kPipeline, Algo::kIdealGreedy,
        Algo::kSeqGreedy, Algo::kJainVazirani, Algo::kMettuPlaxton,
        Algo::kJms, Algo::kLocalSearch, Algo::kOpenAll,
        Algo::kNearestFacility, Algo::kLiJms, Algo::kCliqueFl}) {
    reg.emplace_back(harness::algo_name(a), a);
  }
  return reg;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string family_name = argv[2];
  const auto size = static_cast<std::int32_t>(std::atoi(argv[3]));
  const auto seed = static_cast<std::uint64_t>(std::atoll(argv[4]));
  if (size < 4) {
    std::cerr << "size must be >= 4\n";
    return 2;
  }
  if (family_name == "metric") {
    // Planted-cluster complete-bipartite metric instances (fl/metric.h):
    // <size> facilities, 3x<size> clients. check_metric holds by
    // construction; clique-fl and li-jms are the intended consumers.
    fl::MetricParams mp;
    mp.facilities = size;
    mp.clients = 3 * size;
    mp.clusters = std::max<std::int32_t>(2, size / 8);
    fl::write_instance(std::cout,
                       fl::make_metric_instance(mp, seed).instance);
    return 0;
  }
  workload::Family family = workload::Family::kUniform;
  bool found = false;
  for (const auto f : {workload::Family::kUniform,
                       workload::Family::kEuclidean,
                       workload::Family::kPowerLaw,
                       workload::Family::kGreedyTight,
                       workload::Family::kStar}) {
    if (workload::family_name(f) == family_name) {
      family = f;
      found = true;
    }
  }
  if (!found) {
    std::cerr << "unknown family '" << family_name << "'\n";
    return 2;
  }
  fl::write_instance(std::cout,
                     workload::make_family_instance(family, size, seed));
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 3) return usage();
  const fl::Instance inst = load_instance(argv[2]);
  std::cout << inst.describe() << "\n"
            << "total opening cost    = "
            << inst.cost_profile().total_opening << "\n"
            << "total connection cost = "
            << inst.cost_profile().total_connection << "\n"
            << "open-all cost         = " << inst.open_all_cost() << "\n";
  return 0;
}

int cmd_bounds(int argc, char** argv) {
  if (argc < 3) return usage();
  const fl::Instance inst = load_instance(argv[2]);
  const lp::DualAscentResult dual = lp::dual_ascent_bound(inst);
  std::cout << "dual-ascent lower bound = " << dual.lower_bound << "\n";
  if (inst.num_edges() <= 400) {
    if (const auto lp_opt = lp::solve_ufl_lp(inst)) {
      std::cout << "exact LP optimum        = " << lp_opt->optimum << "\n";
    }
  } else {
    std::cout << "exact LP optimum        = (instance too large for the "
                 "dense simplex; dual ascent is the certified bound)\n";
  }
  std::cout << "cheapest-edges bound    = "
            << lp::cheapest_connection_bound(inst) << "\n";
  return 0;
}

/// `solve` with --capacity: the soft-capacitated reduction wrapped around
/// a UFL solver (distributed mw-greedy or the centralized greedy).
int solve_capacitated(const std::string& algo_name, const fl::Instance& inst,
                      const core::MwParams& params) {
  if (algo_name != "mw-greedy" && algo_name != "seq-greedy") {
    std::cerr << "--capacity supports mw-greedy and seq-greedy\n";
    return 2;
  }
  fl::SoftCapacitatedInstance cap;
  cap.base = inst;
  cap.capacity.assign(static_cast<std::size_t>(inst.num_facilities()),
                      g_capacity);
  const fl::SoftCapacitatedResult result = fl::solve_soft_capacitated(
      cap, [&](const fl::Instance& reduced) {
        if (algo_name == "seq-greedy")
          return seq::greedy_solve(reduced).solution;
        return core::run_mw_greedy(reduced, params).solution;
      });
  Table table({"algo", "capacity", "cost", "copies", "open", "feasible"});
  int open_count = 0;
  for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i)
    if (result.solution.is_open(i)) ++open_count;
  table.row()
      .cell(algo_name)
      .cell(g_capacity)
      .cell(result.cost, 2)
      .cell(result.total_copies)
      .cell(open_count)
      .cell(result.solution.is_feasible(inst) ? "yes" : "NO");
  harness::print_section(
      "soft-capacitated " + algo_name + " on " + inst.describe(),
      "reduction c'_ij = c_ij + f_i/u_i, u_i = " +
          std::to_string(g_capacity),
      table);
  return 0;
}

/// `solve` with --coverage / --kill-frac: the FTFP exclusion-phase solver,
/// optionally followed by a post-deployment survivability campaign.
int solve_ftfp(const std::string& algo_name, const fl::Instance& inst,
               const core::MwParams& params) {
  if (algo_name != "mw-greedy") {
    std::cerr << "--coverage/--kill-frac support mw-greedy only\n";
    return 2;
  }
  const fl::FtfpInstance ftfp =
      fl::with_uniform_requirement(inst, g_coverage);
  const core::FtfpOutcome out = core::run_ftfp_greedy(ftfp, params);
  Table table({"r", "cost", "open", "phases", "rounds", "messages",
               "feasible"});
  table.row()
      .cell(g_coverage)
      .cell(out.solution.cost(ftfp), 2)
      .cell(out.solution.num_open())
      .cell(out.phases)
      .cell(out.metrics.rounds)
      .cell(out.metrics.messages)
      .cell(out.solution.is_feasible(ftfp) ? "yes" : "NO");
  harness::print_section("ftfp mw-greedy on " + ftfp.describe(), "", table);

  // Survivability: exhaustive single-facility crashes, plus the seeded
  // fractional kill set when --kill-frac is given.
  std::vector<harness::KillSet> kills =
      harness::single_kill_sets(out.solution, ftfp);
  if (g_kill_frac > 0.0) {
    kills.push_back(harness::sample_kill_set(out.solution, ftfp, g_kill_frac,
                                             g_kill_seed));
  }
  const std::vector<harness::SurvivalReport> reports =
      harness::run_survival_campaign(ftfp, out.solution, kills);
  const harness::SurvivalSummary single = harness::summarize(
      {reports.begin(),
       reports.begin() + static_cast<std::ptrdiff_t>(
                             reports.size() - (g_kill_frac > 0.0 ? 1 : 0))});
  Table surv({"kill-set", "killed", "feasible", "orphans", "rerouted",
              "reopened", "cost-ratio"});
  surv.row()
      .cell("single-crash x" + std::to_string(single.kill_sets))
      .cell(1)
      .cell(std::to_string(single.residual_feasible) + "/" +
            std::to_string(single.kill_sets))
      .cell(single.worst_orphans)
      .cell(single.total_rerouted)
      .cell(single.total_reopened)
      .cell(single.worst_cost_ratio, 3);
  if (g_kill_frac > 0.0) {
    const harness::SurvivalReport& r = reports.back();
    surv.row()
        .cell(r.kill_set)
        .cell(r.killed)
        .cell(r.residual_feasible ? "yes" : (r.repaired ? "repaired" : "NO"))
        .cell(r.orphaned_clients)
        .cell(r.rerouted_clients)
        .cell(r.reopened_facilities)
        .cell(r.cost_ratio, 3);
  }
  harness::print_section("survivability of the r=" +
                             std::to_string(g_coverage) + " placement",
                         "single-crash rows aggregate worst case over all "
                         "opened facilities",
                         surv);
  return 0;
}

int cmd_solve(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string algo_name = argv[2];
  const fl::Instance inst = load_instance(argv[3]);
  core::MwParams params;
  params.k = argc > 4 ? std::atoi(argv[4]) : 4;
  params.seed = argc > 5 ? static_cast<std::uint64_t>(std::atoll(argv[5]))
                         : 1;
  params.num_threads = g_threads;
  apply_fault_flags(params);
  params.trace_path = g_trace_path;
  params.trace_format = g_trace_format;
  params.trace_phases = g_trace_phases;
  if (g_capacity > 0 && (g_coverage > 1 || g_kill_frac > 0.0)) {
    std::cerr << "--capacity cannot be combined with --coverage/--kill-frac\n";
    return 2;
  }
  if (g_capacity > 0) return solve_capacitated(algo_name, inst, params);
  if (g_coverage > 1 || g_kill_frac > 0.0)
    return solve_ftfp(algo_name, inst, params);
  for (const auto& [name, algo] : algo_registry()) {
    if (name == algo_name) {
      const harness::LowerBound lb = harness::compute_lower_bound(inst);
      harness::RunResult r = harness::run_algorithm(algo, inst, params, lb);
      const bool distributed = algo == harness::Algo::kMwGreedy ||
                               algo == harness::Algo::kPipeline ||
                               algo == harness::Algo::kCliqueFl;
      if (distributed && fault_flags_active()) {
        // Round dilation against the fault-free baseline sharing the same
        // transport mode and boot-crash pruning (fault_seed preserved).
        // The baseline is never traced — it must not clobber the trace of
        // the faulted run.
        core::MwParams clean = params;
        clean.faults = net::FaultPlan::Options{};
        clean.faults.fault_seed = params.faults.fault_seed;
        clean.trace_path.clear();
        const harness::RunResult base =
            harness::run_algorithm(algo, inst, clean, lb);
        if (base.rounds > 0) {
          r.round_dilation = static_cast<double>(r.rounds) /
                             static_cast<double>(base.rounds);
        }
      }
      harness::print_section(name + " on " + inst.describe(),
                             "lower bound (" + lb.kind + ") = " +
                                 format_double(lb.value, 2),
                             harness::results_table({r}));
      if (!r.trace_path.empty()) {
        std::cout << "trace ("
                  << net::trace_format_name(params.trace_format)
                  << ") written to " << r.trace_path << "\n";
      } else if (!g_trace_path.empty()) {
        std::cout << "note: --trace applies to the distributed algorithms "
                     "(mw-greedy, mw-pipeline, clique-fl); no trace "
                     "written\n";
      }
      return 0;
    }
  }
  std::cerr << "unknown algorithm '" << algo_name << "'\n";
  return 2;
}

int cmd_sweep(int argc, char** argv) {
  if (argc < 3) return usage();
  const fl::Instance inst = load_instance(argv[2]);
  const auto seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 1;
  const harness::LowerBound lb = harness::compute_lower_bound(inst);
  Table table({"k", "cost", "ratio", "rounds", "messages"});
  for (int k : {1, 2, 4, 8, 16, 32, 64}) {
    core::MwParams params;
    params.k = k;
    params.seed = seed;
    params.num_threads = g_threads;
    apply_fault_flags(params);
    const harness::RunResult r = harness::run_algorithm(
        harness::Algo::kMwGreedy, inst, params, lb);
    table.row().cell(k).cell(r.cost, 2).cell(r.ratio, 3).cell(r.rounds).cell(
        r.messages);
  }
  harness::print_section("mw-greedy k sweep on " + inst.describe(),
                         "lower bound (" + lb.kind + ") = " +
                             format_double(lb.value, 2),
                         table);
  return 0;
}

int cmd_stream(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string engine_arg = argv[2];
  service::SolveEngine engine;
  if (engine_arg == "mw-greedy") {
    engine = service::SolveEngine::kMwGreedy;
  } else if (engine_arg == "mw-pipeline") {
    engine = service::SolveEngine::kPipeline;
  } else {
    std::cerr << "stream engine must be mw-greedy or mw-pipeline\n";
    return 2;
  }

  workload::StreamParams sp;
  sp.num_cells = g_stream_cells;
  sp.initial_clients = g_stream_initial;
  const std::int64_t total = g_stream_events;
  const std::int64_t epoch_size =
      g_epoch_size > 0 ? g_epoch_size : std::max<std::int64_t>(1, total / 100);

  service::StreamingOptions opt;
  opt.params.k = argc > 3 ? std::atoi(argv[3]) : 4;
  opt.params.seed =
      argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 1;
  opt.params.num_threads = g_threads;
  opt.bounds = service::stream_bounds(sp, total);
  opt.engine = engine;
  opt.warm_start = !g_stream_cold;

  workload::ClientStream stream(sp, opt.params.seed);
  service::StreamingSolver solver(stream.initial_snapshot(), opt);
  std::vector<service::EpochReport> reports{solver.last_report()};
  for (std::int64_t remaining = total; remaining > 0;) {
    const auto batch_size =
        static_cast<std::int32_t>(std::min(remaining, epoch_size));
    fl::DeltaLog batch;
    stream.fill_epoch(batch_size, batch);
    for (const fl::Delta& d : batch.deltas()) solver.ingest(d);
    reports.push_back(solver.commit_epoch());
    remaining -= batch_size;
  }

  std::ostringstream subtitle;
  subtitle << total << " events in epochs of " << epoch_size << ", "
           << sp.num_cells << " cells, "
           << (opt.warm_start ? "warm-started" : "from-scratch (--cold)");
  harness::print_section(
      "streaming " + service::engine_name(engine) + " (k=" +
          std::to_string(opt.params.k) + ", seed=" +
          std::to_string(opt.params.seed) + ")",
      subtitle.str(), harness::stream_table(reports));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip position-independent option flags before positional parsing.
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto take_value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--threads") {
      const char* v = take_value();
      if (v == nullptr) return usage();
      g_threads = std::atoi(v);
      if (g_threads < 1) {
        std::cerr << "--threads must be >= 1\n";
        return 2;
      }
      continue;
    }
    if (arg == "--drop") {
      const char* v = take_value();
      if (v == nullptr) return usage();
      g_drop = std::atof(v);
      if (g_drop < 0.0 || g_drop > 1.0) {
        std::cerr << "--drop must be in [0, 1]\n";
        return 2;
      }
      continue;
    }
    if (arg == "--crash-frac") {
      const char* v = take_value();
      if (v == nullptr) return usage();
      g_crash_frac = std::atof(v);
      if (g_crash_frac < 0.0 || g_crash_frac > 1.0) {
        std::cerr << "--crash-frac must be in [0, 1]\n";
        return 2;
      }
      continue;
    }
    if (arg == "--burst-len") {
      const char* v = take_value();
      if (v == nullptr) return usage();
      g_burst_len = std::atoi(v);
      if (g_burst_len < 1) {
        std::cerr << "--burst-len must be >= 1\n";
        return 2;
      }
      continue;
    }
    if (arg == "--fault-seed") {
      const char* v = take_value();
      if (v == nullptr) return usage();
      g_fault_seed = static_cast<std::uint64_t>(std::atoll(v));
      continue;
    }
    if (arg == "--reliable") {
      g_reliable = true;
      continue;
    }
    if (arg == "--coverage") {
      const char* v = take_value();
      if (v == nullptr) return usage();
      g_coverage = std::atoi(v);
      if (g_coverage < 1) {
        std::cerr << "--coverage must be >= 1\n";
        return 2;
      }
      continue;
    }
    if (arg == "--kill-frac") {
      const char* v = take_value();
      if (v == nullptr) return usage();
      g_kill_frac = std::atof(v);
      if (g_kill_frac < 0.0 || g_kill_frac > 1.0) {
        std::cerr << "--kill-frac must be in [0, 1]\n";
        return 2;
      }
      continue;
    }
    if (arg == "--kill-seed") {
      const char* v = take_value();
      if (v == nullptr) return usage();
      g_kill_seed = static_cast<std::uint64_t>(std::atoll(v));
      continue;
    }
    if (arg == "--capacity") {
      const char* v = take_value();
      if (v == nullptr) return usage();
      g_capacity = std::atoi(v);
      if (g_capacity < 1) {
        std::cerr << "--capacity must be >= 1\n";
        return 2;
      }
      continue;
    }
    if (arg == "--trace") {
      const char* v = take_value();
      if (v == nullptr) return usage();
      g_trace_path = v;
      continue;
    }
    if (arg == "--trace-format") {
      const char* v = take_value();
      if (v == nullptr || !net::parse_trace_format(v, &g_trace_format)) {
        std::cerr << "--trace-format must be jsonl or chrome\n";
        return 2;
      }
      continue;
    }
    if (arg == "--trace-phases") {
      g_trace_phases = true;
      continue;
    }
    if (arg == "--stream") {
      const char* v = take_value();
      if (v == nullptr) return usage();
      g_stream_events = std::atoll(v);
      if (g_stream_events < 1) {
        std::cerr << "--stream must be >= 1\n";
        return 2;
      }
      continue;
    }
    if (arg == "--epoch-size") {
      const char* v = take_value();
      if (v == nullptr) return usage();
      g_epoch_size = std::atoll(v);
      if (g_epoch_size < 1) {
        std::cerr << "--epoch-size must be >= 1\n";
        return 2;
      }
      continue;
    }
    if (arg == "--cells") {
      const char* v = take_value();
      if (v == nullptr) return usage();
      g_stream_cells = std::atoi(v);
      if (g_stream_cells < 1) {
        std::cerr << "--cells must be >= 1\n";
        return 2;
      }
      continue;
    }
    if (arg == "--initial") {
      const char* v = take_value();
      if (v == nullptr) return usage();
      g_stream_initial = std::atoi(v);
      if (g_stream_initial < 1) {
        std::cerr << "--initial must be >= 1\n";
        return 2;
      }
      continue;
    }
    if (arg == "--cold") {
      g_stream_cold = true;
      continue;
    }
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    args.push_back(argv[i]);
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate") return cmd_generate(argc, argv);
    if (cmd == "info") return cmd_info(argc, argv);
    if (cmd == "solve") return cmd_solve(argc, argv);
    if (cmd == "sweep") return cmd_sweep(argc, argv);
    if (cmd == "bounds") return cmd_bounds(argc, argv);
    if (cmd == "stream") return cmd_stream(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
