// dflp_cli — command-line front end for the library.
//
//   dflp_cli generate <family> <size> <seed>          # instance -> stdout
//   dflp_cli info     <instance.ufl|->                # describe instance
//   dflp_cli solve    <algo> <instance.ufl|-> [k] [seed]
//   dflp_cli sweep    <instance.ufl|->  [seed]        # k sweep table
//   dflp_cli bounds   <instance.ufl|->                # LP / dual bounds
//
// `--threads N` (anywhere on the line) runs the distributed simulations
// with an N-thread step phase; results are bit-identical to --threads 1,
// only the wall time changes.
//
// `-` reads the instance from stdin. Families: uniform, euclidean,
// powerlaw, greedy-tight, star. Algorithms: any name printed by
// `dflp_cli solve help`.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/table.h"
#include "fl/serialize.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "lp/dual_ascent.h"
#include "lp/ufl_lp.h"
#include "workload/generators.h"

namespace {

using namespace dflp;

/// Simulator threads requested via --threads (default 1 = serial).
int g_threads = 1;

int usage() {
  std::cerr
      << "usage:\n"
         "  dflp_cli generate <family> <size> <seed>\n"
         "  dflp_cli info   <instance.ufl|->\n"
         "  dflp_cli solve  <algo> <instance.ufl|-> [k=4] [seed=1]\n"
         "  dflp_cli sweep  <instance.ufl|-> [seed=1]\n"
         "  dflp_cli bounds <instance.ufl|->\n"
         "options: --threads N   (simulator step-phase threads; results are\n"
         "                        bit-identical for every N)\n"
         "families: uniform euclidean powerlaw greedy-tight star\n"
         "algorithms: mw-greedy mw-pipeline ideal-greedy seq-greedy\n"
         "            jain-vazirani mettu-plaxton jms-greedy local-search\n"
         "            open-all nearest-facility\n";
  return 2;
}

fl::Instance load_instance(const std::string& path) {
  if (path == "-") return fl::read_instance(std::cin);
  std::ifstream in(path);
  DFLP_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  return fl::read_instance(in);
}

std::vector<std::pair<std::string, harness::Algo>> algo_registry() {
  using harness::Algo;
  std::vector<std::pair<std::string, Algo>> reg;
  for (const Algo a :
       {Algo::kMwGreedy, Algo::kPipeline, Algo::kIdealGreedy,
        Algo::kSeqGreedy, Algo::kJainVazirani, Algo::kMettuPlaxton,
        Algo::kJms, Algo::kLocalSearch, Algo::kOpenAll,
        Algo::kNearestFacility}) {
    reg.emplace_back(harness::algo_name(a), a);
  }
  return reg;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string family_name = argv[2];
  const auto size = static_cast<std::int32_t>(std::atoi(argv[3]));
  const auto seed = static_cast<std::uint64_t>(std::atoll(argv[4]));
  if (size < 4) {
    std::cerr << "size must be >= 4\n";
    return 2;
  }
  workload::Family family = workload::Family::kUniform;
  bool found = false;
  for (const auto f : {workload::Family::kUniform,
                       workload::Family::kEuclidean,
                       workload::Family::kPowerLaw,
                       workload::Family::kGreedyTight,
                       workload::Family::kStar}) {
    if (workload::family_name(f) == family_name) {
      family = f;
      found = true;
    }
  }
  if (!found) {
    std::cerr << "unknown family '" << family_name << "'\n";
    return 2;
  }
  fl::write_instance(std::cout,
                     workload::make_family_instance(family, size, seed));
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 3) return usage();
  const fl::Instance inst = load_instance(argv[2]);
  std::cout << inst.describe() << "\n"
            << "total opening cost    = "
            << inst.cost_profile().total_opening << "\n"
            << "total connection cost = "
            << inst.cost_profile().total_connection << "\n"
            << "open-all cost         = " << inst.open_all_cost() << "\n";
  return 0;
}

int cmd_bounds(int argc, char** argv) {
  if (argc < 3) return usage();
  const fl::Instance inst = load_instance(argv[2]);
  const lp::DualAscentResult dual = lp::dual_ascent_bound(inst);
  std::cout << "dual-ascent lower bound = " << dual.lower_bound << "\n";
  if (inst.num_edges() <= 400) {
    if (const auto lp_opt = lp::solve_ufl_lp(inst)) {
      std::cout << "exact LP optimum        = " << lp_opt->optimum << "\n";
    }
  } else {
    std::cout << "exact LP optimum        = (instance too large for the "
                 "dense simplex; dual ascent is the certified bound)\n";
  }
  std::cout << "cheapest-edges bound    = "
            << lp::cheapest_connection_bound(inst) << "\n";
  return 0;
}

int cmd_solve(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string algo_name = argv[2];
  const fl::Instance inst = load_instance(argv[3]);
  core::MwParams params;
  params.k = argc > 4 ? std::atoi(argv[4]) : 4;
  params.seed = argc > 5 ? static_cast<std::uint64_t>(std::atoll(argv[5]))
                         : 1;
  params.num_threads = g_threads;
  for (const auto& [name, algo] : algo_registry()) {
    if (name == algo_name) {
      const harness::LowerBound lb = harness::compute_lower_bound(inst);
      const harness::RunResult r =
          harness::run_algorithm(algo, inst, params, lb);
      harness::print_section(name + " on " + inst.describe(),
                             "lower bound (" + lb.kind + ") = " +
                                 format_double(lb.value, 2),
                             harness::results_table({r}));
      return 0;
    }
  }
  std::cerr << "unknown algorithm '" << algo_name << "'\n";
  return 2;
}

int cmd_sweep(int argc, char** argv) {
  if (argc < 3) return usage();
  const fl::Instance inst = load_instance(argv[2]);
  const auto seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 1;
  const harness::LowerBound lb = harness::compute_lower_bound(inst);
  Table table({"k", "cost", "ratio", "rounds", "messages"});
  for (int k : {1, 2, 4, 8, 16, 32, 64}) {
    core::MwParams params;
    params.k = k;
    params.seed = seed;
    params.num_threads = g_threads;
    const harness::RunResult r = harness::run_algorithm(
        harness::Algo::kMwGreedy, inst, params, lb);
    table.row().cell(k).cell(r.cost, 2).cell(r.ratio, 3).cell(r.rounds).cell(
        r.messages);
  }
  harness::print_section("mw-greedy k sweep on " + inst.describe(),
                         "lower bound (" + lb.kind + ") = " +
                             format_double(lb.value, 2),
                         table);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip `--threads N` (position-independent) before positional parsing.
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--threads") {
      if (i + 1 >= argc) return usage();
      g_threads = std::atoi(argv[++i]);
      if (g_threads < 1) {
        std::cerr << "--threads must be >= 1\n";
        return 2;
      }
      continue;
    }
    args.push_back(argv[i]);
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate") return cmd_generate(argc, argv);
    if (cmd == "info") return cmd_info(argc, argv);
    if (cmd == "solve") return cmd_solve(argc, argv);
    if (cmd == "sweep") return cmd_sweep(argc, argv);
    if (cmd == "bounds") return cmd_bounds(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
