// Tests for the snapshot + delta-log layer: apply() must equal building
// the mutated instance from scratch in canonical (ascending-key) order,
// and snapshots/logs must round-trip through the text format.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "fl/delta.h"
#include "fl/instance.h"
#include "fl/serialize.h"

namespace dflp::fl {
namespace {

Instance tiny() {
  InstanceBuilder b;
  const FacilityId f0 = b.add_facility(10.0);
  const FacilityId f1 = b.add_facility(5.0);
  const ClientId c0 = b.add_client();
  const ClientId c1 = b.add_client();
  const ClientId c2 = b.add_client();
  b.connect(f0, c0, 1.0);
  b.connect(f0, c1, 2.0);
  b.connect(f1, c1, 4.0);
  b.connect(f1, c2, 1.0);
  return b.build();
}

/// Structural equality down to the CSR arrays and cost profile.
void expect_same_instance(const Instance& a, const Instance& b) {
  ASSERT_EQ(a.num_facilities(), b.num_facilities());
  ASSERT_EQ(a.num_clients(), b.num_clients());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (FacilityId i = 0; i < a.num_facilities(); ++i) {
    EXPECT_EQ(a.opening_cost(i), b.opening_cost(i)) << "facility " << i;
    const auto ea = a.facility_edges(i);
    const auto eb = b.facility_edges(i);
    ASSERT_EQ(ea.size(), eb.size()) << "facility " << i;
    for (std::size_t t = 0; t < ea.size(); ++t) {
      EXPECT_EQ(ea[t].client, eb[t].client);
      EXPECT_EQ(ea[t].cost, eb[t].cost);
    }
  }
  for (ClientId j = 0; j < a.num_clients(); ++j) {
    ASSERT_EQ(a.client_edge_offset(j), b.client_edge_offset(j));
    const auto ea = a.client_edges(j);
    const auto eb = b.client_edges(j);
    ASSERT_EQ(ea.size(), eb.size()) << "client " << j;
    for (std::size_t t = 0; t < ea.size(); ++t) {
      EXPECT_EQ(ea[t].facility, eb[t].facility);
      EXPECT_EQ(ea[t].cost, eb[t].cost);
    }
  }
  EXPECT_EQ(a.max_facility_degree(), b.max_facility_degree());
  EXPECT_EQ(a.max_client_degree(), b.max_client_degree());
  EXPECT_EQ(a.cost_profile().rho, b.cost_profile().rho);
  EXPECT_EQ(a.cost_profile().min_positive, b.cost_profile().min_positive);
  EXPECT_EQ(a.cost_profile().max_value, b.cost_profile().max_value);
  EXPECT_EQ(a.cost_profile().total_opening, b.cost_profile().total_opening);
  EXPECT_EQ(a.cost_profile().total_connection,
            b.cost_profile().total_connection);
}

TEST(InstanceBuilder, ReserveIsTransparent) {
  InstanceBuilder plain;
  InstanceBuilder hinted;
  hinted.reserve(2, 3, 4);
  for (InstanceBuilder* b : {&plain, &hinted}) {
    const FacilityId f0 = b->add_facility(10.0);
    const FacilityId f1 = b->add_facility(5.0);
    const ClientId c0 = b->add_client();
    const ClientId c1 = b->add_client();
    (void)b->add_client();
    b->connect(f0, c0, 1.0);
    b->connect(f0, c1, 2.0);
    b->connect(f1, c1, 4.0);
    b->connect(f1, 2, 1.0);
  }
  expect_same_instance(plain.build(), hinted.build());
}

TEST(InstanceSnapshot, InitialAssignsDenseKeys) {
  const InstanceSnapshot snap = InstanceSnapshot::initial(tiny());
  EXPECT_EQ(snap.epoch(), 0);
  EXPECT_EQ(snap.facility_key(1), 1);
  EXPECT_EQ(snap.client_key(2), 2);
  EXPECT_EQ(snap.facility_index(0), 0);
  EXPECT_EQ(snap.client_index(2), 2);
  EXPECT_EQ(snap.facility_index(99), -1);
  EXPECT_EQ(snap.next_facility_key(), 2);
  EXPECT_EQ(snap.next_client_key(), 3);
}

TEST(DeltaLog, ApplyAllKindsMatchesScratchBuild) {
  const InstanceSnapshot snap = InstanceSnapshot::initial(tiny());
  DeltaLog log;
  log.append(Delta::client_arrive(3, {{0, 7.0}, {1, 3.0}}));
  log.append(Delta::facility_open(2, 20.0, {{2, 0.5}, {3, 6.0}}));
  log.append(Delta::client_depart(1));
  log.append(Delta::edge_cost_change(1, 2, 9.0));

  const InstanceSnapshot next = apply(snap, log);
  EXPECT_EQ(next.epoch(), 1);
  EXPECT_EQ(next.next_facility_key(), 3);
  EXPECT_EQ(next.next_client_key(), 4);

  // Scratch build in canonical order: survivors (ascending key), then
  // arrivals (log order). Final clients: keys 0, 2, 3; facilities 0, 1, 2.
  InstanceBuilder b;
  (void)b.add_facility(10.0);  // key 0
  (void)b.add_facility(5.0);   // key 1
  (void)b.add_facility(20.0);  // key 2 (opened)
  (void)b.add_client();        // key 0 -> dense 0
  (void)b.add_client();        // key 2 -> dense 1
  (void)b.add_client();        // key 3 -> dense 2 (arrived)
  b.connect(0, 0, 1.0);        // survivor edge
  b.connect(1, 1, 9.0);        // survivor edge, repriced (was 1.0)
  b.connect(0, 2, 7.0);        // arrival edges
  b.connect(1, 2, 3.0);
  b.connect(2, 1, 0.5);        // opened-facility edges
  b.connect(2, 2, 6.0);
  expect_same_instance(next.instance(), b.build());

  EXPECT_EQ(next.facility_key(2), 2);
  EXPECT_EQ(next.client_key(1), 2);
  EXPECT_EQ(next.client_index(1), -1);  // departed key
}

TEST(DeltaLog, ArriveAndDepartInOneLogCancels) {
  const InstanceSnapshot snap = InstanceSnapshot::initial(tiny());
  DeltaLog log;
  log.append(Delta::client_arrive(3, {{0, 7.0}}));
  log.append(Delta::client_depart(3));
  const InstanceSnapshot next = apply(snap, log);
  expect_same_instance(next.instance(), tiny());
  EXPECT_EQ(next.next_client_key(), 4);  // the key stays burned
}

TEST(DeltaLog, RejectsInconsistentDeltas) {
  const InstanceSnapshot snap = InstanceSnapshot::initial(tiny());
  {
    DeltaLog log;  // stale arrival key
    log.append(Delta::client_arrive(1, {{0, 1.0}}));
    EXPECT_THROW((void)apply(snap, log), CheckError);
  }
  {
    DeltaLog log;  // unknown departure
    log.append(Delta::client_depart(77));
    EXPECT_THROW((void)apply(snap, log), CheckError);
  }
  {
    DeltaLog log;  // closing facility 1 orphans client 2
    log.append(Delta::facility_close(1));
    EXPECT_THROW((void)apply(snap, log), CheckError);
  }
  {
    DeltaLog log;  // repricing a non-edge
    log.append(Delta::edge_cost_change(1, 0, 2.0));
    EXPECT_THROW((void)apply(snap, log), CheckError);
  }
  {
    DeltaLog log;  // arrival referencing an absent facility
    log.append(Delta::client_arrive(3, {{9, 1.0}}));
    EXPECT_THROW((void)apply(snap, log), CheckError);
  }
  {
    DeltaLog log;  // arrivals must carry an edge
    log.append(Delta::client_arrive(3, {}));
    EXPECT_THROW((void)apply(snap, log), CheckError);
  }
}

// ---- Randomized property: apply() == scratch build, over many epochs ----

struct Model {
  // Ascending-key maps mirror the canonical snapshot ordering.
  std::map<NodeKey, Cost> facilities;
  std::map<NodeKey, bool> clients;
  std::map<std::pair<NodeKey, NodeKey>, Cost> edges;  // (fkey, ckey)
  NodeKey next_f = 0;
  NodeKey next_c = 0;

  [[nodiscard]] Instance build() const {
    InstanceBuilder b;
    std::map<NodeKey, FacilityId> fid;
    std::map<NodeKey, ClientId> cid;
    for (const auto& [key, cost] : facilities)
      fid[key] = b.add_facility(cost);
    for (const auto& [key, alive] : clients) cid[key] = b.add_client();
    for (const auto& [edge, cost] : edges)
      b.connect(fid.at(edge.first), cid.at(edge.second), cost);
    return b.build();
  }
};

TEST(DeltaLog, RandomizedApplyMatchesScratchBuild) {
  Rng rng(0xD317A5EEDULL);
  Model model;
  InstanceBuilder seed_builder;
  for (int i = 0; i < 8; ++i) {
    const Cost opening = rng.uniform_real(1.0, 50.0);
    seed_builder.add_facility(opening);
    model.facilities[model.next_f++] = opening;
  }
  for (int j = 0; j < 24; ++j) {
    const ClientId cj = seed_builder.add_client();
    model.clients[model.next_c] = true;
    const int deg = 1 + static_cast<int>(rng.uniform_u64(3));
    std::vector<std::int32_t> picks;
    while (static_cast<int>(picks.size()) < deg) {
      const auto f = static_cast<std::int32_t>(rng.uniform_u64(8));
      if (std::find(picks.begin(), picks.end(), f) == picks.end())
        picks.push_back(f);
    }
    for (std::int32_t f : picks) {
      const Cost c = rng.uniform_real(0.5, 20.0);
      seed_builder.connect(f, cj, c);
      model.edges[{f, model.next_c}] = c;
    }
    ++model.next_c;
  }
  InstanceSnapshot snap = InstanceSnapshot::initial(seed_builder.build());

  for (int epoch = 0; epoch < 6; ++epoch) {
    DeltaLog log;
    // Opens and reprices are validated against the *final* topology of the
    // log, so collect them during generation and append them at the end,
    // restricted to edges that survive the epoch's churn.
    const NodeKey epoch_f0 = model.next_f;
    std::set<NodeKey> arrival_facilities;
    std::vector<std::pair<NodeKey, Cost>> pending_opens;
    std::vector<std::pair<std::pair<NodeKey, NodeKey>, Cost>> reprices;
    for (int t = 0; t < 25; ++t) {
      const auto dice = rng.uniform_u64(100);
      if (dice < 40) {  // client arrives
        std::vector<KeyedEdge> edges;
        std::vector<NodeKey> fkeys;
        // Only pre-epoch facilities: edges to a same-epoch open are
        // declared by the (deferred) open itself, and declaring them here
        // too would duplicate the edge.
        for (const auto& [key, cost] : model.facilities) {
          if (key < epoch_f0) fkeys.push_back(key);
        }
        const int deg = 1 + static_cast<int>(rng.uniform_u64(
                                std::min<std::uint64_t>(3, fkeys.size())));
        for (int d = 0; d < deg; ++d) {
          const NodeKey f =
              fkeys[rng.uniform_u64(fkeys.size())];
          bool dup = false;
          for (const KeyedEdge& e : edges) dup |= e.peer == f;
          if (dup) continue;
          edges.push_back({f, rng.uniform_real(0.5, 20.0)});
        }
        if (edges.empty()) continue;
        const NodeKey key = model.next_c++;
        for (const KeyedEdge& e : edges) {
          model.edges[{e.peer, key}] = e.cost;
          arrival_facilities.insert(e.peer);
        }
        model.clients[key] = true;
        log.append(Delta::client_arrive(key, edges));
      } else if (dice < 60) {  // client departs
        if (model.clients.size() <= 2) continue;
        auto it = model.clients.begin();
        std::advance(it, static_cast<long>(
                             rng.uniform_u64(model.clients.size())));
        const NodeKey key = it->first;
        model.clients.erase(it);
        for (auto e = model.edges.begin(); e != model.edges.end();) {
          if (e->first.second == key)
            e = model.edges.erase(e);
          else
            ++e;
        }
        log.append(Delta::client_depart(key));
      } else if (dice < 75) {  // facility opens
        const NodeKey key = model.next_f++;
        const Cost opening = rng.uniform_real(1.0, 50.0);
        std::vector<KeyedEdge> edges;
        for (const auto& [ckey, alive] : model.clients) {
          if (rng.uniform_u64(4) == 0)
            edges.push_back({ckey, rng.uniform_real(0.5, 20.0)});
        }
        model.facilities[key] = opening;
        for (const KeyedEdge& e : edges)
          model.edges[{key, e.peer}] = e.cost;
        pending_opens.push_back({key, opening});
      } else if (dice < 85) {  // facility closes (skip if it orphans)
        if (model.facilities.size() <= 2) continue;
        auto it = model.facilities.begin();
        std::advance(it, static_cast<long>(
                             rng.uniform_u64(model.facilities.size())));
        const NodeKey key = it->first;
        // Deferred opens are appended after any close, so closing one
        // would reorder open/close for the same key; skip those. Likewise
        // skip facilities an in-epoch arrival references — arrival edges
        // are validated against the final topology.
        if (key >= epoch_f0) continue;
        if (arrival_facilities.count(key) != 0) continue;
        bool orphans = false;
        for (const auto& [ckey, alive] : model.clients) {
          int other = 0;
          bool uses = false;
          for (const auto& [edge, cost] : model.edges) {
            if (edge.second != ckey) continue;
            if (edge.first == key)
              uses = true;
            else
              ++other;
          }
          if (uses && other == 0) {
            orphans = true;
            break;
          }
        }
        if (orphans) continue;
        model.facilities.erase(it);
        for (auto e = model.edges.begin(); e != model.edges.end();) {
          if (e->first.first == key)
            e = model.edges.erase(e);
          else
            ++e;
        }
        log.append(Delta::facility_close(key));
      } else {  // reprice an existing edge
        if (model.edges.empty()) continue;
        auto it = model.edges.begin();
        std::advance(it, static_cast<long>(
                             rng.uniform_u64(model.edges.size())));
        const Cost c = rng.uniform_real(0.5, 20.0);
        it->second = c;
        reprices.push_back({it->first, c});
      }
    }
    for (const auto& [key, opening] : pending_opens) {
      std::vector<KeyedEdge> edges;
      for (const auto& [edge, cost] : model.edges) {
        if (edge.first == key) edges.push_back({edge.second, cost});
      }
      log.append(Delta::facility_open(key, opening, edges));
    }
    for (const auto& [edge, cost] : reprices) {
      if (model.edges.count(edge) != 0)
        log.append(Delta::edge_cost_change(edge.first, edge.second, cost));
    }
    snap = apply(snap, log);
    EXPECT_EQ(snap.epoch(), epoch + 1);
    expect_same_instance(snap.instance(), model.build());
  }
}

// ---- Serialization round-trips -----------------------------------------

TEST(Serialize, SnapshotRoundTrip) {
  const InstanceSnapshot snap = InstanceSnapshot::initial(tiny());
  DeltaLog log;
  log.append(Delta::client_arrive(3, {{0, 7.25}, {1, 3.5}}));
  log.append(Delta::client_depart(0));
  const InstanceSnapshot next = apply(snap, log);

  const InstanceSnapshot parsed =
      snapshot_from_text(snapshot_to_text(next));
  EXPECT_EQ(parsed.epoch(), next.epoch());
  EXPECT_EQ(parsed.next_facility_key(), next.next_facility_key());
  EXPECT_EQ(parsed.next_client_key(), next.next_client_key());
  expect_same_instance(parsed.instance(), next.instance());
  for (FacilityId i = 0; i < next.instance().num_facilities(); ++i)
    EXPECT_EQ(parsed.facility_key(i), next.facility_key(i));
  for (ClientId j = 0; j < next.instance().num_clients(); ++j)
    EXPECT_EQ(parsed.client_key(j), next.client_key(j));
}

TEST(Serialize, DeltaLogRoundTripAndReplay) {
  const InstanceSnapshot snap = InstanceSnapshot::initial(tiny());
  DeltaLog log;
  log.append(Delta::client_arrive(3, {{0, 7.0}, {1, 3.0}}));
  log.append(Delta::facility_open(2, 20.0, {{2, 0.5}}));
  log.append(Delta::client_depart(1));
  log.append(Delta::facility_close(2));
  log.append(Delta::edge_cost_change(1, 2, 9.0));

  const DeltaLog parsed = delta_log_from_text(delta_log_to_text(log));
  ASSERT_EQ(parsed.size(), log.size());
  for (std::size_t t = 0; t < log.size(); ++t) {
    const Delta& a = log.deltas()[t];
    const Delta& b = parsed.deltas()[t];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.facility, b.facility);
    EXPECT_EQ(a.client, b.client);
    EXPECT_EQ(a.cost, b.cost);
    ASSERT_EQ(a.edges.size(), b.edges.size());
    for (std::size_t e = 0; e < a.edges.size(); ++e) {
      EXPECT_EQ(a.edges[e].peer, b.edges[e].peer);
      EXPECT_EQ(a.edges[e].cost, b.edges[e].cost);
    }
  }
  // Replaying the parsed pair must land on the same epoch-1 instance: the
  // serialized snapshot+log is a faithful checkpoint of the stream.
  const InstanceSnapshot a = apply(snap, log);
  const InstanceSnapshot b =
      apply(snapshot_from_text(snapshot_to_text(snap)), parsed);
  expect_same_instance(a.instance(), b.instance());
}

TEST(Serialize, RejectsMalformedSnapshotAndLog) {
  EXPECT_THROW((void)snapshot_from_text("dflp-snap 2\n"), CheckError);
  EXPECT_THROW((void)delta_log_from_text("dflp-delta-log 1\n1\nwobble 3\n"),
               CheckError);
}

}  // namespace
}  // namespace dflp::fl
