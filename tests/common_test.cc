// Unit tests for common/: mathx, stats, table, check.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/mathx.h"
#include "common/stats.h"
#include "common/table.h"

namespace dflp {
namespace {

// ---------------------------------------------------------------- mathx --

TEST(Mathx, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
  EXPECT_EQ(ceil_log2(1ULL << 63), 63);
}

TEST(Mathx, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_EQ(floor_log2(1023), 9);
  EXPECT_EQ(floor_log2(1024), 10);
}

TEST(Mathx, LogStar) {
  EXPECT_EQ(log_star(1.0), 0);
  EXPECT_EQ(log_star(2.0), 1);
  EXPECT_EQ(log_star(4.0), 2);
  EXPECT_EQ(log_star(16.0), 3);
  EXPECT_EQ(log_star(65536.0), 4);
  EXPECT_EQ(log_star(std::pow(2.0, 1000.0)), 5);
  // Overflowing inputs saturate instead of looping.
  EXPECT_EQ(log_star(std::numeric_limits<double>::infinity()), 5);
}

TEST(Mathx, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 5), 2u);
  EXPECT_EQ(ceil_div(11, 5), 3u);
  EXPECT_EQ(ceil_div(1, 100), 1u);
}

TEST(Mathx, HarmonicExactSmall) {
  EXPECT_DOUBLE_EQ(harmonic(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_DOUBLE_EQ(harmonic(2), 1.5);
  EXPECT_NEAR(harmonic(10), 2.9289682539682538, 1e-12);
}

TEST(Mathx, HarmonicAsymptoticAgreesWithExactAtBoundary) {
  // Exact sum at 4096 vs asymptotic expansion at 4097: must be within 1e-9.
  double exact = 0.0;
  for (int i = 1; i <= 4097; ++i) exact += 1.0 / i;
  EXPECT_NEAR(harmonic(4097), exact, 1e-9);
}

TEST(Mathx, GeometricLevels) {
  const auto levels = geometric_levels(1.0, 2.0, 5);
  ASSERT_EQ(levels.size(), 5u);
  EXPECT_DOUBLE_EQ(levels[0], 1.0);
  EXPECT_DOUBLE_EQ(levels[4], 16.0);
  EXPECT_THROW(geometric_levels(0.0, 2.0, 3), CheckError);
  EXPECT_THROW(geometric_levels(1.0, 1.0, 3), CheckError);
  EXPECT_THROW(geometric_levels(1.0, 2.0, 0), CheckError);
}

TEST(Mathx, ApproxEq) {
  EXPECT_TRUE(approx_eq(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_eq(1.0, 1.001));
  EXPECT_TRUE(approx_eq(1e12, 1e12 + 1.0, 1e-9));
  EXPECT_TRUE(approx_eq(0.0, 0.0));
}

TEST(Mathx, ClampFinite) {
  EXPECT_EQ(clamp_finite(5.0, 0.0, 10.0), 5.0);
  EXPECT_EQ(clamp_finite(-1.0, 0.0, 10.0), 0.0);
  EXPECT_EQ(clamp_finite(11.0, 0.0, 10.0), 10.0);
  EXPECT_EQ(clamp_finite(std::nan(""), 0.0, 10.0), 0.0);
}

// ---------------------------------------------------------------- stats --

TEST(Stats, RunningStatBasics) {
  RunningStat s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(Stats, RunningStatEmpty) {
  const RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, RunningStatMergeMatchesSequential) {
  RunningStat all;
  RunningStat left;
  RunningStat right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i < 20 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Stats, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile({5.0}, 0.7), 5.0);
  EXPECT_THROW((void)percentile({}, 0.5), CheckError);
}

TEST(Stats, SummaryFields) {
  const Summary s = summarize({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Stats, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
  EXPECT_NEAR(geometric_mean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_THROW((void)geometric_mean({1.0, 0.0}), CheckError);
}

// ---------------------------------------------------------------- table --

TEST(Table, MarkdownRendering) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.5, 2);
  t.row().cell("beta").cell(std::int64_t{42});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| name"), std::string::npos);
  EXPECT_NE(md.find("alpha"), std::string::npos);
  EXPECT_NE(md.find("42"), std::string::npos);
  EXPECT_NE(md.find("|---"), std::string::npos);
}

TEST(Table, CsvQuoting) {
  Table t({"a", "b"});
  t.row().cell("plain").cell("has,comma");
  t.row().cell("has\"quote").cell("x");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.row().cell("ok");
  EXPECT_THROW(t.cell("overflow"), CheckError);
}

TEST(Table, CellBeforeRowThrows) {
  Table t({"h"});
  EXPECT_THROW(t.cell("x"), CheckError);
}

TEST(Table, FormatDoubleTrimsZeros) {
  EXPECT_EQ(format_double(1.25, 3), "1.25");
  EXPECT_EQ(format_double(3.0, 3), "3");
  EXPECT_EQ(format_double(0.001, 3), "0.001");
  EXPECT_EQ(format_double(0.0001, 3), "0");
}

// ---------------------------------------------------------------- check --

TEST(Check, ThrowsWithContext) {
  try {
    DFLP_CHECK_MSG(1 == 2, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
  }
}

TEST(Check, PassingConditionIsSilent) {
  EXPECT_NO_THROW(DFLP_CHECK(2 + 2 == 4));
}

}  // namespace
}  // namespace dflp
