// Golden-metrics regression tests for the round engine.
//
// The equivalence sweep (engine_equivalence_test.cc) proves that thread
// count and delivery order cannot change an execution, but it would not
// notice if a transport rewrite shifted *every* configuration in the same
// way. These tests pin the absolute NetMetrics of fixed-seed runs to
// values committed when the per-inbox transport was replaced by the flat
// delivery arena — both engines produced exactly these numbers. Any
// future change that alters a fingerprint is a behavioural change to the
// simulator, not a refactor, and must update the goldens deliberately.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/mw_greedy.h"
#include "workload/generators.h"

namespace dflp {
namespace {

std::string metrics_fingerprint(const net::NetMetrics& m) {
  std::ostringstream os;
  os << m.rounds << '/' << m.messages << '/' << m.total_bits << '/'
     << m.max_message_bits << '/' << m.max_messages_in_round << '/'
     << m.dropped;
  return os.str();
}

// Uniform family, 80 facilities, seed 13; k=4, engine seed 17. Committed
// from identical runs of the pre-arena and arena transports.
constexpr char kGoldenFingerprint[] = "29/1005/8040/8/592/0";
constexpr std::uint64_t kGoldenOpenFacilities = 16;

core::MwParams golden_params() {
  core::MwParams params;
  params.k = 4;
  params.seed = 17;
  return params;
}

fl::Instance golden_instance() {
  return workload::make_family_instance(workload::Family::kUniform, 80, 13);
}

std::uint64_t open_count(const fl::Instance& inst,
                         const fl::IntegralSolution& sol) {
  std::uint64_t open = 0;
  for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i)
    if (sol.is_open(i)) ++open;
  return open;
}

TEST(GoldenMetrics, MwGreedyReliableRunMatchesCommittedFingerprint) {
  const fl::Instance inst = golden_instance();
  const core::MwGreedyOutcome out = core::run_mw_greedy(inst, golden_params());
  EXPECT_EQ(metrics_fingerprint(out.metrics), kGoldenFingerprint);
  EXPECT_EQ(open_count(inst, out.solution), kGoldenOpenFacilities);
}

TEST(GoldenMetrics, FingerprintIndependentOfDeliveryOrderAndThreads) {
  // For this instance the protocol's behaviour is invariant under inbox
  // reordering, so every delivery order must reproduce the one golden —
  // at every thread count.
  const fl::Instance inst = golden_instance();
  for (auto delivery :
       {net::DeliveryOrder::kBySource, net::DeliveryOrder::kRandomShuffle,
        net::DeliveryOrder::kReverseSource}) {
    for (int threads : {1, 4}) {
      core::MwParams params = golden_params();
      params.delivery = delivery;
      params.num_threads = threads;
      const core::MwGreedyOutcome out = core::run_mw_greedy(inst, params);
      EXPECT_EQ(metrics_fingerprint(out.metrics), kGoldenFingerprint)
          << "delivery=" << static_cast<int>(delivery)
          << " threads=" << threads;
      EXPECT_EQ(open_count(inst, out.solution), kGoldenOpenFacilities);
    }
  }
}

TEST(GoldenMetrics, MwGreedyUnderDropsFailsWithCommittedDiagnostic) {
  // With 15% message drops this protocol fails loudly; the failure point
  // is itself a function of the seeded fault streams, so the diagnostic is
  // part of the golden.
  const fl::Instance inst = golden_instance();
  core::MwParams params = golden_params();
  params.faults.drop_probability = 0.15;
  try {
    (void)core::run_mw_greedy(inst, params);
    FAIL() << "expected CheckError under drops";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what())
                  .find("mop-up grant missing for client node 74"),
              std::string::npos)
        << "actual: " << e.what();
  }
}

}  // namespace
}  // namespace dflp
