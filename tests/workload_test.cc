// Tests for the instance generators: validity, determinism, and that each
// family actually has the property it exists to provide.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "fl/serialize.h"
#include "seq/greedy.h"
#include "seq/brute_force.h"
#include "workload/generators.h"

namespace dflp::workload {
namespace {

TEST(Uniform, ShapeAndDegrees) {
  UniformParams p;
  p.num_facilities = 10;
  p.num_clients = 50;
  p.client_degree = 4;
  const fl::Instance inst = uniform_random(p, 1);
  EXPECT_EQ(inst.num_facilities(), 10);
  EXPECT_EQ(inst.num_clients(), 50);
  EXPECT_EQ(inst.num_edges(), 200u);
  for (fl::ClientId j = 0; j < 50; ++j)
    EXPECT_EQ(inst.client_edges(j).size(), 4u);
}

TEST(Uniform, DeterministicPerSeed) {
  UniformParams p;
  const std::string a = fl::to_text(uniform_random(p, 7));
  const std::string b = fl::to_text(uniform_random(p, 7));
  const std::string c = fl::to_text(uniform_random(p, 8));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Uniform, CostsWithinRanges) {
  UniformParams p;
  p.opening_lo = 5.0;
  p.opening_hi = 6.0;
  p.connection_lo = 0.5;
  p.connection_hi = 0.75;
  const fl::Instance inst = uniform_random(p, 3);
  for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i) {
    EXPECT_GE(inst.opening_cost(i), 5.0);
    EXPECT_LE(inst.opening_cost(i), 6.0);
    for (const fl::FacilityEdge& e : inst.facility_edges(i)) {
      EXPECT_GE(e.cost, 0.5);
      EXPECT_LE(e.cost, 0.75);
    }
  }
}

TEST(Uniform, DegreeClampedToFacilityCount) {
  UniformParams p;
  p.num_facilities = 3;
  p.client_degree = 10;
  const fl::Instance inst = uniform_random(p, 2);
  for (fl::ClientId j = 0; j < inst.num_clients(); ++j)
    EXPECT_EQ(inst.client_edges(j).size(), 3u);
}

TEST(Euclidean, CompleteBipartiteByDefault) {
  EuclideanParams p;
  p.num_facilities = 5;
  p.num_clients = 12;
  const EuclideanInstance out = euclidean(p, 4);
  EXPECT_EQ(out.instance.num_edges(), 60u);
  EXPECT_EQ(out.facility_pos.size(), 5u);
  EXPECT_EQ(out.client_pos.size(), 12u);
}

TEST(Euclidean, CostsEqualDistances) {
  EuclideanParams p;
  p.num_facilities = 4;
  p.num_clients = 6;
  const EuclideanInstance out = euclidean(p, 9);
  for (fl::ClientId j = 0; j < 6; ++j) {
    for (const fl::ClientEdge& e : out.instance.client_edges(j)) {
      const double d = euclidean_distance(
          out.facility_pos[static_cast<std::size_t>(e.facility)],
          out.client_pos[static_cast<std::size_t>(j)]);
      EXPECT_NEAR(e.cost, d, 1e-9);
    }
  }
}

TEST(Euclidean, TriangleInequalityThroughFacilities) {
  // Metric check: for facilities a,b and clients u,v:
  // c(a,u) <= c(a,v) + c(b,v) + c(b,u).
  EuclideanParams p;
  p.num_facilities = 5;
  p.num_clients = 8;
  const EuclideanInstance out = euclidean(p, 11);
  const fl::Instance& inst = out.instance;
  for (fl::FacilityId a = 0; a < 5; ++a)
    for (fl::FacilityId b = 0; b < 5; ++b)
      for (fl::ClientId u = 0; u < 8; ++u)
        for (fl::ClientId v = 0; v < 8; ++v)
          EXPECT_LE(inst.connection_cost(a, u),
                    inst.connection_cost(a, v) + inst.connection_cost(b, v) +
                        inst.connection_cost(b, u) + 1e-9);
}

TEST(Euclidean, RadiusSparsifiesButStaysFeasible) {
  EuclideanParams p;
  p.num_facilities = 10;
  p.num_clients = 40;
  p.connect_radius = 100.0;  // small vs side=1000
  const EuclideanInstance out = euclidean(p, 5);
  EXPECT_LT(out.instance.num_edges(), 400u);
  for (fl::ClientId j = 0; j < 40; ++j)
    EXPECT_GE(out.instance.client_edges(j).size(), 1u);  // nearest kept
}

TEST(Euclidean, ClustersConcentratePoints) {
  EuclideanParams p;
  p.num_facilities = 30;
  p.num_clients = 30;
  p.clusters = 2;
  const EuclideanInstance out = euclidean(p, 6);
  // With 2 tight clusters, the average pairwise client distance is far
  // below the uniform-square expectation (~521 for side 1000).
  double total = 0.0;
  int pairs = 0;
  for (std::size_t a = 0; a < out.client_pos.size(); ++a)
    for (std::size_t b = a + 1; b < out.client_pos.size(); ++b) {
      total += euclidean_distance(out.client_pos[a], out.client_pos[b]);
      ++pairs;
    }
  EXPECT_LT(total / pairs, 450.0);
}

TEST(PowerLaw, RhoLandsNearTarget) {
  PowerLawParams p;
  p.num_facilities = 30;
  p.num_clients = 200;
  p.rho_target = 1e5;
  const fl::Instance inst = power_law_spread(p, 13);
  const double rho = inst.cost_profile().rho;
  EXPECT_GT(rho, 1e3);   // spread really present
  EXPECT_LE(rho, 1e5 + 1);  // bounded by construction
}

TEST(PowerLaw, LargerTargetLargerRho) {
  PowerLawParams lo;
  lo.rho_target = 10.0;
  PowerLawParams hi;
  hi.rho_target = 1e6;
  EXPECT_LT(power_law_spread(lo, 1).cost_profile().rho,
            power_law_spread(hi, 1).cost_profile().rho);
}

TEST(GreedyTight, GreedyReallyPaysNearHn) {
  const int n = 64;
  const fl::Instance inst = greedy_tight(n, 0.01);
  const auto brute = seq::brute_force_solve(inst, /*max_facilities=*/30);
  // Brute force can't handle 65 facilities; compute OPT analytically: the
  // "all" facility costs 1+eps with zero connections.
  ASSERT_FALSE(brute.has_value());
  const double opt = 1.01;
  const seq::GreedyResult g = seq::greedy_solve(inst);
  const double ratio = g.solution.cost(inst) / opt;
  // Greedy walks the singleton ladder: pays ~H_n vs OPT ~1.
  EXPECT_GT(ratio, 2.5);  // H_64 ≈ 4.74; allow greedy partial escapes
}

TEST(GreedyTight, StructureIsAsDocumented) {
  const fl::Instance inst = greedy_tight(8);
  EXPECT_EQ(inst.num_facilities(), 9);
  EXPECT_EQ(inst.num_clients(), 8);
  EXPECT_EQ(inst.num_edges(), 16u);
  EXPECT_DOUBLE_EQ(inst.opening_cost(0), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(inst.opening_cost(7), 1.0);
}

TEST(Star, HubDominates) {
  const fl::Instance inst = star(5, 10, 17);
  EXPECT_EQ(inst.num_facilities(), 6);
  EXPECT_EQ(inst.num_clients(), 50);
  // Every client reaches the hub.
  for (fl::ClientId j = 0; j < 50; ++j) {
    bool hub = false;
    for (const fl::ClientEdge& e : inst.client_edges(j)) hub |= e.facility == 0;
    EXPECT_TRUE(hub);
  }
}

TEST(Family, AllFamiliesProduceValidInstancesOfRequestedScale) {
  for (const Family f : {Family::kUniform, Family::kEuclidean,
                         Family::kPowerLaw, Family::kGreedyTight,
                         Family::kStar}) {
    const fl::Instance inst = make_family_instance(f, 60, 3);
    EXPECT_GE(inst.num_clients(), 30) << family_name(f);
    EXPECT_GE(inst.num_facilities(), 2) << family_name(f);
  }
}

TEST(Family, NamesAreDistinct) {
  EXPECT_EQ(family_name(Family::kUniform), "uniform");
  EXPECT_EQ(family_name(Family::kGreedyTight), "greedy-tight");
  EXPECT_NE(family_name(Family::kEuclidean), family_name(Family::kPowerLaw));
}

TEST(TieredRequirement, SeededDeterministicAndClamped) {
  UniformParams up;
  up.num_facilities = 10;
  up.num_clients = 80;
  up.client_degree = 3;
  TieredRequirementParams tp;
  tp.base_r = 1;
  tp.critical_r = 4;  // above the degree: must clamp to 3
  tp.critical_fraction = 0.5;

  const fl::FtfpInstance a =
      tiered_requirement(uniform_random(up, 2), tp, 7);
  const fl::FtfpInstance b =
      tiered_requirement(uniform_random(up, 2), tp, 7);
  EXPECT_EQ(a.requirement, b.requirement);
  fl::validate(a);

  int critical = 0;
  for (const std::int32_t r : a.requirement) {
    EXPECT_TRUE(r == 1 || r == 3) << r;  // base or clamped critical
    if (r == 3) ++critical;
  }
  // Roughly half the 80 clients; the exact count is pinned by the seed.
  EXPECT_GT(critical, 20);
  EXPECT_LT(critical, 60);

  const fl::FtfpInstance c =
      tiered_requirement(uniform_random(up, 2), tp, 8);
  EXPECT_NE(c.requirement, a.requirement);  // seed matters

  tp.critical_fraction = 0.0;
  const fl::FtfpInstance none =
      tiered_requirement(uniform_random(up, 2), tp, 7);
  for (const std::int32_t r : none.requirement) EXPECT_EQ(r, 1);
}

TEST(TieredRequirement, RejectsBadParams) {
  UniformParams up;
  up.num_facilities = 4;
  up.num_clients = 8;
  TieredRequirementParams tp;
  tp.base_r = 0;
  EXPECT_THROW((void)tiered_requirement(uniform_random(up, 1), tp, 1),
               CheckError);
  tp.base_r = 2;
  tp.critical_r = 1;  // below base
  EXPECT_THROW((void)tiered_requirement(uniform_random(up, 1), tp, 1),
               CheckError);
  tp.critical_r = 2;
  tp.critical_fraction = 1.5;
  EXPECT_THROW((void)tiered_requirement(uniform_random(up, 1), tp, 1),
               CheckError);
}

TEST(CapacityProfile, SeededDeterministicWithinRange) {
  UniformParams up;
  up.num_facilities = 30;
  up.num_clients = 60;
  CapacityProfileParams cp;
  cp.capacity_lo = 3;
  cp.capacity_hi = 9;
  const fl::SoftCapacitatedInstance a =
      capacity_profile(uniform_random(up, 4), cp, 21);
  const fl::SoftCapacitatedInstance b =
      capacity_profile(uniform_random(up, 4), cp, 21);
  EXPECT_EQ(a.capacity, b.capacity);
  fl::validate(a);
  bool saw_distinct = false;
  for (const std::int32_t u : a.capacity) {
    EXPECT_GE(u, 3);
    EXPECT_LE(u, 9);
    if (u != a.capacity.front()) saw_distinct = true;
  }
  EXPECT_TRUE(saw_distinct);  // actually a profile, not a constant

  CapacityProfileParams bad;
  bad.capacity_lo = 0;
  EXPECT_THROW((void)capacity_profile(uniform_random(up, 4), bad, 21),
               CheckError);
}

}  // namespace
}  // namespace dflp::workload
