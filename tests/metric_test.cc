// Tests for the metric solver suite: the planted-cluster metric workload
// and its validator (fl/metric.h), Li's scaled-JMS sequential baseline
// (core/metric_baseline.h) and the BHP congested-clique facility-location
// solver (core/clique_fl.h), including its equivalence sweep across thread
// counts, delivery orders and fault hazards.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "common/check.h"
#include "core/clique_fl.h"
#include "core/metric_baseline.h"
#include "fl/instance.h"
#include "fl/metric.h"
#include "fl/serialize.h"
#include "seq/jms.h"

namespace dflp {
namespace {

fl::MetricInstance small_metric(std::uint64_t seed = 5) {
  fl::MetricParams params;
  params.facilities = 12;
  params.clients = 40;
  params.clusters = 3;
  return fl::make_metric_instance(params, seed);
}

TEST(Metric, GeneratorProducesCompleteBipartiteMetricInstances) {
  const fl::MetricInstance minst = small_metric();
  const fl::Instance& inst = minst.instance;
  EXPECT_EQ(inst.num_facilities(), 12);
  EXPECT_EQ(inst.num_clients(), 40);
  EXPECT_EQ(inst.num_edges(), 12u * 40u);
  ASSERT_EQ(minst.facility_pos.size(), 12u);
  ASSERT_EQ(minst.client_pos.size(), 40u);
  // Edge costs are exactly the Euclidean site distances.
  for (fl::ClientId j = 0; j < inst.num_clients(); ++j)
    for (const fl::ClientEdge& e : inst.client_edges(j))
      EXPECT_DOUBLE_EQ(
          e.cost,
          fl::metric_distance(
              minst.facility_pos[static_cast<std::size_t>(e.facility)],
              minst.client_pos[static_cast<std::size_t>(j)]));
  // Euclidean costs satisfy the validator with (almost) zero tolerance.
  EXPECT_NO_THROW(fl::check_metric(inst));
  EXPECT_NO_THROW(fl::check_metric(inst, /*rel_tol=*/1e-12));
}

TEST(Metric, GeneratorIsDeterministicPerSeed) {
  const fl::MetricInstance a = small_metric(9);
  const fl::MetricInstance b = small_metric(9);
  const fl::MetricInstance c = small_metric(10);
  EXPECT_EQ(fl::to_text(a.instance), fl::to_text(b.instance));
  EXPECT_NE(fl::to_text(a.instance), fl::to_text(c.instance));
}

TEST(Metric, ClosureIsTightestClientBridge) {
  // Two facilities, two clients: the closure entry is the cheapest
  // two-hop bridge min_j (c(0,j) + c(1,j)).
  fl::InstanceBuilder b;
  b.add_facility(1.0);
  b.add_facility(1.0);
  b.add_client();
  b.add_client();
  b.connect(0, 0, 3.0);
  b.connect(1, 0, 4.0);
  b.connect(0, 1, 1.0);
  b.connect(1, 1, 5.0);
  const fl::Instance inst = b.build();
  const std::vector<double> closure = fl::facility_metric_closure(inst);
  ASSERT_EQ(closure.size(), 4u);
  EXPECT_EQ(closure[0 * 2 + 0], 0.0);
  EXPECT_EQ(closure[1 * 2 + 1], 0.0);
  EXPECT_DOUBLE_EQ(closure[0 * 2 + 1], 6.0);  // min(3+4, 1+5)
  EXPECT_DOUBLE_EQ(closure[1 * 2 + 0], 6.0);
}

TEST(Metric, ValidatorRejectsTriangleViolationWithNamedError) {
  // c(0,1) = 1 and c(1,1) = 20, but the bridge through client 0 says the
  // two facilities are at distance <= 3 + 4 = 7: |1 - 20| > 7 violates the
  // quadrangle inequality, so this cost matrix embeds in no metric.
  fl::InstanceBuilder b;
  b.add_facility(1.0);
  b.add_facility(1.0);
  b.add_client();
  b.add_client();
  b.connect(0, 0, 3.0);
  b.connect(1, 0, 4.0);
  b.connect(0, 1, 1.0);
  b.connect(1, 1, 20.0);
  const fl::Instance inst = b.build();
  try {
    fl::check_metric(inst);
    FAIL() << "check_metric accepted a non-metric instance";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("triangle inequality violated"), std::string::npos)
        << what;
    EXPECT_NE(what.find("D(i,i')"), std::string::npos) << what;
  }
}

TEST(Metric, ValidatorToleranceScalesRelatively) {
  // A violation of 1 part in 1e3 passes at rel_tol 1e-2 but fails at 1e-9.
  fl::InstanceBuilder b;
  b.add_facility(1.0);
  b.add_facility(1.0);
  b.add_client();
  b.add_client();
  b.connect(0, 0, 1000.0);
  b.connect(1, 0, 1000.0);
  b.connect(0, 1, 1.0);
  b.connect(1, 1, 2002.0);  // gap 2001 vs bridge 2000
  const fl::Instance inst = b.build();
  EXPECT_THROW(fl::check_metric(inst, 1e-9), CheckError);
  EXPECT_NO_THROW(fl::check_metric(inst, 1e-2));
}

TEST(MetricBaseline, LiNeverLosesToPlainJms) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const fl::MetricInstance minst = small_metric(seed);
    const seq::JmsResult jms = seq::jms_solve(minst.instance);
    const core::LiResult li = core::li_jms_solve(minst.instance);
    EXPECT_LE(li.cost, jms.solution.cost(minst.instance) + 1e-9)
        << "seed " << seed;
    EXPECT_EQ(li.candidates,
              static_cast<int>(core::li_default_scales().size()));
    EXPECT_GE(li.scale, 1.0);
    std::string why;
    EXPECT_TRUE(li.solution.is_feasible(minst.instance, &why)) << why;
    EXPECT_DOUBLE_EQ(li.solution.cost(minst.instance), li.cost);
  }
}

TEST(MetricBaseline, ScaleBelowOneRejected) {
  const fl::MetricInstance minst = small_metric();
  EXPECT_THROW(core::li_jms_solve(minst.instance, {0.5}), CheckError);
}

TEST(CliqueFl, SolvesMetricInstanceFeasiblyWithinFactorOfBaseline) {
  const fl::MetricInstance minst = small_metric();
  core::CliqueFlParams params;
  const core::CliqueFlOutcome out = core::run_clique_fl(minst, params);
  std::string why;
  EXPECT_TRUE(out.solution.is_feasible(minst.instance, &why)) << why;
  EXPECT_GE(out.open_facilities, 1);
  EXPECT_GE(out.iterations, 1u);
  // Ruling-set solvers on a planted-cluster metric stay within a small
  // constant of the best sequential baseline (the proven factor is O(1);
  // the slack here is deliberately loose).
  const core::LiResult li = core::li_jms_solve(minst.instance);
  EXPECT_LE(out.solution.cost(minst.instance), 8.0 * li.cost);
}

TEST(CliqueFl, RoundCountIsDoublyLogarithmic) {
  // The sampling schedule reaches probability 1 by iteration
  // ceil(log2 log2 m) + 1, each iteration costs two rounds, plus the final
  // client round: rounds <= 2 * (log2 log2 m + 2) + 2 whatever the metric.
  for (const std::int32_t m : {8, 32, 128}) {
    fl::MetricParams params;
    params.facilities = m;
    params.clients = 2 * m;
    params.clusters = 4;
    const fl::MetricInstance minst = fl::make_metric_instance(params, 11);
    const core::CliqueFlOutcome out =
        core::run_clique_fl(minst, core::CliqueFlParams{});
    const double loglog =
        std::log2(std::max(2.0, std::log2(static_cast<double>(m))));
    EXPECT_LE(out.metrics.rounds, 2 * (loglog + 2) + 2) << "m = " << m;
    EXPECT_LE(out.iterations, loglog + 2) << "m = " << m;
  }
}

TEST(CliqueFl, ClosureOverloadMatchesSideChannelOnDegenerateGeometry) {
  // The closure-based overload must run and agree with the baseline's
  // feasibility on a plain complete-bipartite instance.
  const fl::MetricInstance minst = small_metric(3);
  const core::CliqueFlOutcome out =
      core::run_clique_fl(minst.instance, core::CliqueFlParams{});
  std::string why;
  EXPECT_TRUE(out.solution.is_feasible(minst.instance, &why)) << why;
}

TEST(CliqueFl, IncompleteInstanceRejected) {
  fl::InstanceBuilder b;
  b.add_facility(1.0);
  b.add_facility(1.0);
  b.add_client();
  b.connect(0, 0, 1.0);  // client 0 misses facility 1
  const fl::Instance inst = b.build();
  try {
    (void)core::run_clique_fl(inst, core::CliqueFlParams{});
    FAIL() << "incomplete bipartite instance accepted";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("complete bipartite"),
              std::string::npos)
        << e.what();
  }
}

std::string clique_fingerprint(const fl::MetricInstance& minst,
                               const core::CliqueFlOutcome& out) {
  std::ostringstream os;
  os << "open:";
  for (fl::FacilityId i = 0; i < minst.instance.num_facilities(); ++i)
    os << (out.solution.is_open(i) ? '1' : '0');
  os << " assign:";
  for (fl::ClientId j = 0; j < minst.instance.num_clients(); ++j)
    os << out.solution.assignment(j) << ',';
  os << " iters:" << out.iterations << " | " << out.metrics.rounds << '/'
     << out.metrics.messages << '/' << out.metrics.total_bits << '/'
     << out.metrics.dropped << '/' << out.metrics.duplicated;
  return os.str();
}

// Committed golden for the clique-fl sweep configuration (metric seed 5,
// 12 facilities / 40 clients / 3 clusters; engine seed 21): the full
// solution + metrics fingerprint. Every thread count and delivery order
// must reproduce it exactly; regenerate with
// --gtest_filter='*GoldenFingerprintPinned*' after an intentional protocol
// change and paste the printed fingerprint.
constexpr char kCliqueFlGolden[] =
    "open:010001100000 assign:6,1,5,6,1,5,6,1,5,6,1,5,6,1,5,6,1,5,6,1"
    ",5,6,1,5,6,1,5,6,1,5,6,1,5,6,1,5,6,1,5,6, iters:3 | 8/1020/11526"
    "/0/0";

TEST(CliqueFl, GoldenFingerprintPinned) {
  const fl::MetricInstance minst = small_metric();
  core::CliqueFlParams params;
  params.seed = 21;
  const core::CliqueFlOutcome out = core::run_clique_fl(minst, params);
  EXPECT_EQ(clique_fingerprint(minst, out), kCliqueFlGolden);
}

TEST(CliqueFl, BitIdenticalAcrossThreadsDeliveryAndDuplication) {
  const fl::MetricInstance minst = small_metric();
  const auto run = [&](int threads, net::DeliveryOrder delivery,
                       double duplicate_probability) {
    core::CliqueFlParams params;
    params.seed = 21;
    params.num_threads = threads;
    params.delivery = delivery;
    params.faults.duplicate_probability = duplicate_probability;
    params.faults.fault_seed = 23;
    return clique_fingerprint(minst, core::run_clique_fl(minst, params));
  };
  const std::string baseline =
      run(1, net::DeliveryOrder::kBySource, /*dup=*/0.0);
  for (const int threads : {1, 2, 4, 8}) {
    for (const net::DeliveryOrder delivery :
         {net::DeliveryOrder::kBySource, net::DeliveryOrder::kRandomShuffle,
          net::DeliveryOrder::kReverseSource}) {
      // Fault-free: the full fingerprint (solution + metrics) matches the
      // serial BySource run — the protocol's folds are order-insensitive.
      EXPECT_EQ(run(threads, delivery, 0.0), baseline)
          << "threads = " << threads;
      // Duplication: metrics legitimately differ from the clean run, but
      // the *solution* prefix must match the clean one and the whole
      // fingerprint must be thread-invariant.
      const std::string dup = run(threads, delivery, 0.2);
      EXPECT_EQ(dup.substr(0, dup.find(" | ")),
                baseline.substr(0, baseline.find(" | ")))
          << "threads = " << threads;
      EXPECT_EQ(dup, run(1, delivery, 0.2)) << "threads = " << threads;
    }
  }
}

TEST(CliqueFl, MessageLossFailsLoudlyAndIdentically) {
  const fl::MetricInstance minst = small_metric();
  const auto run = [&](int threads) -> std::string {
    core::CliqueFlParams params;
    params.seed = 21;
    params.num_threads = threads;
    params.faults.drop_probability = 0.3;
    params.faults.fault_seed = 23;
    params.max_rounds = 64;
    try {
      (void)core::run_clique_fl(minst, params);
      return "completed";
    } catch (const CheckError& e) {
      return std::string("CheckError: ") + e.what();
    }
  };
  const std::string baseline = run(1);
  // Dropped OPEN/RETIRE announcements can never be re-learned, so the run
  // must stall and throw the named diagnostic...
  EXPECT_NE(baseline.find("clique-fl stalled"), std::string::npos)
      << baseline;
  // ...identically at every thread count.
  for (const int threads : {2, 4, 8})
    EXPECT_EQ(run(threads), baseline) << "threads = " << threads;
}

}  // namespace
}  // namespace dflp
