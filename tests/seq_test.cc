// Tests for the centralized baselines: feasibility everywhere, guarantee
// bounds on the families they were designed for, exactness on hand-built
// instances, and brute force as the arbiter.
#include <gtest/gtest.h>

#include <cmath>

#include "common/mathx.h"
#include "lp/dual_ascent.h"
#include "seq/brute_force.h"
#include "seq/greedy.h"
#include "seq/jain_vazirani.h"
#include "seq/jms.h"
#include "seq/mettu_plaxton.h"
#include "seq/trivial.h"
#include "workload/generators.h"

namespace dflp::seq {
namespace {

fl::Instance small_uniform(std::uint64_t seed) {
  workload::UniformParams p;
  p.num_facilities = 7;
  p.num_clients = 18;
  p.client_degree = 3;
  return workload::uniform_random(p, seed);
}

// ----------------------------------------------------------- brute force --

TEST(BruteForce, MatchesHandComputedOptimum) {
  // F0 cost 10 serves both clients at 1; F1 cost 1 serves c0 at 1; F2 cost
  // 1 serves c1 at 1. OPT = open F1+F2 = 1+1+1+1 = 4.
  fl::InstanceBuilder b;
  const auto f0 = b.add_facility(10.0);
  const auto f1 = b.add_facility(1.0);
  const auto f2 = b.add_facility(1.0);
  const auto c0 = b.add_client();
  const auto c1 = b.add_client();
  b.connect(f0, c0, 1.0);
  b.connect(f0, c1, 1.0);
  b.connect(f1, c0, 1.0);
  b.connect(f2, c1, 1.0);
  const fl::Instance inst = b.build();
  const auto r = brute_force_solve(inst);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->optimum, 4.0, 1e-12);
  EXPECT_TRUE(r->solution.is_open(f1));
  EXPECT_TRUE(r->solution.is_open(f2));
  EXPECT_FALSE(r->solution.is_open(f0));
}

TEST(BruteForce, RefusesLargeFacilityCounts) {
  const fl::Instance inst = workload::greedy_tight(25);
  EXPECT_FALSE(brute_force_solve(inst, 20).has_value());
}

TEST(BruteForce, SolutionCostMatchesReportedOptimum) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const fl::Instance inst = small_uniform(seed);
    const auto r = brute_force_solve(inst);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->solution.is_feasible(inst));
    EXPECT_NEAR(r->solution.cost(inst), r->optimum, 1e-9);
  }
}

// ---------------------------------------------------------------- greedy --

TEST(Greedy, FeasibleOnEveryFamily) {
  for (const auto family :
       {workload::Family::kUniform, workload::Family::kEuclidean,
        workload::Family::kPowerLaw, workload::Family::kGreedyTight,
        workload::Family::kStar}) {
    const fl::Instance inst = workload::make_family_instance(family, 50, 3);
    const GreedyResult g = greedy_solve(inst);
    std::string why;
    EXPECT_TRUE(g.solution.is_feasible(inst, &why))
        << workload::family_name(family) << ": " << why;
    EXPECT_GT(g.iterations, 0);
  }
}

TEST(Greedy, WithinHnOfOptimum) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const fl::Instance inst = small_uniform(seed);
    const auto brute = brute_force_solve(inst);
    ASSERT_TRUE(brute.has_value());
    const GreedyResult g = greedy_solve(inst);
    const double hn = harmonic(static_cast<std::uint64_t>(inst.num_clients()));
    EXPECT_LE(g.solution.cost(inst), hn * brute->optimum * (1.0 + 1e-9))
        << "seed " << seed;
  }
}

TEST(Greedy, OptimalWhenSingleFacility) {
  fl::InstanceBuilder b;
  const auto f = b.add_facility(4.0);
  for (int j = 0; j < 5; ++j) b.connect(f, b.add_client(), 1.0);
  const fl::Instance inst = b.build();
  const GreedyResult g = greedy_solve(inst);
  EXPECT_NEAR(g.solution.cost(inst), 9.0, 1e-12);
  EXPECT_EQ(g.iterations, 1);
}

TEST(Greedy, PrefersSharedFacilityWhenCheaper) {
  // Shared facility cost 2, serves both at 0; singletons cost 1.5 each.
  // Greedy's best star: (2+0+0)/2 = 1 beats (1.5)/1.
  fl::InstanceBuilder b;
  const auto shared = b.add_facility(2.0);
  const auto s0 = b.add_facility(1.5);
  const auto s1 = b.add_facility(1.5);
  const auto c0 = b.add_client();
  const auto c1 = b.add_client();
  b.connect(shared, c0, 0.0);
  b.connect(shared, c1, 0.0);
  b.connect(s0, c0, 0.0);
  b.connect(s1, c1, 0.0);
  const fl::Instance inst = b.build();
  const GreedyResult g = greedy_solve(inst);
  EXPECT_TRUE(g.solution.is_open(shared));
  EXPECT_NEAR(g.solution.cost(inst), 2.0, 1e-12);
}

TEST(Greedy, BestStarRatioMatchesDefinition) {
  const fl::Instance inst = small_uniform(4);
  std::vector<std::uint8_t> covered(
      static_cast<std::size_t>(inst.num_clients()), 0);
  int star = 0;
  const double r = best_star_ratio(inst, 0, covered, false, &star);
  ASSERT_GT(star, 0);
  // Recompute by hand for facility 0.
  double num = inst.opening_cost(0);
  double best = std::numeric_limits<double>::infinity();
  int size = 0;
  for (const fl::FacilityEdge& e : inst.facility_edges(0)) {
    num += e.cost;
    ++size;
    best = std::min(best, num / size);
  }
  EXPECT_NEAR(r, best, 1e-12);
}

// ------------------------------------------------------------------- JV --

TEST(JainVazirani, FeasibleAndDualBounded) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const fl::Instance inst = small_uniform(seed);
    const JvResult jv = jain_vazirani_solve(inst);
    EXPECT_TRUE(jv.solution.is_feasible(inst)) << "seed " << seed;
    const auto brute = brute_force_solve(inst);
    ASSERT_TRUE(brute.has_value());
    EXPECT_LE(jv.dual_lower_bound, brute->optimum + 1e-6);
    EXPECT_GE(jv.solution.cost(inst), brute->optimum - 1e-9);
  }
}

TEST(JainVazirani, Within3xOnMetricInstances) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    workload::EuclideanParams p;
    p.num_facilities = 6;
    p.num_clients = 14;
    const fl::Instance inst = workload::euclidean(p, seed).instance;
    const auto brute = brute_force_solve(inst);
    ASSERT_TRUE(brute.has_value());
    const JvResult jv = jain_vazirani_solve(inst);
    EXPECT_LE(jv.solution.cost(inst), 3.0 * brute->optimum * (1 + 1e-9))
        << "seed " << seed;
  }
}

TEST(JainVazirani, TemporarilyOpenCountIsPositive) {
  const fl::Instance inst = small_uniform(2);
  const JvResult jv = jain_vazirani_solve(inst);
  EXPECT_GT(jv.temporarily_open, 0);
  EXPECT_LE(jv.temporarily_open, inst.num_facilities());
}

// ------------------------------------------------------------------- MP --

TEST(MettuPlaxton, RadiusSolvesDefiningEquation) {
  const fl::Instance inst = small_uniform(6);
  for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i) {
    const double r = mp_radius(inst, i);
    double paid = 0.0;
    for (const fl::FacilityEdge& e : inst.facility_edges(i))
      paid += std::max(0.0, r - e.cost);
    EXPECT_NEAR(paid, inst.opening_cost(i), 1e-7) << "facility " << i;
  }
}

TEST(MettuPlaxton, ZeroOpeningCostGivesCheapestEdgeRadius) {
  fl::InstanceBuilder b;
  const auto f = b.add_facility(0.0);
  const auto c = b.add_client();
  b.connect(f, c, 4.0);
  const fl::Instance inst = b.build();
  EXPECT_NEAR(mp_radius(inst, 0), 4.0, 1e-12);
}

TEST(MettuPlaxton, FeasibleAndWithin3xOnMetric) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    workload::EuclideanParams p;
    p.num_facilities = 6;
    p.num_clients = 14;
    const fl::Instance inst = workload::euclidean(p, seed).instance;
    const MpResult mp = mettu_plaxton_solve(inst);
    EXPECT_TRUE(mp.solution.is_feasible(inst)) << "seed " << seed;
    const auto brute = brute_force_solve(inst);
    ASSERT_TRUE(brute.has_value());
    EXPECT_LE(mp.solution.cost(inst), 3.0 * brute->optimum * (1 + 1e-9))
        << "seed " << seed;
  }
}

TEST(MettuPlaxton, FeasibleOnSparseNonMetric) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const fl::Instance inst = small_uniform(seed);
    const MpResult mp = mettu_plaxton_solve(inst);
    EXPECT_TRUE(mp.solution.is_feasible(inst)) << "seed " << seed;
  }
}

// ------------------------------------------------------------------ JMS --

TEST(Jms, FeasibleAndNeverWorseThanNearTrivial) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const fl::Instance inst = small_uniform(seed);
    const JmsResult jms = jms_solve(inst);
    EXPECT_TRUE(jms.solution.is_feasible(inst)) << "seed " << seed;
    EXPECT_LE(jms.solution.cost(inst),
              open_all_solve(inst).cost(inst) + 1e-9);
  }
}

TEST(Jms, Within2xOnMetricInstances) {
  // JMS guarantees 1.861 on metric instances; assert the round 2.0.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    workload::EuclideanParams p;
    p.num_facilities = 6;
    p.num_clients = 14;
    const fl::Instance inst = workload::euclidean(p, seed).instance;
    const auto brute = brute_force_solve(inst);
    ASSERT_TRUE(brute.has_value());
    const JmsResult jms = jms_solve(inst);
    EXPECT_LE(jms.solution.cost(inst), 2.0 * brute->optimum * (1 + 1e-9))
        << "seed " << seed;
  }
}

TEST(Jms, RebatesBeatPlainGreedyOnSwitchInstance) {
  // Instance engineered so plain greedy commits early and JMS can undercut
  // via switching: at minimum JMS must not be worse.
  const fl::Instance inst = workload::make_family_instance(
      workload::Family::kGreedyTight, 32, 1);
  const double greedy_cost = greedy_solve(inst).solution.cost(inst);
  const double jms_cost = jms_solve(inst).solution.cost(inst);
  EXPECT_LE(jms_cost, greedy_cost + 1e-9);
}

// -------------------------------------------------------------- trivial --

TEST(Trivial, OpenAllFeasibleAndPrunes) {
  const fl::Instance inst = small_uniform(3);
  const fl::IntegralSolution sol = open_all_solve(inst);
  EXPECT_TRUE(sol.is_feasible(inst));
  EXPECT_LE(sol.num_open(), inst.num_facilities());
}

TEST(Trivial, NearestFacilityFeasible) {
  const fl::Instance inst = small_uniform(3);
  const fl::IntegralSolution sol = nearest_facility_solve(inst);
  EXPECT_TRUE(sol.is_feasible(inst));
  // Connection part is optimal by construction; total cost above LB.
  EXPECT_GE(sol.cost(inst), lp::cheapest_connection_bound(inst) - 1e-9);
}

TEST(Trivial, AllBaselinesBoundedByOpenAllOnUniform) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const fl::Instance inst = small_uniform(seed);
    const double open_all = open_all_solve(inst).cost(inst);
    EXPECT_LE(greedy_solve(inst).solution.cost(inst), open_all + 1e-9);
    EXPECT_LE(nearest_facility_solve(inst).cost(inst), open_all + 1e-9);
  }
}

}  // namespace
}  // namespace dflp::seq
