// Tests for the add/drop/swap local search baseline.
#include <gtest/gtest.h>

#include "seq/brute_force.h"
#include "seq/local_search.h"
#include "seq/trivial.h"
#include "workload/generators.h"

namespace dflp::seq {
namespace {

TEST(LocalSearch, FeasibleOnEveryFamily) {
  for (const auto family :
       {workload::Family::kUniform, workload::Family::kEuclidean,
        workload::Family::kPowerLaw, workload::Family::kGreedyTight,
        workload::Family::kStar}) {
    const fl::Instance inst = workload::make_family_instance(family, 40, 2);
    const LocalSearchResult r = local_search_solve(inst);
    std::string why;
    EXPECT_TRUE(r.solution.is_feasible(inst, &why))
        << workload::family_name(family) << ": " << why;
  }
}

TEST(LocalSearch, NeverWorseThanItsStartingPoint) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    workload::UniformParams p;
    p.num_facilities = 8;
    p.num_clients = 30;
    p.client_degree = 4;
    const fl::Instance inst = workload::uniform_random(p, seed);
    const double start = nearest_facility_solve(inst).cost(inst);
    const LocalSearchResult r = local_search_solve(inst);
    EXPECT_LE(r.solution.cost(inst), start + 1e-9) << "seed " << seed;
  }
}

TEST(LocalSearch, Within3xOnMetricInstances) {
  // The add/drop/swap locality gap for UFL is 3 on metric instances.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    workload::EuclideanParams p;
    p.num_facilities = 7;
    p.num_clients = 16;
    const fl::Instance inst = workload::euclidean(p, seed).instance;
    const auto brute = brute_force_solve(inst);
    ASSERT_TRUE(brute.has_value());
    const LocalSearchResult r = local_search_solve(inst);
    EXPECT_LE(r.solution.cost(inst), 3.0 * brute->optimum * (1 + 1e-6))
        << "seed " << seed;
    EXPECT_GE(r.solution.cost(inst), brute->optimum - 1e-9);
  }
}

TEST(LocalSearch, FindsOptimumOnEasyInstances) {
  // Small instances where the neighbourhood easily reaches the optimum:
  // local search typically lands exactly on it.
  int exact = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    workload::UniformParams p;
    p.num_facilities = 5;
    p.num_clients = 12;
    p.client_degree = 3;
    const fl::Instance inst = workload::uniform_random(p, seed);
    const auto brute = brute_force_solve(inst);
    ASSERT_TRUE(brute.has_value());
    LocalSearchOptions opt;
    opt.eps = 0.0;  // accept any improvement
    const LocalSearchResult r = local_search_solve(inst, opt);
    if (r.solution.cost(inst) <= brute->optimum * (1 + 1e-9)) ++exact;
  }
  EXPECT_GE(exact, 7);  // at least most of them
}

TEST(LocalSearch, SwapEscapesAddDropLocalOptimum) {
  // Two sites far apart, one decoy in between. Starting from the decoy,
  // dropping it orphans clients and adding either site alone is not
  // profitable — only a swap escapes.
  fl::InstanceBuilder b;
  const auto decoy = b.add_facility(1.0);
  const auto good = b.add_facility(1.5);
  for (int t = 0; t < 4; ++t) {
    const auto c = b.add_client();
    b.connect(decoy, c, 5.0);
    b.connect(good, c, 0.5);
  }
  const fl::Instance inst = b.build();
  // nearest_facility start picks `good` already (cheapest edges), so force
  // the interesting start by checking the final result is optimal anyway.
  const LocalSearchResult r = local_search_solve(inst);
  EXPECT_TRUE(r.solution.is_open(good));
  EXPECT_FALSE(r.solution.is_open(decoy));
  EXPECT_NEAR(r.solution.cost(inst), 1.5 + 4 * 0.5, 1e-9);
}

TEST(LocalSearch, MoveCapRespected) {
  workload::UniformParams p;
  p.num_facilities = 10;
  p.num_clients = 40;
  p.client_degree = 4;
  const fl::Instance inst = workload::uniform_random(p, 3);
  LocalSearchOptions opt;
  opt.max_moves = 1;
  const LocalSearchResult r = local_search_solve(inst, opt);
  EXPECT_LE(r.moves_applied, 1);
  EXPECT_TRUE(r.solution.is_feasible(inst));
}

}  // namespace
}  // namespace dflp::seq
