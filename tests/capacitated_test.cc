// Tests for the soft-capacitated extension and its UFL reduction.
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/mw_greedy.h"
#include "fl/capacitated.h"
#include "seq/greedy.h"
#include "workload/generators.h"

namespace dflp::fl {
namespace {

SoftCapacitatedInstance uniform_cap(std::int32_t cap, std::uint64_t seed) {
  workload::UniformParams p;
  p.num_facilities = 8;
  p.num_clients = 40;
  p.client_degree = 4;
  SoftCapacitatedInstance inst{workload::uniform_random(p, seed), {}};
  inst.capacity.assign(8, cap);
  return inst;
}

TEST(Capacitated, CopiesNeeded) {
  EXPECT_EQ(copies_needed(5, 0), 0);
  EXPECT_EQ(copies_needed(5, 1), 1);
  EXPECT_EQ(copies_needed(5, 5), 1);
  EXPECT_EQ(copies_needed(5, 6), 2);
  EXPECT_EQ(copies_needed(5, 11), 3);
  EXPECT_EQ(copies_needed(kUncapacitated, 1000000), 1);
}

TEST(Capacitated, ValidateRejectsBadCapacities) {
  SoftCapacitatedInstance inst = uniform_cap(5, 1);
  inst.capacity.pop_back();
  EXPECT_THROW(validate(inst), CheckError);
  inst = uniform_cap(5, 1);
  inst.capacity[0] = 0;
  EXPECT_THROW(validate(inst), CheckError);
}

TEST(Capacitated, CostMatchesHandComputation) {
  // One facility, cost 10, capacity 2, three clients at cost 1 each:
  // 2 copies + 3 connections = 23.
  InstanceBuilder b;
  const auto f = b.add_facility(10.0);
  for (int t = 0; t < 3; ++t) b.connect(f, b.add_client(), 1.0);
  SoftCapacitatedInstance inst{b.build(), {2}};
  IntegralSolution sol(inst.base);
  sol.open(f);
  sol.assign_greedily(inst.base);
  EXPECT_DOUBLE_EQ(soft_capacitated_cost(inst, sol), 23.0);
}

TEST(Capacitated, UncapacitatedReductionIsIdentity) {
  SoftCapacitatedInstance inst = uniform_cap(kUncapacitated, 2);
  const Instance reduced = reduce_to_ufl(inst);
  for (ClientId j = 0; j < inst.base.num_clients(); ++j) {
    const auto a = inst.base.client_edges(j);
    const auto b = reduced.client_edges(j);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t t = 0; t < a.size(); ++t)
      EXPECT_DOUBLE_EQ(a[t].cost, b[t].cost);
  }
  // And capacitated cost == plain cost for any solution.
  IntegralSolution sol = seq::greedy_solve(inst.base).solution;
  EXPECT_NEAR(soft_capacitated_cost(inst, sol), sol.cost(inst.base), 1e-9);
}

TEST(Capacitated, ReductionAddsSurcharge) {
  SoftCapacitatedInstance inst = uniform_cap(4, 3);
  const Instance reduced = reduce_to_ufl(inst);
  for (FacilityId i = 0; i < inst.base.num_facilities(); ++i) {
    const double surcharge = inst.base.opening_cost(i) / 4.0;
    for (const FacilityEdge& e : inst.base.facility_edges(i)) {
      EXPECT_NEAR(reduced.connection_cost(i, e.client),
                  e.cost + surcharge, 1e-9);
    }
  }
}

TEST(Capacitated, SolveWithCentralizedGreedy) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const SoftCapacitatedInstance inst = uniform_cap(3, seed);
    const SoftCapacitatedResult r = solve_soft_capacitated(
        inst, [](const Instance& ufl) {
          return seq::greedy_solve(ufl).solution;
        });
    EXPECT_TRUE(r.solution.is_feasible(inst.base)) << "seed " << seed;
    EXPECT_GT(r.total_copies, 0);
    // 40 clients at capacity 3: at least ceil(40/3) = 14 copies system-wide
    // if one facility served everyone; in general >= ceil(n / (m*cap)).
    EXPECT_GE(r.total_copies, 40 / (8 * 3));
    EXPECT_GT(r.cost, 0.0);
  }
}

TEST(Capacitated, SolveWithDistributedMwGreedy) {
  // The reduction composes with the *distributed* solver unchanged: the
  // paper's algorithm solves the capacitated extension too.
  const SoftCapacitatedInstance inst = uniform_cap(4, 7);
  const SoftCapacitatedResult r = solve_soft_capacitated(
      inst, [](const Instance& ufl) {
        core::MwParams params;
        params.k = 16;
        params.seed = 7;
        return core::run_mw_greedy(ufl, params).solution;
      });
  EXPECT_TRUE(r.solution.is_feasible(inst.base));
  EXPECT_GT(r.cost, 0.0);
}

TEST(Capacitated, TighterCapacityNeverCheapens) {
  // Monotonicity: with the same solver, halving capacities cannot reduce
  // the capacitated optimum's achievable cost (here: compare the solved
  // costs, which the surcharge makes monotone for greedy).
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto solve_at = [&](std::int32_t cap) {
      const SoftCapacitatedInstance inst = uniform_cap(cap, seed);
      return solve_soft_capacitated(inst, [](const Instance& ufl) {
               return seq::greedy_solve(ufl).solution;
             })
          .cost;
    };
    EXPECT_LE(solve_at(8), solve_at(2) + 1e-9) << "seed " << seed;
  }
}

TEST(Capacitated, CapacityProfileSmokeThroughDistributedSolver) {
  // The capacity_profile workload end-to-end through the reduction with
  // the distributed engine as the UFL solver — the path dflp_cli's
  // --capacity flag exercises.
  workload::UniformParams up;
  up.num_facilities = 8;
  up.num_clients = 40;
  up.client_degree = 4;
  workload::CapacityProfileParams cp;
  cp.capacity_lo = 3;
  cp.capacity_hi = 12;
  const SoftCapacitatedInstance inst =
      workload::capacity_profile(workload::uniform_random(up, 6), cp, 13);

  core::MwParams params;
  params.k = 4;
  params.seed = 5;
  const SoftCapacitatedResult result =
      solve_soft_capacitated(inst, [&](const Instance& ufl) {
        return core::run_mw_greedy(ufl, params).solution;
      });
  EXPECT_TRUE(result.solution.is_feasible(inst.base));
  EXPECT_GT(result.cost, 0.0);
  // Serving 40 clients through capacities <= 12 needs >= ceil(40/12) = 4
  // copies; the reduction must have paid them.
  EXPECT_GE(result.total_copies, 4);
  EXPECT_DOUBLE_EQ(result.cost, soft_capacitated_cost(inst, result.solution));

  // Determinism: the whole reduction pipeline is a pure function.
  const SoftCapacitatedResult again =
      solve_soft_capacitated(inst, [&](const Instance& ufl) {
        return core::run_mw_greedy(ufl, params).solution;
      });
  EXPECT_DOUBLE_EQ(again.cost, result.cost);
}

TEST(Capacitated, CostOfUnusedOpenFacilityCountsOneCopy) {
  InstanceBuilder b;
  const auto f0 = b.add_facility(5.0);
  const auto f1 = b.add_facility(7.0);
  const auto c = b.add_client();
  b.connect(f0, c, 1.0);
  b.connect(f1, c, 2.0);
  SoftCapacitatedInstance inst{b.build(), {1, 1}};
  IntegralSolution sol(inst.base);
  sol.open(f0);
  sol.open(f1);  // opened but unused
  sol.assign(c, f0);
  EXPECT_DOUBLE_EQ(soft_capacitated_cost(inst, sol), 5.0 + 7.0 + 1.0);
}

}  // namespace
}  // namespace dflp::fl
