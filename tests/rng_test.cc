#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace dflp {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r());
  EXPECT_GT(seen.size(), 95u);  // no obvious degeneracy
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(99);
  Rng child_a = parent.split(0);
  Rng child_b = parent.split(1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (child_a() == child_b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng p1(7);
  Rng p2(7);
  Rng c1 = p1.split(42);
  Rng c2 = p2.split(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Rng, UniformU64RespectsBound) {
  Rng r(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.uniform_u64(bound), bound);
  }
}

TEST(Rng, UniformU64IsRoughlyUniform) {
  Rng r(8);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i)
    ++counts[r.uniform_u64(kBuckets)];
  // Each bucket expects 10000; allow 5% relative slack (>> 3 sigma).
  for (int c : counts) EXPECT_NEAR(c, kSamples / kBuckets, 500);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng r(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InRangeWithGoodMean) {
  Rng r(10);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = r.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r(11);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
  EXPECT_FALSE(r.bernoulli(-1.0));
  EXPECT_TRUE(r.bernoulli(2.0));
}

TEST(Rng, NormalMeanAndVariance) {
  Rng r(12);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng r(13);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, ParetoRespectsScaleAndIsHeavyTailed) {
  Rng r(14);
  double max_seen = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = r.pareto(2.0, 1.5);
    ASSERT_GE(x, 2.0);
    max_seen = std::max(max_seen, x);
  }
  EXPECT_GT(max_seen, 20.0);  // heavy tail produces large outliers
}

TEST(Rng, ZipfStaysInRangeAndSkews) {
  Rng r(15);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) {
    const auto v = r.zipf(100, 1.2);
    ASSERT_LT(v, 100u);
    ++counts[v];
  }
  EXPECT_GT(counts[0], counts[50] * 5);  // strong skew toward low ranks
}

TEST(Rng, ShufflePreservesElementsAndVaries) {
  Rng r(16);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v.begin(), v.end());
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
  // Over many shuffles the first element should vary.
  std::set<int> firsts;
  for (int i = 0; i < 100; ++i) {
    r.shuffle(v.begin(), v.end());
    firsts.insert(v.front());
  }
  EXPECT_GT(firsts.size(), 4u);
}

TEST(Rng, Mix64AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip ~32 of 64 output bits.
  const std::uint64_t base = mix64(0x1234567890ABCDEFULL);
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t other = mix64(0x1234567890ABCDEFULL ^ (1ULL << bit));
    total_flips += __builtin_popcountll(base ^ other);
  }
  const double avg = total_flips / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

}  // namespace
}  // namespace dflp
