// Steady-state allocation audit for the SoA arena.
//
// The engine's capacity-recycling contract (netsim/network.h §arena) is
// that once a workload's shapes have been seen, whole rounds run out of
// recycled storage: staging logs, the slot permutation, inbox scratch,
// RecRange stamps, and the per-edge allowance slab are all grown once and
// reused. This file replaces the global allocator with a counting shim and
// pins that contract literally — after a short warm-up, additional rounds
// perform ZERO heap allocations, in both delivery modes the commit can
// pick (slot-permutation scatter and neighbour scan).
//
// The overrides are process-wide for the whole dflp_tests binary; they
// only count and forward, so the other suites see identical behaviour.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "netsim/network.h"

namespace {

std::atomic<std::uint64_t> g_news{0};

void* counted_alloc(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  // C11 aligned_alloc wants size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded ? rounded : align))
    return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dflp {
namespace {

/// All-broadcast storm: every record fans out analytically, the commit's
/// scan gate fires (scan_cost == survivors on any graph), and delivery
/// goes through the neighbour-scan gather.
class Broadcaster final : public net::Process {
 public:
  void on_round(net::NodeContext& ctx,
                std::span<const net::Message> in) override {
    received_ += in.size();
    ctx.broadcast(1, {7, 9, 0});
  }

 private:
  std::uint64_t received_ = 0;
};

/// One unicast per node on a degree-8 graph: scan_cost is ~8x the survivor
/// count, the gate stays closed, and delivery goes through the layout +
/// scatter + slot-permutation path.
class Unicaster final : public net::Process {
 public:
  void on_round(net::NodeContext& ctx,
                std::span<const net::Message> in) override {
    received_ += in.size();
    ctx.send(ctx.neighbors().front(), 1, {7, 9, 0});
  }

 private:
  std::uint64_t received_ = 0;
};

/// Ring + 3 random chords per node, same construction as the storm
/// benchmark topology (degree ~8).
template <typename Proc>
std::unique_ptr<net::Network> make_chorded_ring(std::size_t n) {
  net::Network::Options o;
  o.bit_budget = 64;
  o.seed = 1;
  o.num_threads = 1;
  auto net = std::make_unique<net::Network>(n, o);
  Rng topo_rng(0xBE7C417ULL);
  std::set<std::pair<net::NodeId, net::NodeId>> edges;
  const auto norm = [](net::NodeId a, net::NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  };
  for (std::size_t v = 0; v < n; ++v)
    edges.insert(norm(static_cast<net::NodeId>(v),
                      static_cast<net::NodeId>((v + 1) % n)));
  for (std::size_t v = 0; v < n; ++v)
    for (int c = 0; c < 3; ++c) {
      const auto w = static_cast<net::NodeId>(topo_rng.uniform_u64(n));
      if (w == static_cast<net::NodeId>(v)) continue;
      edges.insert(norm(static_cast<net::NodeId>(v), w));
    }
  for (const auto& [u, v] : edges) net->add_edge(u, v);
  net->finalize();
  for (std::size_t v = 0; v < n; ++v)
    net->set_process(static_cast<net::NodeId>(v), std::make_unique<Proc>());
  return net;
}

/// Warm the network's shapes, then count allocations across a steady-state
/// stretch. The warm-up must cover both log parities a few times so every
/// double-buffered structure has reached its high-water mark.
std::uint64_t steady_state_allocations(net::Network& net) {
  net.run(6);
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  net.run(10);
  return g_news.load(std::memory_order_relaxed) - before;
}

TEST(ArenaAllocTest, ScanModeSteadyStateAllocatesNothing) {
  const auto net = make_chorded_ring<Broadcaster>(512);
  EXPECT_EQ(steady_state_allocations(*net), 0u);
}

TEST(ArenaAllocTest, ScatterModeSteadyStateAllocatesNothing) {
  const auto net = make_chorded_ring<Unicaster>(512);
  EXPECT_EQ(steady_state_allocations(*net), 0u);
}

TEST(ArenaAllocTest, CountingShimIsLive) {
  // Guards the audit itself: if the shim ever stops intercepting the
  // global allocator, the steady-state expectations above would pass
  // vacuously.
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  auto* p = new std::uint64_t(42);
  EXPECT_GT(g_news.load(std::memory_order_relaxed), before);
  delete p;
}

}  // namespace
}  // namespace dflp
