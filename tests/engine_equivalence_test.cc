// Serial/parallel equivalence sweep for the staged step/commit engine.
//
// The engine's contract (netsim/network.h) is that Options::num_threads is
// purely an execution knob: for every seed, delivery order, thread count
// and fault plan — i.i.d. drops, burst loss, crash schedules, duplication,
// with or without the ReliableChannel recovery layer — the simulation is
// bit-identical to the serial run: same solutions, same NetMetrics, and
// (when a protocol fails loudly under faults) the same CheckError text.
// These tests pin that contract for the three top-level distributed entry
// points.
#include <cstdint>
#include <sstream>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/aggregate.h"
#include "core/ftfp_greedy.h"
#include "core/mw_greedy.h"
#include "core/pipeline.h"
#include "fl/ftfp.h"
#include "netsim/trace.h"
#include "workload/generators.h"

namespace dflp {
namespace {

std::string metrics_fingerprint(const net::NetMetrics& m) {
  std::ostringstream os;
  os << m.rounds << '/' << m.messages << '/' << m.total_bits << '/'
     << m.max_message_bits << '/' << m.max_messages_in_round << '/'
     << m.dropped;
  return os.str();
}

std::string solution_fingerprint(const fl::Instance& inst,
                                 const fl::IntegralSolution& sol) {
  std::ostringstream os;
  os << "open:";
  for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i)
    os << (sol.is_open(i) ? '1' : '0');
  os << " assign:";
  for (fl::ClientId j = 0; j < inst.num_clients(); ++j)
    os << sol.assignment(j) << ',';
  return os.str();
}

/// Runs `body` and folds its result — or the CheckError it throws — into a
/// single comparable trace string. Under fault injection the protocols are
/// allowed to fail loudly, but they must fail *identically* at every
/// thread count.
template <typename Body>
std::string outcome_trace(Body&& body) {
  try {
    return body();
  } catch (const CheckError& e) {
    return std::string("CheckError: ") + e.what();
  }
}

/// Fault/transport configuration of one sweep case.
enum class FaultMode {
  kFaultFree,   ///< no faults (legacy suffix "_Reliable")
  kDrops,       ///< i.i.d. drops, no recovery: fails loudly, identically
  kBurstCrash,  ///< burst loss + crash schedule, no recovery: deterministic
  kRecovered,   ///< drops + duplication under the ReliableChannel
};

struct SweepCase {
  net::DeliveryOrder delivery;
  FaultMode mode;
};

std::string case_name(const testing::TestParamInfo<SweepCase>& info) {
  std::string name;
  switch (info.param.delivery) {
    case net::DeliveryOrder::kBySource: name = "BySource"; break;
    case net::DeliveryOrder::kRandomShuffle: name = "RandomShuffle"; break;
    case net::DeliveryOrder::kReverseSource: name = "ReverseSource"; break;
  }
  switch (info.param.mode) {
    case FaultMode::kFaultFree: name += "_Reliable"; break;
    case FaultMode::kDrops: name += "_Drops"; break;
    case FaultMode::kBurstCrash: name += "_BurstCrash"; break;
    case FaultMode::kRecovered: name += "_Recovered"; break;
  }
  return name;
}

/// Maps a sweep case onto MwParams. The kDrops stream must keep producing
/// the committed drop diagnostic, so its knob stays exactly the legacy
/// drop_probability = 0.15.
core::MwParams sweep_params(const SweepCase& c, int k, std::uint64_t seed) {
  core::MwParams params;
  params.k = k;
  params.seed = seed;
  params.delivery = c.delivery;
  switch (c.mode) {
    case FaultMode::kFaultFree:
      break;
    case FaultMode::kDrops:
      params.faults.drop_probability = 0.15;
      break;
    case FaultMode::kBurstCrash:
      params.faults.burst.p_good_to_bad = 0.05;
      params.faults.burst.p_bad_to_good = 0.5;
      params.faults.crashes = {{0, 6}, {3, 9}};
      params.faults.random_crash_fraction = 0.05;
      params.faults.random_crash_round = 4;
      params.faults.random_crash_round_span = 8;
      params.faults.fault_seed = 23;
      break;
    case FaultMode::kRecovered:
      params.reliable = true;
      params.faults.drop_probability = 0.15;
      params.faults.duplicate_probability = 0.05;
      params.faults.fault_seed = 23;
      break;
  }
  return params;
}

class EngineEquivalenceTest : public testing::TestWithParam<SweepCase> {};

constexpr int kThreadCounts[] = {1, 2, 4, 8};

// Committed golden for the MwGreedy sweep configuration (uniform family,
// 60 facilities, instance seed 7; k=4, engine seed 11). The pre-arena
// per-inbox transport and the flat-arena transport both produce exactly
// this fingerprint for every delivery order, and the same drop-failure
// diagnostic — pinning it catches rewrites that shift all thread counts
// in lockstep, which the equivalence sweep alone cannot see.
constexpr char kMwGreedyGoldenMetrics[] = "25/773/6184/8/456/0";
constexpr char kMwGreedyGoldenDropDiagnostic[] =
    "mop-up grant missing for client node 18";

TEST_P(EngineEquivalenceTest, MwGreedyMatchesCommittedGolden) {
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kUniform, 60, 7);
  const auto run_trace = [&] {
    return outcome_trace([&] {
      core::MwParams params = sweep_params(GetParam(), /*k=*/4, /*seed=*/11);
      params.num_threads = 1;
      const core::MwGreedyOutcome out = core::run_mw_greedy(inst, params);
      return solution_fingerprint(inst, out.solution) + " | " +
             metrics_fingerprint(out.metrics);
    });
  };
  const std::string trace = run_trace();
  switch (GetParam().mode) {
    case FaultMode::kFaultFree:
      EXPECT_NE(trace.find(kMwGreedyGoldenMetrics), std::string::npos)
          << trace;
      break;
    case FaultMode::kDrops:
      EXPECT_NE(trace.find("CheckError"), std::string::npos) << trace;
      EXPECT_NE(trace.find(kMwGreedyGoldenDropDiagnostic), std::string::npos)
          << trace;
      break;
    case FaultMode::kBurstCrash:
      // No committed golden: the protocol has no failure detector, so the
      // only contract is bit-identical behaviour — pin trace stability.
      EXPECT_EQ(trace, run_trace());
      break;
    case FaultMode::kRecovered: {
      // The recovery layer must reproduce the fault-free solution exactly.
      core::MwParams clean;
      clean.k = 4;
      clean.seed = 11;
      clean.delivery = GetParam().delivery;
      const core::MwGreedyOutcome baseline =
          core::run_mw_greedy(inst, clean);
      EXPECT_NE(trace.find(solution_fingerprint(inst, baseline.solution)),
                std::string::npos)
          << trace;
      EXPECT_EQ(trace.find("CheckError"), std::string::npos) << trace;
      break;
    }
  }
}

// Fingerprint committed in golden_metrics_test.cc (uniform family, 80
// facilities, instance seed 13; k=4, engine seed 17). The SoA arena — and
// its per-round choice between slot-permutation and neighbour-scan
// delivery — must reproduce it at every thread count and delivery order,
// and the unrecovered drop stream must keep failing with the committed
// diagnostic everywhere. This is the cross-check the per-config sweeps
// cannot do alone: a rewrite that shifts all thread counts in lockstep
// still trips this golden.
constexpr char kSoAGoldenMetrics[] = "29/1005/8040/8/592/0";
constexpr char kSoAGoldenDropDiagnostic[] =
    "mop-up grant missing for client node 74";

TEST_P(EngineEquivalenceTest, SoAArenaReproducesCommittedGoldenEverywhere) {
  if (GetParam().mode != FaultMode::kFaultFree &&
      GetParam().mode != FaultMode::kDrops)
    GTEST_SKIP() << "golden is pinned for the fault-free and drop streams";
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kUniform, 80, 13);
  for (int threads : kThreadCounts) {
    const std::string trace = outcome_trace([&] {
      core::MwParams params = sweep_params(GetParam(), /*k=*/4, /*seed=*/17);
      params.num_threads = threads;
      const core::MwGreedyOutcome out = core::run_mw_greedy(inst, params);
      return metrics_fingerprint(out.metrics);
    });
    if (GetParam().mode == FaultMode::kFaultFree) {
      EXPECT_EQ(trace, kSoAGoldenMetrics) << "threads = " << threads;
    } else {
      EXPECT_NE(trace.find("CheckError"), std::string::npos)
          << "threads = " << threads << ": " << trace;
      EXPECT_NE(trace.find(kSoAGoldenDropDiagnostic), std::string::npos)
          << "threads = " << threads << ": " << trace;
    }
  }
}

TEST_P(EngineEquivalenceTest, MwGreedyBitIdenticalAcrossThreadCounts) {
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kUniform, 60, 7);
  std::string baseline;
  for (int threads : kThreadCounts) {
    const std::string trace = outcome_trace([&] {
      core::MwParams params = sweep_params(GetParam(), /*k=*/4, /*seed=*/11);
      params.num_threads = threads;
      const core::MwGreedyOutcome out = core::run_mw_greedy(inst, params);
      return solution_fingerprint(inst, out.solution) + " | " +
             metrics_fingerprint(out.metrics);
    });
    if (threads == 1) {
      baseline = trace;
      continue;
    }
    EXPECT_EQ(trace, baseline) << "threads = " << threads;
  }
}

TEST_P(EngineEquivalenceTest, PipelineBitIdenticalAcrossThreadCounts) {
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kPowerLaw, 50, 3);
  std::string baseline;
  for (int threads : kThreadCounts) {
    const std::string trace = outcome_trace([&] {
      core::MwParams params = sweep_params(GetParam(), /*k=*/4, /*seed=*/5);
      params.num_threads = threads;
      const core::PipelineOutcome out = core::run_pipeline(inst, params);
      std::ostringstream os;
      os << solution_fingerprint(inst, out.solution) << " | frac "
         << out.fractional_value << " | "
         << metrics_fingerprint(out.frac_metrics) << " | "
         << metrics_fingerprint(out.round_metrics);
      return os.str();
    });
    if (threads == 1) {
      baseline = trace;
      continue;
    }
    EXPECT_EQ(trace, baseline) << "threads = " << threads;
  }
}

TEST_P(EngineEquivalenceTest, DiscoverBoundsBitIdenticalAcrossThreadCounts) {
  // discover_bounds runs on a fault-free network (no fault params); the
  // sweep still exercises it under every delivery order and thread count.
  if (GetParam().mode != FaultMode::kFaultFree) GTEST_SKIP();
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kGreedyTight, 40, 2);
  std::string baseline;
  for (int threads : kThreadCounts) {
    const std::string trace = outcome_trace([&] {
      const core::DiscoveryOutcome out = core::discover_bounds(
          inst, /*seed=*/9, /*diameter_bound=*/0, threads,
          GetParam().delivery);
      std::ostringstream os;
      for (const core::ComponentBounds& b : out.bounds) {
        os << b.root << ':' << b.facility_count << ':' << b.min_positive_cost
           << ':' << b.max_cost << ':' << b.max_degree << ';';
      }
      os << " | " << metrics_fingerprint(out.metrics);
      return os.str();
    });
    if (threads == 1) {
      baseline = trace;
      continue;
    }
    EXPECT_EQ(trace, baseline) << "threads = " << threads;
  }
}

TEST_P(EngineEquivalenceTest, FtfpBitIdenticalAcrossThreadCounts) {
  // The exclusion-phase solver is r_max unmodified engine runs, so it
  // inherits the engine contract wholesale: for every delivery order and
  // fault plan — including mid-run crash-stops, where the protocol fails
  // loudly — the whole multi-phase solve (or its CheckError text) must be
  // bit-identical across thread counts.
  const fl::FtfpInstance inst = fl::with_uniform_requirement(
      workload::make_family_instance(workload::Family::kUniform, 60, 7), 2);
  std::string baseline;
  for (int threads : kThreadCounts) {
    const std::string trace = outcome_trace([&] {
      core::MwParams params = sweep_params(GetParam(), /*k=*/4, /*seed=*/11);
      params.num_threads = threads;
      const core::FtfpOutcome out = core::run_ftfp_greedy(inst, params);
      std::ostringstream os;
      os << out.solution.fingerprint(inst) << " | phases " << out.phases;
      for (const net::NetMetrics& m : out.phase_metrics)
        os << " | " << metrics_fingerprint(m);
      return os.str();
    });
    if (threads == 1) {
      baseline = trace;
      // The fault-free and recovered configurations must complete both
      // phases; the unrecovered fault streams must fail loudly (and then
      // identically everywhere).
      if (GetParam().mode == FaultMode::kFaultFree ||
          GetParam().mode == FaultMode::kRecovered) {
        EXPECT_NE(trace.find("phases 2"), std::string::npos) << trace;
      } else {
        EXPECT_NE(trace.find("CheckError"), std::string::npos) << trace;
      }
      continue;
    }
    EXPECT_EQ(trace, baseline) << "threads = " << threads;
  }
}

TEST_P(EngineEquivalenceTest, FtfpRecoveredMatchesFaultFreePlacement) {
  // Placement-level redundancy and transport-level recovery must commute:
  // the recovered lossy FTFP run returns the fault-free placement exactly.
  if (GetParam().mode != FaultMode::kRecovered) GTEST_SKIP();
  const fl::FtfpInstance inst = fl::with_uniform_requirement(
      workload::make_family_instance(workload::Family::kUniform, 60, 7), 2);
  core::MwParams clean;
  clean.k = 4;
  clean.seed = 11;
  clean.delivery = GetParam().delivery;
  const core::FtfpOutcome golden = core::run_ftfp_greedy(inst, clean);

  core::MwParams params = sweep_params(GetParam(), /*k=*/4, /*seed=*/11);
  const core::FtfpOutcome out = core::run_ftfp_greedy(inst, params);
  EXPECT_EQ(out.solution.fingerprint(inst),
            golden.solution.fingerprint(inst));
  EXPECT_GT(out.metrics.dropped, 0u);
}

/// Deterministic trace payload: every field except wall-clock timings, the
/// per-thread shard split (which legitimately varies with num_threads), and
/// the section's recorded thread count. Everything here must be
/// bit-identical across thread counts.
std::string trace_payload_fingerprint(const net::Tracer& tracer) {
  std::ostringstream os;
  for (const net::TraceSection& s : tracer.sections())
    os << s.name << ':' << s.nodes << ':' << s.edges << ':' << s.seed << ':'
       << s.bit_budget << ';';
  for (const net::TraceRound& r : tracer.rounds()) {
    os << '\n'
       << r.section << '/' << r.round << '/' << r.live << '/' << r.sent << '/'
       << r.delivered << '/' << r.dropped << '/' << r.duplicated << '/'
       << r.crashed << '/' << r.halted << '/' << r.bits << '/' << r.max_bits
       << '/' << r.arena;
    for (const auto& [label, count] : r.phases)
      os << '/' << label << '=' << count;
  }
  return os.str();
}

// Tracing is a pure observation layer: attaching a Tracer (with phase
// capture, the most invasive configuration) must not change solutions,
// metrics, fault-coin streams, or failure diagnostics at any thread count —
// and the deterministic part of the trace itself must be bit-identical
// across thread counts. Runs that fail loudly under faults keep the rounds
// recorded before the throw, which must also be stable.
TEST_P(EngineEquivalenceTest, MwGreedyTracingIsPureObservation) {
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kUniform, 60, 7);
  const auto run = [&](int threads, net::Tracer* tracer) {
    return outcome_trace([&] {
      core::MwParams params = sweep_params(GetParam(), /*k=*/4, /*seed=*/11);
      params.num_threads = threads;
      params.tracer = tracer;
      const core::MwGreedyOutcome out = core::run_mw_greedy(inst, params);
      return solution_fingerprint(inst, out.solution) + " | " +
             metrics_fingerprint(out.metrics);
    });
  };
  const std::string untraced = run(/*threads=*/1, nullptr);
  std::string payload_baseline;
  for (int threads : kThreadCounts) {
    net::Tracer tracer(/*capture_phases=*/true);
    EXPECT_EQ(run(threads, &tracer), untraced) << "threads = " << threads;
    const std::string payload = trace_payload_fingerprint(tracer);
    if (threads == 1) {
      payload_baseline = payload;
      continue;
    }
    EXPECT_EQ(payload, payload_baseline) << "threads = " << threads;
  }
}

TEST_P(EngineEquivalenceTest, PipelineTracingIsPureObservation) {
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kPowerLaw, 50, 3);
  const auto run = [&](int threads, net::Tracer* tracer) {
    return outcome_trace([&] {
      core::MwParams params = sweep_params(GetParam(), /*k=*/4, /*seed=*/5);
      params.num_threads = threads;
      params.tracer = tracer;
      const core::PipelineOutcome out = core::run_pipeline(inst, params);
      return solution_fingerprint(inst, out.solution) + " | " +
             metrics_fingerprint(out.frac_metrics) + " | " +
             metrics_fingerprint(out.round_metrics);
    });
  };
  const std::string untraced = run(/*threads=*/1, nullptr);
  std::string payload_baseline;
  for (int threads : kThreadCounts) {
    net::Tracer tracer(/*capture_phases=*/true);
    EXPECT_EQ(run(threads, &tracer), untraced) << "threads = " << threads;
    // The pipeline labels one section per stage it reaches.
    if (GetParam().mode == FaultMode::kFaultFree) {
      ASSERT_GE(tracer.sections().size(), 2u);
      EXPECT_EQ(tracer.sections()[0].name, "frac-lp");
      EXPECT_EQ(tracer.sections()[1].name, "rand-round");
    }
    const std::string payload = trace_payload_fingerprint(tracer);
    if (threads == 1) {
      payload_baseline = payload;
      continue;
    }
    EXPECT_EQ(payload, payload_baseline) << "threads = " << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDeliveryAndFaultModes, EngineEquivalenceTest,
    testing::Values(
        SweepCase{net::DeliveryOrder::kBySource, FaultMode::kFaultFree},
        SweepCase{net::DeliveryOrder::kRandomShuffle, FaultMode::kFaultFree},
        SweepCase{net::DeliveryOrder::kReverseSource, FaultMode::kFaultFree},
        SweepCase{net::DeliveryOrder::kBySource, FaultMode::kDrops},
        SweepCase{net::DeliveryOrder::kRandomShuffle, FaultMode::kDrops},
        SweepCase{net::DeliveryOrder::kReverseSource, FaultMode::kDrops},
        SweepCase{net::DeliveryOrder::kBySource, FaultMode::kBurstCrash},
        SweepCase{net::DeliveryOrder::kRandomShuffle, FaultMode::kBurstCrash},
        SweepCase{net::DeliveryOrder::kReverseSource, FaultMode::kBurstCrash},
        SweepCase{net::DeliveryOrder::kBySource, FaultMode::kRecovered},
        SweepCase{net::DeliveryOrder::kRandomShuffle, FaultMode::kRecovered},
        SweepCase{net::DeliveryOrder::kReverseSource, FaultMode::kRecovered}),
    case_name);

}  // namespace
}  // namespace dflp
