// Cross-cutting property sweeps (TEST_P): invariants that must hold for
// every (family, size, seed) combination — the library-wide contracts.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/frac_lp.h"
#include "core/mw_greedy.h"
#include "fl/serialize.h"
#include "lp/dual_ascent.h"
#include "seq/greedy.h"
#include "seq/trivial.h"
#include "workload/generators.h"

namespace dflp {
namespace {

struct Case {
  workload::Family family;
  std::int32_t size;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string name = workload::family_name(info.param.family) + "_n" +
                     std::to_string(info.param.size) + "_s" +
                     std::to_string(info.param.seed);
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const auto family :
       {workload::Family::kUniform, workload::Family::kEuclidean,
        workload::Family::kPowerLaw, workload::Family::kGreedyTight,
        workload::Family::kStar}) {
    for (std::int32_t size : {20, 60}) {
      for (std::uint64_t seed : {1ULL, 7ULL}) cases.push_back({family, size,
                                                               seed});
    }
  }
  return cases;
}

class FamilySweep : public ::testing::TestWithParam<Case> {
 protected:
  fl::Instance instance() const {
    return workload::make_family_instance(GetParam().family,
                                          GetParam().size, GetParam().seed);
  }
};

TEST_P(FamilySweep, SerializationRoundTripsExactly) {
  const fl::Instance inst = instance();
  const fl::Instance back = fl::from_text(fl::to_text(inst));
  EXPECT_EQ(fl::to_text(back), fl::to_text(inst));
  EXPECT_EQ(back.num_edges(), inst.num_edges());
  EXPECT_DOUBLE_EQ(back.cost_profile().rho, inst.cost_profile().rho);
}

TEST_P(FamilySweep, LowerBoundChainIsOrdered) {
  const fl::Instance inst = instance();
  const double cheap = lp::cheapest_connection_bound(inst);
  const lp::DualAscentResult dual = lp::dual_ascent_bound(inst);
  EXPECT_TRUE(lp::is_dual_feasible(inst, dual.alpha));
  EXPECT_GE(dual.lower_bound, cheap - 1e-9);
  // Any feasible solution sits above the dual bound.
  const double greedy_cost = seq::greedy_solve(inst).solution.cost(inst);
  EXPECT_GE(greedy_cost, dual.lower_bound - 1e-6);
}

TEST_P(FamilySweep, EveryAlgorithmBelowOpenAll) {
  const fl::Instance inst = instance();
  const double anchor = seq::open_all_solve(inst).cost(inst);
  EXPECT_LE(seq::greedy_solve(inst).solution.cost(inst), anchor + 1e-9);
  core::MwParams params;
  params.k = 16;
  params.seed = GetParam().seed;
  const core::MwGreedyOutcome mw = core::run_mw_greedy(inst, params);
  // mw-greedy may exceed open-all only through mop-up duplication; bound
  // it by the loose-but-universal envelope.
  EXPECT_LE(mw.solution.cost(inst),
            anchor + inst.cost_profile().total_connection + 1e-9);
}

TEST_P(FamilySweep, FracStageAlwaysLpFeasible) {
  const fl::Instance inst = instance();
  core::MwParams params;
  params.k = 4;
  params.seed = GetParam().seed;
  const core::FracOutcome frac = core::run_frac_lp(inst, params);
  std::string why;
  EXPECT_TRUE(frac.fractional.is_feasible(inst, 1e-7, &why)) << why;
  // The fractional value is an upper bound on the LP optimum and therefore
  // at least the dual bound.
  EXPECT_GE(frac.fractional.value(inst),
            lp::dual_ascent_bound(inst).lower_bound - 1e-6);
}

TEST_P(FamilySweep, DistributedRunsAreSeedDeterministic) {
  const fl::Instance inst = instance();
  core::MwParams params;
  params.k = 9;
  params.seed = GetParam().seed * 31 + 5;
  const auto a = core::run_mw_greedy(inst, params);
  const auto b = core::run_mw_greedy(inst, params);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.metrics.total_bits, b.metrics.total_bits);
  EXPECT_DOUBLE_EQ(a.solution.cost(inst), b.solution.cost(inst));
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilySweep,
                         ::testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace dflp
