// Tests for the asynchronous executor and the alpha-synchronizer, up to the
// headline property: the synchronous protocols run unchanged — and produce
// bit-identical results — on an asynchronous network.
#include <gtest/gtest.h>

#include <functional>
#include <sstream>

#include "common/check.h"
#include "core/mw_greedy.h"
#include "netsim/async.h"
#include "netsim/trace.h"
#include "workload/generators.h"

namespace dflp::net {
namespace {

class AsyncScript final : public AsyncProcess {
 public:
  using StartFn = std::function<void(NodeContext&)>;
  using MsgFn = std::function<void(NodeContext&, const Message&)>;
  AsyncScript(StartFn start, MsgFn msg)
      : start_(std::move(start)), msg_(std::move(msg)) {}
  void on_start(NodeContext& ctx) override { start_(ctx); }
  void on_message(NodeContext& ctx, const Message& msg) override {
    msg_(ctx, msg);
  }

 private:
  StartFn start_;
  MsgFn msg_;
};

AsyncNetwork::Options aopts(int max_delay = 4) {
  AsyncNetwork::Options o;
  o.bit_budget = 64;
  o.max_delay = max_delay;
  o.seed = 3;
  return o;
}

TEST(AsyncNetwork, DeliversAfterBoundedDelay) {
  AsyncNetwork net(2, aopts());
  net.add_edge(0, 1);
  net.finalize();
  int got = 0;
  std::uint64_t delivery_time = 0;
  net.set_process(0, std::make_unique<AsyncScript>(
                         [](NodeContext& ctx) { ctx.send(1, 9, {5, 0, 0}); },
                         [](NodeContext&, const Message&) {}));
  net.set_process(1, std::make_unique<AsyncScript>(
                         [](NodeContext&) {},
                         [&](NodeContext& ctx, const Message& m) {
                           ++got;
                           delivery_time = ctx.round();
                           EXPECT_EQ(m.kind, 9);
                           EXPECT_EQ(m.field[0], 5);
                         }));
  const AsyncMetrics metrics = net.run(100);
  EXPECT_EQ(got, 1);
  EXPECT_GE(delivery_time, 1u);
  EXPECT_LE(delivery_time, 4u);
  EXPECT_EQ(metrics.deliveries, 1u);
  EXPECT_EQ(metrics.payload_messages, 1u);
}

TEST(AsyncNetwork, DeterministicPerSeed) {
  auto run_once = []() {
    AsyncNetwork net(3, aopts(8));
    net.add_edge(0, 1);
    net.add_edge(1, 2);
    net.finalize();
    std::vector<std::uint64_t> times;
    auto relay = [&](NodeContext& ctx, const Message& m) {
      times.push_back(ctx.round());
      if (m.field[0] < 6) {
        const NodeId to = ctx.neighbors()[m.field[0] % ctx.neighbors().size()];
        ctx.send(to, 1, {m.field[0] + 1, 0, 0});
      }
    };
    net.set_process(0, std::make_unique<AsyncScript>(
                           [](NodeContext& ctx) { ctx.send(1, 1, {1, 0, 0}); },
                           relay));
    net.set_process(1, std::make_unique<AsyncScript>([](NodeContext&) {},
                                                     relay));
    net.set_process(2, std::make_unique<AsyncScript>([](NodeContext&) {},
                                                     relay));
    net.run(1000);
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(AsyncNetwork, BudgetIncludesTagBits) {
  AsyncNetwork net(2, aopts());
  net.add_edge(0, 1);
  net.finalize();
  net.set_process(0, std::make_unique<AsyncScript>(
                         [&](NodeContext& ctx) {
                           net.set_outgoing_tag((1LL << 50));
                           ctx.send(1, 1, {(1LL << 50), 0, 0});
                         },
                         [](NodeContext&, const Message&) {}));
  net.set_process(1, std::make_unique<AsyncScript>(
                         [](NodeContext&) {},
                         [](NodeContext&, const Message&) {}));
  // 8 + 52 (payload) + 52 (tag) > 64: must throw at send time.
  EXPECT_THROW(net.run(10), CheckError);
}

TEST(AsyncNetwork, HaltedNodeDiscardsDeliveries) {
  AsyncNetwork net(2, aopts());
  net.add_edge(0, 1);
  net.finalize();
  int received = 0;
  net.set_process(0, std::make_unique<AsyncScript>(
                         [](NodeContext& ctx) {
                           ctx.send(1, 1);
                           ctx.send(1, 2);  // async: no per-round allowance
                         },
                         [](NodeContext&, const Message&) {}));
  net.set_process(1, std::make_unique<AsyncScript>(
                         [](NodeContext& ctx) { ctx.halt(); },
                         [&](NodeContext&, const Message&) { ++received; }));
  net.run(100);
  EXPECT_EQ(received, 0);
}

// --------------------------------------------------------- synchronizer --

/// Synchronous flooding process: node 0 starts a wave; every node forwards
/// the (round-stamped) max value it has seen; halts after `rounds` rounds.
class FloodProc final : public Process {
 public:
  explicit FloodProc(int rounds) : rounds_(rounds) {}
  void on_round(NodeContext& ctx, std::span<const Message> inbox) override {
    for (const Message& m : inbox) seen_ = std::max(seen_, m.field[0]);
    if (ctx.round() >= static_cast<std::uint64_t>(rounds_)) {
      ctx.halt();
      return;
    }
    if (ctx.self() == 0 || seen_ > 0) {
      ctx.broadcast(1, {std::max<std::int64_t>(seen_, ctx.self() + 100),
                        0, 0});
    }
  }
  [[nodiscard]] std::int64_t seen() const noexcept { return seen_; }

 private:
  int rounds_;
  std::int64_t seen_ = 0;
};

TEST(Synchronizer, FloodMatchesSynchronousExecution) {
  // Path 0-1-2-3-4. Run the flood synchronously and under the synchronizer
  // with heavy delays; states must match exactly.
  constexpr int kNodes = 5;
  constexpr int kRounds = 6;
  auto build_edges = [](auto& net) {
    for (NodeId v = 0; v + 1 < kNodes; ++v) net.add_edge(v, v + 1);
  };

  std::vector<std::int64_t> sync_seen;
  {
    Network::Options o;
    o.bit_budget = 64;
    o.seed = 5;
    Network net(kNodes, o);
    build_edges(net);
    net.finalize();
    for (NodeId v = 0; v < kNodes; ++v)
      net.set_process(v, std::make_unique<FloodProc>(kRounds));
    net.run(100);
    for (NodeId v = 0; v < kNodes; ++v)
      sync_seen.push_back(
          static_cast<const FloodProc&>(net.process(v)).seen());
  }

  std::vector<std::int64_t> async_seen;
  {
    AsyncNetwork::Options o;
    o.bit_budget = 96;  // room for round tags
    o.max_delay = 32;   // heavy reordering pressure
    o.seed = 5;
    AsyncNetwork net(kNodes, o);
    build_edges(net);
    net.finalize();
    const AsyncMetrics metrics = run_synchronized(
        net,
        [&](NodeId) -> std::unique_ptr<Process> {
          return std::make_unique<FloodProc>(kRounds);
        },
        1 << 20);
    EXPECT_GT(metrics.control_messages, 0u);  // tokens really flowed
    for (NodeId v = 0; v < kNodes; ++v) {
      const auto& sync = static_cast<const Synchronizer&>(net.process(v));
      async_seen.push_back(
          static_cast<const FloodProc&>(sync.inner()).seen());
      EXPECT_EQ(sync.rounds_executed(), kRounds + 1u);
    }
  }
  EXPECT_EQ(sync_seen, async_seen);
}

TEST(Synchronizer, MwGreedyBitIdenticalUnderAsynchrony) {
  // The headline property: the reconstructed PODC'05 protocol, unmodified,
  // produces the identical solution on an asynchronous network.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const fl::Instance inst = workload::make_family_instance(
        workload::Family::kUniform, 40, seed);
    core::MwParams params;
    params.k = 4;
    params.seed = seed;
    const core::MwGreedyOutcome sync = core::run_mw_greedy(inst, params);
    const core::MwGreedyAsyncOutcome async =
        core::run_mw_greedy_async(inst, params, /*max_delay=*/16);
    ASSERT_TRUE(async.solution.is_feasible(inst));
    EXPECT_DOUBLE_EQ(sync.solution.cost(inst), async.solution.cost(inst))
        << "seed " << seed;
    for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i)
      EXPECT_EQ(sync.solution.is_open(i), async.solution.is_open(i))
          << "seed " << seed << " facility " << i;
    for (fl::ClientId j = 0; j < inst.num_clients(); ++j)
      EXPECT_EQ(sync.solution.assignment(j), async.solution.assignment(j))
          << "seed " << seed << " client " << j;
  }
}

TEST(Synchronizer, TracedAsyncRunYieldsValidLogicalRoundTrace) {
  const fl::Instance inst = workload::make_family_instance(
      workload::Family::kUniform, 40, 9);
  core::MwParams params;
  params.k = 4;
  params.seed = 9;
  const core::MwGreedyAsyncOutcome plain =
      core::run_mw_greedy_async(inst, params, /*max_delay=*/8);

  Tracer tracer;
  params.tracer = &tracer;
  const core::MwGreedyAsyncOutcome traced =
      core::run_mw_greedy_async(inst, params, /*max_delay=*/8);

  // Tracing is a pure observation layer in the async world too.
  EXPECT_EQ(plain.solution.cost(inst), traced.solution.cost(inst));
  EXPECT_EQ(plain.metrics.payload_messages, traced.metrics.payload_messages);
  EXPECT_EQ(plain.metrics.total_bits, traced.metrics.total_bits);

  ASSERT_EQ(tracer.sections().size(), 1u);
  EXPECT_EQ(tracer.sections()[0].name, "mw-greedy-async");
  EXPECT_EQ(tracer.sections()[0].nodes,
            static_cast<std::uint64_t>(inst.num_facilities() +
                                       inst.num_clients()));
  ASSERT_EQ(tracer.rounds().size(), traced.max_rounds_executed);

  // Every payload message is attributed to exactly one logical round,
  // whether it was delivered or discarded at a halted receiver.
  std::uint64_t total_sent = 0;
  std::uint64_t total_live = 0;
  std::uint64_t total_halted = 0;
  for (const TraceRound& r : tracer.rounds()) {
    total_sent += r.sent;
    total_live += r.live;
    total_halted += r.halted;
    EXPECT_EQ(r.delivered, r.sent - r.dropped + r.duplicated);
  }
  EXPECT_EQ(total_sent, traced.metrics.payload_messages);
  EXPECT_GT(total_live, 0u);
  EXPECT_EQ(total_halted, static_cast<std::uint64_t>(inst.num_facilities() +
                                                     inst.num_clients()));

  // The exported JSONL passes the schema validator end to end.
  std::ostringstream out;
  tracer.write_jsonl(out);
  std::istringstream in(out.str());
  std::string why;
  EXPECT_TRUE(validate_trace_jsonl(in, &why)) << why;
}

TEST(Synchronizer, OverheadIsTokensPlusTags) {
  const fl::Instance inst = workload::make_family_instance(
      workload::Family::kUniform, 40, 4);
  core::MwParams params;
  params.k = 4;
  params.seed = 4;
  const core::MwGreedyOutcome sync = core::run_mw_greedy(inst, params);
  const core::MwGreedyAsyncOutcome async =
      core::run_mw_greedy_async(inst, params);
  // Payload messages match the synchronous count exactly (same protocol,
  // same coins). Hmm: payloads delivered to halted nodes are counted in
  // async but discarded in sync metrics too (sync counts sends) — both
  // count sends, so equality holds.
  EXPECT_EQ(async.metrics.payload_messages, sync.metrics.messages);
  EXPECT_GT(async.metrics.control_messages, 0u);
  EXPECT_GT(async.metrics.total_bits, sync.metrics.total_bits);
}

TEST(Synchronizer, RejectsReservedOpcodes) {
  AsyncNetwork net(2, aopts());
  net.add_edge(0, 1);
  net.finalize();
  class BadProc final : public Process {
   public:
    void on_round(NodeContext& ctx, std::span<const Message>) override {
      ctx.send(ctx.neighbors()[0], Synchronizer::kToken);  // reserved!
    }
  };
  EXPECT_THROW((void)run_synchronized(
                   net,
                   [](NodeId) -> std::unique_ptr<Process> {
                     return std::make_unique<BadProc>();
                   },
                   1000),
               CheckError);
}

}  // namespace
}  // namespace dflp::net
