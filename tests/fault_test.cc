// Unit tests for the seeded fault model: Network::Options validation at
// finalize(), FaultPlan stream determinism (burst chains, partitions,
// crash schedules, duplication), and metrics reporting of fault counters.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "netsim/fault.h"
#include "netsim/message.h"
#include "netsim/metrics.h"
#include "netsim/network.h"

namespace dflp::net {
namespace {

/// Runs `body` and returns the CheckError message it must throw.
template <typename Body>
std::string rejection_message(Body&& body) {
  try {
    body();
  } catch (const CheckError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a CheckError";
  return {};
}

Network::Options base_opts() {
  Network::Options o;
  o.bit_budget = 64;
  o.seed = 1;
  return o;
}

/// Builds a 2-node network with `o` and finalizes it (where validation
/// happens).
void finalize_with(const Network::Options& o) {
  Network net(2, o);
  net.add_edge(0, 1);
  net.finalize();
}

TEST(OptionsValidation, AcceptsDefaults) {
  EXPECT_NO_THROW(finalize_with(base_opts()));
}

TEST(OptionsValidation, RejectsBitBudgetBelowOpcode) {
  Network::Options o = base_opts();
  o.bit_budget = 7;
  const std::string msg = rejection_message([&] { finalize_with(o); });
  EXPECT_NE(msg.find("bit_budget must be >= 8"), std::string::npos) << msg;
  EXPECT_NE(msg.find("got 7"), std::string::npos) << msg;
}

TEST(OptionsValidation, RejectsZeroEdgeAllowance) {
  Network::Options o = base_opts();
  o.max_msgs_per_edge_per_round = 0;
  const std::string msg = rejection_message([&] { finalize_with(o); });
  EXPECT_NE(msg.find("max_msgs_per_edge_per_round must be >= 1"),
            std::string::npos)
      << msg;
}

TEST(OptionsValidation, RejectsZeroThreads) {
  Network::Options o = base_opts();
  o.num_threads = 0;
  const std::string msg = rejection_message([&] { finalize_with(o); });
  EXPECT_NE(msg.find("num_threads must be >= 1"), std::string::npos) << msg;
}

TEST(OptionsValidation, RejectsOutOfRangeDropProbability) {
  Network::Options o = base_opts();
  o.faults.drop_probability = 1.5;
  const std::string msg = rejection_message([&] { finalize_with(o); });
  EXPECT_NE(msg.find("drop_probability must be in [0, 1]"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("1.5"), std::string::npos) << msg;
}

TEST(OptionsValidation, RejectsNegativeDuplicateProbability) {
  Network::Options o = base_opts();
  o.faults.duplicate_probability = -0.25;
  const std::string msg = rejection_message([&] { finalize_with(o); });
  EXPECT_NE(msg.find("duplicate_probability must be in [0, 1]"),
            std::string::npos)
      << msg;
}

TEST(OptionsValidation, RejectsBurstThatNeverRecovers) {
  Network::Options o = base_opts();
  o.faults.burst.p_good_to_bad = 0.1;
  o.faults.burst.p_bad_to_good = 0.0;
  const std::string msg = rejection_message([&] { finalize_with(o); });
  EXPECT_NE(msg.find("p_bad_to_good must be > 0"), std::string::npos) << msg;
}

TEST(OptionsValidation, RejectsEmptyPartitionWindow) {
  Network::Options o = base_opts();
  o.faults.partitions = {{5, 5}};
  const std::string msg = rejection_message([&] { finalize_with(o); });
  EXPECT_NE(msg.find("partition window [5, 5) is empty"), std::string::npos)
      << msg;
}

TEST(OptionsValidation, RejectsCrashEventOutOfNodeRange) {
  Network::Options o = base_opts();
  o.faults.crashes = {{7, 3}};
  const std::string msg = rejection_message([&] { finalize_with(o); });
  EXPECT_NE(msg.find("crash event for node 7 out of range"), std::string::npos)
      << msg;
}

TEST(OptionsValidation, RejectsOutOfRangeRandomCrashFraction) {
  Network::Options o = base_opts();
  o.faults.random_crash_fraction = 2.0;
  const std::string msg = rejection_message([&] { finalize_with(o); });
  EXPECT_NE(msg.find("random_crash_fraction must be in [0, 1]"),
            std::string::npos)
      << msg;
}

Message link_msg(NodeId src, NodeId dst) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.kind = 1;
  return m;
}

TEST(FaultPlan, CrashScheduleSortsAndDeduplicates) {
  FaultPlan::Options o;
  // Node 3 has two events; the earliest round must win. The schedule is
  // sorted by (round, node).
  o.crashes = {{3, 9}, {0, 6}, {3, 2}};
  const FaultPlan plan(o, /*network_seed=*/5, /*num_nodes=*/8);
  ASSERT_EQ(plan.crash_schedule().size(), 2u);
  EXPECT_EQ(plan.crash_schedule()[0].node, 3);
  EXPECT_EQ(plan.crash_schedule()[0].round, 2u);
  EXPECT_EQ(plan.crash_schedule()[1].node, 0);
  EXPECT_EQ(plan.crash_schedule()[1].round, 6u);
}

TEST(FaultPlan, RandomCrashScheduleIsSeedDeterministic) {
  FaultPlan::Options o;
  o.random_crash_fraction = 0.3;
  o.random_crash_round = 4;
  o.random_crash_round_span = 8;
  o.fault_seed = 77;
  const FaultPlan a(o, /*network_seed=*/5, /*num_nodes=*/64);
  const FaultPlan b(o, /*network_seed=*/5, /*num_nodes=*/64);
  ASSERT_EQ(a.crash_schedule().size(), b.crash_schedule().size());
  for (std::size_t i = 0; i < a.crash_schedule().size(); ++i) {
    EXPECT_EQ(a.crash_schedule()[i].node, b.crash_schedule()[i].node);
    EXPECT_EQ(a.crash_schedule()[i].round, b.crash_schedule()[i].round);
  }
  // With 64 nodes at fraction 0.3 the sampled set is essentially never
  // empty or full; a different fault_seed must give a different schedule.
  ASSERT_FALSE(a.crash_schedule().empty());
  ASSERT_LT(a.crash_schedule().size(), 64u);
  for (const CrashEvent& e : a.crash_schedule()) {
    EXPECT_LE(e.round, o.random_crash_round + o.random_crash_round_span);
    EXPECT_GE(e.round, o.random_crash_round);
  }
}

TEST(FaultPlan, DuplicationFiresWithProbabilityOne) {
  FaultPlan::Options o;
  o.duplicate_probability = 1.0;
  FaultPlan plan(o, /*network_seed=*/9, /*num_nodes=*/4);
  auto coins = plan.begin_sender(0, /*round=*/0);
  const FaultPlan::Fate f = plan.fate(coins, 0, 1, 0);
  EXPECT_FALSE(f.dropped);
  EXPECT_TRUE(f.duplicated);
}

TEST(FaultPlan, BurstChainIsQueryOrderIndependent) {
  // Plan A touches the link only at round 9; plan B advances it round by
  // round. The lazily fast-forwarded chain must land in the same state.
  FaultPlan::Options o;
  o.burst.p_good_to_bad = 0.4;
  o.burst.p_bad_to_good = 0.4;
  o.fault_seed = 3;
  for (std::uint64_t probe = 0; probe < 16; ++probe) {
    FaultPlan lazy(o, /*network_seed=*/probe, /*num_nodes=*/4);
    FaultPlan eager(o, /*network_seed=*/probe, /*num_nodes=*/4);
    bool eager_dropped = false;
    for (std::uint64_t r = 0; r <= 9; ++r) {
      auto coins = eager.begin_sender(0, r);
      eager_dropped = eager.fate(coins, 0, 1, r).dropped;
    }
    auto coins = lazy.begin_sender(0, 9);
    EXPECT_EQ(lazy.fate(coins, 0, 1, 9).dropped, eager_dropped)
        << "network_seed=" << probe;
  }
}

TEST(FaultPlan, PartitionDropsOnlyInsideWindowAndIsSymmetric) {
  FaultPlan::Options o;
  o.partitions = {{2, 5}};
  o.fault_seed = 11;
  FaultPlan plan(o, /*network_seed=*/21, /*num_nodes=*/16);
  bool any_dropped = false;
  bool any_delivered = false;
  for (NodeId v = 1; v < 16; ++v) {
    // Outside the window nothing is dropped.
    auto before = plan.begin_sender(0, 1);
    EXPECT_FALSE(plan.fate(before, 0, v, 1).dropped);
    auto after = plan.begin_sender(0, 5);
    EXPECT_FALSE(plan.fate(after, 0, v, 5).dropped);
    // Inside, the verdict depends only on the seeded sides, so it is
    // symmetric in the endpoints.
    auto fwd = plan.begin_sender(0, 3);
    auto rev = plan.begin_sender(v, 3);
    const bool cut = plan.fate(fwd, 0, v, 3).dropped;
    EXPECT_EQ(plan.fate(rev, v, 0, 3).dropped, cut);
    any_dropped = any_dropped || cut;
    any_delivered = any_delivered || !cut;
  }
  // A bipartition of 16 seeded nodes cuts some pairs and spares others.
  EXPECT_TRUE(any_dropped);
  EXPECT_TRUE(any_delivered);
}

TEST(FaultPlan, LegacyIidDropStreamIgnoresFaultSeed) {
  // The legacy stream is keyed by the network seed only, so the committed
  // drop-failure goldens survive any fault_seed choice.
  FaultPlan::Options o;
  o.drop_probability = 0.5;
  FaultPlan::Options salted = o;
  salted.fault_seed = 999;
  FaultPlan a(o, /*network_seed=*/13, /*num_nodes=*/4);
  FaultPlan b(salted, /*network_seed=*/13, /*num_nodes=*/4);
  for (std::uint64_t r = 0; r < 8; ++r) {
    auto ca = a.begin_sender(2, r);
    auto cb = b.begin_sender(2, r);
    for (int k = 0; k < 8; ++k) {
      EXPECT_EQ(a.fate(ca, 2, 3, r).dropped,
                b.fate(cb, 2, 3, r).dropped)
          << "round " << r << " msg " << k;
    }
  }
}

TEST(NetMetrics, ToStringReportsFaultCountersOnlyWhenNonZero) {
  NetMetrics m;
  m.rounds = 3;
  EXPECT_EQ(m.to_string().find("dropped"), std::string::npos);
  EXPECT_EQ(m.to_string().find("duplicated"), std::string::npos);
  EXPECT_EQ(m.to_string().find("crashed"), std::string::npos);
  m.dropped = 2;
  m.duplicated = 4;
  m.crashed = 1;
  const std::string s = m.to_string();
  EXPECT_NE(s.find("dropped=2"), std::string::npos) << s;
  EXPECT_NE(s.find("duplicated=4"), std::string::npos) << s;
  EXPECT_NE(s.find("crashed=1"), std::string::npos) << s;
}

TEST(MessageSink, PlainTransportRejectsFrames) {
  // Only the RoundBuffer carries transport frames; the base sink refuses
  // them loudly instead of silently mis-billing header bits.
  class NullSink final : public MessageSink {
    void sink_send(NodeId, NodeId, std::uint8_t,
                   std::array<std::int64_t, 3>, int) override {}
    void sink_halt(NodeId) override {}
  };
  NullSink sink;
  Message frame = link_msg(0, 1);
  frame.has_header = true;
  const std::string msg =
      rejection_message([&] { sink.sink_frame(0, frame); });
  EXPECT_NE(msg.find("does not carry reliable-channel frames"),
            std::string::npos)
      << msg;
}

}  // namespace
}  // namespace dflp::net
