// Unit tests for the UFL instance model, solutions and serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/check.h"
#include "fl/instance.h"
#include "fl/serialize.h"
#include "fl/solution.h"

namespace dflp::fl {
namespace {

Instance tiny() {
  // 2 facilities, 3 clients:
  //   F0 (open 10): C0@1, C1@2
  //   F1 (open 5):  C1@4, C2@1
  InstanceBuilder b;
  const FacilityId f0 = b.add_facility(10.0);
  const FacilityId f1 = b.add_facility(5.0);
  const ClientId c0 = b.add_client();
  const ClientId c1 = b.add_client();
  const ClientId c2 = b.add_client();
  b.connect(f0, c0, 1.0);
  b.connect(f0, c1, 2.0);
  b.connect(f1, c1, 4.0);
  b.connect(f1, c2, 1.0);
  return b.build();
}

TEST(Instance, BasicAccessors) {
  const Instance inst = tiny();
  EXPECT_EQ(inst.num_facilities(), 2);
  EXPECT_EQ(inst.num_clients(), 3);
  EXPECT_EQ(inst.num_edges(), 4u);
  EXPECT_DOUBLE_EQ(inst.opening_cost(0), 10.0);
  EXPECT_DOUBLE_EQ(inst.opening_cost(1), 5.0);
  EXPECT_EQ(inst.max_facility_degree(), 2);
  EXPECT_EQ(inst.max_client_degree(), 2);
}

TEST(Instance, EdgesSortedByCost) {
  const Instance inst = tiny();
  const auto f0 = inst.facility_edges(0);
  ASSERT_EQ(f0.size(), 2u);
  EXPECT_EQ(f0[0].client, 0);
  EXPECT_DOUBLE_EQ(f0[0].cost, 1.0);
  EXPECT_EQ(f0[1].client, 1);

  const auto c1 = inst.client_edges(1);
  ASSERT_EQ(c1.size(), 2u);
  EXPECT_EQ(c1[0].facility, 0);  // cost 2 < 4
  EXPECT_EQ(c1[1].facility, 1);
}

TEST(Instance, ConnectionCostLookup) {
  const Instance inst = tiny();
  EXPECT_DOUBLE_EQ(inst.connection_cost(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(inst.connection_cost(1, 2), 1.0);
  EXPECT_TRUE(std::isinf(inst.connection_cost(1, 0)));
}

TEST(Instance, CostProfileAndRho) {
  const Instance inst = tiny();
  const CostProfile& p = inst.cost_profile();
  EXPECT_DOUBLE_EQ(p.max_value, 10.0);
  EXPECT_DOUBLE_EQ(p.min_positive, 1.0);
  EXPECT_DOUBLE_EQ(p.rho, 10.0);
  EXPECT_DOUBLE_EQ(p.total_opening, 15.0);
  EXPECT_DOUBLE_EQ(p.total_connection, 8.0);
}

TEST(Instance, RhoIsOneForAllZeroCosts) {
  InstanceBuilder b;
  const FacilityId f = b.add_facility(0.0);
  const ClientId c = b.add_client();
  b.connect(f, c, 0.0);
  const Instance inst = b.build();
  EXPECT_DOUBLE_EQ(inst.cost_profile().rho, 1.0);
}

TEST(Instance, OpenAllCost) {
  const Instance inst = tiny();
  // 15 opening + cheapest per client (1 + 2 + 1).
  EXPECT_DOUBLE_EQ(inst.open_all_cost(), 19.0);
}

TEST(Instance, ClientEdgeOffsets) {
  const Instance inst = tiny();
  EXPECT_EQ(inst.client_edge_offset(0), 0u);
  EXPECT_EQ(inst.client_edge_offset(1), 1u);
  EXPECT_EQ(inst.client_edge_offset(2), 3u);
  EXPECT_EQ(inst.total_client_edges(), 4u);
}

TEST(Instance, DescribeMentionsShape) {
  const std::string d = tiny().describe();
  EXPECT_NE(d.find("m=2"), std::string::npos);
  EXPECT_NE(d.find("n=3"), std::string::npos);
}

TEST(InstanceBuilder, RejectsBadInput) {
  InstanceBuilder b;
  EXPECT_THROW(b.add_facility(-1.0), CheckError);
  EXPECT_THROW(b.add_facility(std::numeric_limits<double>::infinity()),
               CheckError);
  const FacilityId f = b.add_facility(1.0);
  const ClientId c = b.add_client();
  EXPECT_THROW(b.connect(f + 5, c, 1.0), CheckError);
  EXPECT_THROW(b.connect(f, c + 5, 1.0), CheckError);
  EXPECT_THROW(b.connect(f, c, -2.0), CheckError);
}

TEST(InstanceBuilder, RejectsDuplicateEdges) {
  InstanceBuilder b;
  const FacilityId f = b.add_facility(1.0);
  const ClientId c = b.add_client();
  b.connect(f, c, 1.0);
  b.connect(f, c, 2.0);
  EXPECT_THROW(b.build(), CheckError);
}

TEST(InstanceBuilder, RejectsIsolatedClient) {
  InstanceBuilder b;
  b.add_facility(1.0);
  b.add_client();
  EXPECT_THROW(b.build(), CheckError);
}

TEST(InstanceBuilder, RejectsEmptySides) {
  {
    InstanceBuilder b;
    b.add_client();
    EXPECT_THROW(b.build(), CheckError);
  }
  {
    InstanceBuilder b;
    b.add_facility(1.0);
    EXPECT_THROW(b.build(), CheckError);
  }
}

// ------------------------------------------------------------- solution --

TEST(IntegralSolution, CostAndFeasibility) {
  const Instance inst = tiny();
  IntegralSolution sol(inst);
  EXPECT_FALSE(sol.is_feasible(inst));

  sol.open(0);
  sol.open(1);
  sol.assign(0, 0);
  sol.assign(1, 0);
  sol.assign(2, 1);
  std::string why;
  EXPECT_TRUE(sol.is_feasible(inst, &why)) << why;
  EXPECT_DOUBLE_EQ(sol.cost(inst), 15.0 + 1.0 + 2.0 + 1.0);
  EXPECT_EQ(sol.num_open(), 2);
}

TEST(IntegralSolution, DetectsClosedAssignment) {
  const Instance inst = tiny();
  IntegralSolution sol(inst);
  sol.open(0);
  sol.assign(0, 0);
  sol.assign(1, 0);
  sol.assign(2, 1);  // facility 1 closed
  std::string why;
  EXPECT_FALSE(sol.is_feasible(inst, &why));
  EXPECT_NE(why.find("closed"), std::string::npos);
}

TEST(IntegralSolution, DetectsNonAdjacentAssignment) {
  const Instance inst = tiny();
  IntegralSolution sol(inst);
  sol.open(1);
  sol.assign(0, 1);  // F1 cannot serve C0
  sol.assign(1, 1);
  sol.assign(2, 1);
  std::string why;
  EXPECT_FALSE(sol.is_feasible(inst, &why));
  EXPECT_NE(why.find("non-adjacent"), std::string::npos);
}

TEST(IntegralSolution, AssignGreedilyPicksCheapestOpen) {
  const Instance inst = tiny();
  IntegralSolution sol(inst);
  sol.open(0);
  sol.open(1);
  EXPECT_EQ(sol.assign_greedily(inst), 3);
  EXPECT_EQ(sol.assignment(1), 0);  // cost 2 beats 4
}

TEST(IntegralSolution, PruneUnusedClosesIdleFacilities) {
  const Instance inst = tiny();
  IntegralSolution sol(inst);
  sol.open(0);
  sol.open(1);
  sol.assign(0, 0);
  sol.assign(1, 0);
  sol.assign(2, 1);
  EXPECT_EQ(sol.prune_unused(inst), 0);
  // Reassign client 2's work away and facility 1 becomes unused… but that
  // would be infeasible; instead test with an genuinely unused facility.
  IntegralSolution sol2(inst);
  sol2.open(0);
  sol2.open(1);
  sol2.assign(0, 0);
  sol2.assign(1, 0);
  sol2.assign(2, 1);
  sol2.open(0);  // idempotent
  EXPECT_EQ(sol2.num_open(), 2);
}

TEST(IntegralSolution, CostOnUnassignedThrows) {
  const Instance inst = tiny();
  IntegralSolution sol(inst);
  sol.open(0);
  EXPECT_THROW((void)sol.cost(inst), CheckError);
}

TEST(FractionalSolution, ValueAndFeasibility) {
  const Instance inst = tiny();
  FractionalSolution frac(inst);
  // Fully open both facilities, each client served by its cheapest edge.
  frac.y = {1.0, 1.0};
  // client edge order: c0:[f0], c1:[f0,f1], c2:[f1]
  frac.x = {1.0, 1.0, 0.0, 1.0};
  std::string why;
  EXPECT_TRUE(frac.is_feasible(inst, 1e-9, &why)) << why;
  EXPECT_DOUBLE_EQ(frac.value(inst), 15.0 + 1.0 + 2.0 + 1.0);
  EXPECT_DOUBLE_EQ(frac.coverage(inst, 1), 1.0);
}

TEST(FractionalSolution, DetectsUndercoverage) {
  const Instance inst = tiny();
  FractionalSolution frac(inst);
  frac.y = {1.0, 1.0};
  frac.x = {0.4, 1.0, 0.0, 1.0};
  EXPECT_FALSE(frac.is_feasible(inst));
}

TEST(FractionalSolution, DetectsXAboveY) {
  const Instance inst = tiny();
  FractionalSolution frac(inst);
  frac.y = {0.5, 1.0};
  frac.x = {1.0, 1.0, 0.0, 1.0};  // x for c0@f0 exceeds y0
  std::string why;
  EXPECT_FALSE(frac.is_feasible(inst, 1e-9, &why));
  EXPECT_NE(why.find("y_i"), std::string::npos);
}

TEST(FractionalSolution, HalfAndHalfCoverageIsFeasible) {
  const Instance inst = tiny();
  FractionalSolution frac(inst);
  frac.y = {0.5, 0.5};
  frac.x = {0.5, 0.5, 0.5, 0.5};
  // c0 and c2 each have a single edge with x=0.5: undercovered.
  EXPECT_FALSE(frac.is_feasible(inst));
  frac.y = {1.0, 1.0};
  frac.x = {1.0, 0.5, 0.5, 1.0};  // c1 split across both facilities
  EXPECT_TRUE(frac.is_feasible(inst));
}

// ------------------------------------------------------------ serialize --

TEST(Serialize, RoundTripPreservesEverything) {
  const Instance inst = tiny();
  const std::string text = to_text(inst);
  const Instance back = from_text(text);
  EXPECT_EQ(back.num_facilities(), inst.num_facilities());
  EXPECT_EQ(back.num_clients(), inst.num_clients());
  EXPECT_EQ(back.num_edges(), inst.num_edges());
  for (FacilityId i = 0; i < inst.num_facilities(); ++i)
    EXPECT_DOUBLE_EQ(back.opening_cost(i), inst.opening_cost(i));
  for (ClientId j = 0; j < inst.num_clients(); ++j) {
    const auto a = inst.client_edges(j);
    const auto b = back.client_edges(j);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].facility, b[k].facility);
      EXPECT_DOUBLE_EQ(a[k].cost, b[k].cost);
    }
  }
}

TEST(Serialize, HeaderIsStable) {
  const std::string text = to_text(tiny());
  EXPECT_EQ(text.rfind("dflp-ufl 1\n", 0), 0u);
  EXPECT_NE(text.find("2 3 4"), std::string::npos);
}

TEST(Serialize, RejectsGarbage) {
  EXPECT_THROW(from_text("not an instance"), CheckError);
  EXPECT_THROW(from_text("dflp-ufl 2\n1 1 0\n1.0\n"), CheckError);
  EXPECT_THROW(from_text("dflp-ufl 1\n0 1 0\n"), CheckError);
}

TEST(Serialize, RejectsTruncatedEdges) {
  EXPECT_THROW(from_text("dflp-ufl 1\n1 1 1\n5.0\n"), CheckError);
}

}  // namespace
}  // namespace dflp::fl
