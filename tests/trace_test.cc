// Round-trace regression tests (netsim/trace.h).
//
// The JSONL trace schema is a versioned public artifact
// (docs/trace-schema.md): external tooling parses it, so its byte layout is
// pinned here by a committed golden — a fixed-seed mw-greedy run must
// serialize to exactly the committed text once wall-clock timings (the only
// nondeterministic fields) are masked. The suite also pins the read side
// (parse round-trip), the validator's rejection diagnostics, and the Chrome
// exporter's basic shape.
#include <fstream>
#include <regex>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/mw_greedy.h"
#include "netsim/trace.h"
#include "workload/generators.h"

namespace dflp {
namespace {

/// Masks every timing value (`*_s` fields and the duration slot of shard
/// triples) with `_`; everything else in a trace is deterministic.
std::string mask_timings(std::string s) {
  s = std::regex_replace(
      s, std::regex(R"re("(step_s|commit_s|scatter_s)":[0-9.eE+-]+)re"),
      "\"$1\":_");
  s = std::regex_replace(
      s, std::regex(R"re(\[([0-9]+),([0-9]+),[0-9.eE+-]+\])re"), "[$1,$2,_]");
  return s;
}

/// The fixed-seed run behind the golden: uniform family (24 facilities,
/// instance seed 7), k=4, engine seed 11, serial, phase capture on. The
/// Tracer is caller-owned (it is deliberately non-copyable).
void traced_golden_run(net::Tracer& tracer) {
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kUniform, 24, 7);
  core::MwParams params;
  params.k = 4;
  params.seed = 11;
  params.num_threads = 1;
  params.tracer = &tracer;
  (void)core::run_mw_greedy(inst, params);
}

std::string jsonl_of(const net::Tracer& tracer) {
  std::ostringstream os;
  tracer.write_jsonl(os);
  return os.str();
}

std::string golden_jsonl() {
  net::Tracer tracer(/*capture_phases=*/true);
  traced_golden_run(tracer);
  return jsonl_of(tracer);
}

// Committed golden (timings masked). Rounds 0-15 are the protocol's silent
// doubling phases; offers start at round 16 and the run settles in three
// offer/accept/open/connect waves. Any schema change — field added, renamed,
// reordered, version bumped — must update this text AND docs/trace-schema.md
// together.
constexpr char kGoldenJsonl[] =
    R"({"schema":"dflp-trace","version":1}
{"type":"section","id":0,"name":"mw-greedy","nodes":28,"edges":96,"threads":1,"seed":11,"bit_budget":36}
{"type":"round","sec":0,"round":0,"live":28,"sent":0,"delivered":0,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":0,"max_bits":0,"arena":0,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,28,_]],"phases":[]}
{"type":"round","sec":0,"round":1,"live":28,"sent":0,"delivered":0,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":0,"max_bits":0,"arena":0,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,28,_]],"phases":[]}
{"type":"round","sec":0,"round":2,"live":28,"sent":0,"delivered":0,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":0,"max_bits":0,"arena":0,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,28,_]],"phases":[]}
{"type":"round","sec":0,"round":3,"live":28,"sent":0,"delivered":0,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":0,"max_bits":0,"arena":0,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,28,_]],"phases":[]}
{"type":"round","sec":0,"round":4,"live":28,"sent":0,"delivered":0,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":0,"max_bits":0,"arena":0,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,28,_]],"phases":[]}
{"type":"round","sec":0,"round":5,"live":28,"sent":0,"delivered":0,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":0,"max_bits":0,"arena":0,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,28,_]],"phases":[]}
{"type":"round","sec":0,"round":6,"live":28,"sent":0,"delivered":0,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":0,"max_bits":0,"arena":0,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,28,_]],"phases":[]}
{"type":"round","sec":0,"round":7,"live":28,"sent":0,"delivered":0,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":0,"max_bits":0,"arena":0,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,28,_]],"phases":[]}
{"type":"round","sec":0,"round":8,"live":28,"sent":0,"delivered":0,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":0,"max_bits":0,"arena":0,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,28,_]],"phases":[]}
{"type":"round","sec":0,"round":9,"live":28,"sent":0,"delivered":0,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":0,"max_bits":0,"arena":0,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,28,_]],"phases":[]}
{"type":"round","sec":0,"round":10,"live":28,"sent":0,"delivered":0,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":0,"max_bits":0,"arena":0,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,28,_]],"phases":[]}
{"type":"round","sec":0,"round":11,"live":28,"sent":0,"delivered":0,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":0,"max_bits":0,"arena":0,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,28,_]],"phases":[]}
{"type":"round","sec":0,"round":12,"live":28,"sent":0,"delivered":0,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":0,"max_bits":0,"arena":0,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,28,_]],"phases":[]}
{"type":"round","sec":0,"round":13,"live":28,"sent":0,"delivered":0,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":0,"max_bits":0,"arena":0,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,28,_]],"phases":[]}
{"type":"round","sec":0,"round":14,"live":28,"sent":0,"delivered":0,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":0,"max_bits":0,"arena":0,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,28,_]],"phases":[]}
{"type":"round","sec":0,"round":15,"live":28,"sent":0,"delivered":0,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":0,"max_bits":0,"arena":0,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,28,_]],"phases":[]}
{"type":"round","sec":0,"round":16,"live":28,"sent":25,"delivered":25,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":200,"max_bits":8,"arena":25,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,28,_]],"phases":[["offer",3]]}
{"type":"round","sec":0,"round":17,"live":28,"sent":18,"delivered":18,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":144,"max_bits":8,"arena":18,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,28,_]],"phases":[["accept",18]]}
{"type":"round","sec":0,"round":18,"live":28,"sent":18,"delivered":18,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":144,"max_bits":8,"arena":18,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,28,_]],"phases":[["open",3]]}
{"type":"round","sec":0,"round":19,"live":28,"sent":72,"delivered":72,"dropped":0,"duplicated":0,"crashed":0,"halted":18,"bits":576,"max_bits":8,"arena":72,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,28,_]],"phases":[["connect",18]]}
{"type":"round","sec":0,"round":20,"live":10,"sent":3,"delivered":3,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":24,"max_bits":8,"arena":3,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,10,_]],"phases":[["offer",3]]}
{"type":"round","sec":0,"round":21,"live":10,"sent":3,"delivered":3,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":24,"max_bits":8,"arena":3,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,10,_]],"phases":[["accept",3]]}
{"type":"round","sec":0,"round":22,"live":10,"sent":3,"delivered":3,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":24,"max_bits":8,"arena":3,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,10,_]],"phases":[["open",3]]}
{"type":"round","sec":0,"round":23,"live":10,"sent":12,"delivered":12,"dropped":0,"duplicated":0,"crashed":0,"halted":3,"bits":96,"max_bits":8,"arena":12,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,10,_]],"phases":[["connect",3]]}
{"type":"round","sec":0,"round":24,"live":7,"sent":6,"delivered":6,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":48,"max_bits":8,"arena":6,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,7,_]],"phases":[["offer",4]]}
{"type":"round","sec":0,"round":25,"live":7,"sent":3,"delivered":3,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":24,"max_bits":8,"arena":3,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,7,_]],"phases":[["accept",3]]}
{"type":"round","sec":0,"round":26,"live":7,"sent":3,"delivered":3,"dropped":0,"duplicated":0,"crashed":0,"halted":0,"bits":24,"max_bits":8,"arena":3,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,7,_]],"phases":[["open",2]]}
{"type":"round","sec":0,"round":27,"live":7,"sent":12,"delivered":12,"dropped":0,"duplicated":0,"crashed":0,"halted":3,"bits":96,"max_bits":8,"arena":12,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,7,_]],"phases":[["connect",3]]}
{"type":"round","sec":0,"round":28,"live":4,"sent":0,"delivered":0,"dropped":0,"duplicated":0,"crashed":0,"halted":4,"bits":0,"max_bits":0,"arena":0,"step_s":_,"commit_s":_,"scatter_s":_,"shards":[[0,4,_]],"phases":[]}
)";

TEST(TraceGolden, FixedSeedRunMatchesCommittedJsonl) {
  EXPECT_EQ(mask_timings(golden_jsonl()), kGoldenJsonl);
}

TEST(TraceGolden, RepeatedRunsAreByteIdenticalModuloTimings) {
  const std::string a = mask_timings(golden_jsonl());
  const std::string b = mask_timings(golden_jsonl());
  EXPECT_EQ(a, b);
}

TEST(TraceGolden, JsonlRoundTripsThroughReader) {
  net::Tracer tracer(/*capture_phases=*/true);
  traced_golden_run(tracer);
  std::istringstream in(jsonl_of(tracer));
  const net::ParsedTrace parsed = net::read_trace_jsonl(in);
  ASSERT_EQ(parsed.version, net::kTraceSchemaVersion);
  ASSERT_EQ(parsed.sections.size(), tracer.sections().size());
  ASSERT_EQ(parsed.rounds.size(), tracer.rounds().size());
  EXPECT_EQ(parsed.sections[0].name, "mw-greedy");
  EXPECT_EQ(parsed.sections[0].nodes, 28u);
  for (std::size_t i = 0; i < parsed.rounds.size(); ++i) {
    const net::TraceRound& got = parsed.rounds[i];
    const net::TraceRound& want = tracer.rounds()[i];
    EXPECT_EQ(got.round, want.round);
    EXPECT_EQ(got.sent, want.sent);
    EXPECT_EQ(got.delivered, want.delivered);
    EXPECT_EQ(got.bits, want.bits);
    EXPECT_EQ(got.arena, want.arena);
    EXPECT_EQ(got.shards.size(), want.shards.size());
    ASSERT_EQ(got.phases.size(), want.phases.size());
    for (std::size_t p = 0; p < got.phases.size(); ++p) {
      EXPECT_EQ(got.phases[p].first, want.phases[p].first);
      EXPECT_EQ(got.phases[p].second, want.phases[p].second);
    }
  }
}

/// Normalized JSONL of the golden run at `num_threads` (parse -> normalize
/// -> re-emit, the same path `trace_check --normalize` takes).
std::string normalized_golden_jsonl(int num_threads) {
  net::Tracer tracer(/*capture_phases=*/true);
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kUniform, 24, 7);
  core::MwParams params;
  params.k = 4;
  params.seed = 11;
  params.num_threads = num_threads;
  params.tracer = &tracer;
  (void)core::run_mw_greedy(inst, params);
  std::istringstream in(jsonl_of(tracer));
  net::ParsedTrace parsed = net::read_trace_jsonl(in);
  net::normalize_trace(&parsed);
  std::ostringstream out;
  net::write_trace_jsonl(parsed, out);
  return out.str();
}

TEST(TraceNormalize, StripsTimingsAndIsThreadInvariant) {
  const std::string serial = normalized_golden_jsonl(1);
  // No timing survives: every *_s field is exactly 0 and shards are gone.
  EXPECT_EQ(serial.find("\"shards\":[["), std::string::npos);
  EXPECT_NE(serial.find("\"step_s\":0,\"commit_s\":0,\"scatter_s\":0"),
            std::string::npos);
  // Same run shape at 4 threads: normalized bytes are identical, which is
  // what lets CI diff a fresh trace against a committed golden regardless
  // of runner core count.
  EXPECT_EQ(serial, normalized_golden_jsonl(4));
  // The normalized form is still schema-valid and normalization is
  // idempotent through another read -> normalize -> write cycle.
  std::istringstream in(serial);
  std::string why;
  EXPECT_TRUE(net::validate_trace_jsonl(in, &why)) << why;
  in.clear();
  in.seekg(0);
  net::ParsedTrace again = net::read_trace_jsonl(in);
  net::normalize_trace(&again);
  std::ostringstream out;
  net::write_trace_jsonl(again, out);
  EXPECT_EQ(out.str(), serial);
}

/// Runs the validator on `text` and returns the diagnostic ("" = valid).
std::string validate(const std::string& text) {
  std::istringstream in(text);
  std::string why;
  return net::validate_trace_jsonl(in, &why) ? std::string() : why;
}

/// Corrupts the first occurrence of `from` in the golden run's JSONL.
std::string corrupted_golden(const std::string& from, const std::string& to) {
  std::string text = golden_jsonl();
  const std::size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  text.replace(pos, from.size(), to);
  return text;
}

TEST(TraceValidator, AcceptsFreshTrace) {
  EXPECT_EQ(validate(golden_jsonl()), "");
}

TEST(TraceValidator, RejectsWrongVersion) {
  const std::string text = corrupted_golden("\"version\":1", "\"version\":7");
  EXPECT_NE(validate(text).find("version"), std::string::npos)
      << validate(text);
}

TEST(TraceValidator, RejectsMissingHeader) {
  std::string text = golden_jsonl();
  text.erase(0, text.find('\n') + 1);  // drop the schema header line
  EXPECT_NE(validate(text), "");
}

TEST(TraceValidator, RejectsCounterIdentityViolation) {
  const std::string text =
      corrupted_golden("\"delivered\":25", "\"delivered\":24");
  EXPECT_NE(validate(text).find("counter identity"), std::string::npos)
      << validate(text);
}

TEST(TraceValidator, RejectsShardOutsideLiveRange) {
  const std::string text = corrupted_golden("\"shards\":[[0,28,",
                                            "\"shards\":[[0,29,");
  EXPECT_NE(validate(text).find("shard"), std::string::npos)
      << validate(text);
}

TEST(TraceValidator, RejectsNonPositivePhaseCount) {
  const std::string text =
      corrupted_golden("[\"offer\",3]", "[\"offer\",0]");
  EXPECT_NE(validate(text).find("phase"), std::string::npos)
      << validate(text);
}

TEST(TraceValidator, RejectsNonConsecutiveRounds) {
  const std::string text =
      corrupted_golden("\"round\":28", "\"round\":40");
  EXPECT_NE(validate(text), "");
}

TEST(TraceValidator, RejectsGarbageLine) {
  EXPECT_NE(validate(golden_jsonl() + "not json\n"), "");
}

TEST(TraceChromeExport, HasMetadataSlicesAndCounters) {
  net::Tracer tracer(/*capture_phases=*/true);
  traced_golden_run(tracer);
  std::ostringstream os;
  tracer.write_chrome(os);
  const std::string chrome = os.str();
  EXPECT_EQ(chrome.rfind("{\"traceEvents\":[", 0), 0u) << chrome.substr(0, 40);
  EXPECT_NE(chrome.find("\"ph\":\"M\""), std::string::npos);  // metadata
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);  // slices
  EXPECT_NE(chrome.find("\"ph\":\"C\""), std::string::npos);  // counters
  EXPECT_NE(chrome.find("mw-greedy"), std::string::npos);
  EXPECT_NE(chrome.find("phase:offer"), std::string::npos);
  EXPECT_EQ(chrome.back(), '\n');
  EXPECT_EQ(chrome[chrome.size() - 2], '}');
}

TEST(TraceWriteFile, BothFormatsLandOnDisk) {
  net::Tracer tracer(/*capture_phases=*/true);
  traced_golden_run(tracer);
  const std::string dir = testing::TempDir();
  const std::string jsonl_path = dir + "/trace_test.jsonl";
  const std::string chrome_path = dir + "/trace_test.chrome.json";
  tracer.write_file(jsonl_path, net::TraceFormat::kJsonl);
  tracer.write_file(chrome_path, net::TraceFormat::kChrome);

  std::ifstream jsonl_in(jsonl_path);
  ASSERT_TRUE(jsonl_in.good());
  std::string why;
  EXPECT_TRUE(net::validate_trace_jsonl(jsonl_in, &why)) << why;

  std::ifstream chrome_in(chrome_path);
  ASSERT_TRUE(chrome_in.good());
  std::string first_line;
  std::getline(chrome_in, first_line);
  EXPECT_EQ(first_line.rfind("{\"traceEvents\":[", 0), 0u);
}

TEST(TraceFormatNames, ParseAndPrintRoundTrip) {
  net::TraceFormat f = net::TraceFormat::kChrome;
  EXPECT_TRUE(net::parse_trace_format("jsonl", &f));
  EXPECT_EQ(f, net::TraceFormat::kJsonl);
  EXPECT_TRUE(net::parse_trace_format("chrome", &f));
  EXPECT_EQ(f, net::TraceFormat::kChrome);
  EXPECT_FALSE(net::parse_trace_format("perfetto", &f));
  EXPECT_EQ(net::trace_format_name(net::TraceFormat::kJsonl), "jsonl");
  EXPECT_EQ(net::trace_format_name(net::TraceFormat::kChrome), "chrome");
}

}  // namespace
}  // namespace dflp
