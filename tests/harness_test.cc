// Tests for the experiment harness: lower-bound selection, per-algorithm
// execution, suite runs and table rendering.
#include <gtest/gtest.h>

#include "harness/report.h"
#include "harness/runner.h"
#include "lp/ufl_lp.h"
#include "seq/brute_force.h"
#include "workload/generators.h"

namespace dflp::harness {
namespace {

fl::Instance small(std::uint64_t seed = 1) {
  workload::UniformParams p;
  p.num_facilities = 6;
  p.num_clients = 14;
  p.client_degree = 3;
  return workload::uniform_random(p, seed);
}

TEST(LowerBound, UsesLpOnSmallInstances) {
  const fl::Instance inst = small();
  const LowerBound lb = compute_lower_bound(inst);
  EXPECT_EQ(lb.kind, "lp-optimum");
  const auto lp = lp::solve_ufl_lp(inst);
  ASSERT_TRUE(lp.has_value());
  EXPECT_NEAR(lb.value, lp->optimum, 1e-9);
}

TEST(LowerBound, FallsBackToDualAscentOnLargeInstances) {
  workload::UniformParams p;
  p.num_facilities = 40;
  p.num_clients = 400;
  p.client_degree = 5;
  const fl::Instance inst = workload::uniform_random(p, 2);
  const LowerBound lb = compute_lower_bound(inst);
  EXPECT_EQ(lb.kind, "dual-ascent");
  EXPECT_GT(lb.value, 0.0);
}

TEST(LowerBound, IsBelowOptimum) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const fl::Instance inst = small(seed);
    const LowerBound lb = compute_lower_bound(inst);
    const auto brute = seq::brute_force_solve(inst);
    ASSERT_TRUE(brute.has_value());
    EXPECT_LE(lb.value, brute->optimum + 1e-6) << "seed " << seed;
  }
}

TEST(Runner, EveryAlgorithmRunsFeasiblyWithSaneRatios) {
  const fl::Instance inst = small(3);
  const LowerBound lb = compute_lower_bound(inst);
  core::MwParams params;
  params.k = 4;
  params.seed = 3;
  for (const Algo algo :
       {Algo::kMwGreedy, Algo::kPipeline, Algo::kIdealGreedy,
        Algo::kSeqGreedy, Algo::kJainVazirani, Algo::kMettuPlaxton,
        Algo::kJms, Algo::kLocalSearch, Algo::kOpenAll,
        Algo::kNearestFacility}) {
    const RunResult r = run_algorithm(algo, inst, params, lb);
    EXPECT_TRUE(r.feasible) << r.algo;
    EXPECT_GE(r.ratio, 1.0 - 1e-9) << r.algo;
    EXPECT_LT(r.ratio, 100.0) << r.algo;
    EXPECT_EQ(r.algo, algo_name(algo));
  }
}

TEST(Runner, DistributedAlgosReportNetworkMetrics) {
  const fl::Instance inst = small(4);
  const LowerBound lb = compute_lower_bound(inst);
  core::MwParams params;
  params.k = 4;
  const RunResult mw = run_algorithm(Algo::kMwGreedy, inst, params, lb);
  EXPECT_GT(mw.rounds, 0u);
  EXPECT_GT(mw.messages, 0u);
  EXPECT_GT(mw.max_message_bits, 0);
  const RunResult greedy = run_algorithm(Algo::kSeqGreedy, inst, params, lb);
  EXPECT_EQ(greedy.messages, 0u);
}

TEST(Runner, IdealGreedyRoundsEqualsIterations) {
  const fl::Instance inst = small(5);
  const LowerBound lb = compute_lower_bound(inst);
  core::MwParams params;
  const RunResult r = run_algorithm(Algo::kIdealGreedy, inst, params, lb);
  EXPECT_GT(r.rounds, 0u);
  EXPECT_LE(r.rounds, static_cast<std::uint64_t>(inst.num_clients()));
}

TEST(Runner, SuiteSharesOneLowerBound) {
  const fl::Instance inst = small(6);
  core::MwParams params;
  params.k = 4;
  const auto results =
      run_suite({Algo::kSeqGreedy, Algo::kOpenAll}, inst, params);
  ASSERT_EQ(results.size(), 2u);
  // open-all can never beat greedy's ratio by construction of pruning…
  // but at minimum both ratios are >= 1 and cost(greedy) <= cost(open-all).
  EXPECT_LE(results[0].cost, results[1].cost + 1e-9);
}

TEST(Report, TableContainsAllAlgorithms) {
  const fl::Instance inst = small(7);
  core::MwParams params;
  params.k = 2;
  const auto results =
      run_suite({Algo::kMwGreedy, Algo::kSeqGreedy}, inst, params);
  const Table table = results_table(results);
  const std::string md = table.to_markdown();
  EXPECT_NE(md.find("mw-greedy"), std::string::npos);
  EXPECT_NE(md.find("seq-greedy"), std::string::npos);
  EXPECT_NE(md.find("ratio-vs-LB"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(Report, AlgoNamesAreUniqueAndStable) {
  std::set<std::string> names;
  for (const Algo algo :
       {Algo::kMwGreedy, Algo::kPipeline, Algo::kIdealGreedy,
        Algo::kSeqGreedy, Algo::kJainVazirani, Algo::kMettuPlaxton,
        Algo::kJms, Algo::kLocalSearch, Algo::kOpenAll,
        Algo::kNearestFacility}) {
    names.insert(algo_name(algo));
  }
  EXPECT_EQ(names.size(), 10u);
}

}  // namespace
}  // namespace dflp::harness
