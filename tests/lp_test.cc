// Tests for the LP substrate: simplex on known programs, the UFL LP against
// brute force, and the dual-ascent bound's feasibility and ordering.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "lp/dual_ascent.h"
#include "lp/simplex.h"
#include "lp/ufl_lp.h"
#include "seq/brute_force.h"
#include "workload/generators.h"

namespace dflp::lp {
namespace {

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3a + 5b st a<=4, 2b<=12, 3a+2b<=18  => min -3a-5b, opt -36 at (2,6).
  LinearProgram lp;
  const int a = lp.add_variable(-3.0);
  const int b = lp.add_variable(-5.0);
  lp.add_constraint({{a, 1.0}}, Relation::kLe, 4.0);
  lp.add_constraint({{b, 2.0}}, Relation::kLe, 12.0);
  lp.add_constraint({{a, 3.0}, {b, 2.0}}, Relation::kLe, 18.0);
  const LpSolution sol = solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -36.0, 1e-9);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(a)], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(b)], 6.0, 1e-9);
}

TEST(Simplex, HandlesGeConstraintsViaTwoPhase) {
  // min x + 2y st x + y >= 3, y >= 1  => opt at (2,1) value 4.
  LinearProgram lp;
  const int x = lp.add_variable(1.0);
  const int y = lp.add_variable(2.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGe, 3.0);
  lp.add_constraint({{y, 1.0}}, Relation::kGe, 1.0);
  const LpSolution sol = solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 4.0, 1e-9);
}

TEST(Simplex, HandlesEquality) {
  // min x + y st x + y = 5, x <= 2 => opt 5 with x in [0,2].
  LinearProgram lp;
  const int x = lp.add_variable(1.0);
  const int y = lp.add_variable(1.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEq, 5.0);
  lp.add_constraint({{x, 1.0}}, Relation::kLe, 2.0);
  const LpSolution sol = solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 5.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  LinearProgram lp;
  const int x = lp.add_variable(1.0);
  lp.add_constraint({{x, 1.0}}, Relation::kGe, 5.0);
  lp.add_constraint({{x, 1.0}}, Relation::kLe, 1.0);
  EXPECT_EQ(solve(lp).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LinearProgram lp;
  const int x = lp.add_variable(-1.0);  // maximize x with no upper bound
  lp.add_constraint({{x, 1.0}}, Relation::kGe, 0.0);
  EXPECT_EQ(solve(lp).status, SolveStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x st -x <= -2  (i.e. x >= 2).
  LinearProgram lp;
  const int x = lp.add_variable(1.0);
  lp.add_constraint({{x, -1.0}}, Relation::kLe, -2.0);
  const LpSolution sol = solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);
}

TEST(Simplex, DuplicateTermsAreSummed) {
  // min x st x + x >= 4 => x = 2.
  LinearProgram lp;
  const int x = lp.add_variable(1.0);
  lp.add_constraint({{x, 1.0}, {x, 1.0}}, Relation::kGe, 4.0);
  const LpSolution sol = solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);
}

TEST(Simplex, RejectsBadConstraints) {
  LinearProgram lp;
  (void)lp.add_variable(1.0);
  std::vector<std::pair<int, double>> unknown_var{{5, 1.0}};
  EXPECT_THROW(lp.add_constraint(unknown_var, Relation::kLe, 1.0),
               dflp::CheckError);
  std::vector<std::pair<int, double>> ok_var{{0, 1.0}};
  EXPECT_THROW(lp.add_constraint(ok_var, Relation::kLe, std::nan("")),
               dflp::CheckError);
}

// --------------------------------------------------------------- UFL LP --

TEST(UflLp, ModelShape) {
  workload::UniformParams p;
  p.num_facilities = 4;
  p.num_clients = 8;
  p.client_degree = 3;
  const fl::Instance inst = workload::uniform_random(p, 1);
  const LinearProgram lp = build_ufl_lp(inst);
  EXPECT_EQ(lp.num_variables(), 4 + 24);
  EXPECT_EQ(lp.num_constraints(), 8 + 24);
}

TEST(UflLp, OptimumIsLowerBoundOnBruteForce) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    workload::UniformParams p;
    p.num_facilities = 6;
    p.num_clients = 12;
    p.client_degree = 3;
    const fl::Instance inst = workload::uniform_random(p, seed);
    const auto lp = solve_ufl_lp(inst);
    ASSERT_TRUE(lp.has_value());
    const auto brute = seq::brute_force_solve(inst);
    ASSERT_TRUE(brute.has_value());
    EXPECT_LE(lp->optimum, brute->optimum + 1e-6) << "seed " << seed;
    // The UFL LP has integrality gap < 2 on these tiny instances; at the
    // very least the LP should be a nontrivial fraction of OPT.
    EXPECT_GE(lp->optimum, 0.2 * brute->optimum) << "seed " << seed;
  }
}

TEST(UflLp, FractionalSolutionIsFeasible) {
  workload::UniformParams p;
  p.num_facilities = 5;
  p.num_clients = 10;
  p.client_degree = 3;
  const fl::Instance inst = workload::uniform_random(p, 3);
  const auto lp = solve_ufl_lp(inst);
  ASSERT_TRUE(lp.has_value());
  std::string why;
  EXPECT_TRUE(lp->fractional.is_feasible(inst, 1e-6, &why)) << why;
  EXPECT_NEAR(lp->fractional.value(inst), lp->optimum, 1e-6);
}

TEST(UflLp, IntegralInstanceSolvedExactly) {
  // One facility, one client: LP optimum must equal f + c.
  fl::InstanceBuilder b;
  const auto f = b.add_facility(7.0);
  const auto c = b.add_client();
  b.connect(f, c, 3.0);
  const fl::Instance inst = b.build();
  const auto lp = solve_ufl_lp(inst);
  ASSERT_TRUE(lp.has_value());
  EXPECT_NEAR(lp->optimum, 10.0, 1e-9);
}

// ----------------------------------------------------------- dual ascent --

TEST(DualAscent, FeasibleAndBelowLpOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    workload::UniformParams p;
    p.num_facilities = 6;
    p.num_clients = 14;
    p.client_degree = 3;
    const fl::Instance inst = workload::uniform_random(p, seed);
    const DualAscentResult dual = dual_ascent_bound(inst);
    EXPECT_TRUE(is_dual_feasible(inst, dual.alpha)) << "seed " << seed;
    const auto lp = solve_ufl_lp(inst);
    ASSERT_TRUE(lp.has_value());
    EXPECT_LE(dual.lower_bound, lp->optimum + 1e-6) << "seed " << seed;
    EXPECT_GT(dual.lower_bound, 0.0);
  }
}

TEST(DualAscent, ExactOnSingleFacility) {
  // One facility (cost 6) and three clients at distance 1: alphas grow
  // together; facility tight when 3*(t-1) = 6 => t = 3; LB = 9 = OPT.
  fl::InstanceBuilder b;
  const auto f = b.add_facility(6.0);
  for (int j = 0; j < 3; ++j) {
    const auto c = b.add_client();
    b.connect(f, c, 1.0);
  }
  const fl::Instance inst = b.build();
  const DualAscentResult dual = dual_ascent_bound(inst);
  EXPECT_NEAR(dual.lower_bound, 9.0, 1e-9);
  for (double a : dual.alpha) EXPECT_NEAR(a, 3.0, 1e-9);
  EXPECT_NEAR(dual.tight_time[0], 3.0, 1e-9);
  for (auto w : dual.witness) EXPECT_EQ(w, 0);
}

TEST(DualAscent, ZeroCostFacilityFreezesAtConnectionCost) {
  fl::InstanceBuilder b;
  const auto f = b.add_facility(0.0);
  const auto c = b.add_client();
  b.connect(f, c, 2.5);
  const fl::Instance inst = b.build();
  const DualAscentResult dual = dual_ascent_bound(inst);
  EXPECT_NEAR(dual.alpha[0], 2.5, 1e-9);
  EXPECT_NEAR(dual.lower_bound, 2.5, 1e-9);
}

TEST(DualAscent, ScalesToLargeInstancesQuickly) {
  workload::UniformParams p;
  p.num_facilities = 200;
  p.num_clients = 5000;
  p.client_degree = 6;
  const fl::Instance inst = workload::uniform_random(p, 5);
  const DualAscentResult dual = dual_ascent_bound(inst);
  EXPECT_TRUE(is_dual_feasible(inst, dual.alpha));
  EXPECT_GT(dual.lower_bound, 0.0);
}

TEST(DualAscent, WitnessesAreAdjacent) {
  workload::UniformParams p;
  p.num_facilities = 8;
  p.num_clients = 30;
  p.client_degree = 4;
  const fl::Instance inst = workload::uniform_random(p, 9);
  const DualAscentResult dual = dual_ascent_bound(inst);
  for (fl::ClientId j = 0; j < inst.num_clients(); ++j) {
    const fl::FacilityId w = dual.witness[static_cast<std::size_t>(j)];
    ASSERT_NE(w, fl::kNoFacility);
    EXPECT_TRUE(std::isfinite(inst.connection_cost(w, j)));
  }
}

TEST(CheapestConnectionBound, OrderedBelowDualAscent) {
  workload::UniformParams p;
  p.num_facilities = 10;
  p.num_clients = 40;
  p.client_degree = 4;
  p.opening_lo = 20.0;  // opening costs matter => dual ascent strictly wins
  p.opening_hi = 50.0;
  const fl::Instance inst = workload::uniform_random(p, 2);
  const double cheap = cheapest_connection_bound(inst);
  const DualAscentResult dual = dual_ascent_bound(inst);
  EXPECT_GE(dual.lower_bound, cheap - 1e-9);
}

}  // namespace
}  // namespace dflp::lp
