// Tests for the reliable-transport recovery layer: channel-level recovery
// on a tiny lossy network, end-to-end mw-greedy equality with the
// fault-free golden under drops / duplication / boot crashes, the round
// dilation bound, and the satellite property test over sampled fault
// plans (with recovery: feasible and identical to fault-free; without:
// a deterministic failure naming the first lost message).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/mw_greedy.h"
#include "core/params.h"
#include "harness/faults.h"
#include "netsim/network.h"
#include "netsim/reliable.h"
#include "workload/generators.h"

namespace dflp {
namespace {

TEST(ReliableBitBudget, WidensInnerBudgetForHeader) {
  const int b = net::reliable_bit_budget(64, 100);
  EXPECT_GT(b, 64);
  // Header cost grows with the logical round bound (seq/ack/tag widths).
  EXPECT_GE(net::reliable_bit_budget(64, 100000), b);
  EXPECT_GT(net::reliable_bit_budget(8, 1), 8);
}

TEST(ReliableStats, MergeTakesMaxRoundsAndSumsCounters) {
  net::ReliableStats a;
  a.logical_rounds = 10;
  a.physical_rounds = 30;
  a.items_sent = 5;
  a.retransmissions = 2;
  a.ack_frames = 1;
  a.duplicates_discarded = 3;
  net::ReliableStats b;
  b.logical_rounds = 7;
  b.physical_rounds = 40;
  b.items_sent = 4;
  b.retransmissions = 1;
  b.ack_frames = 2;
  b.duplicates_discarded = 1;
  a.merge(b);
  EXPECT_EQ(a.logical_rounds, 10u);
  EXPECT_EQ(a.physical_rounds, 40u);
  EXPECT_EQ(a.items_sent, 9u);
  EXPECT_EQ(a.retransmissions, 3u);
  EXPECT_EQ(a.ack_frames, 3u);
  EXPECT_EQ(a.duplicates_discarded, 4u);
}

/// Process programmable with a small lambda per round.
class Script final : public net::Process {
 public:
  using Fn =
      std::function<void(net::NodeContext&, std::span<const net::Message>)>;
  explicit Script(Fn fn) : fn_(std::move(fn)) {}
  void on_round(net::NodeContext& ctx,
                std::span<const net::Message> inbox) override {
    fn_(ctx, inbox);
  }

 private:
  Fn fn_;
};

TEST(ReliableChannel, DeliversInOrderUnderHeavyLossAndDuplication) {
  // Node 0 streams the values 1, 2, 3 to node 1 over three logical rounds;
  // node 1 halts once it has them all. The physical network drops 30% of
  // frames and duplicates 20% of the survivors; the channel must still
  // deliver exactly 1, 2, 3 in order.
  net::Network::Options o;
  o.bit_budget = net::reliable_bit_budget(64, 16);
  o.seed = 42;
  o.faults.drop_probability = 0.3;
  o.faults.duplicate_probability = 0.2;
  o.faults.fault_seed = 7;
  net::Network net(2, o);
  net.add_edge(0, 1);
  net.finalize();

  auto received = std::make_shared<std::vector<std::int64_t>>();
  net::ReliableChannel::Options ch;
  ch.inner_bit_budget = 64;
  net.set_process(
      0, std::make_unique<net::ReliableChannel>(
             std::make_unique<Script>([](net::NodeContext& ctx, auto) {
               if (ctx.round() < 3) {
                 ctx.send(1, 1,
                          {static_cast<std::int64_t>(ctx.round()) + 1, 0, 0});
               }
               if (ctx.round() >= 3) ctx.halt();
             }),
             ch));
  net.set_process(
      1, std::make_unique<net::ReliableChannel>(
             std::make_unique<Script>(
                 [received](net::NodeContext& ctx,
                            std::span<const net::Message> inbox) {
                   for (const net::Message& m : inbox)
                     received->push_back(m.field[0]);
                   if (received->size() >= 3) ctx.halt();
                 }),
             ch));

  const net::NetMetrics metrics = net.run(/*max_rounds=*/400);
  ASSERT_EQ(received->size(), 3u);
  EXPECT_EQ((*received)[0], 1);
  EXPECT_EQ((*received)[1], 2);
  EXPECT_EQ((*received)[2], 3);
  // The fault plan actually fired, and the channel cleaned up after it.
  EXPECT_GT(metrics.dropped + metrics.duplicated, 0u);
  const auto& ch0 =
      static_cast<const net::ReliableChannel&>(net.process(0));
  const auto& ch1 =
      static_cast<const net::ReliableChannel&>(net.process(1));
  EXPECT_TRUE(ch0.inner_halted());
  EXPECT_TRUE(ch1.inner_halted());
  net::ReliableStats total = ch0.stats();
  total.merge(ch1.stats());
  EXPECT_GE(total.items_sent, 3u);
  if (metrics.dropped > 0) {
    EXPECT_GT(total.retransmissions, 0u);
  }
  if (metrics.duplicated > 0) {
    EXPECT_GT(total.duplicates_discarded, 0u);
  }
}

TEST(ReliableChannel, BoundedRetransmitsNameTheDeadLink) {
  // Node 1 crash-stops at round 3 while node 0 still owes it traffic. The
  // channel must not spin to the engine round limit: after max_retransmits
  // unacknowledged re-sends it raises a CheckError naming the dead link.
  net::Network::Options o;
  o.bit_budget = net::reliable_bit_budget(64, 16);
  o.seed = 42;
  o.faults.crashes = {{1, 3}};
  net::Network net(2, o);
  net.add_edge(0, 1);
  net.finalize();

  net::ReliableChannel::Options ch;
  ch.inner_bit_budget = 64;
  ch.max_retransmits = 5;  // keep the test short
  net.set_process(
      0, std::make_unique<net::ReliableChannel>(
             std::make_unique<Script>([](net::NodeContext& ctx, auto) {
               if (ctx.round() < 8) {
                 ctx.send(1, 1,
                          {static_cast<std::int64_t>(ctx.round()) + 1, 0, 0});
               } else {
                 ctx.halt();
               }
             }),
             ch));
  net.set_process(1, std::make_unique<net::ReliableChannel>(
                         std::make_unique<Script>([](auto&, auto) {}), ch));

  try {
    (void)net.run(/*max_rounds=*/400);
    FAIL() << "expected the dead-link CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("reliable link 0 -> 1 is dead"), std::string::npos)
        << what;
    EXPECT_NE(what.find("crash-stopped"), std::string::npos) << what;
  }
}

TEST(ReliableChannel, RetransmitBoundDoesNotTripOnHeavyLoss) {
  // 30% loss with a live peer: retransmission streaks reset on every ack,
  // so the default bound must never fire (the recovery guarantee of the
  // drop tests depends on it).
  net::Network::Options o;
  o.bit_budget = net::reliable_bit_budget(64, 32);
  o.seed = 9;
  o.faults.drop_probability = 0.3;
  o.faults.fault_seed = 3;
  net::Network net(2, o);
  net.add_edge(0, 1);
  net.finalize();

  auto received = std::make_shared<std::vector<std::int64_t>>();
  net::ReliableChannel::Options ch;
  ch.inner_bit_budget = 64;
  net.set_process(
      0, std::make_unique<net::ReliableChannel>(
             std::make_unique<Script>([](net::NodeContext& ctx, auto) {
               if (ctx.round() < 16) {
                 ctx.send(1, 1,
                          {static_cast<std::int64_t>(ctx.round()) + 1, 0, 0});
               } else {
                 ctx.halt();
               }
             }),
             ch));
  net.set_process(
      1, std::make_unique<net::ReliableChannel>(
             std::make_unique<Script>(
                 [received](net::NodeContext& ctx,
                            std::span<const net::Message> inbox) {
                   for (const net::Message& m : inbox)
                     received->push_back(m.field[0]);
                   if (received->size() >= 16) ctx.halt();
                 }),
             ch));
  const net::NetMetrics metrics = net.run(/*max_rounds=*/600);
  EXPECT_EQ(received->size(), 16u);
  EXPECT_GT(metrics.dropped, 0u);
}

core::MwParams clean_params(int k, std::uint64_t seed) {
  core::MwParams p;
  p.k = k;
  p.seed = seed;
  return p;
}

TEST(ReliableRecovery, MwGreedyMatchesFaultFreeSolutionUpToDropPointTwo) {
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kUniform, 60, 7);
  const core::MwGreedyOutcome baseline =
      core::run_mw_greedy(inst, clean_params(4, 11));
  const std::string baseline_fp =
      harness::solution_fingerprint(inst, baseline.solution);
  for (double drop : {0.05, 0.2}) {
    core::MwParams params = clean_params(4, 11);
    params.reliable = true;
    params.faults.drop_probability = drop;
    params.faults.fault_seed = 17;
    const core::MwGreedyOutcome out = core::run_mw_greedy(inst, params);
    EXPECT_TRUE(out.solution.is_feasible(inst)) << "drop=" << drop;
    EXPECT_EQ(harness::solution_fingerprint(inst, out.solution), baseline_fp)
        << "drop=" << drop;
    EXPECT_GT(out.metrics.dropped, 0u) << "drop=" << drop;
    EXPECT_GT(out.transport.retransmissions, 0u) << "drop=" << drop;
  }
}

TEST(ReliableRecovery, SurvivesTenPercentBootCrashes) {
  // Enough facilities that a 10% boot-crash plan actually removes some.
  workload::UniformParams gen;
  gen.num_facilities = 40;
  gen.num_clients = 160;
  gen.client_degree = 5;
  const fl::Instance inst = workload::uniform_random(gen, 19);
  core::MwParams params = clean_params(4, 11);
  params.reliable = true;
  params.boot_crash_fraction = 0.10;
  params.faults.drop_probability = 0.2;
  params.faults.fault_seed = 29;
  const harness::FaultRunReport report =
      harness::run_fault_scenario(inst, params, "boot-crash-10");
  EXPECT_TRUE(report.completed) << report.diagnostic;
  EXPECT_TRUE(report.feasible);
  // The baseline shares the boot-crash pruning (it depends only on
  // fault_seed), so the recovered run must reproduce it exactly.
  EXPECT_TRUE(report.matches_fault_free);
  EXPECT_GT(report.crashed, 0u);
  EXPECT_GT(report.dropped, 0u);
}

TEST(ReliableRecovery, RoundDilationUnderFourAtDropPointTwo) {
  // Acceptance bound from the issue: on the bipartite generator, the
  // recovered run at drop 0.2 finishes within 4x the rounds of the
  // fault-free run under the same transport.
  workload::UniformParams gen;
  gen.num_facilities = 30;
  gen.num_clients = 120;
  gen.client_degree = 4;
  const fl::Instance inst = workload::uniform_random(gen, 13);
  core::MwParams params = clean_params(4, 11);
  params.reliable = true;
  params.faults.drop_probability = 0.2;
  params.faults.fault_seed = 31;
  const harness::FaultRunReport report =
      harness::run_fault_scenario(inst, params, "dilation");
  EXPECT_TRUE(report.completed) << report.diagnostic;
  EXPECT_TRUE(report.matches_fault_free);
  EXPECT_GT(report.round_dilation, 0.0);
  EXPECT_LT(report.round_dilation, 4.0);
}

/// Samples a message-fault plan from `seed`: i.i.d. drops up to 0.2,
/// duplication up to 0.1, and (for odd seeds) a burst-loss chain.
net::FaultPlan::Options sample_plan(std::uint64_t seed) {
  Rng rng(derive_stream_seed(seed, 0x9E3779B97F4A7C15ULL, 0));
  net::FaultPlan::Options o;
  o.drop_probability = 0.1 + 0.1 * (rng.uniform_u64(100) / 99.0);
  o.duplicate_probability = 0.1 * (rng.uniform_u64(100) / 99.0);
  if (seed % 2 == 1) {
    o.burst.p_good_to_bad = 0.05;
    o.burst.p_bad_to_good = 0.5;
  }
  o.fault_seed = seed * 1315423911ULL + 3;
  return o;
}

TEST(ReliableRecovery, PropertySampledPlansRecoverOrFailDeterministically) {
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kUniform, 60, 7);
  const core::MwGreedyOutcome baseline =
      core::run_mw_greedy(inst, clean_params(4, 11));
  const std::string baseline_fp =
      harness::solution_fingerprint(inst, baseline.solution);

  int failures_without_recovery = 0;
  for (std::uint64_t sample = 0; sample < 4; ++sample) {
    const net::FaultPlan::Options plan = sample_plan(sample);

    // With recovery: always completes, feasible, bit-identical solution.
    core::MwParams recovered = clean_params(4, 11);
    recovered.reliable = true;
    recovered.faults = plan;
    const core::MwGreedyOutcome out = core::run_mw_greedy(inst, recovered);
    EXPECT_TRUE(out.solution.is_feasible(inst)) << "sample " << sample;
    EXPECT_EQ(harness::solution_fingerprint(inst, out.solution), baseline_fp)
        << "sample " << sample;

    // Without recovery: the run either survives or fails, but it must do
    // the same thing twice, and any failure must name the first lost
    // message.
    core::MwParams bare = clean_params(4, 11);
    bare.faults = plan;
    const auto run_bare = [&]() -> std::string {
      try {
        const core::MwGreedyOutcome o = core::run_mw_greedy(inst, bare);
        return "ok:" + harness::solution_fingerprint(inst, o.solution);
      } catch (const CheckError& e) {
        return std::string("CheckError: ") + e.what();
      }
    };
    const std::string first = run_bare();
    EXPECT_EQ(first, run_bare()) << "sample " << sample;
    if (first.find("CheckError") != std::string::npos) {
      ++failures_without_recovery;
      EXPECT_NE(first.find("first lost message was"), std::string::npos)
          << first;
      EXPECT_NE(first.find("dropped total"), std::string::npos) << first;
    }
  }
  // At >= 10% i.i.d. drop the unprotected protocol does not get lucky on
  // every sampled plan.
  EXPECT_GT(failures_without_recovery, 0);
}

}  // namespace
}  // namespace dflp
