// Tests for the reconstructed PODC'05 distributed greedy: feasibility,
// CONGEST compliance, determinism, round scaling, trade-off direction, and
// the ablation knobs. Parameterized sweeps cover (family x k x seed).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/mw_greedy.h"
#include "harness/runner.h"
#include "seq/brute_force.h"
#include "seq/greedy.h"
#include "seq/trivial.h"
#include "workload/generators.h"

namespace dflp::core {
namespace {

MwParams params_k(int k, std::uint64_t seed = 1) {
  MwParams p;
  p.k = k;
  p.seed = seed;
  return p;
}

TEST(MwGreedy, FeasibleOnTinyHandInstance) {
  fl::InstanceBuilder b;
  const auto f0 = b.add_facility(2.0);
  const auto f1 = b.add_facility(100.0);
  const auto c0 = b.add_client();
  const auto c1 = b.add_client();
  b.connect(f0, c0, 1.0);
  b.connect(f0, c1, 1.0);
  b.connect(f1, c0, 1.0);
  b.connect(f1, c1, 1.0);
  const fl::Instance inst = b.build();
  const MwGreedyOutcome out = run_mw_greedy(inst, params_k(4));
  EXPECT_TRUE(out.solution.is_feasible(inst));
  // Opening the cheap facility alone is optimal (4.0); the distributed
  // greedy should not be forced into the 100-cost decoy.
  EXPECT_LE(out.solution.cost(inst), 10.0);
}

TEST(MwGreedy, RoundsGrowWithKAndStayLinear) {
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kUniform, 80, 5);
  std::uint64_t prev_rounds = 0;
  for (int k : {1, 4, 16, 64}) {
    const MwGreedyOutcome out = run_mw_greedy(inst, params_k(k));
    EXPECT_GE(out.metrics.rounds, prev_rounds) << "k=" << k;
    prev_rounds = out.metrics.rounds;
    // 4 rounds per sub-phase, levels*subphases sub-phases, + mop-up slack.
    const std::uint64_t budget =
        4ULL * static_cast<std::uint64_t>(out.schedule.levels) *
            static_cast<std::uint64_t>(out.schedule.subphases) +
        8;
    EXPECT_LE(out.metrics.rounds, budget) << "k=" << k;
  }
}

TEST(MwGreedy, CongestBudgetRespected) {
  for (const auto family :
       {workload::Family::kUniform, workload::Family::kPowerLaw,
        workload::Family::kGreedyTight}) {
    const fl::Instance inst = workload::make_family_instance(family, 60, 2);
    const MwGreedyOutcome out = run_mw_greedy(inst, params_k(9));
    EXPECT_LE(out.metrics.max_message_bits, out.schedule.bit_budget)
        << workload::family_name(family);
    EXPECT_GT(out.metrics.messages, 0u);
  }
}

TEST(MwGreedy, DeterministicForFixedSeed) {
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kUniform, 50, 9);
  const MwGreedyOutcome a = run_mw_greedy(inst, params_k(4, 123));
  const MwGreedyOutcome b = run_mw_greedy(inst, params_k(4, 123));
  EXPECT_DOUBLE_EQ(a.solution.cost(inst), b.solution.cost(inst));
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i)
    EXPECT_EQ(a.solution.is_open(i), b.solution.is_open(i));
}

TEST(MwGreedy, LargeKApproachesCentralizedGreedy) {
  // With k large enough that beta -> 1.5 and many scales, the distributed
  // greedy's cost lands within a small constant of centralized greedy,
  // averaged over instances.
  double dist_total = 0.0;
  double greedy_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const fl::Instance inst =
        workload::make_family_instance(workload::Family::kUniform, 60, seed);
    dist_total += run_mw_greedy(inst, params_k(64, seed)).solution.cost(inst);
    greedy_total += seq::greedy_solve(inst).solution.cost(inst);
  }
  EXPECT_LE(dist_total, 3.0 * greedy_total);
}

TEST(MwGreedy, TradeoffDirectionOnAverage) {
  // The paper's headline: larger k should not cost solution quality.
  // Averaged over seeds, k=64 must beat k=1 on the power-law family (where
  // the spread term (m*rho)^(1/sqrt(k)) bites hardest).
  double k1 = 0.0;
  double k64 = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const fl::Instance inst = workload::make_family_instance(
        workload::Family::kPowerLaw, 60, seed);
    k1 += run_mw_greedy(inst, params_k(1, seed)).solution.cost(inst);
    k64 += run_mw_greedy(inst, params_k(64, seed)).solution.cost(inst);
  }
  EXPECT_LT(k64, k1);
}

TEST(MwGreedy, MopupDisabledReportsStragglers) {
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kPowerLaw, 40, 3);
  MwParams p = params_k(1, 3);
  p.mopup = false;
  const MwGreedyOutcome out = run_mw_greedy(inst, p);
  // Without mop-up feasibility is not guaranteed; the outcome must be
  // internally consistent: infeasible => some client unassigned.
  if (!out.solution.is_feasible(inst)) {
    int unassigned = 0;
    for (fl::ClientId j = 0; j < inst.num_clients(); ++j)
      if (out.solution.assignment(j) == fl::kNoFacility) ++unassigned;
    EXPECT_GT(unassigned, 0);
  }
}

TEST(MwGreedy, MopupCountsReported) {
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kUniform, 40, 4);
  const MwGreedyOutcome out = run_mw_greedy(inst, params_k(4, 4));
  EXPECT_GE(out.mopup_clients, 0);
  EXPECT_LE(out.mopup_clients, inst.num_clients());
}

TEST(MwGreedy, AnyAcceptRuleStillFeasible) {
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kUniform, 50, 6);
  MwParams p = params_k(4, 6);
  p.accept_rule = AcceptRule::kAnyAccept;
  const MwGreedyOutcome out = run_mw_greedy(inst, p);
  EXPECT_TRUE(out.solution.is_feasible(inst));
}

TEST(MwGreedy, HandlesAllZeroCosts) {
  fl::InstanceBuilder b;
  const auto f = b.add_facility(0.0);
  for (int j = 0; j < 4; ++j) b.connect(f, b.add_client(), 0.0);
  const fl::Instance inst = b.build();
  const MwGreedyOutcome out = run_mw_greedy(inst, params_k(1));
  EXPECT_TRUE(out.solution.is_feasible(inst));
  EXPECT_DOUBLE_EQ(out.solution.cost(inst), 0.0);
}

TEST(MwGreedy, HandlesSingleClientSingleFacility) {
  fl::InstanceBuilder b;
  const auto f = b.add_facility(3.0);
  b.connect(f, b.add_client(), 2.0);
  const fl::Instance inst = b.build();
  const MwGreedyOutcome out = run_mw_greedy(inst, params_k(2));
  EXPECT_TRUE(out.solution.is_feasible(inst));
  EXPECT_DOUBLE_EQ(out.solution.cost(inst), 5.0);
}

TEST(MwGreedy, StarInstancePicksHubLikeSolution) {
  const fl::Instance inst = workload::star(6, 10, 2);
  const MwGreedyOutcome out = run_mw_greedy(inst, params_k(16, 2));
  EXPECT_TRUE(out.solution.is_feasible(inst));
  // OPT opens spokes or the hub; either way cost stays moderate. Guard
  // against the pathological everything-open outcome.
  EXPECT_LT(out.solution.cost(inst),
            0.9 * seq::open_all_solve(inst).cost(inst) +
                seq::greedy_solve(inst).solution.cost(inst));
}

TEST(MwGreedy, FaultInjectionFailsLoudlyNotSilently) {
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kUniform, 40, 7);
  MwParams p = params_k(4, 7);
  p.faults.drop_probability = 0.5;
  // With heavy loss the mop-up grant can vanish; the protocol must either
  // still produce a feasible solution (lucky drops) or throw a CheckError —
  // never return an infeasible solution as if it were fine.
  try {
    const MwGreedyOutcome out = run_mw_greedy(inst, p);
    EXPECT_TRUE(out.solution.is_feasible(inst));
  } catch (const CheckError&) {
    SUCCEED();
  }
}

// --------------------------- parameterized sweep --------------------------

struct SweepCase {
  workload::Family family;
  int k;
  std::uint64_t seed;
};

class MwGreedySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MwGreedySweep, FeasibleBoundedAndCongestCompliant) {
  const SweepCase c = GetParam();
  const fl::Instance inst = workload::make_family_instance(c.family, 48,
                                                           c.seed);
  const MwGreedyOutcome out = run_mw_greedy(inst, params_k(c.k, c.seed));
  std::string why;
  ASSERT_TRUE(out.solution.is_feasible(inst, &why))
      << workload::family_name(c.family) << " k=" << c.k << ": " << why;
  EXPECT_LE(out.metrics.max_message_bits, out.schedule.bit_budget);
  // Never worse than opening everything (sanity anchor) by more than the
  // mop-up slack: mop-up itself only ever opens cheapest facilities.
  EXPECT_LE(out.solution.cost(inst),
            inst.open_all_cost() + inst.cost_profile().total_connection);
  // Cost at least the trivial lower bound.
  const harness::LowerBound lb = harness::compute_lower_bound(inst);
  EXPECT_GE(out.solution.cost(inst), lb.value - 1e-6);
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const auto family :
       {workload::Family::kUniform, workload::Family::kEuclidean,
        workload::Family::kPowerLaw, workload::Family::kGreedyTight,
        workload::Family::kStar}) {
    for (int k : {1, 4, 16}) {
      for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        cases.push_back({family, k, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Families, MwGreedySweep, ::testing::ValuesIn(sweep_cases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      std::string name = workload::family_name(info.param.family) + "_k" +
                         std::to_string(info.param.k) + "_s" +
                         std::to_string(info.param.seed);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// Small instances where brute force is available: the distributed greedy
// must sit between OPT and the H_n * beta-ish envelope.
class MwGreedyVsOpt : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MwGreedyVsOpt, NeverBelowOptAndWithinEnvelope) {
  workload::UniformParams p;
  p.num_facilities = 6;
  p.num_clients = 16;
  p.client_degree = 3;
  const fl::Instance inst = workload::uniform_random(p, GetParam());
  const auto brute = seq::brute_force_solve(inst);
  ASSERT_TRUE(brute.has_value());
  for (int k : {1, 9, 36}) {
    const MwGreedyOutcome out = run_mw_greedy(inst, params_k(k, GetParam()));
    const double cost = out.solution.cost(inst);
    EXPECT_GE(cost, brute->optimum - 1e-9) << "k=" << k;
    // Generous envelope: the hard guarantee involves (m*rho)^(1/sqrt k);
    // on these benign instances 25x OPT flags real regressions without
    // flaking.
    EXPECT_LE(cost, 25.0 * brute->optimum) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MwGreedyVsOpt,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace dflp::core
