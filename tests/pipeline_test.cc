// Tests for the two-stage pipeline: fractional stage vs the exact LP,
// rounding losses, and the end-to-end composition.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "core/frac_lp.h"
#include "core/pipeline.h"
#include "core/rand_round.h"
#include "lp/ufl_lp.h"
#include "seq/brute_force.h"
#include "workload/generators.h"

namespace dflp::core {
namespace {

MwParams params_k(int k, std::uint64_t seed = 1) {
  MwParams p;
  p.k = k;
  p.seed = seed;
  return p;
}

TEST(FracLp, OutputIsFeasibleAndAboveLpOptimum) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    workload::UniformParams p;
    p.num_facilities = 6;
    p.num_clients = 15;
    p.client_degree = 3;
    const fl::Instance inst = workload::uniform_random(p, seed);
    const FracOutcome frac = run_frac_lp(inst, params_k(4, seed));
    std::string why;
    ASSERT_TRUE(frac.fractional.is_feasible(inst, 1e-7, &why))
        << "seed " << seed << ": " << why;
    const auto lp = lp::solve_ufl_lp(inst);
    ASSERT_TRUE(lp.has_value());
    // Any feasible point is bounded below by the LP optimum.
    EXPECT_GE(frac.fractional.value(inst), lp->optimum - 1e-6)
        << "seed " << seed;
  }
}

TEST(FracLp, LargerKTightensFractionalValueOnAverage) {
  double k1 = 0.0;
  double k36 = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const fl::Instance inst = workload::make_family_instance(
        workload::Family::kPowerLaw, 50, seed);
    k1 += run_frac_lp(inst, params_k(1, seed)).fractional.value(inst);
    k36 += run_frac_lp(inst, params_k(36, seed)).fractional.value(inst);
  }
  EXPECT_LE(k36, k1 * 1.05);  // at minimum, no regression; usually better
}

TEST(FracLp, RoundsFollowTwoPerSubphaseLayout) {
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kUniform, 60, 2);
  const FracOutcome frac = run_frac_lp(inst, params_k(9, 2));
  const std::uint64_t budget =
      2ULL * static_cast<std::uint64_t>(frac.schedule.levels) *
          static_cast<std::uint64_t>(frac.schedule.subphases) +
      8;
  EXPECT_LE(frac.metrics.rounds, budget);
}

TEST(FracLp, CongestCompliant) {
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kPowerLaw, 60, 3);
  const FracOutcome frac = run_frac_lp(inst, params_k(16, 3));
  EXPECT_LE(frac.metrics.max_message_bits, frac.schedule.bit_budget);
}

TEST(FracLp, YValuesLiveOnTheDeclaredGrid) {
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kUniform, 40, 4);
  const FracOutcome frac = run_frac_lp(inst, params_k(4, 4));
  for (double y : frac.fractional.y) {
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, 1.0);
    if (y > 0.0 && y < 1.0) {
      // y = beta^(raises - y_scale): log_beta(y) must be a negative int.
      const double steps = std::log(y) / std::log(frac.schedule.beta);
      EXPECT_NEAR(steps, std::round(steps), 1e-6);
    }
  }
}

TEST(FracLp, DeterministicForFixedSeed) {
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kUniform, 40, 5);
  const FracOutcome a = run_frac_lp(inst, params_k(4, 99));
  const FracOutcome b = run_frac_lp(inst, params_k(4, 99));
  EXPECT_EQ(a.fractional.y, b.fractional.y);
  EXPECT_EQ(a.fractional.x, b.fractional.x);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
}

// -------------------------------------------------------------- rounding --

TEST(RandRound, FeasibleFromExactLpSolution) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    workload::UniformParams p;
    p.num_facilities = 6;
    p.num_clients = 14;
    p.client_degree = 3;
    const fl::Instance inst = workload::uniform_random(p, seed);
    const auto lp = lp::solve_ufl_lp(inst);
    ASSERT_TRUE(lp.has_value());
    MwParams mw = params_k(4, seed);
    const MwSchedule sched = derive_schedule(inst, mw);
    const RoundOutcome out =
        run_rand_round(inst, lp->fractional, sched, mw);
    EXPECT_TRUE(out.solution.is_feasible(inst)) << "seed " << seed;
    EXPECT_GE(out.solution.cost(inst), lp->optimum - 1e-6);
  }
}

TEST(RandRound, RejectsInfeasibleFractionalInput) {
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kUniform, 30, 1);
  fl::FractionalSolution bogus(inst);  // all zeros: uncovered
  MwParams mw = params_k(4, 1);
  const MwSchedule sched = derive_schedule(inst, mw);
  EXPECT_THROW(run_rand_round(inst, bogus, sched, mw), CheckError);
}

TEST(RandRound, IntegralYRoundsToExactlyThoseFacilities) {
  // With y in {0,1}, phase-1 opens every y=1 facility deterministically
  // (probability 1) and no y=0 facility ever opens except via fallback.
  workload::UniformParams p;
  p.num_facilities = 5;
  p.num_clients = 12;
  p.client_degree = 3;
  const fl::Instance inst = workload::uniform_random(p, 3);
  fl::FractionalSolution frac(inst);
  // Open everything fractionally at 1, serve each client by cheapest edge.
  std::fill(frac.y.begin(), frac.y.end(), 1.0);
  for (fl::ClientId j = 0; j < inst.num_clients(); ++j)
    frac.x[inst.client_edge_offset(j)] = 1.0;
  MwParams mw = params_k(2, 3);
  const MwSchedule sched = derive_schedule(inst, mw);
  const RoundOutcome out = run_rand_round(inst, frac, sched, mw);
  EXPECT_TRUE(out.solution.is_feasible(inst));
  EXPECT_EQ(out.fallback_clients, 0);
  for (fl::ClientId j = 0; j < inst.num_clients(); ++j) {
    // Every client must sit on its cheapest facility (all are open).
    EXPECT_EQ(out.solution.assignment(j),
              inst.client_edges(j).front().facility);
  }
}

TEST(RandRound, LossStaysWithinLogEnvelope) {
  // The analysis gives E[cost] = O(log N) * frac_value; assert a generous
  // deterministic envelope over several seeds to catch gross regressions.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    workload::UniformParams p;
    p.num_facilities = 8;
    p.num_clients = 40;
    p.client_degree = 4;
    const fl::Instance inst = workload::uniform_random(p, seed);
    MwParams mw = params_k(9, seed);
    const FracOutcome frac = run_frac_lp(inst, mw);
    const RoundOutcome out =
        run_rand_round(inst, frac.fractional, frac.schedule, mw);
    const double envelope =
        10.0 * frac.schedule.rounding_phases * frac.fractional.value(inst) +
        inst.open_all_cost();
    EXPECT_LE(out.solution.cost(inst), envelope) << "seed " << seed;
  }
}

// -------------------------------------------------------------- pipeline --

TEST(Pipeline, EndToEndFeasibleAndAboveOpt) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    workload::UniformParams p;
    p.num_facilities = 6;
    p.num_clients = 15;
    p.client_degree = 3;
    const fl::Instance inst = workload::uniform_random(p, seed);
    const PipelineOutcome out = run_pipeline(inst, params_k(4, seed));
    EXPECT_TRUE(out.solution.is_feasible(inst)) << "seed " << seed;
    const auto brute = seq::brute_force_solve(inst);
    ASSERT_TRUE(brute.has_value());
    EXPECT_GE(out.solution.cost(inst), brute->optimum - 1e-9);
    EXPECT_GE(out.fractional_value, 0.0);
    EXPECT_EQ(out.total_rounds(),
              out.frac_metrics.rounds + out.round_metrics.rounds);
  }
}

TEST(Pipeline, TotalRoundsSplitKPlusLogN) {
  const fl::Instance inst =
      workload::make_family_instance(workload::Family::kUniform, 80, 7);
  const PipelineOutcome out = run_pipeline(inst, params_k(4, 7));
  // Stage 2 is Theta(log N): far below stage 1's O(k * instance-constant).
  EXPECT_LE(out.round_metrics.rounds,
            2ULL * static_cast<std::uint64_t>(out.schedule.rounding_phases) +
                8);
  EXPECT_GT(out.frac_metrics.rounds, 0u);
}

TEST(Pipeline, RoundingBoostReducesFallbacks) {
  // Boosting opening probabilities makes stragglers rarer (at higher
  // opening cost): fallback count must be monotone non-increasing in
  // expectation; assert over an aggregate.
  int fallback_low = 0;
  int fallback_high = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const fl::Instance inst = workload::make_family_instance(
        workload::Family::kUniform, 60, seed);
    MwParams lo = params_k(4, seed);
    lo.rounding_boost = 0.5;
    MwParams hi = params_k(4, seed);
    hi.rounding_boost = 4.0;
    fallback_low += run_pipeline(inst, lo).round_fallback_clients;
    fallback_high += run_pipeline(inst, hi).round_fallback_clients;
  }
  EXPECT_LE(fallback_high, fallback_low);
}

}  // namespace
}  // namespace dflp::core
