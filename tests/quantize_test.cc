// Tests for the on-wire cost codec and the derived schedule.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "core/params.h"
#include "core/quantize.h"
#include "netsim/message.h"
#include "netsim/network.h"
#include "workload/generators.h"

namespace dflp::core {
namespace {

TEST(CostCodec, ZeroIsExact) {
  const CostCodec codec(1.0, 0.25);
  EXPECT_EQ(codec.encode(0.0), 0);
  EXPECT_DOUBLE_EQ(codec.decode(0), 0.0);
}

TEST(CostCodec, DecodeOverestimatesByAtMostOnePlusGamma) {
  const CostCodec codec(0.5, 0.25);
  for (double c : {0.5, 0.7, 1.0, 3.14159, 100.0, 1e6, 0.5000001}) {
    const std::int64_t code = codec.encode(c);
    const double back = codec.decode(code);
    EXPECT_GE(back * (1.0 + 0.25) + 1e-12, c) << c;  // not far below
    EXPECT_LE(back, c * (1.0 + 0.25) + 1e-9) << c;   // at most one bucket up
  }
}

TEST(CostCodec, BelowAnchorMapsToBucketOne) {
  const CostCodec codec(2.0, 0.25);
  EXPECT_EQ(codec.encode(0.001), 1);
  EXPECT_EQ(codec.encode(2.0), 1);
  EXPECT_DOUBLE_EQ(codec.decode(1), 2.0);
}

TEST(CostCodec, MonotoneInCost) {
  const CostCodec codec(1.0, 0.25);
  std::int64_t prev = -1;
  for (double c = 1.0; c < 1e9; c *= 1.7) {
    const std::int64_t code = codec.encode(c);
    EXPECT_GE(code, prev);
    prev = code;
  }
}

TEST(CostCodec, CodesStayLogarithmic) {
  const CostCodec codec(1.0, 0.25);
  // max code for spread 1e9 must fit comfortably in O(log) bits.
  const std::int64_t code = codec.max_code(1e9);
  EXPECT_LT(net::bits_for_value(code), 9);  // ~93 buckets -> 8 bits
}

TEST(CostCodec, RejectsInvalidInput) {
  EXPECT_THROW(CostCodec(0.0, 0.25), CheckError);
  EXPECT_THROW(CostCodec(1.0, 0.0), CheckError);
  const CostCodec codec(1.0, 0.25);
  EXPECT_THROW((void)codec.encode(-1.0), CheckError);
  EXPECT_THROW((void)codec.decode(-2), CheckError);
}

// --------------------------------------------------------------- schedule --

fl::Instance sample_instance(std::uint64_t seed = 1) {
  workload::UniformParams p;
  p.num_facilities = 12;
  p.num_clients = 60;
  p.client_degree = 4;
  return workload::uniform_random(p, seed);
}

TEST(Schedule, SubphasesScaleAsSqrtK) {
  const fl::Instance inst = sample_instance();
  for (const auto& [k, expect_l] :
       std::vector<std::pair<int, int>>{{1, 1}, {2, 2}, {4, 2}, {9, 3},
                                        {16, 4}, {64, 8}}) {
    MwParams params;
    params.k = k;
    const MwSchedule s = derive_schedule(inst, params);
    EXPECT_EQ(s.subphases, expect_l) << "k=" << k;
  }
}

TEST(Schedule, BetaShrinksAsKGrows) {
  const fl::Instance inst = sample_instance();
  double prev = std::numeric_limits<double>::infinity();
  for (int k : {1, 4, 16, 64, 256}) {
    MwParams params;
    params.k = k;
    const MwSchedule s = derive_schedule(inst, params);
    EXPECT_LE(s.beta, prev + 1e-12) << "k=" << k;
    EXPECT_GE(s.beta, 1.5);
    prev = s.beta;
  }
}

TEST(Schedule, ThresholdsAscendAndStartAtZero) {
  MwParams params;
  params.k = 9;
  const MwSchedule s = derive_schedule(sample_instance(), params);
  ASSERT_GE(s.thresholds.size(), 2u);
  EXPECT_DOUBLE_EQ(s.thresholds.front(), 0.0);
  for (std::size_t i = 1; i < s.thresholds.size(); ++i)
    EXPECT_GT(s.thresholds[i], s.thresholds[i - 1]);
  EXPECT_EQ(s.levels, static_cast<int>(s.thresholds.size()));
}

TEST(Schedule, ThresholdLadderCoversStarRatioRange) {
  const fl::Instance inst = sample_instance();
  MwParams params;
  params.k = 4;
  const MwSchedule s = derive_schedule(inst, params);
  const auto& profile = inst.cost_profile();
  const double deg = inst.max_facility_degree();
  // The top rung must dominate any possible star ratio.
  EXPECT_GE(s.thresholds.back(), profile.max_value * (deg + 1) / s.beta);
}

TEST(Schedule, BitBudgetMatchesNetworkSize) {
  const fl::Instance inst = sample_instance();
  MwParams params;
  const MwSchedule s = derive_schedule(inst, params);
  EXPECT_EQ(s.num_network_nodes, 72);
  EXPECT_EQ(s.bit_budget, net::congest_bit_budget(72));
}

TEST(Schedule, RoundingPhasesAreLogarithmic) {
  const fl::Instance small = sample_instance();
  workload::UniformParams big_p;
  big_p.num_facilities = 100;
  big_p.num_clients = 4000;
  const fl::Instance big = workload::uniform_random(big_p, 1);
  MwParams params;
  const int small_phases = derive_schedule(small, params).rounding_phases;
  const int big_phases = derive_schedule(big, params).rounding_phases;
  EXPECT_GT(big_phases, small_phases);
  EXPECT_LT(big_phases, 4 * small_phases);
}

TEST(Schedule, SubphaseOverrideHonored) {
  MwParams params;
  params.k = 16;
  params.subphases_override = 1;
  const MwSchedule s = derive_schedule(sample_instance(), params);
  EXPECT_EQ(s.subphases, 1);
}

TEST(Schedule, RejectsNonPositiveK) {
  MwParams params;
  params.k = 0;
  EXPECT_THROW(derive_schedule(sample_instance(), params), CheckError);
}

TEST(Schedule, DescribeContainsKeyFields) {
  MwParams params;
  params.k = 4;
  const std::string d = derive_schedule(sample_instance(), params).describe();
  EXPECT_NE(d.find("k=4"), std::string::npos);
  EXPECT_NE(d.find("beta="), std::string::npos);
}

TEST(Schedule, YScaleSufficientForLowStart) {
  // beta^(-y_scale) <= 1/(m * rho * (deg+1)): the first raise must not
  // already overshoot the LP mass.
  const fl::Instance inst = sample_instance();
  MwParams params;
  params.k = 9;
  const MwSchedule s = derive_schedule(inst, params);
  const double m = inst.num_facilities();
  const double rho = inst.cost_profile().rho;
  const double deg = inst.max_facility_degree();
  EXPECT_LE(std::pow(s.beta, -s.y_scale), 1.0 / (m * rho * (deg + 1)) + 1e-12);
}

}  // namespace
}  // namespace dflp::core
