// Tests for the epoch-batched streaming solver: warm-started re-solves
// must be bit-identical to the from-scratch baseline on every epoch, the
// component decomposition must agree with a whole-instance solve under a
// pinned schedule, and recourse accounting must be sane.
#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/mw_greedy.h"
#include "core/params.h"
#include "fl/delta.h"
#include "service/streaming_solver.h"
#include "workload/stream.h"

namespace dflp::service {
namespace {

workload::StreamParams small_stream() {
  workload::StreamParams p;
  p.num_cells = 12;
  p.facilities_per_cell = 3;
  p.initial_clients = 60;
  p.client_degree = 2;
  p.arrival_fraction = 0.6;
  return p;
}

/// Capacity bounds that dominate the whole stream: costs come from the
/// generator's fixed ranges, the facility set is static, and the node
/// count is bounded by initial + every possible arrival.
core::InstanceBounds stream_bounds(const workload::StreamParams& p,
                                   std::int64_t total_events) {
  core::InstanceBounds b;
  b.max_facilities = p.num_cells * p.facilities_per_cell;
  b.max_network_nodes = static_cast<std::int32_t>(
      b.max_facilities + p.initial_clients + total_events);
  b.min_positive_cost = std::min(p.opening_lo, p.connection_lo);
  b.max_cost = std::max(p.opening_hi, p.connection_hi);
  // A cell facility can in principle serve every client ever alive.
  b.max_facility_degree = static_cast<int>(p.initial_clients + total_events);
  return b;
}

StreamingOptions make_options(const workload::StreamParams& p,
                              std::int64_t total_events, bool warm,
                              SolveEngine engine) {
  StreamingOptions opt;
  opt.params.k = 4;
  opt.params.seed = 42;
  opt.bounds = stream_bounds(p, total_events);
  opt.engine = engine;
  opt.warm_start = warm;
  return opt;
}

void expect_same_state(const StreamingSolver& a, const StreamingSolver& b) {
  const fl::Instance& inst = a.snapshot().instance();
  ASSERT_EQ(inst.num_clients(), b.snapshot().instance().num_clients());
  ASSERT_EQ(inst.num_facilities(),
            b.snapshot().instance().num_facilities());
  for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i)
    EXPECT_EQ(a.solution().is_open(i), b.solution().is_open(i))
        << "facility " << i;
  for (fl::ClientId j = 0; j < inst.num_clients(); ++j)
    EXPECT_EQ(a.solution().assignment(j), b.solution().assignment(j))
        << "client " << j;
}

void run_warm_vs_cold(SolveEngine engine) {
  const workload::StreamParams sp = small_stream();
  constexpr std::int32_t kEpochs = 5;
  constexpr std::int32_t kEventsPerEpoch = 15;
  constexpr std::int64_t kTotal = kEpochs * kEventsPerEpoch;

  workload::ClientStream warm_stream(sp, 7);
  workload::ClientStream cold_stream(sp, 7);
  StreamingSolver warm(warm_stream.initial_snapshot(),
                       make_options(sp, kTotal, /*warm=*/true, engine));
  StreamingSolver cold(cold_stream.initial_snapshot(),
                       make_options(sp, kTotal, /*warm=*/false, engine));

  // Epoch 0 (the constructor's solve) must already agree.
  EXPECT_EQ(warm.last_report().cost, cold.last_report().cost);
  expect_same_state(warm, cold);

  std::int64_t total_reused = 0;
  for (std::int32_t e = 0; e < kEpochs; ++e) {
    fl::DeltaLog batch;
    warm_stream.fill_epoch(kEventsPerEpoch, batch);
    for (const fl::Delta& d : batch.deltas()) {
      warm.ingest(d);
      cold.ingest(d);
    }
    const EpochReport wr = warm.commit_epoch();
    const EpochReport cr = cold.commit_epoch();

    // Identical final solution cost on every epoch — exact, not approx.
    EXPECT_EQ(wr.cost, cr.cost) << "epoch " << e;
    EXPECT_EQ(wr.fractional_value, cr.fractional_value) << "epoch " << e;
    expect_same_state(warm, cold);

    // Identical recourse (same solutions on both sides).
    EXPECT_EQ(wr.recourse.facilities_opened, cr.recourse.facilities_opened);
    EXPECT_EQ(wr.recourse.clients_reassigned,
              cr.recourse.clients_reassigned);

    EXPECT_EQ(cr.reused_components, 0);
    EXPECT_EQ(cr.solved_components, cr.components);
    EXPECT_EQ(wr.reused_components + wr.solved_components, wr.components);
    total_reused += wr.reused_components;

    // The warm run must do strictly less solver work whenever anything is
    // reused.
    if (wr.reused_components > 0) {
      EXPECT_LT(wr.messages, cr.messages) << "epoch " << e;
    }
  }
  // With 12 cells and 15 events per epoch some cells stay untouched.
  EXPECT_GT(total_reused, 0);
}

TEST(StreamingSolver, WarmEqualsColdMwGreedy) {
  run_warm_vs_cold(SolveEngine::kMwGreedy);
}

TEST(StreamingSolver, WarmEqualsColdPipeline) {
  run_warm_vs_cold(SolveEngine::kPipeline);
}

TEST(StreamingSolver, ComponentDecompositionMatchesGlobalSolve) {
  // Cells are connectivity components, so a whole-instance mw-greedy run
  // under the same pinned schedule must produce the very same solution the
  // service assembles from per-component solves (the algorithm is
  // deterministic and tie-breaks only on relative node order, which the
  // monotone renumbering preserves).
  const workload::StreamParams sp = small_stream();
  workload::ClientStream stream(sp, 11);
  const StreamingOptions opt =
      make_options(sp, 0, /*warm=*/true, SolveEngine::kMwGreedy);
  StreamingSolver service(stream.initial_snapshot(), opt);

  core::MwParams params = opt.params;
  const core::MwSchedule pinned =
      core::derive_schedule_from_bounds(opt.bounds, opt.params);
  params.pinned_schedule = &pinned;
  const fl::Instance& inst = stream.initial_snapshot().instance();
  const core::MwGreedyOutcome global = core::run_mw_greedy(inst, params);

  EXPECT_EQ(service.last_report().cost, global.solution.cost(inst));
  for (fl::FacilityId i = 0; i < inst.num_facilities(); ++i)
    EXPECT_EQ(service.solution().is_open(i), global.solution.is_open(i));
  for (fl::ClientId j = 0; j < inst.num_clients(); ++j)
    EXPECT_EQ(service.solution().assignment(j),
              global.solution.assignment(j));
}

TEST(StreamingSolver, EmptyEpochReusesEverything) {
  const workload::StreamParams sp = small_stream();
  workload::ClientStream stream(sp, 3);
  StreamingSolver service(
      stream.initial_snapshot(),
      make_options(sp, 0, /*warm=*/true, SolveEngine::kMwGreedy));
  const double cost0 = service.last_report().cost;

  const EpochReport rep = service.commit_epoch();
  EXPECT_EQ(rep.epoch, 1);
  EXPECT_EQ(rep.events, 0u);
  EXPECT_EQ(rep.solved_components, 0);
  EXPECT_EQ(rep.reused_components, rep.components);
  EXPECT_EQ(rep.rounds, 0u);
  EXPECT_EQ(rep.messages, 0u);
  EXPECT_EQ(rep.cost, cost0);
  EXPECT_EQ(rep.recourse.facilities_opened, 0);
  EXPECT_EQ(rep.recourse.facilities_closed, 0);
  EXPECT_EQ(rep.recourse.clients_reassigned, 0);
  EXPECT_EQ(rep.recourse.clients_arrived, 0);
  EXPECT_EQ(rep.recourse.clients_departed, 0);
}

TEST(StreamingSolver, RecourseCountsArrivalsAndDepartures) {
  const workload::StreamParams sp = small_stream();
  workload::ClientStream stream(sp, 5);
  StreamingSolver service(
      stream.initial_snapshot(),
      make_options(sp, 64, /*warm=*/true, SolveEngine::kMwGreedy));

  // Recourse is a snapshot diff, so an arrive+depart of the same client
  // inside one epoch cancels; count net membership changes here too.
  fl::DeltaLog batch;
  stream.fill_epoch(20, batch);
  std::set<fl::NodeKey> arrived;
  std::int64_t departures = 0;
  for (const fl::Delta& d : batch.deltas()) {
    if (d.kind == fl::Delta::Kind::kClientArrive) {
      arrived.insert(d.client);
    } else if (d.kind == fl::Delta::Kind::kClientDepart) {
      if (arrived.erase(d.client) == 0) ++departures;
    }
    service.ingest(d);
  }
  const auto arrivals = static_cast<std::int64_t>(arrived.size());
  const EpochReport rep = service.commit_epoch();
  EXPECT_EQ(rep.recourse.clients_arrived, arrivals);
  EXPECT_EQ(rep.recourse.clients_departed, departures);
  EXPECT_EQ(rep.num_clients,
            sp.initial_clients + arrivals - departures);
}

TEST(StreamingSolver, RejectsUndersizedBounds) {
  const workload::StreamParams sp = small_stream();
  workload::ClientStream stream(sp, 1);
  StreamingOptions opt =
      make_options(sp, 0, /*warm=*/true, SolveEngine::kMwGreedy);
  opt.bounds.max_network_nodes = 4;  // way below the initial snapshot
  EXPECT_THROW(StreamingSolver(stream.initial_snapshot(), std::move(opt)),
               CheckError);
}

TEST(DeriveSchedule, PinnedScheduleWinsAndBoundsDominate) {
  const workload::StreamParams sp = small_stream();
  workload::ClientStream stream(sp, 9);
  const fl::Instance& inst = stream.initial_snapshot().instance();

  core::MwParams params;
  params.k = 4;
  const core::InstanceBounds bounds = stream_bounds(sp, 100);
  EXPECT_TRUE(bounds.dominates(core::InstanceBounds::of(inst)));

  const core::MwSchedule from_bounds =
      core::derive_schedule_from_bounds(bounds, params);
  params.pinned_schedule = &from_bounds;
  const core::MwSchedule resolved = core::derive_schedule(inst, params);
  EXPECT_EQ(resolved.levels, from_bounds.levels);
  EXPECT_EQ(resolved.bit_budget, from_bounds.bit_budget);
  EXPECT_EQ(resolved.thresholds, from_bounds.thresholds);

  // Without pinning, the schedule derives from the instance itself and
  // must match derive_schedule_from_bounds on the instance's own bounds.
  params.pinned_schedule = nullptr;
  const core::MwSchedule own = core::derive_schedule(inst, params);
  const core::MwSchedule own_bounds = core::derive_schedule_from_bounds(
      core::InstanceBounds::of(inst), params);
  EXPECT_EQ(own.thresholds, own_bounds.thresholds);
  EXPECT_EQ(own.y_scale, own_bounds.y_scale);
  EXPECT_EQ(own.num_network_nodes, own_bounds.num_network_nodes);
}

}  // namespace
}  // namespace dflp::service
