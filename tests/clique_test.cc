// Tests for the congested-clique topology mode (Topology::kClique):
// implicit rotation adjacency, per-link allowance enforcement (including
// the unicast + broadcast composite), analytic broadcast accounting, and
// determinism of clique rounds across thread counts and fault hazards.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "netsim/message.h"
#include "netsim/network.h"

namespace dflp::net {
namespace {

/// Process programmable with small lambdas per round.
class Script final : public Process {
 public:
  using Fn = std::function<void(NodeContext&, std::span<const Message>)>;
  explicit Script(Fn fn) : fn_(std::move(fn)) {}
  void on_round(NodeContext& ctx, std::span<const Message> inbox) override {
    fn_(ctx, inbox);
  }

 private:
  Fn fn_;
};

void fill_idle(Network& net, const std::vector<NodeId>& skip = {}) {
  for (NodeId v = 0; v < static_cast<NodeId>(net.num_nodes()); ++v) {
    if (std::find(skip.begin(), skip.end(), v) != skip.end()) continue;
    net.set_process(v, std::make_unique<Script>(
                           [](NodeContext& ctx, auto) { ctx.halt(); }));
  }
}

Network::Options clique_opts() {
  Network::Options o;
  o.topology = Topology::kClique;
  o.bit_budget = 64;
  o.seed = 1;
  return o;
}

TEST(Clique, NeighborsAreTheRotationOfAllOtherNodes) {
  Network net(5, clique_opts());
  net.finalize();
  // Node i sees the other n-1 nodes as the rotation i+1, ..., n-1, 0, ...,
  // i-1 — deliberately unsorted, but a permutation of everyone else.
  const auto nbrs_of = [&](NodeId i) {
    const auto s = net.neighbors_of(i);
    return std::vector<NodeId>(s.begin(), s.end());
  };
  EXPECT_EQ(nbrs_of(0), (std::vector<NodeId>{1, 2, 3, 4}));
  EXPECT_EQ(nbrs_of(2), (std::vector<NodeId>{3, 4, 0, 1}));
  EXPECT_EQ(nbrs_of(4), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(net.num_edges(), 10u);  // n(n-1)/2 implicit edges
}

TEST(Clique, AddEdgeRejectedAndTinyCliqueRejected) {
  Network net(4, clique_opts());
  EXPECT_THROW(net.add_edge(0, 1), CheckError);
  Network tiny(1, clique_opts());
  EXPECT_THROW(tiny.finalize(), CheckError);  // a 1-clique has no links
}

TEST(Clique, MessageDeliveredNextRoundIntact) {
  Network net(3, clique_opts());
  net.finalize();
  std::vector<Message> got;
  net.set_process(0, std::make_unique<Script>([](NodeContext& ctx, auto) {
    if (ctx.round() == 0) ctx.send(2, /*kind=*/7, {11, -22, 33});
    ctx.halt();
  }));
  net.set_process(2, std::make_unique<Script>(
                         [&](NodeContext& ctx, std::span<const Message> in) {
                           for (const auto& m : in) got.push_back(m);
                           if (ctx.round() >= 1) ctx.halt();
                         }));
  fill_idle(net, {0, 2});
  net.run(10);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].src, 0);
  EXPECT_EQ(got[0].dst, 2);
  EXPECT_EQ(got[0].kind, 7);
  EXPECT_EQ(got[0].field[0], 11);
  EXPECT_EQ(got[0].field[1], -22);
  EXPECT_EQ(got[0].field[2], 33);
}

TEST(Clique, SelfSendAndOutOfRangeThrow) {
  for (const NodeId target : {NodeId{1}, NodeId{3}}) {
    Network net(3, clique_opts());
    net.finalize();
    net.set_process(1, std::make_unique<Script>([target](NodeContext& ctx,
                                                         auto) {
      ctx.send(target, 1);  // self (1) or out of range (3)
    }));
    fill_idle(net, {1});
    EXPECT_THROW(net.run(2), CheckError);
  }
}

TEST(Clique, SecondUnicastToSameDestinationThrows) {
  Network net(4, clique_opts());
  net.finalize();
  net.set_process(0, std::make_unique<Script>([](NodeContext& ctx, auto) {
    ctx.send(2, 1);
    ctx.send(2, 1);  // exceeds the per-link allowance of 1
  }));
  fill_idle(net, {0});
  EXPECT_THROW(net.run(2), CheckError);
}

TEST(Clique, UnicastsToDistinctDestinationsAreAllAllowed) {
  // The whole point of the clique model: one message per link per round,
  // so a node may unicast to every other node in the same round.
  Network net(6, clique_opts());
  net.finalize();
  std::size_t delivered = 0;
  net.set_process(0, std::make_unique<Script>([](NodeContext& ctx, auto) {
    if (ctx.round() == 0)
      for (const NodeId nb : ctx.neighbors()) ctx.send(nb, 1);
    ctx.halt();
  }));
  for (NodeId v = 1; v < 6; ++v) {
    net.set_process(v, std::make_unique<Script>(
                           [&](NodeContext& ctx, std::span<const Message> in) {
                             delivered += in.size();
                             if (ctx.round() >= 1) ctx.halt();
                           }));
  }
  const NetMetrics m = net.run(5);
  EXPECT_EQ(delivered, 5u);
  EXPECT_EQ(m.messages, 5u);
}

TEST(Clique, UnicastPlusBroadcastCompositeThrows) {
  // The allowance is per directed link: a unicast to v plus a broadcast
  // (which also crosses the link to v) needs allowance 2.
  for (const bool unicast_first : {true, false}) {
    Network net(4, clique_opts());
    net.finalize();
    net.set_process(0, std::make_unique<Script>(
                           [unicast_first](NodeContext& ctx, auto) {
                             if (unicast_first) {
                               ctx.send(1, 1);
                               ctx.broadcast(2);
                             } else {
                               ctx.broadcast(2);
                               ctx.send(1, 1);
                             }
                           }));
    fill_idle(net, {0});
    EXPECT_THROW(net.run(2), CheckError) << "unicast_first = "
                                         << unicast_first;
  }
}

TEST(Clique, RaisedAllowancePermitsUnicastPlusBroadcast) {
  auto o = clique_opts();
  o.max_msgs_per_edge_per_round = 2;
  Network net(4, o);
  net.finalize();
  std::size_t delivered = 0;
  net.set_process(0, std::make_unique<Script>([](NodeContext& ctx, auto) {
    if (ctx.round() == 0) {
      ctx.send(1, 1);
      ctx.broadcast(2);
    }
    ctx.halt();
  }));
  for (NodeId v = 1; v < 4; ++v) {
    net.set_process(v, std::make_unique<Script>(
                           [&](NodeContext& ctx, std::span<const Message> in) {
                             delivered += in.size();
                             if (ctx.round() >= 1) ctx.halt();
                           }));
  }
  net.run(5);
  EXPECT_EQ(delivered, 4u);  // 3 broadcast copies + 1 unicast
}

TEST(Clique, BroadcastAccountingIsAnalyticFanOut) {
  // One broadcast on an n-clique bills n-1 messages and (n-1) * honest
  // bits without materializing per-destination records at send time.
  const std::size_t n = 64;
  Network net(n, clique_opts());
  net.finalize();
  net.set_process(0, std::make_unique<Script>([](NodeContext& ctx, auto) {
    if (ctx.round() == 0) ctx.broadcast(1, {3, 0, 0});  // 8+3 = 11 bits
    ctx.halt();
  }));
  fill_idle(net, {0});
  const NetMetrics m = net.run(5);
  EXPECT_EQ(m.messages, n - 1);
  EXPECT_EQ(m.total_bits, (n - 1) * 11u);
  EXPECT_EQ(m.max_message_bits, 11);
  EXPECT_EQ(m.max_messages_in_round, n - 1);
}

TEST(Clique, BroadcastReachesEveryOtherNodeExactlyOnce) {
  const std::size_t n = 9;
  Network net(n, clique_opts());
  net.finalize();
  std::vector<int> copies(n, 0);
  net.set_process(4, std::make_unique<Script>([](NodeContext& ctx, auto) {
    if (ctx.round() == 0) ctx.broadcast(5);
    ctx.halt();
  }));
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    if (v == 4) continue;
    net.set_process(v, std::make_unique<Script>(
                           [&copies, v](NodeContext& ctx,
                                        std::span<const Message> in) {
                             for (const auto& m : in)
                               if (m.kind == 5) ++copies[v];
                             if (ctx.round() >= 1) ctx.halt();
                           }));
  }
  net.run(5);
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v)
    EXPECT_EQ(copies[v], v == 4 ? 0 : 1) << "node " << v;
}

/// Deterministic all-to-all echo protocol used by the sweep tests: round 0
/// everyone broadcasts its id, round 1 everyone folds the received ids into
/// a checksum and halts. Returns "checksum | metrics fingerprint".
std::string run_echo(std::size_t n, int threads, DeliveryOrder delivery,
                     double drop_probability = 0.0,
                     double duplicate_probability = 0.0) {
  auto o = clique_opts();
  o.num_threads = threads;
  o.delivery = delivery;
  o.faults.drop_probability = drop_probability;
  o.faults.duplicate_probability = duplicate_probability;
  o.faults.fault_seed = 23;
  Network net(n, o);
  net.finalize();
  std::vector<std::int64_t> sums(n, 0);
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    net.set_process(v, std::make_unique<Script>(
                           [&sums, v](NodeContext& ctx,
                                      std::span<const Message> in) {
                             if (ctx.round() == 0) {
                               ctx.broadcast(1, {v, 0, 0});
                               return;
                             }
                             for (const auto& m : in)
                               sums[v] += (m.field[0] + 1) * (v + 1);
                             ctx.halt();
                           }));
  }
  const NetMetrics m = net.run(5);
  std::ostringstream os;
  for (const std::int64_t s : sums) os << s << ',';
  os << " | " << m.rounds << '/' << m.messages << '/' << m.total_bits << '/'
     << m.dropped << '/' << m.duplicated;
  return os.str();
}

TEST(Clique, EchoBitIdenticalAcrossThreadsDeliveryAndHazards) {
  // Committed expectation for the fault-free case: every node hears every
  // other id, so sums[v] = (v+1) * (n(n+1)/2 - (v+1)).
  const std::size_t n = 16;
  const std::string clean =
      run_echo(n, /*threads=*/1, DeliveryOrder::kBySource);
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    const std::int64_t expect = (v + 1) * (16 * 17 / 2 - (v + 1));
    std::ostringstream token;
    token << expect << ',';
    EXPECT_NE(clean.find(token.str()), std::string::npos) << clean;
  }
  for (const int threads : {1, 2, 4, 8}) {
    for (const DeliveryOrder delivery :
         {DeliveryOrder::kBySource, DeliveryOrder::kRandomShuffle,
          DeliveryOrder::kReverseSource}) {
      // Fault-free runs must all produce the serial BySource result (the
      // sums are order-insensitive folds); each hazard stream must at
      // least be bit-identical across thread counts.
      EXPECT_EQ(run_echo(n, threads, delivery), clean)
          << "threads = " << threads;
      EXPECT_EQ(run_echo(n, threads, delivery, /*drop=*/0.2),
                run_echo(n, 1, delivery, /*drop=*/0.2))
          << "threads = " << threads;
      EXPECT_EQ(run_echo(n, threads, delivery, /*drop=*/0.0, /*dup=*/0.2),
                run_echo(n, 1, delivery, /*drop=*/0.0, /*dup=*/0.2))
          << "threads = " << threads;
    }
  }
}

TEST(Clique, DroppedBroadcastCopiesAreCountedPerLink) {
  // drop_probability = 1 kills every copy of the broadcast; the analytic
  // fan-out must still be charged at the sender and then drained by the
  // per-copy hazard coins.
  const std::size_t n = 8;
  auto o = clique_opts();
  o.faults.drop_probability = 1.0;
  Network net(n, o);
  net.finalize();
  std::size_t delivered = 0;
  net.set_process(0, std::make_unique<Script>([](NodeContext& ctx, auto) {
    if (ctx.round() == 0) ctx.broadcast(1);
    ctx.halt();
  }));
  for (NodeId v = 1; v < static_cast<NodeId>(n); ++v) {
    net.set_process(v, std::make_unique<Script>(
                           [&](NodeContext& ctx, std::span<const Message> in) {
                             delivered += in.size();
                             if (ctx.round() >= 1) ctx.halt();
                           }));
  }
  const NetMetrics m = net.run(5);
  EXPECT_EQ(delivered, 0u);
  // Under hazards `messages` counts delivered copies (the engine-wide
  // semantics); every analytic copy must surface as its own per-link drop.
  EXPECT_EQ(m.messages, 0u);
  EXPECT_EQ(m.dropped, n - 1);
}

TEST(Clique, LargeCliqueConstructionStaysImplicit) {
  // 4096 nodes would need ~8.4M explicit undirected edges; the implicit
  // topology finalizes instantly and still reports the right counts.
  const std::size_t n = 4096;
  Network net(n, clique_opts());
  net.finalize();
  EXPECT_EQ(net.num_edges(), n * (n - 1) / 2);
  EXPECT_EQ(net.neighbors_of(0).size(), n - 1);
  EXPECT_EQ(net.neighbors_of(static_cast<NodeId>(n - 1)).size(), n - 1);
  fill_idle(net);
  const NetMetrics m = net.run(3);
  EXPECT_EQ(m.rounds, 1u);
  EXPECT_EQ(m.messages, 0u);
}

}  // namespace
}  // namespace dflp::net
