// Tests for the survivability harness: kill-set construction (exhaustive
// single crashes and seeded FaultPlan-sampled fractions), post-crash
// serving semantics, repair, and the r>=2 guarantee that motivates FTFP —
// no single facility crash can orphan a client holding two distinct
// assignments.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.h"
#include "core/ftfp_greedy.h"
#include "fl/ftfp.h"
#include "harness/survive.h"
#include "workload/generators.h"

namespace dflp::harness {
namespace {

fl::FtfpInstance make_instance(std::int32_t r, std::uint64_t seed = 3) {
  workload::UniformParams p;
  p.num_facilities = 10;
  p.num_clients = 50;
  p.client_degree = 4;
  return fl::with_uniform_requirement(workload::uniform_random(p, seed), r);
}

fl::FtfpSolution solve(const fl::FtfpInstance& inst, std::uint64_t seed = 1) {
  core::MwParams params;
  params.k = 4;
  params.seed = seed;
  return core::run_ftfp_greedy(inst, params).solution;
}

TEST(KillSets, SingleKillSetsEnumerateOpenedFacilities) {
  const fl::FtfpInstance inst = make_instance(2);
  const fl::FtfpSolution sol = solve(inst);
  const std::vector<fl::FacilityId> opened = opened_facilities(sol, inst);
  EXPECT_EQ(static_cast<int>(opened.size()), sol.num_open());
  const std::vector<KillSet> sets = single_kill_sets(sol, inst);
  ASSERT_EQ(sets.size(), opened.size());
  for (std::size_t i = 0; i < sets.size(); ++i) {
    ASSERT_EQ(sets[i].killed.size(), 1u);
    EXPECT_EQ(sets[i].killed[0], opened[i]);
  }
}

TEST(KillSets, SampledKillSetIsSeededAndDeterministic) {
  const fl::FtfpInstance inst = make_instance(2);
  const fl::FtfpSolution sol = solve(inst);
  const KillSet a = sample_kill_set(sol, inst, 0.5, 11);
  const KillSet b = sample_kill_set(sol, inst, 0.5, 11);
  EXPECT_EQ(a.killed, b.killed);
  EXPECT_FALSE(a.killed.empty());  // 0.5 over >= 2 opened facilities

  const KillSet c = sample_kill_set(sol, inst, 0.5, 12);
  const KillSet d = sample_kill_set(sol, inst, 0.0, 11);
  EXPECT_TRUE(d.killed.empty());
  // A different seed draws a different subset (these particular seeds do).
  EXPECT_NE(a.killed, c.killed);
  // Every victim was actually open.
  for (const fl::FacilityId i : a.killed) EXPECT_TRUE(sol.is_open(i));
}

TEST(Survive, RejectsKillingClosedFacilities) {
  fl::InstanceBuilder b;
  const auto f0 = b.add_facility(1.0);
  const auto f1 = b.add_facility(1.0);  // stays closed
  const auto c0 = b.add_client();
  b.connect(f0, c0, 1.0);
  b.connect(f1, c0, 2.0);
  fl::FtfpInstance inst{b.build(), {1}};
  fl::FtfpSolution sol(inst);
  sol.open(f0);
  sol.assign(c0, f0);
  EXPECT_THROW((void)survive_crash(inst, sol, KillSet{"bad", {f1}}),
               CheckError);
}

TEST(Survive, EmptyKillSetIsTheIdentity) {
  const fl::FtfpInstance inst = make_instance(2);
  const fl::FtfpSolution sol = solve(inst);
  const SurvivalReport r = survive_crash(inst, sol, KillSet{"noop", {}});
  EXPECT_TRUE(r.residual_feasible);
  EXPECT_TRUE(r.repaired);
  EXPECT_EQ(r.killed, 0);
  EXPECT_EQ(r.rerouted_clients, 0);
  EXPECT_EQ(r.reopened_facilities, 0);
  EXPECT_DOUBLE_EQ(r.cost_residual, r.cost_intact);
  EXPECT_DOUBLE_EQ(r.cost_ratio, 1.0);
  EXPECT_EQ(r.surviving_open, sol.num_open());
}

TEST(Survive, RTwoPlacementSurvivesEverySingleCrash) {
  // The headline guarantee: with two distinct facilities per client, no
  // single crash orphans anyone — every kill set stays residually
  // feasible with zero re-openings.
  for (const std::uint64_t seed : {3ULL, 17ULL, 29ULL}) {
    const fl::FtfpInstance inst = make_instance(2, seed);
    const fl::FtfpSolution sol = solve(inst, seed);
    const std::vector<SurvivalReport> reports =
        run_survival_campaign(inst, sol, single_kill_sets(sol, inst));
    const SurvivalSummary summary = summarize(reports);
    EXPECT_EQ(summary.kill_sets, sol.num_open()) << "seed=" << seed;
    EXPECT_EQ(summary.residual_feasible, summary.kill_sets)
        << "seed=" << seed;
    EXPECT_EQ(summary.worst_orphans, 0) << "seed=" << seed;
    EXPECT_EQ(summary.total_reopened, 0u) << "seed=" << seed;
  }
}

TEST(Survive, ROnePlacementOrphansClientsButRepairServesThem) {
  const fl::FtfpInstance inst = make_instance(1);
  const fl::FtfpSolution sol = solve(inst);
  const std::vector<SurvivalReport> reports =
      run_survival_campaign(inst, sol, single_kill_sets(sol, inst));
  const SurvivalSummary summary = summarize(reports);
  // Every opened facility serves someone (mw-greedy opens on demand), so
  // at least one single crash must orphan a client...
  EXPECT_LT(summary.residual_feasible, summary.kill_sets);
  EXPECT_GT(summary.worst_orphans, 0);
  // ...yet the instance is dense enough that repair always finds a
  // surviving neighbour.
  EXPECT_EQ(summary.repaired, summary.kill_sets);
  for (const SurvivalReport& r : reports) {
    if (r.residual_feasible) continue;
    EXPECT_GT(r.orphaned_clients, 0);
    EXPECT_GE(r.rerouted_clients, r.orphaned_clients);
  }
}

TEST(Survive, ReportsReroutingCostAgainstIntactPrimary) {
  // Hand instance: f0 cheap+near, f1 dear+far; both assigned to the only
  // client (r=2). Killing f0 rerolls the primary onto f1.
  fl::InstanceBuilder b;
  const auto f0 = b.add_facility(1.0);
  const auto f1 = b.add_facility(10.0);
  const auto c0 = b.add_client();
  b.connect(f0, c0, 2.0);
  b.connect(f1, c0, 5.0);
  fl::FtfpInstance inst{b.build(), {2}};
  fl::FtfpSolution sol(inst);
  sol.open(f0);
  sol.open(f1);
  sol.assign(c0, f0);
  sol.assign(c0, f1);

  const SurvivalReport r = survive_crash(inst, sol, KillSet{"kill-f0", {f0}});
  EXPECT_TRUE(r.residual_feasible);  // f1 still assigned and standing
  EXPECT_EQ(r.orphaned_clients, 0);
  EXPECT_EQ(r.rerouted_clients, 1);
  EXPECT_EQ(r.reopened_facilities, 0);
  EXPECT_DOUBLE_EQ(r.cost_intact, 1.0 + 10.0 + 2.0);
  EXPECT_DOUBLE_EQ(r.cost_residual, 10.0 + 5.0);
  EXPECT_DOUBLE_EQ(r.reassignment_cost, 3.0);
}

TEST(Survive, RepairReopensWhenNoStandingNeighbourExists) {
  // One client assigned only to f0; f1 is adjacent but closed. Killing f0
  // forces an emergency re-opening of f1.
  fl::InstanceBuilder b;
  const auto f0 = b.add_facility(1.0);
  const auto f1 = b.add_facility(4.0);
  const auto c0 = b.add_client();
  b.connect(f0, c0, 2.0);
  b.connect(f1, c0, 3.0);
  fl::FtfpInstance inst{b.build(), {1}};
  fl::FtfpSolution sol(inst);
  sol.open(f0);
  sol.assign(c0, f0);

  const SurvivalReport r = survive_crash(inst, sol, KillSet{"kill-f0", {f0}});
  EXPECT_FALSE(r.residual_feasible);
  EXPECT_TRUE(r.repaired);
  EXPECT_EQ(r.orphaned_clients, 1);
  EXPECT_EQ(r.reopened_facilities, 1);
  EXPECT_DOUBLE_EQ(r.cost_residual, 4.0 + 3.0);

  // Kill both reachable facilities: beyond repair.
  fl::FtfpSolution both(inst);
  both.open(f0);
  both.open(f1);
  both.assign(c0, f0);
  const SurvivalReport dead =
      survive_crash(inst, both, KillSet{"kill-all", {f0, f1}});
  EXPECT_FALSE(dead.repaired);
  EXPECT_EQ(dead.surviving_open, 0);
}

}  // namespace
}  // namespace dflp::harness
