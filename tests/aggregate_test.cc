// Tests for distributed bounds discovery (BFS election + convergecast).
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "core/aggregate.h"
#include "core/bipartite.h"
#include "workload/generators.h"

namespace dflp::core {
namespace {

TEST(ExpCode, RoundTripWithinFactorTwo) {
  for (double v : {1e-6, 0.5, 1.0, 3.7, 1024.0, 9.9e8}) {
    const std::int64_t code = exp_code(v);
    const double back = exp_decode(code);
    EXPECT_LE(back, v + 1e-12) << v;       // lower edge of the bucket
    EXPECT_GT(back * 2.0, v - 1e-12) << v;  // within a factor 2
  }
  EXPECT_EQ(exp_code(0.0), 0);
  EXPECT_DOUBLE_EQ(exp_decode(0), 0.0);
  EXPECT_EQ(exp_code(1.0), 1076);  // floor(log2 1) = 0
}

TEST(ExpCode, MonotoneAndCompact) {
  std::int64_t prev = 0;
  for (double v = 1e-9; v < 1e12; v *= 3.0) {
    const std::int64_t code = exp_code(v);
    EXPECT_GE(code, prev);
    EXPECT_LT(code, 1 << 13);  // fits the 13-bit packing
    prev = code;
  }
}

TEST(DiscoverBounds, ExactOnConnectedInstance) {
  workload::UniformParams p;
  p.num_facilities = 8;
  p.num_clients = 40;
  p.client_degree = 3;
  const fl::Instance inst = workload::uniform_random(p, 5);
  const DiscoveryOutcome out = discover_bounds(inst, 1, /*diameter=*/48);

  // With a connected bipartite instance every node should agree.
  const auto& profile = inst.cost_profile();
  const int max_deg =
      std::max(inst.max_facility_degree(), inst.max_client_degree());
  bool connected = true;
  for (const ComponentBounds& b : out.bounds)
    connected &= b.root == out.bounds.front().root;
  if (connected) {
    for (const ComponentBounds& b : out.bounds) {
      EXPECT_EQ(b.facility_count, inst.num_facilities());
      EXPECT_EQ(b.max_degree, max_deg);
      // Exponent codes: within factor 2 at each end.
      EXPECT_LE(b.min_positive_cost, profile.min_positive + 1e-12);
      EXPECT_GT(b.min_positive_cost * 2.0, profile.min_positive - 1e-12);
      EXPECT_LE(b.max_cost, profile.max_value + 1e-12);
      EXPECT_GT(b.max_cost * 2.0, profile.max_value - 1e-12);
      // rho estimate within factor 4 of the truth.
      EXPECT_LE(b.rho(), 4.0 * profile.rho + 1e-9);
      EXPECT_GE(4.0 * b.rho(), profile.rho - 1e-9);
    }
  }
}

TEST(DiscoverBounds, PerComponentOnDisconnectedInstance) {
  // Two disjoint star components: facilities {0, 1}, clients split.
  fl::InstanceBuilder b;
  const auto f0 = b.add_facility(5.0);
  const auto f1 = b.add_facility(7.0);
  for (int t = 0; t < 3; ++t) b.connect(f0, b.add_client(), 1.0);
  for (int t = 0; t < 4; ++t) b.connect(f1, b.add_client(), 2.0);
  const fl::Instance inst = b.build();
  const DiscoveryOutcome out = discover_bounds(inst, 1, /*diameter=*/12);

  // Component of f0: nodes {0, 2, 3, 4}; of f1: {1, 5, 6, 7, 8}.
  EXPECT_EQ(out.bounds[0].root, 0);
  EXPECT_EQ(out.bounds[0].facility_count, 1);
  EXPECT_EQ(out.bounds[1].root, 1);
  EXPECT_EQ(out.bounds[1].facility_count, 1);
  for (int v : {2, 3, 4}) {
    EXPECT_EQ(out.bounds[static_cast<std::size_t>(v)].root, 0) << v;
    EXPECT_EQ(out.bounds[static_cast<std::size_t>(v)].facility_count, 1);
  }
  for (int v : {5, 6, 7, 8}) {
    EXPECT_EQ(out.bounds[static_cast<std::size_t>(v)].root, 1) << v;
  }
  // Max cost differs per component: 5 vs 7.
  EXPECT_DOUBLE_EQ(out.bounds[2].max_cost, 4.0);  // floor-pow2 of 5
  EXPECT_DOUBLE_EQ(out.bounds[5].max_cost, 4.0);  // floor-pow2 of 7
  EXPECT_EQ(out.bounds[0].max_degree, 3);
  EXPECT_EQ(out.bounds[1].max_degree, 4);
}

TEST(DiscoverBounds, RoundsScaleWithDiameterBoundNotN) {
  // Complete bipartite => diameter 2; generous vs tight bound round counts.
  workload::EuclideanParams p;
  p.num_facilities = 6;
  p.num_clients = 30;
  const fl::Instance inst = workload::euclidean(p, 2).instance;
  const DiscoveryOutcome tight = discover_bounds(inst, 1, /*diameter=*/4);
  EXPECT_LE(tight.metrics.rounds, 3u * 4u + 8u);
  EXPECT_EQ(tight.bounds[0].facility_count, 6);
}

TEST(DiscoverBounds, TooShortPhaseFailsLoudly) {
  // A path-like sparse instance with diameter > 2: phase length 1 must
  // trip the stability invariant instead of returning garbage.
  fl::InstanceBuilder b;
  const auto f0 = b.add_facility(1.0);
  const auto f1 = b.add_facility(2.0);
  const auto f2 = b.add_facility(3.0);
  const auto c0 = b.add_client();
  const auto c1 = b.add_client();
  const auto c2 = b.add_client();
  b.connect(f0, c0, 1.0);
  b.connect(f1, c0, 1.0);
  b.connect(f1, c1, 1.0);
  b.connect(f2, c1, 1.0);
  b.connect(f2, c2, 1.0);
  const fl::Instance inst = b.build();
  EXPECT_THROW(discover_bounds(inst, 1, /*diameter=*/1), CheckError);
  // And a sufficient bound succeeds with the right answer.
  const DiscoveryOutcome ok = discover_bounds(inst, 1, /*diameter=*/8);
  EXPECT_EQ(ok.bounds[0].facility_count, 3);
  EXPECT_EQ(ok.bounds[5].root, 0);
}

TEST(DiscoverBounds, CongestBudgetRespected) {
  workload::UniformParams p;
  p.num_facilities = 10;
  p.num_clients = 60;
  p.client_degree = 4;
  const fl::Instance inst = workload::uniform_random(p, 9);
  const DiscoveryOutcome out = discover_bounds(inst, 1, /*diameter=*/70);
  EXPECT_LE(out.metrics.max_message_bits,
            net::congest_bit_budget(70) + 32);
  EXPECT_GT(out.metrics.messages, 0u);
}

TEST(DiscoverBounds, DefaultDiameterBoundIsSafe) {
  workload::UniformParams p;
  p.num_facilities = 4;
  p.num_clients = 12;
  p.client_degree = 2;
  const fl::Instance inst = workload::uniform_random(p, 3);
  const DiscoveryOutcome out = discover_bounds(inst);  // bound = N
  // Every node must have a positive facility count (its own component's).
  for (const ComponentBounds& b : out.bounds) {
    EXPECT_GE(b.facility_count, 1);
    EXPECT_LE(b.facility_count, inst.num_facilities());
  }
}

}  // namespace
}  // namespace dflp::core
