// Unit tests for the CONGEST simulator: delivery semantics, budget
// enforcement, determinism, metrics, fault injection.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "netsim/message.h"
#include "netsim/network.h"

namespace dflp::net {
namespace {

/// Process programmable with small lambdas per round.
class Script final : public Process {
 public:
  using Fn = std::function<void(NodeContext&, std::span<const Message>)>;
  explicit Script(Fn fn) : fn_(std::move(fn)) {}
  void on_round(NodeContext& ctx, std::span<const Message> inbox) override {
    fn_(ctx, inbox);
  }

 private:
  Fn fn_;
};

/// Installs a no-op halting process everywhere not already set.
void fill_idle(Network& net, const std::vector<NodeId>& skip = {}) {
  for (NodeId v = 0; v < static_cast<NodeId>(net.num_nodes()); ++v) {
    if (std::find(skip.begin(), skip.end(), v) != skip.end()) continue;
    net.set_process(v, std::make_unique<Script>(
                           [](NodeContext& ctx, auto) { ctx.halt(); }));
  }
}

Network::Options opts() {
  Network::Options o;
  o.bit_budget = 64;
  o.seed = 1;
  return o;
}

TEST(Message, BitsForValue) {
  EXPECT_EQ(bits_for_value(0), 1);
  EXPECT_EQ(bits_for_value(1), 2);   // magnitude + sign
  EXPECT_EQ(bits_for_value(-1), 2);  // sign-magnitude: |-1| needs 1 bit
  EXPECT_EQ(bits_for_value(255), 9);
  EXPECT_EQ(bits_for_value(256), 10);
}

TEST(Message, MinMessageBits) {
  Message m;
  EXPECT_EQ(min_message_bits(m), 8);  // opcode only
  m.field = {255, 0, 0};
  EXPECT_EQ(min_message_bits(m), 17);
}

TEST(Message, BitsForValueExtremes) {
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  // Sign-magnitude: INT64_MAX needs 63 magnitude bits + sign; INT64_MIN's
  // magnitude 2^63 needs one more.
  EXPECT_EQ(bits_for_value(kMax), 64);
  EXPECT_EQ(bits_for_value(kMin), 65);
  EXPECT_EQ(bits_for_value(kMin + 1), 64);  // magnitude 2^63 - 1
  // Powers of two straddle a magnitude-bit boundary.
  EXPECT_EQ(bits_for_value((std::int64_t{1} << 62) - 1), 63);
  EXPECT_EQ(bits_for_value(std::int64_t{1} << 62), 64);
  EXPECT_EQ(bits_for_value(-(std::int64_t{1} << 62)), 64);
}

TEST(Message, MinMessageBitsAllZeroFieldsIsOpcodeOnly) {
  // Zero payload words are free: the honest size never drops below the
  // 8-bit opcode, and all-zero fields add nothing on top of it.
  Message m;
  m.field = {0, 0, 0};
  EXPECT_EQ(min_message_bits(m), 8);
  m.kind = 0xFF;  // opcode value does not change the size
  EXPECT_EQ(min_message_bits(m), 8);
  // Extreme payloads still fit the declared-size arithmetic: three
  // INT64_MIN words cost 8 + 3 * 65 bits.
  m.field = {std::numeric_limits<std::int64_t>::min(),
             std::numeric_limits<std::int64_t>::min(),
             std::numeric_limits<std::int64_t>::min()};
  EXPECT_EQ(min_message_bits(m), 8 + 3 * 65);
}

TEST(Network, TopologyValidation) {
  Network net(3, opts());
  EXPECT_THROW(net.add_edge(0, 0), CheckError);   // self loop
  EXPECT_THROW(net.add_edge(0, 3), CheckError);   // out of range
  EXPECT_THROW(net.add_edge(-1, 1), CheckError);  // negative
  net.add_edge(0, 1);
  net.add_edge(0, 1);  // duplicate detected at finalize
  EXPECT_THROW(net.finalize(), CheckError);
}

TEST(Network, NeighborsAreSortedBothDirections) {
  Network net(4, opts());
  net.add_edge(2, 0);
  net.add_edge(2, 3);
  net.add_edge(1, 2);
  net.finalize();
  const auto nbrs = net.neighbors_of(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0);
  EXPECT_EQ(nbrs[1], 1);
  EXPECT_EQ(nbrs[2], 3);
  EXPECT_EQ(net.neighbors_of(0).size(), 1u);
  EXPECT_EQ(net.num_edges(), 3u);
}

TEST(Network, MessageDeliveredNextRoundIntact) {
  Network net(2, opts());
  net.add_edge(0, 1);
  net.finalize();
  std::vector<Message> got;
  net.set_process(0, std::make_unique<Script>(
                         [](NodeContext& ctx, auto) {
                           if (ctx.round() == 0)
                             ctx.send(1, /*kind=*/7, {11, -22, 33});
                           ctx.halt();
                         }));
  net.set_process(1, std::make_unique<Script>(
                         [&](NodeContext& ctx, std::span<const Message> in) {
                           for (const auto& m : in) got.push_back(m);
                           if (ctx.round() >= 1) ctx.halt();
                         }));
  net.run(10);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].src, 0);
  EXPECT_EQ(got[0].dst, 1);
  EXPECT_EQ(got[0].kind, 7);
  EXPECT_EQ(got[0].field[0], 11);
  EXPECT_EQ(got[0].field[1], -22);
  EXPECT_EQ(got[0].field[2], 33);
}

TEST(Network, SendToNonNeighborThrows) {
  Network net(3, opts());
  net.add_edge(0, 1);
  net.finalize();
  net.set_process(0, std::make_unique<Script>([](NodeContext& ctx, auto) {
    ctx.send(2, 1);  // not a neighbour
  }));
  fill_idle(net, {0});
  EXPECT_THROW(net.run(2), CheckError);
}

TEST(Network, BitBudgetEnforced) {
  auto o = opts();
  o.bit_budget = 16;
  Network net(2, o);
  net.add_edge(0, 1);
  net.finalize();
  net.set_process(0, std::make_unique<Script>([](NodeContext& ctx, auto) {
    ctx.send(1, 1, {1 << 20, 0, 0});  // ~21 payload bits + opcode > 16
  }));
  fill_idle(net, {0});
  EXPECT_THROW(net.run(2), CheckError);
}

TEST(Network, UnderDeclaredBitsRejectedPaddingAllowed) {
  Network net(2, opts());
  net.add_edge(0, 1);
  net.finalize();
  net.set_process(0, std::make_unique<Script>([](NodeContext& ctx, auto) {
    if (ctx.round() == 0) ctx.send(1, 1, {255, 0, 0}, /*bits=*/60);  // pad ok
    ctx.halt();
  }));
  fill_idle(net, {0});
  const NetMetrics m = net.run(5);
  EXPECT_EQ(m.max_message_bits, 60);

  Network net2(2, opts());
  net2.add_edge(0, 1);
  net2.finalize();
  net2.set_process(0, std::make_unique<Script>([](NodeContext& ctx, auto) {
    ctx.send(1, 1, {255, 0, 0}, /*bits=*/10);  // honest size is 17
  }));
  fill_idle(net2, {0});
  EXPECT_THROW(net2.run(2), CheckError);
}

TEST(Network, CongestEdgeAllowanceIsOnePerRound) {
  Network net(2, opts());
  net.add_edge(0, 1);
  net.finalize();
  net.set_process(0, std::make_unique<Script>([](NodeContext& ctx, auto) {
    ctx.send(1, 1);
    ctx.send(1, 2);  // second message on the same edge, same round
  }));
  fill_idle(net, {0});
  EXPECT_THROW(net.run(2), CheckError);
}

TEST(Network, RaisedEdgeAllowanceWorks) {
  auto o = opts();
  o.max_msgs_per_edge_per_round = 2;
  Network net(2, o);
  net.add_edge(0, 1);
  net.finalize();
  net.set_process(0, std::make_unique<Script>([](NodeContext& ctx, auto) {
    if (ctx.round() == 0) {
      ctx.send(1, 1);
      ctx.send(1, 2);
    }
    ctx.halt();
  }));
  fill_idle(net, {0});
  const NetMetrics m = net.run(5);
  EXPECT_EQ(m.messages, 2u);
}

TEST(Network, QuiescenceStopsRun) {
  Network net(2, opts());
  net.add_edge(0, 1);
  net.finalize();
  fill_idle(net);
  const NetMetrics m = net.run(100);
  EXPECT_EQ(m.rounds, 1u);  // one round to let everyone halt
  EXPECT_TRUE(net.all_halted());
}

TEST(Network, MaxRoundsCapsExecution) {
  Network net(2, opts());
  net.add_edge(0, 1);
  net.finalize();
  // Ping-pong forever.
  for (NodeId v : {0, 1}) {
    net.set_process(v, std::make_unique<Script>(
                           [](NodeContext& ctx, auto) {
                             ctx.send(ctx.neighbors()[0], 1);
                           }));
  }
  const NetMetrics m = net.run(25);
  EXPECT_EQ(m.rounds, 25u);
  EXPECT_FALSE(net.all_halted());
}

TEST(Network, MetricsCountMessagesAndBits) {
  Network net(3, opts());
  net.add_edge(0, 1);
  net.add_edge(0, 2);
  net.finalize();
  net.set_process(0, std::make_unique<Script>([](NodeContext& ctx, auto) {
    if (ctx.round() == 0) ctx.broadcast(1, {3, 0, 0});  // 8+3 = 11 bits
    ctx.halt();
  }));
  fill_idle(net, {0});
  const NetMetrics m = net.run(5);
  EXPECT_EQ(m.messages, 2u);
  EXPECT_EQ(m.total_bits, 22u);
  EXPECT_EQ(m.max_message_bits, 11);
  EXPECT_EQ(m.max_messages_in_round, 2u);
}

TEST(Network, DeliveryOrderBySource) {
  auto run_with = [](DeliveryOrder order) {
    auto o = opts();
    o.delivery = order;
    Network net(4, o);
    net.add_edge(3, 0);
    net.add_edge(3, 1);
    net.add_edge(3, 2);
    net.finalize();
    for (NodeId v : {0, 1, 2}) {
      net.set_process(v, std::make_unique<Script>(
                             [](NodeContext& ctx, auto) {
                               if (ctx.round() == 0) ctx.send(3, 1);
                               ctx.halt();
                             }));
    }
    std::vector<NodeId> sources;
    net.set_process(3, std::make_unique<Script>(
                           [&sources](NodeContext& ctx,
                                      std::span<const Message> in) {
                             for (const auto& m : in)
                               sources.push_back(m.src);
                             if (ctx.round() >= 1) ctx.halt();
                           }));
    net.run(5);
    return sources;
  };
  EXPECT_EQ(run_with(DeliveryOrder::kBySource),
            (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(run_with(DeliveryOrder::kReverseSource),
            (std::vector<NodeId>{2, 1, 0}));
  // Random shuffle: deterministic per seed; must be a permutation.
  auto shuffled = run_with(DeliveryOrder::kRandomShuffle);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, (std::vector<NodeId>{0, 1, 2}));
}

TEST(Network, PerNodeRngIsDeterministicAcrossRuns) {
  auto draw = []() {
    Network net(2, opts());
    net.add_edge(0, 1);
    net.finalize();
    std::uint64_t value = 0;
    net.set_process(0, std::make_unique<Script>(
                           [&value](NodeContext& ctx, auto) {
                             value = ctx.rng()();
                             ctx.halt();
                           }));
    fill_idle(net, {0});
    net.run(3);
    return value;
  };
  EXPECT_EQ(draw(), draw());
}

TEST(Network, DropProbabilityOneDropsEverything) {
  auto o = opts();
  o.faults.drop_probability = 1.0;
  Network net(2, o);
  net.add_edge(0, 1);
  net.finalize();
  std::size_t received = 0;
  net.set_process(0, std::make_unique<Script>([](NodeContext& ctx, auto) {
    if (ctx.round() == 0) ctx.send(1, 1);
    ctx.halt();
  }));
  net.set_process(1, std::make_unique<Script>(
                         [&received](NodeContext& ctx,
                                     std::span<const Message> in) {
                           received += in.size();
                           if (ctx.round() >= 2) ctx.halt();
                         }));
  const NetMetrics m = net.run(10);
  EXPECT_EQ(received, 0u);
  EXPECT_EQ(m.messages, 0u);
  EXPECT_EQ(m.dropped, 1u);
}

TEST(Network, ResumedRunAccumulatesCumulativeMetrics) {
  Network net(2, opts());
  net.add_edge(0, 1);
  net.finalize();
  int hops = 0;
  for (NodeId v : {0, 1}) {
    net.set_process(v, std::make_unique<Script>(
                           [&hops, v](NodeContext& ctx,
                                      std::span<const Message> in) {
                             if (v == 0 && ctx.round() == 0) ctx.send(1, 1);
                             for (const auto& m : in) {
                               (void)m;
                               ++hops;
                               if (hops < 6) ctx.send(ctx.neighbors()[0], 1);
                             }
                           }));
  }
  const NetMetrics first = net.run(3);
  const NetMetrics second = net.run(3);
  EXPECT_EQ(net.cumulative_metrics().rounds, first.rounds + second.rounds);
  EXPECT_EQ(net.cumulative_metrics().messages,
            first.messages + second.messages);
}

TEST(Network, CongestBudgetGrowsLogarithmically) {
  const int small = congest_bit_budget(16);
  const int large = congest_bit_budget(1 << 20);
  EXPECT_GT(large, small);
  EXPECT_LT(large, 4 * small);  // log growth, not linear
  EXPECT_GE(small, 16);
}

TEST(Network, CongestBudgetMonotoneInNetworkSize) {
  // The canonical budget must never shrink as the network grows — a
  // protocol tuned on a small instance stays legal on a larger one.
  int prev = congest_bit_budget(1);
  for (std::size_t n : {std::size_t{2}, std::size_t{3}, std::size_t{15},
                        std::size_t{16}, std::size_t{17}, std::size_t{1000},
                        std::size_t{1} << 16, std::size_t{1} << 20,
                        std::size_t{1} << 30}) {
    const int budget = congest_bit_budget(n);
    EXPECT_GE(budget, prev) << "budget shrank at n=" << n;
    // Any node id fits in a single payload word under the budget.
    Message probe;
    probe.field = {static_cast<std::int64_t>(n - 1), 0, 0};
    EXPECT_LE(min_message_bits(probe), budget) << "n=" << n;
    prev = budget;
  }
}

TEST(Network, HaltedNodeInboxDiscardedAndNotStepped) {
  Network net(2, opts());
  net.add_edge(0, 1);
  net.finalize();
  int steps_after_halt = 0;
  net.set_process(0, std::make_unique<Script>(
                         [&](NodeContext& ctx, auto) {
                           if (ctx.round() > 0) ++steps_after_halt;
                           ctx.halt();
                         }));
  net.set_process(1, std::make_unique<Script>([](NodeContext& ctx, auto) {
    if (ctx.round() < 3) ctx.send(0, 1);  // keep sending to the halted node
    else ctx.halt();
  }));
  net.run(10);
  EXPECT_EQ(steps_after_halt, 0);
}

// Resume contract (network.h "Resume semantics"): run() always returns at a
// round boundary with every staged send committed, so splitting an
// execution across multiple run() calls is invisible to the protocol —
// even when shuffles, drops and node coins span the split point, because
// every random stream is a function of (seed, node, round), never of how
// the rounds were batched into run() calls.
TEST(Network, SplitRunBitIdenticalToSingleRun) {
  const auto run_split =
      [](const std::vector<std::uint64_t>& chunks) -> std::string {
    Network::Options o;
    o.bit_budget = 64;
    o.seed = 42;
    o.delivery = DeliveryOrder::kRandomShuffle;
    o.faults.drop_probability = 0.25;
    constexpr NodeId kN = 6;
    Network net(kN, o);
    for (NodeId v = 0; v < kN; ++v) net.add_edge(v, (v + 1) % kN);
    net.finalize();
    auto log = std::make_shared<std::ostringstream>();
    for (NodeId v = 0; v < kN; ++v) {
      net.set_process(
          v, std::make_unique<Script>(
                 [log, v](NodeContext& ctx, std::span<const Message> in) {
                   *log << v << '@' << ctx.round() << ':';
                   for (const Message& m : in) *log << m.src << ',';
                   if (ctx.round() >= 14) {
                     ctx.halt();
                     return;
                   }
                   // Coin-flip target and payload: pins the per-node coin
                   // streams across the split as well.
                   const auto& nbrs = ctx.neighbors();
                   const std::size_t pick = ctx.rng().bernoulli(0.5) ? 1 : 0;
                   const auto payload = static_cast<std::int64_t>(
                       ctx.rng().uniform_u64(128));
                   ctx.send(nbrs[pick], 1, {payload, 0, 0});
                 }));
    }
    NetMetrics total;
    for (std::uint64_t c : chunks) {
      const NetMetrics part = net.run(c);
      total.rounds += part.rounds;
      total.messages += part.messages;
      total.total_bits += part.total_bits;
      total.dropped += part.dropped;
    }
    std::ostringstream os;
    os << log->str() << " | " << total.rounds << '/' << total.messages << '/'
       << total.total_bits << '/' << total.dropped;
    return os.str();
  };

  const std::string whole = run_split({100});
  EXPECT_EQ(run_split({4, 100}), whole);
  EXPECT_EQ(run_split({1, 1, 1, 100}), whole);
  EXPECT_EQ(run_split({7, 2, 100}), whole);
}

// Commit-cost contract (network.h): each round the transport does work
// proportional to the live nodes plus the destinations that actually
// received traffic — never to the total node count. On a star where every
// leaf halts immediately, 50 further hub-only rounds must cost ~2 touches
// per round, not ~N.
TEST(Network, MostlyHaltedNetworkCommitsInLivePlusMessageWork) {
  constexpr NodeId kLeaves = 999;
  Network net(kLeaves + 1, opts());
  for (NodeId leaf = 1; leaf <= kLeaves; ++leaf) net.add_edge(0, leaf);
  net.finalize();
  net.set_process(0, std::make_unique<Script>(
                         [](NodeContext& ctx, auto) {
                           if (ctx.round() >= 50) {
                             ctx.halt();
                             return;
                           }
                           // Keep one destination warm so the message term
                           // of the bound is exercised too.
                           ctx.send(1, /*kind=*/1);
                         }));
  fill_idle(net, {0});

  EXPECT_FALSE(net.all_halted());
  const NetMetrics m = net.run(1000);

  EXPECT_EQ(m.rounds, 51u);  // 50 hub rounds + the round every leaf halted
  EXPECT_TRUE(net.all_halted());
  EXPECT_EQ(net.live_node_count(), 0u);
  EXPECT_EQ(net.inflight_messages(), 0u);
  // Round 0 tallies all 1000 live nodes; afterwards each round touches the
  // hub plus the single warm destination. A transport that scanned every
  // node per round would register >= 51000 touches.
  EXPECT_GE(net.transport_touches(), 1000u);
  EXPECT_LE(net.transport_touches(), 1500u);
  // Quiescence is observable without re-running: a further run() exits at
  // the first round boundary.
  EXPECT_EQ(net.run(10).rounds, 0u);
}

TEST(Network, MetricsToStringMentionsCounts) {
  NetMetrics m;
  m.rounds = 3;
  m.messages = 14;
  const std::string s = m.to_string();
  EXPECT_NE(s.find("rounds=3"), std::string::npos);
  EXPECT_NE(s.find("messages=14"), std::string::npos);
}

}  // namespace
}  // namespace dflp::net
