// Tests for fault-tolerant facility placement: instance validation, the
// coverage-aware solution type, serialization, the demand-replication
// reduction, the residual-instance construction, and the exclusion-phase
// distributed solver — including the property the design pins: with all
// r_j = 1 the FTFP solver is bit-identical (solution fingerprint AND
// simulator metrics) to the plain UFL mw-greedy run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"
#include "core/ftfp_greedy.h"
#include "core/mw_greedy.h"
#include "fl/ftfp.h"
#include "harness/faults.h"
#include "seq/greedy.h"
#include "workload/generators.h"

namespace dflp {
namespace {

fl::Instance small_instance(std::uint64_t seed = 3) {
  workload::UniformParams p;
  p.num_facilities = 10;
  p.num_clients = 50;
  p.client_degree = 4;
  return workload::uniform_random(p, seed);
}

TEST(FtfpInstance, ValidateRejectsBadRequirements) {
  fl::FtfpInstance inst;
  inst.base = small_instance();
  inst.requirement.assign(49, 1);  // one entry short
  EXPECT_THROW(fl::validate(inst), CheckError);

  inst.requirement.assign(50, 1);
  fl::validate(inst);  // shape now correct

  inst.requirement[7] = 0;
  EXPECT_THROW(fl::validate(inst), CheckError);

  inst.requirement[7] = 5;  // degree is 4
  EXPECT_THROW(fl::validate(inst), CheckError);
}

TEST(FtfpInstance, UniformRequirementClampsToDegree) {
  const fl::FtfpInstance inst =
      fl::with_uniform_requirement(small_instance(), 7);
  fl::validate(inst);
  for (fl::ClientId j = 0; j < inst.base.num_clients(); ++j) {
    EXPECT_EQ(inst.requirement[static_cast<std::size_t>(j)],
              std::min<std::int32_t>(
                  7, static_cast<std::int32_t>(
                         inst.base.client_edges(j).size())));
  }
  EXPECT_EQ(inst.max_requirement(), 4);
}

TEST(FtfpSolution, RejectsDuplicateAssignmentsAndChecksFeasibility) {
  const fl::FtfpInstance inst =
      fl::with_uniform_requirement(small_instance(), 2);
  fl::FtfpSolution sol(inst);
  const fl::FacilityId f0 = inst.base.client_edges(0)[0].facility;
  const fl::FacilityId f1 = inst.base.client_edges(0)[1].facility;
  sol.open(f0);
  sol.assign(0, f0);
  EXPECT_THROW(sol.assign(0, f0), CheckError);  // distinctness

  std::string why;
  EXPECT_FALSE(sol.is_feasible(inst, &why));  // coverage 1 < 2
  EXPECT_NE(why.find("client 0"), std::string::npos);

  sol.assign(0, f1);
  EXPECT_FALSE(sol.is_feasible(inst, &why));  // f1 not open
  sol.open(f1);
  EXPECT_EQ(sol.coverage(0), 2);
  // Still infeasible overall: the other clients are uncovered.
  EXPECT_FALSE(sol.is_feasible(inst, &why));
}

TEST(FtfpSolution, CostCountsOpeningOnceAndEveryConnection) {
  fl::InstanceBuilder b;
  const auto f0 = b.add_facility(5.0);
  const auto f1 = b.add_facility(7.0);
  const auto c0 = b.add_client();
  b.connect(f0, c0, 1.0);
  b.connect(f1, c0, 2.0);
  fl::FtfpInstance inst{b.build(), {2}};
  fl::FtfpSolution sol(inst);
  sol.open(f0);
  sol.open(f0);  // idempotent
  sol.open(f1);
  sol.assign(c0, f0);
  sol.assign(c0, f1);
  EXPECT_TRUE(sol.is_feasible(inst));
  EXPECT_DOUBLE_EQ(sol.cost(inst), 5.0 + 7.0 + 1.0 + 2.0);
  EXPECT_EQ(sol.num_open(), 2);
  // The primary is the cheapest assigned facility.
  const fl::IntegralSolution primary = sol.primaries(inst);
  EXPECT_EQ(primary.assignment(c0), f0);
}

TEST(FtfpSerialize, RoundTripsInstanceAndRequirements) {
  workload::TieredRequirementParams tiered;
  tiered.base_r = 1;
  tiered.critical_r = 3;
  tiered.critical_fraction = 0.4;
  const fl::FtfpInstance inst =
      workload::tiered_requirement(small_instance(11), tiered, 99);
  const std::string text = fl::ftfp_to_text(inst);
  const fl::FtfpInstance back = fl::ftfp_from_text(text);
  EXPECT_EQ(back.requirement, inst.requirement);
  EXPECT_EQ(fl::ftfp_to_text(back), text);
  EXPECT_EQ(back.base.num_edges(), inst.base.num_edges());
}

TEST(FtfpSerialize, RejectsBadHeaderAndTruncation) {
  EXPECT_THROW((void)fl::ftfp_from_text("dflp-ufl 1\n"), CheckError);
  const fl::FtfpInstance inst =
      fl::with_uniform_requirement(small_instance(), 2);
  std::string text = fl::ftfp_to_text(inst);
  text.resize(text.size() - 8);  // chop the requirement tail
  EXPECT_THROW((void)fl::ftfp_from_text(text), CheckError);
}

TEST(FtfpReduction, ReplicatesDemandsWithOwnerMap) {
  const fl::FtfpInstance inst =
      fl::with_uniform_requirement(small_instance(), 2);
  const fl::ReplicatedUfl rep = fl::replicate_demands(inst);
  std::int64_t total = 0;
  for (const std::int32_t r : inst.requirement) total += r;
  EXPECT_EQ(rep.instance.num_clients(), total);
  EXPECT_EQ(rep.instance.num_facilities(), inst.base.num_facilities());
  EXPECT_EQ(rep.copy_owner.size(), static_cast<std::size_t>(total));
  // Every copy keeps its owner's edge set.
  for (fl::ClientId copy = 0; copy < rep.instance.num_clients(); ++copy) {
    const fl::ClientId owner =
        rep.copy_owner[static_cast<std::size_t>(copy)];
    EXPECT_EQ(rep.instance.client_edges(copy).size(),
              inst.base.client_edges(owner).size());
  }
}

TEST(FtfpReduction, ReplicationSolveIsFeasibleAndMatchesUflWhenRIsOne) {
  const fl::Instance base = small_instance(17);
  const auto greedy = [](const fl::Instance& i) {
    return seq::greedy_solve(i).solution;
  };

  const fl::FtfpInstance r1 = fl::with_uniform_requirement(base, 1);
  const fl::FtfpSolution sol1 = fl::solve_ftfp_by_replication(r1, greedy);
  EXPECT_TRUE(sol1.is_feasible(r1));
  // r_j = 1 replication is the identity reduction: same cost as plain UFL.
  EXPECT_DOUBLE_EQ(sol1.cost(r1), greedy(base).cost(base));

  const fl::FtfpInstance r2 = fl::with_uniform_requirement(base, 2);
  const fl::FtfpSolution sol2 = fl::solve_ftfp_by_replication(r2, greedy);
  EXPECT_TRUE(sol2.is_feasible(r2));
  EXPECT_GT(sol2.cost(r2), sol1.cost(r1));
}

TEST(FtfpResidual, PhaseZeroResidualIsTheBaseInstance) {
  const fl::FtfpInstance inst =
      fl::with_uniform_requirement(small_instance(), 2);
  const core::ResidualInstance res =
      core::build_residual(inst, fl::FtfpSolution(inst));
  EXPECT_EQ(res.instance.num_facilities(), inst.base.num_facilities());
  EXPECT_EQ(res.instance.num_clients(), inst.base.num_clients());
  EXPECT_EQ(res.instance.num_edges(), inst.base.num_edges());
  for (fl::FacilityId i = 0; i < inst.base.num_facilities(); ++i)
    EXPECT_DOUBLE_EQ(res.instance.opening_cost(i),
                     inst.base.opening_cost(i));
  for (std::size_t j = 0; j < res.client_map.size(); ++j)
    EXPECT_EQ(res.client_map[j], static_cast<fl::ClientId>(j));
}

TEST(FtfpResidual, ForcesChosenFacilitiesOpenAndExcludesAssignedEdges) {
  const fl::FtfpInstance inst =
      fl::with_uniform_requirement(small_instance(), 2);
  fl::FtfpSolution so_far(inst);
  const fl::FacilityId f = inst.base.client_edges(0)[0].facility;
  so_far.open(f);
  so_far.assign(0, f);
  // Client 1: fully satisfied (coverage 2) -> must drop out.
  const fl::FacilityId g0 = inst.base.client_edges(1)[0].facility;
  const fl::FacilityId g1 = inst.base.client_edges(1)[1].facility;
  so_far.open(g0);
  so_far.open(g1);
  so_far.assign(1, g0);
  so_far.assign(1, g1);

  const core::ResidualInstance res = core::build_residual(inst, so_far);
  EXPECT_EQ(res.instance.num_clients(), inst.base.num_clients() - 1);
  EXPECT_TRUE(std::find(res.client_map.begin(), res.client_map.end(), 1) ==
              res.client_map.end());
  EXPECT_DOUBLE_EQ(res.instance.opening_cost(f), 0.0);
  // Client 0 is residual client 0 (client_map ascending) and lost its
  // assigned edge to f.
  EXPECT_EQ(res.client_map[0], 0);
  EXPECT_EQ(res.instance.client_edges(0).size(),
            inst.base.client_edges(0).size() - 1);
  for (const fl::ClientEdge& e : res.instance.client_edges(0))
    EXPECT_NE(e.facility, f);
}

TEST(FtfpGreedy, AllOnesIsBitIdenticalToPlainMwGreedy) {
  // The property the architecture pins: phase 0 runs the unmodified engine
  // with the caller's seed on a residual that IS the base instance, so the
  // r_j = 1 solve must reproduce the UFL run byte for byte — solution,
  // rounds, messages, bits, everything.
  for (const std::uint64_t seed : {1ULL, 5ULL, 23ULL}) {
    const fl::Instance base = small_instance(seed);
    const fl::FtfpInstance inst = fl::with_uniform_requirement(base, 1);
    core::MwParams params;
    params.k = 4;
    params.seed = seed;

    const core::MwGreedyOutcome ufl = core::run_mw_greedy(base, params);
    const core::FtfpOutcome ftfp = core::run_ftfp_greedy(inst, params);

    EXPECT_EQ(ftfp.phases, 1) << "seed=" << seed;
    // Solution identity (fingerprints are byte-comparable).
    std::string ufl_fp = "open:";
    for (fl::FacilityId i = 0; i < base.num_facilities(); ++i)
      if (ufl.solution.is_open(i)) ufl_fp += std::to_string(i) + ",";
    ufl_fp += ";assign:";
    for (fl::ClientId j = 0; j < base.num_clients(); ++j)
      ufl_fp += "[" + std::to_string(ufl.solution.assignment(j)) + ",]";
    EXPECT_EQ(ftfp.solution.fingerprint(inst), ufl_fp) << "seed=" << seed;
    EXPECT_DOUBLE_EQ(ftfp.solution.cost(inst), ufl.solution.cost(base))
        << "seed=" << seed;
    // Metrics identity.
    EXPECT_EQ(ftfp.metrics.rounds, ufl.metrics.rounds) << "seed=" << seed;
    EXPECT_EQ(ftfp.metrics.messages, ufl.metrics.messages)
        << "seed=" << seed;
    EXPECT_EQ(ftfp.metrics.total_bits, ufl.metrics.total_bits)
        << "seed=" << seed;
    EXPECT_EQ(ftfp.metrics.max_message_bits, ufl.metrics.max_message_bits)
        << "seed=" << seed;
    EXPECT_EQ(ftfp.mopup_clients, ufl.mopup_clients) << "seed=" << seed;
    EXPECT_EQ(ftfp.schedule.levels, ufl.schedule.levels) << "seed=" << seed;
  }
}

TEST(FtfpGreedy, HigherCoverageIsFeasibleAndCostsMore) {
  const fl::Instance base = small_instance(29);
  core::MwParams params;
  params.k = 4;
  params.seed = 2;
  double prev_cost = 0.0;
  for (const std::int32_t r : {1, 2, 3}) {
    const fl::FtfpInstance inst = fl::with_uniform_requirement(base, r);
    const core::FtfpOutcome out = core::run_ftfp_greedy(inst, params);
    EXPECT_TRUE(out.solution.is_feasible(inst)) << "r=" << r;
    EXPECT_EQ(out.phases, r) << "r=" << r;
    EXPECT_EQ(out.phase_metrics.size(), static_cast<std::size_t>(r));
    const double cost = out.solution.cost(inst);
    EXPECT_GT(cost, prev_cost) << "r=" << r;
    prev_cost = cost;
    // Every client holds exactly r_j distinct assignments (one gained per
    // phase, never more).
    for (fl::ClientId j = 0; j < base.num_clients(); ++j)
      EXPECT_EQ(out.solution.coverage(j),
                inst.requirement[static_cast<std::size_t>(j)]);
  }
}

TEST(FtfpGreedy, TieredRequirementsRunPartialPhases) {
  workload::TieredRequirementParams tiered;
  tiered.base_r = 1;
  tiered.critical_r = 2;
  tiered.critical_fraction = 0.3;
  const fl::FtfpInstance inst =
      workload::tiered_requirement(small_instance(31), tiered, 4);
  core::MwParams params;
  params.k = 4;
  params.seed = 9;
  const core::FtfpOutcome out = core::run_ftfp_greedy(inst, params);
  EXPECT_TRUE(out.solution.is_feasible(inst));
  EXPECT_EQ(out.phases, 2);
  // Phase 1 only re-solves for the critical clients, so it is cheaper in
  // messages than phase 0.
  ASSERT_EQ(out.phase_metrics.size(), 2u);
  EXPECT_LT(out.phase_metrics[1].messages, out.phase_metrics[0].messages);
}

TEST(FtfpGreedy, DeterministicAcrossThreadCounts) {
  const fl::FtfpInstance inst =
      fl::with_uniform_requirement(small_instance(41), 2);
  core::MwParams params;
  params.k = 4;
  params.seed = 6;
  const core::FtfpOutcome golden = core::run_ftfp_greedy(inst, params);
  for (const int threads : {2, 4, 8}) {
    core::MwParams p = params;
    p.num_threads = threads;
    const core::FtfpOutcome out = core::run_ftfp_greedy(inst, p);
    EXPECT_EQ(out.solution.fingerprint(inst),
              golden.solution.fingerprint(inst))
        << "threads=" << threads;
    EXPECT_EQ(out.metrics.rounds, golden.metrics.rounds)
        << "threads=" << threads;
    EXPECT_EQ(out.metrics.messages, golden.metrics.messages)
        << "threads=" << threads;
  }
}

TEST(FtfpGreedy, RecoveredLossyRunMatchesFaultFree) {
  const fl::FtfpInstance inst =
      fl::with_uniform_requirement(small_instance(43), 2);
  core::MwParams params;
  params.k = 4;
  params.seed = 8;
  const core::FtfpOutcome golden = core::run_ftfp_greedy(inst, params);

  core::MwParams lossy = params;
  lossy.reliable = true;
  lossy.faults.drop_probability = 0.15;
  lossy.faults.fault_seed = 77;
  const core::FtfpOutcome out = core::run_ftfp_greedy(inst, lossy);
  EXPECT_EQ(out.solution.fingerprint(inst),
            golden.solution.fingerprint(inst));
  EXPECT_GT(out.metrics.dropped, 0u);
  EXPECT_GT(out.transport.retransmissions, 0u);
}

TEST(FtfpFaultScenario, ReportsRecoveryAndCapturesBareFailure) {
  const fl::FtfpInstance inst =
      fl::with_uniform_requirement(small_instance(45), 2);
  core::MwParams lossy;
  lossy.k = 4;
  lossy.seed = 9;
  lossy.faults.drop_probability = 0.15;
  lossy.faults.fault_seed = 31;

  // Bare under loss: captured into the report, diagnostic kept.
  const harness::FaultRunReport bare =
      harness::run_ftfp_fault_scenario(inst, lossy, "bare-lossy");
  EXPECT_EQ(bare.scenario, "bare-lossy");
  EXPECT_FALSE(bare.completed);
  EXPECT_FALSE(bare.diagnostic.empty());

  // Reliable under loss: recovers the fault-free placement, both phases.
  core::MwParams recovered = lossy;
  recovered.reliable = true;
  const harness::FaultRunReport rel =
      harness::run_ftfp_fault_scenario(inst, recovered, "reliable-lossy");
  EXPECT_TRUE(rel.completed);
  EXPECT_TRUE(rel.feasible);
  EXPECT_TRUE(rel.matches_fault_free);
  EXPECT_DOUBLE_EQ(rel.cost_ratio, 1.0);
  EXPECT_EQ(rel.phases, 2);
  EXPECT_GT(rel.round_dilation, 1.0);
  EXPECT_GT(rel.retransmissions, 0u);

  // Boot crashes are the one-shot campaign's job, not FTFP's.
  core::MwParams boot = lossy;
  boot.boot_crash_fraction = 0.1;
  EXPECT_THROW((void)harness::run_ftfp_fault_scenario(inst, boot, "boot"),
               CheckError);
}

}  // namespace
}  // namespace dflp
