// End-to-end smoke: every major subsystem touched once. The detailed
// per-module suites live in the sibling *_test.cc files.
#include <gtest/gtest.h>

#include "core/mw_greedy.h"
#include "core/pipeline.h"
#include "harness/runner.h"
#include "lp/ufl_lp.h"
#include "seq/brute_force.h"
#include "seq/greedy.h"
#include "workload/generators.h"

namespace dflp {
namespace {

TEST(Smoke, EndToEndTinyInstance) {
  workload::UniformParams p;
  p.num_facilities = 6;
  p.num_clients = 20;
  p.client_degree = 3;
  const fl::Instance inst = workload::uniform_random(p, /*seed=*/42);

  const auto brute = seq::brute_force_solve(inst);
  ASSERT_TRUE(brute.has_value());
  EXPECT_TRUE(brute->solution.is_feasible(inst));

  const auto lp = lp::solve_ufl_lp(inst);
  ASSERT_TRUE(lp.has_value());
  EXPECT_LE(lp->optimum, brute->optimum + 1e-6);

  const seq::GreedyResult greedy = seq::greedy_solve(inst);
  EXPECT_TRUE(greedy.solution.is_feasible(inst));
  EXPECT_GE(greedy.solution.cost(inst), brute->optimum - 1e-6);

  core::MwParams params;
  params.k = 4;
  params.seed = 7;
  const core::MwGreedyOutcome mw = core::run_mw_greedy(inst, params);
  EXPECT_TRUE(mw.solution.is_feasible(inst));
  EXPECT_GE(mw.solution.cost(inst), brute->optimum - 1e-6);
  EXPECT_GT(mw.metrics.rounds, 0u);

  const core::PipelineOutcome pipe = core::run_pipeline(inst, params);
  EXPECT_TRUE(pipe.solution.is_feasible(inst));
  EXPECT_GE(pipe.fractional_value, lp->optimum - 1e-6);

  const auto results = harness::run_suite(
      {harness::Algo::kMwGreedy, harness::Algo::kSeqGreedy,
       harness::Algo::kOpenAll},
      inst, params);
  for (const auto& r : results) {
    EXPECT_TRUE(r.feasible) << r.algo;
    EXPECT_GE(r.ratio, 1.0 - 1e-9) << r.algo;
  }
}

}  // namespace
}  // namespace dflp
