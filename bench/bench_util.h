// Shared glue for the experiment binaries (bench/).
//
// Each binary regenerates one experiment from DESIGN.md §4: it prints the
// experiment's table(s) as Markdown — the "rows/series the paper reports",
// here the paper's *theorem shapes* — and then runs its google-benchmark
// timing kernels. Every number is produced from seeded runs, so reruns are
// bit-identical.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "core/mw_greedy.h"
#include "core/pipeline.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "workload/generators.h"

namespace dflp::benchx {

inline core::MwParams make_params(int k, std::uint64_t seed) {
  core::MwParams p;
  p.k = k;
  p.seed = seed;
  return p;
}

/// Aggregate of repeated runs of one configuration.
struct Agg {
  double mean_ratio = 0.0;
  double max_ratio = 0.0;
  double mean_rounds = 0.0;
  double mean_messages = 0.0;
  int max_message_bits = 0;
  double mean_cost = 0.0;
  double mean_wall_ms = 0.0;
  int repetitions = 0;
};

/// Runs `algo` over `seeds` fresh instances drawn by `make_instance` and
/// aggregates ratios against each instance's own lower bound.
template <typename MakeInstance>
Agg aggregate_runs(harness::Algo algo, int k, MakeInstance&& make_instance,
                   const std::vector<std::uint64_t>& seeds) {
  Agg agg;
  RunningStat ratio;
  RunningStat rounds;
  RunningStat messages;
  RunningStat cost;
  RunningStat wall;
  for (std::uint64_t seed : seeds) {
    const fl::Instance inst = make_instance(seed);
    const harness::LowerBound lb = harness::compute_lower_bound(inst);
    const harness::RunResult r =
        harness::run_algorithm(algo, inst, make_params(k, seed), lb);
    ratio.add(r.ratio);
    rounds.add(static_cast<double>(r.rounds));
    messages.add(static_cast<double>(r.messages));
    cost.add(r.cost);
    wall.add(r.wall_ms);
    agg.max_message_bits = std::max(agg.max_message_bits, r.max_message_bits);
  }
  agg.mean_ratio = ratio.mean();
  agg.max_ratio = ratio.max();
  agg.mean_rounds = rounds.mean();
  agg.mean_messages = messages.mean();
  agg.mean_cost = cost.mean();
  agg.mean_wall_ms = wall.mean();
  agg.repetitions = static_cast<int>(seeds.size());
  return agg;
}

inline std::vector<std::uint64_t> default_seeds(int count = 5) {
  std::vector<std::uint64_t> seeds;
  for (int s = 1; s <= count; ++s) seeds.push_back(static_cast<std::uint64_t>(s));
  return seeds;
}

inline void print_header(const std::string& experiment_id,
                         const std::string& claim) {
  std::cout << "\n# " << experiment_id << "\n" << claim << "\n";
}

/// Prints the table and a one-line verdict the EXPERIMENTS.md records.
inline void print_table(const std::string& caption, const Table& table) {
  std::cout << "\n### " << caption << "\n\n" << table.to_markdown()
            << std::flush;
}

}  // namespace dflp::benchx
