// E2 ("Table 1") — CONGEST compliance and round complexity.
//
// Claims under validation: (a) every message fits in O(log N) bits (the
// simulator *rejects* violations, so the interesting number is the margin);
// (b) rounds are independent of n at fixed k (they depend on k and the
// instance's cost-spread constants only); (c) per-edge traffic is O(1)
// messages per round.
#include "bench_util.h"

namespace dflp::benchx {
namespace {

fl::Instance uniform_instance(std::int32_t n, std::uint64_t seed) {
  workload::UniformParams p;
  p.num_facilities = std::max(4, n / 5);
  p.num_clients = n;
  p.client_degree = 6;
  return workload::uniform_random(p, seed);
}

void run_experiment() {
  print_header(
      "E2 / Table 1 — CONGEST compliance across network sizes (k = 4)",
      "budget = simulator's enforced per-message bit budget (4*ceil(log2 "
      "N)+16). max-bits = largest message actually sent. msgs/edge/round = "
      "mean traffic density. Rounds must stay ~flat as n grows 16x.");

  Table table({"n", "N(nodes)", "budget(bits)", "max-bits", "rounds",
               "messages", "msgs/edge/round"});
  for (std::int32_t n : {50, 100, 200, 400, 800}) {
    RunningStat rounds;
    RunningStat msgs;
    RunningStat density;
    int max_bits = 0;
    int budget = 0;
    std::int32_t num_nodes = 0;
    for (std::uint64_t seed : default_seeds()) {
      const fl::Instance inst = uniform_instance(n, seed);
      const core::MwGreedyOutcome out =
          core::run_mw_greedy(inst, make_params(4, seed));
      rounds.add(static_cast<double>(out.metrics.rounds));
      msgs.add(static_cast<double>(out.metrics.messages));
      density.add(static_cast<double>(out.metrics.messages) /
                  (static_cast<double>(inst.num_edges()) *
                   static_cast<double>(out.metrics.rounds)));
      max_bits = std::max(max_bits, out.metrics.max_message_bits);
      budget = out.schedule.bit_budget;
      num_nodes = out.schedule.num_network_nodes;
    }
    table.row()
        .cell(static_cast<std::int64_t>(n))
        .cell(static_cast<std::int64_t>(num_nodes))
        .cell(budget)
        .cell(max_bits)
        .cell(rounds.mean(), 1)
        .cell(msgs.mean(), 0)
        .cell(density.mean(), 4);
  }
  print_table("uniform family, k = 4, 5 seeds per row", table);

  // Rounds vs k at fixed n: the O(k) claim, directly.
  Table ktable({"k", "levels*subphases", "rounds", "rounds/k"});
  for (int k : {1, 4, 9, 16, 36, 64}) {
    const fl::Instance inst = uniform_instance(200, 1);
    const core::MwGreedyOutcome out =
        core::run_mw_greedy(inst, make_params(k, 1));
    const auto iters = static_cast<std::int64_t>(out.schedule.levels) *
                       out.schedule.subphases;
    ktable.row()
        .cell(k)
        .cell(iters)
        .cell(out.metrics.rounds)
        .cell(static_cast<double>(out.metrics.rounds) / k, 2);
  }
  print_table("rounds vs k (n = 200, single seed — deterministic)", ktable);
}

void BM_RoundsAtN(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const fl::Instance inst = uniform_instance(n, 1);
  for (auto _ : state) {
    auto out = core::run_mw_greedy(inst, make_params(4, 1));
    benchmark::DoNotOptimize(out.metrics.rounds);
  }
  state.counters["rounds"] = static_cast<double>(
      core::run_mw_greedy(inst, make_params(4, 1)).metrics.rounds);
}
BENCHMARK(BM_RoundsAtN)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dflp::benchx

int main(int argc, char** argv) {
  dflp::benchx::run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
