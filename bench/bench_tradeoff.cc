// E1 ("Figure 1") — the paper's headline trade-off.
//
// Claim under validation: for every k, the distributed algorithm achieves an
// O(sqrt(k) * (m*rho)^(1/sqrt(k)) * log(m+n))-approximation in O(k) rounds —
// so as k grows, the measured approximation ratio should fall monotonically
// (up to noise) toward the centralized-greedy level while rounds grow
// linearly in k (times instance-bound constants).
//
// Output: one series per instance family: k -> (ratio, rounds, messages),
// plus the centralized greedy reference line.
#include "bench_util.h"

#include "seq/greedy.h"

namespace dflp::benchx {
namespace {

constexpr int kSize = 120;  // ~24 facilities, 120 clients

fl::Instance family_instance(workload::Family family, std::uint64_t seed) {
  return workload::make_family_instance(family, kSize, seed);
}

void run_experiment() {
  print_header("E1 / Figure 1 — approximation vs locality parameter k",
               "Series: mean ratio vs lower bound over 5 seeded instances "
               "per family; rounds and messages are means. Reference row: "
               "centralized greedy (H_n guarantee, unbounded locality).");

  const std::vector<int> ks = {1, 2, 4, 8, 16, 32, 64};
  for (const auto family :
       {workload::Family::kUniform, workload::Family::kEuclidean,
        workload::Family::kPowerLaw}) {
    Table table({"k", "ratio(mean)", "ratio(max)", "rounds", "messages"});
    for (int k : ks) {
      const Agg agg = aggregate_runs(
          harness::Algo::kMwGreedy, k,
          [&](std::uint64_t seed) { return family_instance(family, seed); },
          default_seeds());
      table.row()
          .cell(k)
          .cell(agg.mean_ratio, 3)
          .cell(agg.max_ratio, 3)
          .cell(agg.mean_rounds, 1)
          .cell(agg.mean_messages, 0);
    }
    const Agg greedy = aggregate_runs(
        harness::Algo::kSeqGreedy, 1,
        [&](std::uint64_t seed) { return family_instance(family, seed); },
        default_seeds());
    table.row()
        .cell("greedy")
        .cell(greedy.mean_ratio, 3)
        .cell(greedy.max_ratio, 3)
        .cell("-")
        .cell("-");
    print_table("family = " + workload::family_name(family), table);
  }
}

void BM_MwGreedyK4(benchmark::State& state) {
  const fl::Instance inst = family_instance(workload::Family::kUniform, 1);
  for (auto _ : state) {
    auto out = core::run_mw_greedy(inst, make_params(4, 1));
    benchmark::DoNotOptimize(out.solution.num_open());
  }
}
BENCHMARK(BM_MwGreedyK4)->Unit(benchmark::kMillisecond);

void BM_MwGreedyK64(benchmark::State& state) {
  const fl::Instance inst = family_instance(workload::Family::kUniform, 1);
  for (auto _ : state) {
    auto out = core::run_mw_greedy(inst, make_params(64, 1));
    benchmark::DoNotOptimize(out.solution.num_open());
  }
}
BENCHMARK(BM_MwGreedyK64)->Unit(benchmark::kMillisecond);

void BM_SeqGreedy(benchmark::State& state) {
  const fl::Instance inst = family_instance(workload::Family::kUniform, 1);
  for (auto _ : state) {
    auto out = seq::greedy_solve(inst);
    benchmark::DoNotOptimize(out.iterations);
  }
}
BENCHMARK(BM_SeqGreedy)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dflp::benchx

int main(int argc, char** argv) {
  dflp::benchx::run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
