// E6 ("Table 3") — positioning against centralized baselines.
//
// The PODC'05 paper positions its distributed algorithm against the
// centralized state of the art (greedy/H_n for non-metric; JV, MP, JMS for
// metric). This bench reruns that comparison: on instances small enough for
// brute force, every ratio is against the true optimum.
#include "bench_util.h"

#include "seq/jain_vazirani.h"
#include "seq/mettu_plaxton.h"

namespace dflp::benchx {
namespace {

fl::Instance metric_instance(std::uint64_t seed) {
  workload::EuclideanParams p;
  p.num_facilities = 12;
  p.num_clients = 60;
  p.clusters = 3;
  return workload::euclidean(p, seed).instance;
}

fl::Instance nonmetric_instance(std::uint64_t seed) {
  workload::PowerLawParams p;
  p.num_facilities = 12;
  p.num_clients = 60;
  p.client_degree = 5;
  p.rho_target = 1e4;
  return workload::power_law_spread(p, seed);
}

void run_family(const std::string& name,
                fl::Instance (*make)(std::uint64_t)) {
  struct Row {
    harness::Algo algo;
    int k;
    const char* label;
  };
  const std::vector<Row> rows = {
      {harness::Algo::kMwGreedy, 4, "mw-greedy (k=4)"},
      {harness::Algo::kMwGreedy, 16, "mw-greedy (k=16)"},
      {harness::Algo::kMwGreedy, 64, "mw-greedy (k=64)"},
      {harness::Algo::kPipeline, 16, "mw-pipeline (k=16)"},
      {harness::Algo::kIdealGreedy, 1, "ideal-greedy (oracle rounds)"},
      {harness::Algo::kSeqGreedy, 1, "seq-greedy"},
      {harness::Algo::kJainVazirani, 1, "jain-vazirani"},
      {harness::Algo::kMettuPlaxton, 1, "mettu-plaxton"},
      {harness::Algo::kJms, 1, "jms-greedy"},
      {harness::Algo::kLocalSearch, 1, "local-search"},
      {harness::Algo::kNearestFacility, 1, "nearest-facility"},
      {harness::Algo::kOpenAll, 1, "open-all"},
  };

  Table table({"algorithm", "ratio(mean)", "ratio(max)", "rounds",
               "messages"});
  for (const Row& row : rows) {
    const Agg agg =
        aggregate_runs(row.algo, row.k, [&](std::uint64_t seed) {
          return make(seed);
        }, default_seeds());
    const bool distributed = row.algo == harness::Algo::kMwGreedy ||
                             row.algo == harness::Algo::kPipeline ||
                             row.algo == harness::Algo::kIdealGreedy;
    table.row()
        .cell(row.label)
        .cell(agg.mean_ratio, 3)
        .cell(agg.max_ratio, 3)
        .cell(distributed ? format_double(agg.mean_rounds, 1)
                          : std::string("-"))
        .cell(row.algo == harness::Algo::kMwGreedy ||
                      row.algo == harness::Algo::kPipeline
                  ? format_double(agg.mean_messages, 0)
                  : std::string("-"));
  }
  print_table(name + " (m=12, n=60, 5 seeds)", table);
}

void run_experiment() {
  print_header(
      "E6 / Table 3 — distributed trade-off vs centralized baselines",
      "Expected shape: centralized metric algorithms (JV/MP/JMS) win on the "
      "metric family; mw-greedy narrows the gap as k grows and beats the "
      "trivial baselines everywhere; on the non-metric family greedy-style "
      "methods dominate and mw-greedy(k=64) approaches seq-greedy.");
  run_family("metric (clustered Euclidean)", metric_instance);
  run_family("non-metric (power-law costs)", nonmetric_instance);
}

void BM_JainVazirani(benchmark::State& state) {
  const fl::Instance inst = metric_instance(1);
  for (auto _ : state) {
    auto out = dflp::seq::jain_vazirani_solve(inst);
    benchmark::DoNotOptimize(out.temporarily_open);
  }
}
BENCHMARK(BM_JainVazirani)->Unit(benchmark::kMillisecond);

void BM_MettuPlaxton(benchmark::State& state) {
  const fl::Instance inst = metric_instance(1);
  for (auto _ : state) {
    auto out = dflp::seq::mettu_plaxton_solve(inst);
    benchmark::DoNotOptimize(out.solution.num_open());
  }
}
BENCHMARK(BM_MettuPlaxton)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dflp::benchx

int main(int argc, char** argv) {
  dflp::benchx::run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
